#include "core/performance_validator.h"

#include <gtest/gtest.h>

#include <memory>

#include "datasets/tabular.h"
#include "errors/missing_values.h"
#include "errors/mixture.h"
#include "errors/numeric_errors.h"
#include "ml/black_box.h"
#include "ml/gradient_boosted_trees.h"

namespace bbv::core {
namespace {

struct Fixture {
  data::Dataset train;
  data::Dataset test;
  data::Dataset serving;
  std::unique_ptr<ml::BlackBoxModel> model;
};

Fixture MakeFixture(common::Rng& rng) {
  data::Dataset dataset = datasets::MakeHeart(4000, rng);
  dataset = data::BalanceClasses(dataset, rng);
  auto [source, serving] = data::TrainTestSplit(dataset, 0.7, rng);
  auto [train, test] = data::TrainTestSplit(source, 0.7, rng);
  Fixture fixture;
  fixture.train = std::move(train);
  fixture.test = std::move(test);
  fixture.serving = std::move(serving);
  fixture.model = std::make_unique<ml::BlackBoxModel>(
      std::make_unique<ml::GradientBoostedTrees>());
  BBV_CHECK(fixture.model->Train(fixture.train, rng).ok());
  return fixture;
}

PerformanceValidator::Options FastOptions(double threshold = 0.05) {
  PerformanceValidator::Options options;
  options.threshold = threshold;
  options.corruptions_per_generator = 60;
  return options;
}

TEST(PerformanceValidatorTest, ValidatesCleanServingData) {
  common::Rng rng(1);
  Fixture fixture = MakeFixture(rng);
  PerformanceValidator validator(FastOptions());
  const errors::ErrorMixture mixture(
      {std::make_shared<errors::MissingValues>(),
       std::make_shared<errors::NumericOutliers>()});
  std::vector<const errors::ErrorGen*> generators = {&mixture};
  ASSERT_TRUE(
      validator.Train(*fixture.model, fixture.test, generators, rng).ok());
  EXPECT_TRUE(validator.trained());
  const auto decision =
      validator.Validate(*fixture.model, fixture.serving.features);
  ASSERT_TRUE(decision.ok());
  EXPECT_TRUE(*decision);
}

TEST(PerformanceValidatorTest, AlarmsOnCatastrophicCorruption) {
  common::Rng rng(2);
  Fixture fixture = MakeFixture(rng);
  PerformanceValidator validator(FastOptions(0.05));
  const errors::ErrorMixture mixture(
      {std::make_shared<errors::MissingValues>(),
       std::make_shared<errors::NumericOutliers>()});
  std::vector<const errors::ErrorGen*> generators = {&mixture};
  ASSERT_TRUE(
      validator.Train(*fixture.model, fixture.test, generators, rng).ok());
  // Destroy every numeric column with massive outliers.
  const errors::NumericOutliers severe({}, errors::FractionRange{1.0, 1.0},
                                       10.0, 12.0);
  int alarms = 0;
  for (int i = 0; i < 5; ++i) {
    const auto corrupted = severe.Corrupt(fixture.serving.features, rng);
    ASSERT_TRUE(corrupted.ok());
    const auto decision = validator.Validate(*fixture.model, *corrupted);
    ASSERT_TRUE(decision.ok());
    if (!*decision) ++alarms;
  }
  EXPECT_GE(alarms, 4);
}

TEST(PerformanceValidatorTest, ValidateBeforeTrainFails) {
  PerformanceValidator validator;
  EXPECT_FALSE(validator.ValidateFromProba(linalg::Matrix(5, 2)).ok());
}

TEST(PerformanceValidatorTest, TrainValidation) {
  common::Rng rng(3);
  Fixture fixture = MakeFixture(rng);
  PerformanceValidator validator(FastOptions());
  EXPECT_FALSE(
      validator.Train(*fixture.model, data::Dataset(), {}, rng).ok());
  const errors::MissingValues missing;
  std::vector<const errors::ErrorGen*> generators = {&missing};
  EXPECT_FALSE(
      validator.Train(*fixture.model, data::Dataset(), generators, rng).ok());
}

TEST(PerformanceValidatorTest, ThresholdIsExposed) {
  PerformanceValidator validator(FastOptions(0.1));
  EXPECT_DOUBLE_EQ(validator.threshold(), 0.1);
}

TEST(PerformanceValidatorTest, DegenerateTrainingFallsBackToPredictor) {
  // A generator whose corruption never moves the score (fraction 0) makes
  // every meta-label "ok"; the validator must fall back gracefully instead
  // of fitting a one-class GBDT.
  common::Rng rng(4);
  Fixture fixture = MakeFixture(rng);
  PerformanceValidator::Options options = FastOptions();
  options.corruptions_per_generator = 20;
  PerformanceValidator validator(options);
  const errors::MissingValues noop({}, errors::FractionRange{0.0, 0.0});
  std::vector<const errors::ErrorGen*> generators = {&noop};
  ASSERT_TRUE(
      validator.Train(*fixture.model, fixture.test, generators, rng).ok());
  const auto decision =
      validator.Validate(*fixture.model, fixture.serving.features);
  ASSERT_TRUE(decision.ok());
  EXPECT_TRUE(*decision);
}

TEST(PerformanceValidatorTest, HigherThresholdAlarmsLessOften) {
  common::Rng rng(5);
  Fixture fixture = MakeFixture(rng);
  const errors::ErrorMixture mixture(
      {std::make_shared<errors::MissingValues>(),
       std::make_shared<errors::NumericOutliers>(),
       std::make_shared<errors::Scaling>()});
  std::vector<const errors::ErrorGen*> generators = {&mixture};

  auto alarm_count = [&](double threshold) {
    common::Rng local_rng(99);
    PerformanceValidator validator(FastOptions(threshold));
    BBV_CHECK(
        validator.Train(*fixture.model, fixture.test, generators, local_rng)
            .ok());
    int alarms = 0;
    for (int i = 0; i < 20; ++i) {
      const auto corrupted =
          mixture.Corrupt(fixture.serving.features, local_rng);
      BBV_CHECK(corrupted.ok());
      const auto decision = validator.Validate(*fixture.model, *corrupted);
      BBV_CHECK(decision.ok());
      if (!*decision) ++alarms;
    }
    return alarms;
  };
  // A 2% budget should alarm at least as often as a 25% budget.
  EXPECT_GE(alarm_count(0.02), alarm_count(0.25));
}

TEST(PerformanceValidatorTest, AblationOptionsStillWork) {
  common::Rng rng(6);
  Fixture fixture = MakeFixture(rng);
  for (const bool use_ks : {true, false}) {
    for (const bool use_predictor : {true, false}) {
      PerformanceValidator::Options options = FastOptions();
      options.corruptions_per_generator = 30;
      options.use_ks_features = use_ks;
      options.use_predictor_feature = use_predictor;
      PerformanceValidator validator(options);
      const errors::NumericOutliers outliers;
      std::vector<const errors::ErrorGen*> generators = {&outliers};
      ASSERT_TRUE(
          validator.Train(*fixture.model, fixture.test, generators, rng)
              .ok());
      const auto decision =
          validator.Validate(*fixture.model, fixture.serving.features);
      ASSERT_TRUE(decision.ok());
    }
  }
}

}  // namespace
}  // namespace bbv::core
