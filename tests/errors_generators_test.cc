// Behaviour and invariant tests for every error generator:
//   - the input frame is never mutated (corruption returns a copy)
//   - schema (names/types/row count) is preserved
//   - the corrupted fraction tracks the configured fraction range
//   - a fraction of 0 is the identity
//   - generator-specific semantics (NA cells, scale factors, swaps, ...)

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>

#include "common/rng.h"
#include "errors/error_gen.h"
#include "errors/image_errors.h"
#include "errors/missing_values.h"
#include "errors/mixture.h"
#include "errors/numeric_errors.h"
#include "errors/swapped_columns.h"
#include "errors/text_errors.h"

namespace bbv::errors {
namespace {

data::DataFrame MakeTabularFrame(size_t n, common::Rng& rng) {
  std::vector<double> x(n);
  std::vector<double> y(n);
  std::vector<std::string> c(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.Gaussian(10.0, 2.0);
    y[i] = rng.Gaussian(-5.0, 1.0);
    c[i] = i % 3 == 0 ? "red" : (i % 3 == 1 ? "green" : "blue");
  }
  data::DataFrame frame;
  BBV_CHECK(frame.AddColumn(data::Column::Numeric("x", x)).ok());
  BBV_CHECK(frame.AddColumn(data::Column::Numeric("y", y)).ok());
  BBV_CHECK(frame.AddColumn(data::Column::Categorical("color", c)).ok());
  return frame;
}

/// Sets BBV_THREADS for one scope (same idiom as core_determinism_test);
/// tests cannot link the bench utilities.
class ScopedThreadsEnv {
 public:
  explicit ScopedThreadsEnv(const char* value) {
    const char* previous = std::getenv("BBV_THREADS");
    had_previous_ = previous != nullptr;
    if (had_previous_) previous_ = previous;
    ::setenv("BBV_THREADS", value, 1);
  }
  ~ScopedThreadsEnv() {
    if (had_previous_) {
      ::setenv("BBV_THREADS", previous_.c_str(), 1);
    } else {
      ::unsetenv("BBV_THREADS");
    }
  }
  ScopedThreadsEnv(const ScopedThreadsEnv&) = delete;
  ScopedThreadsEnv& operator=(const ScopedThreadsEnv&) = delete;

 private:
  bool had_previous_ = false;
  std::string previous_;
};

size_t CountDifferingCells(const data::DataFrame& a,
                           const data::DataFrame& b) {
  size_t count = 0;
  for (size_t col = 0; col < a.NumCols(); ++col) {
    for (size_t row = 0; row < a.NumRows(); ++row) {
      if (!(a.column(col).cell(row) == b.column(col).cell(row))) ++count;
    }
  }
  return count;
}

// ---------------------------------------------------------------------------
// Shared invariants, parameterized over all tabular generators
// ---------------------------------------------------------------------------

struct GeneratorCase {
  std::string name;
  std::shared_ptr<ErrorGen> generator;
};

std::vector<GeneratorCase> TabularGenerators() {
  return {
      {"missing_values", std::make_shared<MissingValues>()},
      {"outliers", std::make_shared<NumericOutliers>()},
      {"swapped_columns", std::make_shared<SwappedColumns>()},
      {"scaling", std::make_shared<Scaling>()},
      {"smearing", std::make_shared<NumericSmearing>()},
      {"sign_flip", std::make_shared<SignFlip>()},
      {"typos", std::make_shared<CategoricalTypos>()},
      {"encoding", std::make_shared<EncodingErrors>()},
      {"mixture",
       std::make_shared<ErrorMixture>(
           std::vector<std::shared_ptr<ErrorGen>>{
               std::make_shared<MissingValues>(),
               std::make_shared<Scaling>()})},
      {"subset",
       std::make_shared<RandomSubsetCorruption>(
           std::make_shared<NumericOutliers>())},
  };
}

class GeneratorSuite : public ::testing::TestWithParam<GeneratorCase> {};

TEST_P(GeneratorSuite, DoesNotMutateInput) {
  common::Rng rng(1);
  const data::DataFrame frame = MakeTabularFrame(100, rng);
  const data::DataFrame snapshot = frame;
  const auto corrupted = GetParam().generator->Corrupt(frame, rng);
  ASSERT_TRUE(corrupted.ok()) << corrupted.status().ToString();
  EXPECT_EQ(CountDifferingCells(frame, snapshot), 0u);
}

TEST_P(GeneratorSuite, PreservesSchemaAndShape) {
  common::Rng rng(2);
  const data::DataFrame frame = MakeTabularFrame(80, rng);
  const auto corrupted = GetParam().generator->Corrupt(frame, rng);
  ASSERT_TRUE(corrupted.ok());
  EXPECT_EQ(corrupted->NumRows(), frame.NumRows());
  EXPECT_EQ(corrupted->SchemaString(), frame.SchemaString());
}

TEST_P(GeneratorSuite, SometimesChangesSomething) {
  common::Rng rng(3);
  const data::DataFrame frame = MakeTabularFrame(200, rng);
  size_t changed_runs = 0;
  for (int run = 0; run < 10; ++run) {
    const auto corrupted = GetParam().generator->Corrupt(frame, rng);
    ASSERT_TRUE(corrupted.ok());
    if (CountDifferingCells(frame, *corrupted) > 0) ++changed_runs;
  }
  EXPECT_GE(changed_runs, 5u) << GetParam().name;
}

TEST_P(GeneratorSuite, DeterministicGivenSeed) {
  common::Rng data_rng(4);
  const data::DataFrame frame = MakeTabularFrame(60, data_rng);
  common::Rng rng_a(42);
  common::Rng rng_b(42);
  const auto a = GetParam().generator->Corrupt(frame, rng_a);
  const auto b = GetParam().generator->Corrupt(frame, rng_b);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(CountDifferingCells(*a, *b), 0u);
}

// Determinism property (PR-2 gate): a generator's output is a pure function
// of (frame, seed) — BBV_THREADS must not leak into the corruption.
TEST_P(GeneratorSuite, ByteIdenticalAcrossThreadCounts) {
  common::Rng data_rng(22);
  const data::DataFrame frame = MakeTabularFrame(150, data_rng);
  data::DataFrame serial;
  {
    ScopedThreadsEnv env("1");
    common::Rng rng(99);
    auto corrupted = GetParam().generator->Corrupt(frame, rng);
    ASSERT_TRUE(corrupted.ok());
    serial = *std::move(corrupted);
  }
  {
    ScopedThreadsEnv env("8");
    common::Rng rng(99);
    const auto corrupted = GetParam().generator->Corrupt(frame, rng);
    ASSERT_TRUE(corrupted.ok());
    EXPECT_EQ(CountDifferingCells(serial, *corrupted), 0u) << GetParam().name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGenerators, GeneratorSuite, ::testing::ValuesIn(TabularGenerators()),
    [](const ::testing::TestParamInfo<GeneratorCase>& param_info) {
      return param_info.param.name;
    });

// ---------------------------------------------------------------------------
// Row/column picking helpers
// ---------------------------------------------------------------------------

TEST(PickRowsTest, FullFractionIsIdentityWithoutConsumingRng) {
  common::Rng rng(30);
  common::Rng untouched(30);
  const std::vector<size_t> rows = PickRows(100, 1.0, rng);
  ASSERT_EQ(rows.size(), 100u);
  for (size_t i = 0; i < rows.size(); ++i) EXPECT_EQ(rows[i], i);
  // The short-circuit must not advance the stream: a full-severity pick
  // followed by other draws stays aligned with a stream that never picked.
  EXPECT_EQ(rng.UniformInt(size_t{1} << 30),
            untouched.UniformInt(size_t{1} << 30));
}

TEST(PickRowsTest, FractionAboveOneClampsToIdentity) {
  common::Rng rng(31);
  const std::vector<size_t> rows = PickRows(37, 1.5, rng);
  ASSERT_EQ(rows.size(), 37u);
  for (size_t i = 0; i < rows.size(); ++i) EXPECT_EQ(rows[i], i);
}

TEST(PickRowsTest, PartialFractionStillSamples) {
  common::Rng rng(32);
  const std::vector<size_t> rows = PickRows(200, 0.25, rng);
  EXPECT_EQ(rows.size(), 50u);
  const std::set<size_t> unique(rows.begin(), rows.end());
  EXPECT_EQ(unique.size(), rows.size());
}

TEST(PickColumnsTest, SingleCandidateSkipsRngDraws) {
  common::Rng data_rng(33);
  const data::DataFrame frame = MakeTabularFrame(20, data_rng);
  common::Rng rng(34);
  common::Rng untouched(34);
  // The frame has exactly one categorical column; picking it must not
  // consume random draws.
  const std::vector<std::string> columns =
      PickColumns(frame, data::ColumnType::kCategorical, rng);
  ASSERT_EQ(columns.size(), 1u);
  EXPECT_EQ(columns[0], "color");
  EXPECT_EQ(rng.UniformInt(size_t{1} << 30),
            untouched.UniformInt(size_t{1} << 30));
}

// ---------------------------------------------------------------------------
// Generator-specific semantics
// ---------------------------------------------------------------------------

TEST(MissingValuesTest, FractionZeroIsIdentity) {
  common::Rng rng(5);
  const data::DataFrame frame = MakeTabularFrame(50, rng);
  const MissingValues generator({"color"}, FractionRange{0.0, 0.0});
  const auto corrupted = generator.Corrupt(frame, rng);
  ASSERT_TRUE(corrupted.ok());
  EXPECT_EQ(CountDifferingCells(frame, *corrupted), 0u);
}

TEST(MissingValuesTest, FractionOneBlanksTheColumn) {
  common::Rng rng(6);
  const data::DataFrame frame = MakeTabularFrame(50, rng);
  const MissingValues generator({"color"}, FractionRange{1.0, 1.0});
  const auto corrupted = generator.Corrupt(frame, rng);
  ASSERT_TRUE(corrupted.ok());
  EXPECT_EQ(corrupted->ColumnByName("color").CountNa(), 50u);
  // Other columns untouched.
  EXPECT_EQ(corrupted->ColumnByName("x").CountNa(), 0u);
}

TEST(MissingValuesTest, FractionTracksConfiguredRange) {
  common::Rng rng(7);
  const data::DataFrame frame = MakeTabularFrame(2000, rng);
  const MissingValues generator({"color"}, FractionRange{0.3, 0.3});
  const auto corrupted = generator.Corrupt(frame, rng);
  ASSERT_TRUE(corrupted.ok());
  const double fraction =
      static_cast<double>(corrupted->ColumnByName("color").CountNa()) / 2000.0;
  EXPECT_NEAR(fraction, 0.3, 0.05);
}

TEST(MissingValuesTest, UnknownColumnIsError) {
  common::Rng rng(8);
  const data::DataFrame frame = MakeTabularFrame(10, rng);
  const MissingValues generator({"nope"});
  EXPECT_FALSE(generator.Corrupt(frame, rng).ok());
}

TEST(ScalingTest, ScalesByConfiguredFactors) {
  common::Rng rng(9);
  const data::DataFrame frame = MakeTabularFrame(100, rng);
  const Scaling generator({"x"}, FractionRange{1.0, 1.0}, {10.0});
  const auto corrupted = generator.Corrupt(frame, rng);
  ASSERT_TRUE(corrupted.ok());
  for (size_t row = 0; row < frame.NumRows(); ++row) {
    EXPECT_NEAR(corrupted->ColumnByName("x").cell(row).AsDouble(),
                10.0 * frame.ColumnByName("x").cell(row).AsDouble(), 1e-9);
  }
}

TEST(SignFlipTest, FlipsSigns) {
  common::Rng rng(10);
  const data::DataFrame frame = MakeTabularFrame(50, rng);
  const SignFlip generator({"y"}, FractionRange{1.0, 1.0});
  const auto corrupted = generator.Corrupt(frame, rng);
  ASSERT_TRUE(corrupted.ok());
  for (size_t row = 0; row < frame.NumRows(); ++row) {
    EXPECT_DOUBLE_EQ(corrupted->ColumnByName("y").cell(row).AsDouble(),
                     -frame.ColumnByName("y").cell(row).AsDouble());
  }
}

TEST(SmearingTest, StaysWithinRelativeBound) {
  common::Rng rng(11);
  const data::DataFrame frame = MakeTabularFrame(200, rng);
  const NumericSmearing generator({"x"}, FractionRange{1.0, 1.0}, 0.1);
  const auto corrupted = generator.Corrupt(frame, rng);
  ASSERT_TRUE(corrupted.ok());
  for (size_t row = 0; row < frame.NumRows(); ++row) {
    const double original = frame.ColumnByName("x").cell(row).AsDouble();
    const double smeared = corrupted->ColumnByName("x").cell(row).AsDouble();
    EXPECT_LE(std::abs(smeared - original),
              std::abs(original) * 0.1 + 1e-9);
  }
}

TEST(OutliersTest, NoiseScalesWithColumnStddev) {
  common::Rng rng(12);
  const data::DataFrame frame = MakeTabularFrame(2000, rng);
  const NumericOutliers generator({"x"}, FractionRange{1.0, 1.0}, 2.0, 5.0);
  const auto corrupted = generator.Corrupt(frame, rng);
  ASSERT_TRUE(corrupted.ok());
  // Mean absolute perturbation must be on the order of several column
  // standard deviations (column stddev is ~2).
  double mean_change = 0.0;
  for (size_t row = 0; row < frame.NumRows(); ++row) {
    mean_change += std::abs(corrupted->ColumnByName("x").cell(row).AsDouble() -
                            frame.ColumnByName("x").cell(row).AsDouble());
  }
  mean_change /= 2000.0;
  EXPECT_GT(mean_change, 2.0);
  EXPECT_LT(mean_change, 20.0);
}

TEST(SwappedColumnsTest, SwapsValuesBetweenColumns) {
  common::Rng rng(13);
  const data::DataFrame frame = MakeTabularFrame(100, rng);
  const SwappedColumns generator({"color", "x"}, FractionRange{1.0, 1.0});
  const auto corrupted = generator.Corrupt(frame, rng);
  ASSERT_TRUE(corrupted.ok());
  // After a full swap, the categorical column holds the numeric values.
  for (size_t row = 0; row < frame.NumRows(); ++row) {
    EXPECT_TRUE(corrupted->ColumnByName("color").cell(row).is_numeric());
    EXPECT_TRUE(corrupted->ColumnByName("x").cell(row).is_string());
  }
}

TEST(LeetspeakTest, KnownSubstitutions) {
  EXPECT_EQ(AdversarialLeetspeak::ToLeetspeak("hello world"), "h3110 w0r1d");
  EXPECT_EQ(AdversarialLeetspeak::ToLeetspeak("LEET"), "1337");
}

TEST(LeetspeakTest, CorruptsTextColumn) {
  common::Rng rng(14);
  data::DataFrame frame;
  BBV_CHECK(frame
                .AddColumn(data::Column::Text(
                    "text", {"hello there", "all is well", "more text"}))
                .ok());
  const AdversarialLeetspeak generator({}, FractionRange{1.0, 1.0});
  const auto corrupted = generator.Corrupt(frame, rng);
  ASSERT_TRUE(corrupted.ok());
  EXPECT_EQ(corrupted->ColumnByName("text").cell(0).AsString(), "h3110 7h3r3");
}

TEST(TyposTest, ProducesDifferentValue) {
  common::Rng rng(15);
  for (int i = 0; i < 50; ++i) {
    const std::string typo = CategoricalTypos::IntroduceTypo("category", rng);
    EXPECT_NE(typo, "category");
  }
}

TEST(TyposTest, SingleCharacterValuesStillChange) {
  common::Rng rng(16);
  for (int i = 0; i < 20; ++i) {
    EXPECT_NE(CategoricalTypos::IntroduceTypo("a", rng), "a");
  }
}

TEST(EncodingErrorsTest, MangleSubstitutions) {
  EXPECT_EQ(EncodingErrors::Mangle("Exec"), "\xC3\x89x\xC3\xA9""c");
  EXPECT_EQ(EncodingErrors::Mangle("ou"), "\xC5\x93\xC3\xBC");
}

// ---------------------------------------------------------------------------
// Image generators
// ---------------------------------------------------------------------------

data::DataFrame MakeImageFrame(size_t n, size_t side, common::Rng& rng) {
  std::vector<std::vector<double>> images(n);
  for (auto& image : images) {
    image.resize(side * side);
    for (double& pixel : image) pixel = rng.Uniform();
  }
  data::DataFrame frame;
  BBV_CHECK(frame.AddColumn(data::Column::Image("image", images)).ok());
  return frame;
}

TEST(ImageNoiseTest, PixelsStayInRange) {
  common::Rng rng(17);
  const data::DataFrame frame = MakeImageFrame(20, 8, rng);
  const GaussianImageNoise generator({}, FractionRange{1.0, 1.0}, 0.5);
  const auto corrupted = generator.Corrupt(frame, rng);
  ASSERT_TRUE(corrupted.ok());
  for (size_t row = 0; row < 20; ++row) {
    for (double pixel :
         corrupted->ColumnByName("image").cell(row).AsImage()) {
      EXPECT_GE(pixel, 0.0);
      EXPECT_LE(pixel, 1.0);
    }
  }
}

TEST(ImageRotationTest, Rotate360IsNearIdentityInCenter) {
  std::vector<double> image(16 * 16, 0.0);
  image[8 * 16 + 8] = 1.0;
  const std::vector<double> rotated = ImageRotation::Rotate(image, 360.0);
  EXPECT_DOUBLE_EQ(rotated[8 * 16 + 8], 1.0);
}

TEST(ImageRotationTest, Rotate180MirrorsAroundCenter) {
  // A pixel at (r, c) lands at (S-1-r, S-1-c) under 180-degree rotation.
  const size_t side = 9;
  std::vector<double> image(side * side, 0.0);
  image[2 * side + 3] = 1.0;
  const std::vector<double> rotated = ImageRotation::Rotate(image, 180.0);
  EXPECT_DOUBLE_EQ(rotated[(side - 1 - 2) * side + (side - 1 - 3)], 1.0);
}

TEST(ImageRotationTest, PreservesImageSize) {
  common::Rng rng(18);
  const data::DataFrame frame = MakeImageFrame(5, 12, rng);
  const ImageRotation generator({}, FractionRange{1.0, 1.0});
  const auto corrupted = generator.Corrupt(frame, rng);
  ASSERT_TRUE(corrupted.ok());
  for (size_t row = 0; row < 5; ++row) {
    EXPECT_EQ(corrupted->ColumnByName("image").cell(row).AsImage().size(),
              144u);
  }
}

// ---------------------------------------------------------------------------
// Mixtures and blending
// ---------------------------------------------------------------------------

TEST(MixtureTest, AppliesAtLeastOneComponent) {
  common::Rng rng(19);
  const data::DataFrame frame = MakeTabularFrame(300, rng);
  const ErrorMixture mixture(
      {std::make_shared<MissingValues>(std::vector<std::string>{"color"},
                                       FractionRange{0.5, 0.9})},
      /*inclusion_probability=*/0.0);
  // Even with inclusion probability 0, one component is always applied.
  const auto corrupted = mixture.Corrupt(frame, rng);
  ASSERT_TRUE(corrupted.ok());
  EXPECT_GT(corrupted->ColumnByName("color").CountNa(), 0u);
}

TEST(BlendTest, FractionZeroIsIdentity) {
  common::Rng rng(20);
  const data::DataFrame frame = MakeTabularFrame(100, rng);
  const NumericOutliers generator;
  const auto blended = BlendCorruption(frame, generator, 0.0, rng);
  ASSERT_TRUE(blended.ok());
  EXPECT_EQ(CountDifferingCells(frame, *blended), 0u);
}

TEST(BlendTest, PartialBlendChangesOnlyAFractionOfRows) {
  common::Rng rng(21);
  const data::DataFrame frame = MakeTabularFrame(400, rng);
  const SignFlip generator({"x", "y"}, FractionRange{1.0, 1.0});
  const auto blended = BlendCorruption(frame, generator, 0.25, rng);
  ASSERT_TRUE(blended.ok());
  size_t changed_rows = 0;
  for (size_t row = 0; row < frame.NumRows(); ++row) {
    bool changed = false;
    for (size_t col = 0; col < frame.NumCols(); ++col) {
      if (!(frame.column(col).cell(row) == blended->column(col).cell(row))) {
        changed = true;
      }
    }
    if (changed) ++changed_rows;
  }
  EXPECT_EQ(changed_rows, 100u);
}

}  // namespace
}  // namespace bbv::errors
