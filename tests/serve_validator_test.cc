// Tests for the multi-tenant ValidatorService: coalesced flushes must be
// bit-identical to a standalone StreamingScorer replay of each tenant's
// stream at every BBV_THREADS setting, hot-swaps must apply at exactly
// their queue position, eviction/rehydration must round-trip state
// byte-identically, and no malformed request may take down the process.

#include "serve/validator_service.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "core/prediction_statistics.h"
#include "serve/streaming_scorer.h"

namespace bbv::serve {
namespace {

/// Sets BBV_THREADS for one scope and restores the previous value after.
class ScopedThreadsEnv {
 public:
  explicit ScopedThreadsEnv(const char* value) {
    const char* previous = std::getenv("BBV_THREADS");
    had_previous_ = previous != nullptr;
    if (had_previous_) previous_ = previous;
    ::setenv("BBV_THREADS", value, 1);
  }
  ~ScopedThreadsEnv() {
    if (had_previous_) {
      ::setenv("BBV_THREADS", previous_.c_str(), 1);
    } else {
      ::unsetenv("BBV_THREADS");
    }
  }
  ScopedThreadsEnv(const ScopedThreadsEnv&) = delete;
  ScopedThreadsEnv& operator=(const ScopedThreadsEnv&) = delete;

 private:
  bool had_previous_ = false;
  std::string previous_;
};

/// Binary predict_proba batch where a `good_fraction` of the rows are
/// confidently correct (winner probability 0.99) and the rest are barely
/// above chance (0.51); winners alternate between the two classes.
linalg::Matrix MixtureBatch(double good_fraction, size_t rows) {
  linalg::Matrix batch(rows, 2);
  const size_t good_rows =
      static_cast<size_t>(good_fraction * static_cast<double>(rows) + 0.5);
  for (size_t i = 0; i < rows; ++i) {
    const double confidence = i < good_rows ? 0.99 : 0.51;
    const size_t winner = i % 2;
    batch.At(i, winner) = confidence;
    batch.At(i, 1 - winner) = 1.0 - confidence;
  }
  return batch;
}

/// Trains a predictor on synthetic (statistics, score) pairs where the
/// score is a linear function of the confident fraction; reference score
/// is 0.99. Different seeds grow different forests, which the hot-swap
/// tests rely on to tell the epochs apart.
std::shared_ptr<const core::PerformancePredictor> TrainSharedPredictor(
    uint64_t seed) {
  common::Rng rng(seed);
  core::PerformancePredictor::Options options;
  options.tree_count_grid = {30};
  core::PerformancePredictor predictor(options);
  std::vector<std::vector<double>> statistics;
  std::vector<double> scores;
  for (size_t rows : {400ul, 410ul, 420ul}) {
    for (int level = 0; level <= 10; ++level) {
      const double fraction = static_cast<double>(level) / 10.0;
      statistics.push_back(
          core::PredictionStatistics(MixtureBatch(fraction, rows)));
      scores.push_back(0.51 + 0.48 * fraction);
    }
  }
  BBV_CHECK(
      predictor.TrainFromStatistics(statistics, scores, 0.99, rng).ok());
  return std::make_shared<const core::PerformancePredictor>(
      std::move(predictor));
}

linalg::Matrix RandomProbabilities(size_t rows, common::Rng& rng) {
  linalg::Matrix batch(rows, 2);
  for (size_t i = 0; i < rows; ++i) {
    const double p = rng.Uniform();
    batch.At(i, 0) = p;
    batch.At(i, 1) = 1.0 - p;
  }
  return batch;
}

std::string ScorerBytes(const StreamingScorer& scorer) {
  std::ostringstream out;
  BBV_CHECK(scorer.SaveState(out).ok());
  return out.str();
}

std::string TenantBytes(const ValidatorService& service,
                        const std::string& model_id) {
  std::ostringstream out;
  BBV_CHECK(service.SaveTenantState(model_id, out).ok());
  return out.str();
}

/// Per-tenant synthetic stream: a deterministic mix of random and mixture
/// batches, keyed by the tenant index so streams differ across tenants.
std::vector<linalg::Matrix> TenantStream(size_t tenant, size_t batches) {
  common::Rng rng(1000 + tenant);
  std::vector<linalg::Matrix> stream;
  for (size_t b = 0; b < batches; ++b) {
    if (b % 3 == 0) {
      stream.push_back(
          MixtureBatch(static_cast<double>(tenant % 5) / 4.0, 40 + 7 * b));
    } else {
      stream.push_back(RandomProbabilities(30 + 5 * b, rng));
    }
  }
  return stream;
}

/// Replays one tenant's stream through a standalone StreamingScorer,
/// returning the per-batch estimates (the ground truth the service's
/// coalesced batch path must match bitwise).
std::vector<core::ScoreEstimate> StandaloneEstimates(
    const std::shared_ptr<const core::PerformancePredictor>& predictor,
    const std::vector<linalg::Matrix>& stream) {
  auto scorer = StreamingScorer::Create(predictor, {});
  BBV_CHECK(scorer.ok());
  std::vector<core::ScoreEstimate> estimates;
  for (const linalg::Matrix& batch : stream) {
    BBV_CHECK(scorer->Ingest(batch).ok());
    const auto estimate = scorer->EstimateScore();
    BBV_CHECK(estimate.ok());
    estimates.push_back(*estimate);
  }
  return estimates;
}

TEST(ValidatorServiceTest, CreateTenantValidatesArguments) {
  auto predictor = TrainSharedPredictor(41);
  ValidatorService service;
  EXPECT_FALSE(service.CreateTenant("", predictor).ok());
  EXPECT_FALSE(service.CreateTenant("m", nullptr).ok());
  EXPECT_FALSE(
      service
          .CreateTenant("m", std::make_shared<const core::PerformancePredictor>())
          .ok());
  ValidatorService::TenantOptions bad_resolution;
  bad_resolution.scorer.resolution_bits = 0;
  EXPECT_FALSE(service.CreateTenant("m", predictor, bad_resolution).ok());
  ValidatorService::TenantOptions bad_threshold;
  bad_threshold.window_batches = 4;
  bad_threshold.alarm_threshold = 1.5;
  EXPECT_FALSE(service.CreateTenant("m", predictor, bad_threshold).ok());

  ASSERT_TRUE(service.CreateTenant("m", predictor).ok());
  EXPECT_EQ(service.CreateTenant("m", predictor).code(),
            common::StatusCode::kAlreadyExists);
  EXPECT_EQ(service.num_tenants(), 1u);
  EXPECT_TRUE(service.RemoveTenant("m").ok());
  EXPECT_EQ(service.RemoveTenant("m").code(),
            common::StatusCode::kNotFound);
}

TEST(ValidatorServiceTest, CoalescedFlushMatchesStandaloneBitwise) {
  auto predictor = TrainSharedPredictor(42);
  const size_t kTenants = 3;
  const size_t kBatches = 6;
  std::vector<std::vector<linalg::Matrix>> streams;
  for (size_t t = 0; t < kTenants; ++t) {
    streams.push_back(TenantStream(t, kBatches));
  }

  // One interleaved submission trace, replayed identically per run.
  auto run_service = [&](const char* threads) {
    ScopedThreadsEnv env(threads);
    ValidatorService service;
    std::vector<std::string> ids;
    for (size_t t = 0; t < kTenants; ++t) {
      ids.push_back("tenant-" + std::to_string(t));
      BBV_CHECK(service.CreateTenant(ids.back(), predictor).ok());
    }
    std::vector<std::vector<uint64_t>> request_ids(kTenants);
    for (size_t b = 0; b < kBatches; ++b) {
      for (size_t t = 0; t < kTenants; ++t) {
        request_ids[t].push_back(service.Submit(ids[t], streams[t][b]));
      }
    }
    const auto responses = service.Flush();
    BBV_CHECK(responses.size() == kTenants * kBatches);
    // Map responses back per tenant, in submission order.
    std::vector<std::vector<core::ScoreEstimate>> estimates(kTenants);
    for (size_t t = 0; t < kTenants; ++t) {
      for (const uint64_t id : request_ids[t]) {
        bool found = false;
        for (const auto& response : responses) {
          if (response.request_id != id) continue;
          BBV_CHECK(response.status.ok()) << response.status.ToString();
          estimates[t].push_back(response.estimate);
          found = true;
        }
        BBV_CHECK(found);
      }
    }
    std::vector<std::string> state;
    for (size_t t = 0; t < kTenants; ++t) {
      state.push_back(TenantBytes(service, ids[t]));
    }
    return std::make_pair(estimates, state);
  };

  const auto [serial_estimates, serial_state] = run_service("1");
  const auto [parallel_estimates, parallel_state] = run_service("8");

  for (size_t t = 0; t < kTenants; ++t) {
    const std::vector<core::ScoreEstimate> standalone =
        StandaloneEstimates(predictor, streams[t]);
    ASSERT_EQ(serial_estimates[t].size(), standalone.size());
    for (size_t b = 0; b < standalone.size(); ++b) {
      // Bitwise: the coalesced kernel batch walks trees in the same order
      // as the standalone scalar path.
      EXPECT_EQ(serial_estimates[t][b], standalone[b])
          << "tenant " << t << " batch " << b;
      EXPECT_EQ(parallel_estimates[t][b], standalone[b])
          << "tenant " << t << " batch " << b;
    }
    auto scorer = StreamingScorer::Create(predictor, {});
    ASSERT_TRUE(scorer.ok());
    for (const auto& batch : streams[t]) {
      ASSERT_TRUE(scorer->Ingest(batch).ok());
    }
    EXPECT_EQ(serial_state[t], ScorerBytes(*scorer));
    EXPECT_EQ(parallel_state[t], ScorerBytes(*scorer));
  }
}

TEST(ValidatorServiceTest, ScoreMatchesCoalescedFlush) {
  auto predictor = TrainSharedPredictor(43);
  const std::vector<linalg::Matrix> stream = TenantStream(7, 5);

  ValidatorService coalesced;
  ASSERT_TRUE(coalesced.CreateTenant("m", predictor).ok());
  for (const auto& batch : stream) coalesced.Submit("m", batch);
  const auto responses = coalesced.Flush();
  ASSERT_EQ(responses.size(), stream.size());

  ValidatorService sequential;
  ASSERT_TRUE(sequential.CreateTenant("m", predictor).ok());
  for (size_t b = 0; b < stream.size(); ++b) {
    const auto response = sequential.Score("m", stream[b]);
    ASSERT_TRUE(response.status.ok());
    ASSERT_TRUE(responses[b].status.ok());
    EXPECT_EQ(response.estimate, responses[b].estimate) << "batch " << b;
    EXPECT_EQ(response.rows_ingested, responses[b].rows_ingested);
  }
  EXPECT_EQ(TenantBytes(coalesced, "m"), TenantBytes(sequential, "m"));
}

TEST(ValidatorServiceTest, EvictionAndRehydrationAreByteInvisible) {
  auto predictor = TrainSharedPredictor(44);
  ValidatorService::Options options;
  options.max_resident_tenants = 1;
  ValidatorService service(options);
  ASSERT_TRUE(service.CreateTenant("a", predictor).ok());
  ASSERT_TRUE(service.CreateTenant("b", predictor).ok());
  EXPECT_EQ(service.num_resident(), 1u);

  const std::vector<linalg::Matrix> stream_a = TenantStream(0, 4);
  const std::vector<linalg::Matrix> stream_b = TenantStream(1, 4);

  // Alternate tenants so every request lands on an evicted tenant and
  // forces a rehydration round-trip.
  std::vector<core::ScoreEstimate> estimates_a;
  std::vector<core::ScoreEstimate> estimates_b;
  for (size_t b = 0; b < 4; ++b) {
    const auto response_a = service.Score("a", stream_a[b]);
    ASSERT_TRUE(response_a.status.ok()) << response_a.status.ToString();
    estimates_a.push_back(response_a.estimate);
    const auto response_b = service.Score("b", stream_b[b]);
    ASSERT_TRUE(response_b.status.ok()) << response_b.status.ToString();
    estimates_b.push_back(response_b.estimate);
  }
  EXPECT_EQ(service.num_resident(), 1u);

  const auto info_a = service.GetTenantInfo("a");
  const auto info_b = service.GetTenantInfo("b");
  ASSERT_TRUE(info_a.ok());
  ASSERT_TRUE(info_b.ok());
  // "b" was scored last, so it holds the single residency slot.
  EXPECT_FALSE(info_a->resident);
  EXPECT_TRUE(info_b->resident);
  size_t rows_a = 0;
  for (const auto& batch : stream_a) rows_a += batch.rows();
  EXPECT_EQ(info_a->rows_ingested, rows_a);

  // Evicted and resident tenants must serialize the same canonical bytes a
  // standalone scorer of the same stream produces.
  const std::vector<core::ScoreEstimate> standalone_a =
      StandaloneEstimates(predictor, stream_a);
  const std::vector<core::ScoreEstimate> standalone_b =
      StandaloneEstimates(predictor, stream_b);
  for (size_t b = 0; b < 4; ++b) {
    EXPECT_EQ(estimates_a[b], standalone_a[b]) << "batch " << b;
    EXPECT_EQ(estimates_b[b], standalone_b[b]) << "batch " << b;
  }
  auto replay_a = StreamingScorer::Create(predictor, {});
  auto replay_b = StreamingScorer::Create(predictor, {});
  ASSERT_TRUE(replay_a.ok());
  ASSERT_TRUE(replay_b.ok());
  for (const auto& batch : stream_a) ASSERT_TRUE(replay_a->Ingest(batch).ok());
  for (const auto& batch : stream_b) ASSERT_TRUE(replay_b->Ingest(batch).ok());
  EXPECT_EQ(TenantBytes(service, "a"), ScorerBytes(*replay_a));
  EXPECT_EQ(TenantBytes(service, "b"), ScorerBytes(*replay_b));

  // EstimateScore rehydrates "a" and answers from the restored state.
  const auto estimate = service.EstimateScore("a");
  ASSERT_TRUE(estimate.ok());
  const auto replayed = replay_a->EstimateScore();
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(*estimate, *replayed);
  EXPECT_TRUE(service.GetTenantInfo("a")->resident);
}

TEST(ValidatorServiceTest, HotSwapAppliesAtItsQueuePosition) {
  auto old_predictor = TrainSharedPredictor(45);
  auto new_predictor = TrainSharedPredictor(46);
  const linalg::Matrix before = MixtureBatch(0.8, 300);
  const linalg::Matrix after = MixtureBatch(0.8, 310);

  ValidatorService service;
  ASSERT_TRUE(service.CreateTenant("m", old_predictor).ok());
  const uint64_t id_before = service.Submit("m", before);
  const uint64_t id_swap = service.SubmitSwap("m", new_predictor);
  const uint64_t id_after = service.Submit("m", after);
  const auto responses = service.Flush();
  ASSERT_EQ(responses.size(), 3u);
  ASSERT_EQ(responses[0].request_id, id_before);
  ASSERT_EQ(responses[1].request_id, id_swap);
  ASSERT_EQ(responses[2].request_id, id_after);
  ASSERT_TRUE(responses[0].status.ok());
  ASSERT_TRUE(responses[1].status.ok());
  ASSERT_TRUE(responses[2].status.ok());
  EXPECT_TRUE(responses[1].is_swap);
  EXPECT_EQ(responses[0].epoch, 0u);
  EXPECT_EQ(responses[1].epoch, 1u);
  EXPECT_EQ(responses[2].epoch, 1u);

  // The request ahead of the swap is scored by the old forest; the one
  // behind it by the new forest — even though all three ride one flush.
  auto replay = StreamingScorer::Create(old_predictor, {});
  ASSERT_TRUE(replay.ok());
  ASSERT_TRUE(replay->Ingest(before).ok());
  const auto old_estimate = replay->EstimateScore();
  ASSERT_TRUE(old_estimate.ok());
  EXPECT_EQ(responses[0].estimate, *old_estimate);

  ASSERT_TRUE(replay->SwapPredictor(new_predictor).ok());
  ASSERT_TRUE(replay->Ingest(after).ok());
  const auto new_estimate = replay->EstimateScore();
  ASSERT_TRUE(new_estimate.ok());
  EXPECT_EQ(responses[2].estimate, *new_estimate);

  // The two forests genuinely differ, otherwise this test proves nothing.
  auto cross_check = StreamingScorer::Create(old_predictor, {});
  ASSERT_TRUE(cross_check.ok());
  ASSERT_TRUE(cross_check->Ingest(before).ok());
  ASSERT_TRUE(cross_check->Ingest(after).ok());
  const auto old_path = cross_check->EstimateScore();
  ASSERT_TRUE(old_path.ok());
  EXPECT_NE(responses[2].estimate, *old_path);

  const auto info = service.GetTenantInfo("m");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->epoch, 1u);
}

TEST(ValidatorServiceTest, MalformedRequestsFailSoftly) {
  auto predictor = TrainSharedPredictor(47);
  ValidatorService service;
  ASSERT_TRUE(service.CreateTenant("m", predictor).ok());

  EXPECT_EQ(service.Score("ghost", MixtureBatch(1.0, 8)).status.code(),
            common::StatusCode::kNotFound);

  EXPECT_FALSE(service.Score("m", linalg::Matrix()).status.ok());
  EXPECT_FALSE(service.Score("m", linalg::Matrix(4, 3)).status.ok());
  linalg::Matrix poisoned = MixtureBatch(1.0, 8);
  poisoned.At(3, 0) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(service.Score("m", poisoned).status.ok());

  // A rejected swap leaves the tenant on its old predictor and epoch.
  service.SubmitSwap("m", nullptr);
  service.SubmitSwap("m",
                     std::make_shared<const core::PerformancePredictor>());
  for (const auto& response : service.Flush()) {
    EXPECT_TRUE(response.is_swap);
    EXPECT_FALSE(response.status.ok());
  }
  const auto info = service.GetTenantInfo("m");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->epoch, 0u);
  EXPECT_EQ(info->rows_ingested, 0u);

  // The tenant is fully usable after every failure above.
  const auto response = service.Score("m", MixtureBatch(1.0, 200));
  ASSERT_TRUE(response.status.ok());
  EXPECT_TRUE(std::isfinite(response.estimate.point));
  EXPECT_EQ(response.rows_ingested, 200u);
}

TEST(ValidatorServiceTest, MonitoredTenantAlarmsOnWindowedDrop) {
  auto predictor = TrainSharedPredictor(48);
  ValidatorService service;
  ValidatorService::TenantOptions options;
  options.window_batches = 2;
  options.alarm_threshold = 0.35;
  ASSERT_TRUE(service.CreateTenant("m", predictor, options).ok());

  const linalg::Matrix good = MixtureBatch(1.0, 400);
  const linalg::Matrix bad = MixtureBatch(0.0, 400);

  const auto healthy = service.Score("m", good);
  ASSERT_TRUE(healthy.status.ok());
  EXPECT_TRUE(healthy.monitored);
  EXPECT_FALSE(healthy.alarm);

  // One degraded batch shares the window with the healthy one: no alarm.
  const auto mixed = service.Score("m", bad);
  ASSERT_TRUE(mixed.status.ok());
  EXPECT_FALSE(mixed.alarm);
  EXPECT_LT(mixed.windowed_relative_drop, options.alarm_threshold);

  // The second degraded batch evicts the healthy one and the alarm fires.
  const auto degraded = service.Score("m", bad);
  ASSERT_TRUE(degraded.status.ok());
  EXPECT_TRUE(degraded.alarm);
  EXPECT_GE(degraded.windowed_relative_drop, options.alarm_threshold);
  const auto info = service.GetTenantInfo("m");
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->monitored);
  EXPECT_EQ(info->monitor_alarms, 1u);
}

TEST(ValidatorServiceTest, ConcurrentSubmitFlushAndSwapStayCoherent) {
  ScopedThreadsEnv env("8");
  auto predictor = TrainSharedPredictor(49);
  auto retrained = TrainSharedPredictor(50);
  const size_t kWorkers = 6;
  const size_t kBatches = 5;

  ValidatorService service;
  std::vector<std::string> ids;
  std::vector<std::vector<linalg::Matrix>> streams;
  for (size_t t = 0; t < kWorkers; ++t) {
    ids.push_back("tenant-" + std::to_string(t));
    ASSERT_TRUE(service.CreateTenant(ids[t], predictor).ok());
    streams.push_back(TenantStream(t, kBatches));
  }

  // Each worker drives its own tenant: submits its stream in order,
  // interleaves Flush calls (draining whatever other workers queued), and
  // worker 0 hot-swaps its tenant mid-stream. Per-tenant submission order
  // is still total because one worker owns each tenant, so the final state
  // must match a standalone replay no matter how the flushes interleave.
  const common::Status raced =
      common::ParallelFor(kWorkers, [&](size_t t) -> common::Status {
        for (size_t b = 0; b < kBatches; ++b) {
          service.Submit(ids[t], streams[t][b]);
          if (t == 0 && b == 2) service.SubmitSwap(ids[t], retrained);
          if (b % 2 == 1) service.Flush();
        }
        return common::Status::OK();
      });
  ASSERT_TRUE(raced.ok());
  service.Flush();
  EXPECT_EQ(service.num_pending(), 0u);

  for (size_t t = 0; t < kWorkers; ++t) {
    auto replay = StreamingScorer::Create(predictor, {});
    ASSERT_TRUE(replay.ok());
    for (const auto& batch : streams[t]) {
      ASSERT_TRUE(replay->Ingest(batch).ok());
    }
    EXPECT_EQ(TenantBytes(service, ids[t]), ScorerBytes(*replay))
        << "tenant " << t;
    const auto info = service.GetTenantInfo(ids[t]);
    ASSERT_TRUE(info.ok());
    EXPECT_EQ(info->epoch, t == 0 ? 1u : 0u);
    const auto estimate = service.EstimateScore(ids[t]);
    ASSERT_TRUE(estimate.ok());
    EXPECT_TRUE(std::isfinite(estimate->point));
  }
}

}  // namespace
}  // namespace bbv::serve
