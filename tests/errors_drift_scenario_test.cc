// Tests for the drift scenario library: schedule shapes (onset, ramp
// monotonicity, seasonal rotation, prior ramp), batch semantics, and the
// determinism contract (a pre-forked stream per batch index makes the whole
// serving stream a pure function of the seed).

#include "errors/drift_scenario.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "datasets/tabular.h"
#include "errors/numeric_errors.h"

namespace bbv::errors {
namespace {

class ScopedThreadsEnv {
 public:
  explicit ScopedThreadsEnv(const char* value) {
    const char* previous = std::getenv("BBV_THREADS");
    had_previous_ = previous != nullptr;
    if (had_previous_) previous_ = previous;
    ::setenv("BBV_THREADS", value, 1);
  }
  ~ScopedThreadsEnv() {
    if (had_previous_) {
      ::setenv("BBV_THREADS", previous_.c_str(), 1);
    } else {
      ::unsetenv("BBV_THREADS");
    }
  }
  ScopedThreadsEnv(const ScopedThreadsEnv&) = delete;
  ScopedThreadsEnv& operator=(const ScopedThreadsEnv&) = delete;

 private:
  bool had_previous_ = false;
  std::string previous_;
};

std::shared_ptr<const data::Dataset> MakeServing(size_t rows = 2000) {
  common::Rng rng(1);
  return std::make_shared<const data::Dataset>(datasets::MakeIncome(rows, rng));
}

DriftScenarioOptions SmallOptions() {
  DriftScenarioOptions options;
  options.num_batches = 12;
  options.batch_size = 150;
  options.drift_onset = 6;
  return options;
}

bool DatasetsIdentical(const data::Dataset& a, const data::Dataset& b) {
  if (a.labels != b.labels) return false;
  if (a.features.NumCols() != b.features.NumCols()) return false;
  for (size_t col = 0; col < a.features.NumCols(); ++col) {
    for (size_t row = 0; row < a.features.NumRows(); ++row) {
      if (!(a.features.column(col).cell(row) ==
            b.features.column(col).cell(row))) {
        return false;
      }
    }
  }
  return true;
}

size_t CountDifferingRows(const data::Dataset& a, const data::Dataset& b) {
  size_t rows = 0;
  for (size_t row = 0; row < a.features.NumRows(); ++row) {
    for (size_t col = 0; col < a.features.NumCols(); ++col) {
      if (!(a.features.column(col).cell(row) ==
            b.features.column(col).cell(row))) {
        ++rows;
        break;
      }
    }
  }
  return rows;
}

TEST(DriftScenarioTest, NoDriftStaysCleanAndNeverExpectsDrift) {
  const auto serving = MakeServing();
  const DriftScenario scenario =
      DriftScenario::NoDrift(serving, SmallOptions());
  EXPECT_FALSE(scenario.ExpectsDrift());
  EXPECT_EQ(scenario.name(), "no_drift");
  for (size_t i = 0; i < scenario.num_batches(); ++i) {
    EXPECT_DOUBLE_EQ(scenario.SeverityAt(i), 0.0);
  }
  common::Rng rng(2);
  const auto batch = scenario.MakeBatch(0, rng);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->NumRows(), SmallOptions().batch_size);
  EXPECT_EQ(batch->features.SchemaString(),
            serving->features.SchemaString());
}

TEST(DriftScenarioTest, SuddenStepsAtOnset) {
  const auto serving = MakeServing();
  const auto corruption = std::make_shared<SignFlip>(
      std::vector<std::string>{"age"}, FractionRange{1.0, 1.0});
  const DriftScenario scenario =
      DriftScenario::Sudden(serving, corruption, 0.6, SmallOptions());
  EXPECT_TRUE(scenario.ExpectsDrift());
  for (size_t i = 0; i < scenario.drift_onset(); ++i) {
    EXPECT_DOUBLE_EQ(scenario.SeverityAt(i), 0.0) << i;
  }
  for (size_t i = scenario.drift_onset(); i < scenario.num_batches(); ++i) {
    EXPECT_DOUBLE_EQ(scenario.SeverityAt(i), 0.6) << i;
  }
  // A post-onset batch has roughly severity * batch_size corrupted rows.
  common::Rng rng(3);
  std::vector<common::Rng> streams = rng.ForkStreams(scenario.num_batches());
  common::Rng clean_rng = streams[6];  // copy BEFORE use: same sampled rows
  const auto drifted =
      scenario.MakeBatch(scenario.drift_onset(), streams[6]);
  ASSERT_TRUE(drifted.ok());
  const data::Dataset reference =
      *DriftScenario::NoDrift(serving, SmallOptions())
           .MakeBatch(0, clean_rng);
  EXPECT_EQ(CountDifferingRows(reference, *drifted), 90u);  // 0.6 * 150
}

TEST(DriftScenarioTest, GradualRampIsMonotoneToMaxSeverity) {
  const auto serving = MakeServing();
  const auto corruption = std::make_shared<Scaling>(
      std::vector<std::string>{"age"}, FractionRange{1.0, 1.0});
  const DriftScenario scenario =
      DriftScenario::GradualRamp(serving, corruption, 0.8, SmallOptions());
  for (size_t i = 0; i < scenario.drift_onset(); ++i) {
    EXPECT_DOUBLE_EQ(scenario.SeverityAt(i), 0.0);
  }
  double previous = 0.0;
  for (size_t i = scenario.drift_onset(); i < scenario.num_batches(); ++i) {
    const double severity = scenario.SeverityAt(i);
    EXPECT_GT(severity, previous) << i;
    previous = severity;
  }
  EXPECT_DOUBLE_EQ(scenario.SeverityAt(scenario.num_batches() - 1), 0.8);
}

TEST(DriftScenarioTest, RecurringRotatesSeasons) {
  const auto serving = MakeServing();
  const auto flip = std::make_shared<const SignFlip>(
      std::vector<std::string>{"age"}, FractionRange{1.0, 1.0});
  const auto scale = std::make_shared<const Scaling>(
      std::vector<std::string>{"age"}, FractionRange{1.0, 1.0},
      std::vector<double>{1000.0});
  DriftScenarioOptions options = SmallOptions();
  options.num_batches = 14;
  options.drift_onset = 6;
  const DriftScenario scenario = DriftScenario::Recurring(
      serving, {flip, scale}, /*severity=*/1.0, /*period_batches=*/2,
      options);
  // Seasons: batches 6-7 flip, 8-9 scale, 10-11 flip again, ...
  common::Rng rng(4);
  std::vector<common::Rng> streams = rng.ForkStreams(options.num_batches);
  const auto flip_batch = scenario.MakeBatch(6, streams[6]);
  const auto scale_batch = scenario.MakeBatch(8, streams[8]);
  ASSERT_TRUE(flip_batch.ok() && scale_batch.ok());
  // Sign flips keep ages negative and small; the scale season multiplies by
  // 1000 — distinguish the seasons by the column magnitude.
  double flip_max = 0.0;
  double scale_max = 0.0;
  for (size_t row = 0; row < options.batch_size; ++row) {
    flip_max = std::max(
        flip_max,
        flip_batch->features.ColumnByName("age").cell(row).AsDouble());
    scale_max = std::max(
        scale_max,
        scale_batch->features.ColumnByName("age").cell(row).AsDouble());
  }
  EXPECT_LT(flip_max, 150.0);
  EXPECT_GT(scale_max, 10000.0);
}

TEST(DriftScenarioTest, FeedbackLoopRampsThePositivePrior) {
  const auto serving = MakeServing(4000);
  DriftScenarioOptions options = SmallOptions();
  options.batch_size = 1000;
  const DriftScenario scenario =
      DriftScenario::FeedbackLoop(serving, 0.9, options);
  common::Rng rng(5);
  std::vector<common::Rng> streams = rng.ForkStreams(options.num_batches);
  auto positive_fraction = [](const data::Dataset& batch) {
    size_t positives = 0;
    for (int label : batch.labels) positives += label == 1 ? 1 : 0;
    return static_cast<double>(positives) /
           static_cast<double>(batch.NumRows());
  };
  const auto before = scenario.MakeBatch(2, streams[2]);
  const auto last =
      scenario.MakeBatch(options.num_batches - 1,
                         streams[options.num_batches - 1]);
  ASSERT_TRUE(before.ok() && last.ok());
  // Pre-onset batches keep the serving prior; the final batch reaches the
  // target within sampling noise.
  EXPECT_LT(positive_fraction(*before), 0.6);
  EXPECT_NEAR(positive_fraction(*last), 0.9, 0.05);
  // Severity reports the prior distance, monotone along the ramp.
  EXPECT_DOUBLE_EQ(scenario.SeverityAt(0), 0.0);
  EXPECT_GT(scenario.SeverityAt(options.num_batches - 1),
            scenario.SeverityAt(options.drift_onset));
}

TEST(DriftScenarioTest, RejectsOutOfRangeBatchIndex) {
  const auto serving = MakeServing();
  const DriftScenario scenario =
      DriftScenario::NoDrift(serving, SmallOptions());
  common::Rng rng(6);
  EXPECT_FALSE(scenario.MakeBatch(SmallOptions().num_batches, rng).ok());
}

TEST(DriftScenarioTest, StandardLibraryHasFixedOrderAndNames) {
  const auto serving = MakeServing();
  const auto scenarios = StandardDriftScenarios(serving, SmallOptions());
  ASSERT_EQ(scenarios.size(), 5u);
  EXPECT_EQ(scenarios[0].name(), "no_drift");
  EXPECT_EQ(scenarios[1].name(), "sudden");
  EXPECT_EQ(scenarios[2].name(), "gradual_ramp");
  EXPECT_EQ(scenarios[3].name(), "recurring");
  EXPECT_EQ(scenarios[4].name(), "feedback_loop");
  EXPECT_FALSE(scenarios[0].ExpectsDrift());
  for (size_t i = 1; i < scenarios.size(); ++i) {
    EXPECT_TRUE(scenarios[i].ExpectsDrift()) << scenarios[i].name();
  }
}

// Determinism (PR-2 gate): the entire stream is a pure function of the
// seed, independent of BBV_THREADS and of which batches are materialized.
TEST(DriftScenarioTest, StreamsByteIdenticalAcrossThreadCounts) {
  const auto serving = MakeServing();
  const auto scenarios = StandardDriftScenarios(serving, SmallOptions());
  for (const DriftScenario& scenario : scenarios) {
    std::vector<data::Dataset> serial;
    {
      ScopedThreadsEnv env("1");
      common::Rng rng(77);
      std::vector<common::Rng> streams =
          rng.ForkStreams(scenario.num_batches());
      for (size_t i = 0; i < scenario.num_batches(); ++i) {
        auto batch = scenario.MakeBatch(i, streams[i]);
        ASSERT_TRUE(batch.ok()) << scenario.name();
        serial.push_back(*std::move(batch));
      }
    }
    {
      ScopedThreadsEnv env("8");
      common::Rng rng(77);
      std::vector<common::Rng> streams =
          rng.ForkStreams(scenario.num_batches());
      for (size_t i = 0; i < scenario.num_batches(); ++i) {
        const auto batch = scenario.MakeBatch(i, streams[i]);
        ASSERT_TRUE(batch.ok());
        EXPECT_TRUE(DatasetsIdentical(serial[i], *batch))
            << scenario.name() << " batch " << i;
      }
    }
  }
}

}  // namespace
}  // namespace bbv::errors
