#include "core/monitor.h"

#include <gtest/gtest.h>

#include <memory>

#include "datasets/tabular.h"
#include "errors/numeric_errors.h"
#include "ml/black_box.h"
#include "ml/sgd_logistic_regression.h"

namespace bbv::core {
namespace {

struct Fixture {
  data::Dataset serving;
  std::unique_ptr<ml::BlackBoxModel> model;
  PerformancePredictor predictor;
};

Fixture MakeFixture(common::Rng& rng) {
  data::Dataset dataset = datasets::MakeIncome(2500, rng);
  auto [source, serving] = data::TrainTestSplit(dataset, 0.7, rng);
  auto [train, test] = data::TrainTestSplit(source, 0.7, rng);
  Fixture fixture;
  fixture.serving = std::move(serving);
  fixture.model = std::make_unique<ml::BlackBoxModel>(
      std::make_unique<ml::SgdLogisticRegression>());
  BBV_CHECK(fixture.model->Train(train, rng).ok());
  PerformancePredictor::Options options;
  options.corruptions_per_generator = 25;
  options.tree_count_grid = {25};
  fixture.predictor = PerformancePredictor(options);
  static const errors::NumericOutliers kOutliers;
  static const errors::Scaling kScaling;
  std::vector<const errors::ErrorGen*> generators = {&kOutliers, &kScaling};
  BBV_CHECK(fixture.predictor.Train(*fixture.model, test, generators, rng)
                .ok());
  return fixture;
}

TEST(ModelMonitorTest, CleanBatchesDoNotAlarm) {
  common::Rng rng(1);
  Fixture fixture = MakeFixture(rng);
  ModelMonitor monitor(fixture.model.get(), fixture.predictor);
  const auto report = monitor.Observe(fixture.serving.features);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->alarm);
  EXPECT_EQ(report->rows, fixture.serving.NumRows());
  EXPECT_EQ(report->batch_id, 0u);
  EXPECT_NEAR(report->estimated_score, report->reference_score, 0.06);
}

TEST(ModelMonitorTest, CatastrophicBatchesAlarm) {
  common::Rng rng(2);
  Fixture fixture = MakeFixture(rng);
  ModelMonitor::Options options;
  options.alarm_threshold = 0.05;
  ModelMonitor monitor(fixture.model.get(), fixture.predictor, options);
  const errors::Scaling severe({}, errors::FractionRange{0.95, 1.0},
                               {1000.0});
  int alarms = 0;
  for (int i = 0; i < 5; ++i) {
    const auto corrupted =
        severe.Corrupt(fixture.serving.features, rng).ValueOrDie();
    const auto report = monitor.Observe(corrupted);
    ASSERT_TRUE(report.ok());
    if (report->alarm) ++alarms;
  }
  EXPECT_GE(alarms, 4);
  EXPECT_EQ(monitor.alarms_raised(), static_cast<size_t>(alarms));
}

TEST(ModelMonitorTest, HistoryIsBounded) {
  common::Rng rng(3);
  Fixture fixture = MakeFixture(rng);
  ModelMonitor::Options options;
  options.history_limit = 3;
  ModelMonitor monitor(fixture.model.get(), fixture.predictor, options);
  const auto proba =
      fixture.model->PredictProba(fixture.serving.features).ValueOrDie();
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(monitor.ObserveFromProba(proba).ok());
  }
  EXPECT_EQ(monitor.history().size(), 3u);
  EXPECT_EQ(monitor.batches_observed(), 7u);
  // Oldest entries were dropped; the last report has id 6.
  EXPECT_EQ(monitor.history().back().batch_id, 6u);
  EXPECT_EQ(monitor.history().front().batch_id, 4u);
}

TEST(ModelMonitorTest, EmptyBatchRejected) {
  common::Rng rng(4);
  Fixture fixture = MakeFixture(rng);
  ModelMonitor monitor(fixture.model.get(), fixture.predictor);
  EXPECT_FALSE(monitor.ObserveFromProba(linalg::Matrix()).ok());
}

TEST(ModelMonitorTest, SummaryMentionsCounts) {
  common::Rng rng(5);
  Fixture fixture = MakeFixture(rng);
  ModelMonitor monitor(fixture.model.get(), fixture.predictor);
  ASSERT_TRUE(monitor.Observe(fixture.serving.features).ok());
  const std::string summary = monitor.Summary();
  EXPECT_NE(summary.find("1 batches observed"), std::string::npos);
  EXPECT_NE(summary.find("median="), std::string::npos);
}

}  // namespace
}  // namespace bbv::core
