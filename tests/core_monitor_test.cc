#include "core/monitor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "common/telemetry.h"
#include "datasets/tabular.h"
#include "errors/numeric_errors.h"
#include "json_test_util.h"
#include "ml/black_box.h"
#include "ml/sgd_logistic_regression.h"

namespace bbv::core {
namespace {

struct Fixture {
  data::Dataset serving;
  std::unique_ptr<ml::BlackBoxModel> model;
  PerformancePredictor predictor;
};

Fixture MakeFixture(common::Rng& rng) {
  data::Dataset dataset = datasets::MakeIncome(2500, rng);
  auto [source, serving] = data::TrainTestSplit(dataset, 0.7, rng);
  auto [train, test] = data::TrainTestSplit(source, 0.7, rng);
  Fixture fixture;
  fixture.serving = std::move(serving);
  fixture.model = std::make_unique<ml::BlackBoxModel>(
      std::make_unique<ml::SgdLogisticRegression>());
  BBV_CHECK(fixture.model->Train(train, rng).ok());
  PerformancePredictor::Options options;
  options.corruptions_per_generator = 25;
  options.tree_count_grid = {25};
  fixture.predictor = PerformancePredictor(options);
  static const errors::NumericOutliers kOutliers;
  static const errors::Scaling kScaling;
  std::vector<const errors::ErrorGen*> generators = {&kOutliers, &kScaling};
  BBV_CHECK(fixture.predictor.Train(*fixture.model, test, generators, rng)
                .ok());
  return fixture;
}

TEST(ModelMonitorTest, CleanBatchesDoNotAlarm) {
  common::Rng rng(1);
  Fixture fixture = MakeFixture(rng);
  ModelMonitor monitor(fixture.model.get(), fixture.predictor);
  const auto report = monitor.Observe(fixture.serving.features);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->alarm);
  EXPECT_EQ(report->rows, fixture.serving.NumRows());
  EXPECT_EQ(report->batch_id, 0u);
  EXPECT_NEAR(report->estimate.point, report->reference_score, 0.06);
}

TEST(ModelMonitorTest, CatastrophicBatchesAlarm) {
  common::Rng rng(2);
  Fixture fixture = MakeFixture(rng);
  ModelMonitor::Options options;
  options.alarm_threshold = 0.05;
  ModelMonitor monitor(fixture.model.get(), fixture.predictor, options);
  const errors::Scaling severe({}, errors::FractionRange{0.95, 1.0},
                               {1000.0});
  int alarms = 0;
  for (int i = 0; i < 5; ++i) {
    const auto corrupted =
        severe.Corrupt(fixture.serving.features, rng).ValueOrDie();
    const auto report = monitor.Observe(corrupted);
    ASSERT_TRUE(report.ok());
    if (report->alarm) ++alarms;
  }
  EXPECT_GE(alarms, 4);
  EXPECT_EQ(monitor.alarms_raised(), static_cast<size_t>(alarms));
}

TEST(ModelMonitorTest, HistoryIsBounded) {
  common::Rng rng(3);
  Fixture fixture = MakeFixture(rng);
  ModelMonitor::Options options;
  options.history_limit = 3;
  ModelMonitor monitor(fixture.model.get(), fixture.predictor, options);
  const auto proba =
      fixture.model->PredictProba(fixture.serving.features).ValueOrDie();
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(monitor.Observe(proba).ok());
  }
  EXPECT_EQ(monitor.history().size(), 3u);
  EXPECT_EQ(monitor.batches_observed(), 7u);
  // Oldest entries were dropped; the last report has id 6.
  EXPECT_EQ(monitor.history().back().batch_id, 6u);
  EXPECT_EQ(monitor.history().front().batch_id, 4u);
}

TEST(ModelMonitorTest, EmptyBatchRejected) {
  common::Rng rng(4);
  Fixture fixture = MakeFixture(rng);
  ModelMonitor monitor(fixture.model.get(), fixture.predictor);
  EXPECT_FALSE(monitor.Observe(linalg::Matrix()).ok());
}

TEST(ModelMonitorTest, SummaryMentionsCounts) {
  common::Rng rng(5);
  Fixture fixture = MakeFixture(rng);
  ModelMonitor monitor(fixture.model.get(), fixture.predictor);
  ASSERT_TRUE(monitor.Observe(fixture.serving.features).ok());
  const std::string summary = monitor.Summary();
  EXPECT_NE(summary.find("1 batches observed"), std::string::npos);
  EXPECT_NE(summary.find("median="), std::string::npos);
}

TEST(ModelMonitorTest, AlarmFiresExactlyAtThreshold) {
  common::Rng rng(6);
  Fixture fixture = MakeFixture(rng);
  const errors::Scaling severe({}, errors::FractionRange{0.95, 1.0},
                               {1000.0});
  const auto corrupted =
      severe.Corrupt(fixture.serving.features, rng).ValueOrDie();
  const auto proba = fixture.model->PredictProba(corrupted).ValueOrDie();
  // Deterministic relative drop of this exact batch.
  const double estimate =
      fixture.predictor.EstimateScoreFromProba(proba).ValueOrDie().point;
  const double reference = fixture.predictor.test_score();
  const double drop = (reference - estimate) / reference;
  ASSERT_GT(drop, 0.0);
  ASSERT_LT(drop, 1.0);

  // >= semantics: a drop exactly at the threshold alarms... (point-drop
  // policy, so the comparison under test sees exactly `drop`)
  ModelMonitor::Options at_options;
  at_options.alarm_policy = ModelMonitor::AlarmPolicy::kPointDrop;
  at_options.alarm_threshold = drop;
  ModelMonitor at_monitor(fixture.model.get(), fixture.predictor, at_options);
  const auto at_report = at_monitor.Observe(proba);
  ASSERT_TRUE(at_report.ok());
  EXPECT_TRUE(at_report->alarm);

  // ...while a threshold just above it does not.
  ModelMonitor::Options above_options;
  above_options.alarm_policy = ModelMonitor::AlarmPolicy::kPointDrop;
  above_options.alarm_threshold = drop + 1e-9;
  ModelMonitor above_monitor(fixture.model.get(), fixture.predictor,
                             above_options);
  const auto above_report = above_monitor.Observe(proba);
  ASSERT_TRUE(above_report.ok());
  EXPECT_FALSE(above_report->alarm);
}

TEST(ModelMonitorTest, HistoryTrimsAtExactBoundary) {
  common::Rng rng(7);
  Fixture fixture = MakeFixture(rng);
  ModelMonitor::Options options;
  options.history_limit = 3;
  ModelMonitor monitor(fixture.model.get(), fixture.predictor, options);
  const auto proba =
      fixture.model->PredictProba(fixture.serving.features).ValueOrDie();
  // Exactly at the limit: nothing is dropped yet.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(monitor.Observe(proba).ok());
  }
  EXPECT_EQ(monitor.history().size(), 3u);
  EXPECT_EQ(monitor.history().front().batch_id, 0u);
  // One past the limit: only the oldest entry goes.
  ASSERT_TRUE(monitor.Observe(proba).ok());
  EXPECT_EQ(monitor.history().size(), 3u);
  EXPECT_EQ(monitor.history().front().batch_id, 1u);
  EXPECT_EQ(monitor.history().back().batch_id, 3u);
}

TEST(ModelMonitorTest, ExportJsonRoundTrips) {
  common::Rng rng(8);
  Fixture fixture = MakeFixture(rng);
  ModelMonitor monitor(fixture.model.get(), fixture.predictor);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(monitor.Observe(fixture.serving.features).ok());
  }
  const std::string json = monitor.ExportJson();
  EXPECT_TRUE(bbv::testing::JsonParses(json)) << json;
  for (const char* key :
       {"\"monitor\"", "\"reference_score\"", "\"alarm_threshold\"",
        "\"batches_observed\"", "\"alarm_rate\"", "\"history\"",
        "\"batch_id\"", "\"relative_drop\"", "\"latency_seconds\"",
        "\"estimate_calls_total\"", "\"alarms_total\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

TEST(ModelMonitorTest, ExportJsonOfEmptyHistoryRoundTrips) {
  common::Rng rng(9);
  Fixture fixture = MakeFixture(rng);
  const ModelMonitor monitor(fixture.model.get(), fixture.predictor);
  EXPECT_TRUE(bbv::testing::JsonParses(monitor.ExportJson()));
}

PerformancePredictor TrainTinyPredictor(double test_score, common::Rng& rng) {
  PerformancePredictor::Options options;
  options.tree_count_grid = {5};
  PerformancePredictor predictor(options);
  const std::vector<std::vector<double>> statistics = {
      {0.1}, {0.2}, {0.3}, {0.4}};
  const std::vector<double> scores = {0.9, 0.8, 0.7, 0.6};
  BBV_CHECK(
      predictor.TrainFromStatistics(statistics, scores, test_score, rng).ok());
  return predictor;
}

TEST(ModelMonitorTest, CreateRejectsDegenerateReferenceScore) {
  common::Rng rng(10);
  const ml::BlackBoxModel model(std::make_unique<ml::SgdLogisticRegression>());
  for (double degenerate :
       {0.0, -0.25, std::numeric_limits<double>::quiet_NaN(),
        std::numeric_limits<double>::infinity()}) {
    const auto monitor =
        ModelMonitor::Create(&model, TrainTinyPredictor(degenerate, rng));
    EXPECT_FALSE(monitor.ok()) << degenerate;
    EXPECT_NE(monitor.status().ToString().find("reference score"),
              std::string::npos);
  }
}

TEST(ModelMonitorTest, CreateRejectsBadConfiguration) {
  common::Rng rng(11);
  PerformancePredictor predictor = TrainTinyPredictor(0.8, rng);
  const ml::BlackBoxModel model(std::make_unique<ml::SgdLogisticRegression>());
  EXPECT_FALSE(ModelMonitor::Create(nullptr, predictor).ok());
  EXPECT_FALSE(ModelMonitor::Create(&model, PerformancePredictor()).ok());
  ModelMonitor::Options bad_threshold;
  bad_threshold.alarm_threshold = 1.5;
  EXPECT_FALSE(ModelMonitor::Create(&model, predictor, bad_threshold).ok());
  ModelMonitor::Options no_history;
  no_history.history_limit = 0;
  EXPECT_FALSE(ModelMonitor::Create(&model, predictor, no_history).ok());
  EXPECT_TRUE(ModelMonitor::Create(&model, predictor).ok());
}

TEST(ModelMonitorTest, ReportsCarryLatencyAndTelemetrySnapshot) {
  const bool was_enabled = common::telemetry::Enabled();
  common::telemetry::SetEnabled(true);
  common::Rng rng(12);
  Fixture fixture = MakeFixture(rng);
  ModelMonitor monitor(fixture.model.get(), fixture.predictor);
  const auto report = monitor.Observe(fixture.serving.features);
  common::telemetry::SetEnabled(was_enabled);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->latency_seconds, 0.0);
  EXPECT_GE(report->estimate_calls_total, 1u);
  EXPECT_EQ(report->alarms_total, monitor.alarms_raised());
  EXPECT_EQ(monitor.history().back().latency_seconds,
            report->latency_seconds);
}

TEST(ModelMonitorTest, WindowedCreateRejectsBadSketchResolution) {
  common::Rng rng(13);
  Fixture fixture = MakeFixture(rng);
  ModelMonitor::Options options;
  options.window_batches = 4;
  for (int bits : {0, -3, 25}) {
    options.sketch_resolution_bits = bits;
    EXPECT_FALSE(
        ModelMonitor::Create(fixture.model.get(), fixture.predictor, options)
            .ok())
        << bits;
  }
  options.sketch_resolution_bits = 12;
  EXPECT_TRUE(
      ModelMonitor::Create(fixture.model.get(), fixture.predictor, options)
          .ok());
}

TEST(ModelMonitorTest, WindowedHandlesEmptyAndSingleRowBatches) {
  common::Rng rng(14);
  Fixture fixture = MakeFixture(rng);
  ModelMonitor::Options options;
  options.window_batches = 3;
  ModelMonitor monitor(fixture.model.get(), fixture.predictor, options);

  EXPECT_FALSE(monitor.Observe(linalg::Matrix()).ok());
  EXPECT_EQ(monitor.batches_observed(), 0u);

  const auto proba =
      fixture.model->PredictProba(fixture.serving.features).ValueOrDie();
  const auto single = monitor.Observe(proba.SelectRows({0}));
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single->rows, 1u);
  EXPECT_EQ(single->window_batches_used, 1u);
  EXPECT_EQ(single->window_rows, 1u);
  EXPECT_TRUE(std::isfinite(single->windowed_estimate.point));
  EXPECT_TRUE(std::isfinite(single->windowed_relative_drop));
}

TEST(ModelMonitorTest, WindowedEvictsWhenBatchCountExceedsWindow) {
  common::Rng rng(15);
  Fixture fixture = MakeFixture(rng);
  ModelMonitor::Options options;
  options.window_batches = 2;
  ModelMonitor monitor(fixture.model.get(), fixture.predictor, options);
  const auto proba =
      fixture.model->PredictProba(fixture.serving.features).ValueOrDie();
  for (int i = 0; i < 5; ++i) {
    const auto report = monitor.Observe(proba);
    ASSERT_TRUE(report.ok());
    // The merged summary never covers more than window_batches batches.
    EXPECT_EQ(report->window_batches_used,
              std::min<size_t>(static_cast<size_t>(i) + 1, 2u));
    EXPECT_EQ(report->window_rows,
              report->window_batches_used * proba.rows());
  }
  EXPECT_EQ(monitor.batches_observed(), 5u);
  const std::string summary = monitor.Summary();
  EXPECT_NE(summary.find("sliding window"), std::string::npos);
  const std::string json = monitor.ExportJson();
  EXPECT_TRUE(bbv::testing::JsonParses(json));
  for (const char* key :
       {"\"window_batches\"", "\"windowed_estimate\"",
        "\"windowed_relative_drop\"", "\"window_batches_used\"",
        "\"window_rows\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

TEST(ModelMonitorTest, WindowedRejectsNonFiniteWithoutPollutingWindow) {
  common::Rng rng(16);
  Fixture fixture = MakeFixture(rng);
  ModelMonitor::Options options;
  options.window_batches = 4;
  ModelMonitor monitor(fixture.model.get(), fixture.predictor, options);
  const auto proba =
      fixture.model->PredictProba(fixture.serving.features).ValueOrDie();
  ASSERT_TRUE(monitor.Observe(proba).ok());

  linalg::Matrix poisoned = proba;
  poisoned.At(2, 0) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(monitor.Observe(poisoned).ok());
  EXPECT_EQ(monitor.batches_observed(), 1u);

  // The rejected batch must not occupy a window slot.
  const auto next = monitor.Observe(proba);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->window_batches_used, 2u);
  EXPECT_EQ(next->window_rows, 2u * proba.rows());
}

TEST(ModelMonitorTest, SwapPredictorStartsNewEpochAndClearsWindow) {
  common::Rng rng(17);
  Fixture fixture = MakeFixture(rng);
  const auto shared =
      std::make_shared<const PerformancePredictor>(fixture.predictor);
  ModelMonitor::Options options;
  options.window_batches = 4;
  auto monitor = ModelMonitor::CreateForProba("tenant", shared, options);
  ASSERT_TRUE(monitor.ok());
  const auto proba =
      fixture.model->PredictProba(fixture.serving.features).ValueOrDie();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(monitor->Observe(proba).ok());
  }
  EXPECT_EQ(monitor->history().back().window_batches_used, 3u);
  EXPECT_EQ(monitor->history().back().epoch, 0u);
  EXPECT_EQ(monitor->epoch(), 0u);

  // Rejected swaps keep the old predictor, window and epoch.
  EXPECT_FALSE(monitor->SwapPredictor(nullptr).ok());
  EXPECT_FALSE(
      monitor->SwapPredictor(std::make_shared<const PerformancePredictor>())
          .ok());
  EXPECT_EQ(monitor->epoch(), 0u);

  ASSERT_TRUE(monitor->SwapPredictor(shared).ok());
  EXPECT_EQ(monitor->epoch(), 1u);
  // Epoch boundary: the window must not straddle the swap, so the first
  // post-swap report covers exactly its own batch.
  const auto report = monitor->Observe(proba);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->window_batches_used, 1u);
  EXPECT_EQ(report->window_rows, proba.rows());
  EXPECT_EQ(report->epoch, 1u);

  const std::string json = monitor->ExportJson();
  EXPECT_TRUE(bbv::testing::JsonParses(json));
  EXPECT_NE(json.find("\"predictor_epoch\""), std::string::npos);
  EXPECT_NE(json.find("\"epoch\""), std::string::npos);
}

TEST(ModelMonitorTest, ProbaOnlyMonitorRejectsObserveAndNullPredictor) {
  common::Rng rng(18);
  Fixture fixture = MakeFixture(rng);
  EXPECT_FALSE(
      ModelMonitor::CreateForProba("tenant", nullptr, {}).ok());
  auto monitor = ModelMonitor::CreateForProba(
      "tenant",
      std::make_shared<const PerformancePredictor>(fixture.predictor), {});
  ASSERT_TRUE(monitor.ok());
  // No black box is attached, so frame-level observation cannot work; the
  // failure must be a Status, not a crash.
  EXPECT_FALSE(monitor->Observe(fixture.serving.features).ok());
  EXPECT_TRUE(
      monitor
          ->Observe(
              fixture.model->PredictProba(fixture.serving.features)
                  .ValueOrDie())
          .ok());
  EXPECT_NE(monitor->Summary().find("tenant"), std::string::npos);
}

}  // namespace
}  // namespace bbv::core
