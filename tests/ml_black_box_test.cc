#include "ml/black_box.h"

#include <gtest/gtest.h>

#include <memory>

#include "datasets/tabular.h"
#include "ml/sgd_logistic_regression.h"

namespace bbv::ml {
namespace {

TEST(BlackBoxModelTest, TrainPredictScoreRoundTrip) {
  common::Rng rng(1);
  data::Dataset dataset = datasets::MakeIncome(2000, rng);
  auto [train, test] = data::TrainTestSplit(dataset, 0.7, rng);

  BlackBoxModel model(std::make_unique<SgdLogisticRegression>());
  ASSERT_TRUE(model.Train(train, rng).ok());
  EXPECT_EQ(model.num_classes(), 2);
  EXPECT_EQ(model.Name(), "lr");

  const auto proba = model.PredictProba(test.features);
  ASSERT_TRUE(proba.ok());
  EXPECT_EQ(proba->rows(), test.NumRows());
  EXPECT_EQ(proba->cols(), 2u);

  const auto accuracy = model.ScoreAccuracy(test);
  ASSERT_TRUE(accuracy.ok());
  EXPECT_GT(*accuracy, 0.6);
  const auto auc = model.ScoreAuc(test);
  ASSERT_TRUE(auc.ok());
  EXPECT_GT(*auc, 0.6);
}

TEST(BlackBoxModelTest, PredictBeforeTrainFails) {
  BlackBoxModel model(std::make_unique<SgdLogisticRegression>());
  const auto result = model.PredictProba(data::DataFrame());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kFailedPrecondition);
}

TEST(BlackBoxModelTest, TrainOnEmptyDatasetFails) {
  common::Rng rng(2);
  BlackBoxModel model(std::make_unique<SgdLogisticRegression>());
  EXPECT_FALSE(model.Train(data::Dataset(), rng).ok());
}

TEST(BlackBoxModelTest, PredictOnMismatchedSchemaFails) {
  common::Rng rng(3);
  data::Dataset dataset = datasets::MakeIncome(500, rng);
  BlackBoxModel model(std::make_unique<SgdLogisticRegression>());
  ASSERT_TRUE(model.Train(dataset, rng).ok());
  data::DataFrame wrong;
  BBV_CHECK(wrong.AddColumn(data::Column::Numeric("zzz", {1.0})).ok());
  EXPECT_FALSE(model.PredictProba(wrong).ok());
}

TEST(BlackBoxModelTest, HandlesCorruptedCellsGracefully) {
  // The pipeline must tolerate NA / wrong-typed cells at serving time: they
  // encode to zeros instead of failing, which is exactly how corruption
  // reaches the model in the paper's experiments.
  common::Rng rng(4);
  data::Dataset dataset = datasets::MakeIncome(500, rng);
  BlackBoxModel model(std::make_unique<SgdLogisticRegression>());
  ASSERT_TRUE(model.Train(dataset, rng).ok());
  data::DataFrame corrupted = dataset.features;
  corrupted.column(0).cell(0) = data::CellValue::Na();
  corrupted.ColumnByName("education").cell(0) = data::CellValue(123.0);
  const auto proba = model.PredictProba(corrupted);
  ASSERT_TRUE(proba.ok());
  EXPECT_EQ(proba->rows(), corrupted.NumRows());
}

}  // namespace
}  // namespace bbv::ml
