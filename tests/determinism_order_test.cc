// Regression tests for the hash-order determinism fixes: the REL detector's
// categorical counts, Column::DistinctStrings and the one-hot vocabulary
// used to live in unordered containers, so their outputs depended on
// libstdc++'s hash seed and insertion history. They now use ordered
// containers; these tests pin the order-independence contract so a revert
// back to hash iteration fails loudly instead of flaking the determinism
// gate.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "data/column.h"
#include "data/dataframe.h"
#include "featurize/one_hot_encoder.h"

namespace bbv {
namespace {

data::DataFrame CategoricalFrame(const std::vector<std::string>& values) {
  data::DataFrame frame;
  BBV_CHECK(frame.AddColumn(data::Column::Categorical("color", values)).ok());
  return frame;
}

TEST(DeterminismOrderTest, DistinctStringsKeepsFirstSeenOrder) {
  const data::Column column = data::Column::Categorical(
      "c", {"zebra", "apple", "zebra", "mango", "apple", "kiwi"});
  EXPECT_EQ(column.DistinctStrings(),
            (std::vector<std::string>{"zebra", "apple", "mango", "kiwi"}));
}

TEST(DeterminismOrderTest, OneHotIndicesFollowFitAppearanceOrder) {
  featurize::OneHotEncoder encoder;
  ASSERT_TRUE(
      encoder.Fit(data::Column::Categorical("c", {"z", "a", "m", "a"})).ok());
  ASSERT_EQ(encoder.OutputDim(), 3u);
  EXPECT_EQ(encoder.CategoryIndex("z"), 0);
  EXPECT_EQ(encoder.CategoryIndex("a"), 1);
  EXPECT_EQ(encoder.CategoryIndex("m"), 2);
  EXPECT_EQ(encoder.CategoryIndex("unseen"), -1);

  const linalg::Matrix encoded =
      encoder.Transform(data::Column::Categorical("c", {"a", "z", "q"}));
  ASSERT_EQ(encoded.rows(), 3u);
  ASSERT_EQ(encoded.cols(), 3u);
  EXPECT_EQ(encoded.At(0, 1), 1.0);
  EXPECT_EQ(encoded.At(1, 0), 1.0);
  for (size_t col = 0; col < encoded.cols(); ++col) {
    EXPECT_EQ(encoded.At(2, col), 0.0) << "unseen row must be all-zero";
  }
}

TEST(DeterminismOrderTest, RelDetectorIgnoresCategoryInsertionOrder) {
  // Same category multiset, opposite first-appearance order. With hash-keyed
  // reference counts the chi-squared cell vectors could be assembled in
  // different orders for the two fits; the decision must be identical.
  std::vector<std::string> reference_rows;
  for (int i = 0; i < 40; ++i) {
    reference_rows.push_back(i % 2 == 0 ? "red" : "blue");
    reference_rows.push_back("green");
  }
  std::vector<std::string> reversed(reference_rows.rbegin(),
                                    reference_rows.rend());

  std::vector<std::string> serving_rows(60, "red");
  for (int i = 0; i < 20; ++i) serving_rows.push_back("blue");

  core::RelShiftDetector forward;
  ASSERT_TRUE(forward.Fit(CategoricalFrame(reference_rows)).ok());
  core::RelShiftDetector backward;
  ASSERT_TRUE(backward.Fit(CategoricalFrame(reversed)).ok());

  const auto forward_result =
      forward.DetectsShift(CategoricalFrame(serving_rows));
  const auto backward_result =
      backward.DetectsShift(CategoricalFrame(serving_rows));
  ASSERT_TRUE(forward_result.ok());
  ASSERT_TRUE(backward_result.ok());
  EXPECT_EQ(forward_result.value(), backward_result.value());
  // The all-red skew is a textbook categorical shift — it must alarm.
  EXPECT_TRUE(forward_result.value());
}

TEST(DeterminismOrderTest, RelDetectorIsRepeatableOnCleanData) {
  std::vector<std::string> rows;
  for (int i = 0; i < 50; ++i) {
    rows.push_back("red");
    rows.push_back("blue");
  }
  core::RelShiftDetector detector;
  ASSERT_TRUE(detector.Fit(CategoricalFrame(rows)).ok());
  const auto first = detector.DetectsShift(CategoricalFrame(rows));
  const auto second = detector.DetectsShift(CategoricalFrame(rows));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value(), second.value());
  EXPECT_FALSE(first.value()) << "identical data must not alarm";
}

}  // namespace
}  // namespace bbv
