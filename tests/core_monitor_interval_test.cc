// Interval-aware alarm contracts of ModelMonitor:
//  - kCertifiedDrop thresholds on the drop the interval's optimistic
//    endpoint concedes, kPointDrop on the raw point drop, and both degrade
//    to identical behavior on an uncalibrated predictor;
//  - BatchReport's drop fields are exactly the documented functions of the
//    estimate and reference;
//  - ExportJson carries the interval and policy, and emits the windowed
//    configuration/fields only for windowed monitors (regression test: a
//    classic monitor used to emit "window_batches": 0, reading as a
//    degenerate zero-batch window instead of "not windowed").

#include "core/monitor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/prediction_statistics.h"
#include "json_test_util.h"
#include "linalg/matrix.h"

namespace bbv::core {
namespace {

/// Two-class batch where `good_fraction` of the rows are confident (0.99)
/// and the rest ambiguous (0.51) — same construction the streaming tests
/// use, so batch composition maps linearly onto the estimated score.
linalg::Matrix MixtureBatch(double good_fraction, size_t rows) {
  linalg::Matrix batch(rows, 2);
  const size_t good_rows =
      static_cast<size_t>(good_fraction * static_cast<double>(rows) + 0.5);
  for (size_t i = 0; i < rows; ++i) {
    const double confidence = i < good_rows ? 0.99 : 0.51;
    const size_t winner = i % 2;
    batch.At(i, winner) = confidence;
    batch.At(i, 1 - winner) = 1.0 - confidence;
  }
  return batch;
}

/// Synthetic predictor whose score is a linear function of the confident
/// fraction; reference (clean-test) score 0.99. Calibrated by default.
std::shared_ptr<const PerformancePredictor> TrainSyntheticPredictor(
    common::Rng& rng, bool calibrate = true) {
  PerformancePredictor::Options options;
  options.tree_count_grid = {30};
  options.conformal_calibration = calibrate;
  auto predictor = std::make_shared<PerformancePredictor>(options);
  std::vector<std::vector<double>> statistics;
  std::vector<double> scores;
  for (size_t rows : {400ul, 410ul, 420ul}) {
    for (int level = 0; level <= 10; ++level) {
      const double fraction = static_cast<double>(level) / 10.0;
      statistics.push_back(PredictionStatistics(MixtureBatch(fraction, rows)));
      scores.push_back(0.51 + 0.48 * fraction);
    }
  }
  BBV_CHECK(
      predictor->TrainFromStatistics(statistics, scores, 0.99, rng).ok());
  return predictor;
}

ModelMonitor MakeMonitor(std::shared_ptr<const PerformancePredictor> predictor,
                         ModelMonitor::Options options,
                         const std::string& name = "synthetic") {
  auto monitor = ModelMonitor::CreateForProba(name, std::move(predictor),
                                              options);
  BBV_CHECK(monitor.ok());
  return std::move(monitor).ValueOrDie();
}

TEST(MonitorIntervalTest, ReportDropsAreExactFunctionsOfTheEstimate) {
  common::Rng rng(11);
  auto predictor = TrainSyntheticPredictor(rng);
  ASSERT_TRUE(predictor->calibrator().calibrated());
  ModelMonitor monitor = MakeMonitor(predictor, {});
  const auto report = monitor.Observe(MixtureBatch(0.6, 400));
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->estimate.calibrated());
  EXPECT_LE(report->estimate.lo, report->estimate.point);
  EXPECT_GE(report->estimate.hi, report->estimate.point);
  EXPECT_DOUBLE_EQ(report->estimate.coverage_level,
                   predictor->coverage_level());
  const double reference = report->reference_score;
  EXPECT_DOUBLE_EQ(reference, 0.99);
  EXPECT_DOUBLE_EQ(report->relative_drop,
                   (reference - report->estimate.point) / reference);
  EXPECT_DOUBLE_EQ(report->certified_drop,
                   (reference - report->estimate.hi) / reference);
  // hi >= point, so the certified drop is never larger than the point drop.
  EXPECT_LE(report->certified_drop, report->relative_drop);
}

TEST(MonitorIntervalTest, CertifiedPolicyToleratesDropsInsideTheInterval) {
  common::Rng rng(12);
  auto predictor = TrainSyntheticPredictor(rng);
  // Probe a mid-drop batch to learn its two drops, then pick a threshold
  // strictly between them: the point drop crosses it, the certified drop
  // does not. The gap is the interval half-width, which a calibrated
  // predictor guarantees to be positive.
  ModelMonitor probe = MakeMonitor(predictor, {});
  const auto probed = probe.Observe(MixtureBatch(0.8, 400));
  ASSERT_TRUE(probed.ok());
  ASSERT_GT(probed->relative_drop, probed->certified_drop);
  ASSERT_GT(probed->relative_drop, 0.0);
  ModelMonitor::Options options;
  options.alarm_threshold = std::max(
      0.5 * (probed->relative_drop + probed->certified_drop), 1e-6);
  options.alarm_policy = ModelMonitor::AlarmPolicy::kPointDrop;
  ModelMonitor point_monitor = MakeMonitor(predictor, options, "point");
  options.alarm_policy = ModelMonitor::AlarmPolicy::kCertifiedDrop;
  ModelMonitor certified_monitor =
      MakeMonitor(predictor, options, "certified");
  const auto point_report = point_monitor.Observe(MixtureBatch(0.8, 400));
  const auto certified_report =
      certified_monitor.Observe(MixtureBatch(0.8, 400));
  ASSERT_TRUE(point_report.ok());
  ASSERT_TRUE(certified_report.ok());
  // Same batch, same estimate — only the alarm policy differs.
  EXPECT_EQ(point_report->estimate, certified_report->estimate);
  EXPECT_TRUE(point_report->alarm);
  EXPECT_FALSE(certified_report->alarm);
  // A drop so large the whole interval clears the threshold alarms both.
  const auto point_crash = point_monitor.Observe(MixtureBatch(0.0, 400));
  const auto certified_crash =
      certified_monitor.Observe(MixtureBatch(0.0, 400));
  ASSERT_TRUE(point_crash.ok());
  ASSERT_TRUE(certified_crash.ok());
  EXPECT_TRUE(point_crash->alarm);
  EXPECT_TRUE(certified_crash->alarm);
  EXPECT_GE(certified_crash->certified_drop, options.alarm_threshold);
}

TEST(MonitorIntervalTest, PoliciesIdenticalOnUncalibratedPredictor) {
  common::Rng rng(13);
  auto predictor = TrainSyntheticPredictor(rng, /*calibrate=*/false);
  ASSERT_FALSE(predictor->calibrator().calibrated());
  ModelMonitor::Options options;
  options.alarm_threshold = 0.05;
  options.alarm_policy = ModelMonitor::AlarmPolicy::kCertifiedDrop;
  ModelMonitor certified_monitor =
      MakeMonitor(predictor, options, "certified");
  options.alarm_policy = ModelMonitor::AlarmPolicy::kPointDrop;
  ModelMonitor point_monitor = MakeMonitor(predictor, options, "point");
  for (const double fraction : {1.0, 0.9, 0.6, 0.2}) {
    const auto certified =
        certified_monitor.Observe(MixtureBatch(fraction, 400));
    const auto point = point_monitor.Observe(MixtureBatch(fraction, 400));
    ASSERT_TRUE(certified.ok());
    ASSERT_TRUE(point.ok());
    EXPECT_FALSE(certified->estimate.calibrated());
    // Degenerate interval: hi == point, so the two drops coincide and the
    // policies cannot disagree.
    EXPECT_DOUBLE_EQ(certified->certified_drop, certified->relative_drop);
    EXPECT_EQ(certified->alarm, point->alarm);
  }
}

TEST(MonitorIntervalTest, WindowedAlarmFollowsWindowedCertifiedDrop) {
  common::Rng rng(14);
  auto predictor = TrainSyntheticPredictor(rng);
  ModelMonitor::Options options;
  options.alarm_threshold = 0.2;
  options.window_batches = 3;
  ModelMonitor monitor = MakeMonitor(predictor, options, "windowed");
  // One good batch, then a stream of bad ones: the windowed estimate decays
  // toward the bad level as the window turns over.
  ASSERT_TRUE(monitor.Observe(MixtureBatch(1.0, 400)).ok());
  for (int i = 0; i < 4; ++i) {
    const auto report = monitor.Observe(MixtureBatch(0.0, 400));
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->windowed_estimate.calibrated());
    EXPECT_DOUBLE_EQ(
        report->windowed_certified_drop,
        (report->reference_score - report->windowed_estimate.hi) /
            report->reference_score);
    EXPECT_LE(report->windowed_certified_drop,
              report->windowed_relative_drop);
    // The alarm is driven by the windowed certified drop, never the
    // per-batch fields.
    EXPECT_EQ(report->alarm,
              report->windowed_certified_drop >= options.alarm_threshold);
  }
  // Once the window is all-bad the certified drop must clear 0.2: the
  // window estimate sits near 0.51 against reference 0.99.
  const auto steady = monitor.Observe(MixtureBatch(0.0, 400));
  ASSERT_TRUE(steady.ok());
  EXPECT_EQ(steady->window_batches_used, 3u);
  EXPECT_TRUE(steady->alarm);
}

TEST(MonitorIntervalTest, ExportJsonCarriesIntervalAndPolicy) {
  common::Rng rng(15);
  auto predictor = TrainSyntheticPredictor(rng);
  ModelMonitor monitor = MakeMonitor(predictor, {});
  ASSERT_TRUE(monitor.Observe(MixtureBatch(0.7, 400)).ok());
  const std::string json = monitor.ExportJson();
  EXPECT_TRUE(testing::JsonValidator(json).Validate()) << json;
  EXPECT_NE(json.find("\"alarm_policy\": \"certified_drop\""),
            std::string::npos);
  EXPECT_NE(json.find("\"coverage_level\""), std::string::npos);
  EXPECT_NE(json.find("\"estimate_lo\""), std::string::npos);
  EXPECT_NE(json.find("\"estimate_hi\""), std::string::npos);
  EXPECT_NE(json.find("\"estimate_width\""), std::string::npos);
  EXPECT_NE(json.find("\"certified_drop\""), std::string::npos);

  ModelMonitor::Options point_options;
  point_options.alarm_policy = ModelMonitor::AlarmPolicy::kPointDrop;
  ModelMonitor point_monitor = MakeMonitor(predictor, point_options, "point");
  EXPECT_NE(point_monitor.ExportJson().find("\"alarm_policy\": \"point_drop\""),
            std::string::npos);
}

TEST(MonitorIntervalTest, ExportJsonOmitsWindowFieldsForClassicMonitors) {
  common::Rng rng(16);
  auto predictor = TrainSyntheticPredictor(rng);
  ModelMonitor classic = MakeMonitor(predictor, {}, "classic");
  ASSERT_TRUE(classic.Observe(MixtureBatch(0.9, 400)).ok());
  const std::string classic_json = classic.ExportJson();
  EXPECT_TRUE(testing::JsonValidator(classic_json).Validate()) << classic_json;
  // Regression: no degenerate "window_batches": 0 and no windowed per-batch
  // fields on a monitor that has no window.
  EXPECT_EQ(classic_json.find("\"window_batches\""), std::string::npos);
  EXPECT_EQ(classic_json.find("\"windowed_estimate\""), std::string::npos);
  EXPECT_EQ(classic_json.find("\"windowed_certified_drop\""),
            std::string::npos);

  ModelMonitor::Options window_options;
  window_options.window_batches = 2;
  ModelMonitor windowed = MakeMonitor(predictor, window_options, "windowed");
  ASSERT_TRUE(windowed.Observe(MixtureBatch(0.9, 400)).ok());
  const std::string windowed_json = windowed.ExportJson();
  EXPECT_TRUE(testing::JsonValidator(windowed_json).Validate())
      << windowed_json;
  EXPECT_NE(windowed_json.find("\"window_batches\": 2"), std::string::npos);
  EXPECT_NE(windowed_json.find("\"windowed_estimate\""), std::string::npos);
  EXPECT_NE(windowed_json.find("\"windowed_certified_drop\""),
            std::string::npos);
  EXPECT_NE(windowed_json.find("\"window_batches_used\""), std::string::npos);
}

}  // namespace
}  // namespace bbv::core
