// Round-trip tests for model persistence: every classifier in the zoo must
// reload through the tagged SaveClassifier/LoadClassifier envelope with
// bit-identical predictions; the feature pipeline and the full BlackBoxModel
// must survive a round trip as well.

#include "ml/model_io.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>
#include <sstream>

#include "common/rng.h"
#include "datasets/tabular.h"
#include "featurize/pipeline.h"
#include "ml/black_box.h"
#include "ml/conv_net.h"
#include "ml/decision_tree.h"
#include "ml/feed_forward_network.h"
#include "ml/gradient_boosted_trees.h"
#include "ml/metrics.h"
#include "ml/sgd_logistic_regression.h"

namespace bbv::ml {
namespace {

struct ModelCase {
  std::string name;
  std::function<std::unique_ptr<Classifier>()> factory;
  bool image_input = false;
};

std::vector<ModelCase> ModelCases() {
  return {
      {"lr", [] { return std::make_unique<SgdLogisticRegression>(); }, false},
      {"dnn",
       [] {
         FeedForwardNetwork::Options options;
         options.hidden_sizes = {12, 8};
         options.epochs = 10;
         return std::make_unique<FeedForwardNetwork>(options);
       },
       false},
      {"xgb",
       [] {
         GradientBoostedTrees::Options options;
         options.num_rounds = 8;
         return std::make_unique<GradientBoostedTrees>(options);
       },
       false},
      {"cart",
       [] {
         TreeOptions options;
         options.max_depth = 5;
         return std::make_unique<DecisionTreeClassifier>(options);
       },
       false},
      {"conv",
       [] {
         ConvNet::Options options;
         options.conv1_channels = 3;
         options.conv2_channels = 4;
         options.dense_units = 8;
         options.epochs = 2;
         return std::make_unique<ConvNet>(options);
       },
       true},
  };
}

linalg::Matrix MakeFeatures(bool image_input, size_t n, common::Rng& rng) {
  if (image_input) {
    linalg::Matrix features(n, 10 * 10);
    for (double& v : features.data()) {
      v = std::clamp(rng.Uniform(), 0.0, 1.0);
    }
    return features;
  }
  linalg::Matrix features(n, 5);
  for (double& v : features.data()) v = rng.Gaussian();
  return features;
}

class ModelIoSuite : public ::testing::TestWithParam<ModelCase> {};

TEST_P(ModelIoSuite, TaggedEnvelopeRoundTripsExactly) {
  common::Rng rng(21);
  const linalg::Matrix features = MakeFeatures(GetParam().image_input, 120, rng);
  std::vector<int> labels(features.rows());
  for (size_t i = 0; i < labels.size(); ++i) {
    // Label correlated with the first feature so every model fits something.
    labels[i] = features.At(i, 0) > (GetParam().image_input ? 0.5 : 0.0) ? 1
                                                                         : 0;
  }
  auto model = GetParam().factory();
  ASSERT_TRUE(model->Fit(features, labels, 2, rng).ok());

  std::stringstream buffer;
  ASSERT_TRUE(SaveClassifier(*model, buffer).ok()) << GetParam().name;
  const auto restored = LoadClassifier(buffer);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->Name(), GetParam().name);
  EXPECT_EQ((*restored)->num_classes(), 2);

  const linalg::Matrix expected = model->PredictProba(features);
  const linalg::Matrix actual = (*restored)->PredictProba(features);
  ASSERT_EQ(expected.rows(), actual.rows());
  ASSERT_EQ(expected.cols(), actual.cols());
  for (size_t i = 0; i < expected.data().size(); ++i) {
    ASSERT_DOUBLE_EQ(expected.data()[i], actual.data()[i])
        << GetParam().name << " differs at flat index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ModelIoSuite, ::testing::ValuesIn(ModelCases()),
    [](const ::testing::TestParamInfo<ModelCase>& param_info) {
      return param_info.param.name;
    });

TEST(ModelIoTest, GarbageEnvelopeRejected) {
  std::stringstream buffer("junk");
  EXPECT_FALSE(LoadClassifier(buffer).ok());
}

TEST(PipelineIoTest, TransformSurvivesRoundTrip) {
  common::Rng rng(22);
  const data::Dataset dataset = datasets::MakeIncome(300, rng);
  featurize::FeaturePipeline pipeline;
  ASSERT_TRUE(pipeline.Fit(dataset.features).ok());

  std::stringstream buffer;
  ASSERT_TRUE(pipeline.Save(buffer).ok());
  const auto restored = featurize::FeaturePipeline::Load(buffer);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->TotalDim(), pipeline.TotalDim());

  const auto expected = pipeline.Transform(dataset.features);
  const auto actual = restored->Transform(dataset.features);
  ASSERT_TRUE(expected.ok() && actual.ok());
  for (size_t i = 0; i < expected->data().size(); ++i) {
    ASSERT_DOUBLE_EQ(expected->data()[i], actual->data()[i]);
  }
}

TEST(PipelineIoTest, SaveBeforeFitFails) {
  featurize::FeaturePipeline pipeline;
  std::stringstream buffer;
  EXPECT_FALSE(pipeline.Save(buffer).ok());
}

TEST(BlackBoxIoTest, FullModelRoundTrip) {
  common::Rng rng(23);
  data::Dataset dataset = datasets::MakeBank(1500, rng);
  auto [train, test] = data::TrainTestSplit(dataset, 0.7, rng);
  BlackBoxModel model(std::make_unique<GradientBoostedTrees>());
  ASSERT_TRUE(model.Train(train, rng).ok());

  std::stringstream buffer;
  ASSERT_TRUE(model.Save(buffer).ok());
  const auto restored = BlackBoxModel::Load(buffer);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->Name(), "xgb");

  // Predictions on relational data (through the pipeline) are identical.
  const auto expected = model.PredictProba(test.features).ValueOrDie();
  const auto actual = (*restored)->PredictProba(test.features).ValueOrDie();
  for (size_t i = 0; i < expected.data().size(); ++i) {
    ASSERT_DOUBLE_EQ(expected.data()[i], actual.data()[i]);
  }
  EXPECT_DOUBLE_EQ(model.ScoreAccuracy(test).ValueOrDie(),
                   (*restored)->ScoreAccuracy(test).ValueOrDie());
}

TEST(BlackBoxIoTest, SaveBeforeTrainFails) {
  BlackBoxModel model(std::make_unique<SgdLogisticRegression>());
  std::stringstream buffer;
  EXPECT_FALSE(model.Save(buffer).ok());
}

}  // namespace
}  // namespace bbv::ml
