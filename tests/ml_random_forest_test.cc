#include "ml/random_forest.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace bbv::ml {
namespace {

void MakeRegressionData(size_t n, linalg::Matrix& features,
                        std::vector<double>& targets, common::Rng& rng) {
  features = linalg::Matrix(n, 3);
  targets.resize(n);
  for (size_t i = 0; i < n; ++i) {
    features.At(i, 0) = rng.Uniform(0.0, 1.0);
    features.At(i, 1) = rng.Uniform(0.0, 1.0);
    features.At(i, 2) = rng.Uniform(0.0, 1.0);  // irrelevant
    targets[i] = 2.0 * features.At(i, 0) + features.At(i, 1) +
                 rng.Gaussian(0.0, 0.05);
  }
}

TEST(RandomForestTest, FitsSmoothFunction) {
  common::Rng rng(1);
  linalg::Matrix features;
  std::vector<double> targets;
  MakeRegressionData(500, features, targets, rng);
  RandomForestRegressor forest;
  ASSERT_TRUE(forest.Fit(features, targets, rng).ok());
  linalg::Matrix test_features;
  std::vector<double> test_targets;
  MakeRegressionData(200, test_features, test_targets, rng);
  const std::vector<double> predictions = forest.Predict(test_features);
  double mae = 0.0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    mae += std::abs(predictions[i] - test_targets[i]);
  }
  mae /= static_cast<double>(predictions.size());
  EXPECT_LT(mae, 0.25);
}

TEST(RandomForestTest, PredictionsWithinTargetRange) {
  // Tree ensembles cannot extrapolate beyond leaf means, so predictions
  // stay inside the observed target range — a useful sanity invariant for
  // the performance predictor (scores live in [0, 1]).
  common::Rng rng(3);
  linalg::Matrix features;
  std::vector<double> targets;
  MakeRegressionData(300, features, targets, rng);
  RandomForestRegressor forest;
  ASSERT_TRUE(forest.Fit(features, targets, rng).ok());
  const double low = *std::min_element(targets.begin(), targets.end());
  const double high = *std::max_element(targets.begin(), targets.end());
  for (double prediction : forest.Predict(features)) {
    EXPECT_GE(prediction, low - 1e-9);
    EXPECT_LE(prediction, high + 1e-9);
  }
}

TEST(RandomForestTest, NumTreesIsRespected) {
  common::Rng rng(5);
  linalg::Matrix features;
  std::vector<double> targets;
  MakeRegressionData(100, features, targets, rng);
  RandomForestRegressor::Options options;
  options.num_trees = 7;
  RandomForestRegressor forest(options);
  ASSERT_TRUE(forest.Fit(features, targets, rng).ok());
  EXPECT_EQ(forest.num_trees(), 7);
}

TEST(RandomForestTest, DeterministicGivenSeed) {
  linalg::Matrix features;
  std::vector<double> targets;
  {
    common::Rng data_rng(7);
    MakeRegressionData(150, features, targets, data_rng);
  }
  auto run = [&]() {
    common::Rng rng(42);
    RandomForestRegressor forest;
    BBV_CHECK(forest.Fit(features, targets, rng).ok());
    return forest.Predict(features);
  };
  EXPECT_EQ(run(), run());
}

TEST(RandomForestTest, RejectsMalformedInputs) {
  common::Rng rng(9);
  RandomForestRegressor forest;
  EXPECT_FALSE(forest.Fit(linalg::Matrix(), {}, rng).ok());
  linalg::Matrix features(3, 1);
  EXPECT_FALSE(forest.Fit(features, {1.0, 2.0}, rng).ok());
  RandomForestRegressor::Options options;
  options.num_trees = 0;
  RandomForestRegressor empty_forest(options);
  EXPECT_FALSE(empty_forest.Fit(features, {1.0, 2.0, 3.0}, rng).ok());
}

TEST(RandomForestDeathTest, PredictBeforeFitDies) {
  // An unfitted forest has no trees and no compiled kernel; inference on it
  // is a programming error, not a recoverable condition.
  const RandomForestRegressor forest;
  const linalg::Matrix features(2, 3);
  const double row[3] = {0.0, 0.0, 0.0};
  std::vector<double> out(features.rows());
  EXPECT_DEATH(forest.Predict(features), "Predict before Fit");
  EXPECT_DEATH(forest.PredictInto(features, out), "Predict before Fit");
  EXPECT_DEATH(forest.PredictRow(row), "Predict before Fit");
}

TEST(RandomForestTest, EnsembleBeatsSingleTreeOnNoisyData) {
  common::Rng rng(11);
  linalg::Matrix features;
  std::vector<double> targets;
  MakeRegressionData(400, features, targets, rng);
  linalg::Matrix test_features;
  std::vector<double> test_targets;
  MakeRegressionData(400, test_features, test_targets, rng);
  auto mae_for = [&](int trees) {
    common::Rng fit_rng(13);
    RandomForestRegressor::Options options;
    options.num_trees = trees;
    RandomForestRegressor forest(options);
    BBV_CHECK(forest.Fit(features, targets, fit_rng).ok());
    const std::vector<double> predictions = forest.Predict(test_features);
    double mae = 0.0;
    for (size_t i = 0; i < predictions.size(); ++i) {
      mae += std::abs(predictions[i] - test_targets[i]);
    }
    return mae / static_cast<double>(predictions.size());
  };
  EXPECT_LT(mae_for(60), mae_for(1));
}

}  // namespace
}  // namespace bbv::ml
