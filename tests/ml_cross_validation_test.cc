#include "ml/cross_validation.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "ml/metrics.h"
#include "ml/sgd_logistic_regression.h"

namespace bbv::ml {
namespace {

void MakeSeparable(size_t n, linalg::Matrix& features,
                   std::vector<int>& labels, common::Rng& rng) {
  features = linalg::Matrix(n, 2);
  labels.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % 2);
    features.At(i, 0) = rng.Gaussian(label == 0 ? -2.0 : 2.0, 0.5);
    features.At(i, 1) = rng.Gaussian(0.0, 1.0);
    labels[i] = label;
  }
}

TEST(KFoldTest, PartitionsEveryRowExactlyOnce) {
  common::Rng rng(1);
  const std::vector<Fold> folds = KFoldIndices(103, 5, rng);
  ASSERT_EQ(folds.size(), 5u);
  std::set<size_t> seen;
  for (const Fold& fold : folds) {
    for (size_t row : fold.test_rows) {
      EXPECT_TRUE(seen.insert(row).second) << "row in two test sets";
    }
  }
  EXPECT_EQ(seen.size(), 103u);
}

TEST(KFoldTest, TrainAndTestAreDisjointAndComplete) {
  common::Rng rng(2);
  const std::vector<Fold> folds = KFoldIndices(50, 4, rng);
  for (const Fold& fold : folds) {
    EXPECT_EQ(fold.train_rows.size() + fold.test_rows.size(), 50u);
    std::set<size_t> train(fold.train_rows.begin(), fold.train_rows.end());
    for (size_t row : fold.test_rows) {
      EXPECT_EQ(train.count(row), 0u);
    }
  }
}

TEST(KFoldTest, BalancedFoldSizes) {
  common::Rng rng(3);
  const std::vector<Fold> folds = KFoldIndices(10, 3, rng);
  std::vector<size_t> sizes;
  for (const Fold& fold : folds) sizes.push_back(fold.test_rows.size());
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes, (std::vector<size_t>{3, 3, 4}));
}

TEST(CrossValAccuracyTest, HighForSeparableData) {
  common::Rng rng(5);
  linalg::Matrix features;
  std::vector<int> labels;
  MakeSeparable(300, features, labels, rng);
  const auto score = CrossValAccuracy(
      [] { return std::make_unique<SgdLogisticRegression>(); }, features,
      labels, 2, 5, rng);
  ASSERT_TRUE(score.ok());
  EXPECT_GT(*score, 0.95);
}

TEST(CrossValAccuracyTest, MismatchedInputsRejected) {
  common::Rng rng(7);
  linalg::Matrix features(10, 2);
  const auto score = CrossValAccuracy(
      [] { return std::make_unique<SgdLogisticRegression>(); }, features,
      {0, 1}, 2, 2, rng);
  EXPECT_FALSE(score.ok());
}

TEST(CrossValRegressionMaeTest, LowForLearnableTarget) {
  common::Rng rng(11);
  linalg::Matrix features(300, 1);
  std::vector<double> targets(300);
  for (size_t i = 0; i < 300; ++i) {
    features.At(i, 0) = rng.Uniform(0.0, 1.0);
    targets[i] = features.At(i, 0) > 0.5 ? 1.0 : 0.0;
  }
  const auto mae = CrossValRegressionMae(
      [] {
        RandomForestRegressor::Options options;
        options.num_trees = 20;
        return RandomForestRegressor(options);
      },
      features, targets, 5, rng);
  ASSERT_TRUE(mae.ok());
  EXPECT_LT(*mae, 0.1);
}

TEST(GridSearchTest, PicksTheBetterCandidate) {
  common::Rng rng(13);
  linalg::Matrix features;
  std::vector<int> labels;
  MakeSeparable(300, features, labels, rng);
  // Candidate 0 is deliberately crippled (zero epochs => random init).
  std::vector<std::function<std::unique_ptr<Classifier>()>> candidates = {
      [] {
        SgdLogisticRegression::Options options;
        options.epochs = 0;
        return std::make_unique<SgdLogisticRegression>(options);
      },
      [] { return std::make_unique<SgdLogisticRegression>(); },
  };
  const auto winner = GridSearchClassifier(candidates, features, labels, 2,
                                           3, rng);
  ASSERT_TRUE(winner.ok());
  EXPECT_EQ(*winner, 1u);
}

TEST(GridSearchTest, EmptyCandidateListRejected) {
  common::Rng rng(17);
  linalg::Matrix features(10, 1);
  std::vector<int> labels(10, 0);
  EXPECT_FALSE(GridSearchClassifier({}, features, labels, 2, 2, rng).ok());
}

}  // namespace
}  // namespace bbv::ml
