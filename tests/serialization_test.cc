// Round-trip tests for the binary persistence layer: trained artifacts must
// reload with bit-identical predictions, and corrupt inputs must fail with
// readable errors instead of crashing.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "common/serialize.h"
#include "core/performance_predictor.h"
#include "core/performance_validator.h"
#include "datasets/tabular.h"
#include "errors/missing_values.h"
#include "ml/black_box.h"
#include "ml/gradient_boosted_trees.h"
#include "ml/random_forest.h"
#include "ml/sgd_logistic_regression.h"

namespace bbv {
namespace {

// ---------------------------------------------------------------------------
// Archive primitives
// ---------------------------------------------------------------------------

TEST(BinaryArchiveTest, PrimitiveRoundTrip) {
  std::stringstream buffer;
  common::BinaryWriter writer(buffer);
  writer.WriteMagic("TEST", 3);
  writer.WriteUint32(7);
  writer.WriteUint64(1ull << 40);
  writer.WriteInt32(-5);
  writer.WriteDouble(3.14159);
  writer.WriteString("hello");
  writer.WriteDoubleVector({1.0, 2.0, 3.0});
  writer.WriteInt32Vector({-1, 0, 1});
  ASSERT_TRUE(writer.status().ok());

  common::BinaryReader reader(buffer);
  ASSERT_TRUE(reader.ExpectMagic("TEST", 3).ok());
  EXPECT_EQ(reader.ReadUint32().ValueOrDie(), 7u);
  EXPECT_EQ(reader.ReadUint64().ValueOrDie(), 1ull << 40);
  EXPECT_EQ(reader.ReadInt32().ValueOrDie(), -5);
  EXPECT_DOUBLE_EQ(reader.ReadDouble().ValueOrDie(), 3.14159);
  EXPECT_EQ(reader.ReadString().ValueOrDie(), "hello");
  EXPECT_EQ(reader.ReadDoubleVector().ValueOrDie(),
            (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(reader.ReadInt32Vector().ValueOrDie(),
            (std::vector<int32_t>{-1, 0, 1}));
}

TEST(BinaryArchiveTest, WrongMagicRejected) {
  std::stringstream buffer;
  common::BinaryWriter writer(buffer);
  writer.WriteMagic("AAAA", 1);
  common::BinaryReader reader(buffer);
  EXPECT_FALSE(reader.ExpectMagic("BBBB", 1).ok());
}

TEST(BinaryArchiveTest, WrongVersionRejected) {
  std::stringstream buffer;
  common::BinaryWriter writer(buffer);
  writer.WriteMagic("AAAA", 2);
  common::BinaryReader reader(buffer);
  EXPECT_FALSE(reader.ExpectMagic("AAAA", 1).ok());
}

TEST(BinaryArchiveTest, TruncatedStreamRejected) {
  std::stringstream buffer;
  common::BinaryWriter writer(buffer);
  writer.WriteUint32(1);
  common::BinaryReader reader(buffer);
  EXPECT_TRUE(reader.ReadUint32().ok());
  EXPECT_FALSE(reader.ReadDouble().ok());
}

TEST(BinaryArchiveTest, ImplausibleVectorLengthRejected) {
  std::stringstream buffer;
  common::BinaryWriter writer(buffer);
  writer.WriteUint64(uint64_t{1} << 60);  // bogus length prefix
  common::BinaryReader reader(buffer);
  EXPECT_FALSE(reader.ReadDoubleVector().ok());
}

// ---------------------------------------------------------------------------
// Random forest
// ---------------------------------------------------------------------------

TEST(ForestSerializationTest, PredictionsSurviveRoundTrip) {
  common::Rng rng(1);
  linalg::Matrix features(200, 4);
  std::vector<double> targets(200);
  for (size_t i = 0; i < 200; ++i) {
    for (size_t j = 0; j < 4; ++j) features.At(i, j) = rng.Uniform();
    targets[i] = features.At(i, 0) + 0.5 * features.At(i, 2);
  }
  ml::RandomForestRegressor::Options options;
  options.num_trees = 15;
  ml::RandomForestRegressor forest(options);
  ASSERT_TRUE(forest.Fit(features, targets, rng).ok());

  std::stringstream buffer;
  ASSERT_TRUE(forest.Save(buffer).ok());
  const auto restored = ml::RandomForestRegressor::Load(buffer);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->num_trees(), 15);
  const std::vector<double> expected = forest.Predict(features);
  const std::vector<double> actual = restored->Predict(features);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_DOUBLE_EQ(expected[i], actual[i]);
  }
}

TEST(ForestSerializationTest, WriterCoreMatchesStreamWrapperBytes) {
  // The stream overload is a thin wrapper over the BinaryWriter core; both
  // must emit the same bytes so archives written either way (and any
  // pre-redesign stream) stay interchangeable.
  common::Rng rng(5);
  linalg::Matrix features(120, 3);
  std::vector<double> targets(120);
  for (size_t i = 0; i < 120; ++i) {
    for (size_t j = 0; j < 3; ++j) features.At(i, j) = rng.Uniform();
    targets[i] = features.At(i, 1);
  }
  ml::RandomForestRegressor::Options options;
  options.num_trees = 9;
  ml::RandomForestRegressor forest(options);
  ASSERT_TRUE(forest.Fit(features, targets, rng).ok());

  std::ostringstream via_stream;
  ASSERT_TRUE(forest.Save(via_stream).ok());
  std::ostringstream via_writer;
  common::BinaryWriter writer(via_writer);
  ASSERT_TRUE(forest.Save(writer).ok());
  EXPECT_EQ(via_stream.str(), via_writer.str());

  // And the reader core restores from the same bytes.
  std::istringstream in(via_writer.str());
  common::BinaryReader reader(in);
  const auto restored = ml::RandomForestRegressor::Load(reader);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->Predict(features), forest.Predict(features));
}

TEST(ForestSerializationTest, SaveBeforeFitFails) {
  ml::RandomForestRegressor forest;
  std::stringstream buffer;
  EXPECT_FALSE(forest.Save(buffer).ok());
}

TEST(ForestSerializationTest, GarbageInputRejected) {
  std::stringstream buffer("this is not a forest");
  EXPECT_FALSE(ml::RandomForestRegressor::Load(buffer).ok());
}

// ---------------------------------------------------------------------------
// Gradient-boosted trees
// ---------------------------------------------------------------------------

TEST(GbdtSerializationTest, ProbabilitiesSurviveRoundTrip) {
  common::Rng rng(3);
  linalg::Matrix features(200, 3);
  std::vector<int> labels(200);
  for (size_t i = 0; i < 200; ++i) {
    const int label = static_cast<int>(i % 3);
    features.At(i, 0) = rng.Gaussian(static_cast<double>(label), 0.4);
    features.At(i, 1) = rng.Uniform();
    features.At(i, 2) = rng.Uniform();
    labels[i] = label;
  }
  ml::GradientBoostedTrees::Options options;
  options.num_rounds = 10;
  ml::GradientBoostedTrees model(options);
  ASSERT_TRUE(model.Fit(features, labels, 3, rng).ok());

  std::stringstream buffer;
  ASSERT_TRUE(model.Save(buffer).ok());
  const auto restored = ml::GradientBoostedTrees::Load(buffer);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->num_classes(), 3);
  const linalg::Matrix expected = model.PredictProba(features);
  const linalg::Matrix actual = restored->PredictProba(features);
  for (size_t i = 0; i < expected.data().size(); ++i) {
    EXPECT_DOUBLE_EQ(expected.data()[i], actual.data()[i]);
  }
}

TEST(GbdtSerializationTest, WriterCoreMatchesStreamWrapperBytes) {
  common::Rng rng(6);
  linalg::Matrix features(150, 3);
  std::vector<int> labels(150);
  for (size_t i = 0; i < 150; ++i) {
    const int label = static_cast<int>(i % 2);
    features.At(i, 0) = rng.Gaussian(static_cast<double>(label), 0.5);
    features.At(i, 1) = rng.Uniform();
    features.At(i, 2) = rng.Uniform();
    labels[i] = label;
  }
  ml::GradientBoostedTrees::Options options;
  options.num_rounds = 6;
  ml::GradientBoostedTrees model(options);
  ASSERT_TRUE(model.Fit(features, labels, 2, rng).ok());

  std::ostringstream via_stream;
  ASSERT_TRUE(model.Save(via_stream).ok());
  std::ostringstream via_writer;
  common::BinaryWriter writer(via_writer);
  ASSERT_TRUE(model.Save(writer).ok());
  EXPECT_EQ(via_stream.str(), via_writer.str());

  std::istringstream in(via_writer.str());
  common::BinaryReader reader(in);
  const auto restored = ml::GradientBoostedTrees::Load(reader);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  const linalg::Matrix expected = model.PredictProba(features);
  const linalg::Matrix actual = restored->PredictProba(features);
  EXPECT_EQ(expected.data(), actual.data());
}

TEST(GbdtSerializationTest, GarbageInputRejected) {
  std::stringstream buffer("BBVGBxx");
  EXPECT_FALSE(ml::GradientBoostedTrees::Load(buffer).ok());
}

// ---------------------------------------------------------------------------
// Performance predictor
// ---------------------------------------------------------------------------

TEST(PredictorSerializationTest, EstimatesSurviveRoundTrip) {
  common::Rng rng(2);
  data::Dataset dataset = datasets::MakeIncome(2000, rng);
  auto [source, serving] = data::TrainTestSplit(dataset, 0.7, rng);
  auto [train, test] = data::TrainTestSplit(source, 0.7, rng);
  ml::BlackBoxModel model(std::make_unique<ml::SgdLogisticRegression>());
  ASSERT_TRUE(model.Train(train, rng).ok());

  core::PerformancePredictor::Options options;
  options.corruptions_per_generator = 20;
  options.tree_count_grid = {25};
  core::PerformancePredictor predictor(options);
  const errors::MissingValues missing;
  std::vector<const errors::ErrorGen*> generators = {&missing};
  ASSERT_TRUE(predictor.Train(model, test, generators, rng).ok());

  std::stringstream buffer;
  ASSERT_TRUE(predictor.Save(buffer).ok());
  const auto restored = core::PerformancePredictor::Load(buffer);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(restored->trained());
  EXPECT_DOUBLE_EQ(restored->test_score(), predictor.test_score());
  EXPECT_EQ(restored->num_training_examples(),
            predictor.num_training_examples());

  const auto proba = model.PredictProba(serving.features).ValueOrDie();
  // Full four-field ScoreEstimate equality: the round-trip restores the
  // conformal calibration state, not just the forest.
  EXPECT_EQ(predictor.EstimateScoreFromProba(proba).ValueOrDie(),
            restored->EstimateScoreFromProba(proba).ValueOrDie());
}

TEST(PredictorSerializationTest, SaveBeforeTrainFails) {
  core::PerformancePredictor predictor;
  std::stringstream buffer;
  EXPECT_FALSE(predictor.Save(buffer).ok());
}

TEST(PredictorSerializationTest, GarbageInputRejected) {
  std::stringstream buffer("BBVPPnonsense");
  EXPECT_FALSE(core::PerformancePredictor::Load(buffer).ok());
}

// ---------------------------------------------------------------------------
// Performance validator
// ---------------------------------------------------------------------------

TEST(ValidatorSerializationTest, DecisionsSurviveRoundTrip) {
  common::Rng rng(4);
  data::Dataset dataset = datasets::MakeIncome(2500, rng);
  auto [source, serving] = data::TrainTestSplit(dataset, 0.7, rng);
  auto [train, test] = data::TrainTestSplit(source, 0.7, rng);
  ml::BlackBoxModel model(std::make_unique<ml::SgdLogisticRegression>());
  ASSERT_TRUE(model.Train(train, rng).ok());

  core::PerformanceValidator::Options options;
  options.threshold = 0.05;
  options.corruptions_per_generator = 40;
  core::PerformanceValidator validator(options);
  const errors::MissingValues missing;
  std::vector<const errors::ErrorGen*> generators = {&missing};
  ASSERT_TRUE(validator.Train(model, test, generators, rng).ok());

  std::stringstream buffer;
  ASSERT_TRUE(validator.Save(buffer).ok());
  const auto restored = core::PerformanceValidator::Load(buffer);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_DOUBLE_EQ(restored->threshold(), validator.threshold());
  EXPECT_DOUBLE_EQ(restored->test_score(), validator.test_score());

  // Decisions agree on clean and corrupted batches.
  for (int round = 0; round < 5; ++round) {
    common::Rng corrupt_rng(100 + round);
    const auto corrupted =
        missing.Corrupt(serving.features, corrupt_rng).ValueOrDie();
    const auto proba = model.PredictProba(corrupted).ValueOrDie();
    EXPECT_EQ(validator.ValidateFromProba(proba).ValueOrDie(),
              restored->ValidateFromProba(proba).ValueOrDie());
  }
}

TEST(ValidatorSerializationTest, SaveBeforeTrainFails) {
  core::PerformanceValidator validator;
  std::stringstream buffer;
  EXPECT_FALSE(validator.Save(buffer).ok());
}

TEST(ValidatorSerializationTest, GarbageInputRejected) {
  std::stringstream buffer("BBVPVgarbage");
  EXPECT_FALSE(core::PerformanceValidator::Load(buffer).ok());
}

}  // namespace
}  // namespace bbv
