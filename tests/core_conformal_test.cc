// Contracts of the conformal calibration layer behind ScoreEstimate:
//  - marginal coverage of the intervals meets the nominal level (minus a
//    sampling tolerance) on every distribution shape the serving layer
//    sees (uniform, tail-concentrated, heavily tied, constant), for both
//    the split-conformal and the quantile-forest nonconformity modes;
//  - interval width is monotone in the requested coverage level and always
//    brackets the point estimate;
//  - the batch estimate surface is bit-identical to the scalar one;
//  - calibration state survives Save/Load byte-identically and the
//    serialized predictor is byte-identical at BBV_THREADS 1 vs 8;
//  - too few meta-training examples degrade to degenerate (uncalibrated)
//    estimates instead of failing.

#include "core/conformal.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/serialize.h"
#include "core/performance_predictor.h"
#include "linalg/matrix.h"

namespace bbv::core {
namespace {

/// Sets BBV_THREADS for one scope and restores the previous value after.
class ScopedThreadsEnv {
 public:
  explicit ScopedThreadsEnv(const char* value) {
    const char* previous = std::getenv("BBV_THREADS");
    had_previous_ = previous != nullptr;
    if (had_previous_) previous_ = previous;
    ::setenv("BBV_THREADS", value, 1);
  }
  ~ScopedThreadsEnv() {
    if (had_previous_) {
      ::setenv("BBV_THREADS", previous_.c_str(), 1);
    } else {
      ::unsetenv("BBV_THREADS");
    }
  }
  ScopedThreadsEnv(const ScopedThreadsEnv&) = delete;
  ScopedThreadsEnv& operator=(const ScopedThreadsEnv&) = delete;

 private:
  bool had_previous_ = false;
  std::string previous_;
};

/// One draw from the distribution shapes the serving layer actually sees
/// (mirrors ml_forest_fast_path_test): smooth, tail-concentrated, heavily
/// tied, degenerate-constant.
double DrawShape(size_t shape, common::Rng& rng) {
  switch (shape) {
    case 0:
      return rng.Uniform();
    case 1: {
      const double u = rng.Uniform();
      return u < 0.5 ? u * u : 1.0 - (1.0 - u) * (1.0 - u);
    }
    case 2:
      return static_cast<double>(rng.UniformInt(0, 4)) / 4.0;
    default:
      return 0.75;
  }
}

constexpr size_t kFeatureDim = 6;

/// Synthetic meta-training pairs: statistics drawn from `shape`, score a
/// noisy monotone function of their mean, clamped to the score range.
std::pair<std::vector<std::vector<double>>, std::vector<double>> MakeMeta(
    size_t n, size_t shape, common::Rng& rng) {
  std::vector<std::vector<double>> statistics;
  std::vector<double> scores;
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> row(kFeatureDim);
    double mean = 0.0;
    for (double& v : row) {
      v = DrawShape(shape, rng);
      mean += v;
    }
    mean /= static_cast<double>(kFeatureDim);
    const double score =
        std::clamp(0.2 + 0.6 * mean + rng.Gaussian(0.0, 0.04), 0.0, 1.0);
    statistics.push_back(std::move(row));
    scores.push_back(score);
  }
  return {std::move(statistics), std::move(scores)};
}

PerformancePredictor TrainOnShape(size_t shape, size_t n, common::Rng& rng,
                                  ConformalCalibrator::Mode mode) {
  PerformancePredictor::Options options;
  options.tree_count_grid = {25};
  options.conformal_mode = mode;
  // Load() checks feature_dimension % |percentile grid| == 0; pin a grid
  // consistent with the synthetic kFeatureDim so Save/Load tests validate.
  options.percentile_points = {25.0, 50.0, 75.0};
  PerformancePredictor predictor(options);
  auto [statistics, scores] = MakeMeta(n, shape, rng);
  BBV_CHECK(
      predictor.TrainFromStatistics(statistics, scores, 0.8, rng).ok());
  return predictor;
}

// ---------------------------------------------------------------------------
// ConformalCalibrator unit contracts
// ---------------------------------------------------------------------------

TEST(ConformalCalibratorTest, CalibrateValidatesInputs) {
  const std::vector<double> truths = {0.5, 0.6};
  const std::vector<double> predictions = {0.55, 0.58};
  EXPECT_FALSE(ConformalCalibrator::Calibrate(
                   ConformalCalibrator::Mode::kSplitConformal, {}, {}, {})
                   .ok());
  EXPECT_FALSE(ConformalCalibrator::Calibrate(
                   ConformalCalibrator::Mode::kSplitConformal, truths,
                   std::vector<double>{0.5}, {})
                   .ok());
  const std::vector<double> poisoned = {0.55,
                                        std::numeric_limits<double>::infinity()};
  EXPECT_FALSE(ConformalCalibrator::Calibrate(
                   ConformalCalibrator::Mode::kSplitConformal, truths,
                   poisoned, {})
                   .ok());
  // Quantile-forest mode needs one spread per example.
  EXPECT_FALSE(ConformalCalibrator::Calibrate(
                   ConformalCalibrator::Mode::kQuantileForest, truths,
                   predictions, {})
                   .ok());
  EXPECT_TRUE(ConformalCalibrator::Calibrate(
                  ConformalCalibrator::Mode::kSplitConformal, truths,
                  predictions, {})
                  .ok());
}

TEST(ConformalCalibratorTest, QuantileUsesFiniteSampleRank) {
  // Residuals 0.01..0.05; n = 5. rank = ceil(6 * coverage), capped at 5.
  const std::vector<double> truths = {0.51, 0.62, 0.73, 0.84, 0.95};
  const std::vector<double> predictions = {0.50, 0.60, 0.70, 0.80, 0.90};
  const auto calibrator = ConformalCalibrator::Calibrate(
      ConformalCalibrator::Mode::kSplitConformal, truths, predictions, {});
  ASSERT_TRUE(calibrator.ok());
  ASSERT_TRUE(calibrator->calibrated());
  EXPECT_EQ(calibrator->num_calibration_examples(), 5u);
  EXPECT_NEAR(calibrator->QuantileAt(0.5), 0.03, 1e-12);   // rank 3
  EXPECT_NEAR(calibrator->QuantileAt(0.66), 0.04, 1e-12);  // rank 4
  EXPECT_NEAR(calibrator->QuantileAt(0.9), 0.05, 1e-12);   // rank 6 -> cap 5
  EXPECT_NEAR(calibrator->QuantileAt(0.99), 0.05, 1e-12);
}

TEST(ConformalCalibratorTest, IntervalClampsEndpointsButNotThePoint) {
  const std::vector<double> truths = {0.9, 0.1};
  const std::vector<double> predictions = {0.5, 0.5};
  const auto calibrator = ConformalCalibrator::Calibrate(
      ConformalCalibrator::Mode::kSplitConformal, truths, predictions, {});
  ASSERT_TRUE(calibrator.ok());
  const ScoreEstimate near_edge = calibrator->Interval(0.95, 0.0, 0.9);
  EXPECT_DOUBLE_EQ(near_edge.point, 0.95);
  EXPECT_GE(near_edge.lo, 0.0);
  EXPECT_DOUBLE_EQ(near_edge.hi, 1.0);  // clamped
  const ScoreEstimate outside = calibrator->Interval(1.1, 0.0, 0.9);
  EXPECT_DOUBLE_EQ(outside.point, 1.1);  // raw regressor output survives
  EXPECT_LE(outside.hi, 1.0);
}

TEST(ConformalCalibratorTest, SaveLoadRoundTripsBytes) {
  common::Rng rng(7);
  std::vector<double> truths, predictions, spreads;
  for (int i = 0; i < 40; ++i) {
    truths.push_back(rng.Uniform());
    predictions.push_back(rng.Uniform());
    spreads.push_back(0.01 + 0.1 * rng.Uniform());
  }
  for (const auto mode : {ConformalCalibrator::Mode::kSplitConformal,
                          ConformalCalibrator::Mode::kQuantileForest}) {
    const auto calibrator =
        ConformalCalibrator::Calibrate(mode, truths, predictions, spreads);
    ASSERT_TRUE(calibrator.ok());
    std::ostringstream first;
    {
      common::BinaryWriter writer(first);
      calibrator->Save(writer);
    }
    std::istringstream in(first.str());
    common::BinaryReader reader(in);
    const auto restored = ConformalCalibrator::Load(reader);
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ(restored->mode(), mode);
    EXPECT_EQ(restored->scores(), calibrator->scores());
    std::ostringstream second;
    {
      common::BinaryWriter writer(second);
      restored->Save(writer);
    }
    EXPECT_EQ(first.str(), second.str());
  }
}

TEST(ConformalCalibratorTest, LoadRejectsCorruptState) {
  // Descending scores violate the canonical order.
  std::ostringstream out;
  {
    common::BinaryWriter writer(out);
    writer.WriteInt32(0);
    writer.WriteDoubleVector({0.5, 0.1});
  }
  std::istringstream in(out.str());
  common::BinaryReader reader(in);
  EXPECT_FALSE(ConformalCalibrator::Load(reader).ok());

  std::ostringstream bad_mode;
  {
    common::BinaryWriter writer(bad_mode);
    writer.WriteInt32(9);
    writer.WriteDoubleVector({0.1});
  }
  std::istringstream bad_in(bad_mode.str());
  common::BinaryReader bad_reader(bad_in);
  EXPECT_FALSE(ConformalCalibrator::Load(bad_reader).ok());
}

// ---------------------------------------------------------------------------
// Predictor-level interval contracts
// ---------------------------------------------------------------------------

TEST(ConformalPredictorTest, CoverageMeetsNominalLowerBoundAcrossShapes) {
  constexpr size_t kNumShapes = 4;
  constexpr size_t kEval = 250;
  for (size_t shape = 0; shape < kNumShapes; ++shape) {
    for (const auto mode : {ConformalCalibrator::Mode::kSplitConformal,
                            ConformalCalibrator::Mode::kQuantileForest}) {
      common::Rng rng(100 + shape);
      PerformancePredictor predictor = TrainOnShape(shape, 240, rng, mode);
      ASSERT_TRUE(predictor.calibrator().calibrated());
      auto [statistics, scores] = MakeMeta(kEval, shape, rng);
      size_t covered = 0;
      for (size_t i = 0; i < kEval; ++i) {
        const auto estimate =
            predictor.EstimateScoreFromStatistics(statistics[i]);  // bbv-lint: allow(batch-api) per-example coverage tally
        ASSERT_TRUE(estimate.ok());
        EXPECT_TRUE(estimate->calibrated());
        if (estimate->lo <= scores[i] && scores[i] <= estimate->hi) ++covered;
      }
      const double coverage =
          static_cast<double>(covered) / static_cast<double>(kEval);
      // Nominal 0.9 minus a tolerance for the finite evaluation sample and
      // the out-of-fold approximation.
      EXPECT_GE(coverage, 0.9 - 0.05)
          << "shape=" << shape << " mode=" << static_cast<int>(mode);
    }
  }
}

TEST(ConformalPredictorTest, IntervalWidthMonotoneInCoverageLevel) {
  common::Rng rng(200);
  PerformancePredictor predictor = TrainOnShape(
      0, 200, rng, ConformalCalibrator::Mode::kSplitConformal);
  auto [statistics, scores] = MakeMeta(10, 0, rng);
  for (const auto& row : statistics) {
    double previous_width = -1.0;
    for (const double coverage : {0.5, 0.7, 0.9, 0.95, 0.99}) {
      const auto estimate =
          predictor.EstimateScoreFromStatistics(row, coverage);  // bbv-lint: allow(batch-api) one row probed across coverage levels
      ASSERT_TRUE(estimate.ok());
      EXPECT_DOUBLE_EQ(estimate->coverage_level, coverage);
      EXPECT_LE(estimate->lo, estimate->point);
      EXPECT_GE(estimate->hi, estimate->point);
      EXPECT_GE(estimate->width(), previous_width);
      previous_width = estimate->width();
    }
  }
}

TEST(ConformalPredictorTest, BatchEstimatesMatchScalarBitwise) {
  for (const auto mode : {ConformalCalibrator::Mode::kSplitConformal,
                          ConformalCalibrator::Mode::kQuantileForest}) {
    common::Rng rng(300);
    PerformancePredictor predictor = TrainOnShape(1, 200, rng, mode);
    auto [statistics, scores] = MakeMeta(64, 1, rng);
    linalg::Matrix batch(statistics.size(), kFeatureDim);
    for (size_t i = 0; i < statistics.size(); ++i) {
      for (size_t j = 0; j < kFeatureDim; ++j) {
        batch.At(i, j) = statistics[i][j];
      }
    }
    std::vector<ScoreEstimate> estimates(statistics.size());
    ASSERT_TRUE(predictor
                    .EstimateScoresFromStatistics(
                        batch, std::span<ScoreEstimate>(estimates))
                    .ok());
    std::vector<double> points(statistics.size());
    ASSERT_TRUE(predictor
                    .EstimateScoresFromStatistics(batch,
                                                  std::span<double>(points))
                    .ok());
    for (size_t i = 0; i < statistics.size(); ++i) {
      const auto scalar =
          predictor.EstimateScoreFromStatistics(statistics[i]);  // bbv-lint: allow(batch-api) the scalar side of the bitwise contract
      ASSERT_TRUE(scalar.ok());
      EXPECT_EQ(estimates[i], *scalar) << "row " << i;  // all four fields
      EXPECT_EQ(points[i], scalar->point) << "row " << i;  // bbv-lint: allow(float-eq) bitwise contract
    }
  }
}

TEST(ConformalPredictorTest, DegeneratesWhenMetaTrainingIsTooSmall) {
  common::Rng rng(400);
  PerformancePredictor::Options options;
  options.tree_count_grid = {5};
  PerformancePredictor predictor(options);
  // 4 examples < calibration_folds = 5: calibration must be skipped, not
  // fail the train.
  ASSERT_TRUE(predictor
                  .TrainFromStatistics(
                      {{0.1}, {0.2}, {0.3}, {0.4}},
                      {0.9, 0.8, 0.7, 0.6}, 0.8, rng)
                  .ok());
  EXPECT_FALSE(predictor.calibrator().calibrated());
  const auto estimate =
      predictor.EstimateScoreFromStatistics(std::vector<double>{0.25});
  ASSERT_TRUE(estimate.ok());
  EXPECT_FALSE(estimate->calibrated());
  EXPECT_DOUBLE_EQ(estimate->lo, estimate->point);
  EXPECT_DOUBLE_EQ(estimate->hi, estimate->point);
  EXPECT_DOUBLE_EQ(estimate->width(), 0.0);
}

TEST(ConformalPredictorTest, DisablingCalibrationPreservesPointBytes) {
  // The forest — and hence every point estimate — must be byte-for-byte
  // identical whether the conformal pass runs or not, and the caller's Rng
  // must resume at the same position after Train either way.
  auto train = [](bool calibrate, double* next_draw) {
    common::Rng rng(500);
    PerformancePredictor::Options options;
    options.tree_count_grid = {25};
    options.conformal_calibration = calibrate;
    PerformancePredictor predictor(options);
    auto [statistics, scores] = MakeMeta(150, 0, rng);
    BBV_CHECK(
        predictor.TrainFromStatistics(statistics, scores, 0.8, rng).ok());
    *next_draw = rng.Uniform();
    return predictor;
  };
  double calibrated_draw = 0.0;
  double uncalibrated_draw = 0.0;
  PerformancePredictor calibrated = train(true, &calibrated_draw);
  PerformancePredictor uncalibrated = train(false, &uncalibrated_draw);
  EXPECT_EQ(calibrated_draw, uncalibrated_draw);  // bbv-lint: allow(float-eq) stream position contract
  common::Rng eval_rng(501);
  auto [statistics, scores] = MakeMeta(20, 0, eval_rng);
  for (const auto& row : statistics) {
    const auto with = calibrated.EstimateScoreFromStatistics(row);  // bbv-lint: allow(batch-api) paired scalar probes
    const auto without = uncalibrated.EstimateScoreFromStatistics(row);  // bbv-lint: allow(batch-api) paired scalar probes
    ASSERT_TRUE(with.ok());
    ASSERT_TRUE(without.ok());
    EXPECT_EQ(with->point, without->point);  // bbv-lint: allow(float-eq) bitwise contract
    EXPECT_TRUE(with->calibrated());
    EXPECT_FALSE(without->calibrated());
  }
}

TEST(ConformalPredictorTest, SerializedBytesIdenticalAcrossThreadCounts) {
  auto bytes_at = [](const char* threads) {
    ScopedThreadsEnv env(threads);
    common::Rng rng(600);
    PerformancePredictor predictor = TrainOnShape(
        2, 200, rng, ConformalCalibrator::Mode::kQuantileForest);
    std::ostringstream out;
    BBV_CHECK(predictor.Save(out).ok());
    return out.str();
  };
  const std::string serial = bytes_at("1");
  const std::string threaded = bytes_at("8");
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, threaded)
      << "calibration state diverges between 1 and 8 threads";
}

TEST(ConformalPredictorTest, SaveLoadRoundTripsCalibrationByteIdentically) {
  for (const auto mode : {ConformalCalibrator::Mode::kSplitConformal,
                          ConformalCalibrator::Mode::kQuantileForest}) {
    common::Rng rng(700);
    PerformancePredictor predictor = TrainOnShape(0, 200, rng, mode);
    std::stringstream first;
    ASSERT_TRUE(predictor.Save(first).ok());
    auto restored = PerformancePredictor::Load(first);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    std::stringstream second;
    ASSERT_TRUE(restored->Save(second).ok());
    EXPECT_EQ(first.str(), second.str());
    EXPECT_EQ(restored->calibrator().mode(), mode);
    EXPECT_EQ(restored->calibrator().scores(),
              predictor.calibrator().scores());
    EXPECT_EQ(restored->coverage_level(), predictor.coverage_level());  // bbv-lint: allow(float-eq) round-trip contract
    auto [statistics, scores] = MakeMeta(10, 0, rng);
    for (const auto& row : statistics) {
      const auto original = predictor.EstimateScoreFromStatistics(row);  // bbv-lint: allow(batch-api) round-trip probe
      const auto reloaded = restored->EstimateScoreFromStatistics(row);  // bbv-lint: allow(batch-api) round-trip probe
      ASSERT_TRUE(original.ok());
      ASSERT_TRUE(reloaded.ok());
      EXPECT_EQ(*original, *reloaded);  // all four fields
    }
  }
}

}  // namespace
}  // namespace bbv::core
