#include "errors/distribution_shift.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <utility>

#include "datasets/tabular.h"
#include "stats/descriptive.h"

namespace bbv::errors {
namespace {

TEST(LabelShiftTest, AchievesTargetPositiveFraction) {
  common::Rng rng(1);
  const data::Dataset dataset = datasets::MakeIncome(4000, rng);
  const auto shifted = ResampleLabelShift(dataset, 0.8, rng);
  ASSERT_TRUE(shifted.ok());
  const std::vector<size_t> counts = data::ClassCounts(*shifted);
  const double fraction = static_cast<double>(counts[1]) /
                          static_cast<double>(shifted->NumRows());
  EXPECT_NEAR(fraction, 0.8, 0.03);
  EXPECT_EQ(shifted->NumRows(), dataset.NumRows());
}

TEST(LabelShiftTest, CustomOutputSize) {
  common::Rng rng(2);
  const data::Dataset dataset = datasets::MakeIncome(1000, rng);
  const auto shifted = ResampleLabelShift(dataset, 0.5, rng, 250);
  ASSERT_TRUE(shifted.ok());
  EXPECT_EQ(shifted->NumRows(), 250u);
}

TEST(LabelShiftTest, PreservesConditionalFeatureDistribution) {
  // p(x|y) is untouched: the mean of a numeric feature among positives
  // should match before and after the shift.
  common::Rng rng(3);
  const data::Dataset dataset = datasets::MakeIncome(6000, rng);
  auto mean_age_of_positives = [](const data::Dataset& d) {
    double sum = 0.0;
    size_t count = 0;
    for (size_t row = 0; row < d.NumRows(); ++row) {
      if (d.labels[row] != 1) continue;
      sum += d.features.ColumnByName("age").cell(row).AsDouble();
      ++count;
    }
    return sum / static_cast<double>(count);
  };
  const double before = mean_age_of_positives(dataset);
  const auto shifted = ResampleLabelShift(dataset, 0.85, rng);
  ASSERT_TRUE(shifted.ok());
  EXPECT_NEAR(mean_age_of_positives(*shifted), before, 1.5);
}

TEST(LabelShiftTest, InvalidInputs) {
  common::Rng rng(4);
  const data::Dataset dataset = datasets::MakeIncome(100, rng);
  EXPECT_FALSE(ResampleLabelShift(dataset, -0.1, rng).ok());
  EXPECT_FALSE(ResampleLabelShift(dataset, 1.1, rng).ok());
  data::Dataset single_class = dataset;
  for (int& label : single_class.labels) label = 0;
  EXPECT_FALSE(ResampleLabelShift(single_class, 0.5, rng).ok());
}

TEST(CovariateShiftTest, ShiftsTheFeatureMean) {
  common::Rng rng(5);
  const data::Dataset dataset = datasets::MakeHeart(4000, rng);
  const double before =
      stats::Mean(dataset.features.ColumnByName("age").NumericValues());
  const auto shifted = ResampleCovariateShift(dataset, "age", 1.0, rng);
  ASSERT_TRUE(shifted.ok());
  const double after =
      stats::Mean(shifted->features.ColumnByName("age").NumericValues());
  EXPECT_GT(after, before + 2.0);

  const auto shifted_down = ResampleCovariateShift(dataset, "age", -1.0, rng);
  ASSERT_TRUE(shifted_down.ok());
  EXPECT_LT(
      stats::Mean(shifted_down->features.ColumnByName("age").NumericValues()),
      before - 2.0);
}

TEST(CovariateShiftTest, ZeroStrengthKeepsDistribution) {
  common::Rng rng(6);
  const data::Dataset dataset = datasets::MakeHeart(4000, rng);
  const double before =
      stats::Mean(dataset.features.ColumnByName("age").NumericValues());
  const auto shifted = ResampleCovariateShift(dataset, "age", 0.0, rng);
  ASSERT_TRUE(shifted.ok());
  EXPECT_NEAR(
      stats::Mean(shifted->features.ColumnByName("age").NumericValues()),
      before, 1.0);
}

TEST(CovariateShiftTest, InvalidInputs) {
  common::Rng rng(7);
  const data::Dataset dataset = datasets::MakeHeart(100, rng);
  EXPECT_FALSE(ResampleCovariateShift(dataset, "zzz", 1.0, rng).ok());
  EXPECT_FALSE(ResampleCovariateShift(dataset, "gender", 1.0, rng).ok());
}

// ---------------------------------------------------------------------------
// Thread-independence (PR-2 gate): the resamples are pure functions of
// (dataset, seed) — BBV_THREADS must not change a single drawn row.
// ---------------------------------------------------------------------------

class ScopedThreadsEnv {
 public:
  explicit ScopedThreadsEnv(const char* value) {
    const char* previous = std::getenv("BBV_THREADS");
    had_previous_ = previous != nullptr;
    if (had_previous_) previous_ = previous;
    ::setenv("BBV_THREADS", value, 1);
  }
  ~ScopedThreadsEnv() {
    if (had_previous_) {
      ::setenv("BBV_THREADS", previous_.c_str(), 1);
    } else {
      ::unsetenv("BBV_THREADS");
    }
  }
  ScopedThreadsEnv(const ScopedThreadsEnv&) = delete;
  ScopedThreadsEnv& operator=(const ScopedThreadsEnv&) = delete;

 private:
  bool had_previous_ = false;
  std::string previous_;
};

bool DatasetsIdentical(const data::Dataset& a, const data::Dataset& b) {
  if (a.labels != b.labels) return false;
  if (a.features.NumRows() != b.features.NumRows() ||
      a.features.NumCols() != b.features.NumCols()) {
    return false;
  }
  for (size_t col = 0; col < a.features.NumCols(); ++col) {
    for (size_t row = 0; row < a.features.NumRows(); ++row) {
      if (!(a.features.column(col).cell(row) ==
            b.features.column(col).cell(row))) {
        return false;
      }
    }
  }
  return true;
}

TEST(LabelShiftTest, ByteIdenticalAcrossThreadCounts) {
  common::Rng data_rng(8);
  const data::Dataset dataset = datasets::MakeIncome(2000, data_rng);
  data::Dataset serial;
  {
    ScopedThreadsEnv env("1");
    common::Rng rng(77);
    auto shifted = ResampleLabelShift(dataset, 0.75, rng, 500);
    ASSERT_TRUE(shifted.ok());
    serial = *std::move(shifted);
  }
  {
    ScopedThreadsEnv env("8");
    common::Rng rng(77);
    const auto shifted = ResampleLabelShift(dataset, 0.75, rng, 500);
    ASSERT_TRUE(shifted.ok());
    EXPECT_TRUE(DatasetsIdentical(serial, *shifted));
  }
}

TEST(CovariateShiftTest, ByteIdenticalAcrossThreadCounts) {
  common::Rng data_rng(9);
  const data::Dataset dataset = datasets::MakeHeart(2000, data_rng);
  data::Dataset serial;
  {
    ScopedThreadsEnv env("1");
    common::Rng rng(78);
    auto shifted = ResampleCovariateShift(dataset, "age", 1.5, rng, 500);
    ASSERT_TRUE(shifted.ok());
    serial = *std::move(shifted);
  }
  {
    ScopedThreadsEnv env("8");
    common::Rng rng(78);
    const auto shifted = ResampleCovariateShift(dataset, "age", 1.5, rng, 500);
    ASSERT_TRUE(shifted.ok());
    EXPECT_TRUE(DatasetsIdentical(serial, *shifted));
  }
}

}  // namespace
}  // namespace bbv::errors
