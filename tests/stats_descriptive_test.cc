#include "stats/descriptive.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace bbv::stats {
namespace {

TEST(DescriptiveTest, MeanOfKnownValues) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(Mean({-1.0, 1.0}), 0.0);
}

TEST(DescriptiveTest, VarianceIsUnbiasedSampleVariance) {
  // Sample variance of {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, ssq 32, 32/7.
  EXPECT_NEAR(Variance({2, 4, 4, 4, 5, 5, 7, 9}), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(Variance({3.0}), 0.0);
}

TEST(DescriptiveDeathTest, VarianceRejectsEmptyInputLikeMean) {
  // Variance({}) used to silently return 0.0 while Mean/Min/Max CHECK-fail;
  // the empty-input contract is now consistent across the family.
  EXPECT_DEATH(Variance({}), "empty");
  EXPECT_DEATH(Mean({}), "empty");
}

TEST(DescriptiveTest, StdDevIsSqrtVariance) {
  EXPECT_NEAR(StdDev({2, 4, 4, 4, 5, 5, 7, 9}), std::sqrt(32.0 / 7.0),
              1e-12);
}

TEST(DescriptiveTest, MinMax) {
  EXPECT_DOUBLE_EQ(Min({3.0, -1.0, 2.0}), -1.0);
  EXPECT_DOUBLE_EQ(Max({3.0, -1.0, 2.0}), 3.0);
}

TEST(PercentileTest, MatchesNumpyLinearInterpolation) {
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 50.0), 2.5);
  // position = 0.25 * 3 = 0.75 -> 1 + 0.75 * (2 - 1).
  EXPECT_DOUBLE_EQ(Percentile(values, 25.0), 1.75);
}

TEST(PercentileTest, SingleElement) {
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 50.0), 7.0);
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 100.0), 7.0);
}

TEST(PercentileTest, UnsortedInputIsHandled) {
  EXPECT_DOUBLE_EQ(Percentile({4.0, 1.0, 3.0, 2.0}, 50.0), 2.5);
}

TEST(PercentilesTest, MultiplePointsShareOneSort) {
  const std::vector<double> result =
      Percentiles({1.0, 2.0, 3.0, 4.0}, {0.0, 50.0, 100.0});
  ASSERT_EQ(result.size(), 3u);
  EXPECT_DOUBLE_EQ(result[0], 1.0);
  EXPECT_DOUBLE_EQ(result[1], 2.5);
  EXPECT_DOUBLE_EQ(result[2], 4.0);
}

TEST(PercentilesTest, MonotoneInQ) {
  common::Rng rng(3);
  std::vector<double> values(101);
  for (double& v : values) v = rng.Gaussian();
  std::vector<double> qs;
  for (int q = 0; q <= 100; q += 5) qs.push_back(q);
  const std::vector<double> result = Percentiles(values, qs);
  for (size_t i = 1; i < result.size(); ++i) {
    EXPECT_LE(result[i - 1], result[i]);
  }
}

TEST(SortedViewTest, MatchesFreeFunctionsWithOneSort) {
  const std::vector<double> values = {4.0, 1.0, 3.0, 2.0};
  const SortedView view{values};
  EXPECT_DOUBLE_EQ(view.Percentile(0.0), Percentile(values, 0.0));
  EXPECT_DOUBLE_EQ(view.Percentile(25.0), Percentile(values, 25.0));
  EXPECT_DOUBLE_EQ(view.Percentile(50.0), Percentile(values, 50.0));
  EXPECT_DOUBLE_EQ(view.Percentile(100.0), Percentile(values, 100.0));
  EXPECT_DOUBLE_EQ(view.Median(), Median(values));
  EXPECT_DOUBLE_EQ(view.Min(), Min(values));
  EXPECT_DOUBLE_EQ(view.Max(), Max(values));
  const std::vector<double> batch = view.Percentiles({0.0, 50.0, 100.0});
  const std::vector<double> expected =
      Percentiles(values, {0.0, 50.0, 100.0});
  EXPECT_EQ(batch, expected);
}

TEST(SortedViewTest, OwnsASortedCopy) {
  const SortedView view{{3.0, 1.0, 2.0}};
  ASSERT_EQ(view.size(), 3u);
  const std::vector<double> expected = {1.0, 2.0, 3.0};
  EXPECT_EQ(view.sorted(), expected);
}

TEST(SortedViewDeathTest, RejectsEmptySample) {
  EXPECT_DEATH(SortedView{{}}, "empty");
}

TEST(MedianTest, OddAndEvenCounts) {
  EXPECT_DOUBLE_EQ(Median({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(MeanAbsoluteErrorTest, KnownValues) {
  EXPECT_DOUBLE_EQ(MeanAbsoluteError({1.0, 2.0}, {1.5, 1.0}), 0.75);
  EXPECT_DOUBLE_EQ(MeanAbsoluteError({1.0}, {1.0}), 0.0);
}

}  // namespace
}  // namespace bbv::stats
