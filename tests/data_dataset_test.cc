#include "data/dataset.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "data/csv.h"

namespace bbv::data {
namespace {

Dataset MakeToyDataset(size_t n, int num_classes = 2) {
  Dataset dataset;
  std::vector<double> x(n);
  std::vector<int> y(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = static_cast<double>(i);
    y[i] = static_cast<int>(i) % num_classes;
  }
  BBV_CHECK(dataset.features.AddColumn(Column::Numeric("x", x)).ok());
  dataset.labels = y;
  dataset.num_classes = num_classes;
  return dataset;
}

TEST(DatasetTest, SelectRowsAlignsFeaturesAndLabels) {
  const Dataset dataset = MakeToyDataset(10);
  const Dataset subset = dataset.SelectRows({3, 7});
  EXPECT_EQ(subset.NumRows(), 2u);
  EXPECT_DOUBLE_EQ(subset.features.ColumnByName("x").cell(0).AsDouble(), 3.0);
  EXPECT_EQ(subset.labels[0], 1);
  EXPECT_EQ(subset.labels[1], 1);
}

TEST(TrainTestSplitTest, SplitsAreDisjointAndCover) {
  common::Rng rng(1);
  const Dataset dataset = MakeToyDataset(100);
  const DatasetSplit split = TrainTestSplit(dataset, 0.7, rng);
  EXPECT_EQ(split.first.NumRows(), 70u);
  EXPECT_EQ(split.second.NumRows(), 30u);
  std::set<double> first_values;
  std::set<double> second_values;
  for (size_t i = 0; i < 70; ++i) {
    first_values.insert(
        split.first.features.ColumnByName("x").cell(i).AsDouble());
  }
  for (size_t i = 0; i < 30; ++i) {
    second_values.insert(
        split.second.features.ColumnByName("x").cell(i).AsDouble());
  }
  // Disjoint and jointly exhaustive.
  EXPECT_EQ(first_values.size(), 70u);
  EXPECT_EQ(second_values.size(), 30u);
  for (double v : second_values) {
    EXPECT_EQ(first_values.count(v), 0u);
  }
}

TEST(TrainTestSplitTest, ExtremeFractions) {
  common::Rng rng(2);
  const Dataset dataset = MakeToyDataset(10);
  EXPECT_EQ(TrainTestSplit(dataset, 0.0, rng).first.NumRows(), 0u);
  EXPECT_EQ(TrainTestSplit(dataset, 1.0, rng).second.NumRows(), 0u);
}

TEST(ShuffleRowsTest, PreservesMultisetOfLabels) {
  common::Rng rng(3);
  const Dataset dataset = MakeToyDataset(50);
  const Dataset shuffled = ShuffleRows(dataset, rng);
  EXPECT_EQ(shuffled.NumRows(), 50u);
  std::vector<int> sorted_labels = shuffled.labels;
  std::sort(sorted_labels.begin(), sorted_labels.end());
  std::vector<int> expected = dataset.labels;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(sorted_labels, expected);
}

TEST(BalanceClassesTest, ProducesEqualCounts) {
  common::Rng rng(4);
  Dataset dataset = MakeToyDataset(30);
  // Imbalance it: drop most of class 1.
  std::vector<size_t> keep;
  int ones_kept = 0;
  for (size_t i = 0; i < dataset.NumRows(); ++i) {
    if (dataset.labels[i] == 0 || ones_kept++ < 5) keep.push_back(i);
  }
  dataset = dataset.SelectRows(keep);
  const Dataset balanced = BalanceClasses(dataset, rng);
  const std::vector<size_t> counts = ClassCounts(balanced);
  EXPECT_EQ(counts[0], counts[1]);
  EXPECT_EQ(counts[0], 5u);
}

TEST(ClassCountsTest, CountsPerClass) {
  const Dataset dataset = MakeToyDataset(9, 3);
  const std::vector<size_t> counts = ClassCounts(dataset);
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 3u);
  EXPECT_EQ(counts[1], 3u);
  EXPECT_EQ(counts[2], 3u);
}

// ---------------------------------------------------------------------------
// CSV round trips
// ---------------------------------------------------------------------------

TEST(CsvTest, RoundTripWithNaAndQuoting) {
  DataFrame frame;
  Column name("name", ColumnType::kCategorical);
  name.Append(CellValue("plain"));
  name.Append(CellValue("has,comma"));
  name.Append(CellValue("has\"quote"));
  name.Append(CellValue::Na());
  BBV_CHECK(frame.AddColumn(std::move(name)).ok());
  Column value("value", ColumnType::kNumeric);
  value.Append(CellValue(1.5));
  value.Append(CellValue::Na());
  value.Append(CellValue(-3.25));
  value.Append(CellValue(1e6));
  BBV_CHECK(frame.AddColumn(std::move(value)).ok());

  std::stringstream buffer;
  ASSERT_TRUE(WriteCsv(frame, buffer).ok());
  const auto parsed = ReadCsv(
      buffer, {{"name", ColumnType::kCategorical},
               {"value", ColumnType::kNumeric}});
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->NumRows(), 4u);
  EXPECT_EQ(parsed->ColumnByName("name").cell(1).AsString(), "has,comma");
  EXPECT_EQ(parsed->ColumnByName("name").cell(2).AsString(), "has\"quote");
  EXPECT_TRUE(parsed->ColumnByName("name").cell(3).is_na());
  EXPECT_TRUE(parsed->ColumnByName("value").cell(1).is_na());
  EXPECT_DOUBLE_EQ(parsed->ColumnByName("value").cell(2).AsDouble(), -3.25);
}

TEST(CsvTest, RejectsImageColumns) {
  DataFrame frame;
  BBV_CHECK(frame.AddColumn(Column::Image("img", {{0.1, 0.2}})).ok());
  std::stringstream buffer;
  EXPECT_FALSE(WriteCsv(frame, buffer).ok());
}

TEST(CsvTest, RejectsBadNumericField) {
  std::stringstream buffer("x\nnot_a_number\n");
  const auto parsed = ReadCsv(buffer, {{"x", ColumnType::kNumeric}});
  EXPECT_FALSE(parsed.ok());
}

TEST(CsvTest, RejectsColumnCountMismatch) {
  std::stringstream buffer("a,b\n1\n");
  const auto parsed = ReadCsv(
      buffer,
      {{"a", ColumnType::kNumeric}, {"b", ColumnType::kNumeric}});
  EXPECT_FALSE(parsed.ok());
}

TEST(CsvTest, EmptyInputIsError) {
  std::stringstream buffer("");
  EXPECT_FALSE(ReadCsv(buffer, {{"a", ColumnType::kNumeric}}).ok());
}

}  // namespace
}  // namespace bbv::data
