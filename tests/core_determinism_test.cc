// Regression tests for the determinism contract of the parallel subsystem:
// training the same model from the same seed must produce byte-identical
// serialized output (and identical estimates) whether BBV_THREADS is 1 or 8.
// The serial path is the reference; any divergence means a parallel call
// site depends on execution order or shares an Rng across tasks.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/performance_predictor.h"
#include "core/performance_validator.h"
#include "datasets/tabular.h"
#include "errors/missing_values.h"
#include "errors/numeric_errors.h"
#include "ml/black_box.h"
#include "ml/random_forest.h"
#include "ml/sgd_logistic_regression.h"

namespace bbv::core {
namespace {

/// Sets BBV_THREADS for one scope and restores the previous value after.
class ScopedThreadsEnv {
 public:
  explicit ScopedThreadsEnv(const char* value) {
    const char* previous = std::getenv("BBV_THREADS");
    had_previous_ = previous != nullptr;
    if (had_previous_) previous_ = previous;
    ::setenv("BBV_THREADS", value, 1);
  }
  ~ScopedThreadsEnv() {
    if (had_previous_) {
      ::setenv("BBV_THREADS", previous_.c_str(), 1);
    } else {
      ::unsetenv("BBV_THREADS");
    }
  }
  ScopedThreadsEnv(const ScopedThreadsEnv&) = delete;
  ScopedThreadsEnv& operator=(const ScopedThreadsEnv&) = delete;

 private:
  bool had_previous_ = false;
  std::string previous_;
};

struct Fixture {
  data::Dataset train;
  data::Dataset test;
  data::Dataset serving;
  std::unique_ptr<ml::BlackBoxModel> model;
};

Fixture MakeFixture(common::Rng& rng, size_t rows) {
  data::Dataset dataset = datasets::MakeIncome(rows, rng);
  dataset = data::BalanceClasses(dataset, rng);
  auto [source, serving] = data::TrainTestSplit(dataset, 0.7, rng);
  auto [train, test] = data::TrainTestSplit(source, 0.7, rng);
  Fixture fixture;
  fixture.train = std::move(train);
  fixture.test = std::move(test);
  fixture.serving = std::move(serving);
  fixture.model = std::make_unique<ml::BlackBoxModel>(
      std::make_unique<ml::SgdLogisticRegression>());
  BBV_CHECK(fixture.model->Train(fixture.train, rng).ok());
  return fixture;
}

TEST(DeterminismTest, RandomForestSerializesIdenticallyAcrossThreadCounts) {
  common::Rng data_rng(11);
  linalg::Matrix features(600, 3);
  std::vector<double> targets(600);
  for (size_t i = 0; i < 600; ++i) {
    features.At(i, 0) = data_rng.Uniform(0.0, 1.0);
    features.At(i, 1) = data_rng.Uniform(0.0, 1.0);
    features.At(i, 2) = data_rng.Uniform(0.0, 1.0);
    targets[i] = 2.0 * features.At(i, 0) + features.At(i, 1) +
                 data_rng.Gaussian(0.0, 0.05);
  }

  auto serialized_at = [&](const char* threads) {
    ScopedThreadsEnv env(threads);
    ml::RandomForestRegressor::Options options;
    options.num_trees = 16;
    ml::RandomForestRegressor forest(options);
    common::Rng rng(77);
    BBV_CHECK(forest.Fit(features, targets, rng).ok());
    std::ostringstream out;
    BBV_CHECK(forest.Save(out).ok());
    return out.str();
  };

  const std::string serial = serialized_at("1");
  const std::string threaded = serialized_at("8");
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, threaded)
      << "forest bytes diverge between 1 and 8 threads";
}

TEST(DeterminismTest, PredictorSerializesIdenticallyAcrossThreadCounts) {
  const errors::MissingValues missing;
  const errors::NumericOutliers outliers;
  const std::vector<const errors::ErrorGen*> generators = {&missing,
                                                           &outliers};

  auto run_at = [&](const char* threads) {
    ScopedThreadsEnv env(threads);
    common::Rng rng(42);
    Fixture fixture = MakeFixture(rng, 1200);
    PerformancePredictor::Options options;
    options.corruptions_per_generator = 10;
    options.tree_count_grid = {10, 20};
    PerformancePredictor predictor(options);
    BBV_CHECK(
        predictor.Train(*fixture.model, fixture.test, generators, rng).ok());
    std::ostringstream out;
    BBV_CHECK(predictor.Save(out).ok());
    const ScoreEstimate estimate =
        predictor.EstimateScore(*fixture.model, fixture.serving.features)
            .ValueOrDie();
    return std::make_pair(out.str(), estimate);
  };

  const auto [serial_bytes, serial_estimate] = run_at("1");
  const auto [threaded_bytes, threaded_estimate] = run_at("8");
  ASSERT_FALSE(serial_bytes.empty());
  EXPECT_EQ(serial_bytes, threaded_bytes)
      << "predictor bytes diverge between 1 and 8 threads";
  // Identical bytes should imply identical estimates; assert both anyway so
  // a failure pinpoints whether inference (not training) diverged.
  EXPECT_EQ(serial_estimate, threaded_estimate);  // bbv-lint: allow(float-eq)
}

TEST(DeterminismTest, ValidatorSerializesIdenticallyAcrossThreadCounts) {
  const errors::MissingValues missing;
  const std::vector<const errors::ErrorGen*> generators = {&missing};

  auto run_at = [&](const char* threads) {
    ScopedThreadsEnv env(threads);
    common::Rng rng(99);
    Fixture fixture = MakeFixture(rng, 1200);
    PerformanceValidator::Options options;
    options.corruptions_per_generator = 8;
    options.meta_batch_size = 100;
    PerformanceValidator validator(options);
    BBV_CHECK(
        validator.Train(*fixture.model, fixture.test, generators, rng).ok());
    std::ostringstream out;
    BBV_CHECK(validator.Save(out).ok());
    return out.str();
  };

  const std::string serial = run_at("1");
  const std::string threaded = run_at("8");
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, threaded)
      << "validator bytes diverge between 1 and 8 threads";
}

}  // namespace
}  // namespace bbv::core
