#include "stats/hypothesis.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "stats/special_functions.h"

namespace bbv::stats {
namespace {

// ---------------------------------------------------------------------------
// Special functions
// ---------------------------------------------------------------------------

TEST(SpecialFunctionsTest, LnGammaMatchesFactorials) {
  // Gamma(n) = (n-1)!.
  EXPECT_NEAR(LnGamma(1.0), 0.0, 1e-12);
  EXPECT_NEAR(LnGamma(2.0), 0.0, 1e-12);
  EXPECT_NEAR(LnGamma(5.0), std::log(24.0), 1e-10);
  EXPECT_NEAR(LnGamma(11.0), std::log(3628800.0), 1e-8);
}

TEST(SpecialFunctionsTest, LnGammaHalfInteger) {
  // Gamma(1/2) = sqrt(pi).
  EXPECT_NEAR(LnGamma(0.5), 0.5 * std::log(M_PI), 1e-10);
}

TEST(SpecialFunctionsTest, RegularizedGammaBoundaries) {
  EXPECT_DOUBLE_EQ(RegularizedGammaP(2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedGammaQ(2.0, 0.0), 1.0);
  EXPECT_NEAR(RegularizedGammaP(1.0, 1e6), 1.0, 1e-12);
}

TEST(SpecialFunctionsTest, PAndQSumToOne) {
  for (double a : {0.5, 1.0, 2.5, 10.0}) {
    for (double x : {0.1, 1.0, 5.0, 20.0}) {
      EXPECT_NEAR(RegularizedGammaP(a, x) + RegularizedGammaQ(a, x), 1.0,
                  1e-10);
    }
  }
}

TEST(SpecialFunctionsTest, ChiSquaredSurvivalMatchesTables) {
  // Critical values: chi2(0.05, dof=1) = 3.841; chi2(0.05, dof=5) = 11.070.
  EXPECT_NEAR(ChiSquaredSurvival(3.841, 1.0), 0.05, 1e-3);
  EXPECT_NEAR(ChiSquaredSurvival(11.070, 5.0), 0.05, 1e-3);
  // chi2 with dof=2 has survival exp(-x/2).
  EXPECT_NEAR(ChiSquaredSurvival(4.0, 2.0), std::exp(-2.0), 1e-10);
}

TEST(SpecialFunctionsTest, KolmogorovSurvivalKnownValues) {
  // Q_KS(1.36) ~= 0.049 (the classic 5% critical value).
  EXPECT_NEAR(KolmogorovSurvival(1.36), 0.049, 2e-3);
  EXPECT_DOUBLE_EQ(KolmogorovSurvival(0.0), 1.0);
  EXPECT_NEAR(KolmogorovSurvival(5.0), 0.0, 1e-12);
  // Monotone decreasing.
  double last = 1.0;
  for (double lambda = 0.1; lambda < 3.0; lambda += 0.1) {
    const double p = KolmogorovSurvival(lambda);
    EXPECT_LE(p, last + 1e-12);
    last = p;
  }
}

// ---------------------------------------------------------------------------
// Kolmogorov-Smirnov
// ---------------------------------------------------------------------------

TEST(KsTest, IdenticalSamplesDoNotReject) {
  std::vector<double> sample;
  for (int i = 0; i < 500; ++i) sample.push_back(i * 0.01);
  const TestResult result = TwoSampleKsTest(sample, sample);
  EXPECT_DOUBLE_EQ(result.statistic, 0.0);
  EXPECT_FALSE(result.Rejects());
}

TEST(KsTest, DisjointSamplesMaximallyReject) {
  std::vector<double> low;
  std::vector<double> high;
  for (int i = 0; i < 100; ++i) {
    low.push_back(static_cast<double>(i));
    high.push_back(1000.0 + i);
  }
  const TestResult result = TwoSampleKsTest(low, high);
  EXPECT_DOUBLE_EQ(result.statistic, 1.0);
  EXPECT_LT(result.p_value, 1e-6);
}

TEST(KsTest, SameDistributionRarelyRejects) {
  common::Rng rng(5);
  int rejections = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> a(150);
    std::vector<double> b(150);
    for (double& v : a) v = rng.Gaussian();
    for (double& v : b) v = rng.Gaussian();
    if (TwoSampleKsTest(a, b).Rejects(0.05)) ++rejections;
  }
  // Expected rejection rate ~5%; allow generous slack.
  EXPECT_LE(rejections, trials / 8);
}

TEST(KsTest, DetectsMeanShift) {
  common::Rng rng(9);
  std::vector<double> a(400);
  std::vector<double> b(400);
  for (double& v : a) v = rng.Gaussian();
  for (double& v : b) v = rng.Gaussian(1.0, 1.0);
  EXPECT_TRUE(TwoSampleKsTest(a, b).Rejects(0.05));
}

TEST(KsTest, StatisticMatchesHandComputedValue) {
  // a = {1,2,3}, b = {2,3,4}: max CDF gap is 1/3.
  const TestResult result = TwoSampleKsTest({1, 2, 3}, {2, 3, 4});
  EXPECT_NEAR(result.statistic, 1.0 / 3.0, 1e-12);
}

TEST(KsTest, HandlesDuplicatedValues) {
  const TestResult result =
      TwoSampleKsTest({1, 1, 1, 1}, {1, 1, 1, 1});
  EXPECT_DOUBLE_EQ(result.statistic, 0.0);
}

// ---------------------------------------------------------------------------
// Chi-squared
// ---------------------------------------------------------------------------

TEST(ChiSquaredTest, EqualCountsDoNotReject) {
  const TestResult result =
      ChiSquaredHomogeneityTest({50, 50, 50}, {50, 50, 50});
  EXPECT_DOUBLE_EQ(result.statistic, 0.0);
  EXPECT_FALSE(result.Rejects());
}

TEST(ChiSquaredTest, ProportionalCountsDoNotReject) {
  // Same distribution, different sample sizes.
  const TestResult result =
      ChiSquaredHomogeneityTest({10, 20, 30}, {100, 200, 300});
  EXPECT_NEAR(result.statistic, 0.0, 1e-9);
  EXPECT_FALSE(result.Rejects());
}

TEST(ChiSquaredTest, DetectsDistributionChange) {
  const TestResult result =
      ChiSquaredHomogeneityTest({100, 10}, {10, 100});
  EXPECT_TRUE(result.Rejects(0.001));
}

TEST(ChiSquaredTest, IgnoresCategoriesAbsentFromBoth) {
  const TestResult with_zeros =
      ChiSquaredHomogeneityTest({50, 0, 50}, {50, 0, 50});
  EXPECT_DOUBLE_EQ(with_zeros.statistic, 0.0);
}

TEST(ChiSquaredTest, DegenerateSingleCategory) {
  const TestResult result = ChiSquaredHomogeneityTest({10, 0}, {20, 0});
  EXPECT_DOUBLE_EQ(result.p_value, 1.0);
}

TEST(ChiSquaredTest, GoodnessOfFitKnownValue) {
  // Observed {40, 60}, expected {50, 50}: chi2 = 100/50 + 100/50 = 4,
  // dof 1 -> p ~ 0.0455.
  const TestResult result = ChiSquaredGoodnessOfFit({40, 60}, {50, 50});
  EXPECT_NEAR(result.statistic, 4.0, 1e-12);
  EXPECT_NEAR(result.p_value, 0.0455, 1e-3);
}

TEST(BonferroniTest, DividesAlpha) {
  EXPECT_DOUBLE_EQ(BonferroniAlpha(0.05, 1), 0.05);
  EXPECT_DOUBLE_EQ(BonferroniAlpha(0.05, 10), 0.005);
}

}  // namespace
}  // namespace bbv::stats
