// Minimal recursive-descent JSON syntax validator for round-trip checks on
// the exporters (telemetry registry, monitor serving log, bench JSON). Only
// validates well-formedness — tests assert on specific keys separately.
#ifndef BBV_TESTS_JSON_TEST_UTIL_H_
#define BBV_TESTS_JSON_TEST_UTIL_H_

#include <cctype>
#include <cstddef>
#include <string>

namespace bbv::testing {

class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : text_(text) {}

  bool Validate() {
    pos_ = 0;
    SkipWhitespace();
    if (!ParseValue()) return false;
    SkipWhitespace();
    return pos_ == text_.size();
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool Consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const std::string& literal) {
    if (text_.compare(pos_, literal.size(), literal) != 0) return false;
    pos_ += literal.size();
    return true;
  }

  bool ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
        return ConsumeLiteral("true");
      case 'f':
        return ConsumeLiteral("false");
      case 'n':
        return ConsumeLiteral("null");
      default:
        return ParseNumber();
    }
  }

  bool ParseObject() {
    if (!Consume('{')) return false;
    SkipWhitespace();
    if (Consume('}')) return true;
    while (true) {
      SkipWhitespace();
      if (!ParseString()) return false;
      SkipWhitespace();
      if (!Consume(':')) return false;
      if (!ParseValue()) return false;
      SkipWhitespace();
      if (Consume('}')) return true;
      if (!Consume(',')) return false;
    }
  }

  bool ParseArray() {
    if (!Consume('[')) return false;
    SkipWhitespace();
    if (Consume(']')) return true;
    while (true) {
      if (!ParseValue()) return false;
      SkipWhitespace();
      if (Consume(']')) return true;
      if (!Consume(',')) return false;
    }
  }

  bool ParseString() {
    if (!Consume('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\\') {
        pos_ += 2;
        continue;
      }
      ++pos_;
      if (c == '"') return true;
    }
    return false;
  }

  bool ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool has_digits = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        has_digits = true;
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        ++pos_;
      } else {
        break;
      }
    }
    return has_digits && pos_ > start;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

/// True when `text` is one syntactically well-formed JSON document.
inline bool JsonParses(const std::string& text) {
  return JsonValidator(text).Validate();
}

}  // namespace bbv::testing

#endif  // BBV_TESTS_JSON_TEST_UTIL_H_
