// Parameterized end-to-end sweep: for every (error type, dataset) pair in
// the tabular evaluation, a performance predictor trained on that error
// must track the black box model's true accuracy on freshly corrupted
// serving data. This is the per-cell guarantee behind Figure 2.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>

#include "common/rng.h"
#include "core/performance_predictor.h"
#include "datasets/registry.h"
#include "errors/missing_values.h"
#include "errors/numeric_errors.h"
#include "errors/swapped_columns.h"
#include "ml/black_box.h"
#include "ml/sgd_logistic_regression.h"

namespace bbv::core {
namespace {

struct SweepCase {
  std::string name;
  std::string dataset;
  std::shared_ptr<errors::ErrorGen> generator;
};

std::vector<SweepCase> SweepCases() {
  return {
      {"income_missing", "income", std::make_shared<errors::MissingValues>()},
      {"income_outliers", "income",
       std::make_shared<errors::NumericOutliers>()},
      {"income_swap", "income", std::make_shared<errors::SwappedColumns>()},
      {"income_scaling", "income", std::make_shared<errors::Scaling>()},
      {"heart_missing", "heart", std::make_shared<errors::MissingValues>()},
      {"heart_outliers", "heart",
       std::make_shared<errors::NumericOutliers>()},
      {"bank_missing", "bank", std::make_shared<errors::MissingValues>()},
      {"bank_scaling", "bank", std::make_shared<errors::Scaling>()},
  };
}

class PredictorSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(PredictorSweep, TracksTrueAccuracyUnderItsErrorType) {
  common::Rng rng(404);
  datasets::DatasetOptions dataset_options;
  dataset_options.num_rows = 4000;
  auto raw = datasets::MakeByName(GetParam().dataset, dataset_options, rng);
  ASSERT_TRUE(raw.ok());
  data::Dataset balanced = data::BalanceClasses(*raw, rng);
  auto [source, serving] = data::TrainTestSplit(balanced, 0.7, rng);
  auto [train, test] = data::TrainTestSplit(source, 0.7, rng);

  ml::BlackBoxModel model(std::make_unique<ml::SgdLogisticRegression>());
  ASSERT_TRUE(model.Train(train, rng).ok());

  PerformancePredictor::Options options;
  options.corruptions_per_generator = 30;
  options.tree_count_grid = {40};
  PerformancePredictor predictor(options);
  const std::vector<const errors::ErrorGen*> generators = {
      GetParam().generator.get()};
  ASSERT_TRUE(predictor.Train(model, test, generators, rng).ok());

  double total_error = 0.0;
  const int repetitions = 10;
  for (int repetition = 0; repetition < repetitions; ++repetition) {
    const auto corrupted =
        GetParam().generator->Corrupt(serving.features, rng);
    ASSERT_TRUE(corrupted.ok());
    const auto probabilities = model.PredictProba(*corrupted);
    ASSERT_TRUE(probabilities.ok());
    const double truth = ComputeScore(ScoreMetric::kAccuracy, *probabilities,
                                      serving.labels);
    const auto estimate = predictor.EstimateScoreFromProba(*probabilities);
    ASSERT_TRUE(estimate.ok());
    total_error += std::abs(estimate->point - truth);
  }
  // Figure 2 medians are ~0.01; at this reduced test scale we accept a mean
  // absolute error up to 0.06 per cell (the bench reproduces the tighter
  // numbers at full repetition counts).
  EXPECT_LT(total_error / repetitions, 0.06) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    TabularCells, PredictorSweep, ::testing::ValuesIn(SweepCases()),
    [](const ::testing::TestParamInfo<SweepCase>& param_info) {
      return param_info.param.name;
    });

}  // namespace
}  // namespace bbv::core
