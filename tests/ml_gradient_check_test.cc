// Numerical gradient checks for the neural models: compare the analytic
// loss decrease achieved by a training step against finite-difference
// expectations, and verify that single-step updates move the loss downhill.
// These tests guard the hand-written backpropagation in the feed-forward
// network and the convolutional network.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "ml/conv_net.h"
#include "ml/feed_forward_network.h"
#include "ml/metrics.h"

namespace bbv::ml {
namespace {

/// Cross-entropy of a model's predictions.
template <typename Model>
double Loss(const Model& model, const linalg::Matrix& features,
            const std::vector<int>& labels) {
  return LogLoss(model.PredictProba(features), labels);
}

TEST(FeedForwardGradientTest, TrainingStepsDecreaseLoss) {
  common::Rng rng(1);
  const size_t n = 128;
  linalg::Matrix features(n, 4);
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % 2);
    for (size_t j = 0; j < 4; ++j) {
      features.At(i, j) = rng.Gaussian(label == 0 ? -1.0 : 1.0, 0.8);
    }
    labels[i] = label;
  }
  // Train with increasing epoch budgets from the same init; the training
  // loss must decrease substantially as the budget grows.
  std::vector<double> losses;
  for (int epochs : {2, 40, 160}) {
    common::Rng fit_rng(7);
    FeedForwardNetwork::Options options;
    options.hidden_sizes = {8};
    options.epochs = epochs;
    FeedForwardNetwork model(options);
    ASSERT_TRUE(model.Fit(features, labels, 2, fit_rng).ok());
    losses.push_back(Loss(model, features, labels));
  }
  EXPECT_LT(losses[1], losses[0]);
  EXPECT_LE(losses[2], losses[1] + 0.02);
  EXPECT_LT(losses[2], 0.3) << "network failed to fit the data";
}

TEST(FeedForwardGradientTest, DeepNetworkAlsoConverges) {
  common::Rng rng(2);
  const size_t n = 128;
  linalg::Matrix features(n, 3);
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % 2);
    features.At(i, 0) = rng.Gaussian(label == 0 ? -2.0 : 2.0, 0.5);
    features.At(i, 1) = rng.Gaussian(0.0, 1.0);
    features.At(i, 2) = rng.Gaussian(0.0, 1.0);
    labels[i] = label;
  }
  FeedForwardNetwork::Options options;
  options.hidden_sizes = {16, 16, 16};  // three hidden layers
  options.epochs = 60;
  FeedForwardNetwork model(options);
  ASSERT_TRUE(model.Fit(features, labels, 2, rng).ok());
  EXPECT_LT(Loss(model, features, labels), 0.2);
}

TEST(FeedForwardGradientTest, DropoutStillLearns) {
  common::Rng rng(3);
  const size_t n = 200;
  linalg::Matrix features(n, 3);
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % 2);
    features.At(i, 0) = rng.Gaussian(label == 0 ? -2.0 : 2.0, 0.5);
    features.At(i, 1) = rng.Gaussian(label == 0 ? 1.0 : -1.0, 0.5);
    features.At(i, 2) = rng.Gaussian(0.0, 1.0);
    labels[i] = label;
  }
  FeedForwardNetwork::Options options;
  options.hidden_sizes = {32, 32};
  options.epochs = 50;
  options.dropout = 0.3;
  FeedForwardNetwork model(options);
  ASSERT_TRUE(model.Fit(features, labels, 2, rng).ok());
  EXPECT_GT(Accuracy(PredictLabels(model, features), labels), 0.95);
}

TEST(ConvNetGradientTest, TrainingStepsDecreaseLoss) {
  common::Rng rng(4);
  const size_t side = 8;
  const size_t n = 128;
  linalg::Matrix features(n, side * side);
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % 2);
    for (size_t r = 0; r < side; ++r) {
      for (size_t c = 0; c < side; ++c) {
        // Class 0: bright left half; class 1: bright right half.
        const bool bright = label == 0 ? c < side / 2 : c >= side / 2;
        features.At(i, r * side + c) = std::clamp(
            (bright ? 0.9 : 0.1) + rng.Gaussian(0.0, 0.05), 0.0, 1.0);
      }
    }
    labels[i] = label;
  }
  std::vector<double> losses;
  for (int epochs : {2, 10, 30}) {
    common::Rng fit_rng(11);
    ConvNet::Options options;
    options.conv1_channels = 4;
    options.conv2_channels = 4;
    options.dense_units = 8;
    options.epochs = epochs;
    options.dropout = 0.0;
    ConvNet model(options);
    ASSERT_TRUE(model.Fit(features, labels, 2, fit_rng).ok());
    losses.push_back(Loss(model, features, labels));
  }
  EXPECT_LT(losses[1], losses[0]);
  EXPECT_LE(losses[2], losses[1] + 0.02);
  EXPECT_LT(losses[2], 0.3) << "conv net failed to fit the data";
}

TEST(ConvNetGradientTest, SpatialStructureMatters) {
  // A task solvable only via spatial structure (same total brightness in
  // both classes): vertical vs horizontal bars.
  common::Rng rng(5);
  const size_t side = 10;
  const size_t n = 240;
  linalg::Matrix features(n, side * side);
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % 2);
    const size_t offset = 2 + rng.UniformInt(size_t{6});
    for (size_t r = 0; r < side; ++r) {
      for (size_t c = 0; c < side; ++c) {
        const bool on = label == 0 ? (r == offset) : (c == offset);
        features.At(i, r * side + c) = std::clamp(
            (on ? 0.9 : 0.05) + rng.Gaussian(0.0, 0.05), 0.0, 1.0);
      }
    }
    labels[i] = label;
  }
  ConvNet::Options options;
  options.conv1_channels = 6;
  options.conv2_channels = 8;
  options.dense_units = 16;
  options.epochs = 15;
  options.dropout = 0.0;
  ConvNet model(options);
  ASSERT_TRUE(model.Fit(features, labels, 2, rng).ok());
  EXPECT_GT(Accuracy(PredictLabels(model, features), labels), 0.9);
}

}  // namespace
}  // namespace bbv::ml
