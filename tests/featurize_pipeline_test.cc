#include "featurize/pipeline.h"

#include <gtest/gtest.h>

#include <cmath>

#include "featurize/hashing_vectorizer.h"
#include "featurize/image_flattener.h"
#include "featurize/one_hot_encoder.h"
#include "featurize/standard_scaler.h"

namespace bbv::featurize {
namespace {

// ---------------------------------------------------------------------------
// StandardScaler
// ---------------------------------------------------------------------------

TEST(StandardScalerTest, CentersAndScales) {
  StandardScaler scaler;
  ASSERT_TRUE(
      scaler.Fit(data::Column::Numeric("x", {2.0, 4.0, 6.0})).ok());
  EXPECT_DOUBLE_EQ(scaler.mean(), 4.0);
  EXPECT_DOUBLE_EQ(scaler.stddev(), 2.0);
  const linalg::Matrix out =
      scaler.Transform(data::Column::Numeric("x", {4.0, 8.0}));
  EXPECT_DOUBLE_EQ(out.At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(out.At(1, 0), 2.0);
}

TEST(StandardScalerTest, NaMapsToMean) {
  StandardScaler scaler;
  ASSERT_TRUE(scaler.Fit(data::Column::Numeric("x", {1.0, 3.0})).ok());
  data::Column column("x", data::ColumnType::kNumeric);
  column.Append(data::CellValue::Na());
  const linalg::Matrix out = scaler.Transform(column);
  EXPECT_DOUBLE_EQ(out.At(0, 0), 0.0);
}

TEST(StandardScalerTest, ConstantColumnCentersOnly) {
  StandardScaler scaler;
  ASSERT_TRUE(
      scaler.Fit(data::Column::Numeric("x", {5.0, 5.0, 5.0})).ok());
  const linalg::Matrix out =
      scaler.Transform(data::Column::Numeric("x", {5.0, 7.0}));
  EXPECT_DOUBLE_EQ(out.At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(out.At(1, 0), 2.0);
}

TEST(StandardScalerTest, TrainingStatsAreReusedOnServingData) {
  StandardScaler scaler;
  ASSERT_TRUE(scaler.Fit(data::Column::Numeric("x", {0.0, 10.0})).ok());
  // Serving data with a different distribution still uses the train stats.
  const linalg::Matrix out =
      scaler.Transform(data::Column::Numeric("x", {1000.0}));
  EXPECT_NEAR(out.At(0, 0), (1000.0 - 5.0) / scaler.stddev(), 1e-12);
}

TEST(StandardScalerTest, RejectsNonNumericColumns) {
  StandardScaler scaler;
  EXPECT_FALSE(scaler.Fit(data::Column::Categorical("c", {"a"})).ok());
}

// ---------------------------------------------------------------------------
// OneHotEncoder
// ---------------------------------------------------------------------------

TEST(OneHotEncoderTest, EncodesSeenCategories) {
  OneHotEncoder encoder;
  ASSERT_TRUE(
      encoder.Fit(data::Column::Categorical("c", {"a", "b", "a"})).ok());
  EXPECT_EQ(encoder.OutputDim(), 2u);
  const linalg::Matrix out =
      encoder.Transform(data::Column::Categorical("c", {"b", "a"}));
  EXPECT_DOUBLE_EQ(out.At(0, static_cast<size_t>(encoder.CategoryIndex("b"))),
                   1.0);
  EXPECT_DOUBLE_EQ(out.At(1, static_cast<size_t>(encoder.CategoryIndex("a"))),
                   1.0);
  // One-hot rows sum to 1 for seen categories.
  EXPECT_DOUBLE_EQ(out.At(0, 0) + out.At(0, 1), 1.0);
}

TEST(OneHotEncoderTest, UnseenCategoryIsZeroVector) {
  // The property the paper leans on: typos / unseen categories encode to 0,
  // identically to missing values.
  OneHotEncoder encoder;
  ASSERT_TRUE(
      encoder.Fit(data::Column::Categorical("c", {"a", "b"})).ok());
  const linalg::Matrix out =
      encoder.Transform(data::Column::Categorical("c", {"zz"}));
  EXPECT_DOUBLE_EQ(out.At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(out.At(0, 1), 0.0);
  EXPECT_EQ(encoder.CategoryIndex("zz"), -1);
}

TEST(OneHotEncoderTest, NaIsZeroVector) {
  OneHotEncoder encoder;
  ASSERT_TRUE(encoder.Fit(data::Column::Categorical("c", {"a"})).ok());
  data::Column column("c", data::ColumnType::kCategorical);
  column.Append(data::CellValue::Na());
  const linalg::Matrix out = encoder.Transform(column);
  EXPECT_DOUBLE_EQ(out.At(0, 0), 0.0);
}

TEST(OneHotEncoderTest, NumericCellInCategoricalColumnIsZeroVector) {
  // Swapped-columns corruption puts numbers into categorical columns.
  OneHotEncoder encoder;
  ASSERT_TRUE(encoder.Fit(data::Column::Categorical("c", {"a"})).ok());
  data::Column column("c", data::ColumnType::kCategorical);
  column.Append(data::CellValue(42.0));
  const linalg::Matrix out = encoder.Transform(column);
  EXPECT_DOUBLE_EQ(out.At(0, 0), 0.0);
}

// ---------------------------------------------------------------------------
// HashingVectorizer
// ---------------------------------------------------------------------------

TEST(HashingVectorizerTest, DeterministicAndNormalized) {
  HashingVectorizer vectorizer(64, 2);
  ASSERT_TRUE(
      vectorizer.Fit(data::Column::Text("t", {"hello world"})).ok());
  const linalg::Matrix a =
      vectorizer.Transform(data::Column::Text("t", {"hello world"}));
  const linalg::Matrix b =
      vectorizer.Transform(data::Column::Text("t", {"hello world"}));
  double norm = 0.0;
  for (size_t j = 0; j < a.cols(); ++j) {
    EXPECT_DOUBLE_EQ(a.At(0, j), b.At(0, j));
    norm += a.At(0, j) * a.At(0, j);
  }
  EXPECT_NEAR(norm, 1.0, 1e-12);
}

TEST(HashingVectorizerTest, CaseInsensitive) {
  HashingVectorizer vectorizer(64, 1);
  ASSERT_TRUE(vectorizer.Fit(data::Column::Text("t", {"x"})).ok());
  const linalg::Matrix a =
      vectorizer.Transform(data::Column::Text("t", {"Hello"}));
  const linalg::Matrix b =
      vectorizer.Transform(data::Column::Text("t", {"hello"}));
  for (size_t j = 0; j < a.cols(); ++j) {
    EXPECT_DOUBLE_EQ(a.At(0, j), b.At(0, j));
  }
}

TEST(HashingVectorizerTest, DifferentTextsDiffer) {
  HashingVectorizer vectorizer(256, 2);
  ASSERT_TRUE(vectorizer.Fit(data::Column::Text("t", {"x"})).ok());
  const linalg::Matrix a =
      vectorizer.Transform(data::Column::Text("t", {"good morning friend"}));
  const linalg::Matrix b =
      vectorizer.Transform(data::Column::Text("t", {"terrible awful day"}));
  double difference = 0.0;
  for (size_t j = 0; j < a.cols(); ++j) {
    difference += std::abs(a.At(0, j) - b.At(0, j));
  }
  EXPECT_GT(difference, 0.1);
}

TEST(HashingVectorizerTest, EmptyTextAndNaAreZero) {
  HashingVectorizer vectorizer(32, 2);
  ASSERT_TRUE(vectorizer.Fit(data::Column::Text("t", {"x"})).ok());
  data::Column column("t", data::ColumnType::kText);
  column.Append(data::CellValue(""));
  column.Append(data::CellValue::Na());
  const linalg::Matrix out = vectorizer.Transform(column);
  for (size_t i = 0; i < out.rows(); ++i) {
    for (size_t j = 0; j < out.cols(); ++j) {
      EXPECT_DOUBLE_EQ(out.At(i, j), 0.0);
    }
  }
}

// ---------------------------------------------------------------------------
// ImageFlattener
// ---------------------------------------------------------------------------

TEST(ImageFlattenerTest, EmitsPixels) {
  ImageFlattener flattener;
  ASSERT_TRUE(
      flattener.Fit(data::Column::Image("i", {{0.1, 0.2, 0.3, 0.4}})).ok());
  EXPECT_EQ(flattener.OutputDim(), 4u);
  const linalg::Matrix out =
      flattener.Transform(data::Column::Image("i", {{0.5, 0.6, 0.7, 0.8}}));
  EXPECT_DOUBLE_EQ(out.At(0, 2), 0.7);
}

TEST(ImageFlattenerTest, NaImageIsZeroRow) {
  ImageFlattener flattener;
  ASSERT_TRUE(flattener.Fit(data::Column::Image("i", {{0.1, 0.2}})).ok());
  data::Column column("i", data::ColumnType::kImage);
  column.Append(data::CellValue::Na());
  const linalg::Matrix out = flattener.Transform(column);
  EXPECT_DOUBLE_EQ(out.At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(out.At(0, 1), 0.0);
}

// ---------------------------------------------------------------------------
// FeaturePipeline
// ---------------------------------------------------------------------------

data::DataFrame MixedFrame() {
  data::DataFrame frame;
  BBV_CHECK(frame.AddColumn(data::Column::Numeric("num", {1, 2, 3})).ok());
  BBV_CHECK(
      frame.AddColumn(data::Column::Categorical("cat", {"a", "b", "a"}))
          .ok());
  BBV_CHECK(
      frame.AddColumn(data::Column::Text("txt", {"x y", "y z", "z"})).ok());
  return frame;
}

TEST(FeaturePipelineTest, ConcatenatesBlocks) {
  PipelineOptions options;
  options.text_hash_buckets = 16;
  FeaturePipeline pipeline(options);
  ASSERT_TRUE(pipeline.Fit(MixedFrame()).ok());
  EXPECT_EQ(pipeline.TotalDim(), 1u + 2u + 16u);
  const auto out = pipeline.Transform(MixedFrame());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->rows(), 3u);
  EXPECT_EQ(out->cols(), 19u);
}

TEST(FeaturePipelineTest, TransformBeforeFitFails) {
  FeaturePipeline pipeline;
  EXPECT_FALSE(pipeline.Transform(MixedFrame()).ok());
}

TEST(FeaturePipelineTest, SchemaMismatchRejected) {
  FeaturePipeline pipeline;
  ASSERT_TRUE(pipeline.Fit(MixedFrame()).ok());
  data::DataFrame other;
  BBV_CHECK(other.AddColumn(data::Column::Numeric("zzz", {1.0})).ok());
  EXPECT_FALSE(pipeline.Transform(other).ok());
}

TEST(FeaturePipelineTest, EmptyFrameRejected) {
  FeaturePipeline pipeline;
  EXPECT_FALSE(pipeline.Fit(data::DataFrame()).ok());
}

TEST(FeaturePipelineTest, FitOnTrainOnlySemantics) {
  FeaturePipeline pipeline;
  ASSERT_TRUE(pipeline.Fit(MixedFrame()).ok());
  // Serving data with an unseen category transforms without refitting:
  // the unseen category encodes to the zero vector.
  data::DataFrame serving;
  BBV_CHECK(serving.AddColumn(data::Column::Numeric("num", {2.0})).ok());
  BBV_CHECK(
      serving.AddColumn(data::Column::Categorical("cat", {"unseen"})).ok());
  BBV_CHECK(serving.AddColumn(data::Column::Text("txt", {"x"})).ok());
  const auto out = pipeline.Transform(serving);
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(out->At(0, 1), 0.0);  // one-hot slot "a"
  EXPECT_DOUBLE_EQ(out->At(0, 2), 0.0);  // one-hot slot "b"
}

}  // namespace
}  // namespace bbv::featurize
