// Deployment-path integration test: train everything offline, serialize the
// black box model AND the performance predictor, reload both in a fresh
// scope (as a serving sidecar would), and verify that the reloaded pair
// produces the same monitoring decisions as the originals on corrupted
// serving batches.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "common/rng.h"
#include "core/monitor.h"
#include "core/performance_predictor.h"
#include "datasets/tabular.h"
#include "errors/mixture.h"
#include "errors/missing_values.h"
#include "errors/numeric_errors.h"
#include "ml/black_box.h"
#include "ml/gradient_boosted_trees.h"

namespace bbv {
namespace {

TEST(EndToEndSerializedTest, ReloadedArtifactsReproduceDecisions) {
  common::Rng rng(77);
  data::Dataset dataset = datasets::MakeHeart(3000, rng);
  dataset = data::BalanceClasses(dataset, rng);
  auto [source, serving] = data::TrainTestSplit(dataset, 0.7, rng);
  auto [train, test] = data::TrainTestSplit(source, 0.7, rng);

  // ---- offline: train + persist both artifacts ----
  std::stringstream model_artifact;
  std::stringstream predictor_artifact;
  {
    ml::BlackBoxModel model(std::make_unique<ml::GradientBoostedTrees>());
    ASSERT_TRUE(model.Train(train, rng).ok());
    core::PerformancePredictor::Options options;
    options.corruptions_per_generator = 30;
    options.tree_count_grid = {30};
    core::PerformancePredictor predictor(options);
    const errors::ErrorMixture mixture(
        {std::make_shared<errors::MissingValues>(),
         std::make_shared<errors::NumericOutliers>(),
         std::make_shared<errors::Scaling>()});
    std::vector<const errors::ErrorGen*> generators = {&mixture};
    ASSERT_TRUE(predictor.Train(model, test, generators, rng).ok());
    ASSERT_TRUE(model.Save(model_artifact).ok());
    ASSERT_TRUE(predictor.Save(predictor_artifact).ok());
  }

  // ---- serving side: reload and monitor ----
  auto model = ml::BlackBoxModel::Load(model_artifact);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  auto predictor = core::PerformancePredictor::Load(predictor_artifact);
  ASSERT_TRUE(predictor.ok()) << predictor.status().ToString();

  core::ModelMonitor monitor(model->get(), *predictor);
  const errors::Scaling incident({}, errors::FractionRange{0.9, 1.0},
                                 {1000.0});
  // Clean batch accepted; severe incident alarmed.
  const auto clean_report = monitor.Observe(serving.features);
  ASSERT_TRUE(clean_report.ok());
  EXPECT_FALSE(clean_report->alarm);
  int alarms = 0;
  for (int i = 0; i < 3; ++i) {
    const auto corrupted = incident.Corrupt(serving.features, rng);
    ASSERT_TRUE(corrupted.ok());
    const auto report = monitor.Observe(*corrupted);
    ASSERT_TRUE(report.ok());
    if (report->alarm) ++alarms;
  }
  EXPECT_GE(alarms, 2);
  EXPECT_EQ(monitor.batches_observed(), 4u);
}

}  // namespace
}  // namespace bbv
