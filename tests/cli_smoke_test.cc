// End-to-end smoke test of the bbv_cli binary: runs the full CSV workflow
// (generate data -> train model -> train predictor -> estimate clean batch
// -> corrupt batch -> estimate again) in a temporary directory and checks
// the exit codes, including the documented "2 = alarm" contract.
//
// The test locates the CLI relative to the ctest working directory
// (build/tests); it is skipped when the binary is not present (e.g. when
// the tools/ directory was disabled).

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>

namespace bbv {
namespace {

namespace fs = std::filesystem;

class CliSmokeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cli_ = fs::absolute("../tools/bbv_cli");
    if (!fs::exists(cli_)) {
      GTEST_SKIP() << "bbv_cli not found at " << cli_;
    }
    work_dir_ = fs::temp_directory_path() / "bbv_cli_smoke_test";
    fs::remove_all(work_dir_);
    fs::create_directories(work_dir_);
  }

  void TearDown() override { fs::remove_all(work_dir_); }

  /// Runs the CLI with the given arguments; returns the exit code.
  int Run(const std::string& arguments) {
    const std::string command = "cd " + work_dir_.string() + " && " +
                                cli_.string() + " " + arguments +
                                " > /dev/null 2>&1";
    const int status = std::system(command.c_str());
    return WEXITSTATUS(status);
  }

  fs::path cli_;
  fs::path work_dir_;
};

TEST_F(CliSmokeTest, FullWorkflowIncludingAlarm) {
  ASSERT_EQ(Run("gen-data --dataset bank --rows 4000 --train train.csv "
                "--test test.csv --serving serving.csv --seed 5"),
            0);
  EXPECT_TRUE(fs::exists(work_dir_ / "train.csv"));
  EXPECT_TRUE(fs::exists(work_dir_ / "serving.csv"));

  ASSERT_EQ(Run("train --dataset bank --train train.csv --model xgb "
                "--out model.bbv --seed 5"),
            0);
  EXPECT_TRUE(fs::exists(work_dir_ / "model.bbv"));

  ASSERT_EQ(Run("train-predictor --dataset bank --model-file model.bbv "
                "--test test.csv --errors missing,outliers,scaling "
                "--corruptions 30 --out predictor.bbv --seed 5"),
            0);
  EXPECT_TRUE(fs::exists(work_dir_ / "predictor.bbv"));

  // Clean serving batch: exit 0 (accept).
  EXPECT_EQ(Run("estimate --dataset bank --model-file model.bbv "
                "--predictor-file predictor.bbv --batch serving.csv"),
            0);

  // Catastrophic scaling incident: exit 2 (alarm).
  ASSERT_EQ(Run("corrupt --dataset bank --in serving.csv --out incident.csv "
                "--error scaling --seed 6"),
            0);
  EXPECT_EQ(Run("estimate --dataset bank --model-file model.bbv "
                "--predictor-file predictor.bbv --batch incident.csv"),
            2);
}

TEST_F(CliSmokeTest, BadInvocationsFailCleanly) {
  EXPECT_EQ(Run(""), 1);                                  // no command
  EXPECT_EQ(Run("help"), 0);                              // usage
  EXPECT_EQ(Run("no-such-command --x 1"), 1);             // unknown command
  EXPECT_EQ(Run("train --dataset bank"), 1);              // missing flags
  EXPECT_EQ(Run("gen-data --dataset nope --rows 10 --train a --test b "
                "--serving c"),
            1);                                           // unknown dataset
}

}  // namespace
}  // namespace bbv
