#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace bbv::common {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 10; ++i) {
    if (a.NextUint64() != b.NextUint64()) ++differing;
  }
  EXPECT_GE(differing, 9);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(17);
  std::set<size_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(size_t{7}));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(RngTest, UniformIntSignedRange) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(int64_t{-5}, int64_t{5});
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, GaussianMomentsMatchStandardNormal) {
  Rng rng(23);
  const int n = 100000;
  double sum = 0.0;
  double sum_squares = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_squares += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_squares / n, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParameters) {
  Rng rng(29);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(31);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, BernoulliDegenerateProbabilities) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(41);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = values;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(43);
  const std::vector<size_t> sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t v : sample) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(47);
  const std::vector<size_t> sample = rng.SampleWithoutReplacement(5, 5);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RngTest, PermutationContainsAllIndices) {
  Rng rng(53);
  const std::vector<size_t> perm = rng.Permutation(50);
  std::set<size_t> unique(perm.begin(), perm.end());
  EXPECT_EQ(unique.size(), 50u);
}

TEST(RngTest, ChoicePicksExistingElements) {
  Rng rng(59);
  const std::vector<std::string> items = {"a", "b", "c"};
  std::set<std::string> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.Choice(items));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(61);
  Rng child = parent.Fork();
  // The child's stream differs from the parent's continued stream.
  int differing = 0;
  for (int i = 0; i < 10; ++i) {
    if (parent.NextUint64() != child.NextUint64()) ++differing;
  }
  EXPECT_GE(differing, 9);
}

}  // namespace
}  // namespace bbv::common
