// Tests for the bench JSON diff engine behind the CI perf gate: parsing of
// the WriteBenchJson format, tolerance-based wall-time comparison, the
// never-decrease rule for correctness flags, and entry set changes.

#include "tools/bench_compare.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace bbv::tools {
namespace {

std::string SampleJson(double forest_wall, double cv_wall,
                       double deterministic) {
  std::string json = R"({
  "bench": "parallel_scaling",
  "mode": "fast",
  "seed": 42,
  "hardware_concurrency": 8,
  "results": [
    {"name": "forest_fit", "threads": 1, "wall_seconds": )";
  json += std::to_string(forest_wall);
  json += R"(, "speedup_vs_serial": 1, "deterministic": )";
  json += std::to_string(deterministic);
  json += R"(},
    {"name": "cv_mae", "threads": 4, "wall_seconds": )";
  json += std::to_string(cv_wall);
  json += R"(, "speedup_vs_serial": 2.5}
  ]
}
)";
  return json;
}

BenchFile Parse(const std::string& json) {
  BenchFile file;
  std::string error;
  const bool ok = ParseBenchJson(json, &file, &error);
  EXPECT_TRUE(ok) << error;
  return file;
}

TEST(BenchCompareParseTest, ReadsMetadataAndEntries) {
  const BenchFile file = Parse(SampleJson(1.5, 0.75, 1.0));
  EXPECT_EQ(file.bench, "parallel_scaling");
  EXPECT_EQ(file.mode, "fast");
  EXPECT_EQ(file.seed, 42u);
  ASSERT_EQ(file.entries.size(), 2u);
  EXPECT_EQ(file.entries[0].name, "forest_fit");
  EXPECT_EQ(file.entries[0].threads, 1);
  EXPECT_DOUBLE_EQ(file.entries[0].wall_seconds, 1.5);
  EXPECT_DOUBLE_EQ(file.entries[0].Metric("deterministic", -1.0), 1.0);
  EXPECT_DOUBLE_EQ(file.entries[0].Metric("missing", -1.0), -1.0);
  EXPECT_EQ(file.entries[1].name, "cv_mae");
  EXPECT_EQ(file.entries[1].threads, 4);
  EXPECT_DOUBLE_EQ(file.entries[1].Metric("speedup_vs_serial", 0.0), 2.5);
}

TEST(BenchCompareParseTest, RejectsMalformedInput) {
  BenchFile file;
  std::string error;
  EXPECT_FALSE(ParseBenchJson("", &file, &error));
  EXPECT_FALSE(ParseBenchJson("{\"bench\": \"x\"}", &file, &error));
  EXPECT_FALSE(ParseBenchJson("{\"results\": [{\"threads\": 1}]}", &file,
                              &error));
  EXPECT_FALSE(ParseBenchJson("{\"results\": [{\"name\": \"x\"", &file,
                              &error));
}

TEST(BenchCompareTest, IdenticalRunsAreClean) {
  const BenchFile baseline = Parse(SampleJson(1.0, 0.5, 1.0));
  const BenchFile candidate = Parse(SampleJson(1.0, 0.5, 1.0));
  const auto findings =
      CompareBenchFiles(baseline, candidate, CompareOptions{});
  EXPECT_TRUE(findings.empty());
  EXPECT_FALSE(HasBlockingFindings(findings));
}

TEST(BenchCompareTest, ToleranceAbsorbsSmallDrift) {
  const BenchFile baseline = Parse(SampleJson(1.0, 0.5, 1.0));
  const BenchFile candidate = Parse(SampleJson(1.2, 0.6, 1.0));
  CompareOptions options;
  options.tolerance = 0.25;
  EXPECT_TRUE(CompareBenchFiles(baseline, candidate, options).empty());
  // The same drift fails a tighter gate.
  options.tolerance = 0.1;
  const auto findings = CompareBenchFiles(baseline, candidate, options);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].kind, CompareFinding::Kind::kRegression);
  EXPECT_TRUE(HasBlockingFindings(findings));
}

TEST(BenchCompareTest, FlagsWallTimeRegression) {
  const BenchFile baseline = Parse(SampleJson(1.0, 0.5, 1.0));
  const BenchFile candidate = Parse(SampleJson(2.0, 0.5, 1.0));
  const auto findings =
      CompareBenchFiles(baseline, candidate, CompareOptions{});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].kind, CompareFinding::Kind::kRegression);
  EXPECT_EQ(findings[0].key, "forest_fit threads=1");
  EXPECT_DOUBLE_EQ(findings[0].baseline_value, 1.0);
  EXPECT_DOUBLE_EQ(findings[0].candidate_value, 2.0);
  EXPECT_NE(FormatCompareFinding(findings[0]).find("regression"),
            std::string::npos);
}

TEST(BenchCompareTest, DeterminismFlagMustNeverDrop) {
  const BenchFile baseline = Parse(SampleJson(1.0, 0.5, 1.0));
  // Candidate is faster, but its determinism flag dropped to 0 — the
  // timing tolerance must not absorb that.
  const BenchFile candidate = Parse(SampleJson(0.5, 0.25, 0.0));
  const auto findings =
      CompareBenchFiles(baseline, candidate, CompareOptions{});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].kind, CompareFinding::Kind::kRegression);
  EXPECT_NE(findings[0].message.find("deterministic"), std::string::npos);
  EXPECT_TRUE(HasBlockingFindings(findings));
}

TEST(BenchCompareTest, ReportsMissingNewAndMetadataChanges) {
  BenchFile baseline = Parse(SampleJson(1.0, 0.5, 1.0));
  BenchFile candidate = Parse(SampleJson(1.0, 0.5, 1.0));
  candidate.bench = "other_bench";
  candidate.mode = "full";
  candidate.entries[0].name = "renamed_fit";
  const auto findings =
      CompareBenchFiles(baseline, candidate, CompareOptions{});
  size_t metadata = 0;
  size_t missing = 0;
  size_t fresh = 0;
  for (const CompareFinding& finding : findings) {
    if (finding.kind == CompareFinding::Kind::kMetadataMismatch) ++metadata;
    if (finding.kind == CompareFinding::Kind::kMissingEntry) ++missing;
    if (finding.kind == CompareFinding::Kind::kNewEntry) ++fresh;
  }
  EXPECT_EQ(metadata, 2u);
  EXPECT_EQ(missing, 1u);
  EXPECT_EQ(fresh, 1u);
  EXPECT_TRUE(HasBlockingFindings(findings));

  // A new entry alone is informational, not blocking.
  std::vector<CompareFinding> only_new;
  for (const CompareFinding& finding : findings) {
    if (finding.kind == CompareFinding::Kind::kNewEntry) {
      only_new.push_back(finding);
    }
  }
  EXPECT_FALSE(HasBlockingFindings(only_new));
}

TEST(BenchCompareTest, ParsesCommittedBaselineArtifact) {
  // The committed perf baselines must stay parseable — CI diffs against
  // them on every run.
  for (const char* name :
       {"/BENCH_parallel_scaling.json", "/BENCH_streaming_serving.json"}) {
    BenchFile file;
    std::string error;
    const std::string path = std::string(BBV_TEST_SOURCE_DIR) + "/.." + name;
    ASSERT_TRUE(LoadBenchFile(path, &file, &error)) << error;
    EXPECT_FALSE(file.bench.empty());
    EXPECT_FALSE(file.entries.empty());
    const auto self = CompareBenchFiles(file, file, CompareOptions{});
    EXPECT_FALSE(HasBlockingFindings(self)) << path;
  }
}

}  // namespace
}  // namespace bbv::tools
