// Compile-time regression test that BBV_DCHECK compiles away under NDEBUG.
// This translation unit forces NDEBUG before including check.h — regardless
// of the build type — so it always exercises the release expansion:
//
//  - the condition must NOT be evaluated (no side effects, no abort),
//  - the condition and streamed operands must still be odr-used, so the
//    variables below would trigger -Wunused-* / -Werror if the macro dropped
//    them entirely,
//  - the whole statement must remain a single expression (dangling-else
//    safe).

#ifndef NDEBUG
#define NDEBUG 1
#endif

#include "common/check.h"

#include <gtest/gtest.h>

namespace bbv::common {
namespace {

int EvaluationCount() {
  static int count = 0;
  return ++count;
}

TEST(DcheckNdebugTest, ConditionIsNeverEvaluated) {
  int evaluations = 0;
  BBV_DCHECK(++evaluations > 0) << "never evaluated";
  BBV_DCHECK(EvaluationCount() < 0);
  BBV_DCHECK_EQ(EvaluationCount(), -1);
  EXPECT_EQ(evaluations, 0) << "BBV_DCHECK must not evaluate its condition "
                               "in NDEBUG builds";
  EXPECT_EQ(EvaluationCount(), 1) << "helper must only run via this call";
}

TEST(DcheckNdebugTest, FailingConditionDoesNotAbort) {
  const bool always_false = false;
  BBV_DCHECK(always_false) << "a disabled DCHECK must not abort";
  BBV_DCHECK_EQ(1, 2);
  BBV_DCHECK_LT(5, 0);
  SUCCEED();
}

TEST(DcheckNdebugTest, OperandsAreOdrUsedSoNoUnusedWarnings) {
  // These locals exist only to feed the disabled DCHECK; the build runs with
  // -Wall -Wextra (and -Werror in CI), so this test failing to compile IS
  // the regression signal.
  const int shape_rows = 3;
  const int shape_cols = 4;
  const double tolerance = 1e-9;
  BBV_DCHECK(shape_rows * shape_cols > 0) << "tolerance " << tolerance;
  SUCCEED();
}

TEST(DcheckNdebugTest, ComposesUnderDanglingIf) {
  bool took_else = false;
  if (true)
    BBV_DCHECK(true);
  else
    took_else = true;  // NOLINT(readability-misleading-indentation)
  EXPECT_FALSE(took_else);
}

}  // namespace
}  // namespace bbv::common
