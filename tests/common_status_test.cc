#include "common/status.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/result.h"

namespace bbv::common {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    const char* name;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument,
       "InvalidArgument"},
      {Status::OutOfRange("b"), StatusCode::kOutOfRange, "OutOfRange"},
      {Status::NotFound("c"), StatusCode::kNotFound, "NotFound"},
      {Status::AlreadyExists("d"), StatusCode::kAlreadyExists,
       "AlreadyExists"},
      {Status::FailedPrecondition("e"), StatusCode::kFailedPrecondition,
       "FailedPrecondition"},
      {Status::NotImplemented("f"), StatusCode::kNotImplemented,
       "NotImplemented"},
      {Status::IoError("g"), StatusCode::kIoError, "IoError"},
      {Status::Internal("h"), StatusCode::kInternal, "Internal"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(std::string(StatusCodeToString(c.code)), c.name);
    EXPECT_NE(c.status.ToString().find(c.name), std::string::npos);
  }
}

TEST(StatusTest, ToStringIncludesMessage) {
  const Status status = Status::NotFound("missing column 'age'");
  EXPECT_EQ(status.ToString(), "NotFound: missing column 'age'");
}

TEST(StatusTest, StreamOperatorPrintsToString) {
  std::ostringstream os;
  os << Status::Internal("boom");
  EXPECT_EQ(os.str(), "Internal: boom");
}

Status FailsWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Caller(int x) {
  BBV_RETURN_NOT_OK(FailsWhenNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagatesErrors) {
  EXPECT_TRUE(Caller(1).ok());
  const Status failed = Caller(-1);
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("nope"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("hello"));
  std::string value = std::move(result).ValueOrDie();
  EXPECT_EQ(value, "hello");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  BBV_ASSIGN_OR_RETURN(int half, Half(x));
  BBV_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnChainsAndPropagates) {
  ASSERT_TRUE(Quarter(8).ok());
  EXPECT_EQ(Quarter(8).value(), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(Quarter(5).ok());
}

TEST(ResultTest, ArrowOperatorReachesMembers) {
  Result<std::string> result(std::string("abc"));
  EXPECT_EQ(result->size(), 3u);
}

}  // namespace
}  // namespace bbv::common
