#include "automl/automl_search.h"

#include <gtest/gtest.h>

#include "automl/cloud_service.h"
#include "datasets/images.h"
#include "datasets/tabular.h"

namespace bbv::automl {
namespace {

TEST(AutoMlTabularSearchTest, ProducesAccurateModel) {
  common::Rng rng(1);
  data::Dataset dataset = datasets::MakeIncome(1500, rng);
  auto [train, test] = data::TrainTestSplit(dataset, 0.7, rng);
  AutoMlOptions options;
  options.cv_folds = 2;
  const auto model = AutoMlTabularSearch(train, options, rng);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_GT((*model)->ScoreAccuracy(test).ValueOrDie(), 0.65);
}

TEST(AutoMlTabularSearchTest, TpotFlavorAlsoWorks) {
  common::Rng rng(2);
  data::Dataset dataset = datasets::MakeIncome(1200, rng);
  auto [train, test] = data::TrainTestSplit(dataset, 0.7, rng);
  AutoMlOptions options;
  options.cv_folds = 2;
  options.flavor = "tpot";
  const auto model = AutoMlTabularSearch(train, options, rng);
  ASSERT_TRUE(model.ok());
  EXPECT_GT((*model)->ScoreAccuracy(test).ValueOrDie(), 0.65);
}

TEST(AutoMlTabularSearchTest, EmptyDatasetFails) {
  common::Rng rng(3);
  EXPECT_FALSE(AutoMlTabularSearch(data::Dataset(), AutoMlOptions{}, rng).ok());
}

TEST(AutoKerasImageSearchTest, ProducesAccurateCnn) {
  common::Rng rng(4);
  data::Dataset dataset = datasets::MakeDigits(700, 12, rng);
  auto [train, test] = data::TrainTestSplit(dataset, 0.7, rng);
  const auto model = AutoKerasImageSearch(train, rng);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_GT((*model)->ScoreAccuracy(test).ValueOrDie(), 0.85);
}

TEST(LargeConvNetTest, TrainsWithoutSearch) {
  common::Rng rng(5);
  data::Dataset dataset = datasets::MakeDigits(500, 12, rng);
  auto [train, test] = data::TrainTestSplit(dataset, 0.7, rng);
  const auto model = MakeLargeConvNet(train, rng);
  ASSERT_TRUE(model.ok());
  EXPECT_GT((*model)->ScoreAccuracy(test).ValueOrDie(), 0.85);
}

TEST(CloudModelServiceTest, HostedModelServesBatchedPredictions) {
  common::Rng rng(6);
  data::Dataset dataset = datasets::MakeIncome(1500, rng);
  auto [train, test] = data::TrainTestSplit(dataset, 0.7, rng);
  CloudModelService::Options options;
  options.max_batch_size = 100;
  options.automl.cv_folds = 2;
  CloudModelService service(options);
  const auto hosted = service.TrainModel(train, rng);
  ASSERT_TRUE(hosted.ok()) << hosted.status().ToString();
  const auto& model = **hosted;
  EXPECT_EQ(model.Name(), "cloud-automl");
  EXPECT_EQ(model.num_classes(), 2);

  const auto proba = model.PredictProba(test.features);
  ASSERT_TRUE(proba.ok());
  EXPECT_EQ(proba->rows(), test.NumRows());
  // 450 test rows at batch size 100 -> 5 API calls.
  EXPECT_EQ(model.api_calls(), (test.NumRows() + 99) / 100);
  EXPECT_EQ(model.rows_served(), test.NumRows());
}

TEST(CloudModelServiceTest, BatchSplittingPreservesPredictions) {
  common::Rng rng(7);
  data::Dataset dataset = datasets::MakeIncome(800, rng);
  auto [train, test] = data::TrainTestSplit(dataset, 0.7, rng);
  CloudModelService::Options small_batches;
  small_batches.max_batch_size = 37;  // awkward size, forces uneven batches
  small_batches.automl.cv_folds = 2;
  CloudModelService service(small_batches);
  common::Rng train_rng(42);
  const auto hosted = service.TrainModel(train, train_rng);
  ASSERT_TRUE(hosted.ok());
  const auto batched = (*hosted)->PredictProba(test.features);
  ASSERT_TRUE(batched.ok());
  EXPECT_EQ(batched->rows(), test.NumRows());
  for (size_t i = 0; i < batched->rows(); ++i) {
    double sum = 0.0;
    for (size_t k = 0; k < batched->cols(); ++k) sum += batched->At(i, k);
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

}  // namespace
}  // namespace bbv::automl
