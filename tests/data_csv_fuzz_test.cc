// Seeded fuzz tests for the CSV layer: randomly generated frames (awkward
// strings, NAs, extreme numbers) must round-trip exactly, and mangled
// inputs must produce errors rather than crashes or silent corruption.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "data/csv.h"
#include "data/dataframe.h"

namespace bbv::data {
namespace {

std::string RandomAwkwardString(common::Rng& rng) {
  static const char kAlphabet[] =
      "abcXYZ ,\"'\t;|\\%$#@!{}[]()<>=+-_0123456789";
  const size_t length = rng.UniformInt(size_t{12});
  std::string value;
  for (size_t i = 0; i < length; ++i) {
    value += kAlphabet[rng.UniformInt(sizeof(kAlphabet) - 1)];
  }
  return value;
}

double RandomAwkwardNumber(common::Rng& rng) {
  switch (rng.UniformInt(size_t{6})) {
    case 0: return 0.0;
    case 1: return -0.0;
    case 2: return 1e-300;
    case 3: return -1e300;
    case 4: return rng.Gaussian() * 1e6;
    default: return rng.Uniform(-1.0, 1.0);
  }
}

DataFrame RandomFrame(common::Rng& rng) {
  const size_t num_rows = 1 + rng.UniformInt(size_t{40});
  const size_t num_numeric = 1 + rng.UniformInt(size_t{3});
  const size_t num_categorical = 1 + rng.UniformInt(size_t{3});
  DataFrame frame;
  for (size_t c = 0; c < num_numeric; ++c) {
    Column column("num" + std::to_string(c), ColumnType::kNumeric);
    for (size_t row = 0; row < num_rows; ++row) {
      column.Append(rng.Bernoulli(0.15)
                        ? CellValue::Na()
                        : CellValue(RandomAwkwardNumber(rng)));
    }
    BBV_CHECK(frame.AddColumn(std::move(column)).ok());
  }
  for (size_t c = 0; c < num_categorical; ++c) {
    Column column("cat" + std::to_string(c), ColumnType::kCategorical);
    for (size_t row = 0; row < num_rows; ++row) {
      if (rng.Bernoulli(0.15)) {
        column.Append(CellValue::Na());
      } else {
        std::string value = RandomAwkwardString(rng);
        // Empty strings are indistinguishable from NA in CSV; avoid them so
        // the round-trip comparison is exact. (push_back rather than
        // assignment from a literal sidesteps a GCC 12 -Wrestrict false
        // positive in the inlined string-replace path.)
        if (value.empty()) value.push_back('x');
        column.Append(CellValue(std::move(value)));
      }
    }
    BBV_CHECK(frame.AddColumn(std::move(column)).ok());
  }
  return frame;
}

std::vector<std::pair<std::string, ColumnType>> SchemaOf(
    const DataFrame& frame) {
  std::vector<std::pair<std::string, ColumnType>> schema;
  for (size_t col = 0; col < frame.NumCols(); ++col) {
    schema.emplace_back(frame.column(col).name(), frame.column(col).type());
  }
  return schema;
}

TEST(CsvFuzzTest, RandomFramesRoundTripExactly) {
  common::Rng rng(2024);
  for (int trial = 0; trial < 60; ++trial) {
    const DataFrame frame = RandomFrame(rng);
    std::stringstream buffer;
    ASSERT_TRUE(WriteCsv(frame, buffer).ok()) << "trial " << trial;
    const auto parsed = ReadCsv(buffer, SchemaOf(frame));
    ASSERT_TRUE(parsed.ok())
        << "trial " << trial << ": " << parsed.status().ToString();
    ASSERT_EQ(parsed->NumRows(), frame.NumRows()) << "trial " << trial;
    ASSERT_EQ(parsed->NumCols(), frame.NumCols()) << "trial " << trial;
    for (size_t col = 0; col < frame.NumCols(); ++col) {
      for (size_t row = 0; row < frame.NumRows(); ++row) {
        const CellValue& original = frame.column(col).cell(row);
        const CellValue& restored = parsed->column(col).cell(row);
        if (original.is_numeric()) {
          ASSERT_TRUE(restored.is_numeric())
              << "trial " << trial << " col " << col << " row " << row;
          // -0.0 round-trips to 0.0 through text; compare by value.
          ASSERT_DOUBLE_EQ(restored.AsDouble(), original.AsDouble())
              << "trial " << trial << " col " << col << " row " << row;
        } else {
          ASSERT_TRUE(original == restored)
              << "trial " << trial << " col " << col << " row " << row
              << " original='" << original.ToString() << "' restored='"
              << restored.ToString() << "'";
        }
      }
    }
  }
}

TEST(CsvFuzzTest, TruncatedInputsFailGracefully) {
  common::Rng rng(2025);
  const DataFrame frame = RandomFrame(rng);
  std::stringstream buffer;
  ASSERT_TRUE(WriteCsv(frame, buffer).ok());
  const std::string full = buffer.str();
  // Cut the payload at arbitrary points; the reader must either parse a
  // prefix of the rows or return an error — never crash.
  for (size_t cut : {full.size() / 3, full.size() / 2, full.size() - 2}) {
    std::stringstream truncated(full.substr(0, cut));
    const auto parsed = ReadCsv(truncated, SchemaOf(frame));
    if (parsed.ok()) {
      EXPECT_LE(parsed->NumRows(), frame.NumRows());
    }
  }
}

TEST(CsvFuzzTest, RandomGarbageNeverCrashes) {
  common::Rng rng(2026);
  for (int trial = 0; trial < 40; ++trial) {
    const size_t length = rng.UniformInt(size_t{200});
    std::string garbage;
    for (size_t i = 0; i < length; ++i) {
      garbage += static_cast<char>(32 + rng.UniformInt(size_t{95}));
    }
    std::stringstream buffer(garbage);
    const auto parsed = ReadCsv(
        buffer, {{"a", ColumnType::kNumeric}, {"b", ColumnType::kCategorical}});
    // Outcome (ok or error) is input-dependent; the property is no crash
    // and, on success, a consistent shape.
    if (parsed.ok()) {
      EXPECT_EQ(parsed->NumCols(), 2u);
    }
  }
}

// Hand-curated seed corpus of malformed payloads. Each entry is a parser
// edge case seen in real-world CSV corruption; the property under test is
// memory safety (run under the ASan/UBSan presets in CI), not any particular
// parse outcome.
TEST(CsvFuzzTest, MalformedSeedCorpusNeverCrashes) {
  const std::vector<std::pair<std::string, std::string>> corpus = {
      {"empty input", ""},
      {"header only", "a,b\n"},
      {"truncated open quote", "a,b\n1,\"unterminated"},
      {"quote ends at eof", "a,b\n1,\""},
      {"quote spans rows unterminated", "a,b\n1,\"x\n2,y\n3,z"},
      {"doubled quote soup", "a,b\n\"\"\"\",\"\"\n\",\"\"\""},
      {"embedded nul in field", std::string("a,b\n1,x\0y\n2,z\n", 14)},
      {"nul in header", std::string("a\0b,c\n1,2\n", 10)},
      {"nul only", std::string("\0\0\0\0", 4)},
      {"bare carriage returns", "a,b\r1,2\r"},
      {"mixed line endings", "a,b\r\n1,2\n3,4\r\n"},
      {"only separators", ",,,,,\n,,,,,\n"},
      {"row wider than schema", "a,b\n1,2,3,4,5,6,7,8\n"},
      {"row narrower than schema", "a,b\n1\n"},
      {"numeric overflow literals", "a,b\n1e99999,-1e99999\n"},
      {"hex and inf soup", "a,b\n0x1p10,inf\nnan,-inf\n"},
      {"very long single field",
       "a,b\n" + std::string(1u << 16u, 'x') + ",1\n"},
      {"65k commas in one row", "a,b\n" + std::string(1u << 16u, ',') + "\n"},
  };
  for (const auto& [label, payload] : corpus) {
    std::stringstream buffer(payload);
    const auto parsed = ReadCsv(
        buffer, {{"a", ColumnType::kNumeric}, {"b", ColumnType::kCategorical}});
    // Outcome may be ok or error; the shape must be consistent on success.
    if (parsed.ok()) {
      EXPECT_EQ(parsed->NumCols(), 2u) << label;
    }
  }
}

// The paper's serving batches are wide percentile matrices, so the reader
// must survive schema widths past the 16-bit boundary where naive column
// indices wrap.
TEST(CsvFuzzTest, MoreThan65536ColumnsRoundTrip) {
  constexpr size_t kNumCols = (1u << 16u) + 3u;
  std::vector<std::pair<std::string, ColumnType>> schema;
  schema.reserve(kNumCols);
  std::string header;
  std::string row;
  for (size_t c = 0; c < kNumCols; ++c) {
    // Built via += (not `"c" + std::to_string(c)`) to sidestep a GCC 12
    // -Wrestrict false positive in the inlined string-concat path.
    std::string name = "c";
    name += std::to_string(c);
    schema.emplace_back(name, ColumnType::kNumeric);
    if (c != 0) {
      header.push_back(',');
      row.push_back(',');
    }
    header += name;
    row += std::to_string(c % 97);
  }
  std::stringstream buffer(header + "\n" + row + "\n");
  const auto parsed = ReadCsv(buffer, schema);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->NumCols(), kNumCols);
  ASSERT_EQ(parsed->NumRows(), 1u);
  EXPECT_DOUBLE_EQ(parsed->column(kNumCols - 1).cell(0).AsDouble(),
                   static_cast<double>((kNumCols - 1) % 97));

  // A row with 2^16+ fields against a narrow schema must error out, not
  // crash or silently truncate.
  std::stringstream wide_row("a,b\n" + row + "\n");
  const auto mismatched = ReadCsv(
      wide_row, {{"a", ColumnType::kNumeric}, {"b", ColumnType::kNumeric}});
  EXPECT_FALSE(mismatched.ok());
}

}  // namespace
}  // namespace bbv::data
