#include "tools/cpp_lexer.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace bbv::tools {
namespace {

std::vector<std::string> TokenTexts(const LexedFile& lexed) {
  std::vector<std::string> texts;
  texts.reserve(lexed.tokens.size());
  for (const Token& token : lexed.tokens) texts.push_back(token.text);
  return texts;
}

const Token& Find(const LexedFile& lexed, const std::string& text) {
  for (const Token& token : lexed.tokens) {
    if (token.text == text) return token;
  }
  ADD_FAILURE() << "token '" << text << "' not found";
  static const Token missing{};
  return missing;
}

TEST(CppLexerTest, TokenizesIdentifiersNumbersAndPunct) {
  const LexedFile lexed = Lex("int x = 42 + y;\n");
  EXPECT_EQ(TokenTexts(lexed),
            (std::vector<std::string>{"int", "x", "=", "42", "+", "y", ";"}));
  EXPECT_EQ(Find(lexed, "42").kind, TokenKind::kNumber);
  EXPECT_EQ(Find(lexed, "x").kind, TokenKind::kIdentifier);
  EXPECT_EQ(Find(lexed, "=").kind, TokenKind::kPunct);
}

TEST(CppLexerTest, LineCommentsAreDropped) {
  const LexedFile lexed = Lex("int a; // std::mt19937 in prose\nint b;\n");
  for (const Token& token : lexed.tokens) {
    EXPECT_NE(token.text, "mt19937");
  }
  EXPECT_EQ(Find(lexed, "b").line, 2u);
}

TEST(CppLexerTest, BlockCommentsAreDroppedAndLinesCounted) {
  const LexedFile lexed = Lex("int a; /* line one\nline two\n*/ int b;\n");
  for (const Token& token : lexed.tokens) {
    EXPECT_NE(token.text, "one");
  }
  EXPECT_EQ(Find(lexed, "b").line, 3u);
}

TEST(CppLexerTest, StringLiteralsAreSingleTokens) {
  const LexedFile lexed =
      Lex("auto s = \"std::cout << assert(rand())\";\n");
  const Token& str = Find(lexed, "\"std::cout << assert(rand())\"");
  EXPECT_EQ(str.kind, TokenKind::kString);
  // Nothing inside the literal leaks out as an identifier.
  for (const Token& token : lexed.tokens) {
    EXPECT_NE(token.text, "rand");
    EXPECT_NE(token.text, "assert");
  }
}

TEST(CppLexerTest, EscapedQuotesStayInsideTheLiteral) {
  const LexedFile lexed = Lex(R"(auto s = "a\"b"; int c;)");
  EXPECT_EQ(Find(lexed, "c").kind, TokenKind::kIdentifier);
  EXPECT_EQ(Find(lexed, R"("a\"b")").kind, TokenKind::kString);
}

TEST(CppLexerTest, RawStringsSwallowEverythingToTheDelimiter) {
  const std::string source =
      "auto s = R\"x(line \" one\nrand() )\" two)x\"; int after;\n";
  const LexedFile lexed = Lex(source);
  for (const Token& token : lexed.tokens) {
    EXPECT_NE(token.text, "rand");
  }
  const Token& after = Find(lexed, "after");
  EXPECT_EQ(after.line, 2u);  // the raw string spans one newline
}

TEST(CppLexerTest, CharLiteralsAreSingleTokens) {
  const LexedFile lexed = Lex("char q = '\"'; char e = '\\''; int z;\n");
  EXPECT_EQ(Find(lexed, "z").kind, TokenKind::kIdentifier);
  size_t chars = 0;
  for (const Token& token : lexed.tokens) {
    if (token.kind == TokenKind::kChar) ++chars;
  }
  EXPECT_EQ(chars, 2u);
}

TEST(CppLexerTest, DigitSeparatorsDoNotSplitNumbers) {
  const LexedFile lexed = Lex("auto n = 1'000'000; auto f = 1.5e-3;\n");
  EXPECT_EQ(Find(lexed, "1'000'000").kind, TokenKind::kNumber);
  EXPECT_EQ(Find(lexed, "1.5e-3").kind, TokenKind::kNumber);
}

TEST(CppLexerTest, LineSplicesJoinLogicalLines) {
  // The spliced identifier is one token, attributed to the line it starts
  // on; the following token is on the correct physical line.
  const LexedFile lexed = Lex("int ab\\\ncd = 1;\nint ef;\n");
  const Token& spliced = Find(lexed, "abcd");
  EXPECT_EQ(spliced.kind, TokenKind::kIdentifier);
  EXPECT_EQ(spliced.line, 1u);
  EXPECT_EQ(Find(lexed, "ef").line, 3u);
}

TEST(CppLexerTest, SplicedDirectiveStaysOneDirective) {
  const LexedFile lexed = Lex("#define FOO \\\n  42\nint x;\n");
  const Token& directive = Find(lexed, "#define");
  EXPECT_EQ(directive.kind, TokenKind::kDirective);
  EXPECT_TRUE(directive.in_directive);
  EXPECT_TRUE(Find(lexed, "42").in_directive);
  EXPECT_FALSE(Find(lexed, "x").in_directive);
}

TEST(CppLexerTest, IncludeOperandsBecomeHeaderNames) {
  const LexedFile lexed =
      Lex("#include <vector>\n#include \"common/status.h\"\n");
  EXPECT_EQ(Find(lexed, "<vector>").kind, TokenKind::kHeaderName);
  EXPECT_EQ(Find(lexed, "\"common/status.h\"").kind, TokenKind::kHeaderName);
}

TEST(CppLexerTest, AngleBracketsOutsideIncludesAreOperators) {
  const LexedFile lexed = Lex("bool b = a < c && d > e;\n");
  EXPECT_EQ(Find(lexed, "<").kind, TokenKind::kPunct);
  EXPECT_EQ(Find(lexed, ">").kind, TokenKind::kPunct);
}

TEST(CppLexerTest, NestedParensAndBracesCarryDepths) {
  const LexedFile lexed = Lex("void f() { if (g(h(1))) { int x; } }\n");
  EXPECT_EQ(Find(lexed, "x").brace_depth, 2);
  EXPECT_EQ(Find(lexed, "1").paren_depth, 3);
  // A closer carries the depth of its matching opener.
  int final_brace_depth = -1;
  for (const Token& token : lexed.tokens) {
    if (token.text == "}") final_brace_depth = token.brace_depth;
  }
  EXPECT_EQ(final_brace_depth, 0);
}

TEST(CppLexerTest, MultiCharOperatorsAreSingleTokens) {
  const LexedFile lexed = Lex("a <<= b; c->d; e::f; g != h; i <=> j;\n");
  EXPECT_EQ(Find(lexed, "<<=").kind, TokenKind::kPunct);
  EXPECT_EQ(Find(lexed, "->").kind, TokenKind::kPunct);
  EXPECT_EQ(Find(lexed, "::").kind, TokenKind::kPunct);
  EXPECT_EQ(Find(lexed, "!=").kind, TokenKind::kPunct);
  EXPECT_EQ(Find(lexed, "<=>").kind, TokenKind::kPunct);
}

TEST(CppLexerTest, SuppressionsAreHarvestedFromComments) {
  const LexedFile lexed = Lex(
      "int a;  // bbv-lint: allow(rng) fixture needs raw entropy\n"
      "int b;\n"
      "/* bbv-lint: allow(float-eq) exact sentinel compare */\n"
      "int c;\n");
  EXPECT_TRUE(IsSuppressed(lexed, 1, "rng"));
  EXPECT_TRUE(IsSuppressed(lexed, 2, "rng"));  // line-below coverage
  EXPECT_FALSE(IsSuppressed(lexed, 1, "float-eq"));
  EXPECT_TRUE(IsSuppressed(lexed, 4, "float-eq"));
  EXPECT_FALSE(IsSuppressed(lexed, 2, "thread"));
}

TEST(CppLexerTest, SuppressionInStringLiteralDoesNotCount) {
  const LexedFile lexed =
      Lex("auto s = \"bbv-lint: allow(rng) not a comment\";\nint x;\n");
  EXPECT_FALSE(IsSuppressed(lexed, 1, "rng"));
  EXPECT_FALSE(IsSuppressed(lexed, 2, "rng"));
}

TEST(CppLexerTest, UnterminatedLiteralStopsAtLineEnd) {
  // Malformed input must not swallow the rest of the file.
  const LexedFile lexed = Lex("auto s = \"never closed\nint x;\n");
  EXPECT_EQ(Find(lexed, "x").kind, TokenKind::kIdentifier);
}

}  // namespace
}  // namespace bbv::tools
