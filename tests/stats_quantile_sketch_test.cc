// Property tests for the deterministic mergeable quantile sketch: every
// percentile must agree with the exact stats::SortedView path within the
// sketch's value-error bound, and the sketch state must be a pure function
// of the input multiset — identical bytes for any batch split, merge order
// and thread count.

#include "stats/quantile_sketch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/serialize.h"
#include "core/prediction_statistics.h"
#include "stats/descriptive.h"

namespace bbv::stats {
namespace {

std::string SketchBytes(const QuantileSketch& sketch) {
  std::ostringstream out;
  BBV_CHECK(sketch.Save(out).ok());
  return out.str();
}

std::string BankBytes(const QuantileSketchBank& bank) {
  std::ostringstream out;
  BBV_CHECK(bank.Save(out).ok());
  return out.str();
}

/// Sample shapes covering the distributions the serving layer actually
/// sees: smooth, tail-concentrated (confident classifiers pile mass at
/// 0/1), heavily tied, and degenerate.
std::vector<std::vector<double>> SampleShapes(common::Rng& rng, size_t n) {
  std::vector<std::vector<double>> shapes(4);
  for (size_t i = 0; i < n; ++i) {
    shapes[0].push_back(rng.Uniform());
    // Push uniform draws toward the {0, 1} edges (confident model outputs).
    const double u = rng.Uniform();
    shapes[1].push_back(u < 0.5 ? u * u : 1.0 - (1.0 - u) * (1.0 - u));
    // Few distinct values with heavy ties.
    shapes[2].push_back(static_cast<double>(rng.UniformInt(0, 4)) / 4.0);
    shapes[3].push_back(0.75);
  }
  return shapes;
}

TEST(QuantileSketchTest, QuantilesMatchSortedViewWithinBound) {
  common::Rng rng(17);
  const std::vector<double> grid = core::DefaultPercentilePoints();
  for (const std::vector<double>& values : SampleShapes(rng, 5000)) {
    QuantileSketch sketch;
    for (double v : values) sketch.Add(v);
    const SortedView exact(values);
    const std::vector<double> streamed = sketch.Quantiles(grid);
    for (size_t i = 0; i < grid.size(); ++i) {
      EXPECT_NEAR(streamed[i], exact.Percentile(grid[i]),
                  sketch.ValueErrorBound() + 1e-12)
          << "q=" << grid[i];
    }
  }
}

TEST(QuantileSketchTest, ErrorBoundTightensWithResolution) {
  common::Rng rng(18);
  std::vector<double> values;
  for (int i = 0; i < 2000; ++i) values.push_back(rng.Uniform());
  const SortedView exact(values);
  double previous_bound = 1.0;
  for (int bits : {4, 8, 12, 16}) {
    QuantileSketch::Options options;
    options.resolution_bits = bits;
    QuantileSketch sketch(options);
    for (double v : values) sketch.Add(v);
    EXPECT_LT(sketch.ValueErrorBound(), previous_bound);
    previous_bound = sketch.ValueErrorBound();
    for (double q : {1.0, 25.0, 50.0, 95.0, 99.0}) {
      EXPECT_NEAR(sketch.Quantile(q), exact.Percentile(q),
                  sketch.ValueErrorBound() + 1e-12);
    }
  }
}

TEST(QuantileSketchTest, StateIsIndependentOfBatchSplit) {
  common::Rng rng(19);
  std::vector<double> values;
  for (int i = 0; i < 3000; ++i) values.push_back(rng.Uniform());

  QuantileSketch one_shot;
  for (double v : values) one_shot.Add(v);
  const std::string reference = SketchBytes(one_shot);

  for (size_t batch : {1ul, 7ul, 100ul, 1024ul, 3000ul}) {
    QuantileSketch merged;
    for (size_t begin = 0; begin < values.size(); begin += batch) {
      QuantileSketch chunk;
      const size_t end = std::min(begin + batch, values.size());
      for (size_t i = begin; i < end; ++i) chunk.Add(values[i]);
      ASSERT_TRUE(merged.Merge(chunk).ok());
    }
    EXPECT_EQ(SketchBytes(merged), reference) << "batch=" << batch;
  }
}

TEST(QuantileSketchTest, MergeIsCommutativeAndAssociative) {
  common::Rng rng(20);
  std::vector<QuantileSketch> parts(3);
  for (QuantileSketch& part : parts) {
    for (int i = 0; i < 500; ++i) part.Add(rng.Uniform());
  }
  // (A + B) + C
  QuantileSketch left = parts[0];
  ASSERT_TRUE(left.Merge(parts[1]).ok());
  ASSERT_TRUE(left.Merge(parts[2]).ok());
  // A + (B + C)
  QuantileSketch inner = parts[1];
  ASSERT_TRUE(inner.Merge(parts[2]).ok());
  QuantileSketch right = parts[0];
  ASSERT_TRUE(right.Merge(inner).ok());
  // C + B + A
  QuantileSketch reversed = parts[2];
  ASSERT_TRUE(reversed.Merge(parts[1]).ok());
  ASSERT_TRUE(reversed.Merge(parts[0]).ok());

  const std::string reference = SketchBytes(left);
  EXPECT_EQ(SketchBytes(right), reference);
  EXPECT_EQ(SketchBytes(reversed), reference);
}

TEST(QuantileSketchTest, WeightedAddEqualsRepeatedAdd) {
  QuantileSketch weighted;
  QuantileSketch repeated;
  weighted.Add(0.25, 10);
  weighted.Add(0.5, 3);
  weighted.Add(0.5, 0);  // zero weight is a no-op
  for (int i = 0; i < 10; ++i) repeated.Add(0.25);
  for (int i = 0; i < 3; ++i) repeated.Add(0.5);
  EXPECT_EQ(weighted.count(), 13u);
  EXPECT_EQ(SketchBytes(weighted), SketchBytes(repeated));
}

TEST(QuantileSketchTest, ValuesOutsideDomainAreClamped) {
  QuantileSketch sketch;
  sketch.Add(-3.5);
  sketch.Add(42.0);
  EXPECT_EQ(sketch.count(), 2u);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(sketch.Quantile(100.0), 1.0);
}

TEST(QuantileSketchTest, MergeRejectsMismatchedGrids) {
  QuantileSketch::Options coarse;
  coarse.resolution_bits = 6;
  QuantileSketch a(coarse);
  QuantileSketch b;
  EXPECT_FALSE(a.Merge(b).ok());
  QuantileSketch::Options shifted;
  shifted.lo = -1.0;
  QuantileSketch c(shifted);
  QuantileSketch d;
  EXPECT_FALSE(c.Merge(d).ok());
}

TEST(QuantileSketchTest, SaveLoadRoundTripsCanonically) {
  common::Rng rng(21);
  QuantileSketch sketch;
  for (int i = 0; i < 1000; ++i) sketch.Add(rng.Uniform());
  const std::string bytes = SketchBytes(sketch);
  std::istringstream in(bytes);
  const auto loaded = QuantileSketch::Load(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->count(), sketch.count());
  EXPECT_EQ(SketchBytes(*loaded), bytes);
}

TEST(QuantileSketchTest, LoadRejectsCorruptStreams) {
  QuantileSketch sketch;
  sketch.Add(0.5);
  std::string bytes = SketchBytes(sketch);
  // Truncated stream.
  std::istringstream truncated(bytes.substr(0, bytes.size() / 2));
  EXPECT_FALSE(QuantileSketch::Load(truncated).ok());
  // Flipped byte inside the payload (after the magic) must be caught by the
  // total-vs-cells consistency check or a range check.
  bytes[bytes.size() - 3] = static_cast<char>(0x7f);
  std::istringstream corrupted(bytes);
  EXPECT_FALSE(QuantileSketch::Load(corrupted).ok());
}

TEST(QuantileSketchTest, CdfMatchesEmpiricalFractions) {
  QuantileSketch sketch;
  for (int i = 0; i < 10; ++i) sketch.Add(0.1);
  for (int i = 0; i < 30; ++i) sketch.Add(0.6);
  EXPECT_NEAR(sketch.Cdf(0.05), 0.0, 1e-12);
  EXPECT_NEAR(sketch.Cdf(0.1), 0.25, 1e-12);
  EXPECT_NEAR(sketch.Cdf(0.3), 0.25, 1e-12);
  EXPECT_NEAR(sketch.Cdf(0.6), 1.0, 1e-12);
  EXPECT_NEAR(sketch.Cdf(1.0), 1.0, 1e-12);
}

TEST(QuantileSketchTest, KsStatisticSeparatesShiftedDistributions) {
  common::Rng rng(22);
  QuantileSketch low;
  QuantileSketch high;
  QuantileSketch low_copy;
  for (int i = 0; i < 2000; ++i) {
    const double u = rng.Uniform();
    low.Add(u * 0.4);
    low_copy.Add(u * 0.4);
    high.Add(0.6 + u * 0.4);
  }
  const auto identical = KsStatistic(low, low_copy);
  ASSERT_TRUE(identical.ok());
  EXPECT_NEAR(*identical, 0.0, 1e-12);
  const auto disjoint = KsStatistic(low, high);
  ASSERT_TRUE(disjoint.ok());
  EXPECT_NEAR(*disjoint, 1.0, 1e-12);
  QuantileSketch::Options coarse;
  coarse.resolution_bits = 4;
  QuantileSketch other_grid(coarse);
  other_grid.Add(0.5);
  EXPECT_FALSE(KsStatistic(low, other_grid).ok());
  QuantileSketch empty;
  EXPECT_FALSE(KsStatistic(low, empty).ok());
}

/// Sets BBV_THREADS for one scope and restores the previous value after.
class ScopedThreadsEnv {
 public:
  explicit ScopedThreadsEnv(const char* value) {
    const char* previous = std::getenv("BBV_THREADS");
    had_previous_ = previous != nullptr;
    if (had_previous_) previous_ = previous;
    ::setenv("BBV_THREADS", value, 1);
  }
  ~ScopedThreadsEnv() {
    if (had_previous_) {
      ::setenv("BBV_THREADS", previous_.c_str(), 1);
    } else {
      ::unsetenv("BBV_THREADS");
    }
  }
  ScopedThreadsEnv(const ScopedThreadsEnv&) = delete;
  ScopedThreadsEnv& operator=(const ScopedThreadsEnv&) = delete;

 private:
  bool had_previous_ = false;
  std::string previous_;
};

linalg::Matrix RandomProbabilities(size_t rows, size_t classes,
                                   common::Rng& rng) {
  linalg::Matrix matrix(rows, classes);
  for (size_t i = 0; i < rows; ++i) {
    double sum = 0.0;
    for (size_t k = 0; k < classes; ++k) {
      matrix.At(i, k) = rng.Uniform() + 1e-6;
      sum += matrix.At(i, k);
    }
    for (size_t k = 0; k < classes; ++k) matrix.At(i, k) /= sum;
  }
  return matrix;
}

TEST(QuantileSketchBankTest, FeaturesMatchExactPredictionStatistics) {
  common::Rng rng(23);
  const linalg::Matrix probabilities = RandomProbabilities(4000, 3, rng);
  const std::vector<double> grid = core::DefaultPercentilePoints();
  QuantileSketchBank bank;
  ASSERT_TRUE(bank.Observe(probabilities).ok());
  const std::vector<double> streamed = bank.PercentileFeatures(grid);
  const std::vector<double> exact =
      core::PredictionStatistics(probabilities, grid);
  ASSERT_EQ(streamed.size(), exact.size());
  for (size_t i = 0; i < exact.size(); ++i) {
    EXPECT_NEAR(streamed[i], exact[i], bank.ValueErrorBound() + 1e-12) << i;
  }
}

TEST(QuantileSketchBankTest, RejectsEmptyAndMismatchedBatches) {
  common::Rng rng(24);
  QuantileSketchBank bank;
  EXPECT_FALSE(bank.Observe(linalg::Matrix()).ok());
  ASSERT_TRUE(bank.Observe(RandomProbabilities(10, 3, rng)).ok());
  EXPECT_FALSE(bank.Observe(RandomProbabilities(10, 2, rng)).ok());
  EXPECT_EQ(bank.rows_observed(), 10u);
  EXPECT_EQ(bank.num_columns(), 3u);
}

TEST(QuantileSketchBankTest, BytesIdenticalAcrossSplitsAndThreadCounts) {
  common::Rng rng(25);
  const linalg::Matrix probabilities = RandomProbabilities(2048, 4, rng);

  auto bytes_for = [&](const char* threads, size_t batch) {
    ScopedThreadsEnv env(threads);
    QuantileSketchBank bank;
    for (size_t begin = 0; begin < probabilities.rows(); begin += batch) {
      const size_t end = std::min(begin + batch, probabilities.rows());
      std::vector<size_t> row_ids;
      for (size_t i = begin; i < end; ++i) row_ids.push_back(i);
      BBV_CHECK(bank.Observe(probabilities.SelectRows(row_ids)).ok());
    }
    return BankBytes(bank);
  };

  const std::string reference = bytes_for("1", 2048);
  EXPECT_EQ(bytes_for("1", 100), reference);
  EXPECT_EQ(bytes_for("8", 1), reference);
  EXPECT_EQ(bytes_for("8", 333), reference);
  EXPECT_EQ(bytes_for("8", 2048), reference);
}

TEST(QuantileSketchBankTest, MergeAccumulatesAndValidates) {
  common::Rng rng(26);
  const linalg::Matrix first = RandomProbabilities(300, 2, rng);
  const linalg::Matrix second = RandomProbabilities(200, 2, rng);

  QuantileSketchBank all;
  ASSERT_TRUE(all.Observe(first).ok());
  ASSERT_TRUE(all.Observe(second).ok());

  QuantileSketchBank left;
  ASSERT_TRUE(left.Observe(first).ok());
  QuantileSketchBank right;
  ASSERT_TRUE(right.Observe(second).ok());
  ASSERT_TRUE(left.Merge(right).ok());
  EXPECT_EQ(left.rows_observed(), 500u);
  EXPECT_EQ(BankBytes(left), BankBytes(all));

  // Merging into or from an empty bank is the identity.
  QuantileSketchBank empty;
  ASSERT_TRUE(left.Merge(empty).ok());
  EXPECT_EQ(BankBytes(left), BankBytes(all));
  QuantileSketchBank target;
  ASSERT_TRUE(target.Merge(all).ok());
  EXPECT_EQ(BankBytes(target), BankBytes(all));

  QuantileSketchBank narrow;
  ASSERT_TRUE(narrow.Observe(RandomProbabilities(10, 3, rng)).ok());
  EXPECT_FALSE(left.Merge(narrow).ok());
}

TEST(QuantileSketchBankTest, SaveLoadRoundTrips) {
  common::Rng rng(27);
  QuantileSketchBank bank;
  ASSERT_TRUE(bank.Observe(RandomProbabilities(500, 3, rng)).ok());
  const std::string bytes = BankBytes(bank);
  std::istringstream in(bytes);
  const auto loaded = QuantileSketchBank::Load(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->rows_observed(), 500u);
  EXPECT_EQ(loaded->num_columns(), 3u);
  EXPECT_EQ(BankBytes(*loaded), bytes);
}

TEST(QuantileSketchBankTest, LoadRejectsInconsistentRowCounts) {
  // Hand-built stream with a structurally valid header whose claimed row
  // count disagrees with the member sketches. Such bytes used to pass Load
  // and then crash the process inside PercentileFeatures' consistency
  // BBV_CHECK; untrusted state must be rejected at the Load boundary.
  const QuantileSketch::Options options;
  const auto bank_header = [&](common::BinaryWriter& writer, uint64_t rows,
                               uint64_t sketches) {
    writer.WriteMagic("BBVQB", 1);
    writer.WriteInt32(options.resolution_bits);
    writer.WriteDouble(options.lo);
    writer.WriteDouble(options.hi);
    writer.WriteUint64(rows);
    writer.WriteUint64(sketches);
  };

  // Claims 5 observed rows over one sketch that has counted none.
  std::ostringstream empty_sketch;
  {
    common::BinaryWriter writer(empty_sketch);
    bank_header(writer, 5, 1);
    ASSERT_TRUE(QuantileSketch(options).Save(empty_sketch).ok());
  }
  std::istringstream in_empty(empty_sketch.str());
  EXPECT_FALSE(QuantileSketchBank::Load(in_empty).ok());

  // Claims observed rows with no columns at all.
  std::ostringstream no_columns;
  {
    common::BinaryWriter writer(no_columns);
    bank_header(writer, 5, 0);
  }
  std::istringstream in_no_columns(no_columns.str());
  EXPECT_FALSE(QuantileSketchBank::Load(in_no_columns).ok());

  // Sanity: the same construction with a consistent count loads fine.
  std::ostringstream consistent;
  {
    common::BinaryWriter writer(consistent);
    bank_header(writer, 3, 1);
    QuantileSketch sketch(options);
    for (double v : {0.1, 0.5, 0.9}) sketch.Add(v);
    ASSERT_TRUE(sketch.Save(consistent).ok());
  }
  std::istringstream in_consistent(consistent.str());
  EXPECT_TRUE(QuantileSketchBank::Load(in_consistent).ok());
}

TEST(QuantileSketchBankTest, MemoryIsIndependentOfRowCount) {
  common::Rng rng(28);
  QuantileSketchBank small;
  ASSERT_TRUE(small.Observe(RandomProbabilities(100, 2, rng)).ok());
  QuantileSketchBank large;
  ASSERT_TRUE(large.Observe(RandomProbabilities(20000, 2, rng)).ok());
  EXPECT_EQ(small.MemoryBytes(), large.MemoryBytes());
}

}  // namespace
}  // namespace bbv::stats
