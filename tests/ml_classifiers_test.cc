// Parameterized behaviour tests run against every classifier in the zoo,
// plus model-specific checks. Each classifier must (a) fit a linearly
// separable task, (b) emit valid probability rows, (c) be deterministic
// given the same seed, and (d) reject malformed inputs.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>
#include <string>

#include "common/rng.h"
#include "ml/classifier.h"
#include "ml/conv_net.h"
#include "ml/decision_tree.h"
#include "ml/feed_forward_network.h"
#include "ml/gradient_boosted_trees.h"
#include "ml/metrics.h"
#include "ml/sgd_logistic_regression.h"

namespace bbv::ml {
namespace {

struct ClassifierCase {
  std::string name;
  std::function<std::unique_ptr<Classifier>()> factory;
};

std::vector<ClassifierCase> TabularClassifiers() {
  return {
      {"lr", [] { return std::make_unique<SgdLogisticRegression>(); }},
      {"dnn",
       [] {
         FeedForwardNetwork::Options options;
         options.hidden_sizes = {16, 16};
         options.epochs = 30;
         return std::make_unique<FeedForwardNetwork>(options);
       }},
      {"xgb",
       [] {
         GradientBoostedTrees::Options options;
         options.num_rounds = 25;
         return std::make_unique<GradientBoostedTrees>(options);
       }},
      {"cart",
       [] {
         TreeOptions options;
         options.max_depth = 6;
         return std::make_unique<DecisionTreeClassifier>(options);
       }},
  };
}

/// Two gaussian blobs, linearly separable with margin.
void MakeBlobs(size_t n, linalg::Matrix& features, std::vector<int>& labels,
               common::Rng& rng) {
  features = linalg::Matrix(n, 3);
  labels.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % 2);
    const double center = label == 0 ? -2.0 : 2.0;
    features.At(i, 0) = rng.Gaussian(center, 0.7);
    features.At(i, 1) = rng.Gaussian(-center, 0.7);
    features.At(i, 2) = rng.Gaussian(0.0, 1.0);  // noise dimension
    labels[i] = label;
  }
}

class ClassifierSuite : public ::testing::TestWithParam<ClassifierCase> {};

TEST_P(ClassifierSuite, LearnsSeparableBlobs) {
  common::Rng rng(11);
  linalg::Matrix features;
  std::vector<int> labels;
  MakeBlobs(400, features, labels, rng);
  auto model = GetParam().factory();
  ASSERT_TRUE(model->Fit(features, labels, 2, rng).ok());
  linalg::Matrix test_features;
  std::vector<int> test_labels;
  MakeBlobs(200, test_features, test_labels, rng);
  EXPECT_GT(Accuracy(PredictLabels(*model, test_features), test_labels),
            0.95)
      << GetParam().name;
}

TEST_P(ClassifierSuite, ProbabilitiesAreValidDistributions) {
  common::Rng rng(13);
  linalg::Matrix features;
  std::vector<int> labels;
  MakeBlobs(200, features, labels, rng);
  auto model = GetParam().factory();
  ASSERT_TRUE(model->Fit(features, labels, 2, rng).ok());
  const linalg::Matrix proba = model->PredictProba(features);
  ASSERT_EQ(proba.rows(), features.rows());
  ASSERT_EQ(proba.cols(), 2u);
  for (size_t i = 0; i < proba.rows(); ++i) {
    double sum = 0.0;
    for (size_t j = 0; j < proba.cols(); ++j) {
      EXPECT_GE(proba.At(i, j), 0.0);
      EXPECT_LE(proba.At(i, j), 1.0 + 1e-12);
      sum += proba.At(i, j);
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST_P(ClassifierSuite, DeterministicGivenSeed) {
  linalg::Matrix features;
  std::vector<int> labels;
  {
    common::Rng data_rng(17);
    MakeBlobs(150, features, labels, data_rng);
  }
  auto run = [&]() {
    common::Rng rng(99);
    auto model = GetParam().factory();
    BBV_CHECK(model->Fit(features, labels, 2, rng).ok());
    return model->PredictProba(features);
  };
  const linalg::Matrix a = run();
  const linalg::Matrix b = run();
  for (size_t i = 0; i < a.data().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.data()[i], b.data()[i]) << GetParam().name;
  }
}

TEST_P(ClassifierSuite, RejectsMalformedInputs) {
  common::Rng rng(19);
  auto model = GetParam().factory();
  linalg::Matrix features(3, 2);
  // Mismatched labels.
  EXPECT_FALSE(model->Fit(features, {0, 1}, 2, rng).ok());
  // Empty data.
  EXPECT_FALSE(model->Fit(linalg::Matrix(), {}, 2, rng).ok());
  // Single class.
  EXPECT_FALSE(model->Fit(features, {0, 0, 0}, 1, rng).ok());
}

TEST_P(ClassifierSuite, SupportsThreeClasses) {
  common::Rng rng(23);
  const size_t n = 300;
  linalg::Matrix features(n, 2);
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % 3);
    const double angle = 2.0 * M_PI * label / 3.0;
    features.At(i, 0) = rng.Gaussian(3.0 * std::cos(angle), 0.5);
    features.At(i, 1) = rng.Gaussian(3.0 * std::sin(angle), 0.5);
    labels[i] = label;
  }
  auto model = GetParam().factory();
  ASSERT_TRUE(model->Fit(features, labels, 3, rng).ok());
  EXPECT_EQ(model->num_classes(), 3);
  EXPECT_GT(Accuracy(PredictLabels(*model, features), labels), 0.9)
      << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    AllClassifiers, ClassifierSuite, ::testing::ValuesIn(TabularClassifiers()),
    [](const ::testing::TestParamInfo<ClassifierCase>& param_info) {
      return param_info.param.name;
    });

// ---------------------------------------------------------------------------
// Model-specific behaviour
// ---------------------------------------------------------------------------

TEST(SgdLogisticRegressionTest, L1DrivesNoiseWeightsTowardZero) {
  common::Rng rng(29);
  linalg::Matrix features;
  std::vector<int> labels;
  MakeBlobs(600, features, labels, rng);
  SgdLogisticRegression::Options options;
  options.penalty = Penalty::kL1;
  options.regularization = 0.05;
  SgdLogisticRegression model(options);
  ASSERT_TRUE(model.Fit(features, labels, 2, rng).ok());
  // The informative weight should dominate the pure-noise weight.
  const double informative = std::abs(model.weights().At(0, 1));
  const double noise = std::abs(model.weights().At(2, 1));
  EXPECT_GT(informative, 4.0 * noise);
}

TEST(RegressionTreeTest, FitsPiecewiseConstantFunction) {
  common::Rng rng(31);
  linalg::Matrix features(200, 1);
  std::vector<double> targets(200);
  for (size_t i = 0; i < 200; ++i) {
    features.At(i, 0) = rng.Uniform(0.0, 1.0);
    targets[i] = features.At(i, 0) < 0.5 ? 1.0 : 5.0;
  }
  RegressionTree tree;
  ASSERT_TRUE(tree.Fit(features, targets, rng).ok());
  const double left = tree.PredictRow(std::vector<double>{0.25}.data());
  const double right = tree.PredictRow(std::vector<double>{0.75}.data());
  EXPECT_NEAR(left, 1.0, 0.05);
  EXPECT_NEAR(right, 5.0, 0.05);
}

TEST(RegressionTreeTest, RespectsMaxDepth) {
  common::Rng rng(37);
  linalg::Matrix features(128, 1);
  std::vector<double> targets(128);
  for (size_t i = 0; i < 128; ++i) {
    features.At(i, 0) = static_cast<double>(i);
    targets[i] = static_cast<double>(i);
  }
  TreeOptions options;
  options.max_depth = 2;
  options.min_samples_leaf = 1;
  RegressionTree tree(options);
  ASSERT_TRUE(tree.Fit(features, targets, rng).ok());
  // Depth 2 allows at most 7 nodes (3 internal + 4 leaves).
  EXPECT_LE(tree.NumNodes(), 7u);
}

TEST(RegressionTreeTest, ConstantTargetsYieldSingleLeaf) {
  common::Rng rng(41);
  linalg::Matrix features(50, 2);
  for (size_t i = 0; i < 50; ++i) features.At(i, 0) = static_cast<double>(i);
  std::vector<double> targets(50, 3.0);
  RegressionTree tree;
  ASSERT_TRUE(tree.Fit(features, targets, rng).ok());
  EXPECT_EQ(tree.NumNodes(), 1u);
  EXPECT_DOUBLE_EQ(tree.PredictRow(features.RowData(10)), 3.0);
}

TEST(GradientBoostedTreesTest, MoreRoundsFitTrainBetter) {
  common::Rng rng(43);
  linalg::Matrix features;
  std::vector<int> labels;
  MakeBlobs(300, features, labels, rng);
  auto train_accuracy = [&](int rounds) {
    common::Rng fit_rng(7);
    GradientBoostedTrees::Options options;
    options.num_rounds = rounds;
    GradientBoostedTrees model(options);
    BBV_CHECK(model.Fit(features, labels, 2, fit_rng).ok());
    return Accuracy(PredictLabels(model, features), labels);
  };
  EXPECT_GE(train_accuracy(30), train_accuracy(1));
}

TEST(ConvNetTest, LearnsBrightVsDarkImages) {
  common::Rng rng(47);
  const size_t side = 8;
  const size_t n = 160;
  linalg::Matrix features(n, side * side);
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % 2);
    for (size_t p = 0; p < side * side; ++p) {
      features.At(i, p) =
          std::clamp((label == 0 ? 0.2 : 0.8) + rng.Gaussian(0.0, 0.1), 0.0,
                     1.0);
    }
    labels[i] = label;
  }
  ConvNet::Options options;
  options.conv1_channels = 4;
  options.conv2_channels = 4;
  options.dense_units = 16;
  options.epochs = 12;
  options.dropout = 0.0;
  ConvNet model(options);
  ASSERT_TRUE(model.Fit(features, labels, 2, rng).ok());
  EXPECT_GT(Accuracy(PredictLabels(model, features), labels), 0.95);
}

TEST(ConvNetTest, RejectsNonSquareInput) {
  common::Rng rng(53);
  ConvNet model;
  linalg::Matrix features(4, 10);  // 10 is not a perfect square
  EXPECT_FALSE(model.Fit(features, {0, 1, 0, 1}, 2, rng).ok());
}

TEST(ConvNetTest, RejectsTooSmallImages) {
  common::Rng rng(59);
  ConvNet model;
  linalg::Matrix features(4, 16);  // 4x4 images are below the minimum
  EXPECT_FALSE(model.Fit(features, {0, 1, 0, 1}, 2, rng).ok());
}

}  // namespace
}  // namespace bbv::ml
