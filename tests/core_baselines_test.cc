#include "core/baselines.h"

#include <gtest/gtest.h>

#include <memory>

#include "datasets/tabular.h"
#include "errors/missing_values.h"
#include "errors/numeric_errors.h"
#include "errors/text_errors.h"
#include "ml/black_box.h"
#include "ml/sgd_logistic_regression.h"

namespace bbv::core {
namespace {

struct Fixture {
  data::Dataset train;
  data::Dataset test;
  data::Dataset serving;
  std::unique_ptr<ml::BlackBoxModel> model;
};

Fixture MakeFixture(common::Rng& rng) {
  data::Dataset dataset = datasets::MakeIncome(4000, rng);
  auto [source, serving] = data::TrainTestSplit(dataset, 0.7, rng);
  auto [train, test] = data::TrainTestSplit(source, 0.7, rng);
  Fixture fixture;
  fixture.train = std::move(train);
  fixture.test = std::move(test);
  fixture.serving = std::move(serving);
  fixture.model = std::make_unique<ml::BlackBoxModel>(
      std::make_unique<ml::SgdLogisticRegression>());
  BBV_CHECK(fixture.model->Train(fixture.train, rng).ok());
  return fixture;
}

// ---------------------------------------------------------------------------
// REL
// ---------------------------------------------------------------------------

TEST(RelShiftDetectorTest, NoShiftOnIdenticalDistribution) {
  common::Rng rng(1);
  Fixture fixture = MakeFixture(rng);
  RelShiftDetector rel;
  ASSERT_TRUE(rel.Fit(fixture.train.features).ok());
  const auto detected = rel.DetectsShift(fixture.serving.features);
  ASSERT_TRUE(detected.ok());
  EXPECT_FALSE(*detected);
}

TEST(RelShiftDetectorTest, DetectsScaledNumericColumn) {
  common::Rng rng(2);
  Fixture fixture = MakeFixture(rng);
  RelShiftDetector rel;
  ASSERT_TRUE(rel.Fit(fixture.train.features).ok());
  const errors::Scaling scaling({"age"}, errors::FractionRange{0.9, 1.0});
  const auto corrupted = scaling.Corrupt(fixture.serving.features, rng);
  ASSERT_TRUE(corrupted.ok());
  EXPECT_TRUE(rel.DetectsShift(*corrupted).ValueOrDie());
}

TEST(RelShiftDetectorTest, DetectsUnseenCategories) {
  common::Rng rng(3);
  Fixture fixture = MakeFixture(rng);
  RelShiftDetector rel;
  ASSERT_TRUE(rel.Fit(fixture.train.features).ok());
  const errors::CategoricalTypos typos({"education"},
                                       errors::FractionRange{0.8, 1.0});
  const auto corrupted = typos.Corrupt(fixture.serving.features, rng);
  ASSERT_TRUE(corrupted.ok());
  EXPECT_TRUE(rel.DetectsShift(*corrupted).ValueOrDie());
}

TEST(RelShiftDetectorTest, DetectsFullyMissingColumn) {
  common::Rng rng(4);
  Fixture fixture = MakeFixture(rng);
  RelShiftDetector rel;
  ASSERT_TRUE(rel.Fit(fixture.train.features).ok());
  const errors::MissingValues missing({"education"},
                                      errors::FractionRange{1.0, 1.0});
  const auto corrupted = missing.Corrupt(fixture.serving.features, rng);
  ASSERT_TRUE(corrupted.ok());
  EXPECT_TRUE(rel.DetectsShift(*corrupted).ValueOrDie());
}

TEST(RelShiftDetectorTest, FitRequiresTestableColumns) {
  RelShiftDetector rel;
  data::DataFrame text_only;
  BBV_CHECK(text_only.AddColumn(data::Column::Text("t", {"a", "b"})).ok());
  EXPECT_FALSE(rel.Fit(text_only).ok());
}

TEST(RelShiftDetectorTest, DetectBeforeFitFails) {
  RelShiftDetector rel;
  EXPECT_FALSE(rel.DetectsShift(data::DataFrame()).ok());
}

TEST(RelShiftDetectorTest, MissingServingColumnIsError) {
  common::Rng rng(5);
  Fixture fixture = MakeFixture(rng);
  RelShiftDetector rel;
  ASSERT_TRUE(rel.Fit(fixture.train.features).ok());
  EXPECT_FALSE(rel.DetectsShift(data::DataFrame()).ok());
}

// ---------------------------------------------------------------------------
// BBSE / BBSE-h
// ---------------------------------------------------------------------------

TEST(BbseDetectorTest, NoShiftOnCleanServingData) {
  common::Rng rng(6);
  Fixture fixture = MakeFixture(rng);
  BbseDetector bbse(fixture.model.get());
  ASSERT_TRUE(bbse.Fit(fixture.test.features).ok());
  EXPECT_FALSE(bbse.DetectsShift(fixture.serving.features).ValueOrDie());
}

TEST(BbseDetectorTest, DetectsOutputDistributionShift) {
  common::Rng rng(7);
  Fixture fixture = MakeFixture(rng);
  BbseDetector bbse(fixture.model.get());
  ASSERT_TRUE(bbse.Fit(fixture.test.features).ok());
  // Severe outliers everywhere shift the model's output distribution.
  const errors::NumericOutliers severe({}, errors::FractionRange{1.0, 1.0},
                                       8.0, 10.0);
  const auto corrupted = severe.Corrupt(fixture.serving.features, rng);
  ASSERT_TRUE(corrupted.ok());
  EXPECT_TRUE(bbse.DetectsShift(*corrupted).ValueOrDie());
}

TEST(BbseDetectorTest, FromProbaMatchesFrameVariant) {
  common::Rng rng(8);
  Fixture fixture = MakeFixture(rng);
  BbseDetector bbse(fixture.model.get());
  ASSERT_TRUE(bbse.Fit(fixture.test.features).ok());
  const auto proba =
      fixture.model->PredictProba(fixture.serving.features).ValueOrDie();
  EXPECT_EQ(bbse.DetectsShift(fixture.serving.features).ValueOrDie(),
            bbse.DetectsShiftFromProba(proba).ValueOrDie());
}

TEST(BbsehDetectorTest, NoShiftOnCleanServingData) {
  common::Rng rng(9);
  Fixture fixture = MakeFixture(rng);
  BbsehDetector bbseh(fixture.model.get());
  ASSERT_TRUE(bbseh.Fit(fixture.test.features).ok());
  EXPECT_FALSE(bbseh.DetectsShift(fixture.serving.features).ValueOrDie());
}

TEST(BbsehDetectorTest, DetectsPredictedClassImbalance) {
  common::Rng rng(10);
  Fixture fixture = MakeFixture(rng);
  BbsehDetector bbseh(fixture.model.get());
  ASSERT_TRUE(bbseh.Fit(fixture.test.features).ok());
  // Blanking the most important columns pushes predictions toward one
  // class, changing the predicted-class counts.
  const errors::MissingValues missing({"education", "occupation"},
                                      errors::FractionRange{1.0, 1.0});
  const auto corrupted = missing.Corrupt(fixture.serving.features, rng);
  ASSERT_TRUE(corrupted.ok());
  EXPECT_TRUE(bbseh.DetectsShift(*corrupted).ValueOrDie());
}

TEST(BbsehDetectorTest, DetectBeforeFitFails) {
  common::Rng rng(11);
  Fixture fixture = MakeFixture(rng);
  BbsehDetector bbseh(fixture.model.get());
  EXPECT_FALSE(bbseh.DetectsShift(fixture.serving.features).ok());
}

}  // namespace
}  // namespace bbv::core
