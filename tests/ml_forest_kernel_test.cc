#include "ml/forest_kernel.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "linalg/matrix.h"
#include "ml/gradient_boosted_trees.h"
#include "ml/random_forest.h"

namespace bbv::ml {
namespace {

/// Scoped BBV_THREADS override (mirrors the helper in the parallel tests):
/// the determinism contract demands bit-identical results at every setting.
class ScopedThreadsEnv {
 public:
  explicit ScopedThreadsEnv(const char* value) {
    const char* previous = std::getenv("BBV_THREADS");
    had_previous_ = previous != nullptr;
    if (had_previous_) previous_ = previous;
    if (value == nullptr) {
      ::unsetenv("BBV_THREADS");
    } else {
      ::setenv("BBV_THREADS", value, 1);
    }
  }
  ~ScopedThreadsEnv() {
    if (had_previous_) {
      ::setenv("BBV_THREADS", previous_.c_str(), 1);
    } else {
      ::unsetenv("BBV_THREADS");
    }
  }
  ScopedThreadsEnv(const ScopedThreadsEnv&) = delete;
  ScopedThreadsEnv& operator=(const ScopedThreadsEnv&) = delete;

 private:
  bool had_previous_ = false;
  std::string previous_;
};

linalg::Matrix MakeFeatures(size_t n, size_t cols, common::Rng& rng) {
  linalg::Matrix features(n, cols);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      features.At(i, j) = rng.Uniform(0.0, 1.0);
    }
  }
  return features;
}

std::vector<double> MakeTargets(const linalg::Matrix& features,
                                common::Rng& rng) {
  std::vector<double> targets(features.rows());
  for (size_t i = 0; i < features.rows(); ++i) {
    targets[i] = 2.0 * features.At(i, 0) - features.At(i, 1) +
                 rng.Gaussian(0.0, 0.1);
  }
  return targets;
}

/// Legacy reference: the scalar node walk the kernel replaced, recomputed
/// from the fitted trees in the exact floating-point order the old
/// RandomForestRegressor::Predict used (sum in tree order, divide once).
std::vector<double> LegacyForestPredict(const RandomForestRegressor& forest,
                                        const linalg::Matrix& features) {
  std::vector<double> result(features.rows());
  for (size_t i = 0; i < features.rows(); ++i) {
    double sum = 0.0;
    for (const RegressionTree& tree : forest.trees()) {
      // Deliberate legacy per-row reference.
      // bbv-lint: allow(batch-api) the kernel is validated against this
      sum += tree.PredictRow(features.RowData(i));
    }
    result[i] = sum / static_cast<double>(forest.trees().size());
  }
  return result;
}

/// Legacy reference for the boosted classifier: per-row strided score
/// accumulation followed by the shared softmax.
linalg::Matrix LegacyGbtPredictProba(const GradientBoostedTrees& model,
                                     const linalg::Matrix& features) {
  const auto m = static_cast<size_t>(model.num_classes());
  linalg::Matrix scores(features.rows(), m);
  for (size_t i = 0; i < features.rows(); ++i) {
    const double* row = features.RowData(i);
    double* out = scores.RowData(i);
    for (size_t k = 0; k < m; ++k) out[k] = model.base_scores()[k];
    for (size_t t = 0; t < model.trees().size(); ++t) {
      // Deliberate legacy per-row reference.
      // bbv-lint: allow(batch-api) the kernel is validated against this
      out[t % m] += model.learning_rate() * model.trees()[t].PredictRow(row);
    }
  }
  return linalg::Softmax(scores);
}

TEST(ForestKernelTest, CompileFlattensEveryNode) {
  common::Rng rng(17);
  const linalg::Matrix features = MakeFeatures(200, 4, rng);
  const std::vector<double> targets = MakeTargets(features, rng);
  RandomForestRegressor::Options options;
  options.num_trees = 5;
  RandomForestRegressor forest(options);
  ASSERT_TRUE(forest.Fit(features, targets, rng).ok());
  const ForestKernel& kernel = forest.kernel();
  ASSERT_FALSE(kernel.empty());
  EXPECT_EQ(kernel.num_trees(), 5u);
  size_t nodes_total = 0;
  for (const RegressionTree& tree : forest.trees()) {
    nodes_total += tree.NumNodes();
  }
  EXPECT_EQ(kernel.num_internal_nodes() + kernel.num_leaves(), nodes_total);
  // A binary tree has one more leaf than internal node, per tree.
  EXPECT_EQ(kernel.num_leaves(), kernel.num_internal_nodes() + 5);
  EXPECT_GE(kernel.max_feature(), 0);
  EXPECT_LT(kernel.max_feature(), 4);
}

TEST(ForestKernelTest, ForestPredictionsBitIdenticalToLegacyNodeWalk) {
  // The kernel is a pure re-layout: for every (depth, tree-count) config the
  // tiled traversal must reproduce the scalar node walk bit for bit, exact
  // floating-point equality, no tolerance.
  common::Rng rng(29);
  const linalg::Matrix train = MakeFeatures(300, 5, rng);
  const std::vector<double> targets = MakeTargets(train, rng);
  const linalg::Matrix serving = MakeFeatures(257, 5, rng);  // ragged tile
  for (int depth : {3, 10}) {
    for (int num_trees : {1, 7, 40}) {
      RandomForestRegressor::Options options;
      options.num_trees = num_trees;
      options.tree.max_depth = depth;
      RandomForestRegressor forest(options);
      common::Rng fit_rng(1000 + static_cast<uint64_t>(depth) * 100 +
                          static_cast<uint64_t>(num_trees));
      ASSERT_TRUE(forest.Fit(train, targets, fit_rng).ok());
      const std::vector<double> kernel_predictions = forest.Predict(serving);
      const std::vector<double> legacy_predictions =
          LegacyForestPredict(forest, serving);
      ASSERT_EQ(kernel_predictions.size(), legacy_predictions.size());
      for (size_t i = 0; i < kernel_predictions.size(); ++i) {
        EXPECT_EQ(kernel_predictions[i], legacy_predictions[i])
            << "depth " << depth << ", trees " << num_trees << ", row " << i;
      }
      // The scalar convenience path rides the same kernel.
      for (size_t i = 0; i < serving.rows(); ++i) {
        // The rule exists to keep per-row calls out of serving code;
        // bbv-lint: allow(batch-api) validates scalar path against kernel
        EXPECT_EQ(forest.PredictRow(serving.RowData(i)),
                  legacy_predictions[i]);
      }
    }
  }
}

TEST(ForestKernelTest, BoostedProbabilitiesBitIdenticalToLegacyNodeWalk) {
  common::Rng rng(31);
  const linalg::Matrix train = MakeFeatures(240, 4, rng);
  std::vector<int> labels(train.rows());
  for (size_t i = 0; i < train.rows(); ++i) {
    labels[i] = train.At(i, 0) + train.At(i, 1) > 1.0 ? 1 : (i % 3 == 0 ? 2 : 0);
  }
  const linalg::Matrix serving = MakeFeatures(130, 4, rng);
  GradientBoostedTrees::Options options;
  options.num_rounds = 8;
  GradientBoostedTrees model(options);
  ASSERT_TRUE(model.Fit(train, labels, 3, rng).ok());
  const linalg::Matrix kernel_probabilities = model.PredictProba(serving);
  const linalg::Matrix legacy_probabilities =
      LegacyGbtPredictProba(model, serving);
  ASSERT_EQ(kernel_probabilities.rows(), legacy_probabilities.rows());
  ASSERT_EQ(kernel_probabilities.cols(), legacy_probabilities.cols());
  for (size_t i = 0; i < kernel_probabilities.rows(); ++i) {
    for (size_t k = 0; k < kernel_probabilities.cols(); ++k) {
      EXPECT_EQ(kernel_probabilities.At(i, k), legacy_probabilities.At(i, k))
          << "row " << i << ", class " << k;
    }
  }
}

TEST(ForestKernelTest, PredictionsAndSavedBytesThreadCountInvariant) {
  common::Rng data_rng(37);
  const linalg::Matrix train = MakeFeatures(400, 4, data_rng);
  const std::vector<double> targets = MakeTargets(train, data_rng);
  const linalg::Matrix serving = MakeFeatures(1000, 4, data_rng);
  auto run = [&](const char* threads) {
    ScopedThreadsEnv env(threads);
    common::Rng rng(99);
    RandomForestRegressor forest;
    BBV_CHECK(forest.Fit(train, targets, rng).ok());
    std::ostringstream out;
    BBV_CHECK(forest.Save(out).ok());
    return std::make_pair(forest.Predict(serving), out.str());
  };
  const auto [single_predictions, single_bytes] = run("1");
  const auto [parallel_predictions, parallel_bytes] = run("8");
  EXPECT_EQ(single_predictions, parallel_predictions);
  EXPECT_EQ(single_bytes, parallel_bytes);
}

TEST(ForestKernelTest, KernelRecompiledAfterLoad) {
  common::Rng rng(41);
  const linalg::Matrix train = MakeFeatures(200, 3, rng);
  const std::vector<double> targets = MakeTargets(train, rng);
  const linalg::Matrix serving = MakeFeatures(150, 3, rng);
  RandomForestRegressor::Options options;
  options.num_trees = 12;
  RandomForestRegressor forest(options);
  ASSERT_TRUE(forest.Fit(train, targets, rng).ok());
  std::stringstream stream;
  ASSERT_TRUE(forest.Save(stream).ok());
  auto loaded = RandomForestRegressor::Load(stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(loaded->kernel().empty());
  EXPECT_EQ(loaded->kernel().num_trees(), 12u);
  EXPECT_EQ(loaded->Predict(serving), forest.Predict(serving));
}

TEST(ForestKernelTest, SingleLeafEnsembleHandled) {
  // Constant targets collapse every tree to one leaf; the sign-encoded root
  // must carry the leaf payload without any internal node to traverse.
  common::Rng rng(43);
  const linalg::Matrix features = MakeFeatures(50, 2, rng);
  const std::vector<double> targets(features.rows(), 0.75);
  RandomForestRegressor::Options options;
  options.num_trees = 3;
  RandomForestRegressor forest(options);
  ASSERT_TRUE(forest.Fit(features, targets, rng).ok());
  EXPECT_EQ(forest.kernel().num_internal_nodes(), 0u);
  EXPECT_EQ(forest.kernel().num_leaves(), 3u);
  EXPECT_EQ(forest.kernel().max_feature(), -1);
  for (double prediction : forest.Predict(features)) {
    EXPECT_EQ(prediction, 0.75);
  }
}

TEST(ForestKernelDeathTest, RejectsMisSizedOutputAndColumns) {
  common::Rng rng(47);
  const linalg::Matrix features = MakeFeatures(60, 3, rng);
  const std::vector<double> targets = MakeTargets(features, rng);
  RandomForestRegressor forest;
  ASSERT_TRUE(forest.Fit(features, targets, rng).ok());
  std::vector<double> short_output(features.rows() - 1);
  EXPECT_DEATH(forest.PredictInto(features, short_output), "Check failed");
  const linalg::Matrix narrow = MakeFeatures(10, 1, rng);
  std::vector<double> output(narrow.rows());
  EXPECT_DEATH(forest.PredictInto(narrow, output), "columns");
}

}  // namespace
}  // namespace bbv::ml
