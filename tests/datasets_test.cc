// Tests for the synthetic dataset generators: schema fidelity, learnability
// in the realistic (non-trivial, non-perfect) band, class balance, and
// determinism.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "common/rng.h"
#include "datasets/images.h"
#include "datasets/registry.h"
#include "datasets/tabular.h"
#include "datasets/text.h"
#include "ml/black_box.h"
#include "ml/gradient_boosted_trees.h"
#include "ml/sgd_logistic_regression.h"

namespace bbv::datasets {
namespace {

TEST(RegistryTest, AllNamesResolve) {
  common::Rng rng(1);
  DatasetOptions options;
  options.num_rows = 200;
  options.image_side = 12;
  for (const std::string& name : DatasetNames()) {
    const auto dataset = MakeByName(name, options, rng);
    ASSERT_TRUE(dataset.ok()) << name;
    EXPECT_EQ(dataset->NumRows(), 200u) << name;
    EXPECT_EQ(dataset->num_classes, 2) << name;
    EXPECT_EQ(dataset->class_names.size(), 2u) << name;
  }
}

TEST(RegistryTest, UnknownNameIsError) {
  common::Rng rng(2);
  EXPECT_FALSE(MakeByName("mnist", DatasetOptions{}, rng).ok());
}

TEST(TabularDatasetsTest, IncomeSchemaMatchesAdultShape) {
  common::Rng rng(3);
  const data::Dataset dataset = MakeIncome(100, rng);
  const auto& frame = dataset.features;
  EXPECT_EQ(frame.ColumnNamesOfType(data::ColumnType::kNumeric).size(), 4u);
  EXPECT_EQ(frame.ColumnNamesOfType(data::ColumnType::kCategorical).size(),
            5u);
  EXPECT_TRUE(frame.HasColumn("age"));
  EXPECT_TRUE(frame.HasColumn("education"));
  EXPECT_TRUE(frame.HasColumn("occupation"));
}

TEST(TabularDatasetsTest, HeartSchema) {
  common::Rng rng(4);
  const data::Dataset dataset = MakeHeart(100, rng);
  EXPECT_EQ(
      dataset.features.ColumnNamesOfType(data::ColumnType::kNumeric).size(),
      5u);
  EXPECT_EQ(dataset.features.ColumnNamesOfType(data::ColumnType::kCategorical)
                .size(),
            5u);
}

TEST(TabularDatasetsTest, BankSchema) {
  common::Rng rng(5);
  const data::Dataset dataset = MakeBank(100, rng);
  EXPECT_EQ(
      dataset.features.ColumnNamesOfType(data::ColumnType::kNumeric).size(),
      5u);
  EXPECT_EQ(dataset.features.ColumnNamesOfType(data::ColumnType::kCategorical)
                .size(),
            5u);
}

TEST(TabularDatasetsTest, ValuesAreInPlausibleRanges) {
  common::Rng rng(6);
  const data::Dataset dataset = MakeHeart(500, rng);
  for (double age : dataset.features.ColumnByName("age").NumericValues()) {
    EXPECT_GE(age, 30.0);
    EXPECT_LE(age, 80.0);
  }
  for (double ap :
       dataset.features.ColumnByName("ap_hi").NumericValues()) {
    EXPECT_GE(ap, 80.0);
    EXPECT_LE(ap, 220.0);
  }
}

TEST(TabularDatasetsTest, RoughClassBalance) {
  common::Rng rng(7);
  for (const auto& dataset :
       {MakeIncome(4000, rng), MakeHeart(4000, rng), MakeBank(4000, rng)}) {
    const std::vector<size_t> counts = data::ClassCounts(dataset);
    const double ratio = static_cast<double>(counts[0]) /
                         static_cast<double>(counts[0] + counts[1]);
    EXPECT_GT(ratio, 0.25);
    EXPECT_LT(ratio, 0.75);
  }
}

TEST(TabularDatasetsTest, LearnableButNotTrivial) {
  // A model must beat chance clearly but stay below perfection — the regime
  // the paper's experiments need.
  common::Rng rng(8);
  data::Dataset dataset = MakeIncome(4000, rng);
  dataset = BalanceClasses(dataset, rng);
  auto [train, test] = TrainTestSplit(dataset, 0.7, rng);
  ml::BlackBoxModel model(std::make_unique<ml::SgdLogisticRegression>());
  ASSERT_TRUE(model.Train(train, rng).ok());
  const double accuracy = model.ScoreAccuracy(test).ValueOrDie();
  EXPECT_GT(accuracy, 0.65);
  EXPECT_LT(accuracy, 0.98);
}

TEST(TabularDatasetsTest, DeterministicGivenSeed) {
  common::Rng rng_a(9);
  common::Rng rng_b(9);
  const data::Dataset a = MakeBank(50, rng_a);
  const data::Dataset b = MakeBank(50, rng_b);
  EXPECT_EQ(a.labels, b.labels);
  for (size_t col = 0; col < a.features.NumCols(); ++col) {
    for (size_t row = 0; row < 50; ++row) {
      EXPECT_TRUE(a.features.column(col).cell(row) ==
                  b.features.column(col).cell(row));
    }
  }
}

TEST(TweetsTest, SingleTextColumn) {
  common::Rng rng(10);
  const data::Dataset dataset = MakeTweets(100, rng);
  EXPECT_EQ(dataset.features.NumCols(), 1u);
  EXPECT_EQ(dataset.features.column(0).type(), data::ColumnType::kText);
  // Every tweet is non-empty.
  for (size_t row = 0; row < 100; ++row) {
    EXPECT_FALSE(dataset.features.column(0).cell(row).AsString().empty());
  }
}

TEST(TweetsTest, TrollVocabularyCorrelatesWithLabel) {
  common::Rng rng(11);
  const data::Dataset dataset = MakeTweets(2000, rng);
  size_t troll_tweets_with_insults = 0;
  size_t troll_tweets = 0;
  for (size_t row = 0; row < dataset.NumRows(); ++row) {
    if (dataset.labels[row] != 1) continue;
    ++troll_tweets;
    const std::string& text =
        dataset.features.column(0).cell(row).AsString();
    if (text.find("idiot") != std::string::npos ||
        text.find("stupid") != std::string::npos ||
        text.find("hate") != std::string::npos ||
        text.find("dumb") != std::string::npos ||
        text.find("loser") != std::string::npos ||
        text.find("trash") != std::string::npos ||
        text.find("moron") != std::string::npos) {
      ++troll_tweets_with_insults;
    }
  }
  EXPECT_GT(static_cast<double>(troll_tweets_with_insults) /
                static_cast<double>(troll_tweets),
            0.4);
}

TEST(ImageDatasetsTest, ImagesHaveRequestedSize) {
  common::Rng rng(12);
  const data::Dataset dataset = MakeDigits(50, 16, rng);
  for (size_t row = 0; row < 50; ++row) {
    EXPECT_EQ(dataset.features.column(0).cell(row).AsImage().size(), 256u);
  }
}

TEST(ImageDatasetsTest, PixelsInUnitInterval) {
  common::Rng rng(13);
  const data::Dataset dataset = MakeFashion(50, 16, rng);
  for (size_t row = 0; row < 50; ++row) {
    for (double pixel : dataset.features.column(0).cell(row).AsImage()) {
      EXPECT_GE(pixel, 0.0);
      EXPECT_LE(pixel, 1.0);
    }
  }
}

TEST(ImageDatasetsTest, ClassesAreVisuallyDistinct) {
  // Mean mass in the upper half of the image separates digits 3 (no mass
  // difference) from boots (tall shaft) vs sneakers.
  common::Rng rng(14);
  const size_t side = 16;
  const data::Dataset dataset = MakeFashion(400, side, rng);
  double upper_mass_sneaker = 0.0;
  double upper_mass_boot = 0.0;
  size_t sneakers = 0;
  size_t boots = 0;
  for (size_t row = 0; row < dataset.NumRows(); ++row) {
    const auto& image = dataset.features.column(0).cell(row).AsImage();
    double upper = 0.0;
    for (size_t p = 0; p < side * side / 2; ++p) upper += image[p];
    if (dataset.labels[row] == 0) {
      upper_mass_sneaker += upper;
      ++sneakers;
    } else {
      upper_mass_boot += upper;
      ++boots;
    }
  }
  EXPECT_GT(upper_mass_boot / static_cast<double>(boots),
            1.5 * upper_mass_sneaker / static_cast<double>(sneakers));
}

TEST(ImageDatasetsTest, RenderersRejectUnknownClasses) {
  common::Rng rng(15);
  EXPECT_DEATH(RenderDigit(7, 16, rng), "digits 3 and 5");
  EXPECT_DEATH(RenderFashionItem(2, 16, rng), "sneaker");
}

}  // namespace
}  // namespace bbv::datasets
