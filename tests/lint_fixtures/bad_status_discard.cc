// status-discard fixture: Status/Result-returning calls used as bare
// expression statements. The declarations below seed the analysis context
// when the file is linted standalone.
#include <string>

struct Status {
  bool ok() const { return true; }
};

template <typename T>
struct Result {
  bool ok() const { return true; }
};

Status DoWork();
Status Flaky(int attempt);
Result<int> Compute();

struct Worker {
  Status Run();
};

int Use(Worker& worker) {
  DoWork();  // finding: bare call statement drops the Status
  worker.Run();  // finding: member-call chains are matched too
  Compute();  // finding: Result<T> is covered like Status
  const Status checked = DoWork();  // clean: captured
  if (!checked.ok()) return 1;
  if (!Flaky(0).ok()) return 2;  // clean: consumed in a condition
  return Flaky(1).ok() ? 0 : 3;  // clean: return expression
}

void Strings() {
  // Mentions in prose and literals never fire: DoWork(); in a comment.
  const std::string doc = "calling DoWork(); here is just text";
  (void)doc;
}

void Suppressed() {
  // bbv-lint: allow(status-discard) fixture shows a justified deliberate drop
  DoWork();
}
