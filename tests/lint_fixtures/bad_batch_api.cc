// batch-api fixture: PredictRow inside loop bodies. Batch inference must
// ride ml::ForestKernel; the scalar walk is reserved for validation code.

struct Model {
  double PredictRow(const double* row) const;
  double PredictRowMean(const double* row) const;
};

double SumLoop(const Model& model, const double* rows, int n) {
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    total += model.PredictRow(rows + i);  // finding: call in a for body
  }
  int j = 0;
  while (j < n) {
    total += model.PredictRowMean(rows + j);  // finding: while bodies too
    ++j;
  }
  // finding: single-statement loop bodies are tracked without braces
  for (int k = 0; k < n; ++k) total += model.PredictRow(rows + k);
  return total;
}

double SingleCall(const Model& model, const double* row) {
  // Clean: one call outside any loop is the sanctioned scalar path.
  return model.PredictRow(row);
}

const char* Docs() {
  // Clean: PredictRow in a string literal (or this comment) must not fire
  // even inside a loop.
  for (int i = 0; i < 1; ++i) {
    return "batch through PredictInto, not PredictRow(row) in a loop";
  }
  return "";
}

double Suppressed(const Model& model, const double* rows, int n) {
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    // bbv-lint: allow(batch-api) fixture shows a justified scalar loop
    total += model.PredictRow(rows + i);
  }
  return total;
}

struct Predictor {
  double EstimateScoreFromStatistics(const double* row) const;
  void EstimateScoresFromStatistics(const double* rows, double* out,
                                    int n) const;
};

double ScalarEstimateLoop(const Predictor& predictor, const double* rows,
                          int n) {
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    // finding: scalar estimate surface inside a loop
    total += predictor.EstimateScoreFromStatistics(rows + i);
  }
  return total;
}

void BatchEstimate(const Predictor& predictor, const double* rows,
                   double* out, int n) {
  // Clean even inside a loop: the plural span surface IS the batch path.
  for (int rep = 0; rep < 2; ++rep) {
    predictor.EstimateScoresFromStatistics(rows, out, n);
  }
}

double ScalarEstimateOnce(const Predictor& predictor, const double* row) {
  // Clean: one estimate outside any loop is the sanctioned scalar path.
  return predictor.EstimateScoreFromStatistics(row);
}
