// Fixture for tools_lint_test: every banned randomness source in one file.
// This file is never compiled; the lint engine reads it as text.

#include <ctime>
#include <random>

int UnseededEverything() {
  std::mt19937 generator;               // banned: unseeded engine type
  std::random_device entropy;           // banned: nondeterministic entropy
  std::srand(static_cast<unsigned>(time(nullptr)));  // banned: wall-clock seed
  return std::rand() + static_cast<int>(generator()) +
         static_cast<int>(entropy());
}
