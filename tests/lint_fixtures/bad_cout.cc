// Fixture for tools_lint_test: std::cout in library code, linted as if it
// lived under src/. Never compiled.

#include <iostream>

void Chatty(int value) {
  std::cout << "value = " << value << "\n";  // flagged
  std::cerr << "errors may go to stderr via CheckFailureStream\n";  // clean
}
