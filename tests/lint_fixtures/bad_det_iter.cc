// det-iter fixture: hash-ordered containers in result-affecting code. Linted
// as src/fixture/bad_det_iter.cc (the rule only applies under src/).
#include <string>
#include <unordered_map>
#include <unordered_set>

double Accumulate() {
  std::unordered_map<std::string, double> counts;  // finding: type mention
  double total = 0.0;
  for (const auto& [key, value] : counts) {  // finding: range-for traversal
    total += value;
  }
  std::unordered_set<int> seen;  // finding: type mention
  for (auto it = seen.begin(); it != seen.end(); ++it) {  // finding: .begin()
    total += 1.0;
  }
  // Lookup-only access is not a traversal, so only the declaration above
  // fires for `seen`, not this line.
  if (seen.count(3) > 0) total += 1.0;
  // Mentions in prose and string literals never fire:
  // iterating a std::unordered_map here would be nondeterministic.
  const char* doc = "std::unordered_set<int> order is unspecified";
  (void)doc;
  // bbv-lint: allow(det-iter) fixture shows a justified suppression
  std::unordered_map<int, int> suppressed;
  (void)suppressed;
  return total;
}
