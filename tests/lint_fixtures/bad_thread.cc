// Fixture for tools_lint_test: every banned raw-thread primitive in one
// file. This file is never compiled; the lint engine reads it as text.

#include <future>
#include <thread>

int SpawnsThreadsByHand() {
  int result = 0;
  std::thread worker([&result] { result += 1; });  // banned: raw thread
  std::jthread auto_joined([&result] { result += 1; });  // banned: raw thread
  auto pending = std::async([] { return 1; });     // banned: hidden thread
  worker.join();
  return result + pending.get();
}
