// Fixture for tools_lint_test: floating-point literal equality, linted as if
// it lived in src/stats/. Never compiled.

bool Degenerate(double x, double y) {
  if (x == 0.0) return true;      // flagged: literal on the right
  if (1e-9 != y) return false;    // flagged: literal on the left
  return x != 0.5;                // flagged: literal on the right
}

bool Acceptable(double x, int k) {
  return x <= 0.0 && k == 1;      // clean: ordered compare + integer literal
}
