// Fixture for tools_lint_test: no include guard at all; the include-guard
// rule must report the expected BBV_<PATH>_H_ name.
#pragma once

inline int FixtureValueTwo() { return 2; }
