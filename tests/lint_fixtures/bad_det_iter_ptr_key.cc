// det-iter fixture: pointer-keyed ordered containers. Linted as
// src/fixture/bad_det_iter_ptr_key.cc (the rule only applies under src/).
#include <map>
#include <memory>
#include <set>
#include <string>

struct Node {
  double weight = 0.0;
};

double Accumulate(const std::set<Node*>& nodes) {  // finding: pointer key
  std::map<const Node*, double> weights;  // finding: pointer key
  std::map<std::shared_ptr<Node>, double> shared;  // finding: address order
  double total = 0.0;
  for (const Node* node : nodes) total += node->weight;
  (void)weights;
  (void)shared;
  // Pointers on the mapped-value side are harmless: iteration order is over
  // the string key.
  std::map<std::string, Node*> by_name;
  (void)by_name;
  // Stable-id keys are the fix.
  std::set<std::string> names;
  (void)names;
  // A pointer buried inside a compound key still address-orders the set.
  std::set<std::pair<Node*, int>> pairs;  // finding: pointer key
  (void)pairs;
  // bbv-lint: allow(det-iter) address-ordered scratch set, never traversed
  std::set<Node*> suppressed;
  (void)suppressed;
  return total;
}
