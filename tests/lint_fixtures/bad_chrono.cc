// Lint fixture: every ad-hoc timing primitive below must be flagged by the
// "timing" rule. Never compiled — text-linted only.
#include <chrono>
#include <ctime>
#include <sys/time.h>

void TimeThings() {
  const auto start = std::chrono::steady_clock::now();
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  struct timeval tv;
  gettimeofday(&tv, nullptr);
  (void)start;
}
