// Fixture for tools_lint_test: deliberate violations silenced with the
// documented suppression marker. The lint must report nothing here.

bool SparsitySkip(double g) {
  // bbv-lint: allow(float-eq) exact-zero sparsity skip
  if (g == 0.0) return true;
  return g != 1.0;  // bbv-lint: allow(float-eq) fixture for same-line marker
}
