#ifndef WRONG_GUARD_H
#define WRONG_GUARD_H

// Fixture for tools_lint_test: the guard does not follow the BBV_<PATH>_H_
// convention, so the include-guard rule must fire.
inline int FixtureValue() { return 1; }

#endif  // WRONG_GUARD_H
