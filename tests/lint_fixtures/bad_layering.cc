// layering fixture: back-edges against the module DAG. Linted as
// src/stats/bad_layering.cc, so layer-1 stats must not reach up into layer-2
// ml or layer-3 core.
#include "common/status.h"  // clean: includes always point down to layer 0
#include "core/validator.h"  // finding: stats -> core climbs two layers
#include "linalg/matrix.h"  // clean: stats -> linalg is an audited edge
#include "ml/black_box.h"  // finding: stats -> ml climbs a layer

// bbv-lint: allow(layering) fixture shows a justified suppression
#include "serve/streaming_scorer.h"

int Unused() { return 0; }
