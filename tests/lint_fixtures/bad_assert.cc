// Fixture for tools_lint_test: C assert usage. Never compiled.

#include <cassert>

void Guarded(int count) {
  assert(count > 0);                      // flagged: use BBV_CHECK
  static_assert(sizeof(int) >= 2, "ok");  // clean: compile-time check
}
