// End-to-end tests for the streaming serving layer: streamed percentile
// features must agree with the exact batch path within the sketch's value
// error bound for every class and percentile, the scorer state must be
// byte-identical for any mini-batch split and thread count, and the
// sliding-window monitor must alarm only once degraded traffic dominates
// the window (i.e. after healthy batches are evicted).

#include "serve/streaming_scorer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/monitor.h"
#include "core/prediction_statistics.h"
#include "datasets/tabular.h"
#include "ml/black_box.h"
#include "ml/sgd_logistic_regression.h"

namespace bbv::serve {
namespace {

/// Sets BBV_THREADS for one scope and restores the previous value after.
class ScopedThreadsEnv {
 public:
  explicit ScopedThreadsEnv(const char* value) {
    const char* previous = std::getenv("BBV_THREADS");
    had_previous_ = previous != nullptr;
    if (had_previous_) previous_ = previous;
    ::setenv("BBV_THREADS", value, 1);
  }
  ~ScopedThreadsEnv() {
    if (had_previous_) {
      ::setenv("BBV_THREADS", previous_.c_str(), 1);
    } else {
      ::unsetenv("BBV_THREADS");
    }
  }
  ScopedThreadsEnv(const ScopedThreadsEnv&) = delete;
  ScopedThreadsEnv& operator=(const ScopedThreadsEnv&) = delete;

 private:
  bool had_previous_ = false;
  std::string previous_;
};

/// Binary predict_proba batch where a `good_fraction` of the rows are
/// confidently correct (winner probability 0.99) and the rest are barely
/// above chance (0.51); winners alternate between the two classes. The
/// merged multiset of a fraction-a batch and a fraction-b batch of equal
/// size is exactly a fraction-(a+b)/2 batch, which keeps every sliding
/// window mixture in-distribution for the predictor trained below.
linalg::Matrix MixtureBatch(double good_fraction, size_t rows) {
  linalg::Matrix batch(rows, 2);
  const size_t good_rows =
      static_cast<size_t>(good_fraction * static_cast<double>(rows) + 0.5);
  for (size_t i = 0; i < rows; ++i) {
    const double confidence = i < good_rows ? 0.99 : 0.51;
    const size_t winner = i % 2;
    batch.At(i, winner) = confidence;
    batch.At(i, 1 - winner) = 1.0 - confidence;
  }
  return batch;
}

/// Trains a performance predictor on synthetic (statistics, score) pairs
/// where the score is a linear function of the confident fraction, so the
/// regressor learns "more confident outputs => higher score" over the full
/// mixture range. Reference (clean-test) score is 0.99.
core::PerformancePredictor TrainSyntheticPredictor(common::Rng& rng) {
  core::PerformancePredictor::Options options;
  options.tree_count_grid = {30};
  core::PerformancePredictor predictor(options);
  std::vector<std::vector<double>> statistics;
  std::vector<double> scores;
  for (size_t rows : {400ul, 410ul, 420ul}) {
    for (int level = 0; level <= 10; ++level) {
      const double fraction = static_cast<double>(level) / 10.0;
      statistics.push_back(
          core::PredictionStatistics(MixtureBatch(fraction, rows)));
      scores.push_back(0.51 + 0.48 * fraction);
    }
  }
  BBV_CHECK(
      predictor.TrainFromStatistics(statistics, scores, 0.99, rng).ok());
  return predictor;
}

linalg::Matrix RandomProbabilities(size_t rows, common::Rng& rng) {
  linalg::Matrix batch(rows, 2);
  for (size_t i = 0; i < rows; ++i) {
    const double p = rng.Uniform();
    batch.At(i, 0) = p;
    batch.At(i, 1) = 1.0 - p;
  }
  return batch;
}

std::string ScorerBytes(const StreamingScorer& scorer) {
  std::ostringstream out;
  BBV_CHECK(scorer.SaveState(out).ok());
  return out.str();
}

/// Three-class analogue of MixtureBatch, for foreign-class-count guards.
linalg::Matrix Mixture3Batch(double good_fraction, size_t rows) {
  linalg::Matrix batch(rows, 3);
  const size_t good_rows =
      static_cast<size_t>(good_fraction * static_cast<double>(rows) + 0.5);
  for (size_t i = 0; i < rows; ++i) {
    const double confidence = i < good_rows ? 0.98 : 0.34;
    const size_t winner = i % 3;
    for (size_t k = 0; k < 3; ++k) {
      batch.At(i, k) = k == winner ? confidence : (1.0 - confidence) / 2.0;
    }
  }
  return batch;
}

core::PerformancePredictor Train3ClassPredictor(common::Rng& rng) {
  core::PerformancePredictor::Options options;
  options.tree_count_grid = {10};
  core::PerformancePredictor predictor(options);
  std::vector<std::vector<double>> statistics;
  std::vector<double> scores;
  for (size_t rows : {300ul, 310ul, 320ul}) {
    for (int level = 0; level <= 10; ++level) {
      const double fraction = static_cast<double>(level) / 10.0;
      statistics.push_back(
          core::PredictionStatistics(Mixture3Batch(fraction, rows)));
      scores.push_back(0.34 + 0.64 * fraction);
    }
  }
  BBV_CHECK(
      predictor.TrainFromStatistics(statistics, scores, 0.98, rng).ok());
  return predictor;
}

TEST(StreamingScorerTest, CreateValidatesPredictorAndResolution) {
  common::Rng rng(31);
  EXPECT_FALSE(
      StreamingScorer::Create(core::PerformancePredictor(), {}).ok());
  core::PerformancePredictor predictor = TrainSyntheticPredictor(rng);
  StreamingScorer::Options bad;
  bad.resolution_bits = 0;
  EXPECT_FALSE(StreamingScorer::Create(predictor, bad).ok());
  bad.resolution_bits = 25;
  EXPECT_FALSE(StreamingScorer::Create(predictor, bad).ok());
  EXPECT_TRUE(StreamingScorer::Create(predictor, {}).ok());
}

TEST(StreamingScorerTest, StreamedFeaturesMatchExactBatchWithinBound) {
  common::Rng rng(32);
  core::PerformancePredictor predictor = TrainSyntheticPredictor(rng);
  auto scorer = StreamingScorer::Create(predictor, {});
  ASSERT_TRUE(scorer.ok());

  const linalg::Matrix all = RandomProbabilities(5000, rng);
  for (size_t begin = 0; begin < all.rows(); begin += 97) {
    const size_t end = std::min(begin + 97, all.rows());
    std::vector<size_t> rows;
    for (size_t i = begin; i < end; ++i) rows.push_back(i);
    ASSERT_TRUE(scorer->Ingest(all.SelectRows(rows)).ok());
  }
  EXPECT_EQ(scorer->rows_ingested(), all.rows());

  const auto streamed = scorer->PercentileFeatures();
  ASSERT_TRUE(streamed.ok());
  const std::vector<double> exact =
      core::PredictionStatistics(all, predictor.percentile_points());
  ASSERT_EQ(streamed->size(), exact.size());
  for (size_t i = 0; i < exact.size(); ++i) {
    EXPECT_NEAR((*streamed)[i], exact[i], scorer->ValueErrorBound() + 1e-12)
        << "feature " << i;
  }

  // The score estimates feed the same regressor, so they should agree
  // closely as well (the features differ by at most the error bound).
  const auto streamed_score = scorer->EstimateScore();
  const auto exact_score = predictor.EstimateScoreFromProba(all);
  ASSERT_TRUE(streamed_score.ok());
  ASSERT_TRUE(exact_score.ok());
  EXPECT_NEAR(streamed_score->point, exact_score->point, 0.1);
}

TEST(StreamingScorerTest, StateIsByteIdenticalAcrossSplitsAndThreads) {
  common::Rng rng(33);
  core::PerformancePredictor predictor = TrainSyntheticPredictor(rng);
  const linalg::Matrix all = RandomProbabilities(2000, rng);

  auto bytes_for = [&](const char* threads, size_t batch) {
    ScopedThreadsEnv env(threads);
    auto scorer = StreamingScorer::Create(predictor, {});
    BBV_CHECK(scorer.ok());
    for (size_t begin = 0; begin < all.rows(); begin += batch) {
      const size_t end = std::min(begin + batch, all.rows());
      std::vector<size_t> rows;
      for (size_t i = begin; i < end; ++i) rows.push_back(i);
      BBV_CHECK(scorer->Ingest(all.SelectRows(rows)).ok());
    }
    return ScorerBytes(*scorer);
  };

  const std::string reference = bytes_for("1", 2000);
  EXPECT_EQ(bytes_for("1", 64), reference);
  EXPECT_EQ(bytes_for("8", 1), reference);
  EXPECT_EQ(bytes_for("8", 311), reference);
  EXPECT_EQ(bytes_for("8", 2000), reference);
}

TEST(StreamingScorerTest, IngestRejectsMalformedBatches) {
  common::Rng rng(34);
  auto scorer = StreamingScorer::Create(TrainSyntheticPredictor(rng), {});
  ASSERT_TRUE(scorer.ok());
  EXPECT_FALSE(scorer->Ingest(linalg::Matrix()).ok());
  EXPECT_FALSE(scorer->Ingest(linalg::Matrix(4, 3)).ok());
  linalg::Matrix poisoned = MixtureBatch(1.0, 8);
  poisoned.At(3, 0) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(scorer->Ingest(poisoned).ok());
  // No failed batch may leak into the sketches.
  EXPECT_EQ(scorer->rows_ingested(), 0u);
  EXPECT_EQ(scorer->batches_ingested(), 0u);
  EXPECT_FALSE(scorer->EstimateScore().ok());
  ASSERT_TRUE(scorer->Ingest(MixtureBatch(1.0, 8)).ok());
  EXPECT_EQ(scorer->rows_ingested(), 8u);
  EXPECT_TRUE(scorer->EstimateScore().ok());
}

TEST(StreamingScorerTest, MergedPartialsMatchSingleStream) {
  common::Rng rng(35);
  core::PerformancePredictor predictor = TrainSyntheticPredictor(rng);
  const linalg::Matrix first = RandomProbabilities(700, rng);
  const linalg::Matrix second = RandomProbabilities(300, rng);

  auto combined = StreamingScorer::Create(predictor, {});
  ASSERT_TRUE(combined.ok());
  ASSERT_TRUE(combined->Ingest(first).ok());
  ASSERT_TRUE(combined->Ingest(second).ok());

  auto left = StreamingScorer::Create(predictor, {});
  auto right = StreamingScorer::Create(predictor, {});
  ASSERT_TRUE(left.ok());
  ASSERT_TRUE(right.ok());
  ASSERT_TRUE(left->Ingest(first).ok());
  ASSERT_TRUE(right->Ingest(second).ok());
  ASSERT_TRUE(left->MergeFrom(*right).ok());
  EXPECT_EQ(left->rows_ingested(), 1000u);
  EXPECT_EQ(left->batches_ingested(), 2u);
  EXPECT_EQ(ScorerBytes(*left), ScorerBytes(*combined));

  StreamingScorer::Options coarse;
  coarse.resolution_bits = 6;
  auto other = StreamingScorer::Create(predictor, coarse);
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(left->MergeFrom(*other).ok());
}

TEST(StreamingScorerTest, KsDistanceSeparatesDriftedTraffic) {
  common::Rng rng(36);
  core::PerformancePredictor predictor = TrainSyntheticPredictor(rng);
  auto reference = StreamingScorer::Create(predictor, {});
  auto same = StreamingScorer::Create(predictor, {});
  auto drifted = StreamingScorer::Create(predictor, {});
  ASSERT_TRUE(reference.ok());
  ASSERT_TRUE(same.ok());
  ASSERT_TRUE(drifted.ok());
  EXPECT_FALSE(same->MaxClassKsDistance(*reference).ok());

  ASSERT_TRUE(reference->Ingest(MixtureBatch(1.0, 1000)).ok());
  ASSERT_TRUE(same->Ingest(MixtureBatch(1.0, 1000)).ok());
  ASSERT_TRUE(drifted->Ingest(MixtureBatch(0.0, 1000)).ok());

  const auto near_zero = same->MaxClassKsDistance(*reference);
  ASSERT_TRUE(near_zero.ok());
  EXPECT_NEAR(*near_zero, 0.0, 1e-12);
  const auto large = drifted->MaxClassKsDistance(*reference);
  ASSERT_TRUE(large.ok());
  EXPECT_GT(*large, 0.4);
}

TEST(StreamingScorerTest, IngestFrameRunsTheModel) {
  common::Rng rng(37);
  core::PerformancePredictor predictor = TrainSyntheticPredictor(rng);
  auto scorer = StreamingScorer::Create(predictor, {});
  ASSERT_TRUE(scorer.ok());

  data::Dataset dataset = datasets::MakeIncome(600, rng);
  ml::BlackBoxModel model(std::make_unique<ml::SgdLogisticRegression>());
  ASSERT_TRUE(model.Train(dataset, rng).ok());
  ASSERT_TRUE(scorer->IngestFrame(model, dataset.features).ok());
  EXPECT_EQ(scorer->rows_ingested(), dataset.features.NumRows());
  const auto estimate = scorer->EstimateScore();
  ASSERT_TRUE(estimate.ok());
  EXPECT_TRUE(std::isfinite(estimate->point));
}

TEST(StreamingScorerTest, SaveLoadRoundTripIsByteIdentical) {
  common::Rng rng(39);
  core::PerformancePredictor predictor = TrainSyntheticPredictor(rng);
  auto scorer = StreamingScorer::Create(predictor, {});
  ASSERT_TRUE(scorer.ok());
  for (size_t b = 0; b < 6; ++b) {
    ASSERT_TRUE(scorer->Ingest(RandomProbabilities(200 + 13 * b, rng)).ok());
  }
  const std::string saved = ScorerBytes(*scorer);

  auto restored = StreamingScorer::Create(predictor, {});
  ASSERT_TRUE(restored.ok());
  std::istringstream in(saved);
  ASSERT_TRUE(restored->LoadState(in).ok());
  EXPECT_EQ(restored->rows_ingested(), scorer->rows_ingested());
  // The round-trip is exact: save(load(save(x))) == save(x), and every
  // estimate from the restored scorer is bitwise the original's.
  EXPECT_EQ(ScorerBytes(*restored), saved);
  const auto original_estimate = scorer->EstimateScore();
  const auto restored_estimate = restored->EstimateScore();
  ASSERT_TRUE(original_estimate.ok());
  ASSERT_TRUE(restored_estimate.ok());
  EXPECT_EQ(*restored_estimate, *original_estimate);

  // Continued ingestion stays in lockstep after the round-trip.
  const linalg::Matrix more = RandomProbabilities(333, rng);
  ASSERT_TRUE(scorer->Ingest(more).ok());
  ASSERT_TRUE(restored->Ingest(more).ok());
  EXPECT_EQ(ScorerBytes(*restored), ScorerBytes(*scorer));
}

TEST(StreamingScorerTest, LoadStateValidatesGridAndClassCount) {
  common::Rng rng(40);
  core::PerformancePredictor predictor = TrainSyntheticPredictor(rng);
  auto scorer = StreamingScorer::Create(predictor, {});
  ASSERT_TRUE(scorer.ok());
  ASSERT_TRUE(scorer->Ingest(MixtureBatch(0.5, 500)).ok());
  const std::string before = ScorerBytes(*scorer);

  // State sketched on a coarser grid answers quantile queries on a
  // different lattice; loading it would silently break byte-identity.
  StreamingScorer::Options coarse;
  coarse.resolution_bits = 10;
  auto coarse_scorer = StreamingScorer::Create(predictor, coarse);
  ASSERT_TRUE(coarse_scorer.ok());
  ASSERT_TRUE(coarse_scorer->Ingest(MixtureBatch(0.5, 500)).ok());
  std::istringstream coarse_in(ScorerBytes(*coarse_scorer));
  EXPECT_FALSE(scorer->LoadState(coarse_in).ok());

  // State sketched for three classes can never produce the feature vector
  // a two-class predictor was trained on.
  core::PerformancePredictor foreign = Train3ClassPredictor(rng);
  auto foreign_scorer = StreamingScorer::Create(foreign, {});
  ASSERT_TRUE(foreign_scorer.ok());
  ASSERT_TRUE(foreign_scorer->Ingest(Mixture3Batch(0.5, 500)).ok());
  std::istringstream foreign_in(ScorerBytes(*foreign_scorer));
  EXPECT_FALSE(scorer->LoadState(foreign_in).ok());

  // A truncated stream is rejected too.
  std::istringstream truncated(before.substr(0, before.size() / 2));
  EXPECT_FALSE(scorer->LoadState(truncated).ok());

  // None of the rejected loads may disturb the scorer's state.
  EXPECT_EQ(ScorerBytes(*scorer), before);
  EXPECT_TRUE(scorer->EstimateScore().ok());
}

TEST(StreamingScorerTest, MergeFromRejectsForeignClassCount) {
  common::Rng rng(41);
  // A fresh (zero-column) scorer used to adopt whatever column count the
  // merge source carried, leaving it permanently unable to estimate; the
  // incompatible shard must be rejected instead.
  auto scorer = StreamingScorer::Create(TrainSyntheticPredictor(rng), {});
  ASSERT_TRUE(scorer.ok());
  auto foreign = StreamingScorer::Create(Train3ClassPredictor(rng), {});
  ASSERT_TRUE(foreign.ok());
  ASSERT_TRUE(foreign->Ingest(Mixture3Batch(0.5, 300)).ok());
  EXPECT_FALSE(scorer->MergeFrom(*foreign).ok());
  EXPECT_EQ(scorer->num_classes(), 0u);

  ASSERT_TRUE(scorer->Ingest(MixtureBatch(1.0, 100)).ok());
  EXPECT_TRUE(scorer->EstimateScore().ok());
}

TEST(StreamingScorerTest, SwapPredictorValidatesAndSwitchesForests) {
  common::Rng rng(42);
  core::PerformancePredictor predictor = TrainSyntheticPredictor(rng);
  auto scorer = StreamingScorer::Create(predictor, {});
  ASSERT_TRUE(scorer.ok());
  ASSERT_TRUE(scorer->Ingest(MixtureBatch(0.7, 400)).ok());
  const auto before = scorer->EstimateScore();
  ASSERT_TRUE(before.ok());

  EXPECT_FALSE(scorer->SwapPredictor(nullptr).ok());
  EXPECT_FALSE(
      scorer
          ->SwapPredictor(std::make_shared<const core::PerformancePredictor>())
          .ok());
  // A predictor trained on a different class count cannot score the
  // sketches this scorer has already accumulated.
  EXPECT_FALSE(scorer
                   ->SwapPredictor(
                       std::make_shared<const core::PerformancePredictor>(
                           Train3ClassPredictor(rng)))
                   .ok());
  // Rejected swaps leave the original forest in place.
  const auto unchanged = scorer->EstimateScore();
  ASSERT_TRUE(unchanged.ok());
  EXPECT_EQ(*unchanged, *before);

  common::Rng other_rng(142);
  ASSERT_TRUE(scorer
                  ->SwapPredictor(
                      std::make_shared<const core::PerformancePredictor>(
                          TrainSyntheticPredictor(other_rng)))
                  .ok());
  const auto after = scorer->EstimateScore();
  ASSERT_TRUE(after.ok());
  // Different forest, same sketches: the estimate moves.
  EXPECT_NE(*after, *before);
}

TEST(SlidingWindowMonitorTest, AlarmFiresOnlyAfterHealthyBatchesEvicted) {
  common::Rng rng(38);
  core::PerformancePredictor predictor = TrainSyntheticPredictor(rng);
  const ml::BlackBoxModel model(
      std::make_unique<ml::SgdLogisticRegression>());
  core::ModelMonitor::Options options;
  options.alarm_threshold = 0.35;
  options.window_batches = 2;
  // This test pins down the point-drop eviction semantics; the certified
  // (interval-based) policy is covered in core_monitor_interval_test.
  options.alarm_policy = core::ModelMonitor::AlarmPolicy::kPointDrop;
  auto monitor = core::ModelMonitor::Create(&model, predictor, options);
  ASSERT_TRUE(monitor.ok());
  ASSERT_TRUE(monitor->windowed());

  const linalg::Matrix good = MixtureBatch(1.0, 400);
  const linalg::Matrix bad = MixtureBatch(0.0, 400);

  const auto healthy = monitor->Observe(good);
  ASSERT_TRUE(healthy.ok());
  EXPECT_FALSE(healthy->alarm);
  EXPECT_EQ(healthy->window_batches_used, 1u);
  EXPECT_EQ(healthy->window_rows, 400u);

  // First degraded batch: the window still contains the healthy batch, so
  // the windowed estimate sits near the midpoint and must NOT alarm even
  // though the per-batch drop alone would cross the threshold.
  const auto mixed = monitor->Observe(bad);
  ASSERT_TRUE(mixed.ok());
  EXPECT_GE(mixed->relative_drop, options.alarm_threshold);
  EXPECT_LT(mixed->windowed_relative_drop, options.alarm_threshold);
  EXPECT_FALSE(mixed->alarm);
  EXPECT_EQ(mixed->window_batches_used, 2u);
  EXPECT_EQ(mixed->window_rows, 800u);

  // Second degraded batch evicts the healthy one; the window is now all
  // degraded traffic and the alarm fires.
  const auto degraded = monitor->Observe(bad);
  ASSERT_TRUE(degraded.ok());
  EXPECT_GE(degraded->windowed_relative_drop, options.alarm_threshold);
  EXPECT_TRUE(degraded->alarm);
  EXPECT_EQ(degraded->window_batches_used, 2u);
  EXPECT_EQ(degraded->window_rows, 800u);
  EXPECT_EQ(monitor->alarms_raised(), 1u);

  // Traffic recovers: once degraded batches are evicted again, no alarm.
  ASSERT_TRUE(monitor->Observe(good).ok());
  const auto recovered = monitor->Observe(good);
  ASSERT_TRUE(recovered.ok());
  EXPECT_FALSE(recovered->alarm);
  EXPECT_LT(recovered->windowed_relative_drop, options.alarm_threshold);
}

}  // namespace
}  // namespace bbv::serve
