// Death tests for BBV_CHECK*: the failure message must carry the failed
// condition, the file:line location, and any streamed context. Also guards
// the macro's expression shape — BBV_CHECK must compose under a dangling
// `if` without capturing the `else`.

#include "common/check.h"

#include <gtest/gtest.h>

#include <string>

namespace bbv::common {
namespace {

TEST(CheckDeathTest, FailureMessageNamesConditionAndLocation) {
  EXPECT_DEATH(BBV_CHECK(1 == 2),
               "Check failed: 1 == 2 at .*common_check_test\\.cc:[0-9]+");
}

TEST(CheckDeathTest, StreamedContextIsAppended) {
  const int actual = 7;
  EXPECT_DEATH(BBV_CHECK(actual < 0) << "got " << actual << " items",
               "Check failed: actual < 0 at .*:[0-9]+ got 7 items");
}

TEST(CheckDeathTest, ComparisonMacrosFail) {
  EXPECT_DEATH(BBV_CHECK_EQ(2 + 2, 5), "Check failed: \\(2 \\+ 2\\) == \\(5\\)");
  EXPECT_DEATH(BBV_CHECK_NE(3, 3), "Check failed: \\(3\\) != \\(3\\)");
  EXPECT_DEATH(BBV_CHECK_LT(2, 1), "Check failed: \\(2\\) < \\(1\\)");
  EXPECT_DEATH(BBV_CHECK_LE(2, 1), "Check failed: \\(2\\) <= \\(1\\)");
  EXPECT_DEATH(BBV_CHECK_GT(1, 2), "Check failed: \\(1\\) > \\(2\\)");
  EXPECT_DEATH(BBV_CHECK_GE(1, 2), "Check failed: \\(1\\) >= \\(2\\)");
}

TEST(CheckTest, PassingChecksAreSilentAndEvaluateOnce) {
  int evaluations = 0;
  BBV_CHECK(++evaluations == 1) << "side effect must run exactly once";
  EXPECT_EQ(evaluations, 1);
  BBV_CHECK_EQ(1, 1);
  BBV_CHECK_NE(1, 2);
  BBV_CHECK_LT(1, 2);
  BBV_CHECK_LE(1, 1);
  BBV_CHECK_GT(2, 1);
  BBV_CHECK_GE(2, 2);
}

TEST(CheckTest, ComposesUnderDanglingIfWithoutCapturingElse) {
  // With the old if/else macro shape, the `else` below would have bound to
  // the macro's hidden `if` and this test would take the wrong branch.
  bool took_else = false;
  if (true)
    BBV_CHECK(true);
  else
    took_else = true;  // NOLINT(readability-misleading-indentation)
  EXPECT_FALSE(took_else);

  bool took_then = false;
  if (false)
    BBV_CHECK(false) << "never evaluated";
  else
    took_then = true;  // NOLINT(readability-misleading-indentation)
  EXPECT_TRUE(took_then);
}

#ifndef NDEBUG
TEST(CheckDeathTest, DcheckFiresInDebugBuilds) {
  EXPECT_DEATH(BBV_DCHECK(false) << "debug contract", "debug contract");
  EXPECT_DEATH(BBV_DCHECK_EQ(1, 2), "Check failed: \\(1\\) == \\(2\\)");
}
#endif

}  // namespace
}  // namespace bbv::common
