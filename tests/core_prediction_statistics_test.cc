#include "core/prediction_statistics.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"

namespace bbv::core {
namespace {

linalg::Matrix BinaryProba(const std::vector<double>& p1) {
  linalg::Matrix proba(p1.size(), 2);
  for (size_t i = 0; i < p1.size(); ++i) {
    proba.At(i, 0) = 1.0 - p1[i];
    proba.At(i, 1) = p1[i];
  }
  return proba;
}

TEST(DefaultPercentilePointsTest, SortedUniqueAndCoversRange) {
  const std::vector<double> points = DefaultPercentilePoints();
  EXPECT_TRUE(std::is_sorted(points.begin(), points.end()));
  EXPECT_DOUBLE_EQ(points.front(), 0.0);
  EXPECT_DOUBLE_EQ(points.back(), 100.0);
  EXPECT_EQ(std::adjacent_find(points.begin(), points.end()), points.end());
  // Contains the paper's 0,5,...,100 grid.
  for (int q = 0; q <= 100; q += 5) {
    EXPECT_NE(std::find(points.begin(), points.end(),
                        static_cast<double>(q)),
              points.end());
  }
}

// Fills each row with a random point on the probability simplex; the
// PredictionStatistics contract (enforced via BBV_DCHECK) requires genuine
// class-probability rows.
void FillSimplexRows(linalg::Matrix& proba, common::Rng& rng) {
  for (size_t i = 0; i < proba.rows(); ++i) {
    double row_sum = 0.0;
    for (size_t k = 0; k < proba.cols(); ++k) {
      proba.At(i, k) = rng.Uniform() + 1e-6;
      row_sum += proba.At(i, k);
    }
    for (size_t k = 0; k < proba.cols(); ++k) proba.At(i, k) /= row_sum;
  }
}

TEST(PredictionStatisticsTest, WidthIsClassesTimesPoints) {
  common::Rng rng(1);
  linalg::Matrix proba(50, 3);
  FillSimplexRows(proba, rng);
  const std::vector<double> features = PredictionStatistics(proba);
  EXPECT_EQ(features.size(), 3 * DefaultPercentilePoints().size());
}

TEST(PredictionStatisticsTest, PerClassBlocksAreMonotone) {
  common::Rng rng(2);
  linalg::Matrix proba(100, 2);
  FillSimplexRows(proba, rng);
  const size_t points = DefaultPercentilePoints().size();
  const std::vector<double> features = PredictionStatistics(proba);
  for (size_t k = 0; k < 2; ++k) {
    for (size_t i = 1; i < points; ++i) {
      EXPECT_LE(features[k * points + i - 1], features[k * points + i]);
    }
  }
}

TEST(PredictionStatisticsTest, BoundedByProbabilityRange) {
  common::Rng rng(3);
  std::vector<double> p1(200);
  for (double& v : p1) v = rng.Uniform();
  const std::vector<double> features =
      PredictionStatistics(BinaryProba(p1));
  for (double f : features) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
}

TEST(PredictionStatisticsTest, PermutationInvariant) {
  common::Rng rng(4);
  std::vector<double> p1(64);
  for (double& v : p1) v = rng.Uniform();
  const std::vector<double> original =
      PredictionStatistics(BinaryProba(p1));
  rng.Shuffle(p1);
  const std::vector<double> shuffled =
      PredictionStatistics(BinaryProba(p1));
  ASSERT_EQ(original.size(), shuffled.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_DOUBLE_EQ(original[i], shuffled[i]);
  }
}

TEST(PredictionStatisticsTest, DetectsDistributionShift) {
  // Confident predictions vs uniform predictions produce very different
  // statistics — the signal the performance predictor learns from.
  const std::vector<double> confident(100, 0.99);
  const std::vector<double> uncertain(100, 0.5);
  const std::vector<double> a = PredictionStatistics(BinaryProba(confident));
  const std::vector<double> b = PredictionStatistics(BinaryProba(uncertain));
  double difference = 0.0;
  for (size_t i = 0; i < a.size(); ++i) difference += std::abs(a[i] - b[i]);
  EXPECT_GT(difference, 1.0);
}

TEST(PredictionStatisticsTest, CustomGrid) {
  const std::vector<double> features = PredictionStatistics(
      BinaryProba({0.0, 0.5, 1.0}), {0.0, 50.0, 100.0});
  ASSERT_EQ(features.size(), 6u);
  // Class-0 column is {1, 0.5, 0}.
  EXPECT_DOUBLE_EQ(features[0], 0.0);
  EXPECT_DOUBLE_EQ(features[1], 0.5);
  EXPECT_DOUBLE_EQ(features[2], 1.0);
}

TEST(PredictionStatisticsTest, SingleRowBatch) {
  const std::vector<double> features =
      PredictionStatistics(BinaryProba({0.7}), {0.0, 100.0});
  ASSERT_EQ(features.size(), 4u);
  EXPECT_DOUBLE_EQ(features[0], 0.3);
  EXPECT_DOUBLE_EQ(features[2], 0.7);
}

}  // namespace
}  // namespace bbv::core
