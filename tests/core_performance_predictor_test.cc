#include "core/performance_predictor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "datasets/tabular.h"
#include "errors/missing_values.h"
#include "errors/numeric_errors.h"
#include "ml/black_box.h"
#include "ml/sgd_logistic_regression.h"

namespace bbv::core {
namespace {

struct Fixture {
  data::Dataset train;
  data::Dataset test;
  data::Dataset serving;
  std::unique_ptr<ml::BlackBoxModel> model;
};

Fixture MakeFixture(common::Rng& rng, size_t rows = 3000) {
  data::Dataset dataset = datasets::MakeIncome(rows, rng);
  dataset = data::BalanceClasses(dataset, rng);
  auto [source, serving] = data::TrainTestSplit(dataset, 0.7, rng);
  auto [train, test] = data::TrainTestSplit(source, 0.7, rng);
  Fixture fixture;
  fixture.train = std::move(train);
  fixture.test = std::move(test);
  fixture.serving = std::move(serving);
  fixture.model = std::make_unique<ml::BlackBoxModel>(
      std::make_unique<ml::SgdLogisticRegression>());
  BBV_CHECK(fixture.model->Train(fixture.train, rng).ok());
  return fixture;
}

PerformancePredictor::Options FastOptions() {
  PerformancePredictor::Options options;
  options.corruptions_per_generator = 25;
  options.tree_count_grid = {30};
  return options;
}

TEST(ComputeScoreTest, AccuracyAndAucDispatch) {
  const linalg::Matrix proba =
      linalg::Matrix::FromRows({{0.9, 0.1}, {0.2, 0.8}});
  EXPECT_DOUBLE_EQ(ComputeScore(ScoreMetric::kAccuracy, proba, {0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(ComputeScore(ScoreMetric::kRocAuc, proba, {0, 1}), 1.0);
}

TEST(PerformancePredictorTest, TrainRequiresDataAndGenerators) {
  common::Rng rng(1);
  Fixture fixture = MakeFixture(rng, 1000);
  PerformancePredictor predictor(FastOptions());
  const errors::MissingValues missing;
  std::vector<const errors::ErrorGen*> generators = {&missing};
  EXPECT_FALSE(
      predictor.Train(*fixture.model, data::Dataset(), generators, rng).ok());
  EXPECT_FALSE(predictor.Train(*fixture.model, fixture.test, {}, rng).ok());
}

TEST(PerformancePredictorTest, EstimateBeforeTrainFails) {
  PerformancePredictor predictor;
  EXPECT_FALSE(
      predictor.EstimateScoreFromProba(linalg::Matrix(10, 2)).ok());
}

TEST(PerformancePredictorTest, RecordsMetaTrainingSize) {
  common::Rng rng(2);
  Fixture fixture = MakeFixture(rng, 1500);
  PerformancePredictor::Options options = FastOptions();
  options.clean_copies = 3;
  PerformancePredictor predictor(options);
  const errors::MissingValues missing;
  const errors::NumericOutliers outliers;
  std::vector<const errors::ErrorGen*> generators = {&missing, &outliers};
  ASSERT_TRUE(
      predictor.Train(*fixture.model, fixture.test, generators, rng).ok());
  EXPECT_EQ(predictor.num_training_examples(), 3u + 2u * 25u);
  EXPECT_TRUE(predictor.trained());
  EXPECT_GT(predictor.test_score(), 0.5);
}

TEST(PerformancePredictorTest, EstimatesCleanScoreAccurately) {
  common::Rng rng(3);
  Fixture fixture = MakeFixture(rng);
  PerformancePredictor predictor(FastOptions());
  const errors::MissingValues missing;
  std::vector<const errors::ErrorGen*> generators = {&missing};
  ASSERT_TRUE(
      predictor.Train(*fixture.model, fixture.test, generators, rng).ok());
  const auto estimate =
      predictor.EstimateScore(*fixture.model, fixture.serving.features);
  ASSERT_TRUE(estimate.ok());
  const double actual =
      fixture.model->ScoreAccuracy(fixture.serving).ValueOrDie();
  EXPECT_NEAR(estimate->point, actual, 0.05);
}

TEST(PerformancePredictorTest, TracksDegradationUnderKnownError) {
  common::Rng rng(4);
  Fixture fixture = MakeFixture(rng);
  PerformancePredictor predictor(FastOptions());
  const errors::MissingValues missing;
  std::vector<const errors::ErrorGen*> generators = {&missing};
  ASSERT_TRUE(
      predictor.Train(*fixture.model, fixture.test, generators, rng).ok());
  double total_error = 0.0;
  const int repetitions = 8;
  for (int i = 0; i < repetitions; ++i) {
    const auto corrupted = missing.Corrupt(fixture.serving.features, rng);
    ASSERT_TRUE(corrupted.ok());
    const auto proba = fixture.model->PredictProba(*corrupted);
    ASSERT_TRUE(proba.ok());
    const double actual = ComputeScore(ScoreMetric::kAccuracy, *proba,
                                       fixture.serving.labels);
    const auto estimate = predictor.EstimateScoreFromProba(*proba);
    ASSERT_TRUE(estimate.ok());
    total_error += std::abs(estimate->point - actual);
  }
  EXPECT_LT(total_error / repetitions, 0.05);
}

TEST(PerformancePredictorTest, AucMetricVariant) {
  common::Rng rng(5);
  Fixture fixture = MakeFixture(rng, 2000);
  PerformancePredictor::Options options = FastOptions();
  options.metric = ScoreMetric::kRocAuc;
  PerformancePredictor predictor(options);
  const errors::NumericOutliers outliers;
  std::vector<const errors::ErrorGen*> generators = {&outliers};
  ASSERT_TRUE(
      predictor.Train(*fixture.model, fixture.test, generators, rng).ok());
  const auto estimate =
      predictor.EstimateScore(*fixture.model, fixture.serving.features);
  ASSERT_TRUE(estimate.ok());
  const double actual_auc =
      fixture.model->ScoreAuc(fixture.serving).ValueOrDie();
  EXPECT_NEAR(estimate->point, actual_auc, 0.08);
}

TEST(PerformancePredictorTest, GridSearchSelectsFromGrid) {
  common::Rng rng(6);
  Fixture fixture = MakeFixture(rng, 1200);
  PerformancePredictor::Options options = FastOptions();
  options.tree_count_grid = {5, 40};
  PerformancePredictor predictor(options);
  const errors::MissingValues missing;
  std::vector<const errors::ErrorGen*> generators = {&missing};
  ASSERT_TRUE(
      predictor.Train(*fixture.model, fixture.test, generators, rng).ok());
  EXPECT_TRUE(predictor.selected_tree_count() == 5 ||
              predictor.selected_tree_count() == 40);
}

TEST(PerformancePredictorTest, MetaBatchSizeSubsampling) {
  common::Rng rng(7);
  Fixture fixture = MakeFixture(rng, 2000);
  PerformancePredictor::Options options = FastOptions();
  options.meta_batch_size = 100;
  PerformancePredictor predictor(options);
  const errors::MissingValues missing;
  std::vector<const errors::ErrorGen*> generators = {&missing};
  ASSERT_TRUE(
      predictor.Train(*fixture.model, fixture.test, generators, rng).ok());
  // Estimates on small serving batches remain sensible.
  const std::vector<size_t> rows =
      rng.SampleWithoutReplacement(fixture.serving.NumRows(), 100);
  const data::Dataset small = fixture.serving.SelectRows(rows);
  const auto estimate =
      predictor.EstimateScore(*fixture.model, small.features);
  ASSERT_TRUE(estimate.ok());
  EXPECT_GT(estimate->point, 0.4);
  EXPECT_LT(estimate->point, 1.0);
}

TEST(PerformancePredictorTest, TrainFromStatisticsValidation) {
  common::Rng rng(8);
  PerformancePredictor predictor(FastOptions());
  EXPECT_FALSE(predictor.TrainFromStatistics({}, {}, 0.8, rng).ok());
  EXPECT_FALSE(
      predictor.TrainFromStatistics({{1.0, 2.0}}, {0.5, 0.6}, 0.8, rng).ok());
  ASSERT_TRUE(predictor
                  .TrainFromStatistics({{1.0, 2.0}, {2.0, 3.0}, {3.0, 4.0}},
                                       {0.5, 0.6, 0.7}, 0.8, rng)
                  .ok());
  EXPECT_TRUE(predictor.trained());
  EXPECT_DOUBLE_EQ(predictor.test_score(), 0.8);
}

}  // namespace
}  // namespace bbv::core
