// Property-based sweeps for the statistics substrate: percentile results
// must match a naive reference implementation on every distribution shape,
// hypothesis tests must respect their symmetry/calibration properties, and
// ranking metrics must obey their algebraic identities.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"
#include "ml/metrics.h"
#include "stats/descriptive.h"
#include "stats/hypothesis.h"

namespace bbv::stats {
namespace {

/// Distribution generators the properties are swept over.
struct DistributionCase {
  std::string name;
  double (*sample)(common::Rng&);
};

double SampleUniform(common::Rng& rng) { return rng.Uniform(); }
double SampleGaussian(common::Rng& rng) { return rng.Gaussian(); }
double SampleHeavyTail(common::Rng& rng) {
  const double u = rng.Uniform(0.02, 1.0);
  return 1.0 / u;  // Pareto-ish
}
double SampleBimodal(common::Rng& rng) {
  return rng.Bernoulli(0.5) ? rng.Gaussian(-3.0, 0.5) : rng.Gaussian(3.0, 0.5);
}
double SampleDiscrete(common::Rng& rng) {
  return static_cast<double>(rng.UniformInt(size_t{5}));
}
double SampleConstant(common::Rng&) { return 7.0; }

std::vector<DistributionCase> Distributions() {
  return {{"uniform", SampleUniform},   {"gaussian", SampleGaussian},
          {"heavy_tail", SampleHeavyTail}, {"bimodal", SampleBimodal},
          {"discrete", SampleDiscrete}, {"constant", SampleConstant}};
}

/// Naive percentile reference: sort and linearly interpolate.
double ReferencePercentile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  const double position = q / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lower = static_cast<size_t>(std::floor(position));
  const size_t upper = static_cast<size_t>(std::ceil(position));
  const double weight = position - static_cast<double>(lower);
  return values[lower] * (1.0 - weight) + values[upper] * weight;
}

class DistributionSuite : public ::testing::TestWithParam<DistributionCase> {
};

TEST_P(DistributionSuite, PercentilesMatchNaiveReference) {
  common::Rng rng(101);
  for (size_t n : {1u, 2u, 3u, 10u, 101u, 1000u}) {
    std::vector<double> values(n);
    for (double& v : values) v = GetParam().sample(rng);
    for (double q : {0.0, 1.0, 33.3, 50.0, 90.0, 99.0, 100.0}) {
      EXPECT_NEAR(Percentile(values, q), ReferencePercentile(values, q),
                  1e-9)
          << GetParam().name << " n=" << n << " q=" << q;
    }
  }
}

TEST_P(DistributionSuite, PercentileBoundsAndMonotonicity) {
  common::Rng rng(103);
  std::vector<double> values(257);
  for (double& v : values) v = GetParam().sample(rng);
  const double low = *std::min_element(values.begin(), values.end());
  const double high = *std::max_element(values.begin(), values.end());
  double previous = low;
  for (int q = 0; q <= 100; q += 2) {
    const double p = Percentile(values, q);
    EXPECT_GE(p, low);
    EXPECT_LE(p, high);
    EXPECT_GE(p, previous - 1e-12);
    previous = p;
  }
}

TEST_P(DistributionSuite, KsStatisticIsSymmetric) {
  common::Rng rng(107);
  std::vector<double> a(200);
  std::vector<double> b(150);
  for (double& v : a) v = GetParam().sample(rng);
  for (double& v : b) v = GetParam().sample(rng);
  const TestResult ab = TwoSampleKsTest(a, b);
  const TestResult ba = TwoSampleKsTest(b, a);
  EXPECT_NEAR(ab.statistic, ba.statistic, 1e-12) << GetParam().name;
  EXPECT_NEAR(ab.p_value, ba.p_value, 1e-12) << GetParam().name;
}

TEST_P(DistributionSuite, KsStatisticInUnitInterval) {
  common::Rng rng(109);
  std::vector<double> a(64);
  std::vector<double> b(48);
  for (double& v : a) v = GetParam().sample(rng);
  for (double& v : b) v = GetParam().sample(rng);
  const TestResult result = TwoSampleKsTest(a, b);
  EXPECT_GE(result.statistic, 0.0);
  EXPECT_LE(result.statistic, 1.0);
  EXPECT_GE(result.p_value, 0.0);
  EXPECT_LE(result.p_value, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllDistributions, DistributionSuite,
    ::testing::ValuesIn(Distributions()),
    [](const ::testing::TestParamInfo<DistributionCase>& param_info) {
      return param_info.param.name;
    });

TEST(KsCalibrationTest, NullPValuesAreRoughlyUniform) {
  // Under H0 (same distribution), p-values should be ~Uniform(0,1):
  // the fraction below 0.2 should be near 0.2.
  common::Rng rng(113);
  int below = 0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> a(120);
    std::vector<double> b(120);
    for (double& v : a) v = rng.Gaussian();
    for (double& v : b) v = rng.Gaussian();
    if (TwoSampleKsTest(a, b).p_value < 0.2) ++below;
  }
  EXPECT_NEAR(static_cast<double>(below) / trials, 0.2, 0.08);
}

TEST(ChiSquaredPropertyTest, HomogeneityIsSymmetric) {
  common::Rng rng(127);
  for (int t = 0; t < 20; ++t) {
    std::vector<double> a(4);
    std::vector<double> b(4);
    for (double& v : a) v = static_cast<double>(rng.UniformInt(size_t{50}) + 1);
    for (double& v : b) v = static_cast<double>(rng.UniformInt(size_t{50}) + 1);
    const TestResult ab = ChiSquaredHomogeneityTest(a, b);
    const TestResult ba = ChiSquaredHomogeneityTest(b, a);
    EXPECT_NEAR(ab.statistic, ba.statistic, 1e-9);
    EXPECT_NEAR(ab.p_value, ba.p_value, 1e-9);
  }
}

TEST(ChiSquaredPropertyTest, StatisticGrowsWithImbalance) {
  double previous = 0.0;
  for (double shift : {0.0, 10.0, 20.0, 40.0}) {
    const TestResult result = ChiSquaredHomogeneityTest(
        {100.0 + shift, 100.0 - shift}, {100.0, 100.0});
    EXPECT_GE(result.statistic, previous);
    previous = result.statistic;
  }
}

TEST(AucPropertyTest, NegatedScoresComplementToOne) {
  common::Rng rng(131);
  for (int t = 0; t < 10; ++t) {
    std::vector<double> scores(100);
    std::vector<int> labels(100);
    for (size_t i = 0; i < 100; ++i) {
      scores[i] = rng.Gaussian();
      labels[i] = static_cast<int>(i % 2);
    }
    std::vector<double> negated(100);
    for (size_t i = 0; i < 100; ++i) negated[i] = -scores[i];
    EXPECT_NEAR(ml::RocAuc(scores, labels) + ml::RocAuc(negated, labels),
                1.0, 1e-9);
  }
}

TEST(MaePropertyTest, TriangleBound) {
  // MAE(a, c) <= MAE(a, b) + MAE(b, c).
  common::Rng rng(137);
  std::vector<double> a(50);
  std::vector<double> b(50);
  std::vector<double> c(50);
  for (size_t i = 0; i < 50; ++i) {
    a[i] = rng.Gaussian();
    b[i] = rng.Gaussian();
    c[i] = rng.Gaussian();
  }
  EXPECT_LE(MeanAbsoluteError(a, c),
            MeanAbsoluteError(a, b) + MeanAbsoluteError(b, c) + 1e-12);
}

}  // namespace
}  // namespace bbv::stats
