#include "linalg/matrix.h"

#include <gtest/gtest.h>

#include <cmath>

namespace bbv::linalg {
namespace {

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(MatrixTest, ZeroInitialized) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(m.At(i, j), 0.0);
    }
  }
}

TEST(MatrixTest, FromRowsAndAccessors) {
  const Matrix m = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m.At(1, 0), 3.0);
  EXPECT_EQ(m.Row(2), (std::vector<double>{5, 6}));
  EXPECT_EQ(m.Col(1), (std::vector<double>{2, 4, 6}));
}

TEST(MatrixTest, ColumnVector) {
  const Matrix m = Matrix::ColumnVector({1, 2, 3});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 1u);
  EXPECT_DOUBLE_EQ(m.At(2, 0), 3.0);
}

TEST(MatrixTest, IdentityMatMulIsIdentityOperation) {
  const Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  const Matrix product = a.MatMul(Matrix::Identity(2));
  EXPECT_DOUBLE_EQ(product.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(product.At(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(product.At(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(product.At(1, 1), 4.0);
}

TEST(MatrixTest, MatMulKnownProduct) {
  const Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  const Matrix b = Matrix::FromRows({{7, 8}, {9, 10}, {11, 12}});
  const Matrix c = a.MatMul(b);
  EXPECT_EQ(c.rows(), 2u);
  EXPECT_EQ(c.cols(), 2u);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 154.0);
}

TEST(MatrixTest, TransposedSwapsShape) {
  const Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  const Matrix t = a.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t.At(2, 1), 6.0);
}

TEST(MatrixTest, AddSubScale) {
  const Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::FromRows({{10, 20}, {30, 40}});
  EXPECT_DOUBLE_EQ(a.Add(b).At(1, 1), 44.0);
  EXPECT_DOUBLE_EQ(b.Sub(a).At(0, 0), 9.0);
  EXPECT_DOUBLE_EQ(a.Scaled(2.0).At(1, 0), 6.0);
}

TEST(MatrixTest, AddInPlaceWithFactor) {
  Matrix a = Matrix::FromRows({{1, 1}});
  a.AddInPlace(Matrix::FromRows({{2, 3}}), -1.0);
  EXPECT_DOUBLE_EQ(a.At(0, 0), -1.0);
  EXPECT_DOUBLE_EQ(a.At(0, 1), -2.0);
}

TEST(MatrixTest, SelectRowsKeepsOrderAndAllowsRepeats) {
  const Matrix a = Matrix::FromRows({{1, 1}, {2, 2}, {3, 3}});
  const Matrix s = a.SelectRows({2, 0, 2});
  EXPECT_EQ(s.rows(), 3u);
  EXPECT_DOUBLE_EQ(s.At(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(s.At(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(s.At(2, 0), 3.0);
}

TEST(MatrixTest, AppendRowsGrowsMatrix) {
  Matrix a = Matrix::FromRows({{1, 2}});
  a.AppendRows(Matrix::FromRows({{3, 4}, {5, 6}}));
  EXPECT_EQ(a.rows(), 3u);
  EXPECT_DOUBLE_EQ(a.At(2, 1), 6.0);
}

TEST(MatrixTest, AppendRowsToEmptyAdoptsShape) {
  Matrix a;
  a.AppendRows(Matrix::FromRows({{1, 2, 3}}));
  EXPECT_EQ(a.rows(), 1u);
  EXPECT_EQ(a.cols(), 3u);
}

TEST(MatrixTest, ArgMaxAndMaxPerRow) {
  const Matrix a = Matrix::FromRows({{0.1, 0.9}, {0.8, 0.2}, {0.5, 0.5}});
  const std::vector<size_t> argmax = a.ArgMaxPerRow();
  EXPECT_EQ(argmax[0], 1u);
  EXPECT_EQ(argmax[1], 0u);
  EXPECT_EQ(argmax[2], 0u);  // first maximum wins on ties
  const std::vector<double> max = a.MaxPerRow();
  EXPECT_DOUBLE_EQ(max[0], 0.9);
  EXPECT_DOUBLE_EQ(max[1], 0.8);
}

TEST(SoftmaxTest, RowsSumToOne) {
  const Matrix logits = Matrix::FromRows({{1.0, 2.0, 3.0}, {-5.0, 0.0, 5.0}});
  const Matrix p = Softmax(logits);
  for (size_t i = 0; i < p.rows(); ++i) {
    double sum = 0.0;
    for (size_t j = 0; j < p.cols(); ++j) {
      EXPECT_GT(p.At(i, j), 0.0);
      sum += p.At(i, j);
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(SoftmaxTest, StableUnderLargeLogits) {
  const Matrix logits = Matrix::FromRows({{1000.0, 1001.0}});
  const Matrix p = Softmax(logits);
  EXPECT_FALSE(std::isnan(p.At(0, 0)));
  EXPECT_NEAR(p.At(0, 1), 1.0 / (1.0 + std::exp(-1.0)), 1e-9);
}

TEST(SoftmaxTest, ShiftInvariance) {
  const Matrix a = Softmax(Matrix::FromRows({{1.0, 2.0}}));
  const Matrix b = Softmax(Matrix::FromRows({{101.0, 102.0}}));
  EXPECT_NEAR(a.At(0, 0), b.At(0, 0), 1e-12);
}

TEST(VectorOpsTest, DotAndNorm) {
  EXPECT_DOUBLE_EQ(Dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_DOUBLE_EQ(Norm({3, 4}), 5.0);
}

}  // namespace
}  // namespace bbv::linalg
