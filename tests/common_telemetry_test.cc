#include "common/telemetry.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "core/monitor.h"
#include "core/performance_predictor.h"
#include "core/performance_validator.h"
#include "datasets/tabular.h"
#include "errors/numeric_errors.h"
#include "json_test_util.h"
#include "ml/black_box.h"
#include "ml/sgd_logistic_regression.h"

namespace bbv::common::telemetry {
namespace {

/// Saves and restores the process-wide enablement flag around a test.
class ScopedTelemetryEnabled {
 public:
  explicit ScopedTelemetryEnabled(bool enabled) : previous_(Enabled()) {
    SetEnabled(enabled);
  }
  ~ScopedTelemetryEnabled() { SetEnabled(previous_); }
  ScopedTelemetryEnabled(const ScopedTelemetryEnabled&) = delete;
  ScopedTelemetryEnabled& operator=(const ScopedTelemetryEnabled&) = delete;

 private:
  bool previous_;
};

TEST(TelemetryTest, ConcurrentCounterUpdatesAreExact) {
  const ScopedTelemetryEnabled scoped(true);
  Counter& counter = Registry::Global().counter("test.concurrent_counter");
  counter.Reset();
  Histogram& histogram =
      Registry::Global().histogram("test.concurrent_histogram");
  histogram.Reset();
  constexpr size_t kItems = 10000;
  // Hammer the same instruments from every pool worker; the final tallies
  // must be exact (this is the race-detection target for tsan runs).
  const Status status = ParallelFor(
      kItems,
      [&](size_t i) {
        counter.Increment();
        histogram.Record(static_cast<double>(i % 7) + 1.0);
        IncrementCounter("test.concurrent_helper", 2);
        return Status::OK();
      },
      {.threads = 8});
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(counter.value(), kItems);
  EXPECT_EQ(histogram.count(), kItems);
  EXPECT_EQ(ReadCounter("test.concurrent_helper"), 2 * kItems);
  EXPECT_DOUBLE_EQ(histogram.min(), 1.0);
  EXPECT_DOUBLE_EQ(histogram.max(), 7.0);
}

TEST(TelemetryTest, DisabledTelemetryIsInert) {
  const ScopedTelemetryEnabled scoped(false);
  const uint64_t before = ReadCounter("test.disabled_counter");
  IncrementCounter("test.disabled_counter");
  SetGauge("test.disabled_gauge", 42.0);
  RecordValue("test.disabled_histogram", 1.0);
  const TraceSpan span("test.disabled_span");
  EXPECT_EQ(span.ElapsedSeconds(), 0.0);
  EXPECT_EQ(ReadCounter("test.disabled_counter"), before);
}

TEST(TelemetryTest, TraceSpanRecordsIntoHistogram) {
  const ScopedTelemetryEnabled scoped(true);
  Histogram& histogram = Registry::Global().histogram("test.span_histogram");
  histogram.Reset();
  const uint64_t before = histogram.count();
  {
    const TraceSpan span("test.span_histogram");
    EXPECT_GE(span.ElapsedSeconds(), 0.0);
  }
  EXPECT_EQ(histogram.count(), before + 1);
  EXPECT_GT(histogram.total(), 0.0);
}

TEST(TelemetryTest, ApproxPercentileClampsToObservedRange) {
  const ScopedTelemetryEnabled scoped(true);
  Histogram& histogram = Registry::Global().histogram("test.percentiles");
  histogram.Reset();
  for (int i = 0; i < 100; ++i) histogram.Record(1.0);
  // All mass in one bucket: every percentile clamps to the exact value.
  EXPECT_DOUBLE_EQ(histogram.ApproxPercentile(50.0), 1.0);
  EXPECT_DOUBLE_EQ(histogram.ApproxPercentile(99.0), 1.0);
  EXPECT_DOUBLE_EQ(histogram.min(), 1.0);
  EXPECT_DOUBLE_EQ(histogram.max(), 1.0);
}

TEST(TelemetryTest, HistogramPercentilesAreOrderedAcrossBuckets) {
  const ScopedTelemetryEnabled scoped(true);
  Histogram& histogram = Registry::Global().histogram("test.octaves");
  histogram.Reset();
  for (int i = 0; i < 90; ++i) histogram.Record(0.001);
  for (int i = 0; i < 10; ++i) histogram.Record(8.0);
  const double p50 = histogram.ApproxPercentile(50.0);
  const double p95 = histogram.ApproxPercentile(95.0);
  EXPECT_LE(p50, p95);
  EXPECT_GE(p50, histogram.min());
  EXPECT_LE(p95, histogram.max());
}

TEST(TelemetryTest, RegistryJsonIsWellFormed) {
  const ScopedTelemetryEnabled scoped(true);
  IncrementCounter("test.json_counter", 3);
  SetGauge("test.json_gauge", 1.5);
  RecordValue("test.json_histogram", 0.25);
  const std::string json = Registry::Global().ToJson();
  EXPECT_TRUE(bbv::testing::JsonParses(json)) << json;
  for (const char* key : {"\"telemetry\"", "\"enabled\"", "\"counters\"",
                          "\"gauges\"", "\"histograms\"",
                          "\"test.json_counter\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  const std::string summary = Registry::Global().SummaryString();
  EXPECT_NE(summary.find("test.json_counter"), std::string::npos);
}

/// Trains predictor + validator + monitor on a small income fixture and
/// returns (serialized predictor bytes, estimate, validator verdicts, alarm
/// flags) — everything that must be byte-identical whether telemetry is on
/// or off.
struct PipelineOutputs {
  std::string predictor_bytes;
  double estimate = 0.0;
  std::vector<bool> verdicts;
  std::vector<bool> alarms;
};

PipelineOutputs RunPipeline() {
  common::Rng rng(17);
  data::Dataset dataset = datasets::MakeIncome(1200, rng);
  auto [source, serving] = data::TrainTestSplit(dataset, 0.7, rng);
  auto [train, test] = data::TrainTestSplit(source, 0.7, rng);
  ml::BlackBoxModel model(std::make_unique<ml::SgdLogisticRegression>());
  BBV_CHECK(model.Train(train, rng).ok());
  core::PerformancePredictor::Options options;
  options.corruptions_per_generator = 10;
  options.tree_count_grid = {10};
  core::PerformancePredictor predictor(options);
  const errors::NumericOutliers outliers;
  BBV_CHECK(predictor.Train(model, test, {&outliers}, rng).ok());

  PipelineOutputs outputs;
  std::ostringstream serialized;
  BBV_CHECK(predictor.Save(serialized).ok());
  outputs.predictor_bytes = serialized.str();

  core::PerformanceValidator::Options validator_options;
  validator_options.corruptions_per_generator = 10;
  validator_options.predictor.tree_count_grid = {10};
  validator_options.gbdt.num_rounds = 10;
  core::PerformanceValidator validator(validator_options);
  BBV_CHECK(validator.Train(model, test, {&outliers}, rng).ok());

  core::ModelMonitor monitor(&model, predictor);
  const errors::Scaling severe({}, errors::FractionRange{0.95, 1.0},
                               {1000.0});
  for (int i = 0; i < 3; ++i) {
    const auto corrupted =
        severe.Corrupt(serving.features, rng).ValueOrDie();
    const auto proba = model.PredictProba(corrupted).ValueOrDie();
    outputs.verdicts.push_back(
        validator.ValidateFromProba(proba).ValueOrDie());
    const auto report = monitor.Observe(proba).ValueOrDie();
    outputs.alarms.push_back(report.alarm);
    outputs.estimate = report.estimate.point;
  }
  return outputs;
}

TEST(TelemetryTest, PipelineOutputsAreIdenticalWithTelemetryOnAndOff) {
  PipelineOutputs with_telemetry;
  {
    const ScopedTelemetryEnabled scoped(true);
    with_telemetry = RunPipeline();
  }
  PipelineOutputs without_telemetry;
  {
    const ScopedTelemetryEnabled scoped(false);
    without_telemetry = RunPipeline();
  }
  // Telemetry is observation-only: the serialized model, every estimate and
  // every alarm decision must be byte-identical either way.
  EXPECT_EQ(with_telemetry.predictor_bytes,
            without_telemetry.predictor_bytes);
  EXPECT_EQ(with_telemetry.estimate, without_telemetry.estimate);
  EXPECT_EQ(with_telemetry.verdicts, without_telemetry.verdicts);
  EXPECT_EQ(with_telemetry.alarms, without_telemetry.alarms);
}

}  // namespace
}  // namespace bbv::common::telemetry
