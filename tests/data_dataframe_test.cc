#include "data/dataframe.h"

#include <gtest/gtest.h>

#include "data/cell_value.h"
#include "data/column.h"

namespace bbv::data {
namespace {

DataFrame MakeToyFrame() {
  DataFrame frame;
  BBV_CHECK(frame.AddColumn(Column::Numeric("age", {20, 30, 40})).ok());
  BBV_CHECK(
      frame.AddColumn(Column::Categorical("job", {"a", "b", "a"})).ok());
  return frame;
}

// ---------------------------------------------------------------------------
// CellValue
// ---------------------------------------------------------------------------

TEST(CellValueTest, NaByDefault) {
  CellValue cell;
  EXPECT_TRUE(cell.is_na());
  EXPECT_FALSE(cell.is_numeric());
  EXPECT_EQ(cell.ToString(), "NA");
}

TEST(CellValueTest, NumericCell) {
  CellValue cell(3.5);
  EXPECT_TRUE(cell.is_numeric());
  EXPECT_DOUBLE_EQ(cell.AsDouble(), 3.5);
}

TEST(CellValueTest, StringCell) {
  CellValue cell("hello");
  EXPECT_TRUE(cell.is_string());
  EXPECT_EQ(cell.AsString(), "hello");
  EXPECT_EQ(cell.ToString(), "hello");
}

TEST(CellValueTest, ImageCell) {
  CellValue cell(std::vector<double>{0.0, 0.5, 1.0});
  EXPECT_TRUE(cell.is_image());
  EXPECT_EQ(cell.AsImage().size(), 3u);
  EXPECT_EQ(cell.ToString(), "<image:3>");
}

TEST(CellValueTest, EqualityBetweenKinds) {
  EXPECT_EQ(CellValue::Na(), CellValue::Na());
  EXPECT_EQ(CellValue(1.0), CellValue(1.0));
  EXPECT_FALSE(CellValue(1.0) == CellValue(2.0));
  EXPECT_FALSE(CellValue(1.0) == CellValue("1.0"));
  EXPECT_FALSE(CellValue::Na() == CellValue(0.0));
}

// ---------------------------------------------------------------------------
// Column
// ---------------------------------------------------------------------------

TEST(ColumnTest, TypeNames) {
  EXPECT_STREQ(ColumnTypeToString(ColumnType::kNumeric), "numeric");
  EXPECT_STREQ(ColumnTypeToString(ColumnType::kCategorical), "categorical");
  EXPECT_STREQ(ColumnTypeToString(ColumnType::kText), "text");
  EXPECT_STREQ(ColumnTypeToString(ColumnType::kImage), "image");
}

TEST(ColumnTest, NumericFactoryAndValues) {
  Column column = Column::Numeric("x", {1.0, 2.0});
  EXPECT_EQ(column.type(), ColumnType::kNumeric);
  EXPECT_EQ(column.size(), 2u);
  EXPECT_EQ(column.NumericValues(), (std::vector<double>{1.0, 2.0}));
}

TEST(ColumnTest, NumericValuesSkipNa) {
  Column column = Column::Numeric("x", {1.0, 2.0});
  column.cell(0) = CellValue::Na();
  EXPECT_EQ(column.NumericValues(), (std::vector<double>{2.0}));
  EXPECT_EQ(column.CountNa(), 1u);
}

TEST(ColumnTest, DistinctStringsFirstSeenOrder) {
  const Column column =
      Column::Categorical("c", {"b", "a", "b", "c", "a"});
  EXPECT_EQ(column.DistinctStrings(),
            (std::vector<std::string>{"b", "a", "c"}));
}

TEST(ColumnTest, AppendGrows) {
  Column column("x", ColumnType::kNumeric);
  column.Append(CellValue(1.0));
  column.Append(CellValue::Na());
  EXPECT_EQ(column.size(), 2u);
  EXPECT_TRUE(column.cell(1).is_na());
}

// ---------------------------------------------------------------------------
// DataFrame
// ---------------------------------------------------------------------------

TEST(DataFrameTest, AddColumnAndShape) {
  const DataFrame frame = MakeToyFrame();
  EXPECT_EQ(frame.NumRows(), 3u);
  EXPECT_EQ(frame.NumCols(), 2u);
  EXPECT_TRUE(frame.HasColumn("age"));
  EXPECT_FALSE(frame.HasColumn("salary"));
}

TEST(DataFrameTest, DuplicateColumnRejected) {
  DataFrame frame = MakeToyFrame();
  const auto status = frame.AddColumn(Column::Numeric("age", {1, 2, 3}));
  EXPECT_EQ(status.code(), common::StatusCode::kAlreadyExists);
}

TEST(DataFrameTest, LengthMismatchRejected) {
  DataFrame frame = MakeToyFrame();
  const auto status = frame.AddColumn(Column::Numeric("extra", {1.0}));
  EXPECT_EQ(status.code(), common::StatusCode::kInvalidArgument);
}

TEST(DataFrameTest, ColumnLookup) {
  const DataFrame frame = MakeToyFrame();
  EXPECT_EQ(frame.ColumnIndex("job").value(), 1u);
  EXPECT_FALSE(frame.ColumnIndex("zzz").ok());
  EXPECT_EQ(frame.ColumnByName("age").cell(1).AsDouble(), 30.0);
}

TEST(DataFrameTest, ColumnNamesAndTypes) {
  const DataFrame frame = MakeToyFrame();
  EXPECT_EQ(frame.ColumnNames(), (std::vector<std::string>{"age", "job"}));
  EXPECT_EQ(frame.ColumnNamesOfType(ColumnType::kNumeric),
            (std::vector<std::string>{"age"}));
  EXPECT_TRUE(frame.ColumnNamesOfType(ColumnType::kText).empty());
}

TEST(DataFrameTest, SelectRows) {
  const DataFrame frame = MakeToyFrame();
  const DataFrame subset = frame.SelectRows({2, 0});
  EXPECT_EQ(subset.NumRows(), 2u);
  EXPECT_DOUBLE_EQ(subset.ColumnByName("age").cell(0).AsDouble(), 40.0);
  EXPECT_EQ(subset.ColumnByName("job").cell(1).AsString(), "a");
}

TEST(DataFrameTest, SelectColumns) {
  const DataFrame frame = MakeToyFrame();
  const auto subset = frame.SelectColumns({"job"});
  ASSERT_TRUE(subset.ok());
  EXPECT_EQ(subset->NumCols(), 1u);
  EXPECT_FALSE(frame.SelectColumns({"missing"}).ok());
}

TEST(DataFrameTest, AppendRowsMatchingSchema) {
  DataFrame frame = MakeToyFrame();
  ASSERT_TRUE(frame.AppendRows(MakeToyFrame()).ok());
  EXPECT_EQ(frame.NumRows(), 6u);
}

TEST(DataFrameTest, AppendRowsSchemaMismatchRejected) {
  DataFrame frame = MakeToyFrame();
  DataFrame other;
  BBV_CHECK(other.AddColumn(Column::Numeric("age", {1, 2})).ok());
  EXPECT_FALSE(frame.AppendRows(other).ok());
  DataFrame renamed;
  BBV_CHECK(renamed.AddColumn(Column::Numeric("years", {1.0})).ok());
  BBV_CHECK(renamed.AddColumn(Column::Categorical("job", {"x"})).ok());
  EXPECT_FALSE(frame.AppendRows(renamed).ok());
}

TEST(DataFrameTest, SchemaStringAndHead) {
  const DataFrame frame = MakeToyFrame();
  EXPECT_EQ(frame.SchemaString(), "age:numeric, job:categorical");
  const std::string head = frame.Head(2);
  EXPECT_NE(head.find("20"), std::string::npos);
  EXPECT_NE(head.find("more rows"), std::string::npos);
}

TEST(DataFrameTest, DeepCopySemantics) {
  DataFrame frame = MakeToyFrame();
  DataFrame copy = frame;
  copy.ColumnByName("age").cell(0) = CellValue(99.0);
  EXPECT_DOUBLE_EQ(frame.ColumnByName("age").cell(0).AsDouble(), 20.0);
  EXPECT_DOUBLE_EQ(copy.ColumnByName("age").cell(0).AsDouble(), 99.0);
}

}  // namespace
}  // namespace bbv::data
