// Tests for the deterministic parallel execution subsystem: ParallelFor /
// ParallelMap correctness, lowest-index error and exception reporting,
// nested-section serialization, and the BBV_THREADS override.

#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.h"

namespace bbv::common {
namespace {

/// Sets BBV_THREADS for one scope and restores the previous value after.
class ScopedThreadsEnv {
 public:
  explicit ScopedThreadsEnv(const char* value) {
    const char* previous = std::getenv("BBV_THREADS");
    had_previous_ = previous != nullptr;
    if (had_previous_) previous_ = previous;
    if (value == nullptr) {
      ::unsetenv("BBV_THREADS");
    } else {
      ::setenv("BBV_THREADS", value, 1);
    }
  }
  ~ScopedThreadsEnv() {
    if (had_previous_) {
      ::setenv("BBV_THREADS", previous_.c_str(), 1);
    } else {
      ::unsetenv("BBV_THREADS");
    }
  }
  ScopedThreadsEnv(const ScopedThreadsEnv&) = delete;
  ScopedThreadsEnv& operator=(const ScopedThreadsEnv&) = delete;

 private:
  bool had_previous_ = false;
  std::string previous_;
};

TEST(ConfiguredThreadCountTest, HonorsEnvOverride) {
  ScopedThreadsEnv env("3");
  EXPECT_EQ(ConfiguredThreadCount(), 3);
}

TEST(ConfiguredThreadCountTest, IgnoresGarbageAndNonPositiveValues) {
  {
    ScopedThreadsEnv env("0");
    EXPECT_GE(ConfiguredThreadCount(), 1);
  }
  {
    ScopedThreadsEnv env("-4");
    EXPECT_GE(ConfiguredThreadCount(), 1);
  }
  {
    ScopedThreadsEnv env("soup");
    EXPECT_GE(ConfiguredThreadCount(), 1);
  }
}

TEST(ConfiguredThreadCountTest, IsReReadOnEveryCall) {
  ScopedThreadsEnv first("2");
  EXPECT_EQ(ConfiguredThreadCount(), 2);
  ScopedThreadsEnv second("5");
  EXPECT_EQ(ConfiguredThreadCount(), 5);
}

TEST(ParallelForTest, RunsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    const size_t n = 257;  // deliberately not a multiple of the chunk grid
    std::vector<std::atomic<int>> counts(n);
    const Status status = ParallelFor(
        n,
        [&](size_t i) {
          counts[i].fetch_add(1, std::memory_order_relaxed);
          return Status::OK();
        },
        {.threads = threads});
    ASSERT_TRUE(status.ok()) << status;
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(counts[i].load(), 1) << "index " << i << " at " << threads
                                     << " threads";
    }
  }
}

TEST(ParallelForTest, ZeroItemsIsOk) {
  bool ran = false;
  const Status status = ParallelFor(0, [&](size_t) {
    ran = true;
    return Status::OK();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_FALSE(ran);
}

TEST(ParallelForTest, ReportsLowestFailingIndex) {
  for (int threads : {1, 4}) {
    const Status status = ParallelFor(
        100,
        [](size_t i) -> Status {
          if (i == 97) return Status::Internal("97");
          if (i == 13) return Status::InvalidArgument("13");
          if (i == 55) return Status::Internal("55");
          return Status::OK();
        },
        {.threads = threads});
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(status.message(), "13");
  }
}

TEST(ParallelForTest, EveryIndexRunsEvenAfterAFailure) {
  for (int threads : {1, 4}) {
    const size_t n = 64;
    std::vector<std::atomic<int>> counts(n);
    const Status status = ParallelFor(
        n,
        [&](size_t i) -> Status {
          counts[i].fetch_add(1, std::memory_order_relaxed);
          if (i == 0) return Status::Internal("early");
          return Status::OK();
        },
        {.threads = threads});
    EXPECT_FALSE(status.ok());
    int total = 0;
    for (size_t i = 0; i < n; ++i) total += counts[i].load();
    EXPECT_EQ(total, static_cast<int>(n));
  }
}

TEST(ParallelForTest, RethrowsLowestIndexException) {
  for (int threads : {1, 4}) {
    try {
      const Status status = ParallelFor(
          50,
          [](size_t i) -> Status {
            if (i == 40) throw std::runtime_error("40");
            if (i == 7) throw std::runtime_error("7");
            return Status::OK();
          },
          {.threads = threads});
      FAIL() << "expected a rethrown exception, got " << status;
    } catch (const std::runtime_error& error) {
      EXPECT_STREQ(error.what(), "7");
    }
  }
}

TEST(ParallelForTest, NestedSectionsRunSerially) {
  // A body that itself calls ParallelFor must not deadlock on the shared
  // pool; the inner section degrades to the serial loop.
  std::vector<std::atomic<int>> counts(16 * 16);
  const Status status = ParallelFor(
      16,
      [&](size_t outer) {
        return ParallelFor(
            16,
            [&](size_t inner) {
              counts[outer * 16 + inner].fetch_add(1,
                                                   std::memory_order_relaxed);
              return Status::OK();
            },
            {.threads = 8});
      },
      {.threads = 8});
  ASSERT_TRUE(status.ok()) << status;
  for (const auto& count : counts) EXPECT_EQ(count.load(), 1);
}

TEST(ParallelForTest, MinItemsPerThreadShrinksTinySections) {
  // 4 items with min 512 per thread must use the serial path: the body can
  // then mutate shared state without atomics and still be well defined.
  size_t serial_sum = 0;
  const Status status = ParallelFor(
      4,
      [&](size_t i) {
        serial_sum += i;  // safe only if single-threaded
        return Status::OK();
      },
      {.threads = 8, .min_items_per_thread = 512});
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(serial_sum, 6u);
}

TEST(ParallelForTest, UsesEnvThreadCountByDefault) {
  ScopedThreadsEnv env("1");
  // With BBV_THREADS=1 the default options take the serial path; unguarded
  // shared mutation is then well defined.
  size_t sum = 0;
  const Status status = ParallelFor(100, [&](size_t i) {
    sum += i;
    return Status::OK();
  });
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(sum, 4950u);
}

TEST(ParallelMapTest, ReturnsValuesInIndexOrder) {
  for (int threads : {1, 2, 8}) {
    const Result<std::vector<size_t>> result = ParallelMap<size_t>(
        100, [](size_t i) -> Result<size_t> { return i * i; },
        {.threads = threads});
    ASSERT_TRUE(result.ok()) << result.status();
    ASSERT_EQ(result.value().size(), 100u);
    for (size_t i = 0; i < 100; ++i) EXPECT_EQ(result.value()[i], i * i);
  }
}

TEST(ParallelMapTest, PropagatesLowestIndexError) {
  const Result<std::vector<int>> result = ParallelMap<int>(
      30,
      [](size_t i) -> Result<int> {
        if (i >= 10) return Status::OutOfRange("index " + std::to_string(i));
        return static_cast<int>(i);
      },
      {.threads = 4});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(result.status().message(), "index 10");
}

TEST(ParallelMapTest, WorksWithNonDefaultConstructibleValues) {
  struct Opaque {
    explicit Opaque(size_t v) : value(v) {}
    size_t value;
  };
  const Result<std::vector<Opaque>> result = ParallelMap<Opaque>(
      8, [](size_t i) -> Result<Opaque> { return Opaque(i + 1); },
      {.threads = 4});
  ASSERT_TRUE(result.ok()) << result.status();
  for (size_t i = 0; i < 8; ++i) EXPECT_EQ(result.value()[i].value, i + 1);
}

TEST(ParallelDeterminismTest, PreForkedStreamsMatchAcrossThreadCounts) {
  // The canonical usage pattern: fork one stream per task before dispatch,
  // each task draws only from its own stream. The gathered draws must be
  // bit-identical at every thread count.
  auto draws_at = [](int threads) {
    Rng rng(1234);
    std::vector<Rng> streams = rng.ForkStreams(64);
    std::vector<uint64_t> draws(64);
    const Status status = ParallelFor(
        64,
        [&](size_t i) {
          draws[i] = streams[i].NextUint64();
          return Status::OK();
        },
        {.threads = threads});
    BBV_CHECK(status.ok()) << status;
    return draws;
  };
  const std::vector<uint64_t> serial = draws_at(1);
  EXPECT_EQ(draws_at(2), serial);
  EXPECT_EQ(draws_at(8), serial);
}

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    EXPECT_EQ(pool.num_workers(), 2);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // the destructor drains the queue and joins the workers
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPoolTest, EnsureWorkersGrowsButNeverShrinks) {
  ThreadPool pool(1);
  pool.EnsureWorkers(3);
  EXPECT_EQ(pool.num_workers(), 3);
  pool.EnsureWorkers(2);
  EXPECT_EQ(pool.num_workers(), 3);
}

TEST(ThreadPoolTest, CallerThreadIsNotAWorker) {
  EXPECT_FALSE(ThreadPool::OnWorkerThread());
}

}  // namespace
}  // namespace bbv::common
