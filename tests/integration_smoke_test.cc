// End-to-end smoke test: generate a dataset, train a black box model, train
// the performance predictor on corrupted test data (Algorithm 1), and check
// that score estimates on corrupted serving data (Algorithm 2) are close to
// the true scores. This is the full pipeline from the paper's Figure 1.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/performance_predictor.h"
#include "core/performance_validator.h"
#include "data/dataset.h"
#include "datasets/tabular.h"
#include "errors/missing_values.h"
#include "errors/numeric_errors.h"
#include "ml/black_box.h"
#include "ml/sgd_logistic_regression.h"

namespace bbv {
namespace {

TEST(IntegrationSmokeTest, PredictorEstimatesScoresUnderCorruption) {
  common::Rng rng(7);
  data::Dataset dataset = datasets::MakeIncome(3000, rng);
  dataset = data::BalanceClasses(dataset, rng);

  // Source/serving split, then train/test split of the source data.
  data::DatasetSplit source_serving = TrainTestSplit(dataset, 0.7, rng);
  data::DatasetSplit train_test =
      TrainTestSplit(source_serving.first, 0.7, rng);

  ml::BlackBoxModel model(std::make_unique<ml::SgdLogisticRegression>());
  ASSERT_TRUE(model.Train(train_test.first, rng).ok());
  auto clean_accuracy = model.ScoreAccuracy(train_test.second);
  ASSERT_TRUE(clean_accuracy.ok());
  // The synthetic income task must be realistically learnable.
  EXPECT_GT(*clean_accuracy, 0.70);
  EXPECT_LT(*clean_accuracy, 0.99);

  errors::MissingValues missing;
  errors::NumericOutliers outliers;
  std::vector<const errors::ErrorGen*> generators = {&missing, &outliers};

  core::PerformancePredictor::Options options;
  options.corruptions_per_generator = 40;
  core::PerformancePredictor predictor(options);
  ASSERT_TRUE(
      predictor.Train(model, train_test.second, generators, rng).ok());
  EXPECT_GT(predictor.num_training_examples(), 80u);

  // Evaluate on corrupted serving data with fresh random magnitudes.
  std::vector<double> absolute_errors;
  for (int round = 0; round < 10; ++round) {
    auto corrupted = round % 2 == 0
                         ? missing.Corrupt(source_serving.second.features, rng)
                         : outliers.Corrupt(source_serving.second.features, rng);
    ASSERT_TRUE(corrupted.ok());
    auto probabilities = model.PredictProba(*corrupted);
    ASSERT_TRUE(probabilities.ok());
    const double true_score = core::ComputeScore(
        core::ScoreMetric::kAccuracy, *probabilities,
        source_serving.second.labels);
    auto estimate = predictor.EstimateScoreFromProba(*probabilities);
    ASSERT_TRUE(estimate.ok());
    absolute_errors.push_back(std::abs(estimate->point - true_score));
  }
  double mean_error = 0.0;
  for (double e : absolute_errors) mean_error += e;
  mean_error /= static_cast<double>(absolute_errors.size());
  // The paper reports median absolute errors around 0.01; we allow headroom
  // for the smaller smoke-test scale.
  EXPECT_LT(mean_error, 0.06) << "predictor is not tracking true scores";
}

TEST(IntegrationSmokeTest, ValidatorRaisesAlarmsOnSevereCorruption) {
  common::Rng rng(11);
  data::Dataset dataset = datasets::MakeHeart(2500, rng);
  dataset = data::BalanceClasses(dataset, rng);
  data::DatasetSplit source_serving = TrainTestSplit(dataset, 0.7, rng);
  data::DatasetSplit train_test =
      TrainTestSplit(source_serving.first, 0.7, rng);

  ml::BlackBoxModel model(std::make_unique<ml::SgdLogisticRegression>());
  ASSERT_TRUE(model.Train(train_test.first, rng).ok());

  errors::MissingValues missing;
  errors::NumericOutliers outliers;
  std::vector<const errors::ErrorGen*> generators = {&missing, &outliers};

  core::PerformanceValidator::Options options;
  options.threshold = 0.10;
  options.corruptions_per_generator = 40;
  core::PerformanceValidator validator(options);
  ASSERT_TRUE(
      validator.Train(model, train_test.second, generators, rng).ok());

  // Clean serving data should be accepted.
  auto clean_decision = validator.Validate(
      model, source_serving.second.features);
  ASSERT_TRUE(clean_decision.ok());
  EXPECT_TRUE(*clean_decision);

  // Severely corrupted serving data (all numeric cells turned into heavy
  // outliers) should raise an alarm in most repetitions.
  errors::NumericOutliers severe({}, errors::FractionRange{0.9, 1.0},
                                 /*min_scale=*/8.0, /*max_scale=*/10.0);
  int alarms = 0;
  for (int round = 0; round < 5; ++round) {
    auto corrupted = severe.Corrupt(source_serving.second.features, rng);
    ASSERT_TRUE(corrupted.ok());
    auto decision = validator.Validate(model, *corrupted);
    ASSERT_TRUE(decision.ok());
    if (!*decision) ++alarms;
  }
  EXPECT_GE(alarms, 3);
}

}  // namespace
}  // namespace bbv
