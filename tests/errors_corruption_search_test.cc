// Tests for the adversarial corruption search: spec round-trips, composed
// generator semantics, determinism across thread counts, the
// search-beats-random-sweep acceptance property, and replay of the
// committed adversarial fixtures (tests/fixtures/adversarial/) against a
// freshly trained performance predictor.
//
// Regenerating the fixtures: the committed compositions are the top
// findings of the search against the small income setup below. After a
// deliberate change to the search, the predictor or the generators, run
//   BBV_REGEN_ADVERSARIAL_FIXTURES=1 ./errors_corruption_search_test
//     --gtest_filter='*FixtureReplay*'   (one command line)
// from the build tree and commit the rewritten fixture file.

#include "errors/corruption_search.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/performance_predictor.h"
#include "data/dataset.h"
#include "datasets/tabular.h"
#include "errors/composed_error_gen.h"
#include "errors/missing_values.h"
#include "errors/numeric_errors.h"
#include "ml/black_box.h"
#include "ml/sgd_logistic_regression.h"

namespace bbv::errors {
namespace {

constexpr const char* kFixturePath =
    BBV_TEST_SOURCE_DIR "/fixtures/adversarial/income_compositions.txt";

/// Sets BBV_THREADS for one scope (same idiom as core_determinism_test).
class ScopedThreadsEnv {
 public:
  explicit ScopedThreadsEnv(const char* value) {
    const char* previous = std::getenv("BBV_THREADS");
    had_previous_ = previous != nullptr;
    if (had_previous_) previous_ = previous;
    ::setenv("BBV_THREADS", value, 1);
  }
  ~ScopedThreadsEnv() {
    if (had_previous_) {
      ::setenv("BBV_THREADS", previous_.c_str(), 1);
    } else {
      ::unsetenv("BBV_THREADS");
    }
  }
  ScopedThreadsEnv(const ScopedThreadsEnv&) = delete;
  ScopedThreadsEnv& operator=(const ScopedThreadsEnv&) = delete;

 private:
  bool had_previous_ = false;
  std::string previous_;
};

data::DataFrame MakeTabularFrame(size_t n, common::Rng& rng) {
  std::vector<double> x(n);
  std::vector<double> y(n);
  std::vector<std::string> c(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.Gaussian(10.0, 2.0);
    y[i] = rng.Gaussian(-5.0, 1.0);
    c[i] = i % 3 == 0 ? "red" : (i % 3 == 1 ? "green" : "blue");
  }
  data::DataFrame frame;
  BBV_CHECK(frame.AddColumn(data::Column::Numeric("x", x)).ok());
  BBV_CHECK(frame.AddColumn(data::Column::Numeric("y", y)).ok());
  BBV_CHECK(frame.AddColumn(data::Column::Categorical("color", c)).ok());
  return frame;
}

size_t CountDifferingCells(const data::DataFrame& a,
                           const data::DataFrame& b) {
  size_t count = 0;
  for (size_t col = 0; col < a.NumCols(); ++col) {
    for (size_t row = 0; row < a.NumRows(); ++row) {
      if (!(a.column(col).cell(row) == b.column(col).cell(row))) ++count;
    }
  }
  return count;
}

/// Synthetic objective for the search-property tests: "estimation error" is
/// the fraction of cells the composition corrupted. Deterministic,
/// monotone in severity and depth — the regime where an adversarial search
/// must beat random magnitudes.
CorruptionSearch::ErrorProbe DamageProbe(const data::DataFrame& base) {
  const double total =
      static_cast<double>(base.NumRows() * base.NumCols());
  return [&base, total](const data::DataFrame& corrupted)
             -> common::Result<CorruptionSearch::ProbeResult> {
    const double damage =
        static_cast<double>(CountDifferingCells(base, corrupted)) / total;
    return CorruptionSearch::ProbeResult{0.0, damage};
  };
}

CorruptionSearch::Options SmallOptions() {
  CorruptionSearch::Options options;
  options.initial_candidates = 16;
  options.probe_repetitions = 1;
  options.max_rounds = 2;
  options.max_depth = 3;
  options.seed = 7;
  return options;
}

// ---------------------------------------------------------------------------
// Spec serialization
// ---------------------------------------------------------------------------

TEST(CorruptionSpecTest, KeyParseRoundTrip) {
  CorruptionSpec spec;
  spec.atoms.push_back({"sign_flip", {"age"}, 1.0});
  spec.atoms.push_back({"typos", {"job", "state"}, 0.5});
  const std::string key = spec.Key();
  EXPECT_EQ(key, "sign_flip[age]@1.000000>typos[job,state]@0.500000");
  const auto parsed = ParseCorruptionSpec(key);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Key(), key);
  ASSERT_EQ(parsed->atoms.size(), 2u);
  EXPECT_EQ(parsed->atoms[1].columns,
            (std::vector<std::string>{"job", "state"}));
  EXPECT_DOUBLE_EQ(parsed->atoms[1].fraction, 0.5);
}

TEST(CorruptionSpecTest, ParseRejectsMalformedText) {
  EXPECT_FALSE(ParseCorruptionSpec("").ok());
  EXPECT_FALSE(ParseCorruptionSpec("sign_flip").ok());
  EXPECT_FALSE(ParseCorruptionSpec("sign_flip[age]").ok());
  EXPECT_FALSE(ParseCorruptionSpec("sign_flip[]@0.5").ok());
  EXPECT_FALSE(ParseCorruptionSpec("[age]@0.5").ok());
  EXPECT_FALSE(ParseCorruptionSpec("sign_flip[age]@").ok());
  EXPECT_FALSE(ParseCorruptionSpec("sign_flip[age]@1.5").ok());
  EXPECT_FALSE(ParseCorruptionSpec("sign_flip[age]@nope").ok());
  EXPECT_FALSE(ParseCorruptionSpec("sign_flip[age]@0.5>").ok());
  EXPECT_FALSE(ParseCorruptionSpec("sign_flip[a,]@0.5").ok());
}

// ---------------------------------------------------------------------------
// Composed generator
// ---------------------------------------------------------------------------

TEST(ComposedErrorGenTest, AppliesComponentsInOrder) {
  common::Rng data_rng(1);
  const data::DataFrame frame = MakeTabularFrame(60, data_rng);
  const ComposedErrorGen composed(
      {std::make_shared<MissingValues>(std::vector<std::string>{"color"},
                                       FractionRange{1.0, 1.0}),
       std::make_shared<Scaling>(std::vector<std::string>{"x"},
                                 FractionRange{1.0, 1.0},
                                 std::vector<double>{10.0})});
  EXPECT_EQ(composed.Depth(), 2u);
  EXPECT_EQ(composed.Name(), "compose(missing_values>scaling)");
  common::Rng rng(2);
  const auto corrupted = composed.Corrupt(frame, rng);
  ASSERT_TRUE(corrupted.ok()) << corrupted.status().ToString();
  EXPECT_EQ(corrupted->ColumnByName("color").CountNa(), 60u);
  for (size_t row = 0; row < frame.NumRows(); ++row) {
    EXPECT_NEAR(corrupted->ColumnByName("x").cell(row).AsDouble(),
                10.0 * frame.ColumnByName("x").cell(row).AsDouble(), 1e-9);
  }
}

TEST(ComposedErrorGenTest, PropagatesComponentFailure) {
  common::Rng data_rng(3);
  const data::DataFrame frame = MakeTabularFrame(10, data_rng);
  const ComposedErrorGen composed(
      {std::make_shared<MissingValues>(std::vector<std::string>{"nope"})});
  common::Rng rng(4);
  EXPECT_FALSE(composed.Corrupt(frame, rng).ok());
}

// ---------------------------------------------------------------------------
// Generator building and the atom pool
// ---------------------------------------------------------------------------

TEST(CorruptionSearchTest, BuildGeneratorValidatesSpecs) {
  CorruptionSpec unknown;
  unknown.atoms.push_back({"not_a_generator", {"x"}, 0.5});
  EXPECT_FALSE(CorruptionSearch::BuildGenerator(unknown).ok());

  CorruptionSpec bad_pair;
  bad_pair.atoms.push_back({"swapped_columns", {"color"}, 0.5});
  EXPECT_FALSE(CorruptionSearch::BuildGenerator(bad_pair).ok());

  CorruptionSpec bad_fraction;
  bad_fraction.atoms.push_back({"sign_flip", {"x"}, 1.5});
  EXPECT_FALSE(CorruptionSearch::BuildGenerator(bad_fraction).ok());

  EXPECT_FALSE(CorruptionSearch::BuildGenerator(CorruptionSpec{}).ok());
}

TEST(CorruptionSearchTest, BuiltGeneratorReplaysDeterministically) {
  common::Rng data_rng(5);
  const data::DataFrame frame = MakeTabularFrame(80, data_rng);
  const auto spec =
      ParseCorruptionSpec("sign_flip[x,y]@1.000000>typos[color]@0.500000");
  ASSERT_TRUE(spec.ok());
  const auto generator = CorruptionSearch::BuildGenerator(*spec);
  ASSERT_TRUE(generator.ok()) << generator.status().ToString();
  common::Rng rng_a(6);
  common::Rng rng_b(6);
  const auto a = (*generator)->Corrupt(frame, rng_a);
  const auto b = (*generator)->Corrupt(frame, rng_b);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_GT(CountDifferingCells(frame, *a), 0u);
  EXPECT_EQ(CountDifferingCells(*a, *b), 0u);
}

TEST(CorruptionSearchTest, AtomPoolCoversSchemaDeterministically) {
  common::Rng data_rng(7);
  const data::DataFrame frame = MakeTabularFrame(20, data_rng);
  const CorruptionSearch search(SmallOptions());
  const auto pool = search.BuildAtomPool(frame);
  ASSERT_FALSE(pool.empty());
  std::set<std::string> generators;
  for (const auto& atom : pool) generators.insert(atom.generator);
  for (const std::string& name : CorruptionSearch::RegisteredAtomNames()) {
    EXPECT_TRUE(generators.count(name)) << name;
  }
  // Pure function of (schema, options): a second build is identical.
  const auto again = search.BuildAtomPool(frame);
  ASSERT_EQ(again.size(), pool.size());
  for (size_t i = 0; i < pool.size(); ++i) {
    CorruptionSpec a, b;
    a.atoms.push_back(pool[i]);
    b.atoms.push_back(again[i]);
    EXPECT_EQ(a.Key(), b.Key());
  }
}

// ---------------------------------------------------------------------------
// Search properties
// ---------------------------------------------------------------------------

TEST(CorruptionSearchTest, BeatsEqualBudgetRandomSweep) {
  common::Rng data_rng(8);
  const data::DataFrame frame = MakeTabularFrame(80, data_rng);
  const CorruptionSearch search(SmallOptions());
  const auto probe = DamageProbe(frame);
  const auto result = search.Run(frame, probe);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result->findings.empty());
  const auto sweep = search.RandomSweep(frame, probe, result->total_probes);
  ASSERT_TRUE(sweep.ok()) << sweep.status().ToString();
  EXPECT_EQ(sweep->total_probes, result->total_probes);
  // The acceptance property: at equal probe budget the adversarial search
  // must surface a composition at least as damaging as the best random
  // composition — fixed severities plus survivor breeding vs random draws.
  EXPECT_GE(result->findings.front().mean_abs_error,
            sweep->findings.front().mean_abs_error);
}

TEST(CorruptionSearchTest, FindingsSortedWithBudgetAccounting) {
  common::Rng data_rng(9);
  const data::DataFrame frame = MakeTabularFrame(60, data_rng);
  const CorruptionSearch search(SmallOptions());
  const auto result = search.Run(frame, DamageProbe(frame));
  ASSERT_TRUE(result.ok());
  size_t probes = 0;
  for (size_t i = 0; i < result->findings.size(); ++i) {
    probes += static_cast<size_t>(result->findings[i].probes);
    if (i > 0) {
      EXPECT_LE(result->findings[i].mean_abs_error,
                result->findings[i - 1].mean_abs_error);
    }
  }
  EXPECT_EQ(probes, result->total_probes);
  EXPECT_EQ(result->findings.front().rounds_survived,
            search.options().max_rounds);
}

TEST(CorruptionSearchTest, ByteIdenticalAcrossThreadCounts) {
  common::Rng data_rng(10);
  const data::DataFrame frame = MakeTabularFrame(70, data_rng);
  const CorruptionSearch search(SmallOptions());
  const auto probe = DamageProbe(frame);
  std::string serial;
  {
    ScopedThreadsEnv env("1");
    const auto result = search.Run(frame, probe);
    ASSERT_TRUE(result.ok());
    serial = CorruptionSearch::ReportString(*result, 100);
  }
  {
    ScopedThreadsEnv env("8");
    const auto result = search.Run(frame, probe);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(CorruptionSearch::ReportString(*result, 100), serial);
  }
}

TEST(CorruptionSearchTest, RejectsDegenerateInputs) {
  common::Rng data_rng(11);
  const data::DataFrame frame = MakeTabularFrame(20, data_rng);
  const CorruptionSearch search(SmallOptions());
  EXPECT_FALSE(search.Run(frame, nullptr).ok());
  EXPECT_FALSE(search.RandomSweep(frame, DamageProbe(frame), 0).ok());
  CorruptionSearch::Options bad = SmallOptions();
  bad.survivor_fraction = 0.0;
  EXPECT_FALSE(CorruptionSearch(bad).Run(frame, DamageProbe(frame)).ok());
  const data::DataFrame empty;
  EXPECT_FALSE(search.Run(empty, DamageProbe(frame)).ok());
}

// ---------------------------------------------------------------------------
// Adversarial fixture replay (and regeneration)
// ---------------------------------------------------------------------------

struct RealSetup {
  data::Dataset test;
  data::Dataset serving;
  std::unique_ptr<ml::BlackBoxModel> model;
  core::PerformancePredictor predictor;
};

/// Small real income setup: logistic regression black box, predictor
/// meta-trained on two known error types. Deterministic for a fixed seed.
RealSetup MakeRealSetup() {
  common::Rng rng(13);
  data::Dataset dataset = datasets::MakeIncome(3000, rng);
  dataset = data::BalanceClasses(dataset, rng);
  auto [source, serving] = data::TrainTestSplit(dataset, 0.7, rng);
  auto [train, test] = data::TrainTestSplit(source, 0.7, rng);
  RealSetup setup;
  setup.test = std::move(test);
  setup.serving = std::move(serving);
  setup.model = std::make_unique<ml::BlackBoxModel>(
      std::make_unique<ml::SgdLogisticRegression>());
  BBV_CHECK(setup.model->Train(train, rng).ok());
  core::PerformancePredictor::Options options;
  options.corruptions_per_generator = 15;
  core::PerformancePredictor predictor(options);
  const errors::MissingValues missing;
  const errors::NumericOutliers outliers;
  BBV_CHECK(
      predictor.Train(*setup.model, setup.test, {&missing, &outliers}, rng)
          .ok());
  setup.predictor = std::move(predictor);
  return setup;
}

/// Search budget for the real-predictor tests: a larger population and an
/// extra halving round than SmallOptions, so mean-of-probes rankings have
/// enough repetitions to beat the winner's-curse noise of a random sweep.
CorruptionSearch::Options RealOptions() {
  CorruptionSearch::Options options;
  options.initial_candidates = 24;
  options.probe_repetitions = 1;
  options.max_rounds = 3;
  options.max_depth = 3;
  options.seed = 7;
  return options;
}

CorruptionSearch::ErrorProbe RealProbe(const RealSetup& setup) {
  return [&setup](const data::DataFrame& corrupted)
             -> common::Result<CorruptionSearch::ProbeResult> {
    BBV_ASSIGN_OR_RETURN(
        core::PerformancePredictor::EstimationErrorProbe measured,
        setup.predictor.ProbeEstimationError(*setup.model, corrupted,
                                             setup.serving.labels));
    return CorruptionSearch::ProbeResult{measured.estimated_score,
                                         measured.actual_score};
  };
}

// The headline acceptance property against a *real* predictor: at equal
// probe budget, the adversarial search must surface a composition with a
// larger estimation error than the best composition an equal number of
// random-magnitude probes finds (the paper's corruption regime).
TEST(CorruptionSearchTest, BeatsEqualBudgetSweepOnRealPredictor) {
  const RealSetup setup = MakeRealSetup();
  const auto probe = RealProbe(setup);
  const CorruptionSearch search(RealOptions());
  const auto result = search.Run(setup.serving.features, probe);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto sweep =
      search.RandomSweep(setup.serving.features, probe, result->total_probes);
  ASSERT_TRUE(sweep.ok()) << sweep.status().ToString();
  EXPECT_GE(result->findings.front().mean_abs_error,
            sweep->findings.front().mean_abs_error)
      << "search top: " << result->findings.front().spec.Key()
      << " sweep top: " << sweep->findings.front().spec.Key();
}

TEST(CorruptionSearchTest, FixtureReplayFindsPredictorBlindSpots) {
  const RealSetup setup = MakeRealSetup();
  const auto probe = RealProbe(setup);
  const CorruptionSearch search(RealOptions());

  if (std::getenv("BBV_REGEN_ADVERSARIAL_FIXTURES") != nullptr) {
    const auto result = search.Run(setup.serving.features, probe);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    std::ofstream out(kFixturePath);
    ASSERT_TRUE(out.good()) << "cannot write " << kFixturePath;
    out << "# Worst corruption compositions found by CorruptionSearch\n"
        << "# against the income setup in errors_corruption_search_test.cc.\n"
        << "# Regenerate: BBV_REGEN_ADVERSARIAL_FIXTURES=1 "
        << "./errors_corruption_search_test\n";
    const size_t count = std::min<size_t>(5, result->findings.size());
    for (size_t i = 0; i < count; ++i) {
      out << result->findings[i].spec.Key() << "\n";
    }
    ASSERT_TRUE(out.good());
    GTEST_SKIP() << "fixtures regenerated at " << kFixturePath;
  }

  std::ifstream in(kFixturePath);
  ASSERT_TRUE(in.good()) << "missing fixture file " << kFixturePath;
  std::vector<CorruptionSpec> fixtures;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto spec = ParseCorruptionSpec(line);
    ASSERT_TRUE(spec.ok()) << "bad fixture line: " << line;
    fixtures.push_back(*spec);
  }
  ASSERT_FALSE(fixtures.empty());

  // Replay every fixture composition: it must still build against the
  // income schema and reproducibly corrupt the serving frame. Mean over a
  // few repetitions smooths single-draw corruption noise.
  constexpr int kReps = 3;
  common::Rng replay_rng(17);
  std::vector<common::Rng> streams =
      replay_rng.ForkStreams(fixtures.size() * kReps);
  double best_mean_error = 0.0;
  for (size_t i = 0; i < fixtures.size(); ++i) {
    const auto generator = CorruptionSearch::BuildGenerator(fixtures[i]);
    ASSERT_TRUE(generator.ok()) << fixtures[i].Key();
    double sum = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      auto corrupted = (*generator)->Corrupt(setup.serving.features,
                                             streams[i * kReps + rep]);
      ASSERT_TRUE(corrupted.ok()) << fixtures[i].Key();
      const auto measured = probe(*corrupted);
      ASSERT_TRUE(measured.ok());
      sum += std::abs(measured->estimated_score - measured->actual_score);
    }
    best_mean_error = std::max(best_mean_error, sum / kReps);
  }

  // The committed blind spots must still confuse the predictor far more
  // than clean serving data does: if a predictor change makes them benign,
  // the fixtures are stale and must be regenerated (deliberately — this is
  // the detection-quality gate).
  const auto clean = probe(setup.serving.features);
  ASSERT_TRUE(clean.ok());
  const double clean_error =
      std::abs(clean->estimated_score - clean->actual_score);
  EXPECT_GE(best_mean_error, 2.0 * clean_error + 0.02)
      << "fixtures are stale (best=" << best_mean_error
      << " clean=" << clean_error
      << "): regenerate with BBV_REGEN_ADVERSARIAL_FIXTURES=1";
}

}  // namespace
}  // namespace bbv::errors
