// Unit tests for the bbv_lint rule engine: each enforced invariant must fire
// on its fixture file (tests/lint_fixtures/) and stay silent on clean and
// suppressed code. The repo-wide gate itself runs as the bbv_lint_repo ctest
// test; here we additionally assert the live tree is clean through the
// library API so a violation fails fast in unit tests too.

#include "tools/lint_rules.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "json_test_util.h"

namespace bbv::tools {
namespace {

std::string FixturePath(const std::string& name) {
  return std::string(BBV_TEST_SOURCE_DIR) + "/lint_fixtures/" + name;
}

size_t CountRule(const std::vector<LintFinding>& findings,
                 const std::string& rule) {
  return static_cast<size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const LintFinding& f) { return f.rule == rule; }));
}

TEST(LintRulesTest, FlagsWrongIncludeGuard) {
  const auto findings =
      LintFile("src/fixture/bad_guard.h", FixturePath("bad_guard.h"));
  ASSERT_EQ(CountRule(findings, "include-guard"), 1u);
  EXPECT_NE(findings[0].message.find("BBV_FIXTURE_BAD_GUARD_H_"),
            std::string::npos);
}

TEST(LintRulesTest, FlagsMissingIncludeGuard) {
  const auto findings =
      LintFile("src/fixture/missing_guard.h", FixturePath("missing_guard.h"));
  ASSERT_EQ(CountRule(findings, "include-guard"), 1u);
  EXPECT_EQ(findings[0].line, 1u);
  EXPECT_NE(findings[0].message.find("BBV_FIXTURE_MISSING_GUARD_H_"),
            std::string::npos);
}

TEST(LintRulesTest, AcceptsPathDerivedGuard) {
  const auto findings = LintFileContents(
      "src/fixture/clean.h",
      "#ifndef BBV_FIXTURE_CLEAN_H_\n#define BBV_FIXTURE_CLEAN_H_\n"
      "#endif  // BBV_FIXTURE_CLEAN_H_\n");
  EXPECT_EQ(CountRule(findings, "include-guard"), 0u);
}

TEST(LintRulesTest, ToolsAndBenchHeadersKeepFullPathInGuard) {
  // Only the src/ prefix is stripped: tools/foo.h guards as BBV_TOOLS_FOO_H_.
  const auto findings = LintFileContents(
      "tools/fixture.h",
      "#ifndef BBV_TOOLS_FIXTURE_H_\n#define BBV_TOOLS_FIXTURE_H_\n#endif\n");
  EXPECT_EQ(CountRule(findings, "include-guard"), 0u);
}

TEST(LintRulesTest, FlagsEveryBannedRandomnessSource) {
  const auto findings =
      LintFile("src/fixture/bad_rng.cc", FixturePath("bad_rng.cc"));
  // mt19937, random_device, srand, rand, plus the time(nullptr) seed.
  EXPECT_GE(CountRule(findings, "rng"), 5u);
}

TEST(LintRulesTest, RngHomeFilesAreExempt) {
  const auto findings = LintFileContents(
      "src/common/rng.cc", "uint64_t x = std::mt19937(seed)();\n");
  EXPECT_EQ(CountRule(findings, "rng"), 0u);
}

TEST(LintRulesTest, MentionsInCommentsAndStringsAreClean) {
  const auto findings = LintFileContents(
      "src/fixture/comments.cc",
      "// std::rand and time(nullptr) discussed in prose\n"
      "const char* kDoc = \"std::mt19937 is banned\";\n");
  EXPECT_EQ(CountRule(findings, "rng"), 0u);
}

TEST(LintRulesTest, FlagsFloatLiteralEqualityInStatsAndMl) {
  const auto findings =
      LintFile("src/stats/bad_float_eq.cc", FixturePath("bad_float_eq.cc"));
  EXPECT_EQ(CountRule(findings, "float-eq"), 3u);
}

TEST(LintRulesTest, FloatEqualityRuleScopedToStatsAndMl) {
  // The same contents under src/linalg/ (sparsity skips are idiomatic there)
  // must not be flagged.
  std::ifstream input(FixturePath("bad_float_eq.cc"));
  std::ostringstream buffer;
  buffer << input.rdbuf();
  const auto findings =
      LintFileContents("src/linalg/bad_float_eq.cc", buffer.str());
  EXPECT_EQ(CountRule(findings, "float-eq"), 0u);
}

TEST(LintRulesTest, FlagsStdoutInLibraryCode) {
  const auto findings =
      LintFile("src/fixture/bad_cout.cc", FixturePath("bad_cout.cc"));
  EXPECT_EQ(CountRule(findings, "stdout"), 1u);
}

TEST(LintRulesTest, StdoutAllowedOutsideLibraryCode) {
  std::ifstream input(FixturePath("bad_cout.cc"));
  std::ostringstream buffer;
  buffer << input.rdbuf();
  const auto findings =
      LintFileContents("tools/bad_cout.cc", buffer.str());
  EXPECT_EQ(CountRule(findings, "stdout"), 0u);
}

TEST(LintRulesTest, FlagsAssertButNotStaticAssert) {
  const auto findings =
      LintFile("src/fixture/bad_assert.cc", FixturePath("bad_assert.cc"));
  // One for <cassert>, one for the assert() call; static_assert is clean.
  EXPECT_EQ(CountRule(findings, "assert"), 2u);
  for (const LintFinding& finding : findings) {
    EXPECT_NE(finding.line, 7u) << "static_assert must not be flagged";
  }
}

TEST(LintRulesTest, FlagsRawThreadPrimitives) {
  const auto findings =
      LintFile("src/fixture/bad_thread.cc", FixturePath("bad_thread.cc"));
  // <future>, <thread>, std::thread, std::jthread and std::async each fire.
  EXPECT_GE(CountRule(findings, "thread"), 5u);
}

TEST(LintRulesTest, ParallelHomeFilesAreExemptFromThreadRule) {
  const auto findings = LintFileContents(
      "src/common/parallel.cc",
      "#include <thread>\nstd::thread worker([] {});\n");
  EXPECT_EQ(CountRule(findings, "thread"), 0u);
}

TEST(LintRulesTest, ThreadRuleKeepsThreadLocalAndCommentsClean) {
  const auto findings = LintFileContents(
      "src/fixture/thread_local_ok.cc",
      "// std::thread is discussed in prose only\n"
      "thread_local bool tls_flag = false;\n"
      "int threads = 4;\n");
  EXPECT_EQ(CountRule(findings, "thread"), 0u);
}

TEST(LintRulesTest, FlagsAdHocTiming) {
  const auto findings =
      LintFile("src/fixture/bad_chrono.cc", FixturePath("bad_chrono.cc"));
  // <chrono>, <ctime>, <sys/time.h>, std::chrono, clock_gettime and
  // gettimeofday each fire.
  EXPECT_GE(CountRule(findings, "timing"), 6u);
}

TEST(LintRulesTest, TimingHomeFilesAreExempt) {
  std::ifstream input(FixturePath("bad_chrono.cc"));
  std::ostringstream buffer;
  buffer << input.rdbuf();
  const std::string contents = buffer.str();
  for (const char* home :
       {"src/common/telemetry.h", "src/common/telemetry.cc",
        "bench/bench_util.h", "bench/bench_util.cc"}) {
    const auto findings = LintFileContents(home, contents);
    EXPECT_EQ(CountRule(findings, "timing"), 0u) << home;
  }
}

TEST(LintRulesTest, TimingRuleKeepsProseAndStringsClean) {
  const auto findings = LintFileContents(
      "src/fixture/timing_prose.cc",
      "// std::chrono is discussed in prose only\n"
      "const char* kDoc = \"clock_gettime(...) is banned\";\n");
  EXPECT_EQ(CountRule(findings, "timing"), 0u);
}

TEST(LintRulesTest, SuppressionMarkerSilencesFindings) {
  const auto findings =
      LintFile("src/ml/suppressed.cc", FixturePath("suppressed.cc"));
  EXPECT_TRUE(findings.empty())
      << "unexpected: " << FormatFinding(findings.front());
}

TEST(LintRulesTest, FormatIsPathLineRuleMessage) {
  const LintFinding finding{"src/a.cc", 12, "rng", "banned"};
  EXPECT_EQ(FormatFinding(finding), "src/a.cc:12: [rng] banned");
}

TEST(LintRulesTest, FlagsUnorderedContainersInLibraryCode) {
  const auto findings =
      LintFile("src/fixture/bad_det_iter.cc", FixturePath("bad_det_iter.cc"));
  // Two type mentions, one range-for and one .begin() traversal; the
  // suppressed declaration and the lookup-only access stay silent.
  EXPECT_EQ(CountRule(findings, "det-iter"), 4u);
}

TEST(LintRulesTest, DetIterRuleScopedToSrc) {
  std::ifstream input(FixturePath("bad_det_iter.cc"));
  std::ostringstream buffer;
  buffer << input.rdbuf();
  // Tools and tests may use hash containers; only src/ is result-affecting.
  const auto findings =
      LintFileContents("tools/bad_det_iter.cc", buffer.str());
  EXPECT_EQ(CountRule(findings, "det-iter"), 0u);
}

TEST(LintRulesTest, FlagsPointerKeyedOrderedContainers) {
  const auto findings = LintFile("src/fixture/bad_det_iter_ptr_key.cc",
                                 FixturePath("bad_det_iter_ptr_key.cc"));
  // Raw-pointer set parameter, const-pointer map key, shared_ptr key and a
  // pointer inside a compound key; the string-keyed containers and the
  // suppressed declaration stay silent.
  EXPECT_EQ(CountRule(findings, "det-iter"), 4u);
}

TEST(LintRulesTest, PointerKeyRuleScopedToSrc) {
  std::ifstream input(FixturePath("bad_det_iter_ptr_key.cc"));
  std::ostringstream buffer;
  buffer << input.rdbuf();
  const auto findings =
      LintFileContents("tools/bad_det_iter_ptr_key.cc", buffer.str());
  EXPECT_EQ(CountRule(findings, "det-iter"), 0u);
}

TEST(LintRulesTest, PointerOnValueSideOfMapIsAllowed) {
  const auto findings = LintFileContents(
      "src/fixture/value_ptr.cc",
      "#include <map>\n"
      "#include <string>\n"
      "struct Node {};\n"
      "std::map<std::string, Node*> Index();\n");
  EXPECT_EQ(CountRule(findings, "det-iter"), 0u);
}

TEST(LintRulesTest, DetIterTraversalNeedsADeclaredVariable) {
  // A range-for over an ordered map is fine even when an unordered variable
  // exists elsewhere in the file.
  const auto findings = LintFileContents(
      "src/fixture/ordered.cc",
      "#include <map>\n"
      "double Sum(const std::map<int, double>& m) {\n"
      "  double total = 0.0;\n"
      "  for (const auto& [k, v] : m) total += v;\n"
      "  return total;\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, "det-iter"), 0u);
}

TEST(LintRulesTest, ModuleLayersMatchTheDocumentedDag) {
  EXPECT_EQ(ModuleLayer("common"), 0);
  EXPECT_EQ(ModuleLayer("stats"), 1);
  EXPECT_EQ(ModuleLayer("linalg"), 1);
  EXPECT_EQ(ModuleLayer("data"), 1);
  EXPECT_EQ(ModuleLayer("ml"), 2);
  EXPECT_EQ(ModuleLayer("errors"), 2);
  EXPECT_EQ(ModuleLayer("featurize"), 2);
  EXPECT_EQ(ModuleLayer("datasets"), 2);
  EXPECT_EQ(ModuleLayer("core"), 3);
  EXPECT_EQ(ModuleLayer("serve"), 3);
  EXPECT_EQ(ModuleLayer("automl"), 3);
  EXPECT_EQ(ModuleLayer("no_such_module"), -1);
}

TEST(LintRulesTest, AllowedEdgesPointDownOrRideTheAuditList) {
  EXPECT_TRUE(IsAllowedModuleEdge("core", "common"));
  EXPECT_TRUE(IsAllowedModuleEdge("ml", "data"));
  EXPECT_TRUE(IsAllowedModuleEdge("stats", "stats"));
  // The four audited same-layer edges.
  EXPECT_TRUE(IsAllowedModuleEdge("stats", "linalg"));
  EXPECT_TRUE(IsAllowedModuleEdge("ml", "featurize"));
  EXPECT_TRUE(IsAllowedModuleEdge("errors", "ml"));
  EXPECT_TRUE(IsAllowedModuleEdge("serve", "core"));
  // Reversals and climbs are rejected.
  EXPECT_FALSE(IsAllowedModuleEdge("linalg", "stats"));
  EXPECT_FALSE(IsAllowedModuleEdge("common", "core"));
  EXPECT_FALSE(IsAllowedModuleEdge("stats", "ml"));
  EXPECT_FALSE(IsAllowedModuleEdge("core", "serve"));
}

TEST(LintRulesTest, FlagsBackEdgeIncludes) {
  const auto findings =
      LintFile("src/stats/bad_layering.cc", FixturePath("bad_layering.cc"));
  // stats -> core and stats -> ml fire; common/linalg includes and the
  // suppressed serve include stay silent.
  EXPECT_EQ(CountRule(findings, "layering"), 2u);
  for (const LintFinding& finding : findings) {
    if (finding.rule != "layering") continue;
    EXPECT_NE(finding.message.find("stats"), std::string::npos);
  }
}

TEST(LintRulesTest, LayeringIgnoresSystemAndUnknownIncludes) {
  const auto findings = LintFileContents(
      "src/stats/clean_includes.cc",
      "#include <vector>\n#include \"third_party/some_lib.h\"\n");
  EXPECT_EQ(CountRule(findings, "layering"), 0u);
}

TEST(LintRulesTest, FindsConstructedModuleCycle) {
  const std::vector<ModuleEdge> edges = {
      {"data", "ml", 1, false},
      {"ml", "stats", 2, true},
      {"stats", "data", 1, false},
  };
  const auto cycle = FindModuleCycle(edges);
  ASSERT_GE(cycle.size(), 4u);
  EXPECT_EQ(cycle.front(), cycle.back());
}

TEST(LintRulesTest, AcyclicGraphAndSelfEdgesHaveNoCycle) {
  const std::vector<ModuleEdge> acyclic = {
      {"ml", "stats", 1, true},
      {"stats", "common", 3, true},
      {"ml", "common", 2, true},
  };
  EXPECT_TRUE(FindModuleCycle(acyclic).empty());
  const std::vector<ModuleEdge> self_only = {{"ml", "ml", 5, true}};
  EXPECT_TRUE(FindModuleCycle(self_only).empty());
}

TEST(LintRulesTest, DotExportNamesModulesAndMarksViolations) {
  const std::vector<ModuleEdge> edges = {
      {"linalg", "stats", 1, false},
      {"stats", "common", 4, true},
  };
  const std::string dot = ModuleGraphDot(edges);
  EXPECT_NE(dot.find("digraph bbv_modules"), std::string::npos);
  EXPECT_NE(dot.find("\"stats\" -> \"common\""), std::string::npos);
  EXPECT_NE(dot.find("\"linalg\" -> \"stats\""), std::string::npos);
  EXPECT_NE(dot.find("red"), std::string::npos);  // the violating edge
}

TEST(LintRulesTest, FlagsDiscardedStatusCalls) {
  const auto findings = LintFile("src/fixture/bad_status_discard.cc",
                                 FixturePath("bad_status_discard.cc"));
  // Bare DoWork(), worker.Run() and Compute() statements; captures,
  // conditions, returns, strings and the suppressed call stay silent.
  EXPECT_EQ(CountRule(findings, "status-discard"), 3u);
  bool names_callee = false;
  for (const LintFinding& finding : findings) {
    if (finding.rule == "status-discard" &&
        finding.message.find("DoWork") != std::string::npos) {
      names_callee = true;
    }
  }
  EXPECT_TRUE(names_callee);
}

TEST(LintRulesTest, AmbiguousStatusNamesAreSkipped) {
  // A name declared with both Status and void return types anywhere in the
  // tree is ambiguous; the name-based rule defers to [[nodiscard]].
  AnalysisContext context;
  context.status_functions.insert("DoWork");
  context.void_functions.insert("DoWork");
  const auto findings = LintFileContentsWithContext(
      "src/fixture/ambiguous.cc", "void Use() {\n  DoWork();\n}\n", context);
  EXPECT_EQ(CountRule(findings, "status-discard"), 0u);
}

TEST(LintRulesTest, FlagsPredictRowInLoops) {
  const auto findings =
      LintFile("src/fixture/bad_batch_api.cc", FixturePath("bad_batch_api.cc"));
  // The braced for body, the while body, the single-statement for body and
  // the scalar-estimate loop; the lone calls, the string literal, the
  // suppressed loop and the plural span surface stay silent.
  EXPECT_EQ(CountRule(findings, "batch-api"), 4u);
}

TEST(LintRulesTest, ScalarEstimateInLoopIsFlagged) {
  const auto findings = LintFileContents(
      "serve/fixture/estimate_loop.cc",
      "void All(const Predictor& p, const Rows& rows, Est* out) {\n"
      "  for (size_t i = 0; i < rows.size(); ++i) {\n"
      "    out[i] = p.EstimateScoreFromStatistics(rows[i]);\n"
      "  }\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, "batch-api"), 1u);
}

TEST(LintRulesTest, BatchEstimateSpanSurfaceIsCleanInLoops) {
  // The plural span overload IS the sanctioned batch surface; calling it
  // repeatedly (e.g. once per monitoring epoch) is fine.
  const auto findings = LintFileContents(
      "serve/fixture/estimate_batch.cc",
      "void Epochs(const Predictor& p, const Matrix& x, Span out) {\n"
      "  for (int epoch = 0; epoch < 5; ++epoch) {\n"
      "    BBV_CHECK(p.EstimateScoresFromStatistics(x, out).ok());\n"
      "  }\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, "batch-api"), 0u);
}

TEST(LintRulesTest, PredictRowInStringLiteralDoesNotFire) {
  const auto findings = LintFileContents(
      "src/fixture/doc_string.cc",
      "const char* Doc() {\n"
      "  for (int i = 0; i < 3; ++i) {\n"
      "    return \"never call PredictRow(row) per row\";\n"
      "  }\n"
      "  return \"\";\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, "batch-api"), 0u);
}

TEST(LintRulesTest, PredictRowOutsideLoopsIsClean) {
  const auto findings = LintFileContents(
      "src/fixture/single_row.cc",
      "double One(const Model& m, const double* row) {\n"
      "  return m.PredictRow(row);\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, "batch-api"), 0u);
}

TEST(LintRulesTest, PredictRowInParallelForLambdaIsFlagged) {
  // A ParallelFor callable runs once per item: per-row inference inside it
  // is a loop body even without a lexical loop keyword. bench/ harnesses
  // are covered like everything else.
  const auto findings = LintFileContents(
      "bench/fixture/parallel_predict.cc",
      "void All(const Model& m, const Matrix& x, double* out) {\n"
      "  ParallelFor(x.rows(), [&](size_t i) {\n"
      "    out[i] = m.PredictRow(x.RowData(i));\n"
      "    return Status::OK();\n"
      "  });\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, "batch-api"), 1u);
}

TEST(LintRulesTest, PredictRowInParallelMapWithTemplateArgsIsFlagged) {
  const auto findings = LintFileContents(
      "src/fixture/parallel_map_predict.cc",
      "std::vector<double> All(const Model& m, const Matrix& x) {\n"
      "  return common::ParallelMap<double>(x.rows(), [&](size_t i) {\n"
      "    return m.PredictRow(x.RowData(i));\n"
      "  });\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, "batch-api"), 1u);
}

TEST(LintRulesTest, SuppressedParallelForPredictRowIsClean) {
  const auto findings = LintFileContents(
      "bench/fixture/parallel_predict.cc",
      "void All(const Model& m, const Matrix& x, double* out) {\n"
      "  ParallelFor(x.rows(), [&](size_t i) {\n"
      "    // bbv-lint: allow(batch-api) scalar timing baseline\n"
      "    out[i] = m.PredictRow(x.RowData(i));\n"
      "    return Status::OK();\n"
      "  });\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, "batch-api"), 0u);
}

TEST(LintRulesTest, PredictRowAfterParallelForCallIsClean) {
  // The call frame expires at the matching ')': per-row calls after the
  // parallel section are single-row latency paths, not hidden loops.
  const auto findings = LintFileContents(
      "src/fixture/after_parallel.cc",
      "double One(const Model& m, const Matrix& x, double* out) {\n"
      "  ParallelFor(x.rows(), [&](size_t i) { out[i] = 0.0; });\n"
      "  return m.PredictRow(x.RowData(0));\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, "batch-api"), 0u);
}

TEST(LintRulesTest, AnalyzeTreePopulatesTheModuleGraph) {
  const std::filesystem::path repo_root =
      std::filesystem::path(BBV_TEST_SOURCE_DIR).parent_path();
  const TreeAnalysis analysis = AnalyzeTree(repo_root.string());
  EXPECT_GT(analysis.num_files_scanned, 0u);
  ASSERT_FALSE(analysis.edges.empty());
  bool saw_core_to_common = false;
  for (const ModuleEdge& edge : analysis.edges) {
    EXPECT_TRUE(edge.allowed) << edge.from << " -> " << edge.to;
    if (edge.from == "core" && edge.to == "common") saw_core_to_common = true;
  }
  EXPECT_TRUE(saw_core_to_common);
  EXPECT_TRUE(FindModuleCycle(analysis.edges).empty());
  // Edges arrive sorted by (from, to) so diffs of --dot output are stable.
  for (size_t i = 1; i < analysis.edges.size(); ++i) {
    const ModuleEdge& a = analysis.edges[i - 1];
    const ModuleEdge& b = analysis.edges[i];
    EXPECT_LE(std::tie(a.from, a.to), std::tie(b.from, b.to));
  }
}

TEST(LintRulesTest, FindingsJsonIsWellFormedAndCountsRules) {
  TreeAnalysis analysis;
  analysis.num_files_scanned = 3;
  analysis.findings.push_back(
      {"src/a.cc", 7, "det-iter", "message with \"quotes\" and \\ slash"});
  analysis.findings.push_back({"src/b.cc", 9, "det-iter", "second"});
  analysis.findings.push_back({"src/b.cc", 12, "layering", "third"});
  const std::string json = FindingsJson(analysis);
  EXPECT_TRUE(bbv::testing::JsonParses(json)) << json;
  EXPECT_NE(json.find("\"tool\": \"bbv_lint\""), std::string::npos);
  EXPECT_NE(json.find("\"files_scanned\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"num_findings\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"det-iter\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"layering\": 1"), std::string::npos);
  // Every rule id appears in rule_counts, including untriggered ones.
  EXPECT_NE(json.find("\"batch-api\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"status-discard\": 0"), std::string::npos);
}

TEST(LintRulesTest, EmptyFindingsJsonStillParses) {
  TreeAnalysis analysis;
  analysis.num_files_scanned = 177;
  const std::string json = FindingsJson(analysis);
  EXPECT_TRUE(bbv::testing::JsonParses(json)) << json;
  EXPECT_NE(json.find("\"num_findings\": 0"), std::string::npos);
}

TEST(LintRulesTest, LiveRepositoryIsClean) {
  const std::filesystem::path repo_root =
      std::filesystem::path(BBV_TEST_SOURCE_DIR).parent_path();
  const auto findings = LintTree(repo_root.string());
  for (const LintFinding& finding : findings) {
    ADD_FAILURE() << FormatFinding(finding);
  }
}

}  // namespace
}  // namespace bbv::tools
