// Unit tests for the bbv_lint rule engine: each enforced invariant must fire
// on its fixture file (tests/lint_fixtures/) and stay silent on clean and
// suppressed code. The repo-wide gate itself runs as the bbv_lint_repo ctest
// test; here we additionally assert the live tree is clean through the
// library API so a violation fails fast in unit tests too.

#include "tools/lint_rules.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace bbv::tools {
namespace {

std::string FixturePath(const std::string& name) {
  return std::string(BBV_TEST_SOURCE_DIR) + "/lint_fixtures/" + name;
}

size_t CountRule(const std::vector<LintFinding>& findings,
                 const std::string& rule) {
  return static_cast<size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const LintFinding& f) { return f.rule == rule; }));
}

TEST(LintRulesTest, FlagsWrongIncludeGuard) {
  const auto findings =
      LintFile("src/fixture/bad_guard.h", FixturePath("bad_guard.h"));
  ASSERT_EQ(CountRule(findings, "include-guard"), 1u);
  EXPECT_NE(findings[0].message.find("BBV_FIXTURE_BAD_GUARD_H_"),
            std::string::npos);
}

TEST(LintRulesTest, FlagsMissingIncludeGuard) {
  const auto findings =
      LintFile("src/fixture/missing_guard.h", FixturePath("missing_guard.h"));
  ASSERT_EQ(CountRule(findings, "include-guard"), 1u);
  EXPECT_EQ(findings[0].line, 1u);
  EXPECT_NE(findings[0].message.find("BBV_FIXTURE_MISSING_GUARD_H_"),
            std::string::npos);
}

TEST(LintRulesTest, AcceptsPathDerivedGuard) {
  const auto findings = LintFileContents(
      "src/fixture/clean.h",
      "#ifndef BBV_FIXTURE_CLEAN_H_\n#define BBV_FIXTURE_CLEAN_H_\n"
      "#endif  // BBV_FIXTURE_CLEAN_H_\n");
  EXPECT_EQ(CountRule(findings, "include-guard"), 0u);
}

TEST(LintRulesTest, ToolsAndBenchHeadersKeepFullPathInGuard) {
  // Only the src/ prefix is stripped: tools/foo.h guards as BBV_TOOLS_FOO_H_.
  const auto findings = LintFileContents(
      "tools/fixture.h",
      "#ifndef BBV_TOOLS_FIXTURE_H_\n#define BBV_TOOLS_FIXTURE_H_\n#endif\n");
  EXPECT_EQ(CountRule(findings, "include-guard"), 0u);
}

TEST(LintRulesTest, FlagsEveryBannedRandomnessSource) {
  const auto findings =
      LintFile("src/fixture/bad_rng.cc", FixturePath("bad_rng.cc"));
  // mt19937, random_device, srand, rand, plus the time(nullptr) seed.
  EXPECT_GE(CountRule(findings, "rng"), 5u);
}

TEST(LintRulesTest, RngHomeFilesAreExempt) {
  const auto findings = LintFileContents(
      "src/common/rng.cc", "uint64_t x = std::mt19937(seed)();\n");
  EXPECT_EQ(CountRule(findings, "rng"), 0u);
}

TEST(LintRulesTest, MentionsInCommentsAndStringsAreClean) {
  const auto findings = LintFileContents(
      "src/fixture/comments.cc",
      "// std::rand and time(nullptr) discussed in prose\n"
      "const char* kDoc = \"std::mt19937 is banned\";\n");
  EXPECT_EQ(CountRule(findings, "rng"), 0u);
}

TEST(LintRulesTest, FlagsFloatLiteralEqualityInStatsAndMl) {
  const auto findings =
      LintFile("src/stats/bad_float_eq.cc", FixturePath("bad_float_eq.cc"));
  EXPECT_EQ(CountRule(findings, "float-eq"), 3u);
}

TEST(LintRulesTest, FloatEqualityRuleScopedToStatsAndMl) {
  // The same contents under src/linalg/ (sparsity skips are idiomatic there)
  // must not be flagged.
  std::ifstream input(FixturePath("bad_float_eq.cc"));
  std::ostringstream buffer;
  buffer << input.rdbuf();
  const auto findings =
      LintFileContents("src/linalg/bad_float_eq.cc", buffer.str());
  EXPECT_EQ(CountRule(findings, "float-eq"), 0u);
}

TEST(LintRulesTest, FlagsStdoutInLibraryCode) {
  const auto findings =
      LintFile("src/fixture/bad_cout.cc", FixturePath("bad_cout.cc"));
  EXPECT_EQ(CountRule(findings, "stdout"), 1u);
}

TEST(LintRulesTest, StdoutAllowedOutsideLibraryCode) {
  std::ifstream input(FixturePath("bad_cout.cc"));
  std::ostringstream buffer;
  buffer << input.rdbuf();
  const auto findings =
      LintFileContents("tools/bad_cout.cc", buffer.str());
  EXPECT_EQ(CountRule(findings, "stdout"), 0u);
}

TEST(LintRulesTest, FlagsAssertButNotStaticAssert) {
  const auto findings =
      LintFile("src/fixture/bad_assert.cc", FixturePath("bad_assert.cc"));
  // One for <cassert>, one for the assert() call; static_assert is clean.
  EXPECT_EQ(CountRule(findings, "assert"), 2u);
  for (const LintFinding& finding : findings) {
    EXPECT_NE(finding.line, 7u) << "static_assert must not be flagged";
  }
}

TEST(LintRulesTest, FlagsRawThreadPrimitives) {
  const auto findings =
      LintFile("src/fixture/bad_thread.cc", FixturePath("bad_thread.cc"));
  // <future>, <thread>, std::thread, std::jthread and std::async each fire.
  EXPECT_GE(CountRule(findings, "thread"), 5u);
}

TEST(LintRulesTest, ParallelHomeFilesAreExemptFromThreadRule) {
  const auto findings = LintFileContents(
      "src/common/parallel.cc",
      "#include <thread>\nstd::thread worker([] {});\n");
  EXPECT_EQ(CountRule(findings, "thread"), 0u);
}

TEST(LintRulesTest, ThreadRuleKeepsThreadLocalAndCommentsClean) {
  const auto findings = LintFileContents(
      "src/fixture/thread_local_ok.cc",
      "// std::thread is discussed in prose only\n"
      "thread_local bool tls_flag = false;\n"
      "int threads = 4;\n");
  EXPECT_EQ(CountRule(findings, "thread"), 0u);
}

TEST(LintRulesTest, FlagsAdHocTiming) {
  const auto findings =
      LintFile("src/fixture/bad_chrono.cc", FixturePath("bad_chrono.cc"));
  // <chrono>, <ctime>, <sys/time.h>, std::chrono, clock_gettime and
  // gettimeofday each fire.
  EXPECT_GE(CountRule(findings, "timing"), 6u);
}

TEST(LintRulesTest, TimingHomeFilesAreExempt) {
  std::ifstream input(FixturePath("bad_chrono.cc"));
  std::ostringstream buffer;
  buffer << input.rdbuf();
  const std::string contents = buffer.str();
  for (const char* home :
       {"src/common/telemetry.h", "src/common/telemetry.cc",
        "bench/bench_util.h", "bench/bench_util.cc"}) {
    const auto findings = LintFileContents(home, contents);
    EXPECT_EQ(CountRule(findings, "timing"), 0u) << home;
  }
}

TEST(LintRulesTest, TimingRuleKeepsProseAndStringsClean) {
  const auto findings = LintFileContents(
      "src/fixture/timing_prose.cc",
      "// std::chrono is discussed in prose only\n"
      "const char* kDoc = \"clock_gettime(...) is banned\";\n");
  EXPECT_EQ(CountRule(findings, "timing"), 0u);
}

TEST(LintRulesTest, SuppressionMarkerSilencesFindings) {
  const auto findings =
      LintFile("src/ml/suppressed.cc", FixturePath("suppressed.cc"));
  EXPECT_TRUE(findings.empty())
      << "unexpected: " << FormatFinding(findings.front());
}

TEST(LintRulesTest, FormatIsPathLineRuleMessage) {
  const LintFinding finding{"src/a.cc", 12, "rng", "banned"};
  EXPECT_EQ(FormatFinding(finding), "src/a.cc:12: [rng] banned");
}

TEST(LintRulesTest, LiveRepositoryIsClean) {
  const std::filesystem::path repo_root =
      std::filesystem::path(BBV_TEST_SOURCE_DIR).parent_path();
  const auto findings = LintTree(repo_root.string());
  for (const LintFinding& finding : findings) {
    ADD_FAILURE() << FormatFinding(finding);
  }
}

}  // namespace
}  // namespace bbv::tools
