// Property tests for the opt-in tree-ensemble fast paths: the quantized
// width-8 / bitvector inference kernel and the histogram-binned split
// search. The contracts under test:
//  - quantized outputs are bit-identical to the bit-exact kernel evaluated
//    on ForestKernel::QuantizeFeatures(input), for every input shape the
//    serving layer sees (uniform, edge-concentrated, heavily tied,
//    constant) and for tile-remainder row counts;
//  - |quantized - exact| never exceeds the kernel's documented bounds;
//  - the bitvector strategy for shallow trees changes timings only, never
//    a single output bit;
//  - both fast paths are thread-count independent (byte-identical results
//    and serialized models at BBV_THREADS 1 vs 8);
//  - FeatureBinning's code/cut contract: code(v) <= b  <=>  v <= CutValue(b).

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/matrix.h"
#include "ml/feature_binning.h"
#include "ml/forest_kernel.h"
#include "ml/gradient_boosted_trees.h"
#include "ml/random_forest.h"

namespace bbv::ml {
namespace {

/// Sets BBV_THREADS for one scope and restores the previous value after.
class ScopedThreadsEnv {
 public:
  explicit ScopedThreadsEnv(const char* value) {
    const char* previous = std::getenv("BBV_THREADS");
    had_previous_ = previous != nullptr;
    if (had_previous_) previous_ = previous;
    ::setenv("BBV_THREADS", value, 1);
  }
  ~ScopedThreadsEnv() {
    if (had_previous_) {
      ::setenv("BBV_THREADS", previous_.c_str(), 1);
    } else {
      ::unsetenv("BBV_THREADS");
    }
  }
  ScopedThreadsEnv(const ScopedThreadsEnv&) = delete;
  ScopedThreadsEnv& operator=(const ScopedThreadsEnv&) = delete;

 private:
  bool had_previous_ = false;
  std::string previous_;
};

/// One draw from the distribution shapes the serving layer actually sees
/// (mirrors the quantile-sketch test): smooth, tail-concentrated, heavily
/// tied, degenerate-constant.
double DrawShape(size_t shape, common::Rng& rng) {
  switch (shape) {
    case 0:
      return rng.Uniform();
    case 1: {
      const double u = rng.Uniform();
      return u < 0.5 ? u * u : 1.0 - (1.0 - u) * (1.0 - u);
    }
    case 2:
      return static_cast<double>(rng.UniformInt(0, 4)) / 4.0;
    default:
      return 0.75;
  }
}

constexpr size_t kNumShapes = 4;

linalg::Matrix MakeShapeMatrix(size_t rows, size_t cols, size_t shape,
                               common::Rng& rng) {
  linalg::Matrix features(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      features.At(i, j) = DrawShape(shape, rng);
    }
  }
  return features;
}

std::vector<double> LinearTargets(const linalg::Matrix& features,
                                  common::Rng& rng) {
  std::vector<double> targets(features.rows());
  for (size_t i = 0; i < features.rows(); ++i) {
    targets[i] = 2.0 * features.At(i, 0) - features.At(i, 1) +
                 0.5 * features.At(i, 2) + rng.Gaussian(0.0, 0.05);
  }
  return targets;
}

RandomForestRegressor FitForest(const linalg::Matrix& features,
                                const std::vector<double>& targets,
                                uint64_t seed, bool binned = false) {
  RandomForestRegressor::Options options;
  options.num_trees = 30;
  options.tree.binned_split_search = binned;
  RandomForestRegressor forest(options);
  common::Rng rng(seed);
  BBV_CHECK(forest.Fit(features, targets, rng).ok());
  return forest;
}

/// Bitwise equality (stricter than ==, which conflates -0.0 and 0.0).
bool BytesEqual(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

double RSquared(const std::vector<double>& predictions,
                const std::vector<double>& targets) {
  double mean = 0.0;
  for (double t : targets) mean += t;
  mean /= static_cast<double>(targets.size());
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (size_t i = 0; i < targets.size(); ++i) {
    ss_res += (targets[i] - predictions[i]) * (targets[i] - predictions[i]);
    ss_tot += (targets[i] - mean) * (targets[i] - mean);
  }
  return ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
}

TEST(ForestFastPathTest, QuantizedMatchesExactWithinBoundAcrossShapes) {
  common::Rng rng(11);
  for (size_t shape = 0; shape < kNumShapes; ++shape) {
    const linalg::Matrix train = MakeShapeMatrix(500, 8, shape, rng);
    const std::vector<double> targets = LinearTargets(train, rng);
    const RandomForestRegressor forest = FitForest(train, targets, 7 + shape);
    const ForestKernel quantized = ForestKernel::Compile(
        forest.trees(), ForestKernel::Options{.quantized = true});
    ASSERT_TRUE(quantized.quantized());

    const linalg::Matrix serving = MakeShapeMatrix(333, 8, shape, rng);
    std::vector<double> exact(serving.rows());
    std::vector<double> fast(serving.rows());
    forest.kernel().PredictMeanInto(serving, exact);
    quantized.PredictMeanInto(serving, fast);

    // Deviation from exact is bounded by the documented quantization bound.
    const double bound = quantized.QuantizationMeanErrorBound();
    for (size_t i = 0; i < fast.size(); ++i) {
      EXPECT_LE(std::abs(fast[i] - exact[i]), bound)
          << "shape=" << shape << " row=" << i;
    }

    // The defining fast-path property: bit-identical to the exact kernel on
    // float32-rounded inputs.
    const linalg::Matrix rounded = ForestKernel::QuantizeFeatures(serving);
    std::vector<double> exact_on_rounded(serving.rows());
    forest.kernel().PredictMeanInto(rounded, exact_on_rounded);
    EXPECT_TRUE(BytesEqual(fast, exact_on_rounded)) << "shape=" << shape;
  }
}

TEST(ForestFastPathTest, QuantizedHandlesTileRemainderRowCounts) {
  common::Rng rng(13);
  const linalg::Matrix train = MakeShapeMatrix(400, 6, 0, rng);
  const std::vector<double> targets = LinearTargets(train, rng);
  const RandomForestRegressor forest = FitForest(train, targets, 23);
  const ForestKernel quantized = ForestKernel::Compile(
      forest.trees(), ForestKernel::Options{.quantized = true});

  // Row counts around the 8-lane groups and the 64-row tiles, including
  // every remainder 1..9 and the one-past-a-boundary cases.
  for (const size_t rows : {size_t{1}, size_t{2}, size_t{3}, size_t{4},
                            size_t{5}, size_t{6}, size_t{7}, size_t{8},
                            size_t{9}, size_t{63}, size_t{64}, size_t{65},
                            size_t{127}}) {
    const linalg::Matrix serving = MakeShapeMatrix(rows, 6, 0, rng);
    std::vector<double> fast(rows);
    quantized.PredictMeanInto(serving, fast);
    const linalg::Matrix rounded = ForestKernel::QuantizeFeatures(serving);
    std::vector<double> exact_on_rounded(rows);
    forest.kernel().PredictMeanInto(rounded, exact_on_rounded);
    EXPECT_TRUE(BytesEqual(fast, exact_on_rounded)) << "rows=" << rows;
  }
}

TEST(ForestFastPathTest, BitvectorStrategyNeverChangesABit) {
  // Depth-3 boosted trees have at most 8 leaves, so with the default
  // options every tree runs through the QuickScorer bitvector; with the
  // strategy off the same trees run through lockstep stepping. Both must
  // reproduce the exact walk on rounded inputs bit for bit.
  common::Rng rng(17);
  const linalg::Matrix train = MakeShapeMatrix(600, 8, 1, rng);
  std::vector<int> labels(train.rows());
  for (size_t i = 0; i < train.rows(); ++i) {
    labels[i] = train.At(i, 0) + train.At(i, 1) > 1.0 ? 1 : 0;
  }
  GradientBoostedTrees::Options options;
  options.num_rounds = 20;
  GradientBoostedTrees gbt(options);
  common::Rng fit_rng(29);
  ASSERT_TRUE(gbt.Fit(train, labels, 2, fit_rng).ok());

  const ForestKernel with_bitvector = ForestKernel::Compile(
      gbt.trees(), ForestKernel::Options{.quantized = true});
  const ForestKernel without_bitvector = ForestKernel::Compile(
      gbt.trees(), ForestKernel::Options{.quantized = true,
                                         .bitvector_shallow_trees = false});
  EXPECT_GT(with_bitvector.num_bitvector_trees(), 0u);
  EXPECT_EQ(without_bitvector.num_bitvector_trees(), 0u);

  const linalg::Matrix serving = MakeShapeMatrix(257, 8, 1, rng);
  const size_t stride = 2;
  const double scale = gbt.learning_rate();
  std::vector<double> scores_bitvector(serving.rows() * stride, 0.0);
  std::vector<double> scores_stepping(serving.rows() * stride, 0.0);
  with_bitvector.AccumulateInto(serving, scale, stride, scores_bitvector);
  without_bitvector.AccumulateInto(serving, scale, stride, scores_stepping);
  EXPECT_TRUE(BytesEqual(scores_bitvector, scores_stepping));

  // And both stay within the accumulate-slot bound against the exact walk.
  std::vector<double> exact(serving.rows() * stride, 0.0);
  gbt.kernel().AccumulateInto(serving, scale, stride, exact);
  const double bound =
      with_bitvector.QuantizationAccumulateErrorBound(scale, stride);
  for (size_t i = 0; i < exact.size(); ++i) {
    EXPECT_LE(std::abs(scores_bitvector[i] - exact[i]), bound) << "slot=" << i;
  }
}

TEST(ForestFastPathTest, QuantizedPathIsThreadCountIndependent) {
  common::Rng rng(19);
  const linalg::Matrix train = MakeShapeMatrix(400, 8, 0, rng);
  const std::vector<double> targets = LinearTargets(train, rng);
  const RandomForestRegressor forest = FitForest(train, targets, 31);
  const ForestKernel quantized = ForestKernel::Compile(
      forest.trees(), ForestKernel::Options{.quantized = true});
  // Enough rows for several 64-row tiles so the parallel fan-out is real.
  const linalg::Matrix serving = MakeShapeMatrix(1000, 8, 0, rng);
  std::vector<double> serial(serving.rows());
  std::vector<double> parallel(serving.rows());
  {
    ScopedThreadsEnv env("1");
    quantized.PredictMeanInto(serving, serial);
  }
  {
    ScopedThreadsEnv env("8");
    quantized.PredictMeanInto(serving, parallel);
  }
  EXPECT_TRUE(BytesEqual(serial, parallel));
}

TEST(ForestFastPathTest, BinnedTrainingKeepsRegressionQualityAcrossShapes) {
  common::Rng rng(37);
  for (size_t shape = 0; shape < kNumShapes; ++shape) {
    const linalg::Matrix train = MakeShapeMatrix(800, 6, shape, rng);
    const std::vector<double> targets = LinearTargets(train, rng);
    const RandomForestRegressor exact =
        FitForest(train, targets, 41, /*binned=*/false);
    const RandomForestRegressor binned =
        FitForest(train, targets, 41, /*binned=*/true);
    const double exact_r2 = RSquared(exact.Predict(train), targets);
    const double binned_r2 = RSquared(binned.Predict(train), targets);
    // The 256-bin quantile grid restricts thresholds to observed cut
    // values; on a few hundred rows that costs at most a sliver of fit
    // quality (and nothing at all on tied/constant columns).
    EXPECT_GE(binned_r2, exact_r2 - 0.05) << "shape=" << shape;
    // Degenerate shapes must not crash or fit garbage: constant features
    // admit no split, so the forest predicts (near) the target mean.
    if (shape == 3) {
      EXPECT_NEAR(binned_r2, 0.0, 0.05);
    } else {
      EXPECT_GT(binned_r2, 0.5) << "shape=" << shape;
    }
  }
}

TEST(ForestFastPathTest, BinnedForestSaveIsByteIdenticalAcrossThreads) {
  common::Rng rng(43);
  const linalg::Matrix train = MakeShapeMatrix(600, 8, 2, rng);
  const std::vector<double> targets = LinearTargets(train, rng);
  auto fit_and_save = [&](const char* threads) {
    ScopedThreadsEnv env(threads);
    const RandomForestRegressor forest =
        FitForest(train, targets, 47, /*binned=*/true);
    std::ostringstream out;
    BBV_CHECK(forest.Save(out).ok());
    return out.str();
  };
  const std::string serial_bytes = fit_and_save("1");
  const std::string parallel_bytes = fit_and_save("8");
  EXPECT_EQ(serial_bytes, parallel_bytes);
}

TEST(ForestFastPathTest, FeatureBinningCodeCutContract) {
  common::Rng rng(53);
  for (size_t shape = 0; shape < kNumShapes; ++shape) {
    const linalg::Matrix features = MakeShapeMatrix(700, 3, shape, rng);
    const FeatureBinning binning = FeatureBinning::Build(features);
    ASSERT_EQ(binning.num_rows(), features.rows());
    ASSERT_EQ(binning.num_features(), features.cols());
    for (size_t f = 0; f < features.cols(); ++f) {
      const size_t num_cuts = binning.NumCuts(f);
      ASSERT_LE(num_cuts, FeatureBinning::kMaxCuts);
      const uint8_t* codes = binning.Codes(f);
      for (size_t i = 0; i < features.rows(); ++i) {
        const double value = features.At(i, f);
        const size_t code = codes[i];
        ASSERT_LE(code, num_cuts);
        // code(v) <= b  <=>  v <= CutValue(b): check both boundary sides.
        if (code > 0) {
          EXPECT_GT(value, binning.CutValue(f, code - 1))
              << "shape=" << shape << " f=" << f << " row=" << i;
        }
        if (code < num_cuts) {
          EXPECT_LE(value, binning.CutValue(f, code))
              << "shape=" << shape << " f=" << f << " row=" << i;
        }
      }
    }
  }
}

TEST(ForestFastPathTest, QuantizeValueSaturatesAndPreservesOrder) {
  EXPECT_EQ(ForestKernel::QuantizeValue(0.0), 0.0f);
  EXPECT_EQ(ForestKernel::QuantizeValue(1e300),
            std::numeric_limits<float>::infinity());
  EXPECT_EQ(ForestKernel::QuantizeValue(-1e300),
            -std::numeric_limits<float>::infinity());
  EXPECT_TRUE(std::isnan(ForestKernel::QuantizeValue(
      std::numeric_limits<double>::quiet_NaN())));
  // Round-to-nearest float of a representable double is that double.
  EXPECT_EQ(ForestKernel::QuantizeValue(0.5), 0.5f);
}

}  // namespace
}  // namespace bbv::ml
