#include "common/string_util.h"

#include <gtest/gtest.h>

namespace bbv::common {
namespace {

TEST(SplitTest, BasicSplit) {
  const std::vector<std::string> parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, KeepsEmptyTokens) {
  const std::vector<std::string> parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitTest, NoDelimiterYieldsWholeString) {
  const std::vector<std::string> parts = Split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(SplitWhitespaceTest, DropsEmptyTokens) {
  const std::vector<std::string> parts =
      SplitWhitespace("  hello   world\t\nfoo  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "hello");
  EXPECT_EQ(parts[1], "world");
  EXPECT_EQ(parts[2], "foo");
}

TEST(SplitWhitespaceTest, EmptyAndBlankInputs) {
  EXPECT_TRUE(SplitWhitespace("").empty());
  EXPECT_TRUE(SplitWhitespace("   \t ").empty());
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(ToLowerTest, AsciiLowering) {
  EXPECT_EQ(ToLower("Hello World 123"), "hello world 123");
}

TEST(ReplaceAllTest, ReplacesEveryOccurrence) {
  EXPECT_EQ(ReplaceAll("hello world", "o", "0"), "hell0 w0rld");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");
  EXPECT_EQ(ReplaceAll("abc", "x", "y"), "abc");
}

TEST(ReplaceAllTest, EmptyPatternIsIdentity) {
  EXPECT_EQ(ReplaceAll("abc", "", "y"), "abc");
}

TEST(StripTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Strip("  hi  "), "hi");
  EXPECT_EQ(Strip("\t\nhi"), "hi");
  EXPECT_EQ(Strip(""), "");
  EXPECT_EQ(Strip("   "), "");
}

TEST(StartsWithTest, PrefixChecks) {
  EXPECT_TRUE(StartsWith("--seed=1", "--seed="));
  EXPECT_FALSE(StartsWith("-seed", "--seed"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("", "a"));
}

TEST(Fnv1aHashTest, StableAndDistinct) {
  EXPECT_EQ(Fnv1aHash("abc"), Fnv1aHash("abc"));
  EXPECT_NE(Fnv1aHash("abc"), Fnv1aHash("abd"));
  EXPECT_NE(Fnv1aHash(""), Fnv1aHash("a"));
}

}  // namespace
}  // namespace bbv::common
