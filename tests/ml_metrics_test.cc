#include "ml/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

namespace bbv::ml {
namespace {

TEST(AccuracyTest, KnownValues) {
  EXPECT_DOUBLE_EQ(Accuracy({1, 0, 1}, {1, 0, 0}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(Accuracy({1, 1}, {1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(Accuracy({0, 0}, {1, 1}), 0.0);
}

TEST(AccuracyFromProbaTest, UsesArgmax) {
  const linalg::Matrix proba =
      linalg::Matrix::FromRows({{0.9, 0.1}, {0.3, 0.7}, {0.6, 0.4}});
  EXPECT_DOUBLE_EQ(AccuracyFromProba(proba, {0, 1, 1}), 2.0 / 3.0);
}

TEST(RocAucTest, PerfectRanking) {
  EXPECT_DOUBLE_EQ(RocAuc({0.1, 0.2, 0.8, 0.9}, {0, 0, 1, 1}), 1.0);
}

TEST(RocAucTest, ReversedRankingIsZero) {
  EXPECT_DOUBLE_EQ(RocAuc({0.9, 0.8, 0.2, 0.1}, {0, 0, 1, 1}), 0.0);
}

TEST(RocAucTest, RandomScoresNearHalf) {
  // Constant scores: all ties -> AUC exactly 0.5 with average ranks.
  EXPECT_DOUBLE_EQ(RocAuc({0.5, 0.5, 0.5, 0.5}, {0, 1, 0, 1}), 0.5);
}

TEST(RocAucTest, HandComputedWithTies) {
  // scores: pos {0.8, 0.5}, neg {0.5, 0.2}. Pairs: (0.8 vs 0.5)=1,
  // (0.8 vs 0.2)=1, (0.5 vs 0.5)=0.5, (0.5 vs 0.2)=1 -> 3.5/4.
  EXPECT_DOUBLE_EQ(RocAuc({0.8, 0.5, 0.5, 0.2}, {1, 1, 0, 0}), 3.5 / 4.0);
}

TEST(RocAucTest, InvariantToMonotoneTransform) {
  const std::vector<double> scores = {0.1, 0.4, 0.35, 0.8, 0.65};
  const std::vector<int> labels = {0, 0, 1, 1, 1};
  std::vector<double> transformed;
  for (double s : scores) transformed.push_back(std::exp(3.0 * s));
  EXPECT_DOUBLE_EQ(RocAuc(scores, labels), RocAuc(transformed, labels));
}

TEST(ConfusionTest, CountsAllQuadrants) {
  const BinaryConfusion c =
      ConfusionCounts({1, 1, 0, 0, 1}, {1, 0, 0, 1, 1});
  EXPECT_EQ(c.true_positives, 2u);
  EXPECT_EQ(c.false_positives, 1u);
  EXPECT_EQ(c.true_negatives, 1u);
  EXPECT_EQ(c.false_negatives, 1u);
}

TEST(F1Test, KnownValue) {
  // TP=2, FP=1, FN=1 -> precision 2/3, recall 2/3, F1 = 2/3.
  EXPECT_NEAR(F1Score({1, 1, 0, 0, 1}, {1, 0, 0, 1, 1}), 2.0 / 3.0, 1e-12);
}

TEST(F1Test, DegenerateCasesAreZero) {
  // No predicted positives.
  EXPECT_DOUBLE_EQ(F1Score({0, 0}, {1, 1}), 0.0);
  // No actual positives and no predicted positives.
  EXPECT_DOUBLE_EQ(F1Score({0, 0}, {0, 0}), 0.0);
}

TEST(F1Test, PerfectPredictions) {
  EXPECT_DOUBLE_EQ(F1Score({1, 0, 1}, {1, 0, 1}), 1.0);
}

TEST(PrecisionRecallTest, Formulas) {
  BinaryConfusion c;
  c.true_positives = 3;
  c.false_positives = 1;
  c.false_negatives = 2;
  EXPECT_DOUBLE_EQ(Precision(c), 0.75);
  EXPECT_DOUBLE_EQ(Recall(c), 0.6);
}

TEST(LogLossTest, PerfectAndUniform) {
  const linalg::Matrix perfect =
      linalg::Matrix::FromRows({{1.0, 0.0}, {0.0, 1.0}});
  EXPECT_NEAR(LogLoss(perfect, {0, 1}), 0.0, 1e-9);
  const linalg::Matrix uniform =
      linalg::Matrix::FromRows({{0.5, 0.5}, {0.5, 0.5}});
  EXPECT_NEAR(LogLoss(uniform, {0, 1}), std::log(2.0), 1e-12);
}

TEST(LogLossTest, ClipsZeroProbabilities) {
  const linalg::Matrix wrong =
      linalg::Matrix::FromRows({{0.0, 1.0}});
  const double loss = LogLoss(wrong, {0});
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_GT(loss, 10.0);
}

}  // namespace
}  // namespace bbv::ml
