// Scaling benchmark for the deterministic parallel subsystem: runs the
// three parallelized hot paths (forest fitting, meta-training collection,
// cross-validated MAE) at 1, 2, 4 and 8 threads, reports wall time and
// speedup over the serial reference, and verifies that the serialized
// models are byte-identical at every thread count.
//
// With --json[=PATH] the measurements land in BENCH_parallel_scaling.json;
// the "hardware_concurrency" field records how many cores the measurement
// actually had available — speedups are only meaningful when it is at least
// the thread count.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/performance_predictor.h"
#include "linalg/matrix.h"
#include "ml/cross_validation.h"
#include "ml/random_forest.h"

namespace bbv::bench {
namespace {

constexpr int kThreadCounts[] = {1, 2, 4, 8};

/// One workload: returns a digest string of the computed artifact so the
/// caller can assert bit-identical results across thread counts.
struct Workload {
  std::string name;
  std::string (*run)(const RunConfig&);
};

void MakeRegressionData(size_t rows, size_t cols, uint64_t seed,
                        linalg::Matrix& features,
                        std::vector<double>& targets) {
  common::Rng rng(seed);
  features = linalg::Matrix(rows, cols);
  targets.resize(rows);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) features.At(i, j) = rng.Uniform();
    targets[i] = 2.0 * features.At(i, 0) - features.At(i, 1) +
                 rng.Gaussian(0.0, 0.1);
  }
}

std::string RunForestFitImpl(const RunConfig& config, bool binned) {
  linalg::Matrix features;
  std::vector<double> targets;
  MakeRegressionData(config.fast ? 2000 : 8000, 24, config.seed, features,
                     targets);
  ml::RandomForestRegressor::Options options;
  options.num_trees = config.fast ? 64 : 128;
  options.tree.binned_split_search = binned;
  ml::RandomForestRegressor forest(options);
  common::Rng rng(config.seed);
  BBV_CHECK(forest.Fit(features, targets, rng).ok());
  std::ostringstream out;
  BBV_CHECK(forest.Save(out).ok());
  return out.str();
}

std::string RunForestFit(const RunConfig& config) {
  return RunForestFitImpl(config, /*binned=*/false);
}

/// Same fit through the histogram split search: the serialized ensemble
/// must still be byte-identical at every thread count (the binning is
/// built once per Fit and shared read-only across the tree workers), and
/// the serial wall-time ratio against `forest_fit` lands in the
/// "speedup_vs_exact" extra.
std::string RunForestFitBinned(const RunConfig& config) {
  return RunForestFitImpl(config, /*binned=*/true);
}

std::string RunMetaTrain(const RunConfig& config) {
  common::Rng rng(config.seed);
  ExperimentData data = PrepareDataset("income", config, rng);
  std::unique_ptr<ml::BlackBoxModel> model =
      TrainBlackBox("lr", data.train, config, rng);
  core::PerformancePredictor::Options options;
  options.corruptions_per_generator = config.fast ? 20 : 50;
  options.tree_count_grid = {30};
  core::PerformancePredictor predictor(options);
  const auto generators = KnownTabularErrors();
  common::Rng train_rng(config.seed + 1);
  BBV_CHECK(predictor
                .Train(*model, data.test, RawPointers(generators), train_rng)
                .ok());
  std::ostringstream out;
  BBV_CHECK(predictor.Save(out).ok());
  return out.str();
}

std::string RunCvMae(const RunConfig& config) {
  linalg::Matrix features;
  std::vector<double> targets;
  MakeRegressionData(config.fast ? 1500 : 5000, 16, config.seed + 2, features,
                     targets);
  auto factory = [] {
    ml::RandomForestRegressor::Options options;
    options.num_trees = 40;
    return ml::RandomForestRegressor(options);
  };
  common::Rng rng(config.seed + 3);
  const double mae =
      ml::CrossValRegressionMae(factory, features, targets, 5, rng)
          .ValueOrDie();
  std::ostringstream out;
  out.precision(17);
  out << mae;
  return out.str();
}

}  // namespace
}  // namespace bbv::bench

int main(int argc, char** argv) {
  using namespace bbv::bench;  // NOLINT(google-build-using-namespace)
  RunConfig config = ParseArgs(argc, argv);
  PrintHeader("parallel_scaling",
              "wall time of the parallel hot paths vs BBV_THREADS",
              config);
  std::printf("hardware_concurrency=%d\n",
              bbv::common::HardwareThreadCount());

  const Workload workloads[] = {
      {"forest_fit", &RunForestFit},
      {"forest_fit_binned", &RunForestFitBinned},
      {"meta_train", &RunMetaTrain},
      {"cv_mae", &RunCvMae},
  };

  std::vector<BenchResult> results;
  bool all_deterministic = true;
  // Serial exact forest-fit time: the reference for the binned workload's
  // speedup_vs_exact extra (forest_fit runs first in the workload list).
  double forest_fit_serial_seconds = 0.0;
  for (const Workload& workload : workloads) {
    std::string serial_digest;
    double serial_seconds = 0.0;
    for (int threads : kThreadCounts) {
      ScopedThreadsEnv env(threads);
      WallTimer timer;
      const std::string digest = workload.run(config);
      const double seconds = timer.Seconds();
      if (threads == 1) {
        serial_digest = digest;
        serial_seconds = seconds;
        if (workload.name == "forest_fit") {
          forest_fit_serial_seconds = seconds;
        }
      }
      const bool deterministic = digest == serial_digest;
      all_deterministic = all_deterministic && deterministic;
      BenchResult result;
      result.name = workload.name;
      result.threads = threads;
      result.wall_seconds = seconds;
      result.speedup_vs_serial = seconds > 0.0 ? serial_seconds / seconds : 0.0;
      result.extras.emplace_back("deterministic", deterministic ? 1.0 : 0.0);
      if (workload.name == "forest_fit_binned" && threads == 1) {
        // How much the histogram split search buys over the exact one on
        // the same single-threaded fit.
        result.extras.emplace_back(
            "speedup_vs_exact",
            seconds > 0.0 ? forest_fit_serial_seconds / seconds : 0.0);
      }
      results.push_back(result);
      std::printf("%-17s threads=%d wall=%.3fs speedup=%.2fx identical=%s\n",
                  workload.name.c_str(), threads, seconds,
                  result.speedup_vs_serial, deterministic ? "yes" : "NO");
    }
  }

  if (!config.json_path.empty()) {
    WriteBenchJson(config.json_path, "parallel_scaling", config, results,
                   {{"split_search", "exact+binned256"}});
    std::printf("wrote %s\n", config.json_path.c_str());
  }
  MaybeWriteTelemetryJson(config);
  if (!config.telemetry_json_path.empty()) {
    std::printf("wrote %s\n", config.telemetry_json_path.c_str());
  }
  if (!all_deterministic) {
    std::fprintf(stderr,
                 "FAIL: results diverge across thread counts — the "
                 "determinism contract is broken\n");
    return 1;
  }
  return 0;
}
