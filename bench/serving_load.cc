// Multi-tenant serving load benchmark: replays a skewed-popularity, bursty
// request trace (Zipf tenant popularity, batched flushes, mid-trace
// predictor hot-swaps, LRU eviction pressure) through the
// serve::ValidatorService at several BBV_THREADS settings and validates
// that every response estimate and every tenant's serialized sketch state
// is bit-identical to a standalone per-tenant StreamingScorer replay of
// the same trace. Reports throughput plus flush-latency percentiles
// (p50/p99/p999) from the telemetry histograms.
//
// --fast: 200 tenants, ~1e5 rows. --full: 1000 tenants, ~1e6 rows.
// Non-zero exit on any divergence from the standalone path.
//
// With --json[=PATH] the measurements land in BENCH_serving_load.json.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/telemetry.h"
#include "core/performance_predictor.h"
#include "core/prediction_statistics.h"
#include "linalg/matrix.h"
#include "serve/streaming_scorer.h"
#include "serve/validator_service.h"

namespace bbv::bench {
namespace {

constexpr size_t kNumPredictors = 3;
constexpr size_t kFlushEvery = 64;
constexpr size_t kSwappedTenants = 8;

/// Binary predict_proba batch: a `good_fraction` of the rows put 0.99 on
/// their winner, the rest 0.51 (same family the predictor trains on).
linalg::Matrix MixtureBatch(double good_fraction, size_t rows) {
  linalg::Matrix batch(rows, 2);
  const size_t good_rows =
      static_cast<size_t>(good_fraction * static_cast<double>(rows) + 0.5);
  for (size_t i = 0; i < rows; ++i) {
    const double confidence = i < good_rows ? 0.99 : 0.51;
    const size_t winner = i % 2;
    batch.At(i, winner) = confidence;
    batch.At(i, 1 - winner) = 1.0 - confidence;
  }
  return batch;
}

/// Meta-trains one shared performance predictor on synthetic
/// (statistics, score) pairs; distinct seeds grow distinct forests so
/// hot-swaps visibly change the serving estimates.
std::shared_ptr<const core::PerformancePredictor> TrainPredictor(
    uint64_t seed) {
  common::Rng rng(seed);
  core::PerformancePredictor::Options options;
  options.tree_count_grid = {30};
  core::PerformancePredictor predictor(options);
  std::vector<std::vector<double>> statistics;
  std::vector<double> scores;
  for (size_t rows : {400ul, 410ul, 420ul}) {
    for (int level = 0; level <= 10; ++level) {
      const double fraction = static_cast<double>(level) / 10.0;
      statistics.push_back(
          core::PredictionStatistics(MixtureBatch(fraction, rows)));
      scores.push_back(0.51 + 0.48 * fraction);
    }
  }
  BBV_CHECK(
      predictor.TrainFromStatistics(statistics, scores, 0.99, rng).ok());
  return std::make_shared<const core::PerformancePredictor>(
      std::move(predictor));
}

/// One replayed operation: a scoring mini-batch for a tenant, or a
/// predictor hot-swap.
struct TraceOp {
  size_t tenant = 0;
  bool is_swap = false;
  linalg::Matrix batch;
  size_t predictor_index = 0;
};

/// Zipf(1.1) popularity CDF over `tenants` ranks: rank 0 is the hottest.
std::vector<double> ZipfCdf(size_t tenants) {
  std::vector<double> cdf(tenants, 0.0);
  double total = 0.0;
  for (size_t t = 0; t < tenants; ++t) {
    total += 1.0 / std::pow(static_cast<double>(t + 1), 1.1);
    cdf[t] = total;
  }
  for (double& value : cdf) value /= total;
  return cdf;
}

/// Builds the bursty trace: tenants drawn from the Zipf CDF, each arrival
/// emitting a burst of 1-3 consecutive mini-batches, until `target_rows`
/// rows are queued; then hot-swap ops for the hottest tenants are spliced
/// in at the trace midpoint. Generated once so every configuration replays
/// the exact same multiset.
std::vector<TraceOp> BuildTrace(size_t tenants, size_t target_rows,
                                uint64_t seed) {
  const std::vector<double> cdf = ZipfCdf(tenants);
  common::Rng rng(seed);
  std::vector<TraceOp> trace;
  size_t rows_emitted = 0;
  while (rows_emitted < target_rows) {
    const double u = rng.Uniform();
    const size_t tenant = static_cast<size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    const size_t burst = 1 + static_cast<size_t>(rng.Uniform() * 3.0);
    for (size_t b = 0; b < burst && rows_emitted < target_rows; ++b) {
      TraceOp op;
      op.tenant = std::min(tenant, tenants - 1);
      const size_t rows = 60 + static_cast<size_t>(rng.Uniform() * 80.0);
      op.batch = MixtureBatch(rng.Uniform(), rows);
      rows_emitted += rows;
      trace.push_back(std::move(op));
    }
  }
  // Hot-swap the hottest tenants to the "next" predictor mid-trace, so the
  // epoch machinery runs under load.
  std::vector<TraceOp> swaps;
  for (size_t t = 0; t < std::min(kSwappedTenants, tenants); ++t) {
    TraceOp op;
    op.tenant = t;
    op.is_swap = true;
    op.predictor_index = (t + 1) % kNumPredictors;
    swaps.push_back(std::move(op));
  }
  trace.insert(trace.begin() + static_cast<ptrdiff_t>(trace.size() / 2),
               std::make_move_iterator(swaps.begin()),
               std::make_move_iterator(swaps.end()));
  return trace;
}

std::string ScorerBytes(const serve::StreamingScorer& scorer) {
  std::ostringstream out;
  BBV_CHECK(scorer.SaveState(out).ok());
  return out.str();
}

/// Ground truth: replays the trace per tenant through standalone
/// StreamingScorers (scalar estimate per request, swaps applied at the
/// same per-tenant positions).
struct StandaloneResult {
  /// One estimate (point + conformal interval) per scoring op, in trace
  /// order. All four ScoreEstimate fields take part in the bitwise
  /// comparisons below.
  std::vector<core::ScoreEstimate> estimates;
  /// Serialized final state per tenant (empty string = never scored).
  std::vector<std::string> states;
};

StandaloneResult ReplayStandalone(
    const std::vector<TraceOp>& trace, size_t tenants,
    const std::vector<std::shared_ptr<const core::PerformancePredictor>>&
        predictors) {
  StandaloneResult result;
  std::vector<std::optional<serve::StreamingScorer>> scorers(tenants);
  for (size_t t = 0; t < tenants; ++t) {
    auto scorer =
        serve::StreamingScorer::Create(predictors[t % kNumPredictors], {});
    BBV_CHECK(scorer.ok());
    scorers[t].emplace(std::move(*scorer));
  }
  for (const TraceOp& op : trace) {
    serve::StreamingScorer& scorer = *scorers[op.tenant];
    if (op.is_swap) {
      BBV_CHECK(scorer.SwapPredictor(predictors[op.predictor_index]).ok());
      continue;
    }
    BBV_CHECK(scorer.Ingest(op.batch).ok());
    const auto estimate = scorer.EstimateScore();
    BBV_CHECK(estimate.ok()) << estimate.status().ToString();
    result.estimates.push_back(*estimate);
  }
  result.states.resize(tenants);
  for (size_t t = 0; t < tenants; ++t) {
    if (scorers[t]->rows_ingested() == 0) continue;
    result.states[t] = ScorerBytes(*scorers[t]);
  }
  return result;
}

/// One service replay of the trace at the ambient BBV_THREADS setting.
struct ServiceResult {
  std::vector<core::ScoreEstimate> estimates;
  double wall_seconds = 0.0;
  double flush_p50 = 0.0;
  double flush_p99 = 0.0;
  double flush_p999 = 0.0;
  double kernel_batches = 0.0;
  double coalesced_requests = 0.0;
  double evictions = 0.0;
  double rehydrations = 0.0;
  bool states_match_standalone = true;
};

ServiceResult RunService(
    const std::vector<TraceOp>& trace, size_t tenants,
    const std::vector<std::shared_ptr<const core::PerformancePredictor>>&
        predictors,
    const StandaloneResult& standalone) {
  namespace telemetry = common::telemetry;
  telemetry::Registry::Global().ResetForTesting();

  serve::ValidatorService::Options options;
  options.max_resident_tenants = std::max<size_t>(1, tenants / 4);
  serve::ValidatorService service(options);
  std::vector<std::string> ids;
  for (size_t t = 0; t < tenants; ++t) {
    ids.push_back("model-" + std::to_string(t));
    BBV_CHECK(
        service.CreateTenant(ids[t], predictors[t % kNumPredictors]).ok());
  }

  ServiceResult result;
  // request id -> index into the scoring-op estimate vector (or SIZE_MAX
  // for swaps).
  std::map<uint64_t, size_t> scoring_index;
  size_t scoring_ops = 0;
  for (const TraceOp& op : trace) {
    if (!op.is_swap) ++scoring_ops;
  }
  result.estimates.assign(scoring_ops, core::ScoreEstimate{});

  WallTimer timer;
  size_t since_flush = 0;
  size_t next_scoring = 0;
  const auto collect = [&](const std::vector<
                           serve::ValidatorService::ScoreResponse>&
                               responses) {
    for (const auto& response : responses) {
      BBV_CHECK(response.status.ok())
          << response.model_id << ": " << response.status.ToString();
      const auto it = scoring_index.find(response.request_id);
      if (it == scoring_index.end()) continue;  // swap response
      result.estimates[it->second] = response.estimate;
    }
  };
  for (const TraceOp& op : trace) {
    if (op.is_swap) {
      service.SubmitSwap(ids[op.tenant], predictors[op.predictor_index]);
    } else {
      const uint64_t id = service.Submit(ids[op.tenant], op.batch);
      scoring_index.emplace(id, next_scoring++);
    }
    if (++since_flush >= kFlushEvery) {
      collect(service.Flush());
      since_flush = 0;
    }
  }
  collect(service.Flush());
  result.wall_seconds = timer.Seconds();
  BBV_CHECK(next_scoring == scoring_ops);

  // Final state must be bitwise the standalone replay's, resident or
  // evicted alike.
  for (size_t t = 0; t < tenants; ++t) {
    if (standalone.states[t].empty()) continue;
    std::ostringstream out;
    BBV_CHECK(service.SaveTenantState(ids[t], out).ok());
    if (out.str() != standalone.states[t]) {
      result.states_match_standalone = false;
      break;
    }
  }

  const telemetry::Snapshot snapshot =
      telemetry::Registry::Global().TakeSnapshot();
  for (const auto& histogram : snapshot.histograms) {
    if (histogram.name == "serve.service.flush") {
      result.flush_p50 = histogram.p50;
      result.flush_p99 = histogram.p99;
      result.flush_p999 = histogram.p999;
    }
  }
  result.kernel_batches = static_cast<double>(
      telemetry::ReadCounter("serve.service.kernel_batches"));
  result.coalesced_requests = static_cast<double>(
      telemetry::ReadCounter("serve.service.coalesced_requests"));
  result.evictions =
      static_cast<double>(telemetry::ReadCounter("serve.service.evictions"));
  result.rehydrations = static_cast<double>(
      telemetry::ReadCounter("serve.service.rehydrations"));
  return result;
}

}  // namespace
}  // namespace bbv::bench

int main(int argc, char** argv) {
  using namespace bbv::bench;  // NOLINT(google-build-using-namespace)
  RunConfig config = ParseArgs(argc, argv);
  PrintHeader("serving_load",
              "multi-tenant validator service under a skewed bursty trace",
              config);
  bbv::common::telemetry::SetEnabled(true);

  const size_t tenants = config.fast ? 200 : 1000;
  const size_t target_rows = config.fast ? 100000 : 1000000;
  std::vector<std::shared_ptr<const bbv::core::PerformancePredictor>>
      predictors;
  for (size_t p = 0; p < kNumPredictors; ++p) {
    predictors.push_back(TrainPredictor(config.seed + 1 + p));
  }
  const std::vector<TraceOp> trace =
      BuildTrace(tenants, target_rows, config.seed);
  size_t total_rows = 0;
  size_t scoring_ops = 0;
  for (const TraceOp& op : trace) {
    if (op.is_swap) continue;
    total_rows += op.batch.rows();
    ++scoring_ops;
  }
  std::printf("tenants=%zu requests=%zu rows=%zu swaps=%zu\n", tenants,
              scoring_ops, total_rows, trace.size() - scoring_ops);

  const StandaloneResult standalone =
      ReplayStandalone(trace, tenants, predictors);

  std::vector<BenchResult> results;
  bool all_identical = true;
  bool all_deterministic = true;
  std::vector<bbv::core::ScoreEstimate> serial_estimates;
  double serial_seconds = 0.0;
  for (int threads : {1, 4, 8}) {
    ScopedThreadsEnv env(threads);
    const ServiceResult run =
        RunService(trace, tenants, predictors, standalone);
    const bool identical = run.estimates == standalone.estimates &&
                           run.states_match_standalone;
    all_identical = all_identical && identical;
    if (threads == 1) {
      serial_estimates = run.estimates;
      serial_seconds = run.wall_seconds;
    }
    const bool deterministic = run.estimates == serial_estimates;
    all_deterministic = all_deterministic && deterministic;

    BenchResult result;
    result.name = "serving_load";
    result.threads = threads;
    result.wall_seconds = run.wall_seconds;
    result.speedup_vs_serial =
        run.wall_seconds > 0.0 ? serial_seconds / run.wall_seconds : 0.0;
    result.extras.emplace_back("tenants", static_cast<double>(tenants));
    result.extras.emplace_back("requests", static_cast<double>(scoring_ops));
    result.extras.emplace_back("rows", static_cast<double>(total_rows));
    result.extras.emplace_back(
        "rows_per_second",
        run.wall_seconds > 0.0
            ? static_cast<double>(total_rows) / run.wall_seconds
            : 0.0);
    result.extras.emplace_back("flush_p50_seconds", run.flush_p50);
    result.extras.emplace_back("flush_p99_seconds", run.flush_p99);
    result.extras.emplace_back("flush_p999_seconds", run.flush_p999);
    result.extras.emplace_back("kernel_batches", run.kernel_batches);
    result.extras.emplace_back("coalesced_requests", run.coalesced_requests);
    result.extras.emplace_back("evictions", run.evictions);
    result.extras.emplace_back("rehydrations", run.rehydrations);
    result.extras.emplace_back("identical_to_standalone",
                               identical ? 1.0 : 0.0);
    result.extras.emplace_back("deterministic", deterministic ? 1.0 : 0.0);
    results.push_back(result);
    std::printf(
        "serving_load threads=%d wall=%.3fs rows/s=%.0f p50=%.4fs "
        "p99=%.4fs p999=%.4fs coalesced=%.0f/%.0f evict=%.0f rehydrate=%.0f "
        "identical=%s\n",
        threads, run.wall_seconds,
        run.wall_seconds > 0.0
            ? static_cast<double>(total_rows) / run.wall_seconds
            : 0.0,
        run.flush_p50, run.flush_p99, run.flush_p999, run.coalesced_requests,
        run.kernel_batches, run.evictions, run.rehydrations,
        identical ? "yes" : "NO");
  }

  if (!config.json_path.empty()) {
    WriteBenchJson(config.json_path, "serving_load", config, results);
    std::printf("wrote %s\n", config.json_path.c_str());
  }
  MaybeWriteTelemetryJson(config);
  if (!config.telemetry_json_path.empty()) {
    std::printf("wrote %s\n", config.telemetry_json_path.c_str());
  }
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: service responses or tenant states diverge from the "
                 "standalone StreamingScorer replay\n");
    return 1;
  }
  if (!all_deterministic) {
    std::fprintf(stderr,
                 "FAIL: service results depend on BBV_THREADS — the "
                 "determinism contract is broken\n");
    return 1;
  }
  return 0;
}
