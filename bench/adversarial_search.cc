// Adversarial corruption search: successive halving over the composition
// space of the error generators (errors::CorruptionSearch), maximizing the
// |estimated - true| score error of a trained performance predictor — the
// stress test that finds the corruption compositions the meta-training
// regime handles worst. Compared against an equal-budget random sweep (the
// paper's random-magnitude corruption regime): the search must surface a
// strictly worse blind spot than the sweep stumbles into.
//
// CI contract (adversarial-smoke job): --report=PATH writes the canonical
// timing-free report of the top findings; two back-to-back runs with the
// same seed must produce byte-identical reports, and the in-process
// BBV_THREADS 1-vs-8 self-check must agree, or the binary exits non-zero.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/performance_predictor.h"
#include "errors/corruption_search.h"

namespace bbv::bench {
namespace {

errors::CorruptionSearch::Options SearchOptions(const RunConfig& config) {
  errors::CorruptionSearch::Options options;
  options.seed = config.seed;
  options.max_depth = 3;
  if (config.fast) {
    options.initial_candidates = 24;
    options.probe_repetitions = 1;
    options.max_rounds = 2;
  } else {
    options.initial_candidates = 64;
    options.probe_repetitions = 2;
    options.max_rounds = 3;
  }
  return options;
}

int Run(const RunConfig& config, const std::string& report_path) {
  PrintHeader("Adversarial corruption search",
              "successive halving vs equal-budget random sweep over "
              "compound corruptions (income, xgb)",
              config);
  common::Rng rng(config.seed);
  const ExperimentData data = PrepareDataset("income", config, rng);
  const auto model = TrainBlackBox("xgb", data.train, config, rng);

  core::PerformancePredictor::Options predictor_options;
  predictor_options.corruptions_per_generator = config.CorruptionsPerGenerator();
  core::PerformancePredictor predictor(predictor_options);
  const auto generators = KnownTabularErrors();
  BBV_CHECK(
      predictor.Train(*model, data.test, RawPointers(generators), rng).ok());
  std::printf("predictor trained: test_score=%.4f examples=%zu\n",
              predictor.test_score(), predictor.num_training_examples());

  const errors::CorruptionSearch::ErrorProbe probe =
      [&](const data::DataFrame& corrupted)
      -> common::Result<errors::CorruptionSearch::ProbeResult> {
    BBV_ASSIGN_OR_RETURN(
        core::PerformancePredictor::EstimationErrorProbe measured,
        predictor.ProbeEstimationError(*model, corrupted,
                                       data.serving.labels));
    return errors::CorruptionSearch::ProbeResult{measured.estimated_score,
                                                 measured.actual_score};
  };

  const errors::CorruptionSearch search(SearchOptions(config));
  WallTimer timer;
  auto result = search.Run(data.serving.features, probe);
  BBV_CHECK(result.ok()) << result.status().ToString();
  const double search_seconds = timer.Seconds();
  const std::string report =
      errors::CorruptionSearch::ReportString(*result, 10);
  std::printf("%s", report.c_str());

  // Equal-budget baseline: the same number of probe invocations spent on
  // random compositions with random magnitudes.
  timer.Reset();
  auto sweep =
      search.RandomSweep(data.serving.features, probe, result->total_probes);
  BBV_CHECK(sweep.ok()) << sweep.status().ToString();
  const double sweep_seconds = timer.Seconds();
  const double search_best = result->findings.front().mean_abs_error;
  const double sweep_best = sweep->findings.front().mean_abs_error;
  std::printf(
      "search_best=%.6f sweep_best=%.6f (equal budget: %zu probes each)\n",
      search_best, sweep_best, result->total_probes);
  std::printf("sweep_top: %s\n", sweep->findings.front().spec.Key().c_str());

  // Determinism self-check: the full search replayed at BBV_THREADS=1 and
  // BBV_THREADS=8 must reproduce the canonical report byte for byte.
  bool deterministic = true;
  for (int threads : {1, 8}) {
    ScopedThreadsEnv scoped(threads);
    auto replay = search.Run(data.serving.features, probe);
    BBV_CHECK(replay.ok()) << replay.status().ToString();
    if (errors::CorruptionSearch::ReportString(*replay, 10) != report) {
      deterministic = false;
      std::printf("DETERMINISM FAILURE at BBV_THREADS=%d\n", threads);
    }
  }
  std::printf("determinism(threads 1 vs 8): %s\n",
              deterministic ? "byte-identical" : "MISMATCH");

  if (!report_path.empty()) {
    std::ofstream out(report_path);
    BBV_CHECK(out.good()) << "cannot write " << report_path;
    out << report;
    BBV_CHECK(out.good());
  }

  if (!config.json_path.empty()) {
    std::vector<BenchResult> results;
    BenchResult search_result;
    search_result.name = "corruption_search";
    search_result.wall_seconds = search_seconds;
    search_result.extras = {
        {"total_probes", static_cast<double>(result->total_probes)},
        {"candidates", static_cast<double>(result->findings.size())},
        {"best_mean_abs_error", search_best},
        {"deterministic", deterministic ? 1.0 : 0.0},
    };
    BenchResult sweep_result;
    sweep_result.name = "random_sweep";
    sweep_result.wall_seconds = sweep_seconds;
    sweep_result.extras = {
        {"total_probes", static_cast<double>(sweep->total_probes)},
        {"best_mean_abs_error", sweep_best},
        {"search_beats_sweep", search_best > sweep_best ? 1.0 : 0.0},
    };
    results.push_back(std::move(search_result));
    results.push_back(std::move(sweep_result));
    WriteBenchJson(config.json_path, "adversarial_search", config, results,
                   {{"dataset", "income"}, {"black_box", "xgb"}});
  }
  MaybeWriteTelemetryJson(config);
  return deterministic ? 0 : 1;
}

}  // namespace
}  // namespace bbv::bench

int main(int argc, char** argv) {
  // --report=PATH is bench-specific; strip it before the shared parser.
  std::string report_path;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--report=", 9) == 0) {
      report_path = argv[i] + 9;
    } else {
      rest.push_back(argv[i]);
    }
  }
  const bbv::bench::RunConfig config =
      bbv::bench::ParseArgs(static_cast<int>(rest.size()), rest.data());
  return bbv::bench::Run(config, report_path);
}
