// Reproduces Figure 3: performance-prediction quality (MAE with 5th/95th
// percentile bands) for linear vs. nonlinear models as the fraction of
// *unknown* errors grows.
//
// Protocol (paper §6.1.2): the serving data is always corrupted by the full
// error mixture (swapped columns, scaling, outliers, missing values and
// model-entropy-based missing values), but the performance predictor is
// trained on data where each error only affects `fraction` of the rows.
// fraction = 0 means the predictor never saw the error type at training
// time; the paper observes that linear-model performance becomes harder to
// predict while nonlinear models stay predictable.

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/performance_predictor.h"
#include "errors/missing_values.h"
#include "errors/mixture.h"
#include "errors/numeric_errors.h"
#include "errors/swapped_columns.h"

namespace bbv::bench {
namespace {

/// Wraps a generator so that only `fraction` of the rows receive its
/// corruption (fraction = 1 reduces to the plain generator).
class BlendedGen : public errors::ErrorGen {
 public:
  BlendedGen(std::shared_ptr<errors::ErrorGen> inner, double fraction)
      : inner_(std::move(inner)), fraction_(fraction) {}

  common::Result<data::DataFrame> Corrupt(const data::DataFrame& frame,
                                          common::Rng& rng) const override {
    return errors::BlendCorruption(frame, *inner_, fraction_, rng);
  }
  std::string Name() const override { return "blended_" + inner_->Name(); }

 private:
  std::shared_ptr<errors::ErrorGen> inner_;
  double fraction_;
};

std::vector<double> RunCell(const std::string& model_name,
                            const std::string& dataset_name, double fraction,
                            const RunConfig& config) {
  common::Rng rng(config.seed);
  const ExperimentData data = PrepareDataset(dataset_name, config, rng);
  const auto model = TrainBlackBox(model_name, data.train, config, rng);

  // The paper chooses one random numeric and one random categorical column
  // per model/dataset combination and applies all error types to them
  // (swaps, scaling, outliers, missing values, entropy-based missing).
  const std::vector<std::string> numeric_columns =
      data.test.features.ColumnNamesOfType(data::ColumnType::kNumeric);
  const std::vector<std::string> categorical_columns =
      data.test.features.ColumnNamesOfType(data::ColumnType::kCategorical);
  BBV_CHECK(!numeric_columns.empty() && !categorical_columns.empty());
  const std::string numeric_column = rng.Choice(numeric_columns);
  const std::string categorical_column = rng.Choice(categorical_columns);

  std::vector<std::shared_ptr<errors::ErrorGen>> full_errors = {
      std::make_shared<errors::SwappedColumns>(
          std::make_pair(categorical_column, numeric_column)),
      std::make_shared<errors::Scaling>(
          std::vector<std::string>{numeric_column}),
      std::make_shared<errors::NumericOutliers>(
          std::vector<std::string>{numeric_column}),
      std::make_shared<errors::MissingValues>(
          std::vector<std::string>{categorical_column}),
      std::make_shared<errors::EntropyBasedMissing>(
          model.get(), std::vector<std::string>{categorical_column})};

  // Predictor only sees `fraction` of each error's impact at training time.
  std::vector<std::shared_ptr<errors::ErrorGen>> blended;
  blended.reserve(full_errors.size());
  for (const auto& generator : full_errors) {
    blended.push_back(std::make_shared<BlendedGen>(generator, fraction));
  }

  core::PerformancePredictor::Options options;
  options.corruptions_per_generator =
      std::max(8, config.CorruptionsPerGenerator() / 2);
  core::PerformancePredictor predictor(options);
  const common::Status status =
      predictor.Train(*model, data.test, RawPointers(blended), rng);
  BBV_CHECK(status.ok()) << status.ToString();

  // Serving data always receives the full mixture.
  errors::ErrorMixture mixture(full_errors);
  std::vector<double> absolute_errors;
  for (int repetition = 0; repetition < config.ServingRepetitions();
       ++repetition) {
    auto corrupted = mixture.Corrupt(data.serving.features, rng);
    BBV_CHECK(corrupted.ok()) << corrupted.status().ToString();
    auto probabilities = model->PredictProba(*corrupted);
    BBV_CHECK(probabilities.ok()) << probabilities.status().ToString();
    const double true_accuracy = core::ComputeScore(
        core::ScoreMetric::kAccuracy, *probabilities, data.serving.labels);
    auto estimate = predictor.EstimateScoreFromProba(*probabilities);
    BBV_CHECK(estimate.ok()) << estimate.status().ToString();
    absolute_errors.push_back(std::abs(estimate->point - true_accuracy));
  }
  return absolute_errors;
}

void Run(const RunConfig& config) {
  PrintHeader("Figure 3",
              "prediction quality for linear vs nonlinear models under "
              "increasing fractions of unknown error types (fraction of "
              "unknown errors = 1 - training blend fraction)",
              config);
  const std::vector<double> unknown_fractions = {0.0, 0.25, 0.5, 0.75, 1.0};
  const std::vector<std::string> tabular_datasets = {"income", "heart", "bank"};

  struct Group {
    const char* label;
    std::vector<std::string> models;
  };
  const std::vector<Group> groups = {
      {"linear", {"lr"}},
      {"nonlinear", {"xgb", "dnn"}},
  };
  for (const Group& group : groups) {
    std::printf("--- %s model(s) ---\n", group.label);
    for (double unknown : unknown_fractions) {
      const double blend = 1.0 - unknown;
      std::vector<double> pooled;
      for (const std::string& model_name : group.models) {
        for (const std::string& dataset : tabular_datasets) {
          const std::vector<double> errors_for_cell =
              RunCell(model_name, dataset, blend, config);
          pooled.insert(pooled.end(), errors_for_cell.begin(),
                        errors_for_cell.end());
        }
      }
      const Summary summary = Summarize(pooled);
      std::printf(
          "group=%-9s fraction_unknown=%.2f mae{p5=%.4f median=%.4f "
          "p95=%.4f mean=%.4f}\n",
          group.label, unknown, summary.p05, summary.median, summary.p95,
          summary.mean);
      std::fflush(stdout);
    }
  }
}

}  // namespace
}  // namespace bbv::bench

int main(int argc, char** argv) {
  const bbv::bench::RunConfig config = bbv::bench::ParseArgs(argc, argv);
  bbv::bench::Run(config);
  bbv::bench::MaybeWriteTelemetryJson(config);
  return 0;
}
