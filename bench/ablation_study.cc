// Ablation benches for the design choices DESIGN.md calls out (not a paper
// figure; engineering validation of the reproduction):
//
//   A1 percentile grid granularity — how coarse can the output statistics
//      get before the predictor's MAE degrades (21 / 11 / 5 / 1 points)?
//   A2 regression model — random forest (paper) vs a single CART.
//   A3 clean copies — does mixing uncorrupted copies of D_test into the
//      meta-training set (the p_err = 0 case) matter?
//   A4 validator features — full feature set vs dropping the KS-test
//      features vs dropping the internal predictor estimate.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/performance_predictor.h"
#include "core/performance_validator.h"
#include "errors/mixture.h"
#include "ml/metrics.h"
#include "stats/descriptive.h"

namespace bbv::bench {
namespace {

double PredictorMae(const ml::BlackBox& model, const data::Dataset& test,
                    const data::Dataset& serving,
                    const errors::ErrorGen& mixture,
                    const core::PerformancePredictor::Options& options,
                    int repetitions, common::Rng& rng) {
  core::PerformancePredictor predictor(options);
  const std::vector<const errors::ErrorGen*> generators = {&mixture};
  const common::Status status = predictor.Train(model, test, generators, rng);
  BBV_CHECK(status.ok()) << status.ToString();
  std::vector<double> absolute_errors;
  for (int repetition = 0; repetition < repetitions; ++repetition) {
    auto corrupted = mixture.Corrupt(serving.features, rng);
    BBV_CHECK(corrupted.ok());
    auto probabilities = model.PredictProba(*corrupted);
    BBV_CHECK(probabilities.ok());
    const double truth = core::ComputeScore(core::ScoreMetric::kAccuracy,
                                            *probabilities, serving.labels);
    auto estimate = predictor.EstimateScoreFromProba(*probabilities);
    BBV_CHECK(estimate.ok());
    absolute_errors.push_back(std::abs(estimate->point - truth));
  }
  return stats::Mean(absolute_errors);
}

double ValidatorF1(const ml::BlackBox& model, const data::Dataset& test,
                   const data::Dataset& serving,
                   const errors::ErrorGen& mixture,
                   const core::PerformanceValidator::Options& options,
                   int repetitions, common::Rng& rng) {
  core::PerformanceValidator validator(options);
  const std::vector<const errors::ErrorGen*> generators = {&mixture};
  const common::Status status = validator.Train(model, test, generators, rng);
  BBV_CHECK(status.ok()) << status.ToString();
  std::vector<int> truth;
  std::vector<int> alarm;
  for (int repetition = 0; repetition < repetitions; ++repetition) {
    auto corrupted = mixture.Corrupt(serving.features, rng);
    BBV_CHECK(corrupted.ok());
    auto probabilities = model.PredictProba(*corrupted);
    BBV_CHECK(probabilities.ok());
    const double true_accuracy = core::ComputeScore(
        core::ScoreMetric::kAccuracy, *probabilities, serving.labels);
    truth.push_back(true_accuracy < (1.0 - options.threshold) *
                                        validator.test_score()
                        ? 1
                        : 0);
    auto accepted = validator.ValidateFromProba(*probabilities);
    BBV_CHECK(accepted.ok());
    alarm.push_back(*accepted ? 0 : 1);
  }
  return ml::F1Score(alarm, truth);
}

std::vector<double> PercentileGrid(int step) {
  std::vector<double> points;
  for (int q = 0; q <= 100; q += step) points.push_back(q);
  return points;
}

void Run(const RunConfig& config) {
  PrintHeader("Ablation study",
              "design-choice ablations for the performance predictor and "
              "validator (income, xgb, mixture of known errors)",
              config);
  common::Rng rng(config.seed);
  const ExperimentData data = PrepareDataset("income", config, rng);
  const auto model = TrainBlackBox("xgb", data.train, config, rng);
  const errors::ErrorMixture mixture(KnownTabularErrors());
  const int corruption_budget = 4 * config.CorruptionsPerGenerator();
  const int repetitions = config.ServingRepetitions();

  // A1: percentile grid granularity.
  for (int step : {5, 10, 25, 50}) {
    core::PerformancePredictor::Options options;
    options.corruptions_per_generator = corruption_budget;
    options.percentile_points = PercentileGrid(step);
    const double mae = PredictorMae(*model, data.test, data.serving, mixture,
                                    options, repetitions, rng);
    std::printf("A1 percentile_step=%-3d points=%-3zu mae=%.4f\n", step,
                options.percentile_points.size(), mae);
  }

  // A2: random forest vs a single tree.
  for (int trees : {1, 10, 100}) {
    core::PerformancePredictor::Options options;
    options.corruptions_per_generator = corruption_budget;
    options.tree_count_grid = {trees};
    const double mae = PredictorMae(*model, data.test, data.serving, mixture,
                                    options, repetitions, rng);
    std::printf("A2 regressor_trees=%-4d mae=%.4f\n", trees, mae);
  }

  // A3: clean copies of D_test in the meta-training set.
  for (int clean : {0, 5, 20}) {
    core::PerformancePredictor::Options options;
    options.corruptions_per_generator = corruption_budget;
    options.clean_copies = clean;
    const double mae = PredictorMae(*model, data.test, data.serving, mixture,
                                    options, repetitions, rng);
    std::printf("A3 clean_copies=%-3d mae=%.4f\n", clean, mae);
  }

  // A4: validator feature ablation at the 5% threshold.
  struct FeatureConfig {
    const char* name;
    bool ks;
    bool predictor;
  };
  for (const FeatureConfig& fc :
       {FeatureConfig{"full", true, true},
        FeatureConfig{"no_ks_tests", false, true},
        FeatureConfig{"no_predictor", true, false},
        FeatureConfig{"percentiles_only", false, false}}) {
    core::PerformanceValidator::Options options;
    options.threshold = 0.05;
    options.corruptions_per_generator = corruption_budget;
    options.use_ks_features = fc.ks;
    options.use_predictor_feature = fc.predictor;
    const double f1 = ValidatorF1(*model, data.test, data.serving, mixture,
                                  options, repetitions, rng);
    std::printf("A4 validator_features=%-17s f1=%.3f\n", fc.name, f1);
  }
  std::fflush(stdout);
}

}  // namespace
}  // namespace bbv::bench

int main(int argc, char** argv) {
  bbv::bench::Run(bbv::bench::ParseArgs(argc, argv));
  return 0;
}
