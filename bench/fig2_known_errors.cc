// Reproduces Figure 2 (a-d): distribution of the absolute error of the
// performance predictor's accuracy estimates under *known* error types (but
// unknown magnitudes), for four models across six datasets.
//
//   fig2(a): lr   x {income, heart, bank, tweets}
//   fig2(b): dnn  x {income, heart, bank, tweets}
//   fig2(c): xgb  x {income, heart, bank, tweets}
//   fig2(d): conv x {digits, fashion} with noise / rotation errors
//
// For each (model, dataset, error) cell we train a performance predictor on
// corrupted copies of the test set (Algorithm 1), then corrupt the unseen
// serving partition with fresh random magnitudes and compare the predicted
// accuracy against the true accuracy (computable in this virtual setup).

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/performance_predictor.h"

namespace bbv::bench {
namespace {

void RunCell(const std::string& model_name, const std::string& dataset_name,
             const RunConfig& config) {
  common::Rng rng(config.seed);
  const ExperimentData data = PrepareDataset(dataset_name, config, rng);
  const auto model = TrainBlackBox(model_name, data.train, config, rng);
  const auto clean_accuracy = model->ScoreAccuracy(data.test);
  BBV_CHECK(clean_accuracy.ok()) << clean_accuracy.status().ToString();

  for (const auto& generator : ErrorsForDataset(dataset_name)) {
    core::PerformancePredictor::Options options;
    options.corruptions_per_generator =
        config.CorruptionsPerGenerator();
    core::PerformancePredictor predictor(options);
    const std::vector<const errors::ErrorGen*> generators = {generator.get()};
    const common::Status status =
        predictor.Train(*model, data.test, generators, rng);
    BBV_CHECK(status.ok()) << status.ToString();

    std::vector<double> absolute_errors;
    for (int repetition = 0; repetition < config.ServingRepetitions();
         ++repetition) {
      auto corrupted = generator->Corrupt(data.serving.features, rng);
      BBV_CHECK(corrupted.ok()) << corrupted.status().ToString();
      auto probabilities = model->PredictProba(*corrupted);
      BBV_CHECK(probabilities.ok()) << probabilities.status().ToString();
      const double true_accuracy = core::ComputeScore(
          core::ScoreMetric::kAccuracy, *probabilities, data.serving.labels);
      auto estimate = predictor.EstimateScoreFromProba(*probabilities);
      BBV_CHECK(estimate.ok()) << estimate.status().ToString();
      absolute_errors.push_back(std::abs(estimate->point - true_accuracy));
    }
    const Summary summary = Summarize(absolute_errors);
    std::printf(
        "model=%-4s dataset=%-7s error=%-22s clean_acc=%.3f "
        "abs_err{p25=%.4f median=%.4f p75=%.4f p95=%.4f}\n",
        model_name.c_str(), dataset_name.c_str(), generator->Name().c_str(),
        *clean_accuracy, summary.p25, summary.median, summary.p75,
        summary.p95);
    std::fflush(stdout);
  }
}

void Run(const RunConfig& config) {
  PrintHeader("Figure 2",
              "prediction error for accuracy estimates under known error "
              "types (unknown magnitudes)",
              config);
  struct Panel {
    const char* label;
    const char* model;
    std::vector<std::string> datasets;
  };
  const std::vector<Panel> panels = {
      {"fig2a", "lr", {"income", "heart", "bank", "tweets"}},
      {"fig2b", "dnn", {"income", "heart", "bank", "tweets"}},
      {"fig2c", "xgb", {"income", "heart", "bank", "tweets"}},
      {"fig2d", "conv", {"digits", "fashion"}},
  };
  for (const Panel& panel : panels) {
    if (config.model != "all" && config.model != panel.model) continue;
    std::printf("--- %s (%s) ---\n", panel.label, panel.model);
    for (const std::string& dataset : panel.datasets) {
      RunCell(panel.model, dataset, config);
    }
  }
}

}  // namespace
}  // namespace bbv::bench

int main(int argc, char** argv) {
  const bbv::bench::RunConfig config = bbv::bench::ParseArgs(argc, argv);
  bbv::bench::Run(config);
  bbv::bench::MaybeWriteTelemetryJson(config);
  return 0;
}
