// Reproduces Figure 6: performance validation for black box models trained
// by AutoML methods, under mixtures of known shifts and errors.
//
//   auto-sklearn  -> automl::AutoMlTabularSearch(flavor="sklearn") on income
//   TPOT          -> automl::AutoMlTabularSearch(flavor="tpot") on income
//   auto-keras    -> automl::AutoKerasImageSearch on digits
//   large-convnet -> the paper-scale CNN on digits
//
// For each model and threshold in {3%, 5%, 10%} we report the F1 of PPM and
// of the BBSE / BBSE-h / REL baselines (REL is not applicable to the image
// datasets, mirroring the paper).

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "automl/automl_search.h"
#include "bench/bench_util.h"
#include "core/baselines.h"
#include "core/performance_validator.h"
#include "errors/mixture.h"
#include "ml/metrics.h"

namespace bbv::bench {
namespace {

void RunCell(const std::string& automl_name, const std::string& dataset_name,
             const RunConfig& config) {
  common::Rng rng(config.seed);
  const ExperimentData data = PrepareDataset(dataset_name, config, rng);

  std::unique_ptr<ml::BlackBoxModel> model;
  if (automl_name == "auto-sklearn" || automl_name == "TPOT") {
    automl::AutoMlOptions options;
    options.flavor = automl_name == "TPOT" ? "tpot" : "sklearn";
    auto result = automl::AutoMlTabularSearch(data.train, options, rng);
    BBV_CHECK(result.ok()) << result.status().ToString();
    model = std::move(*result);
  } else if (automl_name == "auto-keras") {
    auto result = automl::AutoKerasImageSearch(data.train, rng);
    BBV_CHECK(result.ok()) << result.status().ToString();
    model = std::move(*result);
  } else {
    auto result = automl::MakeLargeConvNet(data.train, rng, /*paper_scale=*/!config.fast);
    BBV_CHECK(result.ok()) << result.status().ToString();
    model = std::move(*result);
  }
  const auto test_accuracy = model->ScoreAccuracy(data.test);
  BBV_CHECK(test_accuracy.ok()) << test_accuracy.status().ToString();

  const bool image_data =
      dataset_name == "digits" || dataset_name == "fashion";
  const errors::RandomSubsetCorruption mixture(
      std::make_shared<errors::ErrorMixture>(image_data ? ImageErrors()
                                                        : KnownTabularErrors()));

  core::BbseDetector bbse(model.get());
  BBV_CHECK(bbse.Fit(data.test.features).ok());
  core::BbsehDetector bbseh(model.get());
  BBV_CHECK(bbseh.Fit(data.test.features).ok());
  core::RelShiftDetector rel;
  const bool rel_applicable = !image_data;
  if (rel_applicable) {
    BBV_CHECK(rel.Fit(data.train.features).ok());
  }

  for (double threshold : {0.03, 0.05, 0.10}) {
    core::PerformanceValidator::Options options;
    options.threshold = threshold;
    options.corruptions_per_generator =
        (image_data ? 2 : 4) * config.CorruptionsPerGenerator();
    core::PerformanceValidator validator(options);
    const std::vector<const errors::ErrorGen*> training_errors = {&mixture};
    const common::Status status =
        validator.Train(*model, data.test, training_errors, rng);
    BBV_CHECK(status.ok()) << status.ToString();

    std::vector<int> truth;
    std::vector<int> ppm_alarm;
    std::vector<int> bbse_alarm;
    std::vector<int> bbseh_alarm;
    std::vector<int> rel_alarm;
    for (int repetition = 0; repetition < config.ServingRepetitions();
         ++repetition) {
      auto corrupted = mixture.Corrupt(data.serving.features, rng);
      BBV_CHECK(corrupted.ok()) << corrupted.status().ToString();
      auto probabilities = model->PredictProba(*corrupted);
      BBV_CHECK(probabilities.ok()) << probabilities.status().ToString();
      const double true_accuracy = core::ComputeScore(
          core::ScoreMetric::kAccuracy, *probabilities, data.serving.labels);
      truth.push_back(
          true_accuracy < (1.0 - threshold) * *test_accuracy ? 1 : 0);
      auto accepted = validator.ValidateFromProba(*probabilities);
      BBV_CHECK(accepted.ok()) << accepted.status().ToString();
      ppm_alarm.push_back(*accepted ? 0 : 1);
      auto bbse_detects = bbse.DetectsShiftFromProba(*probabilities);
      BBV_CHECK(bbse_detects.ok());
      bbse_alarm.push_back(*bbse_detects ? 1 : 0);
      auto bbseh_detects = bbseh.DetectsShiftFromProba(*probabilities);
      BBV_CHECK(bbseh_detects.ok());
      bbseh_alarm.push_back(*bbseh_detects ? 1 : 0);
      if (rel_applicable) {
        auto rel_detects = rel.DetectsShift(*corrupted);
        BBV_CHECK(rel_detects.ok());
        rel_alarm.push_back(*rel_detects ? 1 : 0);
      }
    }
    std::printf(
        "automl=%-13s dataset=%-6s t=%.2f clean_acc=%.3f "
        "F1{PPM=%.3f BBSE=%.3f BBSE-h=%.3f REL=%s}\n",
        automl_name.c_str(), dataset_name.c_str(), threshold, *test_accuracy,
        ml::F1Score(ppm_alarm, truth), ml::F1Score(bbse_alarm, truth),
        ml::F1Score(bbseh_alarm, truth),
        rel_applicable
            ? std::to_string(ml::F1Score(rel_alarm, truth)).substr(0, 5).c_str()
            : "n/a");
    std::fflush(stdout);
  }
}

void Run(const RunConfig& config) {
  PrintHeader("Figure 6",
              "performance validation for AutoML-trained black box models "
              "under mixtures of known shifts and errors",
              config);
  RunCell("auto-sklearn", "income", config);
  RunCell("TPOT", "income", config);
  RunCell("auto-keras", "digits", config);
  RunCell("large-convnet", "digits", config);
}

}  // namespace
}  // namespace bbv::bench

int main(int argc, char** argv) {
  const bbv::bench::RunConfig config = bbv::bench::ParseArgs(argc, argv);
  bbv::bench::Run(config);
  bbv::bench::MaybeWriteTelemetryJson(config);
  return 0;
}
