// Streaming serving benchmark: compares the exact percentile path (retain
// every predict_proba row, sort per class) against the mergeable quantile
// sketch path (bounded memory, single pass) on 10^5 (--fast) to 10^6
// (--full) rows. Reports wall time, bytes retained per path, the maximum
// absolute feature deviation between the two paths (must stay within the
// sketch's value error bound), and verifies that the sketch state is
// byte-identical across mini-batch splits and BBV_THREADS settings.
//
// With --json[=PATH] the measurements land in BENCH_streaming_serving.json.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/performance_predictor.h"
#include "core/prediction_statistics.h"
#include "linalg/matrix.h"
#include "serve/streaming_scorer.h"

namespace bbv::bench {
namespace {

constexpr size_t kNumClasses = 4;
constexpr size_t kStreamBatchRows = 4096;

/// Synthetic predict_proba stream: exponential draws per class, normalized
/// to a probability simplex (Dirichlet(1) rows). Generated once, serially,
/// so every configuration consumes the exact same multiset.
linalg::Matrix MakeServingStream(size_t rows, uint64_t seed) {
  common::Rng rng(seed);
  linalg::Matrix stream(rows, kNumClasses);
  for (size_t i = 0; i < rows; ++i) {
    double sum = 0.0;
    for (size_t k = 0; k < kNumClasses; ++k) {
      stream.At(i, k) = -std::log(1.0 - rng.Uniform());
      sum += stream.At(i, k);
    }
    for (size_t k = 0; k < kNumClasses; ++k) stream.At(i, k) /= sum;
  }
  return stream;
}

/// Confidence-mixture batch for meta-training: a `good_fraction` of the
/// rows put probability `0.97` on their winner, the rest are near-uniform.
linalg::Matrix MixtureBatch(double good_fraction, size_t rows) {
  linalg::Matrix batch(rows, kNumClasses);
  const size_t good_rows =
      static_cast<size_t>(good_fraction * static_cast<double>(rows) + 0.5);
  for (size_t i = 0; i < rows; ++i) {
    const double confidence = i < good_rows ? 0.97 : 0.3;
    const size_t winner = i % kNumClasses;
    for (size_t k = 0; k < kNumClasses; ++k) {
      batch.At(i, k) = k == winner
                           ? confidence
                           : (1.0 - confidence) /
                                 static_cast<double>(kNumClasses - 1);
    }
  }
  return batch;
}

/// Meta-trains a performance predictor on synthetic (statistics, score)
/// pairs so the benchmark exercises the real regressor without paying for
/// a full corruption pass.
core::PerformancePredictor TrainPredictor(uint64_t seed) {
  core::PerformancePredictor::Options options;
  options.tree_count_grid = {30};
  core::PerformancePredictor predictor(options);
  std::vector<std::vector<double>> statistics;
  std::vector<double> scores;
  common::Rng rng(seed);
  for (size_t rows : {1000ul, 1100ul, 1200ul}) {
    for (int level = 0; level <= 10; ++level) {
      const double fraction = static_cast<double>(level) / 10.0;
      statistics.push_back(
          core::PredictionStatistics(MixtureBatch(fraction, rows)));
      scores.push_back(0.3 + 0.67 * fraction);
    }
  }
  BBV_CHECK(
      predictor.TrainFromStatistics(statistics, scores, 0.97, rng).ok());
  return predictor;
}

std::vector<size_t> RowRange(size_t begin, size_t end) {
  std::vector<size_t> rows;
  rows.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) rows.push_back(i);
  return rows;
}

/// Streams the matrix through a fresh scorer in `batch_rows` mini-batches;
/// returns the serialized sketch state for determinism digests.
std::string RunSketchPath(const core::PerformancePredictor& predictor,
                          const linalg::Matrix& stream, size_t batch_rows,
                          double* estimate_out) {
  auto scorer = serve::StreamingScorer::Create(predictor, {});
  BBV_CHECK(scorer.ok()) << scorer.status().ToString();
  for (size_t begin = 0; begin < stream.rows(); begin += batch_rows) {
    const size_t end = std::min(begin + batch_rows, stream.rows());
    BBV_CHECK(scorer->Ingest(stream.SelectRows(RowRange(begin, end))).ok());
  }
  const auto estimate = scorer->EstimateScore();
  BBV_CHECK(estimate.ok()) << estimate.status().ToString();
  if (estimate_out != nullptr) *estimate_out = estimate->point;
  std::ostringstream out;
  BBV_CHECK(scorer->SaveState(out).ok());
  return out.str();
}

}  // namespace
}  // namespace bbv::bench

int main(int argc, char** argv) {
  using namespace bbv::bench;  // NOLINT(google-build-using-namespace)
  RunConfig config = ParseArgs(argc, argv);
  PrintHeader("streaming_serving",
              "exact percentile path vs mergeable quantile sketches",
              config);
  std::printf("hardware_concurrency=%d\n",
              bbv::common::HardwareThreadCount());

  const size_t rows = config.fast ? 100000 : 1000000;
  const bbv::linalg::Matrix stream = MakeServingStream(rows, config.seed);
  const bbv::core::PerformancePredictor predictor =
      TrainPredictor(config.seed + 1);
  const double exact_bytes =
      static_cast<double>(rows * kNumClasses * sizeof(double));

  std::vector<BenchResult> results;
  bool all_deterministic = true;

  // Exact path: percentiles over the fully retained stream. Memory cost is
  // the retained predict_proba matrix itself.
  std::vector<double> exact_features;
  double exact_serial_seconds = 0.0;
  for (int threads : {1, 8}) {
    ScopedThreadsEnv env(threads);
    WallTimer timer;
    exact_features = bbv::core::PredictionStatistics(
        stream, predictor.percentile_points());
    // bbv-lint: allow(batch-api) one feature vector per thread setting, not a batch
    const auto estimate = predictor.EstimateScoreFromStatistics(
        exact_features);
    BBV_CHECK(estimate.ok()) << estimate.status().ToString();
    const double seconds = timer.Seconds();
    if (threads == 1) exact_serial_seconds = seconds;
    BenchResult result;
    result.name = "exact_percentiles";
    result.threads = threads;
    result.wall_seconds = seconds;
    result.speedup_vs_serial =
        seconds > 0.0 ? exact_serial_seconds / seconds : 0.0;
    result.extras.emplace_back("rows", static_cast<double>(rows));
    result.extras.emplace_back("memory_bytes", exact_bytes);
    result.extras.emplace_back("estimate", estimate->point);
    results.push_back(result);
    std::printf("exact_percentiles  threads=%d wall=%.3fs bytes=%.0f\n",
                threads, seconds, exact_bytes);
  }

  // Sketch path: single pass over mini-batches, bounded memory. The state
  // digest must be identical at every thread count and batch split.
  std::string reference_digest;
  double sketch_serial_seconds = 0.0;
  double sketch_bytes = 0.0;
  double sketch_estimate = 0.0;
  double max_deviation = 0.0;
  double error_bound = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    ScopedThreadsEnv env(threads);
    WallTimer timer;
    double estimate = 0.0;
    const std::string digest =
        RunSketchPath(predictor, stream, kStreamBatchRows, &estimate);
    const double seconds = timer.Seconds();
    if (threads == 1) {
      sketch_serial_seconds = seconds;
      reference_digest = digest;
      sketch_estimate = estimate;
      auto scorer = bbv::serve::StreamingScorer::Create(predictor, {});
      BBV_CHECK(scorer.ok());
      BBV_CHECK(scorer->Ingest(stream).ok());
      sketch_bytes = static_cast<double>(scorer->MemoryBytes());
      error_bound = scorer->ValueErrorBound();
      const auto features = scorer->PercentileFeatures();
      BBV_CHECK(features.ok());
      for (size_t i = 0; i < exact_features.size(); ++i) {
        max_deviation = std::max(
            max_deviation, std::fabs((*features)[i] - exact_features[i]));
      }
    }
    const bool deterministic = digest == reference_digest;
    all_deterministic = all_deterministic && deterministic;
    BenchResult result;
    result.name = "sketch_percentiles";
    result.threads = threads;
    result.wall_seconds = seconds;
    result.speedup_vs_serial =
        seconds > 0.0 ? sketch_serial_seconds / seconds : 0.0;
    result.extras.emplace_back("rows", static_cast<double>(rows));
    result.extras.emplace_back("memory_bytes", sketch_bytes);
    result.extras.emplace_back("memory_ratio_vs_exact",
                               sketch_bytes > 0.0 ? exact_bytes / sketch_bytes
                                                  : 0.0);
    result.extras.emplace_back("estimate", sketch_estimate);
    result.extras.emplace_back("max_feature_abs_error", max_deviation);
    result.extras.emplace_back("value_error_bound", error_bound);
    result.extras.emplace_back("within_bound",
                               max_deviation <= error_bound ? 1.0 : 0.0);
    result.extras.emplace_back("deterministic", deterministic ? 1.0 : 0.0);
    results.push_back(result);
    std::printf(
        "sketch_percentiles threads=%d wall=%.3fs bytes=%.0f identical=%s\n",
        threads, seconds, sketch_bytes, deterministic ? "yes" : "NO");
  }

  // Batch-split invariance at the highest thread count: any partition of
  // the stream must produce the same serialized sketch state.
  {
    ScopedThreadsEnv env(8);
    for (size_t batch_rows : {size_t{1024}, rows}) {
      WallTimer timer;
      const std::string digest =
          RunSketchPath(predictor, stream, batch_rows, nullptr);
      const double seconds = timer.Seconds();
      const bool deterministic = digest == reference_digest;
      all_deterministic = all_deterministic && deterministic;
      BenchResult result;
      result.name = "sketch_split_batch_" + std::to_string(batch_rows);
      result.threads = 8;
      result.wall_seconds = seconds;
      result.speedup_vs_serial =
          seconds > 0.0 ? sketch_serial_seconds / seconds : 0.0;
      result.extras.emplace_back("rows", static_cast<double>(rows));
      result.extras.emplace_back("deterministic", deterministic ? 1.0 : 0.0);
      results.push_back(result);
      std::printf("split batch=%zu wall=%.3fs identical=%s\n", batch_rows,
                  seconds, deterministic ? "yes" : "NO");
    }
  }

  std::printf(
      "max_feature_abs_error=%.6g (bound %.6g) exact=%.0f bytes sketch=%.0f "
      "bytes (%.0fx smaller)\n",
      max_deviation, error_bound, exact_bytes, sketch_bytes,
      sketch_bytes > 0.0 ? exact_bytes / sketch_bytes : 0.0);

  if (!config.json_path.empty()) {
    WriteBenchJson(config.json_path, "streaming_serving", config, results);
    std::printf("wrote %s\n", config.json_path.c_str());
  }
  MaybeWriteTelemetryJson(config);
  if (!config.telemetry_json_path.empty()) {
    std::printf("wrote %s\n", config.telemetry_json_path.c_str());
  }
  if (!all_deterministic) {
    std::fprintf(stderr,
                 "FAIL: sketch state diverges across thread counts or batch "
                 "splits — the determinism contract is broken\n");
    return 1;
  }
  if (max_deviation > error_bound) {
    std::fprintf(stderr,
                 "FAIL: streamed features deviate from the exact path by "
                 "more than the sketch error bound\n");
    return 1;
  }
  return 0;
}
