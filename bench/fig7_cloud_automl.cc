// Reproduces Figure 7: prediction quality for black box models trained and
// hosted "in the cloud" (the paper uses Google AutoML Tables; we use the
// CloudModelService facade, whose model family and feature map are hidden
// behind a metered batch-prediction endpoint).
//
// Protocol: train a cloud model on income and heart, train a performance
// predictor from corrupted held-out data using only the prediction
// endpoint, then corrupt the serving data with random mixtures of missing
// values / swapped columns / outliers / scaling and print the
// (true accuracy, predicted accuracy) pairs behind the paper's scatter
// plots, plus the MAE.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "automl/cloud_service.h"
#include "bench/bench_util.h"
#include "core/performance_predictor.h"
#include "errors/mixture.h"
#include "stats/descriptive.h"

namespace bbv::bench {
namespace {

void RunCell(const std::string& dataset_name, const RunConfig& config) {
  common::Rng rng(config.seed);
  const ExperimentData data = PrepareDataset(dataset_name, config, rng);

  automl::CloudModelService service;
  auto trained = service.TrainModel(data.train, rng);
  BBV_CHECK(trained.ok()) << trained.status().ToString();
  const std::unique_ptr<automl::CloudHostedModel> model = std::move(*trained);

  const errors::RandomSubsetCorruption mixture(
      std::make_shared<errors::ErrorMixture>(KnownTabularErrors()));
  core::PerformancePredictor::Options options;
  options.corruptions_per_generator = 4 * config.CorruptionsPerGenerator();
  core::PerformancePredictor predictor(options);
  const std::vector<const errors::ErrorGen*> generators = {&mixture};
  const common::Status status =
      predictor.Train(*model, data.test, generators, rng);
  BBV_CHECK(status.ok()) << status.ToString();

  std::vector<double> true_scores;
  std::vector<double> predicted_scores;
  for (int repetition = 0; repetition < config.ServingRepetitions();
       ++repetition) {
    auto corrupted = mixture.Corrupt(data.serving.features, rng);
    BBV_CHECK(corrupted.ok()) << corrupted.status().ToString();
    auto probabilities = model->PredictProba(*corrupted);
    BBV_CHECK(probabilities.ok()) << probabilities.status().ToString();
    const double true_accuracy = core::ComputeScore(
        core::ScoreMetric::kAccuracy, *probabilities, data.serving.labels);
    auto estimate = predictor.EstimateScoreFromProba(*probabilities);
    BBV_CHECK(estimate.ok()) << estimate.status().ToString();
    true_scores.push_back(true_accuracy);
    predicted_scores.push_back(estimate->point);
    std::printf("dataset=%-7s true_accuracy=%.4f predicted_accuracy=%.4f\n",
                dataset_name.c_str(), true_accuracy, estimate->point);
  }
  const double mae =
      stats::MeanAbsoluteError(true_scores, predicted_scores);
  std::printf(
      "dataset=%-7s MAE=%.4f (clean_test_acc=%.4f, prediction API calls=%zu, "
      "rows served=%zu)\n",
      dataset_name.c_str(), mae, predictor.test_score(), model->api_calls(),
      model->rows_served());
  std::fflush(stdout);
}

void Run(const RunConfig& config) {
  PrintHeader("Figure 7",
              "performance prediction for cloud-hosted AutoML models on a "
              "mixture of errors (income, heart)",
              config);
  RunCell("income", config);
  RunCell("heart", config);
}

}  // namespace
}  // namespace bbv::bench

int main(int argc, char** argv) {
  const bbv::bench::RunConfig config = bbv::bench::ParseArgs(argc, argv);
  bbv::bench::Run(config);
  bbv::bench::MaybeWriteTelemetryJson(config);
  return 0;
}
