// Google-benchmark micro-benchmarks for the hot operations inside the
// validation layer (not a paper figure): output-percentile featurization,
// hypothesis tests, forest inference, corruption generators and the feature
// pipeline. These bound the serving-time overhead of deploying a
// performance predictor next to a model.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/telemetry.h"
#include "core/prediction_statistics.h"
#include "datasets/tabular.h"
#include "errors/missing_values.h"
#include "errors/numeric_errors.h"
#include "featurize/pipeline.h"
#include "ml/decision_tree.h"
#include "ml/forest_kernel.h"
#include "ml/random_forest.h"
#include "stats/hypothesis.h"

namespace bbv::bench {
namespace {

linalg::Matrix MakeProbabilities(size_t rows, common::Rng& rng) {
  linalg::Matrix probabilities(rows, 2);
  for (size_t i = 0; i < rows; ++i) {
    const double p = rng.Uniform();
    probabilities.At(i, 0) = p;
    probabilities.At(i, 1) = 1.0 - p;
  }
  return probabilities;
}

void BM_PredictionStatistics(benchmark::State& state) {
  common::Rng rng(1);
  const linalg::Matrix probabilities =
      MakeProbabilities(static_cast<size_t>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::PredictionStatistics(probabilities));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PredictionStatistics)->Arg(1000)->Arg(10000);

void BM_TwoSampleKsTest(benchmark::State& state) {
  common::Rng rng(2);
  std::vector<double> a(static_cast<size_t>(state.range(0)));
  std::vector<double> b(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.Gaussian();
    b[i] = rng.Gaussian(0.1, 1.1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::TwoSampleKsTest(a, b));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TwoSampleKsTest)->Arg(1000)->Arg(10000);

void BM_RandomForestInference(benchmark::State& state) {
  common::Rng rng(3);
  const size_t dim = 42;
  linalg::Matrix features(512, dim);
  std::vector<double> targets(features.rows());
  for (size_t i = 0; i < features.rows(); ++i) {
    for (size_t j = 0; j < dim; ++j) features.At(i, j) = rng.Uniform();
    targets[i] = rng.Uniform();
  }
  ml::RandomForestRegressor::Options options;
  options.num_trees = static_cast<int>(state.range(0));
  ml::RandomForestRegressor forest(options);
  BBV_CHECK(forest.Fit(features, targets, rng).ok());
  const std::vector<double> row = features.Row(0);
  for (auto _ : state) {
    // Single-row latency microbenchmark;
    // bbv-lint: allow(batch-api) the scalar path is the thing measured
    benchmark::DoNotOptimize(forest.PredictRow(row.data()));
  }
}
BENCHMARK(BM_RandomForestInference)->Arg(25)->Arg(100);

/// Shared fixture for the split-search microbenchmarks: one regression-tree
/// fit over `rows` x 16 uniform features with a noisy linear target, timed
/// end to end (for the binned variant this includes building the
/// FeatureBinning, matching what a single-tree caller pays).
void RunSplitSearchBenchmark(benchmark::State& state, bool binned) {
  common::Rng data_rng(9);
  const size_t rows = static_cast<size_t>(state.range(0));
  const size_t dim = 16;
  linalg::Matrix features(rows, dim);
  std::vector<double> targets(rows);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < dim; ++j) features.At(i, j) = data_rng.Uniform();
    targets[i] = 2.0 * features.At(i, 0) - features.At(i, 3) +
                 data_rng.Gaussian(0.0, 0.1);
  }
  ml::TreeOptions options;
  options.binned_split_search = binned;
  for (auto _ : state) {
    ml::RegressionTree tree(options);
    common::Rng rng(13);
    BBV_CHECK(tree.Fit(features, targets, rng).ok());
    benchmark::DoNotOptimize(tree);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_SplitSearchExact(benchmark::State& state) {
  RunSplitSearchBenchmark(state, /*binned=*/false);
}
BENCHMARK(BM_SplitSearchExact)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_SplitSearchBinned(benchmark::State& state) {
  RunSplitSearchBenchmark(state, /*binned=*/true);
}
BENCHMARK(BM_SplitSearchBinned)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_KernelTileWidth8(benchmark::State& state) {
  // Quantized width-8 tile traversal over a fitted 100-tree forest; the
  // compare point is BM_RandomForestInference's scalar walk and the
  // forest_inference bench's exact-kernel timings.
  common::Rng rng(10);
  const size_t dim = 16;
  linalg::Matrix features(2000, dim);
  std::vector<double> targets(features.rows());
  for (size_t i = 0; i < features.rows(); ++i) {
    for (size_t j = 0; j < dim; ++j) features.At(i, j) = rng.Uniform();
    targets[i] = rng.Uniform();
  }
  ml::RandomForestRegressor::Options options;
  options.num_trees = 100;
  ml::RandomForestRegressor forest(options);
  BBV_CHECK(forest.Fit(features, targets, rng).ok());
  const ml::ForestKernel quantized = ml::ForestKernel::Compile(
      forest.trees(), ml::ForestKernel::Options{.quantized = true});
  const size_t serving_rows = static_cast<size_t>(state.range(0));
  linalg::Matrix serving(serving_rows, dim);
  for (size_t i = 0; i < serving_rows; ++i) {
    for (size_t j = 0; j < dim; ++j) serving.At(i, j) = rng.Uniform();
  }
  std::vector<double> predictions(serving_rows);
  for (auto _ : state) {
    quantized.PredictMeanInto(serving, predictions);
    benchmark::DoNotOptimize(predictions.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KernelTileWidth8)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_MissingValuesCorruption(benchmark::State& state) {
  common::Rng rng(4);
  const data::Dataset dataset =
      datasets::MakeIncome(static_cast<size_t>(state.range(0)), rng);
  const errors::MissingValues generator;
  for (auto _ : state) {
    auto corrupted = generator.Corrupt(dataset.features, rng);
    benchmark::DoNotOptimize(corrupted);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MissingValuesCorruption)->Arg(1000)->Arg(5000);

void BM_OutlierCorruption(benchmark::State& state) {
  common::Rng rng(5);
  const data::Dataset dataset =
      datasets::MakeIncome(static_cast<size_t>(state.range(0)), rng);
  const errors::NumericOutliers generator;
  for (auto _ : state) {
    auto corrupted = generator.Corrupt(dataset.features, rng);
    benchmark::DoNotOptimize(corrupted);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OutlierCorruption)->Arg(1000)->Arg(5000);

void BM_RandomForestFit(benchmark::State& state) {
  // Tree-level parallel fitting: Arg is the BBV_THREADS override, so the
  // reported times show how the hot path scales with the worker count.
  const int threads = static_cast<int>(state.range(0));
  ::setenv("BBV_THREADS", std::to_string(threads).c_str(), 1);
  common::Rng data_rng(7);
  const size_t dim = 24;
  linalg::Matrix features(1500, dim);
  std::vector<double> targets(features.rows());
  for (size_t i = 0; i < features.rows(); ++i) {
    for (size_t j = 0; j < dim; ++j) features.At(i, j) = data_rng.Uniform();
    targets[i] = data_rng.Uniform();
  }
  ml::RandomForestRegressor::Options options;
  options.num_trees = 64;
  for (auto _ : state) {
    ml::RandomForestRegressor forest(options);
    common::Rng rng(11);
    BBV_CHECK(forest.Fit(features, targets, rng).ok());
    benchmark::DoNotOptimize(forest);
  }
  ::unsetenv("BBV_THREADS");
  state.SetItemsProcessed(state.iterations() * options.num_trees);
}
BENCHMARK(BM_RandomForestFit)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_TelemetrySpanEnabled(benchmark::State& state) {
  // Cost of one TraceSpan + counter increment on the instrumented hot
  // paths when telemetry is on: two clock reads plus relaxed atomics.
  const bool was_enabled = common::telemetry::Enabled();
  common::telemetry::SetEnabled(true);
  for (auto _ : state) {
    const common::telemetry::TraceSpan span("bench.telemetry_overhead");
    common::telemetry::IncrementCounter("bench.telemetry_overhead.calls");
    benchmark::DoNotOptimize(span.ElapsedSeconds());
  }
  common::telemetry::SetEnabled(was_enabled);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelemetrySpanEnabled);

void BM_TelemetrySpanDisabled(benchmark::State& state) {
  // The BBV_TELEMETRY=off path: no clock reads, no registry lookups.
  const bool was_enabled = common::telemetry::Enabled();
  common::telemetry::SetEnabled(false);
  for (auto _ : state) {
    const common::telemetry::TraceSpan span("bench.telemetry_overhead");
    common::telemetry::IncrementCounter("bench.telemetry_overhead.calls");
    benchmark::DoNotOptimize(span.ElapsedSeconds());
  }
  common::telemetry::SetEnabled(was_enabled);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelemetrySpanDisabled);

void BM_PipelineTransform(benchmark::State& state) {
  common::Rng rng(6);
  const data::Dataset dataset =
      datasets::MakeIncome(static_cast<size_t>(state.range(0)), rng);
  featurize::FeaturePipeline pipeline;
  BBV_CHECK(pipeline.Fit(dataset.features).ok());
  for (auto _ : state) {
    auto transformed = pipeline.Transform(dataset.features);
    benchmark::DoNotOptimize(transformed);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PipelineTransform)->Arg(1000)->Arg(5000);

}  // namespace
}  // namespace bbv::bench

// Custom main instead of BENCHMARK_MAIN(): translates the repo-wide
// --json[=PATH] convention into google-benchmark's --benchmark_out flags
// (and strips --telemetry-json[=PATH], handled after the run) so CI invokes
// every bench binary the same way.
int main(int argc, char** argv) {
  std::string telemetry_json_path;
  std::vector<std::string> storage;
  storage.reserve(static_cast<size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" || arg.rfind("--json=", 0) == 0) {
      const std::string path = arg == "--json"
                                   ? std::string("BENCH_micro_ops.json")
                                   : arg.substr(7);
      storage.push_back("--benchmark_out=" + path);
      storage.push_back("--benchmark_out_format=json");
    } else if (arg == "--telemetry-json") {
      telemetry_json_path = "TELEMETRY_micro_ops.json";
    } else if (arg.rfind("--telemetry-json=", 0) == 0) {
      telemetry_json_path = arg.substr(17);
    } else {
      storage.push_back(arg);
    }
  }
  std::vector<char*> args;
  args.reserve(storage.size());
  for (std::string& arg : storage) args.push_back(arg.data());
  int translated_argc = static_cast<int>(args.size());
  benchmark::Initialize(&translated_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(translated_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!telemetry_json_path.empty()) {
    bbv::bench::RunConfig config;
    config.telemetry_json_path = telemetry_json_path;
    bbv::bench::MaybeWriteTelemetryJson(config);
    std::printf("wrote %s\n", telemetry_json_path.c_str());
  }
  return 0;
}
