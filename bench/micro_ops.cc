// Google-benchmark micro-benchmarks for the hot operations inside the
// validation layer (not a paper figure): output-percentile featurization,
// hypothesis tests, forest inference, corruption generators and the feature
// pipeline. These bound the serving-time overhead of deploying a
// performance predictor next to a model.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "core/prediction_statistics.h"
#include "datasets/tabular.h"
#include "errors/missing_values.h"
#include "errors/numeric_errors.h"
#include "featurize/pipeline.h"
#include "ml/random_forest.h"
#include "stats/hypothesis.h"

namespace bbv::bench {
namespace {

linalg::Matrix MakeProbabilities(size_t rows, common::Rng& rng) {
  linalg::Matrix probabilities(rows, 2);
  for (size_t i = 0; i < rows; ++i) {
    const double p = rng.Uniform();
    probabilities.At(i, 0) = p;
    probabilities.At(i, 1) = 1.0 - p;
  }
  return probabilities;
}

void BM_PredictionStatistics(benchmark::State& state) {
  common::Rng rng(1);
  const linalg::Matrix probabilities =
      MakeProbabilities(static_cast<size_t>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::PredictionStatistics(probabilities));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PredictionStatistics)->Arg(1000)->Arg(10000);

void BM_TwoSampleKsTest(benchmark::State& state) {
  common::Rng rng(2);
  std::vector<double> a(static_cast<size_t>(state.range(0)));
  std::vector<double> b(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.Gaussian();
    b[i] = rng.Gaussian(0.1, 1.1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::TwoSampleKsTest(a, b));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TwoSampleKsTest)->Arg(1000)->Arg(10000);

void BM_RandomForestInference(benchmark::State& state) {
  common::Rng rng(3);
  const size_t dim = 42;
  linalg::Matrix features(512, dim);
  std::vector<double> targets(features.rows());
  for (size_t i = 0; i < features.rows(); ++i) {
    for (size_t j = 0; j < dim; ++j) features.At(i, j) = rng.Uniform();
    targets[i] = rng.Uniform();
  }
  ml::RandomForestRegressor::Options options;
  options.num_trees = static_cast<int>(state.range(0));
  ml::RandomForestRegressor forest(options);
  BBV_CHECK(forest.Fit(features, targets, rng).ok());
  const std::vector<double> row = features.Row(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.PredictRow(row.data()));
  }
}
BENCHMARK(BM_RandomForestInference)->Arg(25)->Arg(100);

void BM_MissingValuesCorruption(benchmark::State& state) {
  common::Rng rng(4);
  const data::Dataset dataset =
      datasets::MakeIncome(static_cast<size_t>(state.range(0)), rng);
  const errors::MissingValues generator;
  for (auto _ : state) {
    auto corrupted = generator.Corrupt(dataset.features, rng);
    benchmark::DoNotOptimize(corrupted);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MissingValuesCorruption)->Arg(1000)->Arg(5000);

void BM_OutlierCorruption(benchmark::State& state) {
  common::Rng rng(5);
  const data::Dataset dataset =
      datasets::MakeIncome(static_cast<size_t>(state.range(0)), rng);
  const errors::NumericOutliers generator;
  for (auto _ : state) {
    auto corrupted = generator.Corrupt(dataset.features, rng);
    benchmark::DoNotOptimize(corrupted);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OutlierCorruption)->Arg(1000)->Arg(5000);

void BM_PipelineTransform(benchmark::State& state) {
  common::Rng rng(6);
  const data::Dataset dataset =
      datasets::MakeIncome(static_cast<size_t>(state.range(0)), rng);
  featurize::FeaturePipeline pipeline;
  BBV_CHECK(pipeline.Fit(dataset.features).ok());
  for (auto _ : state) {
    auto transformed = pipeline.Transform(dataset.features);
    benchmark::DoNotOptimize(transformed);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PipelineTransform)->Arg(1000)->Arg(5000);

}  // namespace
}  // namespace bbv::bench

BENCHMARK_MAIN();
