// Extension experiment (beyond the paper's figures, following its future
// work section): how do the performance validator and the shift-detection
// baselines behave under *statistical* dataset shifts — label shift (the
// regime BBSE is designed for, Lipton et al.) and covariate shift — rather
// than cell-level data errors?
//
// Protocol: train the validator on mixtures of the usual four known error
// types, then serve batches resampled with (a) varying label-shift strength
// and (b) varying covariate-shift strength. Report alarm rates and the true
// accuracy-violation rates, exposing where each approach over- or
// under-alarms. A shift detector flags *any* distribution change; the
// validator only alarms when the model's quality is actually hurt.

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "datasets/registry.h"
#include "core/baselines.h"
#include "core/performance_validator.h"
#include "errors/distribution_shift.h"
#include "errors/mixture.h"

namespace bbv::bench {
namespace {

void Run(const RunConfig& config) {
  PrintHeader("Extension: distribution shift",
              "validator vs shift detectors under pure label shift and "
              "covariate shift (income, xgb, 5% threshold)",
              config);
  common::Rng rng(config.seed);
  // This experiment compares alarm *rates* on resampled batches, which
  // needs a larger reference pool than the corruption figures; generate a
  // bigger income dataset regardless of the fast/full mode.
  datasets::DatasetOptions dataset_options;
  dataset_options.num_rows = config.fast ? 15000 : 30000;
  auto raw = datasets::MakeByName("income", dataset_options, rng);
  BBV_CHECK(raw.ok());
  data::Dataset balanced = data::BalanceClasses(*raw, rng);
  data::DatasetSplit source_serving = TrainTestSplit(balanced, 0.7, rng);
  data::DatasetSplit train_test = TrainTestSplit(source_serving.first, 0.7, rng);
  const ExperimentData data{std::move(train_test.first),
                            std::move(train_test.second),
                            std::move(source_serving.second)};
  const auto model = TrainBlackBox("xgb", data.train, config, rng);
  const double test_accuracy = model->ScoreAccuracy(data.test).ValueOrDie();

  const errors::RandomSubsetCorruption training_errors(
      std::make_shared<errors::ErrorMixture>(KnownTabularErrors()));
  constexpr size_t kBatchSize = 400;
  core::PerformanceValidator::Options options;
  options.threshold = 0.05;
  options.corruptions_per_generator = 4 * config.CorruptionsPerGenerator();
  // Serve and meta-train on equally sized batches so the percentile and KS
  // features carry the same sampling noise.
  options.meta_batch_size = kBatchSize;
  core::PerformanceValidator validator(options);
  const std::vector<const errors::ErrorGen*> generators = {&training_errors};
  BBV_CHECK(validator.Train(*model, data.test, generators, rng).ok());

  core::BbseDetector bbse(model.get());
  BBV_CHECK(bbse.Fit(data.test.features).ok());
  core::BbsehDetector bbseh(model.get());
  BBV_CHECK(bbseh.Fit(data.test.features).ok());

  const int repetitions = config.ServingRepetitions();
  auto evaluate = [&](const std::string& kind, double parameter,
                      const std::function<common::Result<data::Dataset>(
                          common::Rng&)>& sampler) {
    int violations = 0;
    int ppm_alarms = 0;
    int bbse_alarms = 0;
    int bbseh_alarms = 0;
    for (int repetition = 0; repetition < repetitions; ++repetition) {
      auto batch = sampler(rng);
      BBV_CHECK(batch.ok()) << batch.status().ToString();
      auto probabilities = model->PredictProba(batch->features);
      BBV_CHECK(probabilities.ok());
      const double accuracy = core::ComputeScore(
          core::ScoreMetric::kAccuracy, *probabilities, batch->labels);
      if (accuracy < (1.0 - options.threshold) * test_accuracy) ++violations;
      if (!validator.ValidateFromProba(*probabilities).ValueOrDie()) {
        ++ppm_alarms;
      }
      if (bbse.DetectsShiftFromProba(*probabilities).ValueOrDie()) {
        ++bbse_alarms;
      }
      if (bbseh.DetectsShiftFromProba(*probabilities).ValueOrDie()) {
        ++bbseh_alarms;
      }
    }
    const double r = static_cast<double>(repetitions);
    std::printf(
        "shift=%-9s param=%5.2f violation_rate=%.2f alarm_rate{PPM=%.2f "
        "BBSE=%.2f BBSE-h=%.2f}\n",
        kind.c_str(), parameter, violations / r, ppm_alarms / r,
        bbse_alarms / r, bbseh_alarms / r);
    std::fflush(stdout);
  };

  for (double positive_fraction : {0.5, 0.6, 0.7, 0.85, 0.95}) {
    evaluate("label", positive_fraction, [&](common::Rng& sampler_rng) {
      return errors::ResampleLabelShift(data.serving, positive_fraction,
                                        sampler_rng, kBatchSize);
    });
  }
  for (double strength : {0.0, 0.5, 1.0, 2.0}) {
    evaluate("covariate", strength, [&](common::Rng& sampler_rng) {
      return errors::ResampleCovariateShift(data.serving, "age", strength,
                                            sampler_rng, kBatchSize);
    });
  }
  std::printf(
      "\nReading: all three approaches flag strong label shift even when the\n"
      "model's accuracy is barely affected (violation rate near zero) —\n"
      "BBSE/BBSE-h by design, and PPM because resampling shifts lie outside\n"
      "the cell-corruption distribution it was meta-trained on. This is the\n"
      "open question from the paper's future work: which training error\n"
      "sets generalize to which real-world shifts.\n");
}

}  // namespace
}  // namespace bbv::bench

int main(int argc, char** argv) {
  bbv::bench::Run(bbv::bench::ParseArgs(argc, argv));
  return 0;
}
