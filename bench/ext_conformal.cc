// Conformal interval quality: marginal coverage and average width of the
// ScoreEstimate intervals across the tabular corruption grid (fig2-style
// known errors, fig3-style unknown errors) and the drift scenario library,
// plus the determinism gates the interval layer promises.
//
// CI contract: the binary exits non-zero when
//  - pooled marginal coverage on the known-error corruption grid, or the
//    per-scenario coverage on any drift stream, falls below the nominal
//    level minus kCoverageTolerance;
//  - the interval sequence differs at BBV_THREADS 1 vs 4 vs 8;
//  - the batch EstimateScoresFromStatistics surface is not bit-identical
//    to the scalar one;
//  - Save/Load does not round-trip the calibration state byte-identically.
// Unknown-error cells are reported but not gated: they corrupt with error
// types the predictor never met in meta-training, so exchangeability — the
// premise of the conformal guarantee — does not hold there by construction.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "core/performance_predictor.h"
#include "core/prediction_statistics.h"
#include "errors/distribution_shift.h"
#include "errors/drift_scenario.h"

namespace bbv::bench {
namespace {

/// Gate: empirical coverage must reach nominal - tolerance. The tolerance
/// absorbs evaluation-sample noise on top of the finite-sample conformal
/// guarantee (which is on the expectation, not on one replay).
constexpr double kCoverageTolerance = 0.03;

/// Coverage/width tally over one evaluation pool.
struct CoverageTally {
  size_t examples = 0;
  size_t covered = 0;
  double width_sum = 0.0;

  void Add(const core::ScoreEstimate& estimate, double truth) {
    ++examples;
    if (estimate.lo <= truth && truth <= estimate.hi) ++covered;
    width_sum += estimate.width();
  }
  double Coverage() const {
    return examples == 0
               ? 0.0
               : static_cast<double>(covered) / static_cast<double>(examples);
  }
  double AverageWidth() const {
    return examples == 0 ? 0.0
                         : width_sum / static_cast<double>(examples);
  }
};

struct CellResult {
  std::string name;
  CoverageTally tally;
  bool gated = false;
  bool within = true;
  double wall_seconds = 0.0;
};

void PrintCell(const CellResult& cell, double nominal) {
  std::printf("cell=%-28s n=%4zu coverage=%.3f avg_width=%.4f nominal=%.2f %s\n",
              cell.name.c_str(), cell.tally.examples, cell.tally.Coverage(),
              cell.tally.AverageWidth(), nominal,
              cell.gated ? (cell.within ? "ok" : "VIOLATION") : "(info)");
}

/// One corruption-grid cell: trains a predictor on the known tabular errors
/// (fig2 protocol), then measures interval coverage of the true accuracy on
/// randomly corrupted serving batches — the known pool (gated) and the
/// unknown fig3 pool (informational).
void RunGridCell(const std::string& model_name,
                 const std::string& dataset_name, const RunConfig& config,
                 CoverageTally& known_pool, std::vector<CellResult>& cells) {
  common::Rng rng(config.seed);
  const ExperimentData data = PrepareDataset(dataset_name, config, rng);
  const auto model = TrainBlackBox(model_name, data.train, config, rng);

  core::PerformancePredictor::Options options;
  options.corruptions_per_generator = config.CorruptionsPerGenerator();
  core::PerformancePredictor predictor(options);
  const auto known = KnownTabularErrors();
  BBV_CHECK(
      predictor.Train(*model, data.test, RawPointers(known), rng).ok());
  BBV_CHECK(predictor.calibrator().calibrated());
  const double nominal = predictor.coverage_level();

  const auto evaluate = [&](const std::vector<std::shared_ptr<
                                errors::ErrorGen>>& pool,
                            bool gated, const std::string& label) {
    WallTimer timer;
    CellResult cell;
    cell.name = model_name + "/" + dataset_name + "/" + label;
    cell.gated = gated;
    for (const auto& generator : pool) {
      for (int repetition = 0; repetition < config.ServingRepetitions();
           ++repetition) {
        auto corrupted =
            CorruptRandomSubset(data.serving.features, *generator, rng);
        BBV_CHECK(corrupted.ok()) << corrupted.status().ToString();
        auto probabilities = model->PredictProba(*corrupted);
        BBV_CHECK(probabilities.ok());
        const double truth =
            core::ComputeScore(core::ScoreMetric::kAccuracy, *probabilities,
                               data.serving.labels);
        auto estimate = predictor.EstimateScoreFromProba(*probabilities);
        BBV_CHECK(estimate.ok()) << estimate.status().ToString();
        cell.tally.Add(*estimate, truth);
        if (gated) known_pool.Add(*estimate, truth);
      }
    }
    // Per-cell samples are too few to gate at kCoverageTolerance without
    // flakiness; the gate runs on the pooled known-error grid instead.
    cell.within = true;
    cell.wall_seconds = timer.Seconds();
    PrintCell(cell, nominal);
    cells.push_back(std::move(cell));
  };
  evaluate(known, /*gated=*/true, "known");
  evaluate(UnknownTabularErrors(), /*gated=*/false, "unknown");
}

/// Scenario-replay meta-training: the conformal guarantee needs the
/// calibration residuals to be exchangeable with the stream's, so the
/// meta-training pairs are generated by replaying the drift-scenario
/// library itself on the labeled *test* partition. Two refinements make
/// the per-scenario bound hold on the serving streams:
///  - Composition jitter. Each replay runs the scenarios on a label-shifted
///    resample of the test pool (positive fraction perturbed by a few
///    points). Under the harshest corruption regimes the black box falls
///    back to near-constant predictions, so its corrupted-regime accuracy
///    is a function of the pool's class composition — which differs between
///    the test and serving partitions. Jittering the calibration pools
///    injects that composition-induced residual spread into the calibration
///    scores; without it the drifted tails undercover systematically.
///  - Locally-scaled intervals (kQuantileForest). The drifted regimes have
///    several-times-larger residuals than the clean regime, and a single
///    marginal radius covers the mixture but not each regime. Normalizing
///    by the meta-forest's per-example tree spread adapts the radius to the
///    regime, which is what the per-scenario gate below actually tests.
core::PerformancePredictor TrainScenarioMatchedPredictor(
    const ml::BlackBox& model, const data::Dataset& test,
    const errors::DriftScenarioOptions& scenario_options, int replays,
    uint64_t seed, common::Rng& rng) {
  const std::vector<size_t> counts = data::ClassCounts(test);
  const double base_positive =
      counts.size() == 2 && test.NumRows() > 0
          ? static_cast<double>(counts[1]) /
                static_cast<double>(test.NumRows())
          : 0.5;

  std::vector<std::vector<double>> statistics;
  std::vector<double> scores;
  const auto record = [&](const data::Dataset& batch) {
    auto probabilities = model.PredictProba(batch.features);
    BBV_CHECK(probabilities.ok());
    scores.push_back(core::ComputeScore(core::ScoreMetric::kAccuracy,
                                        *probabilities, batch.labels));
    statistics.push_back(core::PredictionStatistics(*probabilities));
  };
  for (int replay = 0; replay < replays; ++replay) {
    // Jitter grid centered on the test composition, ±6 points.
    const double jitter =
        -0.06 + 0.12 * static_cast<double>(replay) /
                    static_cast<double>(std::max(replays - 1, 1));
    common::Rng pool_rng(seed + 500 + static_cast<uint64_t>(replay));
    auto shifted =
        errors::ResampleLabelShift(test, base_positive + jitter, pool_rng);
    BBV_CHECK(shifted.ok()) << shifted.status().ToString();
    auto pool = std::make_shared<const data::Dataset>(*std::move(shifted));
    const std::vector<errors::DriftScenario> replay_scenarios =
        errors::StandardDriftScenarios(pool, scenario_options);
    for (const errors::DriftScenario& scenario : replay_scenarios) {
      common::Rng scenario_rng(seed + 1000 + static_cast<uint64_t>(replay));
      std::vector<common::Rng> batch_rngs =
          scenario_rng.ForkStreams(scenario.num_batches());
      for (size_t batch_index = 0; batch_index < scenario.num_batches();
           ++batch_index) {
        auto batch = scenario.MakeBatch(batch_index, batch_rngs[batch_index]);
        BBV_CHECK(batch.ok()) << batch.status().ToString();
        record(*batch);
      }
    }
  }

  auto clean_probabilities = model.PredictProba(test.features);
  BBV_CHECK(clean_probabilities.ok());
  const double clean_score = core::ComputeScore(
      core::ScoreMetric::kAccuracy, *clean_probabilities, test.labels);
  core::PerformancePredictor::Options options;
  options.conformal_mode = core::ConformalCalibrator::Mode::kQuantileForest;
  core::PerformancePredictor predictor(options);
  BBV_CHECK(predictor.TrainFromStatistics(statistics, scores, clean_score,
                                          rng)
                .ok());
  BBV_CHECK(predictor.calibrator().calibrated());
  return predictor;
}

/// Per-scenario interval coverage over the drift streams: per-batch
/// estimates against the true per-batch accuracy (the scenario batches
/// carry labels), gated at nominal - tolerance for every scenario
/// including the drifted tails. Each scenario is replayed under several
/// seeds and pooled, so the per-scenario sample is large enough to test
/// the bound without single-replay flakiness.
bool RunDriftCoverage(const RunConfig& config,
                      std::vector<CellResult>& cells) {
  common::Rng rng(config.seed);
  const ExperimentData data = PrepareDataset("income", config, rng);
  const auto model = TrainBlackBox("xgb", data.train, config, rng);

  errors::DriftScenarioOptions scenario_options;
  scenario_options.num_batches = config.fast ? 24 : 40;
  scenario_options.batch_size = 400;
  scenario_options.drift_onset = scenario_options.num_batches / 2;

  core::PerformancePredictor predictor = TrainScenarioMatchedPredictor(
      *model, data.test, scenario_options, /*replays=*/config.fast ? 4 : 6,
      config.seed, rng);
  const double nominal = predictor.coverage_level();

  auto serving = std::make_shared<const data::Dataset>(data.serving);
  const std::vector<errors::DriftScenario> scenarios =
      errors::StandardDriftScenarios(serving, scenario_options);

  constexpr int kReplaySeeds = 4;
  bool all_within = true;
  for (const errors::DriftScenario& scenario : scenarios) {
    WallTimer timer;
    CellResult cell;
    cell.name = "drift/" + scenario.name();
    cell.gated = true;
    for (int replay = 0; replay < kReplaySeeds; ++replay) {
      common::Rng scenario_rng(config.seed + static_cast<uint64_t>(replay));
      std::vector<common::Rng> batch_rngs =
          scenario_rng.ForkStreams(scenario.num_batches());
      for (size_t batch_index = 0; batch_index < scenario.num_batches();
           ++batch_index) {
        auto batch = scenario.MakeBatch(batch_index, batch_rngs[batch_index]);
        BBV_CHECK(batch.ok()) << batch.status().ToString();
        auto probabilities = model->PredictProba(batch->features);
        BBV_CHECK(probabilities.ok());
        const double truth =
            core::ComputeScore(core::ScoreMetric::kAccuracy, *probabilities,
                               batch->labels);
        auto estimate = predictor.EstimateScoreFromProba(*probabilities);
        BBV_CHECK(estimate.ok()) << estimate.status().ToString();
        cell.tally.Add(*estimate, truth);
      }
    }
    cell.within = cell.tally.Coverage() >= nominal - kCoverageTolerance;
    cell.wall_seconds = timer.Seconds();
    all_within = all_within && cell.within;
    PrintCell(cell, nominal);
    cells.push_back(std::move(cell));
  }
  return all_within;
}

/// Determinism gates on one trained predictor: thread-count byte-identity
/// of the intervals and the serialized state, batch-vs-scalar bit-identity,
/// and Save/Load byte round-trip.
struct DeterminismOutcome {
  bool threads_identical = true;
  bool batch_scalar_identical = true;
  bool save_load_identical = true;
  bool Ok() const {
    return threads_identical && batch_scalar_identical && save_load_identical;
  }
};

DeterminismOutcome RunDeterminismGates(const RunConfig& config) {
  common::Rng rng(config.seed);
  const ExperimentData data = PrepareDataset("heart", config, rng);
  const auto model = TrainBlackBox("lr", data.train, config, rng);
  core::PerformancePredictor::Options options;
  options.corruptions_per_generator = config.CorruptionsPerGenerator();
  core::PerformancePredictor predictor(options);
  const auto generators = KnownTabularErrors();
  BBV_CHECK(
      predictor.Train(*model, data.test, RawPointers(generators), rng).ok());
  BBV_CHECK(predictor.calibrator().calibrated());

  // A spread of corrupted serving batches as probe inputs.
  std::vector<std::vector<double>> statistics;
  for (const auto& generator : generators) {
    for (int repetition = 0; repetition < 4; ++repetition) {
      auto corrupted =
          CorruptRandomSubset(data.serving.features, *generator, rng);
      BBV_CHECK(corrupted.ok());
      auto probabilities = model->PredictProba(*corrupted);
      BBV_CHECK(probabilities.ok());
      statistics.push_back(core::PredictionStatistics(
          *probabilities, predictor.percentile_points()));
    }
  }

  DeterminismOutcome outcome;
  const auto estimates_at = [&](int threads) {
    ScopedThreadsEnv scoped(threads);
    std::vector<core::ScoreEstimate> estimates;
    for (const auto& row : statistics) {
      estimates.push_back(
          predictor.EstimateScoreFromStatistics(row).ValueOrDie());  // bbv-lint: allow(batch-api) scalar reference series for the gates
    }
    return estimates;
  };
  const auto bytes_at = [&](int threads) {
    ScopedThreadsEnv scoped(threads);
    std::ostringstream out;
    BBV_CHECK(predictor.Save(out).ok());
    return out.str();
  };
  const std::vector<core::ScoreEstimate> baseline = estimates_at(1);
  const std::string baseline_bytes = bytes_at(1);
  for (int threads : {4, 8}) {
    if (estimates_at(threads) != baseline ||
        bytes_at(threads) != baseline_bytes) {
      outcome.threads_identical = false;
      std::printf("DETERMINISM FAILURE: intervals diverge at BBV_THREADS=%d\n",
                  threads);
    }
  }

  linalg::Matrix batch(statistics.size(), predictor.feature_dimension());
  for (size_t i = 0; i < statistics.size(); ++i) {
    for (size_t j = 0; j < statistics[i].size(); ++j) {
      batch.At(i, j) = statistics[i][j];
    }
  }
  std::vector<core::ScoreEstimate> batched(statistics.size());
  BBV_CHECK(predictor
                .EstimateScoresFromStatistics(
                    batch, std::span<core::ScoreEstimate>(batched))
                .ok());
  std::vector<double> points(statistics.size());
  BBV_CHECK(
      predictor.EstimateScoresFromStatistics(batch, std::span<double>(points))
          .ok());
  for (size_t i = 0; i < statistics.size(); ++i) {
    if (batched[i] != baseline[i] || points[i] != baseline[i].point) {
      outcome.batch_scalar_identical = false;
      std::printf("BATCH/SCALAR MISMATCH at row %zu\n", i);
    }
  }

  std::stringstream first;
  BBV_CHECK(predictor.Save(first).ok());
  auto restored = core::PerformancePredictor::Load(first);
  BBV_CHECK(restored.ok()) << restored.status().ToString();
  std::stringstream second;
  BBV_CHECK(restored->Save(second).ok());
  if (first.str() != second.str()) {
    outcome.save_load_identical = false;
    std::printf("SAVE/LOAD BYTE MISMATCH\n");
  }
  for (size_t i = 0; i < statistics.size(); ++i) {
    const auto reloaded =
        restored->EstimateScoreFromStatistics(statistics[i]).ValueOrDie();  // bbv-lint: allow(batch-api) per-row probe of the reloaded predictor
    if (reloaded != baseline[i]) {
      outcome.save_load_identical = false;
      std::printf("SAVE/LOAD ESTIMATE MISMATCH at row %zu\n", i);
    }
  }

  std::printf("threads 1 vs 4 vs 8: %s\n",
              outcome.threads_identical ? "byte-identical" : "MISMATCH");
  std::printf("batch vs scalar: %s\n",
              outcome.batch_scalar_identical ? "bit-identical" : "MISMATCH");
  std::printf("save/load round-trip: %s\n",
              outcome.save_load_identical ? "byte-identical" : "MISMATCH");
  return outcome;
}

int Run(const RunConfig& config) {
  PrintHeader("Extension: conformal intervals",
              "marginal coverage / average width of ScoreEstimate intervals "
              "across the corruption grid and drift scenarios, plus the "
              "interval determinism gates",
              config);
  WallTimer timer;
  std::vector<CellResult> cells;
  CoverageTally known_pool;
  double nominal = 0.9;
  for (const std::string& model_name : {std::string("lr"), std::string("xgb")}) {
    for (const std::string& dataset :
         {std::string("income"), std::string("heart")}) {
      RunGridCell(model_name, dataset, config, known_pool, cells);
    }
  }
  // Pooled gate over every known-error cell: the marginal guarantee is an
  // expectation over the corruption distribution, and the pool has enough
  // samples to test it at kCoverageTolerance without flakiness.
  const bool grid_within =
      known_pool.Coverage() >= nominal - kCoverageTolerance;
  std::printf(
      "pooled known-error grid: n=%zu coverage=%.3f avg_width=%.4f "
      "nominal=%.2f %s\n",
      known_pool.examples, known_pool.Coverage(), known_pool.AverageWidth(),
      nominal, grid_within ? "ok" : "VIOLATION");

  const bool drift_within = RunDriftCoverage(config, cells);
  const DeterminismOutcome determinism = RunDeterminismGates(config);

  std::vector<BenchResult> results;
  for (const CellResult& cell : cells) {
    BenchResult result;
    result.name = cell.name;
    result.wall_seconds = cell.wall_seconds;
    result.extras = {
        {"coverage", cell.tally.Coverage()},
        {"avg_width", cell.tally.AverageWidth()},
        {"examples", static_cast<double>(cell.tally.examples)},
        {"gated", cell.gated ? 1.0 : 0.0},
        {"within_bound", cell.within ? 1.0 : 0.0},
    };
    results.push_back(std::move(result));
  }
  BenchResult overall;
  overall.name = "overall";
  overall.wall_seconds = timer.Seconds();
  overall.extras = {
      {"grid_coverage", known_pool.Coverage()},
      {"grid_avg_width", known_pool.AverageWidth()},
      {"grid_within_bound", grid_within ? 1.0 : 0.0},
      {"drift_within_bound", drift_within ? 1.0 : 0.0},
      {"threads_identical", determinism.threads_identical ? 1.0 : 0.0},
      {"batch_scalar_identical",
       determinism.batch_scalar_identical ? 1.0 : 0.0},
      {"save_load_identical", determinism.save_load_identical ? 1.0 : 0.0},
  };
  results.push_back(std::move(overall));
  if (!config.json_path.empty()) {
    WriteBenchJson(config.json_path, "ext_conformal", config, results,
                   {{"grid", "lr,xgb x income,heart"},
                    {"nominal_coverage", "0.90"},
                    {"tolerance", "0.03"}});
  }
  MaybeWriteTelemetryJson(config);
  if (!grid_within || !drift_within || !determinism.Ok()) {
    std::printf("FAILED: grid=%d drift=%d determinism=%d\n",
                grid_within ? 1 : 0, drift_within ? 1 : 0,
                determinism.Ok() ? 1 : 0);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bbv::bench

int main(int argc, char** argv) {
  return bbv::bench::Run(bbv::bench::ParseArgs(argc, argv));
}
