// Drift-scenario detection quality: replays the standard drift scenario
// library (errors::StandardDriftScenarios — sudden, gradual ramp, recurring
// seasonal mixture, feedback-skewed class priors, plus a clean control
// stream) through the windowed serve::ModelMonitor and reports per-scenario
// detection delay and false-alarm rate.
//
// CI contract: each scenario has a documented detection-quality bound
// (maximum delay in batches after the drift onset, maximum pre-onset
// false-alarm rate); the binary exits non-zero when any bound is violated,
// when the BBV_THREADS 1-vs-4 replay diverges, or when the streaming-scorer
// split/merge consistency check fails — so a regression in the predictor,
// the monitor window or the sketches fails the scheduled experiments job
// instead of silently degrading detection quality.

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "core/monitor.h"
#include "core/performance_predictor.h"
#include "errors/drift_scenario.h"
#include "serve/streaming_scorer.h"

namespace bbv::bench {
namespace {

/// Detection-quality bounds per scenario. Delay counts batches from the
/// drift onset to the first post-onset alarm; `max_delay` of num_batches
/// means "must alarm before the stream ends". The pre-onset prefix (the
/// whole stream for the clean control) bounds the false-alarm rate.
struct ScenarioBound {
  std::string scenario;
  size_t max_delay = 0;
  double max_false_alarm_rate = 0.0;
};

/// Outcome of replaying one scenario stream through a windowed monitor.
struct ReplayOutcome {
  size_t detection_delay = 0;  // span sentinel when never detected
  bool detected = false;
  double false_alarm_rate = 0.0;
  size_t alarms = 0;
  /// Per-batch windowed estimates, for the determinism replay comparison.
  std::vector<double> windowed_estimates;
};

ReplayOutcome Replay(
    const errors::DriftScenario& scenario, const ml::BlackBox& model,
    const std::shared_ptr<const core::PerformancePredictor>& predictor,
    uint64_t seed) {
  core::ModelMonitor::Options monitor_options;
  monitor_options.alarm_threshold = 0.05;
  monitor_options.window_batches = 4;
  // The committed detection-delay/false-alarm bounds characterize the
  // point-drop alarm; the conservative certified (interval) policy trades
  // delay for certainty and is gated separately in ext_conformal.
  monitor_options.alarm_policy = core::ModelMonitor::AlarmPolicy::kPointDrop;
  auto monitor = core::ModelMonitor::CreateForProba(
      "drift:" + scenario.name(), predictor, monitor_options);
  BBV_CHECK(monitor.ok()) << monitor.status().ToString();

  // One pre-forked stream per batch index: the stream is a pure function of
  // (scenario, seed), independent of BBV_THREADS and replay order.
  common::Rng scenario_rng(seed);
  std::vector<common::Rng> batch_rngs =
      scenario_rng.ForkStreams(scenario.num_batches());

  ReplayOutcome outcome;
  const size_t onset = scenario.drift_onset();
  size_t pre_onset_alarms = 0;
  size_t first_alarm_after_onset = scenario.num_batches();
  for (size_t batch_index = 0; batch_index < scenario.num_batches();
       ++batch_index) {
    auto batch = scenario.MakeBatch(batch_index, batch_rngs[batch_index]);
    BBV_CHECK(batch.ok()) << batch.status().ToString();
    auto probabilities = model.PredictProba(batch->features);
    BBV_CHECK(probabilities.ok());
    auto report = monitor->Observe(*probabilities);
    BBV_CHECK(report.ok()) << report.status().ToString();
    outcome.windowed_estimates.push_back(report->windowed_estimate.point);
    if (report->alarm) {
      ++outcome.alarms;
      if (batch_index < onset) {
        ++pre_onset_alarms;
      } else if (first_alarm_after_onset == scenario.num_batches()) {
        first_alarm_after_onset = batch_index;
      }
    }
  }
  const size_t span = scenario.num_batches() - onset;
  outcome.detected = first_alarm_after_onset < scenario.num_batches();
  outcome.detection_delay =
      outcome.detected ? first_alarm_after_onset - onset : span;
  outcome.false_alarm_rate =
      onset > 0 ? static_cast<double>(pre_onset_alarms) /
                      static_cast<double>(onset)
                : 0.0;
  return outcome;
}

/// Split/merge consistency: sharding one batch's probabilities across two
/// scorers and merging must reproduce the unsharded scorer's estimate bit
/// for bit (the StreamingScorer determinism contract).
bool CheckStreamingConsistency(
    const linalg::Matrix& probabilities,
    const std::shared_ptr<const core::PerformancePredictor>& predictor) {
  auto full = serve::StreamingScorer::Create(predictor, {});
  auto left = serve::StreamingScorer::Create(predictor, {});
  auto right = serve::StreamingScorer::Create(predictor, {});
  BBV_CHECK(full.ok() && left.ok() && right.ok());
  const size_t split = probabilities.rows() / 2;
  linalg::Matrix head(split, probabilities.cols());
  linalg::Matrix tail(probabilities.rows() - split, probabilities.cols());
  for (size_t row = 0; row < probabilities.rows(); ++row) {
    for (size_t col = 0; col < probabilities.cols(); ++col) {
      if (row < split) {
        head.At(row, col) = probabilities.At(row, col);
      } else {
        tail.At(row - split, col) = probabilities.At(row, col);
      }
    }
  }
  BBV_CHECK(full->Ingest(probabilities).ok());
  BBV_CHECK(left->Ingest(head).ok());
  BBV_CHECK(right->Ingest(tail).ok());
  BBV_CHECK(left->MergeFrom(*right).ok());
  const core::ScoreEstimate merged = left->EstimateScore().ValueOrDie();
  const core::ScoreEstimate unsharded = full->EstimateScore().ValueOrDie();
  return merged == unsharded;
}

int Run(const RunConfig& config) {
  PrintHeader("Extension: drift scenarios",
              "detection delay and false-alarm rate of the windowed monitor "
              "across the drift scenario library (income, xgb, window=4)",
              config);
  common::Rng rng(config.seed);
  const ExperimentData data = PrepareDataset("income", config, rng);
  const auto model = TrainBlackBox("xgb", data.train, config, rng);

  errors::DriftScenarioOptions scenario_options;
  scenario_options.num_batches = config.fast ? 24 : 40;
  scenario_options.batch_size = 400;
  scenario_options.drift_onset = scenario_options.num_batches / 2;

  core::PerformancePredictor::Options predictor_options;
  predictor_options.corruptions_per_generator = config.CorruptionsPerGenerator();
  // Meta-train on scenario-sized batches so the percentile features carry
  // the same sampling noise as the replayed stream.
  predictor_options.meta_batch_size = scenario_options.batch_size;
  auto predictor = std::make_shared<core::PerformancePredictor>(
      predictor_options);
  const auto generators = KnownTabularErrors();
  BBV_CHECK(
      predictor->Train(*model, data.test, RawPointers(generators), rng).ok());
  std::shared_ptr<const core::PerformancePredictor> shared_predictor =
      predictor;
  std::printf("predictor trained: test_score=%.4f examples=%zu\n",
              predictor->test_score(), predictor->num_training_examples());

  auto serving = std::make_shared<const data::Dataset>(data.serving);
  const std::vector<errors::DriftScenario> scenarios =
      errors::StandardDriftScenarios(serving, scenario_options);

  const size_t span =
      scenario_options.num_batches - scenario_options.drift_onset;
  // The documented detection-quality bounds this binary gates on. The clean
  // control stream must stay (almost) quiet; the corruption scenarios must
  // alarm within a window-length or so of the onset; the slow regimes
  // (gradual ramp, feedback prior drift) only need to fire before the
  // stream ends, since their early batches are near-clean by construction.
  const std::vector<ScenarioBound> bounds = {
      {"no_drift", /*max_delay=*/span, /*max_false_alarm_rate=*/0.15},
      {"sudden", /*max_delay=*/6, /*max_false_alarm_rate=*/0.25},
      {"gradual_ramp", /*max_delay=*/span - 1, /*max_false_alarm_rate=*/0.25},
      {"recurring", /*max_delay=*/6, /*max_false_alarm_rate=*/0.25},
      {"feedback_loop", /*max_delay=*/span - 1,
       /*max_false_alarm_rate=*/0.25},
  };
  BBV_CHECK(bounds.size() == scenarios.size());

  bool all_within_bounds = true;
  bool deterministic = true;
  bool streaming_consistent = true;
  std::vector<BenchResult> results;
  WallTimer timer;
  for (size_t i = 0; i < scenarios.size(); ++i) {
    const errors::DriftScenario& scenario = scenarios[i];
    BBV_CHECK(bounds[i].scenario == scenario.name());
    WallTimer scenario_timer;
    const ReplayOutcome outcome =
        Replay(scenario, *model, shared_predictor, config.seed);

    // Thread-independence: the full replay at BBV_THREADS 1 and 4 must
    // reproduce the windowed estimate sequence exactly.
    for (int threads : {1, 4}) {
      ScopedThreadsEnv scoped(threads);
      const ReplayOutcome replayed =
          Replay(scenario, *model, shared_predictor, config.seed);
      if (replayed.windowed_estimates != outcome.windowed_estimates) {
        deterministic = false;
        std::printf("DETERMINISM FAILURE: %s at BBV_THREADS=%d\n",
                    scenario.name().c_str(), threads);
      }
    }

    bool within = outcome.false_alarm_rate <= bounds[i].max_false_alarm_rate;
    if (scenario.ExpectsDrift()) {
      within = within && outcome.detected &&
               outcome.detection_delay <= bounds[i].max_delay;
    } else {
      // The clean control must not "detect" anything; every alarm is false.
      within = within && outcome.alarms == 0;
    }
    all_within_bounds = all_within_bounds && within;
    std::printf(
        "scenario=%-13s detected=%d delay=%2zu/%zu false_alarm_rate=%.2f "
        "alarms=%2zu bound{delay<=%zu fa<=%.2f} %s\n",
        scenario.name().c_str(), outcome.detected ? 1 : 0,
        outcome.detection_delay, span, outcome.false_alarm_rate,
        outcome.alarms, bounds[i].max_delay, bounds[i].max_false_alarm_rate,
        within ? "ok" : "VIOLATION");

    BenchResult result;
    result.name = "scenario_" + scenario.name();
    result.wall_seconds = scenario_timer.Seconds();
    result.extras = {
        {"detected", outcome.detected ? 1.0 : 0.0},
        {"detection_delay", static_cast<double>(outcome.detection_delay)},
        {"false_alarm_rate", outcome.false_alarm_rate},
        {"alarms", static_cast<double>(outcome.alarms)},
        {"within_bound", within ? 1.0 : 0.0},
    };
    results.push_back(std::move(result));
  }

  // StreamingScorer split/merge consistency on a drifted batch: the sudden
  // scenario's first post-onset batch.
  {
    common::Rng probe_rng(config.seed);
    std::vector<common::Rng> batch_rngs =
        probe_rng.ForkStreams(scenario_options.num_batches);
    auto batch = scenarios[1].MakeBatch(scenario_options.drift_onset,
                                        batch_rngs[scenario_options.drift_onset]);
    BBV_CHECK(batch.ok());
    auto probabilities = model->PredictProba(batch->features);
    BBV_CHECK(probabilities.ok());
    streaming_consistent =
        CheckStreamingConsistency(*probabilities, shared_predictor);
    std::printf("streaming split/merge consistency: %s\n",
                streaming_consistent ? "bit-identical" : "MISMATCH");
  }
  std::printf("determinism(threads 1 vs 4): %s\n",
              deterministic ? "byte-identical" : "MISMATCH");

  BenchResult overall;
  overall.name = "overall";
  overall.wall_seconds = timer.Seconds();
  overall.extras = {
      {"deterministic", deterministic ? 1.0 : 0.0},
      {"within_bound", all_within_bounds ? 1.0 : 0.0},
      {"streaming_consistent", streaming_consistent ? 1.0 : 0.0},
      {"scenarios", static_cast<double>(scenarios.size())},
  };
  results.push_back(std::move(overall));
  if (!config.json_path.empty()) {
    WriteBenchJson(config.json_path, "ext_drift_scenarios", config, results,
                   {{"dataset", "income"},
                    {"black_box", "xgb"},
                    {"monitor", "windowed(4)@0.05"}});
  }
  MaybeWriteTelemetryJson(config);
  if (!all_within_bounds || !deterministic || !streaming_consistent) {
    std::printf("FAILED: bounds=%d deterministic=%d streaming=%d\n",
                all_within_bounds ? 1 : 0, deterministic ? 1 : 0,
                streaming_consistent ? 1 : 0);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bbv::bench

int main(int argc, char** argv) {
  return bbv::bench::Run(bbv::bench::ParseArgs(argc, argv));
}
