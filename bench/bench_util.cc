#include "bench/bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "common/parallel.h"
#include "common/string_util.h"
#include "common/telemetry.h"
#include "datasets/registry.h"
#include "errors/mixture.h"
#include "errors/image_errors.h"
#include "errors/missing_values.h"
#include "errors/numeric_errors.h"
#include "errors/swapped_columns.h"
#include "errors/text_errors.h"
#include "ml/conv_net.h"
#include "ml/feed_forward_network.h"
#include "ml/gradient_boosted_trees.h"
#include "ml/sgd_logistic_regression.h"
#include "stats/descriptive.h"

namespace bbv::bench {

namespace {

/// "bench/micro_ops" -> "micro_ops": basename for the default JSON path.
std::string BinaryBasename(const char* argv0) {
  std::string name = argv0 == nullptr ? "bench" : argv0;
  const size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  return name.empty() ? "bench" : name;
}

/// Identifies the compiler that produced this binary, so committed baseline
/// JSONs record which toolchain the numbers belong to. Clang must be probed
/// first: it also defines __GNUC__ for compatibility.
std::string CompilerId() {
#if defined(__clang__)
  return "clang-" + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__);
#elif defined(__GNUC__)
  return "gcc-" + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__);
#else
  return "unknown";
#endif
}

}  // namespace

ScopedThreadsEnv::ScopedThreadsEnv(int threads) {
  const char* previous = std::getenv("BBV_THREADS");
  had_previous_ = previous != nullptr;
  if (had_previous_) previous_ = previous;
  ::setenv("BBV_THREADS", std::to_string(threads).c_str(), 1);
}

ScopedThreadsEnv::~ScopedThreadsEnv() {
  if (had_previous_) {
    ::setenv("BBV_THREADS", previous_.c_str(), 1);
  } else {
    ::unsetenv("BBV_THREADS");
  }
}

RunConfig ParseArgs(int argc, char** argv) {
  RunConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fast") {
      config.fast = true;
    } else if (arg == "--full") {
      config.fast = false;
    } else if (common::StartsWith(arg, "--seed=")) {
      config.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (common::StartsWith(arg, "--model=")) {
      config.model = arg.substr(8);
    } else if (arg == "--json") {
      config.json_path = "BENCH_" + BinaryBasename(argv[0]) + ".json";
    } else if (common::StartsWith(arg, "--json=")) {
      config.json_path = arg.substr(7);
    } else if (arg == "--telemetry-json") {
      config.telemetry_json_path =
          "TELEMETRY_" + BinaryBasename(argv[0]) + ".json";
    } else if (common::StartsWith(arg, "--telemetry-json=")) {
      config.telemetry_json_path = arg.substr(17);
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [--fast|--full] [--seed=N] "
          "[--model=lr|dnn|xgb|conv|all] [--json[=PATH]] "
          "[--telemetry-json[=PATH]]\n",
          argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      std::exit(1);
    }
  }
  return config;
}

std::unique_ptr<ml::Classifier> MakeClassifier(const std::string& name,
                                               const RunConfig& config) {
  if (name == "lr") {
    return std::make_unique<ml::SgdLogisticRegression>();
  }
  if (name == "dnn") {
    ml::FeedForwardNetwork::Options options;
    options.epochs = config.fast ? 25 : 40;
    return std::make_unique<ml::FeedForwardNetwork>(options);
  }
  if (name == "xgb") {
    ml::GradientBoostedTrees::Options options;
    options.num_rounds = config.fast ? 40 : 60;
    return std::make_unique<ml::GradientBoostedTrees>(options);
  }
  if (name == "conv") {
    ml::ConvNet::Options options =
        config.fast ? ml::ConvNet::Options{} : ml::ConvNet::Options::PaperScale();
    return std::make_unique<ml::ConvNet>(options);
  }
  std::fprintf(stderr, "unknown model '%s'\n", name.c_str());
  std::abort();
}

ExperimentData PrepareDataset(const std::string& dataset_name,
                              const RunConfig& config, common::Rng& rng) {
  datasets::DatasetOptions options;
  options.num_rows = config.DatasetRows();
  options.image_side = config.ImageSide();
  auto dataset = datasets::MakeByName(dataset_name, options, rng);
  BBV_CHECK(dataset.ok()) << dataset.status().ToString();
  data::Dataset balanced = data::BalanceClasses(*dataset, rng);
  data::DatasetSplit source_serving = TrainTestSplit(balanced, 0.7, rng);
  data::DatasetSplit train_test = TrainTestSplit(source_serving.first, 0.7, rng);
  return ExperimentData{std::move(train_test.first),
                        std::move(train_test.second),
                        std::move(source_serving.second)};
}

std::unique_ptr<ml::BlackBoxModel> TrainBlackBox(const std::string& model_name,
                                                 const data::Dataset& train,
                                                 const RunConfig& config,
                                                 common::Rng& rng) {
  auto model = std::make_unique<ml::BlackBoxModel>(
      MakeClassifier(model_name, config));
  const common::Status status = model->Train(train, rng);
  BBV_CHECK(status.ok()) << status.ToString();
  return model;
}

std::vector<std::shared_ptr<errors::ErrorGen>> KnownTabularErrors() {
  return {std::make_shared<errors::MissingValues>(),
          std::make_shared<errors::NumericOutliers>(),
          std::make_shared<errors::SwappedColumns>(),
          std::make_shared<errors::Scaling>()};
}

std::vector<std::shared_ptr<errors::ErrorGen>> UnknownTabularErrors() {
  // Each of the paper's unknown error types perturbs *one* attribute
  // ("a categorical attribute", "a numeric attribute").
  return {std::make_shared<errors::CategoricalTypos>(
              std::vector<std::string>{}, errors::FractionRange{},
              /*max_columns=*/1),
          std::make_shared<errors::NumericSmearing>(
              std::vector<std::string>{}, errors::FractionRange{},
              /*max_relative_change=*/0.1, /*max_columns=*/1),
          std::make_shared<errors::SignFlip>(std::vector<std::string>{},
                                             errors::FractionRange{},
                                             /*max_columns=*/1)};
}

std::vector<std::shared_ptr<errors::ErrorGen>> ImageErrors() {
  return {std::make_shared<errors::GaussianImageNoise>(),
          std::make_shared<errors::ImageRotation>()};
}

std::vector<std::shared_ptr<errors::ErrorGen>> ErrorsForDataset(
    const std::string& dataset_name) {
  if (dataset_name == "digits" || dataset_name == "fashion") {
    return ImageErrors();
  }
  if (dataset_name == "tweets") {
    // Text data: the adversarial leetspeak attack is the designated error.
    return {std::make_shared<errors::AdversarialLeetspeak>()};
  }
  return KnownTabularErrors();
}

common::Result<data::DataFrame> CorruptRandomSubset(
    const data::DataFrame& frame, const errors::ErrorGen& generator,
    common::Rng& rng) {
  return errors::BlendCorruption(frame, generator, rng.Uniform(), rng);
}

std::vector<const errors::ErrorGen*> RawPointers(
    const std::vector<std::shared_ptr<errors::ErrorGen>>& generators) {
  std::vector<const errors::ErrorGen*> raw;
  raw.reserve(generators.size());
  for (const auto& generator : generators) raw.push_back(generator.get());
  return raw;
}

Summary Summarize(const std::vector<double>& values) {
  BBV_CHECK(!values.empty());
  Summary summary;
  const std::vector<double> percentiles =
      stats::Percentiles(values, {5.0, 25.0, 50.0, 75.0, 95.0});
  summary.p05 = percentiles[0];
  summary.p25 = percentiles[1];
  summary.median = percentiles[2];
  summary.p75 = percentiles[3];
  summary.p95 = percentiles[4];
  summary.mean = stats::Mean(values);
  return summary;
}

void WriteBenchJson(
    const std::string& path, const std::string& bench, const RunConfig& config,
    const std::vector<BenchResult>& results,
    const std::vector<std::pair<std::string, std::string>>& metadata) {
  std::ofstream out(path, std::ios::trunc);
  BBV_CHECK(out.good()) << "cannot open " << path << " for writing";
  out << "{\n";
  out << "  \"bench\": \"" << bench << "\",\n";
  out << "  \"mode\": \"" << (config.fast ? "fast" : "full") << "\",\n";
  out << "  \"seed\": " << config.seed << ",\n";
  out << "  \"hardware_concurrency\": " << common::HardwareThreadCount()
      << ",\n";
  out << "  \"bbv_threads\": " << common::ConfiguredThreadCount() << ",\n";
  out << "  \"compiler\": \"" << CompilerId() << "\",\n";
  for (const auto& [key, value] : metadata) {
    out << "  \"" << key << "\": \"" << value << "\",\n";
  }
  out << "  \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const BenchResult& result = results[i];
    out << "    {\"name\": \"" << result.name << "\""
        << ", \"threads\": " << result.threads << ", \"wall_seconds\": "
        << result.wall_seconds << ", \"speedup_vs_serial\": "
        << result.speedup_vs_serial;
    for (const auto& [key, value] : result.extras) {
      out << ", \"" << key << "\": " << value;
    }
    out << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  out.flush();
  BBV_CHECK(out.good()) << "short write to " << path;
}

void WriteBenchJson(const std::string& path, const std::string& bench,
                    const RunConfig& config,
                    const std::vector<BenchResult>& results) {
  WriteBenchJson(path, bench, config, results, {});
}

void MaybeWriteTelemetryJson(const RunConfig& config) {
  if (config.telemetry_json_path.empty()) return;
  const std::string& path = config.telemetry_json_path;
  std::ofstream out(path, std::ios::trunc);
  BBV_CHECK(out.good()) << "cannot open " << path << " for writing";
  out << common::telemetry::Registry::Global().ToJson();
  out.flush();
  BBV_CHECK(out.good()) << "short write to " << path;
}

void PrintHeader(const std::string& figure, const std::string& description,
                 const RunConfig& config) {
  std::printf("==================================================\n");
  std::printf("%s: %s\n", figure.c_str(), description.c_str());
  std::printf("mode=%s seed=%llu\n", config.fast ? "fast" : "full",
              static_cast<unsigned long long>(config.seed));
  std::printf("==================================================\n");
}

}  // namespace bbv::bench
