// Reproduces Figure 4: sensitivity of the performance predictor to the size
// of the held-out set D_test from which the corrupted meta-training data is
// generated. Six panels: (missing values, income) and (outliers, heart),
// each for lr / dnn / xgb; |D_test| is swept over
// {10, 50, 100, 250, 500, 750, 1000, 1500} and we report the MAE plus the
// 10th/90th percentile of the absolute-error distribution.

#include <cmath>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/performance_predictor.h"
#include "errors/missing_values.h"
#include "errors/numeric_errors.h"
#include "stats/descriptive.h"

namespace bbv::bench {
namespace {

void RunPanel(const std::string& dataset_name, const std::string& model_name,
              const errors::ErrorGen& generator, const RunConfig& config) {
  common::Rng rng(config.seed);
  const ExperimentData data = PrepareDataset(dataset_name, config, rng);
  const auto model = TrainBlackBox(model_name, data.train, config, rng);

  const std::vector<size_t> sizes = {10, 50, 100, 250, 500, 750, 1000, 1500};
  for (size_t test_size : sizes) {
    if (test_size > data.test.NumRows()) break;
    // Subsample D_test to the requested size.
    std::vector<size_t> rows =
        rng.SampleWithoutReplacement(data.test.NumRows(), test_size);
    const data::Dataset small_test = data.test.SelectRows(rows);

    core::PerformancePredictor::Options options;
    options.corruptions_per_generator = config.CorruptionsPerGenerator();
    core::PerformancePredictor predictor(options);
    const std::vector<const errors::ErrorGen*> generators = {&generator};
    const common::Status status =
        predictor.Train(*model, small_test, generators, rng);
    BBV_CHECK(status.ok()) << status.ToString();

    std::vector<double> absolute_errors;
    for (int repetition = 0; repetition < config.ServingRepetitions();
         ++repetition) {
      auto corrupted = generator.Corrupt(data.serving.features, rng);
      BBV_CHECK(corrupted.ok()) << corrupted.status().ToString();
      auto probabilities = model->PredictProba(*corrupted);
      BBV_CHECK(probabilities.ok()) << probabilities.status().ToString();
      const double true_accuracy = core::ComputeScore(
          core::ScoreMetric::kAccuracy, *probabilities, data.serving.labels);
      auto estimate = predictor.EstimateScoreFromProba(*probabilities);
      BBV_CHECK(estimate.ok()) << estimate.status().ToString();
      absolute_errors.push_back(std::abs(estimate->point - true_accuracy));
    }
    const double mae = stats::Mean(absolute_errors);
    const std::vector<double> bands =
        stats::Percentiles(absolute_errors, {10.0, 90.0});
    std::printf(
        "panel=%s/%s(%s) test_size=%-5zu mae=%.4f p10=%.4f p90=%.4f\n",
        generator.Name().c_str(), dataset_name.c_str(), model_name.c_str(),
        test_size, mae, bands[0], bands[1]);
    std::fflush(stdout);
  }
}

void Run(const RunConfig& config) {
  PrintHeader("Figure 4",
              "sensitivity of the performance predictor to |D_test|",
              config);
  const errors::MissingValues missing;
  const errors::NumericOutliers outliers;
  for (const std::string model_name : {"lr", "dnn", "xgb"}) {
    if (config.model != "all" && config.model != model_name) continue;
    RunPanel("income", model_name, missing, config);
    RunPanel("heart", model_name, outliers, config);
  }
}

}  // namespace
}  // namespace bbv::bench

int main(int argc, char** argv) {
  const bbv::bench::RunConfig config = bbv::bench::ParseArgs(argc, argv);
  bbv::bench::Run(config);
  bbv::bench::MaybeWriteTelemetryJson(config);
  return 0;
}
