// Reproduces Figure 5 (a-c) and the §6.2.1 experiment: F1 scores of the
// performance validator (PPM) against the task-independent baselines
// (BBSE, BBSE-h, REL) for acceptable-drop thresholds of 3% / 5% / 10% on
// {income, heart, bank} x {lr, xgb, dnn}.
//
// The validator is always meta-trained on randomly chosen mixtures of the
// four *known* error types (missing values, outliers, swapped columns,
// scaling). Evaluation runs in two regimes:
//   regime=known    serving data corrupted by mixtures of the same types
//                   (§6.2.1)
//   regime=unknown  serving data corrupted by mixtures of three error types
//                   never seen in training: categorical typos, numeric
//                   smearing, sign flips (§6.2.2, Figure 5)
//
// Positive class for the F1 computation: "quality drop exceeds the
// threshold" (an alarm should be raised). A shift detected by a baseline is
// interpreted as an alarm.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/baselines.h"
#include "core/performance_validator.h"
#include "errors/mixture.h"
#include "ml/metrics.h"

namespace bbv::bench {
namespace {

struct RegimeResult {
  double ppm = 0.0;
  double bbse = 0.0;
  double bbseh = 0.0;
  double rel = 0.0;
  double violation_rate = 0.0;
};

RegimeResult EvaluateRegime(const ml::BlackBox& model,
                            const core::PerformanceValidator& validator,
                            const core::BbseDetector& bbse,
                            const core::BbsehDetector& bbseh,
                            const core::RelShiftDetector& rel,
                            const errors::ErrorGen& serving_errors,
                            const data::Dataset& serving, double test_score,
                            double threshold, int repetitions,
                            common::Rng& rng) {
  std::vector<int> truth;
  std::vector<int> ppm_alarm;
  std::vector<int> bbse_alarm;
  std::vector<int> bbseh_alarm;
  std::vector<int> rel_alarm;
  for (int repetition = 0; repetition < repetitions; ++repetition) {
    auto corrupted = serving_errors.Corrupt(serving.features, rng);
    BBV_CHECK(corrupted.ok()) << corrupted.status().ToString();
    auto probabilities = model.PredictProba(*corrupted);
    BBV_CHECK(probabilities.ok()) << probabilities.status().ToString();
    const double true_accuracy = core::ComputeScore(
        core::ScoreMetric::kAccuracy, *probabilities, serving.labels);
    truth.push_back(true_accuracy < (1.0 - threshold) * test_score ? 1 : 0);

    auto accepted = validator.ValidateFromProba(*probabilities);
    BBV_CHECK(accepted.ok()) << accepted.status().ToString();
    ppm_alarm.push_back(*accepted ? 0 : 1);

    auto bbse_detects = bbse.DetectsShiftFromProba(*probabilities);
    BBV_CHECK(bbse_detects.ok()) << bbse_detects.status().ToString();
    bbse_alarm.push_back(*bbse_detects ? 1 : 0);

    auto bbseh_detects = bbseh.DetectsShiftFromProba(*probabilities);
    BBV_CHECK(bbseh_detects.ok()) << bbseh_detects.status().ToString();
    bbseh_alarm.push_back(*bbseh_detects ? 1 : 0);

    auto rel_detects = rel.DetectsShift(*corrupted);
    BBV_CHECK(rel_detects.ok()) << rel_detects.status().ToString();
    rel_alarm.push_back(*rel_detects ? 1 : 0);
  }
  RegimeResult result;
  result.ppm = ml::F1Score(ppm_alarm, truth);
  result.bbse = ml::F1Score(bbse_alarm, truth);
  result.bbseh = ml::F1Score(bbseh_alarm, truth);
  result.rel = ml::F1Score(rel_alarm, truth);
  double violations = 0.0;
  for (int t : truth) violations += t;
  result.violation_rate = violations / static_cast<double>(truth.size());
  return result;
}

void RunCell(const std::string& dataset_name, const std::string& model_name,
             const RunConfig& config) {
  common::Rng rng(config.seed);
  const ExperimentData data = PrepareDataset(dataset_name, config, rng);
  const auto model = TrainBlackBox(model_name, data.train, config, rng);
  const auto test_accuracy = model->ScoreAccuracy(data.test);
  BBV_CHECK(test_accuracy.ok()) << test_accuracy.status().ToString();

  // Baselines: REL compares raw serving columns against the training data;
  // BBSE / BBSE-h compare model outputs against the held-out test outputs.
  core::RelShiftDetector rel;
  BBV_CHECK(rel.Fit(data.train.features).ok());
  core::BbseDetector bbse(model.get());
  BBV_CHECK(bbse.Fit(data.test.features).ok());
  core::BbsehDetector bbseh(model.get());
  BBV_CHECK(bbseh.Fit(data.test.features).ok());

  // Known-error evaluation draws corruption severities from the full
  // spectrum: a random row subset receives a random mixture of errors. The
  // unknown error types (typos/smearing/sign flips) are intrinsically much
  // milder, so they are applied as a plain mixture (per-column random
  // magnitudes, all rows eligible) exactly as in §6.2.2 — otherwise almost
  // no serving batch violates the threshold and F1 becomes noise.
  const errors::RandomSubsetCorruption known_mixture(
      std::make_shared<errors::ErrorMixture>(KnownTabularErrors()));
  const errors::ErrorMixture unknown_mixture(UnknownTabularErrors());

  for (double threshold : {0.03, 0.05, 0.10}) {
    core::PerformanceValidator::Options options;
    options.threshold = threshold;
    // The mixture generator internally randomizes over the four error
    // types; scale the repetitions to keep the meta-training set size
    // comparable to one-generator-per-type training.
    options.corruptions_per_generator = 4 * config.CorruptionsPerGenerator();
    core::PerformanceValidator validator(options);
    const std::vector<const errors::ErrorGen*> training_errors = {
        &known_mixture};
    const common::Status status =
        validator.Train(*model, data.test, training_errors, rng);
    BBV_CHECK(status.ok()) << status.ToString();

    struct Regime {
      const char* name;
      const errors::ErrorGen* mixture;
    };
    for (const Regime& regime :
         {Regime{"known", &known_mixture}, Regime{"unknown", &unknown_mixture}}) {
      const RegimeResult result = EvaluateRegime(
          *model, validator, bbse, bbseh, rel, *regime.mixture, data.serving,
          *test_accuracy, threshold, config.ServingRepetitions(), rng);
      std::printf(
          "dataset=%-7s model=%-4s t=%.2f regime=%-7s "
          "F1{PPM=%.3f BBSE=%.3f BBSE-h=%.3f REL=%.3f} violation_rate=%.2f\n",
          dataset_name.c_str(), model_name.c_str(), threshold, regime.name,
          result.ppm, result.bbse, result.bbseh, result.rel,
          result.violation_rate);
      std::fflush(stdout);
    }
  }
}

void Run(const RunConfig& config) {
  PrintHeader("Figure 5",
              "F1 of performance validation (PPM) vs task-independent shift "
              "detectors for thresholds 3%/5%/10%",
              config);
  for (const std::string dataset : {"income", "heart", "bank"}) {
    for (const std::string model_name : {"lr", "xgb", "dnn"}) {
      if (config.model != "all" && config.model != model_name) continue;
      RunCell(dataset, model_name, config);
    }
  }
}

}  // namespace
}  // namespace bbv::bench

int main(int argc, char** argv) {
  const bbv::bench::RunConfig config = bbv::bench::ParseArgs(argc, argv);
  bbv::bench::Run(config);
  bbv::bench::MaybeWriteTelemetryJson(config);
  return 0;
}
