#ifndef BBV_BENCH_BENCH_UTIL_H_
#define BBV_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "data/dataset.h"
#include "errors/error_gen.h"
#include "ml/black_box.h"
#include "ml/classifier.h"

namespace bbv::bench {

/// Shared experiment configuration parsed from argv. Every figure harness
/// accepts:
///   --fast           reduced sizes/repetitions (default)
///   --full           paper-scale sizes (slower)
///   --seed=N         RNG seed (default 42)
///   --model=NAME     model filter where applicable (lr|dnn|xgb|conv|all)
///   --json[=PATH]    additionally emit machine-readable results as JSON;
///                    the default path is BENCH_<binary-name>.json in the
///                    working directory
///   --telemetry-json[=PATH]  dump the process-wide telemetry registry
///                    (counters, gauges, latency histograms) as JSON at
///                    exit; default path TELEMETRY_<binary-name>.json
struct RunConfig {
  bool fast = true;
  uint64_t seed = 42;
  std::string model = "all";
  /// Empty when --json was not requested.
  std::string json_path;
  /// Empty when --telemetry-json was not requested.
  std::string telemetry_json_path;

  /// Rows generated per dataset before balancing/splitting.
  size_t DatasetRows() const { return fast ? 8000 : 16000; }
  /// Image side for the image datasets.
  size_t ImageSide() const { return fast ? 16 : 28; }
  /// Corrupted copies of D_test per error generator for meta-training.
  int CorruptionsPerGenerator() const { return fast ? 40 : 100; }
  /// Evaluation batches of corrupted serving data per experiment cell.
  int ServingRepetitions() const { return fast ? 50 : 100; }
};

RunConfig ParseArgs(int argc, char** argv);

/// Instantiates one of the paper's black box classifiers by name
/// (lr, dnn, xgb, conv). Aborts on unknown names.
std::unique_ptr<ml::Classifier> MakeClassifier(const std::string& name,
                                               const RunConfig& config);

/// Generates + class-balances a dataset and splits it into
/// (train, test, serving) with the paper's protocol: disjoint source and
/// serving partitions, source further split into train/test.
struct ExperimentData {
  data::Dataset train;
  data::Dataset test;
  data::Dataset serving;
};
ExperimentData PrepareDataset(const std::string& dataset_name,
                              const RunConfig& config, common::Rng& rng);

/// Trains a BlackBoxModel of the given kind on `train`; aborts on failure
/// (benchmarks have no recovery path).
std::unique_ptr<ml::BlackBoxModel> TrainBlackBox(const std::string& model_name,
                                                 const data::Dataset& train,
                                                 const RunConfig& config,
                                                 common::Rng& rng);

/// The four "known" tabular error generators used throughout §6
/// (missing values, outliers, swapped columns, scaling).
std::vector<std::shared_ptr<errors::ErrorGen>> KnownTabularErrors();

/// The three §6.2.2 error types unknown to the validator at training time
/// (categorical typos, numeric smearing, sign flips).
std::vector<std::shared_ptr<errors::ErrorGen>> UnknownTabularErrors();

/// Image errors: gaussian noise and rotation.
std::vector<std::shared_ptr<errors::ErrorGen>> ImageErrors();

/// Errors applicable to a dataset (tabular sets get the known tabular
/// errors; tweets adds the adversarial leetspeak attack; digits/fashion get
/// the image errors).
std::vector<std::shared_ptr<errors::ErrorGen>> ErrorsForDataset(
    const std::string& dataset_name);

/// Serving-time corruption with a random severity: applies `generator` to a
/// uniformly sized random subset of the rows (subset fraction ~ U(0,1)), so
/// evaluation covers the whole spectrum from benign to catastrophic shifts
/// (the paper corrupts serving data "with randomly sampled probabilities").
common::Result<data::DataFrame> CorruptRandomSubset(
    const data::DataFrame& frame, const errors::ErrorGen& generator,
    common::Rng& rng);

/// Raw pointer view of an owning generator list (the core API takes
/// non-owning pointers).
std::vector<const errors::ErrorGen*> RawPointers(
    const std::vector<std::shared_ptr<errors::ErrorGen>>& generators);

/// Distribution summary of a sample (used for the box-plot style figures).
struct Summary {
  double p05 = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double mean = 0.0;
};
Summary Summarize(const std::vector<double>& values);

/// Prints a figure header in a stable, grep-friendly format.
void PrintHeader(const std::string& figure, const std::string& description,
                 const RunConfig& config);

/// Sets BBV_THREADS for one scope and restores the previous value after.
/// Shared by the scaling/inference benches and the determinism tests so
/// every thread-count sweep manipulates the environment the same way.
class ScopedThreadsEnv {
 public:
  explicit ScopedThreadsEnv(int threads);
  ~ScopedThreadsEnv();
  ScopedThreadsEnv(const ScopedThreadsEnv&) = delete;
  ScopedThreadsEnv& operator=(const ScopedThreadsEnv&) = delete;

 private:
  bool had_previous_ = false;
  std::string previous_;
};

/// One measured benchmark configuration (e.g. one workload at one thread
/// count). `extras` holds additional numeric facts — determinism flags,
/// item counts — merged verbatim into the emitted JSON object.
struct BenchResult {
  std::string name;
  int threads = 1;
  double wall_seconds = 0.0;
  double speedup_vs_serial = 1.0;
  std::vector<std::pair<std::string, double>> extras;
};

/// Writes a BENCH_*.json file: run metadata (benchmark name, mode, seed,
/// hardware concurrency, effective BBV_THREADS, compiler id) plus one
/// object per result. `metadata` appends benchmark-specific string fields
/// (kernel/binning configuration and the like) to the run header; parsers
/// must skip fields they do not know. Aborts on I/O failure so CI never
/// uploads a silently truncated artifact.
void WriteBenchJson(
    const std::string& path, const std::string& bench, const RunConfig& config,
    const std::vector<BenchResult>& results,
    const std::vector<std::pair<std::string, std::string>>& metadata);

/// Metadata-free convenience overload.
void WriteBenchJson(const std::string& path, const std::string& bench,
                    const RunConfig& config,
                    const std::vector<BenchResult>& results);

/// Dumps telemetry::Registry::Global().ToJson() to
/// config.telemetry_json_path; no-op when the flag was not given. Aborts on
/// I/O failure (same contract as WriteBenchJson).
void MaybeWriteTelemetryJson(const RunConfig& config);

/// Monotonic wall-clock stopwatch for coarse benchmark timing.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  void Reset() { start_ = std::chrono::steady_clock::now(); }
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace bbv::bench

#endif  // BBV_BENCH_BENCH_UTIL_H_
