// Inference benchmark for the flattened tree-ensemble kernel: times batch
// prediction through the legacy scalar node walk, the compiled bit-exact
// ForestKernel, and the opt-in quantized width-8 fast path on the same
// fitted models (random forest and boosted classifier, 100 trees) at 1e4
// and 1e5 serving rows. The main measurements are pinned to BBV_THREADS=1
// so the kernel-vs-legacy and quantized-vs-exact ratios measure the kernels
// themselves (and stay comparable across machines); a separate sweep then
// re-times the 1e5-row forest workloads at 2/4/8 threads.
//
// Correctness gates (any violation exits non-zero):
//  - bit-exact kernel outputs must equal the legacy node walk bit for bit;
//  - quantized outputs must equal the bit-exact kernel evaluated on
//    ForestKernel::QuantizeFeatures(serving) bit for bit (the fast path's
//    defining property);
//  - |quantized - exact| must stay within the kernel's documented
//    quantization bound on every output slot.
//
// With --json[=PATH] the measurements land in BENCH_forest_inference.json;
// the per-result "deterministic" and "within_bound" flags feed
// bbv_bench_compare's never-decrease rule, so CI fails loudly if
// equivalence or the error contract ever regresses.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/check.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "linalg/matrix.h"
#include "ml/forest_kernel.h"
#include "ml/gradient_boosted_trees.h"
#include "ml/random_forest.h"

namespace bbv::bench {
namespace {

constexpr int kTrees = 100;
constexpr size_t kFeatures = 16;
constexpr int kRepetitions = 5;
/// Thread counts for the 1e5-row scaling sweep (1 is the pinned main run).
constexpr int kSweepThreads[] = {2, 4, 8};

linalg::Matrix MakeFeatures(size_t rows, uint64_t seed) {
  common::Rng rng(seed);
  linalg::Matrix features(rows, kFeatures);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < kFeatures; ++j) features.At(i, j) = rng.Uniform();
  }
  return features;
}

/// Legacy reference: the pre-kernel prediction path — a parallel loop over
/// rows, each walking every tree node by node — recomputed from the fitted
/// trees with the same scheduling threshold the old code used.
std::vector<double> LegacyForestPredict(const ml::RandomForestRegressor& forest,
                                        const linalg::Matrix& features) {
  std::vector<double> result(features.rows());
  const common::Status status = common::ParallelFor(
      features.rows(),
      [&](size_t i) {
        const double* row = features.RowData(i);
        double sum = 0.0;
        for (const ml::RegressionTree& tree : forest.trees()) {
          // Scalar baseline the kernel speedup is measured against.
          // bbv-lint: allow(batch-api) this is the comparison timing loop
          sum += tree.PredictRow(row);
        }
        result[i] = sum / static_cast<double>(forest.trees().size());
        return common::Status::OK();
      },
      {.min_items_per_thread = 512});
  BBV_CHECK(status.ok()) << status.ToString();
  return result;
}

/// Legacy boosted-classifier scores (pre-softmax): per-row strided
/// accumulation over the node walk, serial like the old PredictProba loop.
std::vector<double> LegacyGbtScores(const ml::GradientBoostedTrees& model,
                                    const linalg::Matrix& features) {
  const auto m = static_cast<size_t>(model.num_classes());
  std::vector<double> scores(features.rows() * m);
  for (size_t i = 0; i < features.rows(); ++i) {
    const double* row = features.RowData(i);
    double* out = scores.data() + i * m;
    for (size_t k = 0; k < m; ++k) out[k] = model.base_scores()[k];
    for (size_t t = 0; t < model.trees().size(); ++t) {
      // Scalar baseline the kernel speedup is measured against.
      // bbv-lint: allow(batch-api) this is the comparison timing loop
      out[t % m] += model.learning_rate() * model.trees()[t].PredictRow(row);
    }
  }
  return scores;
}

/// Best-of-N wall time of `run`, storing the last computed artifact in
/// `artifact` for the equivalence check.
template <typename Run>
double TimeBest(const Run& run, std::vector<double>& artifact) {
  double best = 0.0;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    WallTimer timer;
    artifact = run();
    const double seconds = timer.Seconds();
    if (rep == 0 || seconds < best) best = seconds;
  }
  return best;
}

double MaxAbsDiff(const std::vector<double>& a, const std::vector<double>& b) {
  BBV_CHECK_EQ(a.size(), b.size());
  double max_diff = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(a[i] - b[i]));
  }
  return max_diff;
}

struct PathResult {
  double legacy_seconds = 0.0;
  double kernel_seconds = 0.0;
  bool identical = false;
};

/// Measurements of the quantized fast path against the bit-exact kernel.
struct QuantResult {
  double seconds = 0.0;
  /// Bit-identical to the exact kernel on QuantizeFeatures(serving)?
  bool identical_on_rounded = false;
  /// max |quantized - exact| over every output slot.
  double max_abs_error = 0.0;
  /// The kernel's documented bound for this entry point.
  double error_bound = 0.0;
  bool WithinBound() const { return max_abs_error <= error_bound; }
};

void Report(const std::string& name, size_t rows, const PathResult& measured,
            std::vector<BenchResult>& results) {
  for (const bool kernel : {false, true}) {
    BenchResult result;
    result.name = name + (kernel ? "_kernel" : "_legacy");
    result.wall_seconds = kernel ? measured.kernel_seconds
                                 : measured.legacy_seconds;
    result.extras.emplace_back("rows", static_cast<double>(rows));
    result.extras.emplace_back("deterministic", measured.identical ? 1.0 : 0.0);
    if (kernel) {
      result.extras.emplace_back(
          "speedup_vs_legacy",
          measured.kernel_seconds > 0.0
              ? measured.legacy_seconds / measured.kernel_seconds
              : 0.0);
    }
    results.push_back(result);
    std::printf("%-18s rows=%zu wall=%.4fs%s identical=%s\n",
                result.name.c_str(), rows, result.wall_seconds,
                kernel ? "" : " (reference)",
                measured.identical ? "yes" : "NO");
  }
}

void ReportQuant(const std::string& name, size_t rows, double legacy_seconds,
                 const QuantResult& measured,
                 std::vector<BenchResult>& results) {
  BenchResult result;
  result.name = name + "_quant";
  result.wall_seconds = measured.seconds;
  result.extras.emplace_back("rows", static_cast<double>(rows));
  result.extras.emplace_back("deterministic",
                             measured.identical_on_rounded ? 1.0 : 0.0);
  result.extras.emplace_back("within_bound",
                             measured.WithinBound() ? 1.0 : 0.0);
  result.extras.emplace_back("max_abs_error", measured.max_abs_error);
  result.extras.emplace_back("error_bound", measured.error_bound);
  result.extras.emplace_back(
      "speedup_vs_legacy",
      measured.seconds > 0.0 ? legacy_seconds / measured.seconds : 0.0);
  results.push_back(result);
  std::printf(
      "%-18s rows=%zu wall=%.4fs identical_on_rounded=%s "
      "max_err=%.3e bound=%.3e within_bound=%s\n",
      result.name.c_str(), rows, measured.seconds,
      measured.identical_on_rounded ? "yes" : "NO", measured.max_abs_error,
      measured.error_bound, measured.WithinBound() ? "yes" : "NO");
}

int RunBenchmark(int argc, char** argv) {
  RunConfig config = ParseArgs(argc, argv);
  PrintHeader("forest_inference",
              "legacy node walk vs flattened kernel vs quantized fast path, "
              "100-tree ensembles",
              config);

  // Fitted models shared by every workload.
  const linalg::Matrix train = MakeFeatures(4000, config.seed);
  std::vector<double> targets(train.rows());
  for (size_t i = 0; i < train.rows(); ++i) {
    targets[i] = 2.0 * train.At(i, 0) - train.At(i, 1) + 0.25 * train.At(i, 7);
  }
  ml::RandomForestRegressor::Options forest_options;
  forest_options.num_trees = kTrees;
  ml::RandomForestRegressor forest(forest_options);
  {
    common::Rng rng(config.seed + 1);
    BBV_CHECK(forest.Fit(train, targets, rng).ok());
  }
  std::vector<int> labels(train.rows());
  for (size_t i = 0; i < train.rows(); ++i) {
    labels[i] = train.At(i, 0) + train.At(i, 1) > 1.0 ? 1 : 0;
  }
  ml::GradientBoostedTrees::Options gbt_options;
  gbt_options.num_rounds = kTrees / 2;  // x2 classes = 100 trees
  ml::GradientBoostedTrees gbt(gbt_options);
  {
    common::Rng rng(config.seed + 2);
    BBV_CHECK(gbt.Fit(train, labels, 2, rng).ok());
  }

  // Quantized kernels compiled from the same fitted ensembles. The forest's
  // deep trees exercise the width-8 stepping path, the depth-3 boosted
  // trees the QuickScorer bitvector path.
  const ml::ForestKernel forest_quant = ml::ForestKernel::Compile(
      forest.trees(), ml::ForestKernel::Options{.quantized = true});
  const ml::ForestKernel gbt_quant = ml::ForestKernel::Compile(
      gbt.trees(), ml::ForestKernel::Options{.quantized = true});
  const auto num_classes = static_cast<size_t>(gbt.num_classes());
  std::printf("bitvector_trees: forest=%zu gbt=%zu\n",
              forest_quant.num_bitvector_trees(),
              gbt_quant.num_bitvector_trees());

  auto gbt_base_scores = [&](size_t rows) {
    std::vector<double> scores(rows * num_classes);
    for (size_t i = 0; i < rows; ++i) {
      for (size_t k = 0; k < num_classes; ++k) {
        scores[i * num_classes + k] = gbt.base_scores()[k];
      }
    }
    return scores;
  };

  std::vector<BenchResult> results;
  bool all_identical = true;
  bool all_within_bound = true;
  double rf_100k_kernel_seconds = 0.0;
  double rf_100k_quant_seconds = 0.0;
  for (const size_t rows : {size_t{10'000}, size_t{100'000}}) {
    // Single-thread pin: the headline ratios measure the kernels, not the
    // machine's core count (the sweep below covers scaling).
    ScopedThreadsEnv env(1);
    const linalg::Matrix serving = MakeFeatures(rows, config.seed + rows);
    const std::string suffix = rows == 10'000 ? "_10k" : "_100k";
    // The rounded serving copy the quantized path must match bit for bit.
    const linalg::Matrix rounded = ml::ForestKernel::QuantizeFeatures(serving);

    PathResult forest_measured;
    std::vector<double> legacy_predictions;
    std::vector<double> kernel_predictions(rows);
    forest_measured.legacy_seconds = TimeBest(
        [&] { return LegacyForestPredict(forest, serving); },
        legacy_predictions);
    forest_measured.kernel_seconds = TimeBest(
        [&] {
          forest.PredictInto(serving, kernel_predictions);
          return kernel_predictions;
        },
        kernel_predictions);
    forest_measured.identical = legacy_predictions == kernel_predictions;
    all_identical = all_identical && forest_measured.identical;
    Report("rf" + suffix, rows, forest_measured, results);

    QuantResult forest_quant_measured;
    std::vector<double> quant_predictions(rows);
    forest_quant_measured.seconds = TimeBest(
        [&] {
          forest_quant.PredictMeanInto(serving, quant_predictions);
          return quant_predictions;
        },
        quant_predictions);
    std::vector<double> rounded_predictions(rows);
    forest.kernel().PredictMeanInto(rounded, rounded_predictions);
    forest_quant_measured.identical_on_rounded =
        quant_predictions == rounded_predictions;
    forest_quant_measured.max_abs_error =
        MaxAbsDiff(quant_predictions, kernel_predictions);
    forest_quant_measured.error_bound =
        forest_quant.QuantizationMeanErrorBound();
    all_identical =
        all_identical && forest_quant_measured.identical_on_rounded;
    all_within_bound = all_within_bound && forest_quant_measured.WithinBound();
    ReportQuant("rf" + suffix, rows, forest_measured.legacy_seconds,
                forest_quant_measured, results);
    if (rows == 100'000) {
      rf_100k_kernel_seconds = forest_measured.kernel_seconds;
      rf_100k_quant_seconds = forest_quant_measured.seconds;
    }

    PathResult gbt_measured;
    std::vector<double> legacy_scores;
    std::vector<double> kernel_scores;
    gbt_measured.legacy_seconds =
        TimeBest([&] { return LegacyGbtScores(gbt, serving); }, legacy_scores);
    gbt_measured.kernel_seconds = TimeBest(
        [&] {
          // Probabilities = softmax(scores); compare pre-softmax scores so
          // the check isolates the kernel itself.
          std::vector<double> scores = gbt_base_scores(rows);
          gbt.kernel().AccumulateInto(serving, gbt.learning_rate(),
                                      num_classes, scores);
          return scores;
        },
        kernel_scores);
    gbt_measured.identical = legacy_scores == kernel_scores;
    all_identical = all_identical && gbt_measured.identical;
    Report("gbt" + suffix, rows, gbt_measured, results);

    QuantResult gbt_quant_measured;
    std::vector<double> quant_scores;
    gbt_quant_measured.seconds = TimeBest(
        [&] {
          std::vector<double> scores = gbt_base_scores(rows);
          gbt_quant.AccumulateInto(serving, gbt.learning_rate(), num_classes,
                                   scores);
          return scores;
        },
        quant_scores);
    std::vector<double> rounded_scores = gbt_base_scores(rows);
    gbt.kernel().AccumulateInto(rounded, gbt.learning_rate(), num_classes,
                                rounded_scores);
    gbt_quant_measured.identical_on_rounded = quant_scores == rounded_scores;
    gbt_quant_measured.max_abs_error = MaxAbsDiff(quant_scores, kernel_scores);
    gbt_quant_measured.error_bound = gbt_quant.QuantizationAccumulateErrorBound(
        gbt.learning_rate(), num_classes);
    all_identical = all_identical && gbt_quant_measured.identical_on_rounded;
    all_within_bound = all_within_bound && gbt_quant_measured.WithinBound();
    ReportQuant("gbt" + suffix, rows, gbt_measured.legacy_seconds,
                gbt_quant_measured, results);
  }

  // Thread sweep over the 1e5-row forest workloads: exact and quantized
  // kernels at 2/4/8 threads, speedup relative to the pinned
  // single-thread runs above. Only meaningful when hardware_concurrency
  // (recorded in the JSON header) covers the thread count.
  {
    const size_t rows = 100'000;
    const linalg::Matrix serving = MakeFeatures(rows, config.seed + rows);
    for (const int threads : kSweepThreads) {
      ScopedThreadsEnv env(threads);
      std::vector<double> predictions(rows);
      for (const bool quantized : {false, true}) {
        const double serial_seconds =
            quantized ? rf_100k_quant_seconds : rf_100k_kernel_seconds;
        const double seconds = TimeBest(
            [&] {
              if (quantized) {
                forest_quant.PredictMeanInto(serving, predictions);
              } else {
                forest.PredictInto(serving, predictions);
              }
              return predictions;
            },
            predictions);
        BenchResult result;
        result.name = quantized ? "rf_100k_quant" : "rf_100k_kernel";
        result.threads = threads;
        result.wall_seconds = seconds;
        result.speedup_vs_serial =
            seconds > 0.0 ? serial_seconds / seconds : 0.0;
        result.extras.emplace_back("rows", static_cast<double>(rows));
        results.push_back(result);
        std::printf("%-18s threads=%d wall=%.4fs speedup_vs_serial=%.2fx\n",
                    result.name.c_str(), threads, seconds,
                    result.speedup_vs_serial);
      }
    }
  }

  if (!config.json_path.empty()) {
    WriteBenchJson(
        config.json_path, "forest_inference", config, results,
        {{"kernel_paths", "legacy,exact,quantized"},
         {"quantized_config", "width8_tiles+bitvector_shallow_trees"}});
    std::printf("wrote %s\n", config.json_path.c_str());
  }
  MaybeWriteTelemetryJson(config);
  if (!config.telemetry_json_path.empty()) {
    std::printf("wrote %s\n", config.telemetry_json_path.c_str());
  }
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: kernel and legacy node-walk predictions diverge (or "
                 "the quantized path diverges from the exact kernel on "
                 "rounded inputs) — an equivalence contract is broken\n");
    return 1;
  }
  if (!all_within_bound) {
    std::fprintf(stderr,
                 "FAIL: quantized fast-path outputs exceed the documented "
                 "quantization error bound\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bbv::bench

int main(int argc, char** argv) {
  return bbv::bench::RunBenchmark(argc, argv);
}
