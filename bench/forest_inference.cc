// Inference benchmark for the flattened tree-ensemble kernel: times batch
// prediction through the legacy scalar node walk and through the compiled
// ForestKernel on the same fitted models (random forest and boosted
// classifier, 100 trees) at 1e4 and 1e5 serving rows, and verifies the two
// paths agree bit for bit. A disagreement is a correctness bug, not a
// measurement artifact, so the binary exits non-zero on any divergence.
//
// With --json[=PATH] the measurements land in BENCH_forest_inference.json;
// the per-result "deterministic" flag feeds bbv_bench_compare's
// never-decrease rule, so CI fails loudly if equivalence ever regresses.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/check.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "linalg/matrix.h"
#include "ml/gradient_boosted_trees.h"
#include "ml/random_forest.h"

namespace bbv::bench {
namespace {

constexpr int kTrees = 100;
constexpr size_t kFeatures = 16;
constexpr int kRepetitions = 5;

linalg::Matrix MakeFeatures(size_t rows, uint64_t seed) {
  common::Rng rng(seed);
  linalg::Matrix features(rows, kFeatures);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < kFeatures; ++j) features.At(i, j) = rng.Uniform();
  }
  return features;
}

/// Legacy reference: the pre-kernel prediction path — a parallel loop over
/// rows, each walking every tree node by node — recomputed from the fitted
/// trees with the same scheduling threshold the old code used.
std::vector<double> LegacyForestPredict(const ml::RandomForestRegressor& forest,
                                        const linalg::Matrix& features) {
  std::vector<double> result(features.rows());
  const common::Status status = common::ParallelFor(
      features.rows(),
      [&](size_t i) {
        const double* row = features.RowData(i);
        double sum = 0.0;
        for (const ml::RegressionTree& tree : forest.trees()) {
          // Scalar baseline the kernel speedup is measured against.
          // bbv-lint: allow(batch-api) this is the comparison timing loop
          sum += tree.PredictRow(row);
        }
        result[i] = sum / static_cast<double>(forest.trees().size());
        return common::Status::OK();
      },
      {.min_items_per_thread = 512});
  BBV_CHECK(status.ok()) << status.ToString();
  return result;
}

/// Legacy boosted-classifier scores (pre-softmax): per-row strided
/// accumulation over the node walk, serial like the old PredictProba loop.
std::vector<double> LegacyGbtScores(const ml::GradientBoostedTrees& model,
                                    const linalg::Matrix& features) {
  const auto m = static_cast<size_t>(model.num_classes());
  std::vector<double> scores(features.rows() * m);
  for (size_t i = 0; i < features.rows(); ++i) {
    const double* row = features.RowData(i);
    double* out = scores.data() + i * m;
    for (size_t k = 0; k < m; ++k) out[k] = model.base_scores()[k];
    for (size_t t = 0; t < model.trees().size(); ++t) {
      // Scalar baseline the kernel speedup is measured against.
      // bbv-lint: allow(batch-api) this is the comparison timing loop
      out[t % m] += model.learning_rate() * model.trees()[t].PredictRow(row);
    }
  }
  return scores;
}

/// Best-of-N wall time of `run`, storing the last computed artifact in
/// `artifact` for the equivalence check.
template <typename Run>
double TimeBest(const Run& run, std::vector<double>& artifact) {
  double best = 0.0;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    WallTimer timer;
    artifact = run();
    const double seconds = timer.Seconds();
    if (rep == 0 || seconds < best) best = seconds;
  }
  return best;
}

struct PathResult {
  double legacy_seconds = 0.0;
  double kernel_seconds = 0.0;
  bool identical = false;
};

void Report(const std::string& name, size_t rows, const PathResult& measured,
            std::vector<BenchResult>& results) {
  for (const bool kernel : {false, true}) {
    BenchResult result;
    result.name = name + (kernel ? "_kernel" : "_legacy");
    result.wall_seconds = kernel ? measured.kernel_seconds
                                 : measured.legacy_seconds;
    result.extras.emplace_back("rows", static_cast<double>(rows));
    result.extras.emplace_back("deterministic", measured.identical ? 1.0 : 0.0);
    if (kernel) {
      result.extras.emplace_back(
          "speedup_vs_legacy",
          measured.kernel_seconds > 0.0
              ? measured.legacy_seconds / measured.kernel_seconds
              : 0.0);
    }
    results.push_back(result);
    std::printf("%-18s rows=%zu wall=%.4fs%s identical=%s\n",
                result.name.c_str(), rows, result.wall_seconds,
                kernel ? "" : " (reference)",
                measured.identical ? "yes" : "NO");
  }
}

int RunBenchmark(int argc, char** argv) {
  RunConfig config = ParseArgs(argc, argv);
  PrintHeader("forest_inference",
              "legacy node walk vs flattened kernel, 100-tree ensembles",
              config);

  // Fitted models shared by every workload.
  const linalg::Matrix train = MakeFeatures(4000, config.seed);
  std::vector<double> targets(train.rows());
  for (size_t i = 0; i < train.rows(); ++i) {
    targets[i] = 2.0 * train.At(i, 0) - train.At(i, 1) + 0.25 * train.At(i, 7);
  }
  ml::RandomForestRegressor::Options forest_options;
  forest_options.num_trees = kTrees;
  ml::RandomForestRegressor forest(forest_options);
  {
    common::Rng rng(config.seed + 1);
    BBV_CHECK(forest.Fit(train, targets, rng).ok());
  }
  std::vector<int> labels(train.rows());
  for (size_t i = 0; i < train.rows(); ++i) {
    labels[i] = train.At(i, 0) + train.At(i, 1) > 1.0 ? 1 : 0;
  }
  ml::GradientBoostedTrees::Options gbt_options;
  gbt_options.num_rounds = kTrees / 2;  // x2 classes = 100 trees
  ml::GradientBoostedTrees gbt(gbt_options);
  {
    common::Rng rng(config.seed + 2);
    BBV_CHECK(gbt.Fit(train, labels, 2, rng).ok());
  }

  std::vector<BenchResult> results;
  bool all_identical = true;
  for (const size_t rows : {size_t{10'000}, size_t{100'000}}) {
    const linalg::Matrix serving = MakeFeatures(rows, config.seed + rows);
    const std::string suffix = rows == 10'000 ? "_10k" : "_100k";

    PathResult forest_measured;
    std::vector<double> legacy_predictions;
    std::vector<double> kernel_predictions(rows);
    forest_measured.legacy_seconds = TimeBest(
        [&] { return LegacyForestPredict(forest, serving); },
        legacy_predictions);
    forest_measured.kernel_seconds = TimeBest(
        [&] {
          forest.PredictInto(serving, kernel_predictions);
          return kernel_predictions;
        },
        kernel_predictions);
    forest_measured.identical = legacy_predictions == kernel_predictions;
    all_identical = all_identical && forest_measured.identical;
    Report("rf" + suffix, rows, forest_measured, results);

    PathResult gbt_measured;
    std::vector<double> legacy_scores;
    std::vector<double> kernel_scores;
    gbt_measured.legacy_seconds =
        TimeBest([&] { return LegacyGbtScores(gbt, serving); }, legacy_scores);
    gbt_measured.kernel_seconds = TimeBest(
        [&] {
          // Probabilities = softmax(scores); compare pre-softmax scores so
          // the check isolates the kernel itself.
          std::vector<double> scores(rows *
                                     static_cast<size_t>(gbt.num_classes()));
          for (size_t i = 0; i < rows; ++i) {
            for (size_t k = 0; k < gbt.base_scores().size(); ++k) {
              scores[i * gbt.base_scores().size() + k] = gbt.base_scores()[k];
            }
          }
          gbt.kernel().AccumulateInto(serving, gbt.learning_rate(),
                                      gbt.base_scores().size(), scores);
          return scores;
        },
        kernel_scores);
    gbt_measured.identical = legacy_scores == kernel_scores;
    all_identical = all_identical && gbt_measured.identical;
    Report("gbt" + suffix, rows, gbt_measured, results);
  }

  if (!config.json_path.empty()) {
    WriteBenchJson(config.json_path, "forest_inference", config, results);
    std::printf("wrote %s\n", config.json_path.c_str());
  }
  MaybeWriteTelemetryJson(config);
  if (!config.telemetry_json_path.empty()) {
    std::printf("wrote %s\n", config.telemetry_json_path.c_str());
  }
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: kernel and legacy node-walk predictions diverge — "
                 "the flattened layout is not equivalence-preserving\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bbv::bench

int main(int argc, char** argv) {
  return bbv::bench::RunBenchmark(argc, argv);
}
