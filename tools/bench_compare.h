#ifndef BBV_TOOLS_BENCH_COMPARE_H_
#define BBV_TOOLS_BENCH_COMPARE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace bbv::tools {

/// One measured configuration from a BENCH_*.json file (see
/// bench::WriteBenchJson): a (name, threads) key, the wall time, and every
/// other numeric field the benchmark emitted (speedups, memory, determinism
/// flags, ...).
struct BenchEntry {
  std::string name;
  int threads = 1;
  double wall_seconds = 0.0;
  std::vector<std::pair<std::string, double>> metrics;

  /// Value of a named metric, or `fallback` when absent.
  double Metric(const std::string& key, double fallback) const;
};

/// Parsed BENCH_*.json: run metadata plus one entry per result object.
struct BenchFile {
  std::string bench;
  std::string mode;
  uint64_t seed = 0;
  std::vector<BenchEntry> entries;
};

/// Parses the machine-written bench JSON format. This is not a general
/// JSON parser: it understands exactly the flat shape WriteBenchJson
/// produces (string or numeric scalar fields, one "results" array of flat
/// objects). Returns false and fills `error` on malformed input.
bool ParseBenchJson(const std::string& contents, BenchFile* out,
                    std::string* error);

/// Reads and parses one file from disk; false + `error` on I/O failure.
bool LoadBenchFile(const std::string& path, BenchFile* out,
                   std::string* error);

struct CompareOptions {
  /// Allowed relative wall-time growth before a result counts as a
  /// regression: candidate > baseline * (1 + tolerance). Wall times are
  /// noisy on shared CI runners, so the default is deliberately loose.
  double tolerance = 0.25;
};

/// One difference that matters between a baseline and a candidate run.
struct CompareFinding {
  enum class Kind {
    kRegression,        ///< wall time grew past tolerance, or a
                        ///< correctness flag (deterministic/within_bound)
                        ///< dropped.
    kMissingEntry,      ///< present in the baseline, absent from candidate.
    kNewEntry,          ///< present in the candidate only (informational).
    kMetadataMismatch,  ///< different bench name or run mode — wall times
                        ///< are not comparable.
  };
  Kind kind = Kind::kRegression;
  /// "(name, threads=N)" for entry findings; field name for metadata.
  std::string key;
  double baseline_value = 0.0;
  double candidate_value = 0.0;
  std::string message;
};

/// Diffs two parsed bench files. Entries are keyed by (name, threads).
/// Wall times are compared with the relative tolerance; the boolean
/// correctness metrics "deterministic" and "within_bound" must never
/// decrease, tolerance or not.
std::vector<CompareFinding> CompareBenchFiles(const BenchFile& baseline,
                                              const BenchFile& candidate,
                                              const CompareOptions& options);

/// True when any finding should fail a gate (anything except kNewEntry).
bool HasBlockingFindings(const std::vector<CompareFinding>& findings);

/// "kind (key): message" — the canonical one-line rendering.
std::string FormatCompareFinding(const CompareFinding& finding);

}  // namespace bbv::tools

#endif  // BBV_TOOLS_BENCH_COMPARE_H_
