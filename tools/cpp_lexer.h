#ifndef BBV_TOOLS_CPP_LEXER_H_
#define BBV_TOOLS_CPP_LEXER_H_

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace bbv::tools {

/// A minimal C++ tokenizer purpose-built for the bbv_lint analyzer. It is
/// not a conforming preprocessor — it does not expand macros or evaluate
/// conditionals — but it is exact about the things lint rules trip over:
/// comments, string/char literals (including raw strings), line splices,
/// multi-character operators and preprocessor directives all become single
/// tokens with file-position provenance, so rules match real code tokens
/// instead of regexes over text that might be prose or test data.
enum class TokenKind {
  kIdentifier,   ///< Identifiers and keywords (no keyword table is kept).
  kNumber,       ///< pp-number: integer and floating literals of any base.
  kString,       ///< "..." and R"delim(...)delim", text includes quotes.
  kChar,         ///< '...' character literal, text includes quotes.
  kPunct,        ///< Operators and punctuation; multi-char ops are one token.
  kDirective,    ///< '#name' of a preprocessor directive, e.g. "#include".
  kHeaderName,   ///< <...> or "..." operand of an #include directive.
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;       ///< Exact source spelling (splices removed).
  size_t line = 0;        ///< 1-based physical line the token starts on.
  int brace_depth = 0;    ///< {}-nesting at the token; a '}' matches its '{'.
  int paren_depth = 0;    ///< ()-nesting at the token; a ')' matches its '('.
  bool in_directive = false;  ///< Token belongs to a preprocessor directive.
};

/// Result of lexing one translation unit.
struct LexedFile {
  std::vector<Token> tokens;
  /// Lint-suppression markers harvested from comments: 1-based line number
  /// -> rule ids named in "bbv-lint: allow(<rule>)" markers on that line.
  std::map<size_t, std::set<std::string>> suppressions;
  size_t num_lines = 0;
};

/// Lexes `contents` (one file's bytes). Never fails: malformed input
/// (unterminated literals/comments) is tokenized best-effort to the end of
/// the file, which is the right behavior for a linter that must not crash
/// on code the compiler will reject anyway.
LexedFile Lex(const std::string& contents);

/// True when `lexed` carries a "bbv-lint: allow(<rule>)" marker on `line`
/// or the line directly above it (1-based), mirroring the documented
/// suppression contract of tools/lint_rules.h.
bool IsSuppressed(const LexedFile& lexed, size_t line,
                  const std::string& rule);

}  // namespace bbv::tools

#endif  // BBV_TOOLS_CPP_LEXER_H_
