// bbv_cli — drive the black-box validation workflow from the command line,
// with CSV files as the interchange format. Intended for teams that want to
// monitor a model without writing C++: generate (or bring) data, train a
// model, train a performance predictor against the expected error types,
// then score incoming serving batches.
//
//   bbv_cli gen-data  --dataset income --rows 8000 --train train.csv
//                     --test test.csv --serving serving.csv
//   bbv_cli train     --dataset income --train train.csv --model xgb
//                     --out model.bbv
//   bbv_cli train-predictor --dataset income --model-file model.bbv
//                     --test test.csv --errors missing,outliers,scaling
//                     --out predictor.bbv
//   bbv_cli estimate  --dataset income --model-file model.bbv
//                     --predictor-file predictor.bbv --batch serving.csv
//                     [--threshold 0.05]
//
// CSV files carry the dataset's feature columns plus a trailing numeric
// "label" column (estimate ignores it if present). The --dataset name picks
// the column schema from the bundled registry.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/string_util.h"
#include "core/performance_predictor.h"
#include "data/csv.h"
#include "data/dataset.h"
#include "datasets/registry.h"
#include "errors/missing_values.h"
#include "errors/mixture.h"
#include "errors/numeric_errors.h"
#include "errors/swapped_columns.h"
#include "errors/text_errors.h"
#include "ml/black_box.h"
#include "ml/conv_net.h"
#include "ml/feed_forward_network.h"
#include "ml/gradient_boosted_trees.h"
#include "ml/sgd_logistic_regression.h"

namespace bbv::cli {
namespace {

using Flags = std::map<std::string, std::string>;

[[noreturn]] void Die(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  std::exit(1);
}

void Usage() {
  std::printf(
      "usage: bbv_cli <command> [--flag value ...]\n"
      "\n"
      "commands:\n"
      "  gen-data         generate a synthetic dataset as CSV\n"
      "                   --dataset NAME --rows N --train F --test F "
      "--serving F [--seed N]\n"
      "  train            train a black box model from a labeled CSV\n"
      "                   --dataset NAME --train F --model lr|dnn|xgb "
      "--out F [--seed N]\n"
      "  train-predictor  train a performance predictor for a saved model\n"
      "                   --dataset NAME --model-file F --test F\n"
      "                   --errors LIST --out F [--corruptions N] [--seed N]\n"
      "                   (LIST from: missing,outliers,scaling,swap,typos,"
      "leetspeak)\n"
      "  estimate         estimate the model's accuracy on a serving batch\n"
      "                   --dataset NAME --model-file F --predictor-file F\n"
      "                   --batch F [--threshold T]\n"
      "  corrupt          inject an error into a CSV (fire-drill tooling)\n"
      "                   --dataset NAME --in F --out F --error TYPE "
      "[--seed N]\n");
}

Flags ParseFlags(int argc, char** argv, int first) {
  Flags flags;
  for (int i = first; i < argc; ++i) {
    std::string key = argv[i];
    if (!common::StartsWith(key, "--")) Die("expected --flag, got " + key);
    if (i + 1 >= argc) Die("missing value for " + key);
    flags[key.substr(2)] = argv[++i];
  }
  return flags;
}

std::string Require(const Flags& flags, const std::string& name) {
  const auto it = flags.find(name);
  if (it == flags.end()) Die("missing required flag --" + name);
  return it->second;
}

std::string Optional(const Flags& flags, const std::string& name,
                     const std::string& fallback) {
  const auto it = flags.find(name);
  return it == flags.end() ? fallback : it->second;
}

/// Feature schema of a registry dataset (probed from a tiny sample).
std::vector<std::pair<std::string, data::ColumnType>> SchemaFor(
    const std::string& dataset_name) {
  common::Rng rng(1);
  datasets::DatasetOptions options;
  options.num_rows = 2;
  auto sample = datasets::MakeByName(dataset_name, options, rng);
  if (!sample.ok()) Die(sample.status().ToString());
  std::vector<std::pair<std::string, data::ColumnType>> schema;
  for (size_t col = 0; col < sample->features.NumCols(); ++col) {
    const auto& column = sample->features.column(col);
    if (column.type() == data::ColumnType::kImage) {
      Die("dataset '" + dataset_name +
          "' has image columns; the CSV workflow supports tabular and text "
          "datasets");
    }
    schema.emplace_back(column.name(), column.type());
  }
  schema.emplace_back("label", data::ColumnType::kNumeric);
  return schema;
}

/// Writes features + label column as CSV.
void WriteLabeled(const data::Dataset& dataset, const std::string& path) {
  data::DataFrame with_label = dataset.features;
  std::vector<double> labels(dataset.labels.begin(), dataset.labels.end());
  if (auto status =
          with_label.AddColumn(data::Column::Numeric("label", labels));
      !status.ok()) {
    Die(status.ToString());
  }
  if (auto status = data::WriteCsvFile(with_label, path); !status.ok()) {
    Die(status.ToString());
  }
}

/// Reads a CSV with the dataset's schema; the label column is optional.
data::Dataset ReadLabeled(const std::string& dataset_name,
                          const std::string& path, bool require_labels) {
  auto schema = SchemaFor(dataset_name);
  auto frame = data::ReadCsvFile(path, schema);
  if (!frame.ok()) {
    // Retry without the label column (unlabeled serving batches).
    schema.pop_back();
    frame = data::ReadCsvFile(path, schema);
    if (!frame.ok()) Die(frame.status().ToString());
    if (require_labels) Die("'" + path + "' has no label column");
  }
  data::Dataset dataset;
  dataset.num_classes = 2;
  if (frame->HasColumn("label")) {
    const data::Column& label_column = frame->ColumnByName("label");
    for (size_t row = 0; row < label_column.size(); ++row) {
      if (!label_column.cell(row).is_numeric()) {
        Die("row " + std::to_string(row) + " has a missing label");
      }
      dataset.labels.push_back(
          static_cast<int>(label_column.cell(row).AsDouble()));
    }
    std::vector<std::string> feature_names;
    for (size_t col = 0; col < frame->NumCols(); ++col) {
      if (frame->column(col).name() != "label") {
        feature_names.push_back(frame->column(col).name());
      }
    }
    auto features = frame->SelectColumns(feature_names);
    if (!features.ok()) Die(features.status().ToString());
    dataset.features = std::move(*features);
  } else {
    dataset.features = std::move(*frame);
    dataset.labels.assign(dataset.features.NumRows(), 0);
  }
  return dataset;
}

std::unique_ptr<ml::Classifier> MakeClassifier(const std::string& name) {
  if (name == "lr") return std::make_unique<ml::SgdLogisticRegression>();
  if (name == "dnn") return std::make_unique<ml::FeedForwardNetwork>();
  if (name == "xgb") return std::make_unique<ml::GradientBoostedTrees>();
  Die("unknown model '" + name + "' (expected lr, dnn or xgb)");
}

std::vector<std::shared_ptr<errors::ErrorGen>> MakeErrors(
    const std::string& list) {
  std::vector<std::shared_ptr<errors::ErrorGen>> generators;
  for (const std::string& name : common::Split(list, ',')) {
    if (name == "missing") {
      generators.push_back(std::make_shared<errors::MissingValues>());
    } else if (name == "outliers") {
      generators.push_back(std::make_shared<errors::NumericOutliers>());
    } else if (name == "scaling") {
      generators.push_back(std::make_shared<errors::Scaling>());
    } else if (name == "swap") {
      generators.push_back(std::make_shared<errors::SwappedColumns>());
    } else if (name == "typos") {
      generators.push_back(std::make_shared<errors::CategoricalTypos>());
    } else if (name == "leetspeak") {
      generators.push_back(std::make_shared<errors::AdversarialLeetspeak>());
    } else {
      Die("unknown error type '" + name + "'");
    }
  }
  if (generators.empty()) Die("--errors list is empty");
  return generators;
}

int GenData(const Flags& flags) {
  common::Rng rng(std::strtoull(Optional(flags, "seed", "42").c_str(),
                                nullptr, 10));
  datasets::DatasetOptions options;
  options.num_rows = std::strtoull(Optional(flags, "rows", "8000").c_str(),
                                   nullptr, 10);
  auto dataset = datasets::MakeByName(Require(flags, "dataset"), options, rng);
  if (!dataset.ok()) Die(dataset.status().ToString());
  data::Dataset balanced = data::BalanceClasses(*dataset, rng);
  auto [source, serving] = data::TrainTestSplit(balanced, 0.7, rng);
  auto [train, test] = data::TrainTestSplit(source, 0.7, rng);
  WriteLabeled(train, Require(flags, "train"));
  WriteLabeled(test, Require(flags, "test"));
  WriteLabeled(serving, Require(flags, "serving"));
  std::printf("wrote %zu train / %zu test / %zu serving rows\n",
              train.NumRows(), test.NumRows(), serving.NumRows());
  return 0;
}

int Train(const Flags& flags) {
  common::Rng rng(std::strtoull(Optional(flags, "seed", "42").c_str(),
                                nullptr, 10));
  const data::Dataset train = ReadLabeled(Require(flags, "dataset"),
                                          Require(flags, "train"),
                                          /*require_labels=*/true);
  ml::BlackBoxModel model(MakeClassifier(Optional(flags, "model", "xgb")));
  if (auto status = model.Train(train, rng); !status.ok()) {
    Die(status.ToString());
  }
  const std::string out = Require(flags, "out");
  std::ofstream stream(out, std::ios::binary);
  if (!stream) Die("cannot open '" + out + "'");
  if (auto status = model.Save(stream); !status.ok()) Die(status.ToString());
  std::printf("trained %s on %zu rows (train accuracy %.3f); saved to %s\n",
              model.Name().c_str(), train.NumRows(),
              model.ScoreAccuracy(train).ValueOrDie(), out.c_str());
  return 0;
}

std::unique_ptr<ml::BlackBoxModel> LoadModel(const std::string& path) {
  std::ifstream stream(path, std::ios::binary);
  if (!stream) Die("cannot open '" + path + "'");
  auto model = ml::BlackBoxModel::Load(stream);
  if (!model.ok()) Die(model.status().ToString());
  return std::move(*model);
}

int TrainPredictor(const Flags& flags) {
  common::Rng rng(std::strtoull(Optional(flags, "seed", "42").c_str(),
                                nullptr, 10));
  const auto model = LoadModel(Require(flags, "model-file"));
  const data::Dataset test = ReadLabeled(Require(flags, "dataset"),
                                         Require(flags, "test"),
                                         /*require_labels=*/true);
  const auto generators = MakeErrors(Require(flags, "errors"));
  std::vector<const errors::ErrorGen*> raw;
  for (const auto& generator : generators) raw.push_back(generator.get());

  core::PerformancePredictor::Options options;
  options.corruptions_per_generator = static_cast<int>(std::strtol(
      Optional(flags, "corruptions", "100").c_str(), nullptr, 10));
  core::PerformancePredictor predictor(options);
  if (auto status = predictor.Train(*model, test, raw, rng); !status.ok()) {
    Die(status.ToString());
  }
  const std::string out = Require(flags, "out");
  std::ofstream stream(out, std::ios::binary);
  if (!stream) Die("cannot open '" + out + "'");
  if (auto status = predictor.Save(stream); !status.ok()) {
    Die(status.ToString());
  }
  std::printf(
      "trained predictor on %zu corrupted copies (clean test accuracy "
      "%.3f); saved to %s\n",
      predictor.num_training_examples(), predictor.test_score(), out.c_str());
  return 0;
}

int Estimate(const Flags& flags) {
  const auto model = LoadModel(Require(flags, "model-file"));
  const std::string predictor_path = Require(flags, "predictor-file");
  std::ifstream stream(predictor_path, std::ios::binary);
  if (!stream) Die("cannot open '" + predictor_path + "'");
  auto predictor = core::PerformancePredictor::Load(stream);
  if (!predictor.ok()) Die(predictor.status().ToString());

  const data::Dataset batch = ReadLabeled(Require(flags, "dataset"),
                                          Require(flags, "batch"),
                                          /*require_labels=*/false);
  auto estimate = predictor->EstimateScore(*model, batch.features);
  if (!estimate.ok()) Die(estimate.status().ToString());
  const double threshold = std::strtod(
      Optional(flags, "threshold", "0.05").c_str(), nullptr);
  const double floor = (1.0 - threshold) * predictor->test_score();
  std::printf(
      "rows=%zu estimated_accuracy=%.4f interval=[%.4f, %.4f] "
      "coverage=%.2f reference=%.4f verdict=%s\n",
      batch.NumRows(), estimate->point, estimate->lo, estimate->hi,
      estimate->coverage_level, predictor->test_score(),
      estimate->point >= floor ? "ACCEPT" : "ALARM");
  return estimate->point >= floor ? 0 : 2;  // exit code 2 signals an alarm
}

int Corrupt(const Flags& flags) {
  common::Rng rng(std::strtoull(Optional(flags, "seed", "42").c_str(),
                                nullptr, 10));
  const data::Dataset input = ReadLabeled(Require(flags, "dataset"),
                                          Require(flags, "in"),
                                          /*require_labels=*/false);
  const auto generators = MakeErrors(Require(flags, "error"));
  data::DataFrame corrupted = input.features;
  for (const auto& generator : generators) {
    auto result = generator->Corrupt(corrupted, rng);
    if (!result.ok()) Die(result.status().ToString());
    corrupted = std::move(*result);
  }
  // Preserve the label column if the input had one.
  data::Dataset output = input;
  output.features = std::move(corrupted);
  WriteLabeled(output, Require(flags, "out"));
  std::printf("corrupted %zu rows with [%s]; wrote %s\n",
              output.NumRows(), Require(flags, "error").c_str(),
              Require(flags, "out").c_str());
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 1;
  }
  const std::string command = argv[1];
  if (command == "help" || command == "--help" || command == "-h") {
    Usage();
    return 0;
  }
  const Flags flags = ParseFlags(argc, argv, 2);
  if (command == "gen-data") return GenData(flags);
  if (command == "train") return Train(flags);
  if (command == "train-predictor") return TrainPredictor(flags);
  if (command == "estimate") return Estimate(flags);
  if (command == "corrupt") return Corrupt(flags);
  Usage();
  Die("unknown command '" + command + "'");
}

}  // namespace
}  // namespace bbv::cli

int main(int argc, char** argv) { return bbv::cli::Main(argc, argv); }
