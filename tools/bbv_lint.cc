// Repo-specific lint gate. Walks src/, tools/ and bench/ under the given
// repo root (default: current directory) and enforces the invariants
// documented in tools/lint_rules.h. Exits non-zero when any finding remains
// unsuppressed, so it runs as a ctest test and as a CI job.
//
// Usage: bbv_lint [repo_root]

#include <iostream>
#include <string>
#include <vector>

#include "tools/lint_rules.h"

int main(int argc, char** argv) {
  const std::string root = argc > 1 ? argv[1] : ".";
  size_t num_files_scanned = 0;
  const std::vector<bbv::tools::LintFinding> findings =
      bbv::tools::LintTree(root, &num_files_scanned);
  if (num_files_scanned == 0) {
    std::cerr << "bbv_lint: no .h/.cc files found under " << root
              << "/{src,tools,bench} — wrong repo root?\n";
    return 2;
  }
  for (const bbv::tools::LintFinding& finding : findings) {
    std::cerr << bbv::tools::FormatFinding(finding) << "\n";
  }
  if (!findings.empty()) {
    std::cerr << findings.size() << " lint finding(s) in " << root << "\n"
              << "Suppress a deliberate violation with a trailing or "
                 "preceding comment: // bbv-lint: allow(<rule>) <reason>\n";
    return 1;
  }
  std::cout << "bbv_lint: clean (" << num_files_scanned << " file"
            << (num_files_scanned == 1 ? "" : "s") << ")\n";
  return 0;
}
