// Repo-specific lint gate. Walks src/, tools/, bench/ and tests/ under the
// given repo root (default: current directory) and enforces the invariants
// documented in tools/lint_rules.h on a real token stream. Exits non-zero
// when any finding remains unsuppressed, so it runs as a ctest test and as a
// CI job.
//
// Usage: bbv_lint [--dot[=PATH]] [--json=PATH] [repo_root]
//
//   --dot[=PATH]   Write the observed module-dependency graph as Graphviz
//                  (stdout when PATH is omitted). DAG-violating edges are
//                  drawn red.
//   --json=PATH    Write findings and per-rule counts as JSON following the
//                  bench/bench_util.h BENCH_*.json conventions, so CI can
//                  diff finding counts across revisions.

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "tools/lint_rules.h"

namespace {

bool WriteFileOrStdout(const std::string& path, const std::string& payload,
                       const char* what) {
  if (path.empty()) {
    std::cout << payload;
    return true;
  }
  std::ofstream out(path, std::ios::binary);
  out << payload;
  if (!out) {
    std::cerr << "bbv_lint: could not write " << what << " to " << path
              << "\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  bool emit_dot = false;
  std::string dot_path;   // empty = stdout
  std::string json_path;  // empty = no JSON export
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--dot") {
      emit_dot = true;
    } else if (arg.rfind("--dot=", 0) == 0) {
      emit_dot = true;
      dot_path = arg.substr(6);
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "Usage: bbv_lint [--dot[=PATH]] [--json=PATH] "
                   "[repo_root]\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "bbv_lint: unknown flag " << arg << "\n";
      return 2;
    } else {
      root = arg;
    }
  }

  const bbv::tools::TreeAnalysis analysis = bbv::tools::AnalyzeTree(root);
  if (analysis.num_files_scanned == 0) {
    std::cerr << "bbv_lint: no .h/.cc files found under " << root
              << "/{src,tools,bench,tests} — wrong repo root?\n";
    return 2;
  }

  if (emit_dot &&
      !WriteFileOrStdout(dot_path, bbv::tools::ModuleGraphDot(analysis.edges),
                         "module graph")) {
    return 2;
  }
  if (!json_path.empty() &&
      !WriteFileOrStdout(json_path, bbv::tools::FindingsJson(analysis),
                         "findings JSON")) {
    return 2;
  }

  for (const bbv::tools::LintFinding& finding : analysis.findings) {
    std::cerr << bbv::tools::FormatFinding(finding) << "\n";
  }
  if (!analysis.findings.empty()) {
    std::cerr << analysis.findings.size() << " lint finding(s) in " << root
              << "\n"
              << "Suppress a deliberate violation with a trailing or "
                 "preceding comment: // bbv-lint: allow(<rule>) <reason>\n";
    return 1;
  }
  if (!emit_dot || !dot_path.empty()) {
    std::cout << "bbv_lint: clean (" << analysis.num_files_scanned << " file"
              << (analysis.num_files_scanned == 1 ? "" : "s") << ")\n";
  }
  return 0;
}
