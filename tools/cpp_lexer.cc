#include "tools/cpp_lexer.h"

#include <cctype>

namespace bbv::tools {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

/// Multi-character operators, longest first so maximal munch holds.
const char* const kMultiCharOps[] = {
    "<<=", ">>=", "<=>", "->*", "...", "::", "->", "<<", ">>", "<=", ">=",
    "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "++", "--", "##",
};

/// Harvests every "bbv-lint: allow(<rule>)" marker in `comment` (which may
/// span lines); `line_at` maps a byte offset inside the comment to its
/// 1-based physical line.
template <typename LineAt>
void HarvestSuppressions(const std::string& comment, const LineAt& line_at,
                         std::map<size_t, std::set<std::string>>* out) {
  const std::string marker = "bbv-lint: allow(";
  size_t pos = 0;
  while ((pos = comment.find(marker, pos)) != std::string::npos) {
    const size_t rule_begin = pos + marker.size();
    const size_t rule_end = comment.find(')', rule_begin);
    if (rule_end == std::string::npos) break;
    (*out)[line_at(pos)].insert(
        comment.substr(rule_begin, rule_end - rule_begin));
    pos = rule_end;
  }
}

}  // namespace

LexedFile Lex(const std::string& contents) {
  // Phase 1: remove line splices (backslash-newline), remembering the
  // physical line of every surviving byte. Everything downstream indexes
  // `code` and reads provenance from `line_of`.
  std::string code;
  std::vector<size_t> line_of;
  code.reserve(contents.size());
  line_of.reserve(contents.size());
  size_t line = 1;
  for (size_t i = 0; i < contents.size();) {
    if (contents[i] == '\\' && i + 1 < contents.size() &&
        (contents[i + 1] == '\n' ||
         (contents[i + 1] == '\r' && i + 2 < contents.size() &&
          contents[i + 2] == '\n'))) {
      ++line;
      i += contents[i + 1] == '\r' ? 3 : 2;
      continue;
    }
    code.push_back(contents[i]);
    line_of.push_back(line);
    if (contents[i] == '\n') ++line;
    ++i;
  }

  LexedFile out;
  out.num_lines = line;
  const size_t n = code.size();
  size_t i = 0;
  int brace_depth = 0;
  int paren_depth = 0;
  bool in_directive = false;
  bool expect_header = false;  // directly after #include

  const auto emit = [&](TokenKind kind, size_t begin, size_t end) {
    Token token;
    token.kind = kind;
    token.text = code.substr(begin, end - begin);
    token.line = line_of[begin];
    token.brace_depth = brace_depth;
    token.paren_depth = paren_depth;
    token.in_directive = in_directive;
    out.tokens.push_back(std::move(token));
  };

  // Scans a quoted/char literal starting at the opening quote; returns the
  // index one past the closing quote (or n for unterminated input).
  const auto scan_quoted = [&](size_t begin, char quote) {
    size_t j = begin + 1;
    while (j < n) {
      if (code[j] == '\\') {
        j += 2;
        continue;
      }
      if (code[j] == quote) return j + 1;
      if (code[j] == '\n') return j;  // unterminated: stop at line end
      ++j;
    }
    return n;
  };

  while (i < n) {
    const char c = code[i];

    if (c == '\n') {
      in_directive = false;
      expect_header = false;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }

    // Comments: dropped from the token stream, mined for suppressions.
    if (c == '/' && i + 1 < n && code[i + 1] == '/') {
      size_t j = i + 2;
      while (j < n && code[j] != '\n') ++j;
      const std::string text = code.substr(i, j - i);
      HarvestSuppressions(
          text, [&](size_t off) { return line_of[i + off]; },
          &out.suppressions);
      i = j;
      continue;
    }
    if (c == '/' && i + 1 < n && code[i + 1] == '*') {
      size_t j = i + 2;
      while (j + 1 < n && !(code[j] == '*' && code[j + 1] == '/')) ++j;
      const size_t end = j + 1 < n ? j + 2 : n;
      const std::string text = code.substr(i, end - i);
      HarvestSuppressions(
          text, [&](size_t off) { return line_of[i + off]; },
          &out.suppressions);
      i = end;
      continue;
    }

    // Preprocessor directive: '#' begins one; it runs to the (unspliced)
    // end of line. The directive name becomes a single "#name" token.
    if (c == '#' && !in_directive) {
      in_directive = true;
      size_t j = i + 1;
      while (j < n && (code[j] == ' ' || code[j] == '\t')) ++j;
      size_t name_end = j;
      while (name_end < n && IsIdentChar(code[name_end])) ++name_end;
      std::string name = "#";
      name.append(code, j, name_end - j);
      Token token;
      token.kind = TokenKind::kDirective;
      token.text = name;
      token.line = line_of[i];
      token.brace_depth = brace_depth;
      token.paren_depth = paren_depth;
      token.in_directive = true;
      out.tokens.push_back(std::move(token));
      if (name == "#include") expect_header = true;
      i = name_end;
      continue;
    }

    // #include operand: <...> or "..." as one header-name token.
    if (expect_header && (c == '<' || c == '"')) {
      const char close = c == '<' ? '>' : '"';
      size_t j = i + 1;
      while (j < n && code[j] != close && code[j] != '\n') ++j;
      const size_t end = j < n && code[j] == close ? j + 1 : j;
      emit(TokenKind::kHeaderName, i, end);
      expect_header = false;
      i = end;
      continue;
    }

    // Identifiers, including string-literal prefixes and raw strings.
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(code[j])) ++j;
      const std::string ident = code.substr(i, j - i);
      if (j < n && (code[j] == '"' || code[j] == '\'')) {
        const bool raw = !ident.empty() && ident.back() == 'R';
        const std::string prefix = raw ? ident.substr(0, ident.size() - 1)
                                       : ident;
        const bool known_prefix = prefix.empty() || prefix == "u8" ||
                                  prefix == "u" || prefix == "U" ||
                                  prefix == "L";
        if (known_prefix && raw && code[j] == '"') {
          // R"delim( ... )delim" — no escapes, may span lines.
          size_t delim_end = j + 1;
          while (delim_end < n && code[delim_end] != '(') ++delim_end;
          std::string closer = ")";
          closer.append(code, j + 1, delim_end - j - 1);
          closer.push_back('"');
          const size_t body = delim_end < n ? delim_end + 1 : n;
          const size_t close = code.find(closer, body);
          const size_t end =
              close == std::string::npos ? n : close + closer.size();
          emit(TokenKind::kString, i, end);
          i = end;
          continue;
        }
        if (known_prefix && !raw) {
          const size_t end = scan_quoted(j, code[j]);
          emit(code[j] == '"' ? TokenKind::kString : TokenKind::kChar, i,
               end);
          i = end;
          continue;
        }
      }
      emit(TokenKind::kIdentifier, i, j);
      i = j;
      continue;
    }

    // Plain string and character literals.
    if (c == '"' || c == '\'') {
      const size_t end = scan_quoted(i, c);
      emit(c == '"' ? TokenKind::kString : TokenKind::kChar, i, end);
      i = end;
      continue;
    }

    // pp-number: covers ints, floats, hex, exponents and digit separators.
    if (IsDigit(c) || (c == '.' && i + 1 < n && IsDigit(code[i + 1]))) {
      size_t j = i + 1;
      while (j < n) {
        const char d = code[j];
        if (IsIdentChar(d) || d == '.' || d == '\'') {
          ++j;
          continue;
        }
        if ((d == '+' || d == '-') &&
            (code[j - 1] == 'e' || code[j - 1] == 'E' ||
             code[j - 1] == 'p' || code[j - 1] == 'P')) {
          ++j;
          continue;
        }
        break;
      }
      emit(TokenKind::kNumber, i, j);
      i = j;
      continue;
    }

    // Punctuation: longest-match multi-character operators, then depth
    // bookkeeping for single braces/parens (a closer carries the depth of
    // its matching opener).
    bool matched_multi = false;
    for (const char* op : kMultiCharOps) {
      const size_t len = std::char_traits<char>::length(op);
      if (code.compare(i, len, op) == 0) {
        emit(TokenKind::kPunct, i, i + len);
        i += len;
        matched_multi = true;
        break;
      }
    }
    if (matched_multi) continue;
    if (c == '{' || c == '(') {
      emit(TokenKind::kPunct, i, i + 1);
      if (c == '{') ++brace_depth;
      if (c == '(') ++paren_depth;
    } else if (c == '}' || c == ')') {
      if (c == '}' && brace_depth > 0) --brace_depth;
      if (c == ')' && paren_depth > 0) --paren_depth;
      emit(TokenKind::kPunct, i, i + 1);
    } else {
      emit(TokenKind::kPunct, i, i + 1);
    }
    ++i;
  }
  return out;
}

bool IsSuppressed(const LexedFile& lexed, size_t line,
                  const std::string& rule) {
  for (size_t candidate : {line, line - 1}) {
    if (candidate == 0) continue;
    const auto it = lexed.suppressions.find(candidate);
    if (it != lexed.suppressions.end() && it->second.count(rule) > 0) {
      return true;
    }
  }
  return false;
}

}  // namespace bbv::tools
