#include "tools/bench_compare.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

namespace bbv::tools {

namespace {

/// Skips spaces, tabs and newlines starting at `pos`.
size_t SkipWhitespace(const std::string& text, size_t pos) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
    ++pos;
  }
  return pos;
}

/// Parses one `"key": value` pair at `pos` (which must point at the opening
/// quote of the key). Values are either quoted strings or bare numbers —
/// the only scalar shapes WriteBenchJson emits. Advances `pos` past the
/// value. Returns false on any other shape.
bool ParseField(const std::string& text, size_t* pos, std::string* key,
                std::string* string_value, double* number_value,
                bool* is_string) {
  size_t p = SkipWhitespace(text, *pos);
  if (p >= text.size() || text[p] != '"') return false;
  const size_t key_end = text.find('"', p + 1);
  if (key_end == std::string::npos) return false;
  *key = text.substr(p + 1, key_end - p - 1);
  p = SkipWhitespace(text, key_end + 1);
  if (p >= text.size() || text[p] != ':') return false;
  p = SkipWhitespace(text, p + 1);
  if (p >= text.size()) return false;
  if (text[p] == '"') {
    const size_t value_end = text.find('"', p + 1);
    if (value_end == std::string::npos) return false;
    *string_value = text.substr(p + 1, value_end - p - 1);
    *is_string = true;
    *pos = value_end + 1;
    return true;
  }
  char* end = nullptr;
  *number_value = std::strtod(text.c_str() + p, &end);
  if (end == text.c_str() + p) return false;
  *is_string = false;
  *pos = static_cast<size_t>(end - text.c_str());
  return true;
}

/// Parses the flat object starting at the '{' at `pos` into key/value
/// callbacks; advances `pos` past the closing '}'.
bool ParseFlatObject(const std::string& text, size_t* pos, BenchEntry* entry,
                     std::string* error) {
  size_t p = SkipWhitespace(text, *pos);
  if (p >= text.size() || text[p] != '{') {
    *error = "expected '{' in results array";
    return false;
  }
  ++p;
  while (true) {
    p = SkipWhitespace(text, p);
    if (p < text.size() && text[p] == '}') {
      *pos = p + 1;
      return true;
    }
    std::string key;
    std::string string_value;
    double number_value = 0.0;
    bool is_string = false;
    if (!ParseField(text, &p, &key, &string_value, &number_value,
                    &is_string)) {
      *error = "malformed field in results object";
      return false;
    }
    if (key == "name" && is_string) {
      entry->name = string_value;
    } else if (key == "threads" && !is_string) {
      entry->threads = static_cast<int>(number_value);
    } else if (key == "wall_seconds" && !is_string) {
      entry->wall_seconds = number_value;
    } else if (!is_string) {
      entry->metrics.emplace_back(key, number_value);
    }
    p = SkipWhitespace(text, p);
    if (p < text.size() && text[p] == ',') ++p;
  }
}

std::string EntryKey(const BenchEntry& entry) {
  std::ostringstream key;
  key << entry.name << " threads=" << entry.threads;
  return key.str();
}

}  // namespace

double BenchEntry::Metric(const std::string& key, double fallback) const {
  for (const auto& [metric_name, value] : metrics) {
    if (metric_name == key) return value;
  }
  return fallback;
}

bool ParseBenchJson(const std::string& contents, BenchFile* out,
                    std::string* error) {
  *out = BenchFile();
  // Run metadata: scalar fields before the results array.
  const size_t results_pos = contents.find("\"results\"");
  if (results_pos == std::string::npos) {
    *error = "no \"results\" array";
    return false;
  }
  size_t p = SkipWhitespace(contents, 0);
  if (p >= contents.size() || contents[p] != '{') {
    *error = "input is not a JSON object";
    return false;
  }
  ++p;
  while (p < contents.size() && p < results_pos) {
    p = SkipWhitespace(contents, p);
    if (p >= results_pos) break;
    std::string key;
    std::string string_value;
    double number_value = 0.0;
    bool is_string = false;
    if (!ParseField(contents, &p, &key, &string_value, &number_value,
                    &is_string)) {
      *error = "malformed metadata field";
      return false;
    }
    if (key == "bench" && is_string) out->bench = string_value;
    if (key == "mode" && is_string) out->mode = string_value;
    if (key == "seed" && !is_string) {
      out->seed = static_cast<uint64_t>(number_value);
    }
    p = SkipWhitespace(contents, p);
    if (p < contents.size() && contents[p] == ',') ++p;
  }
  p = contents.find('[', results_pos);
  if (p == std::string::npos) {
    *error = "no '[' after \"results\"";
    return false;
  }
  ++p;
  while (true) {
    p = SkipWhitespace(contents, p);
    if (p >= contents.size()) {
      *error = "unterminated results array";
      return false;
    }
    if (contents[p] == ']') break;
    if (contents[p] == ',') {
      ++p;
      continue;
    }
    BenchEntry entry;
    if (!ParseFlatObject(contents, &p, &entry, error)) return false;
    if (entry.name.empty()) {
      *error = "results object without a \"name\"";
      return false;
    }
    out->entries.push_back(std::move(entry));
  }
  return true;
}

bool LoadBenchFile(const std::string& path, BenchFile* out,
                   std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  if (!ParseBenchJson(contents.str(), out, error)) {
    *error = path + ": " + *error;
    return false;
  }
  return true;
}

std::vector<CompareFinding> CompareBenchFiles(const BenchFile& baseline,
                                              const BenchFile& candidate,
                                              const CompareOptions& options) {
  std::vector<CompareFinding> findings;
  auto metadata_mismatch = [&findings](const std::string& field,
                                       const std::string& base,
                                       const std::string& cand) {
    CompareFinding finding;
    finding.kind = CompareFinding::Kind::kMetadataMismatch;
    finding.key = field;
    finding.message = "baseline \"" + base + "\" vs candidate \"" + cand +
                      "\" — wall times are not comparable";
    findings.push_back(finding);
  };
  if (baseline.bench != candidate.bench) {
    metadata_mismatch("bench", baseline.bench, candidate.bench);
  }
  if (baseline.mode != candidate.mode) {
    metadata_mismatch("mode", baseline.mode, candidate.mode);
  }

  std::map<std::string, const BenchEntry*> candidate_by_key;
  for (const BenchEntry& entry : candidate.entries) {
    candidate_by_key[EntryKey(entry)] = &entry;
  }
  std::map<std::string, bool> baseline_keys;
  for (const BenchEntry& base : baseline.entries) {
    const std::string key = EntryKey(base);
    baseline_keys[key] = true;
    const auto found = candidate_by_key.find(key);
    if (found == candidate_by_key.end()) {
      CompareFinding finding;
      finding.kind = CompareFinding::Kind::kMissingEntry;
      finding.key = key;
      finding.baseline_value = base.wall_seconds;
      finding.message = "entry disappeared from the candidate run";
      findings.push_back(finding);
      continue;
    }
    const BenchEntry& cand = *found->second;
    if (base.wall_seconds > 0.0 &&
        cand.wall_seconds > base.wall_seconds * (1.0 + options.tolerance)) {
      CompareFinding finding;
      finding.kind = CompareFinding::Kind::kRegression;
      finding.key = key;
      finding.baseline_value = base.wall_seconds;
      finding.candidate_value = cand.wall_seconds;
      std::ostringstream message;
      message.precision(3);
      message << "wall time " << base.wall_seconds << "s -> "
              << cand.wall_seconds << "s ("
              << cand.wall_seconds / base.wall_seconds << "x, tolerance "
              << 1.0 + options.tolerance << "x)";
      finding.message = message.str();
      findings.push_back(finding);
    }
    // Correctness flags must never drop, no matter the timing tolerance.
    for (const char* flag : {"deterministic", "within_bound"}) {
      const double base_flag = base.Metric(flag, 1.0);
      const double cand_flag = cand.Metric(flag, 1.0);
      if (cand_flag < base_flag) {
        CompareFinding finding;
        finding.kind = CompareFinding::Kind::kRegression;
        finding.key = key;
        finding.baseline_value = base_flag;
        finding.candidate_value = cand_flag;
        finding.message = std::string(flag) + " flag dropped from " +
                          std::to_string(base_flag) + " to " +
                          std::to_string(cand_flag);
        findings.push_back(finding);
      }
    }
  }
  for (const BenchEntry& entry : candidate.entries) {
    const std::string key = EntryKey(entry);
    if (baseline_keys.find(key) == baseline_keys.end()) {
      CompareFinding finding;
      finding.kind = CompareFinding::Kind::kNewEntry;
      finding.key = key;
      finding.candidate_value = entry.wall_seconds;
      finding.message = "entry is new in the candidate run";
      findings.push_back(finding);
    }
  }
  return findings;
}

bool HasBlockingFindings(const std::vector<CompareFinding>& findings) {
  for (const CompareFinding& finding : findings) {
    if (finding.kind != CompareFinding::Kind::kNewEntry) return true;
  }
  return false;
}

std::string FormatCompareFinding(const CompareFinding& finding) {
  const char* kind = "regression";
  switch (finding.kind) {
    case CompareFinding::Kind::kRegression:
      kind = "regression";
      break;
    case CompareFinding::Kind::kMissingEntry:
      kind = "missing";
      break;
    case CompareFinding::Kind::kNewEntry:
      kind = "new";
      break;
    case CompareFinding::Kind::kMetadataMismatch:
      kind = "metadata";
      break;
  }
  return std::string(kind) + " (" + finding.key + "): " + finding.message;
}

}  // namespace bbv::tools
