#ifndef BBV_TOOLS_LINT_RULES_H_
#define BBV_TOOLS_LINT_RULES_H_

#include <string>
#include <vector>

namespace bbv::tools {

/// One violation of a repo-specific invariant.
struct LintFinding {
  std::string file;     ///< Path relative to the repo root.
  size_t line = 0;      ///< 1-based line number.
  std::string rule;     ///< Rule id, e.g. "include-guard" or "float-eq".
  std::string message;  ///< Human-readable explanation.
};

/// Repo-specific invariants that clang-tidy cannot express. Rule ids:
///
///  - "include-guard": every header under src/, tools/ and bench/ carries the
///    path-derived guard BBV_<PATH>_H_ (src/ prefix stripped), with a
///    matching #define on the following line.
///  - "rng": no std::rand/srand, time(nullptr)/time(0), std::mt19937 or
///    std::random_device outside src/common/rng.* — all randomness flows
///    through explicitly seeded common::Rng so reproductions stay
///    deterministic.
///  - "float-eq": no ==/!= against floating-point literals in src/stats and
///    src/ml, where silent precision loss corrupts statistics.
///  - "stdout": no std::cout in library code under src/ — libraries report
///    through Status or return values; printing belongs to tools/examples.
///  - "assert": no C assert() or <cassert> include — invariants use
///    BBV_CHECK/BBV_DCHECK, which log file:line and streamed context.
///  - "thread": no std::thread/std::jthread/std::async and no <thread> or
///    <future> include outside src/common/parallel.* — all concurrency flows
///    through common::ParallelFor/ParallelMap, whose pre-forked-Rng contract
///    keeps results bit-identical at every thread count.
///
/// A finding on line N is suppressed when line N or line N-1 contains the
/// marker "bbv-lint: allow(<rule>)"; add a short justification after it.
///
/// `path_from_root` selects the applicable rules (forward slashes); the file
/// does not need to exist on disk.
std::vector<LintFinding> LintFileContents(const std::string& path_from_root,
                                          const std::string& contents);

/// Reads and lints one file on disk. `path_from_root` is the rule-selection
/// path; `disk_path` is where to read the bytes.
std::vector<LintFinding> LintFile(const std::string& path_from_root,
                                  const std::string& disk_path);

/// Walks src/, tools/ and bench/ under `repo_root` and lints every .h/.cc
/// file. Findings are sorted by path then line. When `num_files_scanned` is
/// non-null it receives the number of files examined, so callers can
/// distinguish "clean" from "looked at nothing" (wrong root, empty tree).
std::vector<LintFinding> LintTree(const std::string& repo_root,
                                  size_t* num_files_scanned = nullptr);

/// "path:line: [rule] message" — the canonical one-line rendering.
std::string FormatFinding(const LintFinding& finding);

}  // namespace bbv::tools

#endif  // BBV_TOOLS_LINT_RULES_H_
