#ifndef BBV_TOOLS_LINT_RULES_H_
#define BBV_TOOLS_LINT_RULES_H_

#include <cstddef>
#include <set>
#include <string>
#include <vector>

namespace bbv::tools {

/// One violation of a repo-specific invariant.
struct LintFinding {
  std::string file;     ///< Path relative to the repo root.
  size_t line = 0;      ///< 1-based line number.
  std::string rule;     ///< Rule id, e.g. "include-guard" or "det-iter".
  std::string message;  ///< Human-readable explanation.
};

/// Repo-specific invariants that clang-tidy cannot express, enforced on a
/// real token stream (tools/cpp_lexer.h): comments, string/char literals and
/// raw strings never trigger rules, and structural rules (statement shape,
/// loop nesting, include graph) see tokens with provenance. Rule ids:
///
///  - "include-guard": every header under src/, tools/, bench/ and tests/
///    carries the path-derived guard BBV_<PATH>_H_ (src/ prefix stripped),
///    with a matching #define as the next directive.
///  - "rng": no std::rand/srand, time(nullptr)/time(0), std::mt19937 or
///    std::random_device outside src/common/rng.* — all randomness flows
///    through explicitly seeded common::Rng so reproductions stay
///    deterministic.
///  - "float-eq": no ==/!= against floating-point literals in src/stats and
///    src/ml, where silent precision loss corrupts statistics.
///  - "stdout": no std::cout in library code under src/ — libraries report
///    through Status or return values; printing belongs to tools/examples.
///  - "assert": no C assert() or <cassert> include — invariants use
///    BBV_CHECK/BBV_DCHECK, which log file:line and streamed context.
///  - "thread": no std::thread/std::jthread/std::async and no <thread> or
///    <future> include outside src/common/parallel.* — all concurrency flows
///    through common::ParallelFor/ParallelMap, whose pre-forked-Rng contract
///    keeps results bit-identical at every thread count.
///  - "timing": no ad-hoc wall-clock reads (<chrono>, clock_gettime,
///    gettimeofday) outside src/common/telemetry.* and bench/bench_util.* —
///    timing is observation-only and lives in the telemetry subsystem.
///  - "det-iter": result-affecting library code (src/) must not name or
///    traverse std::unordered_map/std::unordered_set. Hash iteration order
///    is unspecified and silently leaks into float accumulation order,
///    feature indices and serialized bytes, breaking the determinism gate.
///    Both the type mention and any range-for / .begin() traversal of a
///    variable declared unordered are flagged. Pointer-keyed std::map /
///    std::set (raw or smart-pointer keys, including inside compound keys)
///    are flagged too: they are ordered, but over pointer values, which
///    follow allocation layout and change run to run.
///  - "layering": #include edges between src/ modules must follow the
///    documented DAG common -> {stats, linalg, data} -> {ml, errors,
///    featurize, datasets} -> {core, serve, automl}, plus four audited
///    same-layer edges (stats->linalg, ml->featurize, errors->ml,
///    serve->core). Any other edge is an error; see ModuleGraphDot for the
///    Graphviz export of the observed graph.
///  - "status-discard": a call to a Status/Result-returning function used as
///    a bare expression statement drops the error. Backed by [[nodiscard]]
///    on the types; the lint additionally catches files compiled without
///    warnings enabled (fixtures, generated code) and names the callee.
///    Matching is name-based: a name declared with both a Status and a void
///    return type anywhere in the tree is ambiguous and skipped (the
///    compiler's [[nodiscard]] warning still covers those call sites).
///  - "batch-api": PredictRow/PredictRowMean inside a loop body re-opens the
///    per-row inference path the PR 5 kernel gate closed; batch prediction
///    must flow through ml::ForestKernel PredictInto/PredictProbaInto.
///    ParallelFor/ParallelMap callables count as loop bodies (the callable
///    runs once per item), so per-row calls hidden in a parallel lambda —
///    including in bench/ harnesses — are flagged too; deliberate scalar
///    baselines carry an allow(batch-api) suppression. The same contract
///    holds one layer up: scalar EstimateScoreFromStatistics inside a loop
///    is flagged — batched interval estimation flows through the sanctioned
///    EstimateScoresFromStatistics(matrix, span<ScoreEstimate>) surface,
///    which is never flagged.
///
/// A finding on line N is suppressed when line N or line N-1 contains the
/// comment marker "bbv-lint: allow(<rule>)"; every suppression must carry a
/// written justification after the closing parenthesis.
///
/// `path_from_root` selects the applicable rules (forward slashes); the file
/// does not need to exist on disk.

/// Facts the cross-file rules need: collected over the whole tree by
/// AnalyzeTree (pass 1), or from the file itself in single-file linting.
struct AnalysisContext {
  /// Function names declared with a Status / Result<...> return type.
  std::set<std::string> status_functions;
  /// Function names declared with a void return type. A name in both sets is
  /// ambiguous (e.g. Matrix::AppendRows vs DataFrame::AppendRows) and the
  /// name-based status-discard rule skips it — [[nodiscard]] plus -Werror
  /// still covers those call sites at compile time.
  std::set<std::string> void_functions;
  /// Variable/member names declared with an unordered container type.
  std::set<std::string> unordered_variables;
};

/// Harvests AnalysisContext facts from one file into `context`.
void CollectContext(const std::string& path_from_root,
                    const std::string& contents, AnalysisContext* context);

/// One observed module-dependency edge in the src/ include graph.
struct ModuleEdge {
  std::string from;
  std::string to;
  size_t count = 0;    ///< Number of #include directives inducing the edge.
  bool allowed = true; ///< Whether the documented DAG permits the edge.
};

/// Full-tree analysis result: findings plus the observed module graph.
struct TreeAnalysis {
  std::vector<LintFinding> findings;
  size_t num_files_scanned = 0;
  std::vector<ModuleEdge> edges;  ///< Sorted by (from, to).
};

/// Lints one file with facts local to that file (plus built-in knowledge).
std::vector<LintFinding> LintFileContents(const std::string& path_from_root,
                                          const std::string& contents);

/// Lints one file against externally collected facts (tree-wide passes).
std::vector<LintFinding> LintFileContentsWithContext(
    const std::string& path_from_root, const std::string& contents,
    const AnalysisContext& context);

/// Reads and lints one file on disk. `path_from_root` is the rule-selection
/// path; `disk_path` is where to read the bytes.
std::vector<LintFinding> LintFile(const std::string& path_from_root,
                                  const std::string& disk_path);

/// Walks src/, tools/, bench/ and tests/ under `repo_root` (skipping
/// tests/lint_fixtures, which are deliberately bad) and lints every .h/.cc
/// file in two passes: pass 1 collects the AnalysisContext and the module
/// include graph, pass 2 applies every rule. Findings are sorted by path
/// then line.
TreeAnalysis AnalyzeTree(const std::string& repo_root);

/// Findings-only wrapper around AnalyzeTree. When `num_files_scanned` is
/// non-null it receives the number of files examined, so callers can
/// distinguish "clean" from "looked at nothing" (wrong root, empty tree).
std::vector<LintFinding> LintTree(const std::string& repo_root,
                                  size_t* num_files_scanned = nullptr);

/// Layer of a src/ module in the documented DAG (0 = common), or -1 for an
/// unknown module name.
int ModuleLayer(const std::string& module);

/// True when the documented DAG allows `from` to include headers of `to`.
bool IsAllowedModuleEdge(const std::string& from, const std::string& to);

/// Graphviz rendering of the observed module graph: one box per module,
/// layers as ranks, one edge per ModuleEdge labeled with its include count;
/// edges violating the DAG are drawn red and bold.
std::string ModuleGraphDot(const std::vector<ModuleEdge>& edges);

/// A module cycle in `edges` as a path m0 -> m1 -> ... -> m0, or an empty
/// vector when the graph is acyclic. Self-edges (module including itself)
/// are not cycles.
std::vector<std::string> FindModuleCycle(const std::vector<ModuleEdge>& edges);

/// Machine-readable export following the BENCH_*.json conventions of
/// bench/bench_util: one top-level object, two-space indent, one line per
/// finding, plus a per-rule count object so CI can diff finding counts.
std::string FindingsJson(const TreeAnalysis& analysis);

/// "path:line: [rule] message" — the canonical one-line rendering.
std::string FormatFinding(const LintFinding& finding);

}  // namespace bbv::tools

#endif  // BBV_TOOLS_LINT_RULES_H_
