// Perf gate: diffs two BENCH_*.json files (see bench::WriteBenchJson) and
// reports wall-time regressions beyond a relative tolerance, dropped
// determinism/error-bound flags, and entries that appeared or disappeared.
//
// Usage: bbv_bench_compare [--tolerance=0.25] [--warn-only]
//                          baseline.json candidate.json
//
// Exits 0 when clean (or always with --warn-only, for advisory CI steps on
// noisy shared runners), 1 on blocking findings, 2 on usage/parse errors.

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "tools/bench_compare.h"

int main(int argc, char** argv) {
  bbv::tools::CompareOptions options;
  bool warn_only = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string tolerance_prefix = "--tolerance=";
    if (arg == "--warn-only") {
      warn_only = true;
    } else if (arg.rfind(tolerance_prefix, 0) == 0) {
      char* end = nullptr;
      const std::string value = arg.substr(tolerance_prefix.size());
      options.tolerance = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || options.tolerance < 0.0) {
        std::cerr << "bbv_bench_compare: bad tolerance '" << value << "'\n";
        return 2;
      }
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) {
    std::cerr << "usage: bbv_bench_compare [--tolerance=T] [--warn-only] "
                 "baseline.json candidate.json\n";
    return 2;
  }

  bbv::tools::BenchFile baseline;
  bbv::tools::BenchFile candidate;
  std::string error;
  if (!bbv::tools::LoadBenchFile(paths[0], &baseline, &error) ||
      !bbv::tools::LoadBenchFile(paths[1], &candidate, &error)) {
    std::cerr << "bbv_bench_compare: " << error << "\n";
    return 2;
  }

  const std::vector<bbv::tools::CompareFinding> findings =
      bbv::tools::CompareBenchFiles(baseline, candidate, options);
  for (const bbv::tools::CompareFinding& finding : findings) {
    std::cerr << bbv::tools::FormatCompareFinding(finding) << "\n";
  }
  const bool blocking = bbv::tools::HasBlockingFindings(findings);
  if (!blocking) {
    std::cout << "bbv_bench_compare: " << candidate.bench << " within "
              << (1.0 + options.tolerance) << "x of baseline ("
              << baseline.entries.size() << " entries)\n";
    return 0;
  }
  if (warn_only) {
    std::cout << "bbv_bench_compare: findings above are advisory "
                 "(--warn-only)\n";
    return 0;
  }
  return 1;
}
