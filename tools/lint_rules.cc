#include "tools/lint_rules.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

namespace bbv::tools {

namespace {

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool StartsWith(const std::string& text, const std::string& prefix) {
  return text.rfind(prefix, 0) == 0;
}

bool EndsWith(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::vector<std::string> SplitLines(const std::string& contents) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : contents) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) lines.push_back(current);
  return lines;
}

/// Blanks out comments and string/char literal contents so token scans do not
/// trip on prose or test data. Tracks /* */ state across lines; raw string
/// literals are not handled (none of the enforced tokens appear in them).
std::vector<std::string> StripCommentsAndStrings(
    const std::vector<std::string>& lines) {
  std::vector<std::string> stripped;
  stripped.reserve(lines.size());
  bool in_block_comment = false;
  for (const std::string& line : lines) {
    std::string out(line.size(), ' ');
    size_t i = 0;
    while (i < line.size()) {
      if (in_block_comment) {
        if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
          in_block_comment = false;
          i += 2;
        } else {
          ++i;
        }
        continue;
      }
      const char c = line[i];
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
        break;  // rest of the line is a comment
      }
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        in_block_comment = true;
        i += 2;
        continue;
      }
      if (c == '"' || c == '\'') {
        const char quote = c;
        out[i] = quote;
        ++i;
        while (i < line.size()) {
          if (line[i] == '\\') {
            i += 2;
            continue;
          }
          if (line[i] == quote) {
            out[i] = quote;
            ++i;
            break;
          }
          ++i;
        }
        continue;
      }
      out[i] = c;
      ++i;
    }
    stripped.push_back(std::move(out));
  }
  return stripped;
}

/// Position of `token` in `line` at word boundaries, or npos. When
/// `require_call` is set the token must be followed by '(' (after optional
/// spaces), which keeps identifiers like `operand` from matching `rand`.
size_t FindToken(const std::string& line, const std::string& token,
                 bool require_call = false) {
  size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsWordChar(line[pos - 1]);
    size_t after = pos + token.size();
    const bool right_ok = after >= line.size() || !IsWordChar(line[after]);
    bool call_ok = true;
    if (require_call) {
      while (after < line.size() && line[after] == ' ') ++after;
      call_ok = after < line.size() && line[after] == '(';
    }
    if (left_ok && right_ok && call_ok) return pos;
    ++pos;
  }
  return std::string::npos;
}

/// True when the (unstripped) source suppresses `rule` for a finding on
/// 0-based line `index`: the marker may sit on the flagged line or the one
/// above it.
bool IsSuppressed(const std::vector<std::string>& lines, size_t index,
                  const std::string& rule) {
  const std::string marker = "bbv-lint: allow(" + rule + ")";
  if (lines[index].find(marker) != std::string::npos) return true;
  return index > 0 && lines[index - 1].find(marker) != std::string::npos;
}

std::string ExpectedGuard(const std::string& path_from_root) {
  std::string trimmed = path_from_root;
  if (StartsWith(trimmed, "src/")) trimmed = trimmed.substr(4);
  std::string guard = "BBV_";
  for (char c : trimmed) {
    if (c == '/' || c == '.' || c == '-') {
      guard += '_';
    } else {
      guard += static_cast<char>(
          std::toupper(static_cast<unsigned char>(c)));
    }
  }
  guard += '_';
  return guard;
}

void CheckIncludeGuard(const std::string& path,
                       const std::vector<std::string>& lines,
                       std::vector<LintFinding>& findings) {
  const std::string expected = ExpectedGuard(path);
  const std::string rule = "include-guard";
  for (size_t i = 0; i < lines.size(); ++i) {
    std::istringstream tokens(lines[i]);
    std::string directive;
    tokens >> directive;
    if (directive != "#ifndef") continue;
    std::string guard;
    tokens >> guard;
    if (guard != expected) {
      if (!IsSuppressed(lines, i, rule)) {
        findings.push_back({path, i + 1, rule,
                            "include guard '" + guard + "' should be '" +
                                expected + "'"});
      }
      return;
    }
    const std::string define = "#define " + expected;
    if (i + 1 >= lines.size() ||
        lines[i + 1].find(define) == std::string::npos) {
      if (!IsSuppressed(lines, i, rule)) {
        findings.push_back({path, i + 1, rule,
                            "#ifndef " + expected +
                                " is not followed by '" + define + "'"});
      }
    }
    return;
  }
  if (!lines.empty() && IsSuppressed(lines, 0, rule)) return;
  findings.push_back(
      {path, 1, rule, "header is missing include guard " + expected});
}

void CheckBannedRandomness(const std::string& path,
                           const std::vector<std::string>& lines,
                           const std::vector<std::string>& stripped,
                           std::vector<LintFinding>& findings) {
  const std::string rule = "rng";
  struct Ban {
    const char* token;
    bool require_call;
    const char* why;
  };
  static const Ban kBans[] = {
      {"rand", true, "use common::Rng (seeded, reproducible)"},
      {"srand", true, "use common::Rng (seeded, reproducible)"},
      {"mt19937", false, "use common::Rng instead of std::mt19937"},
      {"mt19937_64", false, "use common::Rng instead of std::mt19937_64"},
      {"random_device", false,
       "nondeterministic entropy breaks reproducibility; seed common::Rng"},
  };
  for (size_t i = 0; i < stripped.size(); ++i) {
    for (const Ban& ban : kBans) {
      if (FindToken(stripped[i], ban.token, ban.require_call) !=
              std::string::npos &&
          !IsSuppressed(lines, i, rule)) {
        findings.push_back({path, i + 1, rule,
                            std::string("banned '") + ban.token + "': " +
                                ban.why});
        break;  // one rng finding per line is enough
      }
    }
    // time(nullptr) / time(0) seeds are wall-clock dependent.
    const size_t time_pos = FindToken(stripped[i], "time", true);
    if (time_pos != std::string::npos) {
      static const std::regex kTimeSeed(R"(\btime\s*\(\s*(nullptr|0|NULL)\s*\))");
      if (std::regex_search(stripped[i], kTimeSeed) &&
          !IsSuppressed(lines, i, rule)) {
        findings.push_back({path, i + 1, rule,
                            "banned wall-clock seed time(...); use an "
                            "explicit common::Rng seed"});
      }
    }
  }
}

void CheckFloatEquality(const std::string& path,
                        const std::vector<std::string>& lines,
                        const std::vector<std::string>& stripped,
                        std::vector<LintFinding>& findings) {
  const std::string rule = "float-eq";
  // A floating literal on either side of ==/!=.
  static const std::regex kLitThenEq(
      R"(((\d+\.\d*|\.\d+)([eE][+-]?\d+)?|\d+[eE][+-]?\d+)\s*(==|!=))");
  static const std::regex kEqThenLit(
      R"((==|!=)\s*[-+]?((\d+\.\d*|\.\d+)([eE][+-]?\d+)?|\d+[eE][+-]?\d+))");
  for (size_t i = 0; i < stripped.size(); ++i) {
    if (std::regex_search(stripped[i], kLitThenEq) ||
        std::regex_search(stripped[i], kEqThenLit)) {
      if (!IsSuppressed(lines, i, rule)) {
        findings.push_back({path, i + 1, rule,
                            "==/!= against a floating-point literal; compare "
                            "with a tolerance or restructure the guard"});
      }
    }
  }
}

void CheckNoStdout(const std::string& path,
                   const std::vector<std::string>& lines,
                   const std::vector<std::string>& stripped,
                   std::vector<LintFinding>& findings) {
  const std::string rule = "stdout";
  for (size_t i = 0; i < stripped.size(); ++i) {
    if (stripped[i].find("std::cout") != std::string::npos &&
        !IsSuppressed(lines, i, rule)) {
      findings.push_back({path, i + 1, rule,
                          "std::cout in library code; report through Status "
                          "or return values"});
    }
  }
}

void CheckNoAssert(const std::string& path,
                   const std::vector<std::string>& lines,
                   const std::vector<std::string>& stripped,
                   std::vector<LintFinding>& findings) {
  const std::string rule = "assert";
  for (size_t i = 0; i < stripped.size(); ++i) {
    const bool include_hit =
        stripped[i].find("<cassert>") != std::string::npos ||
        stripped[i].find("<assert.h>") != std::string::npos;
    // Word-boundary match keeps static_assert (preceded by '_') clean.
    const bool call_hit =
        FindToken(stripped[i], "assert", true) != std::string::npos;
    if ((include_hit || call_hit) && !IsSuppressed(lines, i, rule)) {
      findings.push_back({path, i + 1, rule,
                          "C assert(); use BBV_CHECK/BBV_DCHECK for "
                          "file:line context and streamed diagnostics"});
    }
  }
}

void CheckNoRawThreads(const std::string& path,
                       const std::vector<std::string>& lines,
                       const std::vector<std::string>& stripped,
                       std::vector<LintFinding>& findings) {
  const std::string rule = "thread";
  for (size_t i = 0; i < stripped.size(); ++i) {
    // <thread> also covers std::this_thread; <future> covers std::async's
    // return machinery. Either include outside the parallel home is a smell
    // on its own.
    const bool include_hit =
        stripped[i].find("<thread>") != std::string::npos ||
        stripped[i].find("<future>") != std::string::npos;
    const bool token_hit =
        FindToken(stripped[i], "std::thread") != std::string::npos ||
        FindToken(stripped[i], "std::jthread") != std::string::npos ||
        FindToken(stripped[i], "std::async") != std::string::npos;
    if ((include_hit || token_hit) && !IsSuppressed(lines, i, rule)) {
      findings.push_back({path, i + 1, rule,
                          "raw thread primitive outside src/common/parallel; "
                          "route concurrency through common::ParallelFor/"
                          "ParallelMap so the determinism contract holds"});
    }
  }
}

void CheckNoAdHocTiming(const std::string& path,
                        const std::vector<std::string>& lines,
                        const std::vector<std::string>& stripped,
                        std::vector<LintFinding>& findings) {
  const std::string rule = "timing";
  for (size_t i = 0; i < stripped.size(); ++i) {
    const bool include_hit =
        stripped[i].find("<chrono>") != std::string::npos ||
        stripped[i].find("<ctime>") != std::string::npos ||
        stripped[i].find("<sys/time.h>") != std::string::npos;
    const bool token_hit =
        FindToken(stripped[i], "std::chrono") != std::string::npos ||
        FindToken(stripped[i], "clock_gettime", true) != std::string::npos ||
        FindToken(stripped[i], "gettimeofday", true) != std::string::npos;
    if ((include_hit || token_hit) && !IsSuppressed(lines, i, rule)) {
      findings.push_back({path, i + 1, rule,
                          "ad-hoc timing outside telemetry/bench_util; use "
                          "common::telemetry::TraceSpan (library code) or "
                          "bench::WallTimer (benchmarks)"});
    }
  }
}

}  // namespace

std::vector<LintFinding> LintFileContents(const std::string& path_from_root,
                                          const std::string& contents) {
  std::vector<LintFinding> findings;
  const std::vector<std::string> lines = SplitLines(contents);
  const std::vector<std::string> stripped = StripCommentsAndStrings(lines);

  if (EndsWith(path_from_root, ".h")) {
    CheckIncludeGuard(path_from_root, lines, findings);
  }
  const bool is_rng_home = path_from_root == "src/common/rng.h" ||
                           path_from_root == "src/common/rng.cc";
  if (!is_rng_home) {
    CheckBannedRandomness(path_from_root, lines, stripped, findings);
  }
  const bool is_parallel_home = path_from_root == "src/common/parallel.h" ||
                                path_from_root == "src/common/parallel.cc";
  if (!is_parallel_home) {
    CheckNoRawThreads(path_from_root, lines, stripped, findings);
  }
  const bool is_timing_home = path_from_root == "src/common/telemetry.h" ||
                              path_from_root == "src/common/telemetry.cc" ||
                              path_from_root == "bench/bench_util.h" ||
                              path_from_root == "bench/bench_util.cc";
  if (!is_timing_home) {
    CheckNoAdHocTiming(path_from_root, lines, stripped, findings);
  }
  if (StartsWith(path_from_root, "src/stats/") ||
      StartsWith(path_from_root, "src/ml/")) {
    CheckFloatEquality(path_from_root, lines, stripped, findings);
  }
  if (StartsWith(path_from_root, "src/")) {
    CheckNoStdout(path_from_root, lines, stripped, findings);
  }
  CheckNoAssert(path_from_root, lines, stripped, findings);
  return findings;
}

std::vector<LintFinding> LintFile(const std::string& path_from_root,
                                  const std::string& disk_path) {
  std::ifstream input(disk_path, std::ios::binary);
  if (!input) {
    return {{path_from_root, 0, "io", "could not read file"}};
  }
  std::ostringstream buffer;
  buffer << input.rdbuf();
  return LintFileContents(path_from_root, buffer.str());
}

std::vector<LintFinding> LintTree(const std::string& repo_root,
                                  size_t* num_files_scanned) {
  namespace fs = std::filesystem;
  std::vector<LintFinding> findings;
  size_t scanned = 0;
  const fs::path root(repo_root);
  for (const char* subdir : {"src", "tools", "bench"}) {
    const fs::path base = root / subdir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string extension = entry.path().extension().string();
      if (extension != ".h" && extension != ".cc") continue;
      const std::string relative =
          fs::relative(entry.path(), root).generic_string();
      ++scanned;
      std::vector<LintFinding> file_findings =
          LintFile(relative, entry.path().string());
      findings.insert(findings.end(), file_findings.begin(),
                      file_findings.end());
    }
  }
  if (num_files_scanned != nullptr) *num_files_scanned = scanned;
  std::sort(findings.begin(), findings.end(),
            [](const LintFinding& a, const LintFinding& b) {
              if (a.file != b.file) return a.file < b.file;
              return a.line < b.line;
            });
  return findings;
}

std::string FormatFinding(const LintFinding& finding) {
  std::ostringstream out;
  out << finding.file << ":" << finding.line << ": [" << finding.rule << "] "
      << finding.message;
  return out.str();
}

}  // namespace bbv::tools
