#include "tools/lint_rules.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "tools/cpp_lexer.h"

namespace bbv::tools {

namespace {

bool StartsWith(const std::string& text, const std::string& prefix) {
  return text.rfind(prefix, 0) == 0;
}

bool EndsWith(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool IsIdent(const Token& token, const char* text) {
  return token.kind == TokenKind::kIdentifier && token.text == text;
}

bool IsPunct(const Token& token, const char* text) {
  return token.kind == TokenKind::kPunct && token.text == text;
}

/// True when the pp-number token spells a floating-point literal: it has a
/// fraction dot or a decimal exponent (hex literals are never flagged).
bool IsFloatingLiteral(const Token& token) {
  if (token.kind != TokenKind::kNumber) return false;
  const std::string& text = token.text;
  if (StartsWith(text, "0x") || StartsWith(text, "0X")) return false;
  if (text.find('.') != std::string::npos) return true;
  return text.find('e') != std::string::npos ||
         text.find('E') != std::string::npos;
}

/// Index one past a balanced <...> template argument list starting at
/// `open` (which must be a '<'), treating '>>' as two closers. Returns
/// `open` when tokens[open] is not '<' (no template arguments present).
size_t SkipTemplateArgs(const std::vector<Token>& tokens, size_t open) {
  if (open >= tokens.size() || !IsPunct(tokens[open], "<")) return open;
  int depth = 0;
  for (size_t i = open; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    if (token.kind != TokenKind::kPunct) continue;
    if (token.text == "<") ++depth;
    if (token.text == ">") --depth;
    if (token.text == ">>") depth -= 2;
    if (depth <= 0) return i + 1;
  }
  return tokens.size();
}

/// Index of the ')' matching the '(' at `open`, or tokens.size().
size_t FindMatchingParen(const std::vector<Token>& tokens, size_t open) {
  int depth = 0;
  for (size_t i = open; i < tokens.size(); ++i) {
    if (IsPunct(tokens[i], "(")) ++depth;
    if (IsPunct(tokens[i], ")")) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return tokens.size();
}

std::string ExpectedGuard(const std::string& path_from_root) {
  std::string trimmed = path_from_root;
  if (StartsWith(trimmed, "src/")) trimmed = trimmed.substr(4);
  std::string guard = "BBV_";
  for (char c : trimmed) {
    if (c == '/' || c == '.' || c == '-') {
      guard += '_';
    } else {
      guard += static_cast<char>(
          std::toupper(static_cast<unsigned char>(c)));
    }
  }
  guard += '_';
  return guard;
}

void Report(const std::string& path, const LexedFile& lexed, size_t line,
            const std::string& rule, std::string message,
            std::vector<LintFinding>& findings) {
  if (IsSuppressed(lexed, line, rule)) return;
  findings.push_back({path, line, rule, std::move(message)});
}

// ---------------------------------------------------------------------------
// Ported rules (previously regex-based, now token-exact)
// ---------------------------------------------------------------------------

void CheckIncludeGuard(const std::string& path, const LexedFile& lexed,
                       std::vector<LintFinding>& findings) {
  const std::string expected = ExpectedGuard(path);
  const std::string rule = "include-guard";
  const std::vector<Token>& tokens = lexed.tokens;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokenKind::kDirective ||
        tokens[i].text != "#ifndef") {
      continue;
    }
    const std::string guard =
        i + 1 < tokens.size() ? tokens[i + 1].text : "<missing>";
    if (guard != expected) {
      Report(path, lexed, tokens[i].line, rule,
             "include guard '" + guard + "' should be '" + expected + "'",
             findings);
      return;
    }
    // The matching #define must be the next directive.
    for (size_t j = i + 2; j < tokens.size(); ++j) {
      if (tokens[j].kind != TokenKind::kDirective) continue;
      if (tokens[j].text == "#define" && j + 1 < tokens.size() &&
          tokens[j + 1].text == expected) {
        return;
      }
      break;
    }
    Report(path, lexed, tokens[i].line, rule,
           "#ifndef " + expected + " is not followed by '#define " + expected +
               "'",
           findings);
    return;
  }
  Report(path, lexed, 1, rule, "header is missing include guard " + expected,
         findings);
}

bool IncludesHeader(const Token& token, const char* header) {
  return token.kind == TokenKind::kHeaderName && token.text == header;
}

void CheckBannedRandomness(const std::string& path, const LexedFile& lexed,
                           std::vector<LintFinding>& findings) {
  const std::string rule = "rng";
  const std::vector<Token>& tokens = lexed.tokens;
  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    const bool next_is_call =
        i + 1 < tokens.size() && IsPunct(tokens[i + 1], "(");
    if (IsIdent(token, "mt19937")) {
      Report(path, lexed, token.line, rule,
             "banned 'mt19937': use common::Rng instead of std::mt19937",
             findings);
    } else if (IsIdent(token, "mt19937_64")) {
      Report(path, lexed, token.line, rule,
             "banned 'mt19937_64': use common::Rng instead of "
             "std::mt19937_64",
             findings);
    } else if (IsIdent(token, "random_device")) {
      Report(path, lexed, token.line, rule,
             "banned 'random_device': nondeterministic entropy breaks "
             "reproducibility; seed common::Rng",
             findings);
    } else if ((IsIdent(token, "rand") || IsIdent(token, "srand")) &&
               next_is_call) {
      Report(path, lexed, token.line, rule,
             "banned '" + token.text +
                 "': use common::Rng (seeded, reproducible)",
             findings);
    } else if (IsIdent(token, "time") && next_is_call &&
               i + 3 < tokens.size() && IsPunct(tokens[i + 3], ")") &&
               (tokens[i + 2].text == "nullptr" ||
                tokens[i + 2].text == "NULL" || tokens[i + 2].text == "0")) {
      Report(path, lexed, token.line, rule,
             "banned wall-clock seed time(...); use an explicit common::Rng "
             "seed",
             findings);
    }
  }
}

void CheckFloatEquality(const std::string& path, const LexedFile& lexed,
                        std::vector<LintFinding>& findings) {
  const std::string rule = "float-eq";
  const std::vector<Token>& tokens = lexed.tokens;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (!IsPunct(tokens[i], "==") && !IsPunct(tokens[i], "!=")) continue;
    const bool lit_before = i > 0 && IsFloatingLiteral(tokens[i - 1]);
    // Right side may carry a sign: == -1.0 / != +0.5.
    size_t right = i + 1;
    if (right < tokens.size() &&
        (IsPunct(tokens[right], "-") || IsPunct(tokens[right], "+"))) {
      ++right;
    }
    const bool lit_after =
        right < tokens.size() && IsFloatingLiteral(tokens[right]);
    if (lit_before || lit_after) {
      Report(path, lexed, tokens[i].line, rule,
             "==/!= against a floating-point literal; compare with a "
             "tolerance or restructure the guard",
             findings);
    }
  }
}

void CheckNoStdout(const std::string& path, const LexedFile& lexed,
                   std::vector<LintFinding>& findings) {
  const std::vector<Token>& tokens = lexed.tokens;
  for (size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (IsIdent(tokens[i], "std") && IsPunct(tokens[i + 1], "::") &&
        IsIdent(tokens[i + 2], "cout")) {
      Report(path, lexed, tokens[i].line, "stdout",
             "std::cout in library code; report through Status or return "
             "values",
             findings);
    }
  }
}

void CheckNoAssert(const std::string& path, const LexedFile& lexed,
                   std::vector<LintFinding>& findings) {
  const std::string rule = "assert";
  const std::vector<Token>& tokens = lexed.tokens;
  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    if (IncludesHeader(token, "<cassert>") ||
        IncludesHeader(token, "<assert.h>") ||
        (IsIdent(token, "assert") && i + 1 < tokens.size() &&
         IsPunct(tokens[i + 1], "("))) {
      Report(path, lexed, token.line, rule,
             "C assert(); use BBV_CHECK/BBV_DCHECK for file:line context and "
             "streamed diagnostics",
             findings);
    }
  }
}

void CheckNoRawThreads(const std::string& path, const LexedFile& lexed,
                       std::vector<LintFinding>& findings) {
  const std::string rule = "thread";
  const std::vector<Token>& tokens = lexed.tokens;
  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    const bool std_member =
        token.kind == TokenKind::kIdentifier &&
        (token.text == "thread" || token.text == "jthread" ||
         token.text == "async") &&
        i >= 2 && IsPunct(tokens[i - 1], "::") && IsIdent(tokens[i - 2], "std");
    if (IncludesHeader(token, "<thread>") ||
        IncludesHeader(token, "<future>") || std_member) {
      Report(path, lexed, token.line, rule,
             "raw thread primitive outside src/common/parallel; route "
             "concurrency through common::ParallelFor/ParallelMap so the "
             "determinism contract holds",
             findings);
    }
  }
}

void CheckNoAdHocTiming(const std::string& path, const LexedFile& lexed,
                        std::vector<LintFinding>& findings) {
  const std::string rule = "timing";
  const std::vector<Token>& tokens = lexed.tokens;
  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    const bool std_chrono =
        IsIdent(token, "chrono") && i >= 2 && IsPunct(tokens[i - 1], "::") &&
        IsIdent(tokens[i - 2], "std");
    const bool timing_call =
        (IsIdent(token, "clock_gettime") || IsIdent(token, "gettimeofday")) &&
        i + 1 < tokens.size() && IsPunct(tokens[i + 1], "(");
    if (IncludesHeader(token, "<chrono>") || IncludesHeader(token, "<ctime>") ||
        IncludesHeader(token, "<sys/time.h>") || std_chrono || timing_call) {
      Report(path, lexed, token.line, rule,
             "ad-hoc timing outside telemetry/bench_util; use "
             "common::telemetry::TraceSpan (library code) or bench::WallTimer "
             "(benchmarks)",
             findings);
    }
  }
}

// ---------------------------------------------------------------------------
// det-iter: hash-ordered containers in result-affecting code
// ---------------------------------------------------------------------------

bool IsUnorderedTypeName(const Token& token) {
  return token.kind == TokenKind::kIdentifier &&
         (token.text == "unordered_map" || token.text == "unordered_set" ||
          token.text == "unordered_multimap" ||
          token.text == "unordered_multiset");
}

/// Records variable/member names declared with an unordered container type:
/// `std::unordered_map<K, V> name` (optionally through const/&/* or a
/// trailing reference) — the traversal check then recognizes loops over
/// those names anywhere in the tree.
void CollectUnorderedVariables(const LexedFile& lexed,
                               AnalysisContext* context) {
  const std::vector<Token>& tokens = lexed.tokens;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (!IsUnorderedTypeName(tokens[i]) || tokens[i].in_directive) continue;
    size_t j = SkipTemplateArgs(tokens, i + 1);
    while (j < tokens.size() &&
           (IsPunct(tokens[j], "&") || IsPunct(tokens[j], "*") ||
            IsPunct(tokens[j], "&&") || IsIdent(tokens[j], "const"))) {
      ++j;
    }
    if (j < tokens.size() && tokens[j].kind == TokenKind::kIdentifier) {
      context->unordered_variables.insert(tokens[j].text);
    }
  }
}

void CheckDeterministicIteration(const std::string& path,
                                 const LexedFile& lexed,
                                 const AnalysisContext& context,
                                 std::vector<LintFinding>& findings) {
  const std::string rule = "det-iter";
  const std::vector<Token>& tokens = lexed.tokens;
  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    // (a) Naming the type at all in result-affecting code is already a
    // hazard: members escape through structured bindings and aliases that a
    // token-level traversal check cannot follow.
    if (IsUnorderedTypeName(token) && !token.in_directive) {
      Report(path, lexed, token.line, rule,
             "hash-ordered container '" + token.text +
                 "' in result-affecting code: iteration order is unspecified "
                 "and leaks into accumulation order, feature indices and "
                 "serialized bytes; use std::map/std::set or a sorted vector "
                 "(or suppress with a justification that it is never "
                 "traversed)",
             findings);
    }
    // (b) Range-for whose range expression mentions a variable declared
    // with an unordered type anywhere in the tree.
    if (IsIdent(token, "for") && !token.in_directive &&
        i + 1 < tokens.size() && IsPunct(tokens[i + 1], "(")) {
      const size_t close = FindMatchingParen(tokens, i + 1);
      for (size_t j = i + 2; j < close; ++j) {
        if (!IsPunct(tokens[j], ":") ||
            tokens[j].paren_depth != tokens[i + 1].paren_depth + 1) {
          continue;
        }
        for (size_t k = j + 1; k < close; ++k) {
          if (tokens[k].kind == TokenKind::kIdentifier &&
              context.unordered_variables.count(tokens[k].text) > 0) {
            Report(path, lexed, token.line, rule,
                   "range-for over hash-ordered container '" + tokens[k].text +
                       "': traversal order is unspecified; iterate a sorted "
                       "view instead",
                   findings);
            break;
          }
        }
        break;
      }
    }
    // (c) Pointer-keyed std::map/std::set: the container is ordered, but
    // over pointer values, which follow allocation layout (ASLR, allocation
    // sequence) and change run to run — ordered is not the same as
    // deterministic. Smart-pointer keys compare addresses too. Only the key
    // argument is scanned: pointers on the mapped-value side are harmless.
    if (token.kind == TokenKind::kIdentifier && !token.in_directive &&
        (token.text == "map" || token.text == "set" ||
         token.text == "multimap" || token.text == "multiset") &&
        i >= 2 && IsPunct(tokens[i - 1], "::") &&
        IsIdent(tokens[i - 2], "std") && i + 1 < tokens.size() &&
        IsPunct(tokens[i + 1], "<")) {
      bool pointer_key = false;
      int depth = 0;
      for (size_t j = i + 1; j < tokens.size(); ++j) {
        const Token& argument = tokens[j];
        if (argument.kind == TokenKind::kIdentifier &&
            (argument.text == "shared_ptr" || argument.text == "unique_ptr" ||
             argument.text == "weak_ptr")) {
          pointer_key = true;
        }
        if (argument.kind != TokenKind::kPunct) continue;
        if (argument.text == "<") {
          ++depth;
        } else if (argument.text == ">") {
          if (--depth == 0) break;
        } else if (argument.text == ">>") {
          depth -= 2;
          if (depth <= 0) break;
        } else if (argument.text == "," && depth == 1) {
          break;
        } else if (argument.text == "*") {
          pointer_key = true;
        }
      }
      if (pointer_key) {
        Report(path, lexed, token.line, rule,
               "pointer-keyed 'std::" + token.text +
                   "': comparison is over pointer values, so iteration order "
                   "follows allocation layout and changes run to run; key by "
                   "a stable id (name, index) instead",
               findings);
      }
    }
    // (d) Iterator traversal: name.begin() / name.cbegin() and friends.
    if (token.kind == TokenKind::kIdentifier &&
        context.unordered_variables.count(token.text) > 0 &&
        i + 3 < tokens.size() &&
        (IsPunct(tokens[i + 1], ".") || IsPunct(tokens[i + 1], "->")) &&
        (IsIdent(tokens[i + 2], "begin") || IsIdent(tokens[i + 2], "cbegin") ||
         IsIdent(tokens[i + 2], "rbegin") ||
         IsIdent(tokens[i + 2], "crbegin")) &&
        IsPunct(tokens[i + 3], "(")) {
      Report(path, lexed, token.line, rule,
             "iterator traversal of hash-ordered container '" + token.text +
                 "': traversal order is unspecified; iterate a sorted view "
                 "instead",
             findings);
    }
  }
}

// ---------------------------------------------------------------------------
// layering: the module DAG, from #include directives
// ---------------------------------------------------------------------------

struct ModuleLayerEntry {
  const char* name;
  int layer;
};

constexpr ModuleLayerEntry kModuleLayers[] = {
    {"common", 0},  {"stats", 1},     {"linalg", 1},   {"data", 1},
    {"ml", 2},      {"errors", 2},    {"featurize", 2}, {"datasets", 2},
    {"core", 3},    {"serve", 3},     {"automl", 3},
};

/// Audited same-layer dependencies; every entry needs a design reason (see
/// DESIGN.md "Module layering").
constexpr std::pair<const char*, const char*> kIntraLayerEdges[] = {
    {"stats", "linalg"},   // quantile sketch surfaces feature matrices
    {"ml", "featurize"},   // BlackBox bundles its featurization pipeline
    {"errors", "ml"},      // entropy-based corruption reads model confidence
    {"serve", "core"},     // streaming scorer wraps PerformancePredictor
};

std::string SourceModule(const std::string& path_from_root) {
  if (!StartsWith(path_from_root, "src/")) return "";
  const size_t slash = path_from_root.find('/', 4);
  if (slash == std::string::npos) return "";
  return path_from_root.substr(4, slash - 4);
}

/// Module named by a quoted project include ("module/header.h"), or "".
std::string IncludeTargetModule(const Token& token) {
  if (token.kind != TokenKind::kHeaderName || token.text.size() < 2 ||
      token.text.front() != '"') {
    return "";
  }
  const std::string inner = token.text.substr(1, token.text.size() - 2);
  const size_t slash = inner.find('/');
  if (slash == std::string::npos) return "";
  const std::string module = inner.substr(0, slash);
  return ModuleLayer(module) >= 0 ? module : "";
}

void CheckLayering(const std::string& path, const LexedFile& lexed,
                   std::vector<LintFinding>& findings) {
  const std::string from = SourceModule(path);
  if (from.empty() || ModuleLayer(from) < 0) return;
  for (const Token& token : lexed.tokens) {
    const std::string to = IncludeTargetModule(token);
    if (to.empty()) continue;
    if (!IsAllowedModuleEdge(from, to)) {
      Report(path, lexed, token.line, "layering",
             "include edge " + from + " -> " + to +
                 " violates the module DAG common -> {stats,linalg,data} -> "
                 "{ml,errors,featurize,datasets} -> {core,serve,automl}; "
                 "invert the dependency or move the shared code down a layer",
             findings);
    }
  }
}

// ---------------------------------------------------------------------------
// status-discard: Status/Result used as a bare expression statement
// ---------------------------------------------------------------------------

/// Records function names declared with a Status or Result<...> return
/// type: `Status Name(` / `Result<T> Name(`, possibly namespace-qualified.
/// Purely name-based (no overload resolution) — a false positive needs a
/// suppression, a false negative is still caught by [[nodiscard]].
void CollectStatusFunctions(const LexedFile& lexed, AnalysisContext* context) {
  const std::vector<Token>& tokens = lexed.tokens;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].in_directive) continue;
    size_t name_index = 0;
    bool is_void = false;
    if (IsIdent(tokens[i], "Status")) {
      name_index = i + 1;
    } else if (IsIdent(tokens[i], "Result") && i + 1 < tokens.size() &&
               IsPunct(tokens[i + 1], "<")) {
      name_index = SkipTemplateArgs(tokens, i + 1);
    } else if (IsIdent(tokens[i], "void")) {
      name_index = i + 1;
      is_void = true;
    } else {
      continue;
    }
    if (name_index + 1 >= tokens.size()) continue;
    if (tokens[name_index].kind != TokenKind::kIdentifier) continue;
    if (!IsPunct(tokens[name_index + 1], "(")) continue;
    // `Status::OK(...)`-style qualified member access is a call, not a
    // declaration; require the type name to not be a qualifier.
    if (name_index == i + 1 && IsPunct(tokens[i + 1], "::")) continue;
    if (is_void) {
      context->void_functions.insert(tokens[name_index].text);
    } else {
      context->status_functions.insert(tokens[name_index].text);
    }
  }
}

void CheckStatusDiscard(const std::string& path, const LexedFile& lexed,
                        const AnalysisContext& context,
                        std::vector<LintFinding>& findings) {
  const std::string rule = "status-discard";
  const std::vector<Token>& tokens = lexed.tokens;
  bool at_statement_start = true;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].in_directive) continue;
    const bool starts_here = at_statement_start;
    at_statement_start = tokens[i].kind == TokenKind::kPunct &&
                         (tokens[i].text == ";" || tokens[i].text == "{" ||
                          tokens[i].text == "}");
    if (!starts_here || tokens[i].kind != TokenKind::kIdentifier) continue;
    // Match a pure call statement: ident ((::|.|->) ident)* ( ... ) ;
    size_t j = i;
    std::string callee = tokens[j].text;
    while (j + 2 < tokens.size() &&
           (IsPunct(tokens[j + 1], "::") || IsPunct(tokens[j + 1], ".") ||
            IsPunct(tokens[j + 1], "->")) &&
           tokens[j + 2].kind == TokenKind::kIdentifier) {
      j += 2;
      callee = tokens[j].text;
    }
    if (j + 1 >= tokens.size() || !IsPunct(tokens[j + 1], "(")) continue;
    const size_t close = FindMatchingParen(tokens, j + 1);
    if (close + 1 >= tokens.size() || !IsPunct(tokens[close + 1], ";")) {
      continue;
    }
    if (context.status_functions.count(callee) == 0) continue;
    // Names also declared void somewhere are ambiguous; the compiler's
    // [[nodiscard]] warning covers those call sites instead.
    if (context.void_functions.count(callee) > 0) continue;
    Report(path, lexed, tokens[i].line, rule,
           "result of Status/Result-returning '" + callee +
               "' is discarded; check it, propagate with BBV_RETURN_NOT_OK, "
               "or suppress with a justification for the deliberate drop",
           findings);
  }
}

// ---------------------------------------------------------------------------
// batch-api: per-row prediction inside loops
// ---------------------------------------------------------------------------

void CheckBatchApi(const std::string& path, const LexedFile& lexed,
                   std::vector<LintFinding>& findings) {
  const std::string rule = "batch-api";
  const std::vector<Token>& tokens = lexed.tokens;
  struct LoopFrame {
    bool braced = false;
    int brace_depth = 0;  ///< Depth of the body brace / of the statement.
    /// ParallelFor/ParallelMap call frame: the body callable runs once per
    /// item, so it is a loop body even without a loop keyword. Call frames
    /// expire at `close` (the call's matching ')') instead of via the
    /// brace/semicolon handlers below, which cannot see them: inside the
    /// argument list paren_depth is at least 1.
    bool call = false;
    size_t close = 0;
  };
  std::vector<LoopFrame> loops;
  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    if (token.in_directive) continue;
    // Expire finished parallel-call frames first; everything above the
    // lowest expired frame was pushed inside that call's argument list
    // (single-statement loop frames in a lambda never hit the
    // paren_depth == 0 semicolon handler, so they expire here too).
    for (size_t frame = 0; frame < loops.size(); ++frame) {
      if (loops[frame].call && i > loops[frame].close) {
        loops.resize(frame);
        break;
      }
    }
    if (IsIdent(token, "ParallelFor") || IsIdent(token, "ParallelMap")) {
      size_t open = i + 1;
      if (open < tokens.size() && IsPunct(tokens[open], "<")) {
        open = SkipTemplateArgs(tokens, open);
      }
      if (open < tokens.size() && IsPunct(tokens[open], "(")) {
        loops.push_back({false, token.brace_depth, true,
                         FindMatchingParen(tokens, open)});
      }
      continue;
    }
    const bool loop_keyword = (IsIdent(token, "for") ||
                               IsIdent(token, "while")) &&
                              i + 1 < tokens.size() &&
                              IsPunct(tokens[i + 1], "(");
    if (loop_keyword || IsIdent(token, "do")) {
      size_t body = i + 1;
      if (loop_keyword) body = FindMatchingParen(tokens, i + 1) + 1;
      if (body < tokens.size() && IsPunct(tokens[body], "{")) {
        loops.push_back({true, tokens[body].brace_depth});
      } else if (body < tokens.size()) {
        loops.push_back({false, token.brace_depth});
      }
      continue;
    }
    if (IsPunct(token, "}")) {
      while (!loops.empty() && loops.back().braced &&
             loops.back().brace_depth == token.brace_depth) {
        loops.pop_back();
        // A brace body can itself be the single statement of an outer loop.
        while (!loops.empty() && !loops.back().braced &&
               loops.back().brace_depth == token.brace_depth) {
          loops.pop_back();
        }
      }
      continue;
    }
    if (IsPunct(token, ";") && token.paren_depth == 0) {
      while (!loops.empty() && !loops.back().braced &&
             loops.back().brace_depth == token.brace_depth) {
        loops.pop_back();
      }
      continue;
    }
    if (!loops.empty() &&
        (IsIdent(token, "PredictRow") || IsIdent(token, "PredictRowMean")) &&
        i + 1 < tokens.size() && IsPunct(tokens[i + 1], "(")) {
      Report(path, lexed, token.line, rule,
             "'" + token.text +
                 "' inside a loop re-opens the per-row inference path; batch "
                 "through ml::ForestKernel PredictInto/PredictProbaInto (the "
                 "scalar walk is reserved for kernel validation)",
             findings);
    }
    // Same contract one layer up: the scalar estimate surface inside a loop
    // bypasses the sanctioned batch interval surface. The plural
    // EstimateScoresFromStatistics(matrix, span) is a different identifier
    // and never fires.
    if (!loops.empty() && IsIdent(token, "EstimateScoreFromStatistics") &&
        i + 1 < tokens.size() && IsPunct(tokens[i + 1], "(")) {
      Report(path, lexed, token.line, rule,
             "scalar 'EstimateScoreFromStatistics' inside a loop; batch "
             "through EstimateScoresFromStatistics(matrix, "
             "span<ScoreEstimate>) — deliberate scalar baselines carry an "
             "allow(batch-api) suppression",
             findings);
    }
  }
}

/// Applies every rule applicable to `path`.
std::vector<LintFinding> LintLexed(const std::string& path,
                                   const LexedFile& lexed,
                                   const AnalysisContext& context) {
  std::vector<LintFinding> findings;
  if (EndsWith(path, ".h")) {
    CheckIncludeGuard(path, lexed, findings);
  }
  const bool is_rng_home = path == "src/common/rng.h" ||
                           path == "src/common/rng.cc";
  if (!is_rng_home) {
    CheckBannedRandomness(path, lexed, findings);
  }
  const bool is_parallel_home = path == "src/common/parallel.h" ||
                                path == "src/common/parallel.cc";
  if (!is_parallel_home) {
    CheckNoRawThreads(path, lexed, findings);
  }
  const bool is_timing_home = path == "src/common/telemetry.h" ||
                              path == "src/common/telemetry.cc" ||
                              path == "bench/bench_util.h" ||
                              path == "bench/bench_util.cc";
  if (!is_timing_home) {
    CheckNoAdHocTiming(path, lexed, findings);
  }
  if (StartsWith(path, "src/stats/") || StartsWith(path, "src/ml/")) {
    CheckFloatEquality(path, lexed, findings);
  }
  if (StartsWith(path, "src/")) {
    CheckNoStdout(path, lexed, findings);
    CheckDeterministicIteration(path, lexed, context, findings);
    CheckLayering(path, lexed, findings);
  }
  CheckNoAssert(path, lexed, findings);
  CheckStatusDiscard(path, lexed, context, findings);
  CheckBatchApi(path, lexed, findings);
  return findings;
}

void CollectEdges(const std::string& path, const LexedFile& lexed,
                  std::map<std::pair<std::string, std::string>, size_t>*
                      edge_counts) {
  const std::string from = SourceModule(path);
  if (from.empty() || ModuleLayer(from) < 0) return;
  for (const Token& token : lexed.tokens) {
    const std::string to = IncludeTargetModule(token);
    if (to.empty()) continue;
    ++(*edge_counts)[{from, to}];
  }
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

const char* const kAllRuleIds[] = {
    "assert",       "batch-api", "det-iter",       "float-eq",
    "include-guard", "layering",  "rng",            "status-discard",
    "stdout",       "thread",    "timing",
};

}  // namespace

void CollectContext(const std::string& path_from_root,
                    const std::string& contents, AnalysisContext* context) {
  const LexedFile lexed = Lex(contents);
  CollectStatusFunctions(lexed, context);
  // Only library code feeds the det-iter traversal set: fixture and test
  // helpers may reuse names without making src/ loops nondeterministic.
  if (StartsWith(path_from_root, "src/")) {
    CollectUnorderedVariables(lexed, context);
  }
}

std::vector<LintFinding> LintFileContents(const std::string& path_from_root,
                                          const std::string& contents) {
  AnalysisContext context;
  const LexedFile lexed = Lex(contents);
  CollectStatusFunctions(lexed, &context);
  CollectUnorderedVariables(lexed, &context);
  return LintLexed(path_from_root, lexed, context);
}

std::vector<LintFinding> LintFileContentsWithContext(
    const std::string& path_from_root, const std::string& contents,
    const AnalysisContext& context) {
  return LintLexed(path_from_root, Lex(contents), context);
}

std::vector<LintFinding> LintFile(const std::string& path_from_root,
                                  const std::string& disk_path) {
  std::ifstream input(disk_path, std::ios::binary);
  if (!input) {
    return {{path_from_root, 0, "io", "could not read file"}};
  }
  std::ostringstream buffer;
  buffer << input.rdbuf();
  return LintFileContents(path_from_root, buffer.str());
}

TreeAnalysis AnalyzeTree(const std::string& repo_root) {
  namespace fs = std::filesystem;
  TreeAnalysis analysis;
  const fs::path root(repo_root);
  std::vector<std::pair<std::string, std::string>> files;  // path, contents
  for (const char* subdir : {"src", "tools", "bench", "tests"}) {
    const fs::path base = root / subdir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string extension = entry.path().extension().string();
      if (extension != ".h" && extension != ".cc") continue;
      const std::string relative =
          fs::relative(entry.path(), root).generic_string();
      // Fixtures are deliberately violating; they are linted one-by-one in
      // tools_lint_test, never as part of the tree gate.
      if (StartsWith(relative, "tests/lint_fixtures/")) continue;
      std::ifstream input(entry.path(), std::ios::binary);
      if (!input) {
        analysis.findings.push_back(
            {relative, 0, "io", "could not read file"});
        continue;
      }
      std::ostringstream buffer;
      buffer << input.rdbuf();
      files.emplace_back(relative, buffer.str());
    }
  }
  std::sort(files.begin(), files.end());
  analysis.num_files_scanned = files.size();

  // Pass 1: cross-file facts (Status-returning names, unordered variables)
  // and the module include graph.
  AnalysisContext context;
  std::map<std::pair<std::string, std::string>, size_t> edge_counts;
  for (const auto& [path, contents] : files) {
    CollectContext(path, contents, &context);
    CollectEdges(path, Lex(contents), &edge_counts);
  }
  for (const auto& [edge, count] : edge_counts) {
    analysis.edges.push_back(
        {edge.first, edge.second, count,
         IsAllowedModuleEdge(edge.first, edge.second)});
  }

  // Pass 2: every rule, with the tree-wide context.
  for (const auto& [path, contents] : files) {
    std::vector<LintFinding> file_findings =
        LintFileContentsWithContext(path, contents, context);
    analysis.findings.insert(analysis.findings.end(), file_findings.begin(),
                             file_findings.end());
  }
  std::sort(analysis.findings.begin(), analysis.findings.end(),
            [](const LintFinding& a, const LintFinding& b) {
              if (a.file != b.file) return a.file < b.file;
              return a.line < b.line;
            });
  return analysis;
}

std::vector<LintFinding> LintTree(const std::string& repo_root,
                                  size_t* num_files_scanned) {
  TreeAnalysis analysis = AnalyzeTree(repo_root);
  if (num_files_scanned != nullptr) {
    *num_files_scanned = analysis.num_files_scanned;
  }
  return std::move(analysis.findings);
}

int ModuleLayer(const std::string& module) {
  for (const ModuleLayerEntry& entry : kModuleLayers) {
    if (module == entry.name) return entry.layer;
  }
  return -1;
}

bool IsAllowedModuleEdge(const std::string& from, const std::string& to) {
  if (from == to) return true;
  const int from_layer = ModuleLayer(from);
  const int to_layer = ModuleLayer(to);
  if (from_layer < 0 || to_layer < 0) return false;
  if (to_layer < from_layer) return true;
  for (const auto& [extra_from, extra_to] : kIntraLayerEdges) {
    if (from == extra_from && to == extra_to) return true;
  }
  return false;
}

std::string ModuleGraphDot(const std::vector<ModuleEdge>& edges) {
  std::ostringstream out;
  out << "digraph bbv_modules {\n";
  out << "  rankdir = \"BT\";\n";
  out << "  node [shape = box, fontname = \"Helvetica\"];\n";
  int max_layer = 0;
  for (const ModuleLayerEntry& entry : kModuleLayers) {
    max_layer = std::max(max_layer, entry.layer);
  }
  for (int layer = 0; layer <= max_layer; ++layer) {
    out << "  { rank = same;";
    for (const ModuleLayerEntry& entry : kModuleLayers) {
      if (entry.layer == layer) out << " \"" << entry.name << "\";";
    }
    out << " }\n";
  }
  for (const ModuleEdge& edge : edges) {
    if (edge.from == edge.to) continue;  // self-edges add no information
    out << "  \"" << edge.from << "\" -> \"" << edge.to << "\" [label = \""
        << edge.count << "\"";
    if (!edge.allowed) {
      out << ", color = red, penwidth = 2.0";
    }
    out << "];\n";
  }
  out << "}\n";
  return out.str();
}

std::vector<std::string> FindModuleCycle(
    const std::vector<ModuleEdge>& edges) {
  std::map<std::string, std::vector<std::string>> adjacency;
  for (const ModuleEdge& edge : edges) {
    if (edge.from != edge.to) adjacency[edge.from].push_back(edge.to);
  }
  std::map<std::string, int> state;  // 0 unvisited, 1 in stack, 2 done
  std::vector<std::string> stack;
  std::vector<std::string> cycle;

  const std::function<bool(const std::string&)> visit =
      [&](const std::string& node) {
        state[node] = 1;
        stack.push_back(node);
        for (const std::string& next : adjacency[node]) {
          if (state[next] == 1) {
            const auto begin =
                std::find(stack.begin(), stack.end(), next);
            cycle.assign(begin, stack.end());
            cycle.push_back(next);
            return true;
          }
          if (state[next] == 0 && visit(next)) return true;
        }
        stack.pop_back();
        state[node] = 2;
        return false;
      };
  for (const auto& [node, unused] : adjacency) {
    if (state[node] == 0 && visit(node)) return cycle;
  }
  return {};
}

std::string FindingsJson(const TreeAnalysis& analysis) {
  std::map<std::string, size_t> rule_counts;
  for (const char* rule : kAllRuleIds) rule_counts[rule] = 0;
  for (const LintFinding& finding : analysis.findings) {
    ++rule_counts[finding.rule];
  }
  std::ostringstream out;
  out << "{\n";
  out << "  \"tool\": \"bbv_lint\",\n";
  out << "  \"files_scanned\": " << analysis.num_files_scanned << ",\n";
  out << "  \"num_findings\": " << analysis.findings.size() << ",\n";
  out << "  \"rule_counts\": {\n";
  size_t emitted = 0;
  for (const auto& [rule, count] : rule_counts) {
    out << "    \"" << rule << "\": " << count
        << (++emitted < rule_counts.size() ? "," : "") << "\n";
  }
  out << "  },\n";
  out << "  \"findings\": [\n";
  for (size_t i = 0; i < analysis.findings.size(); ++i) {
    const LintFinding& finding = analysis.findings[i];
    out << "    {\"file\": \"" << JsonEscape(finding.file)
        << "\", \"line\": " << finding.line << ", \"rule\": \""
        << JsonEscape(finding.rule) << "\", \"message\": \""
        << JsonEscape(finding.message) << "\"}"
        << (i + 1 < analysis.findings.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  return out.str();
}

std::string FormatFinding(const LintFinding& finding) {
  std::ostringstream out;
  out << finding.file << ":" << finding.line << ": [" << finding.rule << "] "
      << finding.message;
  return out.str();
}

}  // namespace bbv::tools
