#ifndef BBV_DATA_DATASET_H_
#define BBV_DATA_DATASET_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "data/dataframe.h"

namespace bbv::data {

/// A labeled relational dataset: a feature frame plus an integer label per
/// row (labels in [0, num_classes)). Matches the paper's {(t, y)} notation.
struct Dataset {
  DataFrame features;
  std::vector<int> labels;
  int num_classes = 2;
  /// Optional human-readable class names (e.g. {"<=50K", ">50K"}).
  std::vector<std::string> class_names;

  size_t NumRows() const { return labels.size(); }

  /// Subset of the dataset at the given row indices (order kept, repeats ok).
  Dataset SelectRows(const std::vector<size_t>& row_indices) const;
};

/// Disjoint random split into (first, second) with `fraction` of the rows in
/// the first part. Used for D_source / D_serving and D_train / D_test splits.
struct DatasetSplit {
  Dataset first;
  Dataset second;
};
DatasetSplit TrainTestSplit(const Dataset& dataset, double fraction,
                            common::Rng& rng);

/// Random permutation of the rows.
Dataset ShuffleRows(const Dataset& dataset, common::Rng& rng);

/// Downsamples the majority classes so all classes have equal counts
/// (the paper resamples to balanced classes so accuracy is interpretable).
Dataset BalanceClasses(const Dataset& dataset, common::Rng& rng);

/// Per-class row counts (size num_classes).
std::vector<size_t> ClassCounts(const Dataset& dataset);

}  // namespace bbv::data

#endif  // BBV_DATA_DATASET_H_
