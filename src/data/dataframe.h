#ifndef BBV_DATA_DATAFRAME_H_
#define BBV_DATA_DATAFRAME_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "data/column.h"

namespace bbv::data {

/// Column-major relational table, the C++ stand-in for the pandas dataframe
/// the paper's Python implementation uses. All columns have equal length.
/// Copying a DataFrame is a deep copy; error generators corrupt copies.
class DataFrame {
 public:
  DataFrame() = default;

  /// Number of rows (0 for an empty frame).
  size_t NumRows() const { return columns_.empty() ? 0 : columns_[0].size(); }
  size_t NumCols() const { return columns_.size(); }

  /// Appends a column; its length must match existing columns and its name
  /// must be unique.
  common::Status AddColumn(Column column);

  /// True if a column with this name exists.
  bool HasColumn(const std::string& name) const;

  /// Index of a named column.
  common::Result<size_t> ColumnIndex(const std::string& name) const;

  const Column& column(size_t index) const {
    BBV_CHECK_LT(index, columns_.size());
    return columns_[index];
  }
  Column& column(size_t index) {
    BBV_CHECK_LT(index, columns_.size());
    return columns_[index];
  }

  /// Named column access; aborts if absent (use HasColumn to probe).
  const Column& ColumnByName(const std::string& name) const;
  Column& ColumnByName(const std::string& name);

  /// Names of all columns, in order.
  std::vector<std::string> ColumnNames() const;

  /// Names of all columns of the given type.
  std::vector<std::string> ColumnNamesOfType(ColumnType type) const;

  /// New frame containing the given rows (indices may repeat; order kept).
  DataFrame SelectRows(const std::vector<size_t>& row_indices) const;

  /// New frame containing only the named columns, in the given order.
  common::Result<DataFrame> SelectColumns(
      const std::vector<std::string>& names) const;

  /// Appends the rows of `other`; schemas (names, types, order) must match.
  common::Status AppendRows(const DataFrame& other);

  /// Human-readable one-line schema, e.g. "age:numeric, job:categorical".
  std::string SchemaString() const;

  /// Pretty-prints up to `max_rows` rows (for examples and debugging).
  std::string Head(size_t max_rows = 5) const;

 private:
  std::vector<Column> columns_;
};

}  // namespace bbv::data

#endif  // BBV_DATA_DATAFRAME_H_
