#ifndef BBV_DATA_CSV_H_
#define BBV_DATA_CSV_H_

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "data/dataframe.h"

namespace bbv::data {

/// Writes a frame as RFC-4180-style CSV (header row; NA cells empty; fields
/// containing commas/quotes/newlines are quoted). Image columns are not
/// representable and yield an error.
common::Status WriteCsv(const DataFrame& frame, std::ostream& out);
common::Status WriteCsvFile(const DataFrame& frame, const std::string& path);

/// Reads CSV produced by WriteCsv. `schema` gives (name, type) for each
/// column in file order; empty fields become NA.
common::Result<DataFrame> ReadCsv(
    std::istream& in,
    const std::vector<std::pair<std::string, ColumnType>>& schema);
common::Result<DataFrame> ReadCsvFile(
    const std::string& path,
    const std::vector<std::pair<std::string, ColumnType>>& schema);

}  // namespace bbv::data

#endif  // BBV_DATA_CSV_H_
