#include "data/dataset.h"

#include <algorithm>

namespace bbv::data {

Dataset Dataset::SelectRows(const std::vector<size_t>& row_indices) const {
  Dataset result;
  result.features = features.SelectRows(row_indices);
  result.labels.reserve(row_indices.size());
  for (size_t row : row_indices) {
    BBV_CHECK_LT(row, labels.size());
    result.labels.push_back(labels[row]);
  }
  result.num_classes = num_classes;
  result.class_names = class_names;
  return result;
}

DatasetSplit TrainTestSplit(const Dataset& dataset, double fraction,
                            common::Rng& rng) {
  BBV_CHECK(fraction >= 0.0 && fraction <= 1.0);
  std::vector<size_t> order = rng.Permutation(dataset.NumRows());
  const size_t cut = static_cast<size_t>(
      static_cast<double>(order.size()) * fraction);
  std::vector<size_t> first_rows(order.begin(), order.begin() + cut);
  std::vector<size_t> second_rows(order.begin() + cut, order.end());
  return DatasetSplit{dataset.SelectRows(first_rows),
                      dataset.SelectRows(second_rows)};
}

Dataset ShuffleRows(const Dataset& dataset, common::Rng& rng) {
  return dataset.SelectRows(rng.Permutation(dataset.NumRows()));
}

Dataset BalanceClasses(const Dataset& dataset, common::Rng& rng) {
  std::vector<std::vector<size_t>> rows_per_class(dataset.num_classes);
  for (size_t row = 0; row < dataset.labels.size(); ++row) {
    const int label = dataset.labels[row];
    BBV_CHECK(label >= 0 && label < dataset.num_classes);
    rows_per_class[label].push_back(row);
  }
  size_t min_count = dataset.NumRows();
  for (const auto& rows : rows_per_class) {
    min_count = std::min(min_count, rows.size());
  }
  std::vector<size_t> selected;
  for (auto& rows : rows_per_class) {
    rng.Shuffle(rows);
    selected.insert(selected.end(), rows.begin(), rows.begin() + min_count);
  }
  rng.Shuffle(selected);
  return dataset.SelectRows(selected);
}

std::vector<size_t> ClassCounts(const Dataset& dataset) {
  std::vector<size_t> counts(dataset.num_classes, 0);
  for (int label : dataset.labels) {
    BBV_CHECK(label >= 0 && label < dataset.num_classes);
    ++counts[label];
  }
  return counts;
}

}  // namespace bbv::data
