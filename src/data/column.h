#ifndef BBV_DATA_COLUMN_H_
#define BBV_DATA_COLUMN_H_

#include <string>
#include <vector>

#include "data/cell_value.h"

namespace bbv::data {

/// Logical type of a column. The type drives both featurization (scaling vs.
/// one-hot vs. n-gram hashing vs. pixel flattening) and which error
/// generators apply.
enum class ColumnType {
  kNumeric,
  kCategorical,
  kText,
  kImage,
};

/// Returns "numeric", "categorical", "text" or "image".
const char* ColumnTypeToString(ColumnType type);

/// A named, typed column of cells. Cells may be NA regardless of type.
class Column {
 public:
  Column(std::string name, ColumnType type)
      : name_(std::move(name)), type_(type) {}

  Column(std::string name, ColumnType type, std::vector<CellValue> cells)
      : name_(std::move(name)), type_(type), cells_(std::move(cells)) {}

  /// Convenience constructor for a numeric column.
  static Column Numeric(std::string name, const std::vector<double>& values);

  /// Convenience constructor for a categorical column.
  static Column Categorical(std::string name,
                            const std::vector<std::string>& values);

  /// Convenience constructor for a text column.
  static Column Text(std::string name, const std::vector<std::string>& values);

  /// Convenience constructor for an image column.
  static Column Image(std::string name,
                      const std::vector<std::vector<double>>& images);

  const std::string& name() const { return name_; }
  ColumnType type() const { return type_; }
  size_t size() const { return cells_.size(); }

  const CellValue& cell(size_t row) const {
    BBV_DCHECK(row < cells_.size());
    return cells_[row];
  }
  CellValue& cell(size_t row) {
    BBV_DCHECK(row < cells_.size());
    return cells_[row];
  }

  void Append(CellValue value) { cells_.push_back(std::move(value)); }

  const std::vector<CellValue>& cells() const { return cells_; }

  /// Number of NA cells.
  size_t CountNa() const;

  /// Non-NA numeric values (requires a numeric column).
  std::vector<double> NumericValues() const;

  /// Distinct non-NA string values in first-seen order (categorical/text).
  std::vector<std::string> DistinctStrings() const;

 private:
  std::string name_;
  ColumnType type_;
  std::vector<CellValue> cells_;
};

}  // namespace bbv::data

#endif  // BBV_DATA_COLUMN_H_
