#ifndef BBV_DATA_CELL_VALUE_H_
#define BBV_DATA_CELL_VALUE_H_

#include <string>
#include <variant>
#include <vector>

#include "common/check.h"

namespace bbv::data {

/// Marker type for a missing value (NA / NULL).
struct NaValue {
  bool operator==(const NaValue&) const { return true; }
};

/// A single relational cell: missing, a number, a string (categorical or
/// free text), or an image (row-major pixel intensities in [0, 1]).
class CellValue {
 public:
  /// Missing value.
  CellValue() : value_(NaValue{}) {}

  /// Numeric cell.
  CellValue(double value)  // NOLINT(google-explicit-constructor)
      : value_(value) {}

  /// String cell (categorical level or text).
  CellValue(std::string value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}
  CellValue(const char* value)  // NOLINT(google-explicit-constructor)
      : value_(std::string(value)) {}

  /// Image cell.
  CellValue(std::vector<double> pixels)  // NOLINT(google-explicit-constructor)
      : value_(std::move(pixels)) {}

  static CellValue Na() { return CellValue(); }

  bool is_na() const { return std::holds_alternative<NaValue>(value_); }
  bool is_numeric() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_image() const {
    return std::holds_alternative<std::vector<double>>(value_);
  }

  double AsDouble() const {
    BBV_CHECK(is_numeric()) << "cell is not numeric";
    return std::get<double>(value_);
  }
  const std::string& AsString() const {
    BBV_CHECK(is_string()) << "cell is not a string";
    return std::get<std::string>(value_);
  }
  const std::vector<double>& AsImage() const {
    BBV_CHECK(is_image()) << "cell is not an image";
    return std::get<std::vector<double>>(value_);
  }
  std::vector<double>& MutableImage() {
    BBV_CHECK(is_image()) << "cell is not an image";
    return std::get<std::vector<double>>(value_);
  }

  bool operator==(const CellValue& other) const { return value_ == other.value_; }

  /// Readable rendering: "NA", the number, the string, or "<image:N>".
  std::string ToString() const;

 private:
  std::variant<NaValue, double, std::string, std::vector<double>> value_;
};

}  // namespace bbv::data

#endif  // BBV_DATA_CELL_VALUE_H_
