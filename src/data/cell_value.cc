#include "data/cell_value.h"

#include <sstream>

namespace bbv::data {

std::string CellValue::ToString() const {
  if (is_na()) return "NA";
  if (is_numeric()) {
    std::ostringstream os;
    os << AsDouble();
    return os.str();
  }
  if (is_string()) return AsString();
  std::ostringstream os;
  os << "<image:" << AsImage().size() << ">";
  return os.str();
}

}  // namespace bbv::data
