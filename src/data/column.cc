#include "data/column.h"

#include <set>

namespace bbv::data {

const char* ColumnTypeToString(ColumnType type) {
  switch (type) {
    case ColumnType::kNumeric:
      return "numeric";
    case ColumnType::kCategorical:
      return "categorical";
    case ColumnType::kText:
      return "text";
    case ColumnType::kImage:
      return "image";
  }
  return "unknown";
}

Column Column::Numeric(std::string name, const std::vector<double>& values) {
  std::vector<CellValue> cells;
  cells.reserve(values.size());
  for (double v : values) cells.emplace_back(v);
  return Column(std::move(name), ColumnType::kNumeric, std::move(cells));
}

Column Column::Categorical(std::string name,
                           const std::vector<std::string>& values) {
  std::vector<CellValue> cells;
  cells.reserve(values.size());
  for (const auto& v : values) cells.emplace_back(v);
  return Column(std::move(name), ColumnType::kCategorical, std::move(cells));
}

Column Column::Text(std::string name, const std::vector<std::string>& values) {
  std::vector<CellValue> cells;
  cells.reserve(values.size());
  for (const auto& v : values) cells.emplace_back(v);
  return Column(std::move(name), ColumnType::kText, std::move(cells));
}

Column Column::Image(std::string name,
                     const std::vector<std::vector<double>>& images) {
  std::vector<CellValue> cells;
  cells.reserve(images.size());
  for (const auto& v : images) cells.emplace_back(v);
  return Column(std::move(name), ColumnType::kImage, std::move(cells));
}

size_t Column::CountNa() const {
  size_t count = 0;
  for (const auto& cell : cells_) {
    if (cell.is_na()) ++count;
  }
  return count;
}

std::vector<double> Column::NumericValues() const {
  BBV_CHECK(type_ == ColumnType::kNumeric)
      << "NumericValues on column '" << name_ << "' of type "
      << ColumnTypeToString(type_);
  std::vector<double> values;
  values.reserve(cells_.size());
  for (const auto& cell : cells_) {
    if (cell.is_numeric()) values.push_back(cell.AsDouble());
  }
  return values;
}

std::vector<std::string> Column::DistinctStrings() const {
  std::vector<std::string> result;
  std::set<std::string> seen;
  for (const auto& cell : cells_) {
    if (!cell.is_string()) continue;
    if (seen.insert(cell.AsString()).second) {
      result.push_back(cell.AsString());
    }
  }
  return result;
}

}  // namespace bbv::data
