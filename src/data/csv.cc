#include "data/csv.h"

#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>

namespace bbv::data {

namespace {

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

std::string QuoteField(const std::string& field) {
  if (!NeedsQuoting(field)) return field;
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

/// Splits one CSV record honoring quoted fields. Assumes the record contains
/// no embedded newlines (WriteCsv never emits them unquoted; quoted newlines
/// are not supported by this reader).
std::vector<std::string> ParseRecord(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

}  // namespace

common::Status WriteCsv(const DataFrame& frame, std::ostream& out) {
  for (size_t col = 0; col < frame.NumCols(); ++col) {
    if (frame.column(col).type() == ColumnType::kImage) {
      return common::Status::InvalidArgument(
          "image column '" + frame.column(col).name() +
          "' cannot be written as CSV");
    }
  }
  for (size_t col = 0; col < frame.NumCols(); ++col) {
    if (col > 0) out << ',';
    out << QuoteField(frame.column(col).name());
  }
  out << '\n';
  for (size_t row = 0; row < frame.NumRows(); ++row) {
    for (size_t col = 0; col < frame.NumCols(); ++col) {
      if (col > 0) out << ',';
      const CellValue& cell = frame.column(col).cell(row);
      if (cell.is_na()) continue;
      if (cell.is_numeric()) {
        std::ostringstream os;
        os.precision(17);
        os << cell.AsDouble();
        out << os.str();
      } else {
        out << QuoteField(cell.AsString());
      }
    }
    out << '\n';
  }
  if (!out) return common::Status::IoError("failed writing CSV stream");
  return common::Status::OK();
}

common::Status WriteCsvFile(const DataFrame& frame, const std::string& path) {
  std::ofstream out(path);
  if (!out) return common::Status::IoError("cannot open '" + path + "'");
  return WriteCsv(frame, out);
}

common::Result<DataFrame> ReadCsv(
    std::istream& in,
    const std::vector<std::pair<std::string, ColumnType>>& schema) {
  std::string header;
  if (!std::getline(in, header)) {
    return common::Status::IoError("empty CSV input");
  }
  const std::vector<std::string> names = ParseRecord(header);
  if (names.size() != schema.size()) {
    std::ostringstream os;
    os << "CSV has " << names.size() << " columns, schema expects "
       << schema.size();
    return common::Status::InvalidArgument(os.str());
  }
  std::vector<Column> columns;
  columns.reserve(schema.size());
  for (const auto& [name, type] : schema) {
    if (type == ColumnType::kImage) {
      return common::Status::InvalidArgument(
          "image columns cannot be read from CSV");
    }
    columns.emplace_back(name, type);
  }
  std::string line;
  size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    const std::vector<std::string> fields = ParseRecord(line);
    if (fields.size() != schema.size()) {
      std::ostringstream os;
      os << "line " << line_number << " has " << fields.size()
         << " fields, expected " << schema.size();
      return common::Status::InvalidArgument(os.str());
    }
    for (size_t col = 0; col < fields.size(); ++col) {
      const std::string& field = fields[col];
      if (field.empty()) {
        columns[col].Append(CellValue::Na());
      } else if (schema[col].second == ColumnType::kNumeric) {
        double value = 0.0;
        const auto [ptr, ec] = std::from_chars(
            field.data(), field.data() + field.size(), value);
        if (ec != std::errc() || ptr != field.data() + field.size()) {
          std::ostringstream os;
          os << "line " << line_number << ": '" << field
             << "' is not numeric in column '" << schema[col].first << "'";
          return common::Status::InvalidArgument(os.str());
        }
        columns[col].Append(CellValue(value));
      } else {
        columns[col].Append(CellValue(field));
      }
    }
  }
  DataFrame frame;
  for (auto& column : columns) {
    BBV_RETURN_NOT_OK(frame.AddColumn(std::move(column)));
  }
  return frame;
}

common::Result<DataFrame> ReadCsvFile(
    const std::string& path,
    const std::vector<std::pair<std::string, ColumnType>>& schema) {
  std::ifstream in(path);
  if (!in) return common::Status::IoError("cannot open '" + path + "'");
  return ReadCsv(in, schema);
}

}  // namespace bbv::data
