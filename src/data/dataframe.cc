#include "data/dataframe.h"

#include <algorithm>
#include <sstream>

namespace bbv::data {

common::Status DataFrame::AddColumn(Column column) {
  if (HasColumn(column.name())) {
    return common::Status::AlreadyExists("column '" + column.name() +
                                         "' already exists");
  }
  if (!columns_.empty() && column.size() != NumRows()) {
    std::ostringstream os;
    os << "column '" << column.name() << "' has " << column.size()
       << " rows, expected " << NumRows();
    return common::Status::InvalidArgument(os.str());
  }
  columns_.push_back(std::move(column));
  return common::Status::OK();
}

bool DataFrame::HasColumn(const std::string& name) const {
  return std::any_of(columns_.begin(), columns_.end(),
                     [&](const Column& c) { return c.name() == name; });
}

common::Result<size_t> DataFrame::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name() == name) return i;
  }
  return common::Status::NotFound("no column named '" + name + "'");
}

const Column& DataFrame::ColumnByName(const std::string& name) const {
  auto index = ColumnIndex(name);
  BBV_CHECK(index.ok()) << index.status().ToString();
  return columns_[*index];
}

Column& DataFrame::ColumnByName(const std::string& name) {
  auto index = ColumnIndex(name);
  BBV_CHECK(index.ok()) << index.status().ToString();
  return columns_[*index];
}

std::vector<std::string> DataFrame::ColumnNames() const {
  std::vector<std::string> names;
  names.reserve(columns_.size());
  for (const auto& column : columns_) names.push_back(column.name());
  return names;
}

std::vector<std::string> DataFrame::ColumnNamesOfType(ColumnType type) const {
  std::vector<std::string> names;
  for (const auto& column : columns_) {
    if (column.type() == type) names.push_back(column.name());
  }
  return names;
}

DataFrame DataFrame::SelectRows(const std::vector<size_t>& row_indices) const {
  DataFrame result;
  for (const auto& column : columns_) {
    Column selected(column.name(), column.type());
    for (size_t row : row_indices) {
      BBV_CHECK_LT(row, column.size());
      selected.Append(column.cell(row));
    }
    BBV_CHECK(result.AddColumn(std::move(selected)).ok());
  }
  return result;
}

common::Result<DataFrame> DataFrame::SelectColumns(
    const std::vector<std::string>& names) const {
  DataFrame result;
  for (const auto& name : names) {
    BBV_ASSIGN_OR_RETURN(size_t index, ColumnIndex(name));
    BBV_RETURN_NOT_OK(result.AddColumn(columns_[index]));
  }
  return result;
}

common::Status DataFrame::AppendRows(const DataFrame& other) {
  if (other.NumCols() != NumCols()) {
    return common::Status::InvalidArgument("schema mismatch in AppendRows");
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name() != other.columns_[i].name() ||
        columns_[i].type() != other.columns_[i].type()) {
      return common::Status::InvalidArgument(
          "schema mismatch in AppendRows at column '" + columns_[i].name() +
          "'");
    }
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    for (const auto& cell : other.columns_[i].cells()) {
      columns_[i].Append(cell);
    }
  }
  return common::Status::OK();
}

std::string DataFrame::SchemaString() const {
  std::ostringstream os;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) os << ", ";
    os << columns_[i].name() << ":" << ColumnTypeToString(columns_[i].type());
  }
  return os.str();
}

std::string DataFrame::Head(size_t max_rows) const {
  std::ostringstream os;
  os << SchemaString() << "\n";
  const size_t limit = std::min(max_rows, NumRows());
  for (size_t row = 0; row < limit; ++row) {
    for (size_t col = 0; col < columns_.size(); ++col) {
      if (col > 0) os << " | ";
      os << columns_[col].cell(row).ToString();
    }
    os << "\n";
  }
  if (NumRows() > limit) {
    os << "... (" << NumRows() - limit << " more rows)\n";
  }
  return os.str();
}

}  // namespace bbv::data
