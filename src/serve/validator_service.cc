#include "serve/validator_service.h"

#include <algorithm>
#include <span>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "common/telemetry.h"

namespace bbv::serve {

common::Status ValidatorService::CreateTenant(
    const std::string& model_id,
    std::shared_ptr<const core::PerformancePredictor> predictor,
    const TenantOptions& options) {
  if (model_id.empty()) {
    return common::Status::InvalidArgument("model id must be non-empty");
  }
  // Build the per-tenant machinery before taking the lock; the factories
  // carry all the validation (trained predictor, sane resolutions, ...).
  BBV_ASSIGN_OR_RETURN(StreamingScorer scorer,
                       StreamingScorer::Create(predictor, options.scorer));
  std::optional<core::ModelMonitor> monitor;
  if (options.window_batches > 0) {
    core::ModelMonitor::Options monitor_options;
    monitor_options.alarm_threshold = options.alarm_threshold;
    monitor_options.alarm_policy = options.alarm_policy;
    monitor_options.history_limit = options.history_limit;
    monitor_options.window_batches = options.window_batches;
    monitor_options.sketch_resolution_bits = options.monitor_resolution_bits;
    BBV_ASSIGN_OR_RETURN(monitor,
                         core::ModelMonitor::CreateForProba(
                             model_id, predictor, monitor_options));
  }
  const common::MutexLock lock(mutex_);
  if (tenants_.find(model_id) != tenants_.end()) {
    return common::Status::AlreadyExists("tenant '" + model_id +
                                         "' is already registered");
  }
  Tenant& tenant = tenants_[model_id];
  tenant.predictor = std::move(predictor);
  tenant.options = options;
  tenant.scorer.emplace(std::move(scorer));
  tenant.monitor = std::move(monitor);
  tenant.last_touch = ++touch_clock_;
  common::telemetry::IncrementCounter("serve.service.tenants_created");
  EnforceResidencyCap();
  return common::Status::OK();
}

common::Status ValidatorService::RemoveTenant(const std::string& model_id) {
  const common::MutexLock lock(mutex_);
  const auto it = tenants_.find(model_id);
  if (it == tenants_.end()) {
    return common::Status::NotFound("unknown tenant '" + model_id + "'");
  }
  tenants_.erase(it);
  common::telemetry::IncrementCounter("serve.service.tenants_removed");
  return common::Status::OK();
}

uint64_t ValidatorService::Submit(const std::string& model_id,
                                  linalg::Matrix probabilities) {
  const common::MutexLock lock(mutex_);
  PendingOp op;
  op.request_id = next_request_id_++;
  op.model_id = model_id;
  op.probabilities = std::move(probabilities);
  pending_.push_back(std::move(op));
  common::telemetry::IncrementCounter("serve.service.requests");
  return pending_.back().request_id;
}

uint64_t ValidatorService::SubmitSwap(
    const std::string& model_id,
    std::shared_ptr<const core::PerformancePredictor> predictor) {
  const common::MutexLock lock(mutex_);
  PendingOp op;
  op.request_id = next_request_id_++;
  op.model_id = model_id;
  op.is_swap = true;
  op.predictor = std::move(predictor);
  pending_.push_back(std::move(op));
  common::telemetry::IncrementCounter("serve.service.swap_requests");
  return pending_.back().request_id;
}

common::Status ValidatorService::ApplySwap(
    Tenant& tenant,
    std::shared_ptr<const core::PerformancePredictor> predictor) {
  BBV_CHECK(tenant.scorer.has_value()) << "swap on a non-resident tenant";
  const std::shared_ptr<const core::PerformancePredictor> previous =
      tenant.scorer->shared_predictor();
  BBV_RETURN_NOT_OK(tenant.scorer->SwapPredictor(predictor));
  if (tenant.monitor.has_value()) {
    const common::Status monitor_swap =
        tenant.monitor->SwapPredictor(predictor);
    if (!monitor_swap.ok()) {
      // Keep scorer and monitor on the same predictor: roll the scorer
      // back (same class count, so this cannot fail) and reject the swap.
      BBV_CHECK(tenant.scorer->SwapPredictor(previous).ok());
      return monitor_swap;
    }
  }
  tenant.predictor = std::move(predictor);
  ++tenant.epoch;
  common::telemetry::IncrementCounter("serve.service.swaps");
  return common::Status::OK();
}

void ValidatorService::ProcessTenantOps(
    Tenant& tenant, const std::vector<PendingOp>& ops,
    const std::vector<size_t>& op_indices,
    std::vector<ScoreResponse>& responses) {
  // Indices into op_indices whose ingest succeeded but whose estimate is
  // still pending, plus their post-ingest percentile feature rows. One
  // kernel batch call scores the whole run when the segment closes (at a
  // hot-swap or at the end of the tenant's queue).
  std::vector<size_t> run;
  std::vector<std::vector<double>> run_features;
  const auto close_segment = [&]() {
    if (run.empty()) return;
    const size_t dimension = tenant.predictor->feature_dimension();
    linalg::Matrix statistics(run.size(), dimension);
    for (size_t i = 0; i < run.size(); ++i) {
      BBV_CHECK(run_features[i].size() == dimension);
      std::copy(run_features[i].begin(), run_features[i].end(),
                statistics.RowData(i));
    }
    std::vector<core::ScoreEstimate> estimates(run.size());
    // The coalesced path: one ForestKernel batch call for the whole run,
    // bit-identical per row (point and interval) to
    // StreamingScorer::EstimateScore.
    const common::Status scored = tenant.predictor->EstimateScoresFromStatistics(
        statistics, std::span<core::ScoreEstimate>(estimates));
    for (size_t i = 0; i < run.size(); ++i) {
      ScoreResponse& response = responses[op_indices[run[i]]];
      if (scored.ok()) {
        response.estimate = estimates[i];
      } else {
        response.status = scored;
      }
    }
    common::telemetry::IncrementCounter("serve.service.kernel_batches");
    common::telemetry::IncrementCounter("serve.service.coalesced_requests",
                                        run.size());
    run.clear();
    run_features.clear();
  };

  for (size_t position = 0; position < op_indices.size(); ++position) {
    const PendingOp& op = ops[op_indices[position]];
    ScoreResponse& response = responses[op_indices[position]];
    if (op.is_swap) {
      // Requests submitted before the swap must be scored by the predictor
      // they were submitted under; close their batch before switching.
      close_segment();
      response.status = ApplySwap(tenant, op.predictor);
      response.epoch = tenant.epoch;
      continue;
    }
    const common::Status ingested = tenant.scorer->Ingest(op.probabilities);
    if (!ingested.ok()) {
      common::telemetry::IncrementCounter("serve.service.request_errors");
      response.status = ingested;
      continue;
    }
    response.rows_ingested = tenant.scorer->rows_ingested();
    response.epoch = tenant.epoch;
    const common::Result<std::vector<double>> features =
        tenant.scorer->PercentileFeatures();
    if (!features.ok()) {
      response.status = features.status();
      continue;
    }
    run.push_back(position);
    run_features.push_back(*features);
    if (tenant.monitor.has_value()) {
      response.monitored = true;
      const common::Result<core::ModelMonitor::BatchReport> report =
          tenant.monitor->Observe(op.probabilities);
      if (report.ok()) {
        response.alarm = report->alarm;
        response.windowed_estimate = report->windowed_estimate;
        response.windowed_relative_drop = report->windowed_relative_drop;
        response.windowed_certified_drop = report->windowed_certified_drop;
      }
      // A monitor failure is not a scoring failure: the estimate is still
      // delivered, the window just skips the batch (same contract as a
      // standalone ModelMonitor rejecting a batch).
    }
  }
  close_segment();
}

std::vector<ValidatorService::ScoreResponse> ValidatorService::Flush() {
  const common::telemetry::TraceSpan span("serve.service.flush");
  const common::MutexLock lock(mutex_);
  std::vector<PendingOp> ops;
  ops.swap(pending_);
  std::vector<ScoreResponse> responses(ops.size());
  if (ops.empty()) return responses;

  // Group the drained queue by tenant, preserving submission order within
  // each tenant; `order` remembers first-appearance order so the fan-out
  // below and the LRU stamps are deterministic.
  std::map<std::string, std::vector<size_t>> by_tenant;
  std::vector<std::string> order;
  for (size_t i = 0; i < ops.size(); ++i) {
    responses[i].request_id = ops[i].request_id;
    responses[i].model_id = ops[i].model_id;
    responses[i].is_swap = ops[i].is_swap;
    auto [it, inserted] = by_tenant.try_emplace(ops[i].model_id);
    if (inserted) order.push_back(ops[i].model_id);
    it->second.push_back(i);
  }

  // Resolve tenants and rehydrate serially (rehydration mutates the
  // registry and the order of rehydrations must not depend on BBV_THREADS).
  struct TenantWork {
    Tenant* tenant = nullptr;
    const std::vector<size_t>* op_indices = nullptr;
  };
  std::vector<TenantWork> work;
  work.reserve(order.size());
  for (const std::string& model_id : order) {
    const std::vector<size_t>& op_indices = by_tenant.at(model_id);
    const auto it = tenants_.find(model_id);
    common::Status resolve = common::Status::OK();
    if (it == tenants_.end()) {
      resolve = common::Status::NotFound("unknown tenant '" + model_id + "'");
    } else {
      resolve = EnsureResident(it->second);
    }
    if (!resolve.ok()) {
      for (const size_t i : op_indices) responses[i].status = resolve;
      common::telemetry::IncrementCounter("serve.service.request_errors",
                                          op_indices.size());
      continue;
    }
    it->second.last_touch = ++touch_clock_;
    work.push_back({&it->second, &op_indices});
  }

  // Fan the tenants out over the shared pool: each task owns one tenant's
  // state and disjoint response slots, so results are byte-identical at
  // every BBV_THREADS setting. Per-op statuses carry all failures, so the
  // tasks themselves never fail.
  const common::Status fanned_out = common::ParallelFor(
      work.size(), [&](size_t t) -> common::Status {
        ProcessTenantOps(*work[t].tenant, ops, *work[t].op_indices,
                         responses);
        return common::Status::OK();
      });
  BBV_CHECK(fanned_out.ok()) << fanned_out.ToString();

  EnforceResidencyCap();
  common::telemetry::IncrementCounter("serve.service.flushes");
  return responses;
}

ValidatorService::ScoreResponse ValidatorService::Score(
    const std::string& model_id, linalg::Matrix probabilities) {
  const uint64_t request_id = Submit(model_id, std::move(probabilities));
  const std::vector<ScoreResponse> responses = Flush();
  for (const ScoreResponse& response : responses) {
    if (response.request_id == request_id) return response;
  }
  // Another concurrent Flush drained our request; its responses are lost to
  // us by contract (see the header), so report the race explicitly.
  ScoreResponse response;
  response.request_id = request_id;
  response.model_id = model_id;
  response.status = common::Status::Internal(
      "request was flushed by a concurrent caller; use Submit/Flush to "
      "collect responses under concurrency");
  return response;
}

common::Result<core::ScoreEstimate> ValidatorService::EstimateScore(
    const std::string& model_id) {
  const common::MutexLock lock(mutex_);
  const auto it = tenants_.find(model_id);
  if (it == tenants_.end()) {
    return common::Status::NotFound("unknown tenant '" + model_id + "'");
  }
  BBV_RETURN_NOT_OK(EnsureResident(it->second));
  it->second.last_touch = ++touch_clock_;
  return it->second.scorer->EstimateScore();
}

common::Status ValidatorService::SaveTenantState(const std::string& model_id,
                                                 std::ostream& out) const {
  const common::MutexLock lock(mutex_);
  const auto it = tenants_.find(model_id);
  if (it == tenants_.end()) {
    return common::Status::NotFound("unknown tenant '" + model_id + "'");
  }
  if (it->second.scorer.has_value()) {
    return it->second.scorer->SaveState(out);
  }
  // Evicted: the cold store already holds the canonical SaveState bytes.
  out.write(it->second.cold_state.data(),
            static_cast<std::streamsize>(it->second.cold_state.size()));
  if (!out.good()) {
    return common::Status::Internal("failed to write tenant state");
  }
  return common::Status::OK();
}

common::Result<ValidatorService::TenantInfo> ValidatorService::GetTenantInfo(
    const std::string& model_id) const {
  const common::MutexLock lock(mutex_);
  const auto it = tenants_.find(model_id);
  if (it == tenants_.end()) {
    return common::Status::NotFound("unknown tenant '" + model_id + "'");
  }
  const Tenant& tenant = it->second;
  TenantInfo info;
  info.epoch = tenant.epoch;
  info.resident = tenant.scorer.has_value();
  info.monitored = tenant.monitor.has_value();
  if (tenant.monitor.has_value()) {
    info.monitor_alarms = tenant.monitor->alarms_raised();
  }
  if (tenant.scorer.has_value()) {
    info.rows_ingested = tenant.scorer->rows_ingested();
  } else {
    // Parsing the cold bytes just for a row count is not worth it; an
    // evicted tenant reports the rows at eviction time instead.
    info.rows_ingested = tenant.cold_rows;
  }
  return info;
}

size_t ValidatorService::num_tenants() const {
  const common::MutexLock lock(mutex_);
  return tenants_.size();
}

size_t ValidatorService::num_resident() const {
  const common::MutexLock lock(mutex_);
  size_t resident = 0;
  for (const auto& [model_id, tenant] : tenants_) {
    if (tenant.scorer.has_value()) ++resident;
  }
  return resident;
}

size_t ValidatorService::num_pending() const {
  const common::MutexLock lock(mutex_);
  return pending_.size();
}

common::Status ValidatorService::EnsureResident(Tenant& tenant) {
  if (tenant.scorer.has_value()) return common::Status::OK();
  BBV_ASSIGN_OR_RETURN(
      StreamingScorer scorer,
      StreamingScorer::Create(tenant.predictor, tenant.options.scorer));
  std::istringstream in(tenant.cold_state);
  BBV_RETURN_NOT_OK(scorer.LoadState(in));
  tenant.scorer.emplace(std::move(scorer));
  tenant.cold_state.clear();
  tenant.cold_state.shrink_to_fit();
  common::telemetry::IncrementCounter("serve.service.rehydrations");
  return common::Status::OK();
}

void ValidatorService::EnforceResidencyCap() {
  if (options_.max_resident_tenants == 0) return;
  while (true) {
    size_t resident = 0;
    std::map<std::string, Tenant>::iterator coldest = tenants_.end();
    for (auto it = tenants_.begin(); it != tenants_.end(); ++it) {
      if (!it->second.scorer.has_value()) continue;
      ++resident;
      if (coldest == tenants_.end() ||
          it->second.last_touch < coldest->second.last_touch) {
        coldest = it;
      }
    }
    if (resident <= options_.max_resident_tenants ||
        coldest == tenants_.end()) {
      return;
    }
    Tenant& tenant = coldest->second;
    std::ostringstream out;
    const common::Status saved = tenant.scorer->SaveState(out);
    if (!saved.ok()) {
      // Never drop state we failed to serialize; leave the tenant resident
      // (the cap is a memory target, not a correctness invariant).
      common::telemetry::IncrementCounter("serve.service.evict_failures");
      return;
    }
    tenant.cold_rows = tenant.scorer->rows_ingested();
    tenant.cold_state = std::move(out).str();
    tenant.scorer.reset();
    if (tenant.monitor.has_value()) {
      // Epoch-boundary contract: a window must not straddle an eviction
      // (rehydration restores sketch state, not the monitor ring).
      tenant.monitor->ClearWindow();
    }
    common::telemetry::IncrementCounter("serve.service.evictions");
  }
}

}  // namespace bbv::serve
