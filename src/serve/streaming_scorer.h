#ifndef BBV_SERVE_STREAMING_SCORER_H_
#define BBV_SERVE_STREAMING_SCORER_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/performance_predictor.h"
#include "data/dataframe.h"
#include "linalg/matrix.h"
#include "ml/black_box.h"
#include "stats/quantile_sketch.h"

namespace bbv::serve {

/// Streaming counterpart of the paper's Algorithm 2 for heavy-traffic
/// serving: where PerformancePredictor::Estimate assumes the whole serving
/// batch is materialized before the percentile features are computed, this
/// scorer consumes an unbounded stream of prediction mini-batches and keeps
/// only O(num_classes * 2^resolution_bits) sketch state — no rows are
/// retained. At any point EstimateScore() reconstructs the percentile
/// feature vector from the per-class quantile sketches and runs the trained
/// regressor on it.
///
/// Determinism: the sketches are pure functions of the ingested multiset
/// (see stats::QuantileSketch), so the feature vector — and hence the
/// estimate and the serialized state — is byte-identical no matter how the
/// stream is split into mini-batches, in which order shard scorers are
/// merged via MergeFrom, or what BBV_THREADS is set to.
///
/// Accuracy: each percentile feature is within ValueErrorBound() (half a
/// grid cell, 2^-13 ~ 1.2e-4 at the default resolution) of the exact
/// batch-path feature, so streamed estimates track batch estimates to
/// within the regressor's sensitivity to that perturbation.
class StreamingScorer {
 public:
  struct Options {
    /// Per-class sketch resolution (see QuantileSketch::Options); class
    /// probabilities are sketched over [0, 1].
    int resolution_bits = 12;
  };

  /// Validating factory: requires a trained predictor and a resolution in
  /// [1, 24].
  static common::Result<StreamingScorer> Create(
      core::PerformancePredictor predictor, Options options);
  static common::Result<StreamingScorer> Create(
      core::PerformancePredictor predictor) {
    return Create(std::move(predictor), Options{});
  }
  /// Shared-ownership variant for the multi-tenant service, where one
  /// retrained predictor is deployed to many tenants without copying the
  /// forest per tenant. Rejects a null or untrained predictor.
  static common::Result<StreamingScorer> Create(
      std::shared_ptr<const core::PerformancePredictor> predictor,
      Options options);

  /// Folds one mini-batch of predicted class probabilities into the
  /// per-class sketches. Rejects empty batches, batches whose class count
  /// disagrees with earlier batches or with the predictor's trained feature
  /// dimension, and non-finite probabilities. Rows are not retained.
  common::Status Ingest(const linalg::Matrix& probabilities);

  /// Runs the model on `serving` and ingests the resulting probabilities.
  common::Status IngestFrame(const ml::BlackBox& model,
                             const data::DataFrame& serving);

  /// Percentile feature vector over everything ingested so far, evaluated
  /// at the predictor's percentile grid. Requires at least one ingested row.
  common::Result<std::vector<double>> PercentileFeatures() const;

  /// Estimated score of the black box over the ingested stream (Algorithm 2
  /// on the sketch summary instead of the materialized batch), with its
  /// conformal interval (degenerate when the predictor is uncalibrated).
  common::Result<core::ScoreEstimate> EstimateScore() const;

  /// Merges another scorer's sketch state into this one (shard fan-in).
  /// Both scorers must use the same grid, and the other scorer's class
  /// count must be compatible with this scorer's predictor.
  common::Status MergeFrom(const StreamingScorer& other);

  /// Replaces the predictor behind the scorer (tenant hot-swap after a
  /// retrain). The ingested sketch state is kept: the sketches summarize
  /// raw class probabilities, so any predictor expecting the same class
  /// count can score them. Rejects a null or untrained predictor and one
  /// whose class count disagrees with the already-sketched columns.
  common::Status SwapPredictor(
      std::shared_ptr<const core::PerformancePredictor> predictor);

  /// Classes the predictor's feature vector implies
  /// (feature_dimension / |percentile grid|).
  size_t expected_classes() const;

  /// Kolmogorov-Smirnov distance between this scorer's per-class output
  /// distributions and a reference scorer's (e.g. one filled from the clean
  /// held-out test set): max over classes of the per-class KS statistic.
  /// A drift signal that needs no labels and no retained rows.
  common::Result<double> MaxClassKsDistance(
      const StreamingScorer& reference) const;

  uint64_t rows_ingested() const { return bank_.rows_observed(); }
  size_t batches_ingested() const { return batches_ingested_; }
  /// Classes seen so far; 0 until the first batch.
  size_t num_classes() const { return bank_.num_columns(); }
  /// Resident bytes of the sketch state (the serving-memory story: constant
  /// in the number of ingested rows).
  size_t MemoryBytes() const { return bank_.MemoryBytes(); }
  /// Max distance between a streamed percentile feature and its exact
  /// batch-path counterpart.
  double ValueErrorBound() const;

  const stats::QuantileSketchBank& bank() const { return bank_; }
  const core::PerformancePredictor& predictor() const { return *predictor_; }
  /// Shared handle to the predictor (tenant registries deduplicate the
  /// forest across scorers through this).
  const std::shared_ptr<const core::PerformancePredictor>& shared_predictor()
      const {
    return predictor_;
  }

  /// Canonical serialization of the sketch state (not the predictor):
  /// byte-identical for equal ingested multisets regardless of batch split,
  /// merge order or thread count. The transient batches_ingested() counter
  /// is deliberately not part of the format — it depends on how the stream
  /// was split, which canonical bytes must not.
  common::Status SaveState(std::ostream& out) const;

  /// Restores exactly what SaveState wrote (LRU tenant rehydration).
  /// Replaces the current sketch state; rejects state on a different grid
  /// than Options::resolution_bits over [0, 1], and state whose class count
  /// disagrees with the predictor's trained feature dimension. A
  /// SaveState -> LoadState -> SaveState round-trip is byte-identical.
  common::Status LoadState(std::istream& in);

 private:
  StreamingScorer(std::shared_ptr<const core::PerformancePredictor> predictor,
                  Options options);

  std::shared_ptr<const core::PerformancePredictor> predictor_;
  Options options_;
  stats::QuantileSketchBank bank_;
  size_t batches_ingested_ = 0;
};

}  // namespace bbv::serve

#endif  // BBV_SERVE_STREAMING_SCORER_H_
