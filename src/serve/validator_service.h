#ifndef BBV_SERVE_VALIDATOR_SERVICE_H_
#define BBV_SERVE_VALIDATOR_SERVICE_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "core/monitor.h"
#include "core/performance_predictor.h"
#include "core/score_estimate.h"
#include "linalg/matrix.h"
#include "serve/streaming_scorer.h"

namespace bbv::serve {

/// Multi-tenant front door for the paper's validator: one process hosts
/// thousands of (model id -> predictor, sketch bank, monitor window)
/// tenants instead of the single triple the standalone StreamingScorer
/// supports. The service owns a registry keyed by model id and adds the
/// three things a fleet needs on top of the per-tenant machinery:
///
///  * Cross-tenant request batching. Scoring requests are enqueued with
///    Submit() and drained by Flush(), which groups the pending queue by
///    tenant and scores every request of a tenant segment through ONE
///    ForestKernel batch call (PerformancePredictor::
///    EstimateScoresFromStatistics) instead of one scalar tree walk per
///    request. Distinct tenants fan out over the shared thread pool.
///    Because the kernel's exact batch path accumulates trees in the same
///    order as the scalar walk, every estimate is bit-identical to running
///    that tenant's stream through a standalone StreamingScorer — at any
///    BBV_THREADS setting (each task touches only its own tenant and its
///    own response slots).
///
///  * Epoch-based predictor hot-swap. SubmitSwap() enqueues a retrained
///    predictor like any other request; Flush() applies it at exactly its
///    queue position, so requests submitted before the swap are still
///    scored by the old predictor (in-flight batches are never dropped or
///    rescored). Each accepted swap increments the tenant's epoch, clears
///    the monitor window (see ModelMonitor::SwapPredictor for why a window
///    must not straddle predictors), and stamps subsequent responses with
///    the new epoch.
///
///  * LRU eviction of cold tenants. With Options::max_resident_tenants set,
///    the least recently used tenants' sketch banks are serialized via
///    StreamingScorer::SaveState into an in-memory cold store and the
///    scorer is destroyed; the next request for the tenant rehydrates it
///    through LoadState. The round-trip is byte-identical, so eviction is
///    invisible to scoring results. The monitor window is dropped on
///    eviction (the same epoch-boundary contract as a hot-swap).
///
/// Error contract: a malformed request (unknown tenant, class-count
/// mismatch, non-finite probabilities, corrupt state) fails only its own
/// ScoreResponse with a common::Status — it never aborts the process and
/// never pollutes the tenant's sketch state.
///
/// Threading: all public methods are safe to call concurrently; one mutex
/// guards the registry and the pending queue. Flush() holds it while
/// processing (drained work fans out over ParallelFor worker tasks that
/// each own disjoint tenants), so concurrent Flush() calls serialize.
class ValidatorService {
 public:
  struct TenantOptions {
    /// Sketch resolution etc. for the tenant's StreamingScorer.
    StreamingScorer::Options scorer;
    /// When positive, the tenant gets a windowed ModelMonitor over the last
    /// `window_batches` mini-batches and every response carries the
    /// windowed alarm fields. 0 disables monitoring for the tenant.
    size_t window_batches = 0;
    /// Relative windowed drop that raises an alarm (see ModelMonitor).
    double alarm_threshold = 0.05;
    /// Whether the alarm requires the whole conformal interval to certify
    /// the drop or just the point estimate (see core::AlarmPolicy).
    core::ModelMonitor::AlarmPolicy alarm_policy =
        core::ModelMonitor::AlarmPolicy::kCertifiedDrop;
    /// Sketch resolution of the monitor's window ring.
    int monitor_resolution_bits = 12;
    /// Batch reports the monitor retains.
    size_t history_limit = 1000;
  };

  struct Options {
    /// Tenants allowed to keep their sketch banks resident; the least
    /// recently used beyond this are serialized to the in-memory cold
    /// store. 0 means never evict.
    size_t max_resident_tenants = 0;
  };

  /// Outcome of one submitted operation, returned by Flush() in submission
  /// order. When `status` is non-OK every other field except request_id /
  /// model_id / is_swap is meaningless.
  struct ScoreResponse {
    uint64_t request_id = 0;
    std::string model_id;
    common::Status status;
    /// True when this response answers a SubmitSwap instead of a Submit.
    bool is_swap = false;
    /// Streaming estimate over everything the tenant has ingested,
    /// including this request's batch — point plus conformal interval.
    /// Bit-identical (all four fields) to a standalone StreamingScorer fed
    /// the same stream.
    core::ScoreEstimate estimate;
    /// Tenant rows ingested up to and including this request.
    uint64_t rows_ingested = 0;
    /// Tenant predictor epoch the request was scored under.
    uint64_t epoch = 0;
    /// Windowed monitor fields; meaningful only when the tenant was
    /// created with window_batches > 0 (monitored == true).
    bool monitored = false;
    bool alarm = false;
    core::ScoreEstimate windowed_estimate;
    double windowed_relative_drop = 0.0;
    double windowed_certified_drop = 0.0;
  };

  /// Registry/liveness facts about one tenant (introspection; does not
  /// count as a use for LRU purposes).
  struct TenantInfo {
    uint64_t rows_ingested = 0;
    uint64_t epoch = 0;
    bool resident = false;
    bool monitored = false;
    uint64_t monitor_alarms = 0;
  };

  explicit ValidatorService(Options options) : options_(options) {}
  ValidatorService() : ValidatorService(Options{}) {}

  /// Registers a tenant. The predictor is shared, not copied — deploy one
  /// retrained forest to any number of tenants. Rejects a duplicate or
  /// empty model id, a null/untrained predictor, and invalid options.
  common::Status CreateTenant(
      const std::string& model_id,
      std::shared_ptr<const core::PerformancePredictor> predictor,
      const TenantOptions& options);
  common::Status CreateTenant(
      const std::string& model_id,
      std::shared_ptr<const core::PerformancePredictor> predictor) {
    return CreateTenant(model_id, std::move(predictor), TenantOptions{});
  }

  /// Unregisters a tenant and drops its state. Pending requests for it
  /// fail with NotFound at the next Flush.
  common::Status RemoveTenant(const std::string& model_id);

  /// Enqueues one mini-batch of predicted class probabilities for scoring;
  /// returns the request id its Flush() response will carry.
  uint64_t Submit(const std::string& model_id, linalg::Matrix probabilities);

  /// Enqueues a predictor hot-swap behind all previously submitted
  /// requests; applied at its queue position during Flush().
  uint64_t SubmitSwap(
      const std::string& model_id,
      std::shared_ptr<const core::PerformancePredictor> predictor);

  /// Drains the pending queue: rehydrates evicted tenants that have work,
  /// scores each tenant's requests through coalesced kernel batches,
  /// applies swaps at their queue positions, updates LRU stamps, and
  /// enforces the residency cap. Returns one response per drained
  /// operation, in submission order.
  std::vector<ScoreResponse> Flush();

  /// Synchronous convenience: Submit + Flush, returning this request's
  /// response. Any other operations pending at the time are flushed too
  /// (their responses are delivered to nobody), so callers mixing Score
  /// with manual Submit on other threads should use Submit/Flush
  /// themselves.
  ScoreResponse Score(const std::string& model_id,
                      linalg::Matrix probabilities);

  /// Current streaming estimate of a tenant (rehydrates it if evicted and
  /// counts as a use for LRU purposes). Requires ingested rows.
  common::Result<core::ScoreEstimate> EstimateScore(
      const std::string& model_id);

  /// Serializes the tenant's canonical sketch state: byte-identical to the
  /// standalone StreamingScorer::SaveState of the same stream, whether the
  /// tenant is resident or evicted. Read-only (no LRU touch).
  common::Status SaveTenantState(const std::string& model_id,
                                 std::ostream& out) const;

  common::Result<TenantInfo> GetTenantInfo(const std::string& model_id) const;

  size_t num_tenants() const;
  /// Tenants whose sketch banks are currently in memory.
  size_t num_resident() const;
  size_t num_pending() const;

 private:
  struct Tenant {
    std::shared_ptr<const core::PerformancePredictor> predictor;
    TenantOptions options;
    /// Resident scorer; nullopt while evicted.
    std::optional<StreamingScorer> scorer;
    /// SaveState bytes while evicted; empty while resident.
    std::string cold_state;
    /// rows_ingested() at eviction time, so GetTenantInfo need not parse
    /// the cold bytes.
    uint64_t cold_rows = 0;
    std::optional<core::ModelMonitor> monitor;
    uint64_t epoch = 0;
    /// LRU clock stamp of the last use.
    uint64_t last_touch = 0;
  };

  struct PendingOp {
    uint64_t request_id = 0;
    std::string model_id;
    bool is_swap = false;
    /// Scoring payload (is_swap == false).
    linalg::Matrix probabilities;
    /// Replacement predictor (is_swap == true).
    std::shared_ptr<const core::PerformancePredictor> predictor;
  };

  /// Ensures the tenant's scorer is resident, rehydrating from the cold
  /// store if needed.
  common::Status EnsureResident(Tenant& tenant) BBV_REQUIRES(mutex_);
  /// Serializes + drops scorers of least-recently-used tenants until the
  /// residency cap holds.
  void EnforceResidencyCap() BBV_REQUIRES(mutex_);
  /// Scores `ops` (all for `tenant`, in submission order) into `responses`;
  /// contiguous scoring runs share one kernel batch call.
  static void ProcessTenantOps(Tenant& tenant,
                               const std::vector<PendingOp>& ops,
                               const std::vector<size_t>& op_indices,
                               std::vector<ScoreResponse>& responses);
  /// Applies one hot-swap to scorer + monitor + tenant epoch.
  static common::Status ApplySwap(
      Tenant& tenant,
      std::shared_ptr<const core::PerformancePredictor> predictor);

  Options options_;
  mutable common::Mutex mutex_;
  /// std::map, not unordered: eviction scans and flush fan-out iterate the
  /// registry, and every iteration order in this repo must be
  /// deterministic (lint det-iter rule).
  std::map<std::string, Tenant> tenants_ BBV_GUARDED_BY(mutex_);
  std::vector<PendingOp> pending_ BBV_GUARDED_BY(mutex_);
  uint64_t next_request_id_ BBV_GUARDED_BY(mutex_) = 0;
  uint64_t touch_clock_ BBV_GUARDED_BY(mutex_) = 0;
};

}  // namespace bbv::serve

#endif  // BBV_SERVE_VALIDATOR_SERVICE_H_
