#include "serve/streaming_scorer.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/telemetry.h"

namespace bbv::serve {

common::Result<StreamingScorer> StreamingScorer::Create(
    core::PerformancePredictor predictor, Options options) {
  if (!predictor.trained()) {
    return common::Status::FailedPrecondition(
        "StreamingScorer needs a trained performance predictor");
  }
  if (options.resolution_bits < 1 || options.resolution_bits > 24) {
    return common::Status::InvalidArgument(
        "resolution_bits must lie in [1, 24], got " +
        std::to_string(options.resolution_bits));
  }
  return StreamingScorer(std::move(predictor), options);
}

StreamingScorer::StreamingScorer(core::PerformancePredictor predictor,
                                 Options options)
    : predictor_(std::move(predictor)), options_(options) {
  stats::QuantileSketch::Options sketch_options;
  sketch_options.resolution_bits = options_.resolution_bits;
  sketch_options.lo = 0.0;
  sketch_options.hi = 1.0;
  bank_ = stats::QuantileSketchBank(0, sketch_options);
}

common::Status StreamingScorer::Ingest(const linalg::Matrix& probabilities) {
  const common::telemetry::TraceSpan span("serve.ingest");
  if (probabilities.rows() == 0) {
    return common::Status::InvalidArgument("empty serving mini-batch");
  }
  const size_t expected_classes =
      predictor_.feature_dimension() / predictor_.percentile_points().size();
  if (probabilities.cols() != expected_classes) {
    return common::Status::InvalidArgument(
        "mini-batch has " + std::to_string(probabilities.cols()) +
        " classes but the predictor was trained on " +
        std::to_string(expected_classes));
  }
  // Reject NaN/Inf up front: the sketches treat non-finite input as a
  // programming error, but a serving stream must degrade recoverably.
  for (size_t i = 0; i < probabilities.rows(); ++i) {
    const double* row = probabilities.RowData(i);
    for (size_t k = 0; k < probabilities.cols(); ++k) {
      if (!std::isfinite(row[k])) {
        common::telemetry::IncrementCounter("serve.nonfinite_batches");
        return common::Status::InvalidArgument(
            "mini-batch contains a non-finite probability at row " +
            std::to_string(i));
      }
    }
  }
  BBV_RETURN_NOT_OK(bank_.Observe(probabilities));
  ++batches_ingested_;
  common::telemetry::IncrementCounter("serve.batches");
  common::telemetry::IncrementCounter("serve.rows", probabilities.rows());
  return common::Status::OK();
}

common::Status StreamingScorer::IngestFrame(const ml::BlackBox& model,
                                            const data::DataFrame& serving) {
  BBV_ASSIGN_OR_RETURN(linalg::Matrix probabilities,
                       model.PredictProba(serving));
  return Ingest(probabilities);
}

common::Result<std::vector<double>> StreamingScorer::PercentileFeatures()
    const {
  if (bank_.rows_observed() == 0) {
    return common::Status::FailedPrecondition(
        "PercentileFeatures before any ingested rows");
  }
  return bank_.PercentileFeatures(predictor_.percentile_points());
}

common::Result<double> StreamingScorer::EstimateScore() const {
  const common::telemetry::TraceSpan span("serve.estimate");
  BBV_ASSIGN_OR_RETURN(std::vector<double> features, PercentileFeatures());
  common::telemetry::IncrementCounter("serve.estimates");
  return predictor_.EstimateScoreFromStatistics(features);
}

common::Status StreamingScorer::MergeFrom(const StreamingScorer& other) {
  if (options_.resolution_bits != other.options_.resolution_bits) {
    return common::Status::InvalidArgument(
        "MergeFrom across different sketch resolutions");
  }
  BBV_RETURN_NOT_OK(bank_.Merge(other.bank_));
  batches_ingested_ += other.batches_ingested_;
  common::telemetry::IncrementCounter("serve.merges");
  return common::Status::OK();
}

common::Result<double> StreamingScorer::MaxClassKsDistance(
    const StreamingScorer& reference) const {
  if (num_classes() == 0 || reference.num_classes() == 0) {
    return common::Status::FailedPrecondition(
        "KS distance before any ingested rows");
  }
  if (num_classes() != reference.num_classes()) {
    return common::Status::InvalidArgument(
        "KS distance across different class counts");
  }
  double max_distance = 0.0;
  for (size_t k = 0; k < num_classes(); ++k) {
    BBV_ASSIGN_OR_RETURN(
        double distance,
        stats::KsStatistic(bank_.sketch(k), reference.bank_.sketch(k)));
    max_distance = std::max(max_distance, distance);
  }
  return max_distance;
}

double StreamingScorer::ValueErrorBound() const {
  stats::QuantileSketch::Options sketch_options;
  sketch_options.resolution_bits = options_.resolution_bits;
  return stats::QuantileSketch(sketch_options).ValueErrorBound();
}

common::Status StreamingScorer::SaveState(std::ostream& out) const {
  return bank_.Save(out);
}

}  // namespace bbv::serve
