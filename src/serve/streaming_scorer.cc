#include "serve/streaming_scorer.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/telemetry.h"

namespace bbv::serve {

common::Result<StreamingScorer> StreamingScorer::Create(
    core::PerformancePredictor predictor, Options options) {
  return Create(std::make_shared<const core::PerformancePredictor>(
                    std::move(predictor)),
                options);
}

common::Result<StreamingScorer> StreamingScorer::Create(
    std::shared_ptr<const core::PerformancePredictor> predictor,
    Options options) {
  if (predictor == nullptr || !predictor->trained()) {
    return common::Status::FailedPrecondition(
        "StreamingScorer needs a trained performance predictor");
  }
  if (options.resolution_bits < 1 || options.resolution_bits > 24) {
    return common::Status::InvalidArgument(
        "resolution_bits must lie in [1, 24], got " +
        std::to_string(options.resolution_bits));
  }
  return StreamingScorer(std::move(predictor), options);
}

StreamingScorer::StreamingScorer(
    std::shared_ptr<const core::PerformancePredictor> predictor,
    Options options)
    : predictor_(std::move(predictor)), options_(options) {
  stats::QuantileSketch::Options sketch_options;
  sketch_options.resolution_bits = options_.resolution_bits;
  sketch_options.lo = 0.0;
  sketch_options.hi = 1.0;
  bank_ = stats::QuantileSketchBank(0, sketch_options);
}

common::Status StreamingScorer::Ingest(const linalg::Matrix& probabilities) {
  const common::telemetry::TraceSpan span("serve.ingest");
  if (probabilities.rows() == 0) {
    return common::Status::InvalidArgument("empty serving mini-batch");
  }
  if (probabilities.cols() != expected_classes()) {
    return common::Status::InvalidArgument(
        "mini-batch has " + std::to_string(probabilities.cols()) +
        " classes but the predictor was trained on " +
        std::to_string(expected_classes()));
  }
  // Reject NaN/Inf up front: the sketches treat non-finite input as a
  // programming error, but a serving stream must degrade recoverably.
  for (size_t i = 0; i < probabilities.rows(); ++i) {
    const double* row = probabilities.RowData(i);
    for (size_t k = 0; k < probabilities.cols(); ++k) {
      if (!std::isfinite(row[k])) {
        common::telemetry::IncrementCounter("serve.nonfinite_batches");
        return common::Status::InvalidArgument(
            "mini-batch contains a non-finite probability at row " +
            std::to_string(i));
      }
    }
  }
  BBV_RETURN_NOT_OK(bank_.Observe(probabilities));
  ++batches_ingested_;
  common::telemetry::IncrementCounter("serve.batches");
  common::telemetry::IncrementCounter("serve.rows", probabilities.rows());
  return common::Status::OK();
}

common::Status StreamingScorer::IngestFrame(const ml::BlackBox& model,
                                            const data::DataFrame& serving) {
  BBV_ASSIGN_OR_RETURN(linalg::Matrix probabilities,
                       model.PredictProba(serving));
  return Ingest(probabilities);
}

common::Result<std::vector<double>> StreamingScorer::PercentileFeatures()
    const {
  if (bank_.rows_observed() == 0) {
    return common::Status::FailedPrecondition(
        "PercentileFeatures before any ingested rows");
  }
  return bank_.PercentileFeatures(predictor_->percentile_points());
}

common::Result<core::ScoreEstimate> StreamingScorer::EstimateScore() const {
  const common::telemetry::TraceSpan span("serve.estimate");
  BBV_ASSIGN_OR_RETURN(std::vector<double> features, PercentileFeatures());
  common::telemetry::IncrementCounter("serve.estimates");
  return predictor_->EstimateScoreFromStatistics(features);
}

common::Status StreamingScorer::MergeFrom(const StreamingScorer& other) {
  if (options_.resolution_bits != other.options_.resolution_bits) {
    return common::Status::InvalidArgument(
        "MergeFrom across different sketch resolutions");
  }
  // Bank::Merge only compares column counts when both banks are non-empty;
  // merging a foreign shard into a fresh scorer would otherwise adopt a
  // class count this scorer's predictor cannot score, and every later
  // EstimateScore would fail. Reject the incompatible shard instead.
  if (other.num_classes() != 0 && other.num_classes() != expected_classes()) {
    return common::Status::InvalidArgument(
        "merge source sketches " + std::to_string(other.num_classes()) +
        " classes but this scorer's predictor was trained on " +
        std::to_string(expected_classes()));
  }
  BBV_RETURN_NOT_OK(bank_.Merge(other.bank_));
  batches_ingested_ += other.batches_ingested_;
  common::telemetry::IncrementCounter("serve.merges");
  return common::Status::OK();
}

common::Status StreamingScorer::SwapPredictor(
    std::shared_ptr<const core::PerformancePredictor> predictor) {
  if (predictor == nullptr || !predictor->trained()) {
    return common::Status::FailedPrecondition(
        "SwapPredictor needs a trained performance predictor");
  }
  const size_t swapped_classes = predictor->feature_dimension() /
                                 predictor->percentile_points().size();
  if (num_classes() != 0 && swapped_classes != num_classes()) {
    return common::Status::InvalidArgument(
        "swapped predictor expects " + std::to_string(swapped_classes) +
        " classes but the scorer has sketched " +
        std::to_string(num_classes()));
  }
  predictor_ = std::move(predictor);
  common::telemetry::IncrementCounter("serve.predictor_swaps");
  return common::Status::OK();
}

size_t StreamingScorer::expected_classes() const {
  return predictor_->feature_dimension() /
         predictor_->percentile_points().size();
}

common::Result<double> StreamingScorer::MaxClassKsDistance(
    const StreamingScorer& reference) const {
  if (num_classes() == 0 || reference.num_classes() == 0) {
    return common::Status::FailedPrecondition(
        "KS distance before any ingested rows");
  }
  if (num_classes() != reference.num_classes()) {
    return common::Status::InvalidArgument(
        "KS distance across different class counts");
  }
  double max_distance = 0.0;
  for (size_t k = 0; k < num_classes(); ++k) {
    BBV_ASSIGN_OR_RETURN(
        double distance,
        stats::KsStatistic(bank_.sketch(k), reference.bank_.sketch(k)));
    max_distance = std::max(max_distance, distance);
  }
  return max_distance;
}

double StreamingScorer::ValueErrorBound() const {
  stats::QuantileSketch::Options sketch_options;
  sketch_options.resolution_bits = options_.resolution_bits;
  return stats::QuantileSketch(sketch_options).ValueErrorBound();
}

common::Status StreamingScorer::SaveState(std::ostream& out) const {
  return bank_.Save(out);
}

common::Status StreamingScorer::LoadState(std::istream& in) {
  BBV_ASSIGN_OR_RETURN(stats::QuantileSketchBank bank,
                       stats::QuantileSketchBank::Load(in));
  // The state must be queryable on this scorer's grid: a bank sketched at a
  // different resolution or domain answers quantile queries on a different
  // lattice, silently breaking the byte-identity contract with the scorer
  // that saved it.
  if (bank.options().resolution_bits != options_.resolution_bits ||
      bank.options().lo != 0.0 || bank.options().hi != 1.0) {
    return common::Status::InvalidArgument(
        "saved state uses a different sketch grid than this scorer");
  }
  // Feature-dimension guard: state sketched for a different class count can
  // never produce the feature vector this predictor was trained on.
  if (bank.num_columns() != 0 && bank.num_columns() != expected_classes()) {
    return common::Status::InvalidArgument(
        "saved state sketches " + std::to_string(bank.num_columns()) +
        " classes but the predictor was trained on " +
        std::to_string(expected_classes()));
  }
  bank_ = std::move(bank);
  common::telemetry::IncrementCounter("serve.state_loads");
  return common::Status::OK();
}

}  // namespace bbv::serve
