#include "ml/black_box.h"

#include "common/serialize.h"
#include "ml/metrics.h"
#include "ml/model_io.h"

namespace bbv::ml {

common::Status BlackBoxModel::Train(const data::Dataset& train,
                                    common::Rng& rng) {
  if (train.NumRows() == 0) {
    return common::Status::InvalidArgument("cannot train on an empty dataset");
  }
  BBV_RETURN_NOT_OK(pipeline_.Fit(train.features));
  BBV_ASSIGN_OR_RETURN(linalg::Matrix features,
                       pipeline_.Transform(train.features));
  BBV_RETURN_NOT_OK(
      classifier_->Fit(features, train.labels, train.num_classes, rng));
  trained_ = true;
  return common::Status::OK();
}

common::Result<linalg::Matrix> BlackBoxModel::PredictProba(
    const data::DataFrame& frame) const {
  if (!trained_) {
    return common::Status::FailedPrecondition("PredictProba before Train");
  }
  BBV_ASSIGN_OR_RETURN(linalg::Matrix features, pipeline_.Transform(frame));
  return classifier_->PredictProba(features);
}

common::Result<double> BlackBoxModel::ScoreAccuracy(
    const data::Dataset& dataset) const {
  BBV_ASSIGN_OR_RETURN(linalg::Matrix probabilities,
                       PredictProba(dataset.features));
  return AccuracyFromProba(probabilities, dataset.labels);
}

common::Result<double> BlackBoxModel::ScoreAuc(
    const data::Dataset& dataset) const {
  BBV_ASSIGN_OR_RETURN(linalg::Matrix probabilities,
                       PredictProba(dataset.features));
  return RocAucFromProba(probabilities, dataset.labels);
}

namespace {
constexpr char kBlackBoxMagic[] = "BBVBB";
constexpr uint32_t kBlackBoxVersion = 1;
}  // namespace

common::Status BlackBoxModel::Save(std::ostream& out) const {
  if (!trained_) {
    return common::Status::FailedPrecondition("Save before Train");
  }
  common::BinaryWriter writer(out);
  writer.WriteMagic(kBlackBoxMagic, kBlackBoxVersion);
  BBV_RETURN_NOT_OK(writer.status());
  BBV_RETURN_NOT_OK(pipeline_.Save(out));
  return SaveClassifier(*classifier_, out);
}

common::Result<std::unique_ptr<BlackBoxModel>> BlackBoxModel::Load(
    std::istream& in) {
  common::BinaryReader reader(in);
  BBV_RETURN_NOT_OK(reader.ExpectMagic(kBlackBoxMagic, kBlackBoxVersion));
  BBV_ASSIGN_OR_RETURN(featurize::FeaturePipeline pipeline,
                       featurize::FeaturePipeline::Load(in));
  BBV_ASSIGN_OR_RETURN(std::unique_ptr<Classifier> classifier,
                       LoadClassifier(in));
  auto model = std::make_unique<BlackBoxModel>(std::move(classifier));
  model->pipeline_ = std::move(pipeline);
  model->trained_ = true;
  return model;
}

}  // namespace bbv::ml
