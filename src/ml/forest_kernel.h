#ifndef BBV_ML_FOREST_KERNEL_H_
#define BBV_ML_FOREST_KERNEL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/matrix.h"
#include "ml/decision_tree.h"

namespace bbv::ml {

/// Flattened, cache-friendly inference representation compiled from a fitted
/// RegressionTree ensemble. This is the batch hot path behind every
/// tree-ensemble prediction: the performance predictor's meta-training
/// collection corrupts the held-out set hundreds of times and scores every
/// copy through the forest, so ensemble inference dominates both training
/// and serving-time EstimateScore calls.
///
/// Layout: the internal nodes of all trees live in contiguous
/// structure-of-arrays columns (`feature`, `threshold`, `left`, `right`)
/// indexed by one global node id, and leaf payloads live in a separate
/// `value` array. Children are encoded by sign — a non-negative child is the
/// global id of another internal node, a negative child `c` is the leaf
/// `value[~c]` — so traversal is a branch-light compare/select loop with no
/// leaf test against a sentinel feature.
///
/// Traversal is blocked row x tree: a tile of rows stays resident in cache
/// while every tree walks it in ensemble order, and tiles fan out over
/// common::ParallelFor. Each tile writes only its own output slots and
/// accumulates per row in fixed tree order, so results are bit-identical to
/// the legacy one-row-at-a-time node walk at every BBV_THREADS setting
/// (determinism contract, see README "Concurrency model").
///
/// ## Quantized fast path (opt-in, Options::quantized)
///
/// The default compare-and-descend walk is data-dependent and double-wide,
/// so it is bound by branch misses and memory latency. The opt-in fast path
/// trades a *measured, bounded* quantization step for data-level
/// parallelism:
///
///  - thresholds are stored as float32, rounded DOWN to the largest float
///    whose double value does not exceed the exact threshold, so for every
///    float feature value x:  x <= qthreshold  <=>  double(x) <= threshold.
///    Both directions of that equivalence are BBV_CHECK-verified for every
///    node at Compile time (the "verified at compile-of-kernel time" part
///    of the contract);
///  - each 8-row lane group is transposed into a float32 tile
///    (tile[feature * 8 + lane]) and all 8 lanes descend in lockstep with a
///    branch-free select — leaves are materialized as self-looping nodes so
///    a tree of depth D is exactly D unconditional steps;
///  - trees with at most 64 leaves (e.g. the depth-3 boosted trees) use a
///    QuickScorer-style bitvector instead: one uint64 mask per internal
///    node clears the in-order leaves of its left subtree, a row ANDs the
///    masks of its false nodes and exits at countr_zero;
///  - the next tree's node block is prefetched while the current tree runs.
///
/// Error contract: the fast path is BIT-IDENTICAL to the exact kernel
/// evaluated on QuantizeFeatures(features) (features rounded to float32),
/// so its only deviation from the exact result comes from that input
/// rounding and is bounded by the per-tree leaf ranges:
/// |fast - exact| <= QuantizationMeanErrorBound() (resp.
/// QuantizationAccumulateErrorBound) for every row and output slot. The
/// bit-exact path stays the default; PredictRowMean is always exact.
class ForestKernel {
 public:
  struct Options {
    /// Opt into the float32 width-8 tile traversal described above. Off by
    /// default: the default kernel stays bit-identical to the legacy scalar
    /// node walk.
    bool quantized = false;
    /// Within the quantized path, evaluate trees with at most 64 leaves
    /// through the QuickScorer-style bitvector instead of lockstep
    /// stepping. Output is bit-identical either way (both reproduce the
    /// exact walk on rounded inputs); this only selects the faster
    /// evaluation strategy for shallow trees.
    bool bitvector_shallow_trees = true;
  };

  /// Empty kernel; every inference entry point BBV_CHECKs against it.
  ForestKernel() = default;

  /// Compiles the flattened representation from fitted trees (every tree
  /// must have at least one node). The kernel copies what it needs; the
  /// source trees can be discarded or mutated afterwards. With
  /// options.quantized the float32 representation is built alongside the
  /// exact one and the threshold-rounding invariant is verified per node.
  static ForestKernel Compile(std::span<const RegressionTree> trees,
                              Options options);
  static ForestKernel Compile(std::span<const RegressionTree> trees) {
    return Compile(trees, Options{});
  }

  bool empty() const { return roots_.empty(); }
  size_t num_trees() const { return roots_.size(); }
  size_t num_internal_nodes() const { return feature_.size(); }
  size_t num_leaves() const { return leaf_value_.size(); }
  /// Largest feature index any split reads, or -1 for all-leaf ensembles.
  /// Batch entry points check it against the input's column count, so a
  /// mis-shaped matrix fails fast instead of reading out of bounds.
  int32_t max_feature() const { return max_feature_; }

  /// Whether the batch entry points run the quantized fast path.
  bool quantized() const { return options_.quantized; }
  /// Trees evaluated through the bitvector strategy (0 unless quantized).
  size_t num_bitvector_trees() const { return num_bitvector_trees_; }

  /// The input rounding the fast path is exact against: every entry cast to
  /// float32 and back (values beyond float range saturate to +/-inf). The
  /// quantized kernel on `features` is bit-identical to the bit-exact
  /// kernel on QuantizeFeatures(features).
  static linalg::Matrix QuantizeFeatures(const linalg::Matrix& features);
  /// Scalar form of the same rounding.
  static float QuantizeValue(double value);

  /// Upper bound on |quantized - exact| for PredictMeanInto/PredictRowMean
  /// outputs: mean per-tree leaf range plus double-summation rounding
  /// slack. Requires a quantized kernel.
  double QuantizationMeanErrorBound() const;
  /// Upper bound on |quantized - exact| for any AccumulateInto output slot
  /// at the given scale and stride (max over the stride residue classes).
  /// Requires a quantized kernel.
  double QuantizationAccumulateErrorBound(double scale, size_t stride) const;

  /// Strided accumulation: for every row r and every tree t (in ensemble
  /// order), out[r * stride + t % stride] += scale * tree_t(row r). With
  /// stride == num_classes and scale == learning_rate this is exactly the
  /// gradient-boosted score update; out must be pre-filled with the base
  /// scores. `out.size()` must equal features.rows() * stride.
  void AccumulateInto(const linalg::Matrix& features, double scale,
                      size_t stride, std::span<double> out) const;

  /// Mean across trees for every row (random-forest semantics); writes one
  /// prediction per row. `out.size()` must equal features.rows().
  void PredictMeanInto(const linalg::Matrix& features,
                       std::span<double> out) const;

  /// Scalar convenience path: mean across trees for one feature row. Always
  /// the bit-exact walk, even for quantized kernels. The caller guarantees
  /// `row` has at least max_feature() + 1 entries.
  double PredictRowMean(const double* row) const;

  /// Per-tree leaf responses for one feature row, in ensemble order:
  /// out[t] = tree_t(row). Always the bit-exact walk. This exposes the
  /// quantile-regression-forest view of the ensemble — the spread of these
  /// values is the difficulty signal core::ConformalCalibrator's
  /// kQuantileForest mode scales intervals by. `out.size()` must equal
  /// num_trees(); `row` must have at least max_feature() + 1 entries.
  void PredictRowValuesInto(const double* row, std::span<double> out) const;

 private:
  /// Lanes per quantized row group: one float tile column per lane, so the
  /// compare-and-descend step runs 8 independent rows in lockstep.
  static constexpr size_t kLanes = 8;

  /// Shared tiled traversal; when `mean` is set, stride is 1 and every
  /// output slot is divided by num_trees() after accumulation.
  void Run(const linalg::Matrix& features, double scale, size_t stride,
           bool mean, std::span<double> out) const;

  /// Exact walk over rows [begin, end) of one tile.
  void RunExactTile(const linalg::Matrix& features, size_t begin, size_t end,
                    double scale, size_t stride, std::span<double> out) const;

  /// Quantized width-8 walk over rows [begin, end) of one tile; `tile` is
  /// the caller's scratch transpose buffer (>= max(cols, 1) * kLanes).
  void RunQuantizedTile(const linalg::Matrix& features, size_t begin,
                        size_t end, double scale, size_t stride,
                        std::span<double> out, float* tile) const;

  /// Builds the quantized (stepping + bitvector) representation; called by
  /// Compile when options.quantized is set.
  void CompileQuantized(std::span<const RegressionTree> trees);

  double TraverseRow(size_t tree, const double* row) const {
    int32_t node = roots_[tree];
    while (node >= 0) {
      const auto i = static_cast<size_t>(node);
      node = row[feature_[i]] <= threshold_[i] ? left_[i] : right_[i];
    }
    return leaf_value_[static_cast<size_t>(~node)];
  }

  // Structure-of-arrays internal nodes, global ids across all trees.
  std::vector<int32_t> feature_;
  std::vector<double> threshold_;
  std::vector<int32_t> left_;
  std::vector<int32_t> right_;
  // Leaf payloads, indexed by ~child for negative children.
  std::vector<double> leaf_value_;
  // Per-tree root, sign-encoded like a child (a single-leaf tree has a
  // negative root).
  std::vector<int32_t> roots_;
  int32_t max_feature_ = -1;
  // Whether the whole flattened ensemble fits in L1: compact ensembles
  // (e.g. depth-3 boosted trees) are traversed rows-outer so each row's
  // accumulator stays hot, large ones trees-outer so a row tile amortizes
  // pulling each tree through cache. Either order sums per output slot in
  // ascending tree order, so the choice never changes a single bit.
  bool compact_ = false;

  Options options_;

  // --- Quantized stepping representation (empty unless quantized) ---
  // Padded per-tree node blocks: internal nodes carry the floor-rounded
  // float32 threshold, leaves are self-loops (feature 0, threshold +inf,
  // both children pointing at themselves) holding the leaf payload, so a
  // fixed number of steps lands every lane on its exit leaf.
  std::vector<int32_t> qfeature_;
  std::vector<float> qthreshold_;
  std::vector<int32_t> qleft_;
  std::vector<int32_t> qright_;
  std::vector<double> qvalue_;
  // Per-tree block offsets into the arrays above (num_trees + 1 entries;
  // bitvector trees own an empty block) and per-tree step counts.
  std::vector<size_t> qnode_begin_;
  std::vector<int32_t> qdepth_;
  // 1 for trees evaluated through the bitvector strategy.
  std::vector<uint8_t> tree_uses_bitvector_;
  size_t num_bitvector_trees_ = 0;

  // --- QuickScorer-style bitvector representation (shallow trees) ---
  // Per internal node: split feature/threshold plus the uint64 mask that
  // clears the in-order leaves of its left subtree; per tree: the node
  // block [qs_node_begin_[t], qs_node_begin_[t + 1]) and the first in-order
  // leaf slot in qs_leaf_value_.
  std::vector<int32_t> qs_feature_;
  std::vector<float> qs_threshold_;
  std::vector<uint64_t> qs_mask_;
  std::vector<double> qs_leaf_value_;
  std::vector<size_t> qs_node_begin_;
  std::vector<size_t> qs_leaf_begin_;

  // --- Error-bound bookkeeping (per tree, built for quantized kernels) ---
  // leaf range (max - min) and max |leaf| per tree: the ingredients of the
  // documented quantization bounds.
  std::vector<double> tree_leaf_range_;
  std::vector<double> tree_leaf_absmax_;
};

}  // namespace bbv::ml

#endif  // BBV_ML_FOREST_KERNEL_H_
