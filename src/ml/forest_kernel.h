#ifndef BBV_ML_FOREST_KERNEL_H_
#define BBV_ML_FOREST_KERNEL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/matrix.h"
#include "ml/decision_tree.h"

namespace bbv::ml {

/// Flattened, cache-friendly inference representation compiled from a fitted
/// RegressionTree ensemble. This is the batch hot path behind every
/// tree-ensemble prediction: the performance predictor's meta-training
/// collection corrupts the held-out set hundreds of times and scores every
/// copy through the forest, so ensemble inference dominates both training
/// and serving-time EstimateScore calls.
///
/// Layout: the internal nodes of all trees live in contiguous
/// structure-of-arrays columns (`feature`, `threshold`, `left`, `right`)
/// indexed by one global node id, and leaf payloads live in a separate
/// `value` array. Children are encoded by sign — a non-negative child is the
/// global id of another internal node, a negative child `c` is the leaf
/// `value[~c]` — so traversal is a branch-light compare/select loop with no
/// leaf test against a sentinel feature.
///
/// Traversal is blocked row x tree: a tile of rows stays resident in cache
/// while every tree walks it in ensemble order, and tiles fan out over
/// common::ParallelFor. Each tile writes only its own output slots and
/// accumulates per row in fixed tree order, so results are bit-identical to
/// the legacy one-row-at-a-time node walk at every BBV_THREADS setting
/// (determinism contract, see README "Concurrency model").
class ForestKernel {
 public:
  /// Empty kernel; every inference entry point BBV_CHECKs against it.
  ForestKernel() = default;

  /// Compiles the flattened representation from fitted trees (every tree
  /// must have at least one node). The kernel copies what it needs; the
  /// source trees can be discarded or mutated afterwards.
  static ForestKernel Compile(std::span<const RegressionTree> trees);

  bool empty() const { return roots_.empty(); }
  size_t num_trees() const { return roots_.size(); }
  size_t num_internal_nodes() const { return feature_.size(); }
  size_t num_leaves() const { return leaf_value_.size(); }
  /// Largest feature index any split reads, or -1 for all-leaf ensembles.
  /// Batch entry points check it against the input's column count, so a
  /// mis-shaped matrix fails fast instead of reading out of bounds.
  int32_t max_feature() const { return max_feature_; }

  /// Strided accumulation: for every row r and every tree t (in ensemble
  /// order), out[r * stride + t % stride] += scale * tree_t(row r). With
  /// stride == num_classes and scale == learning_rate this is exactly the
  /// gradient-boosted score update; out must be pre-filled with the base
  /// scores. `out.size()` must equal features.rows() * stride.
  void AccumulateInto(const linalg::Matrix& features, double scale,
                      size_t stride, std::span<double> out) const;

  /// Mean across trees for every row (random-forest semantics); writes one
  /// prediction per row. `out.size()` must equal features.rows().
  void PredictMeanInto(const linalg::Matrix& features,
                       std::span<double> out) const;

  /// Scalar convenience path: mean across trees for one feature row. The
  /// caller guarantees `row` has at least max_feature() + 1 entries.
  double PredictRowMean(const double* row) const;

 private:
  /// Shared tiled traversal; when `mean` is set, stride is 1 and every
  /// output slot is divided by num_trees() after accumulation.
  void Run(const linalg::Matrix& features, double scale, size_t stride,
           bool mean, std::span<double> out) const;

  double TraverseRow(size_t tree, const double* row) const {
    int32_t node = roots_[tree];
    while (node >= 0) {
      const auto i = static_cast<size_t>(node);
      node = row[feature_[i]] <= threshold_[i] ? left_[i] : right_[i];
    }
    return leaf_value_[static_cast<size_t>(~node)];
  }

  // Structure-of-arrays internal nodes, global ids across all trees.
  std::vector<int32_t> feature_;
  std::vector<double> threshold_;
  std::vector<int32_t> left_;
  std::vector<int32_t> right_;
  // Leaf payloads, indexed by ~child for negative children.
  std::vector<double> leaf_value_;
  // Per-tree root, sign-encoded like a child (a single-leaf tree has a
  // negative root).
  std::vector<int32_t> roots_;
  int32_t max_feature_ = -1;
  // Whether the whole flattened ensemble fits in L1: compact ensembles
  // (e.g. depth-3 boosted trees) are traversed rows-outer so each row's
  // accumulator stays hot, large ones trees-outer so a row tile amortizes
  // pulling each tree through cache. Either order sums per output slot in
  // ascending tree order, so the choice never changes a single bit.
  bool compact_ = false;
};

}  // namespace bbv::ml

#endif  // BBV_ML_FOREST_KERNEL_H_
