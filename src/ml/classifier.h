#ifndef BBV_ML_CLASSIFIER_H_
#define BBV_ML_CLASSIFIER_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "linalg/matrix.h"

namespace bbv::ml {

/// A trainable classifier over dense feature vectors. After Fit,
/// PredictProba returns an (n x num_classes) row-stochastic matrix — the
/// `predict_proba` surface the paper's approach consumes; everything else
/// about the model stays opaque to the validation layer.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on `features` (n x d) with integer `labels` in
  /// [0, num_classes). Randomness (initialization, shuffling, bootstrap)
  /// flows through `rng` for reproducibility.
  virtual common::Status Fit(const linalg::Matrix& features,
                             const std::vector<int>& labels, int num_classes,
                             common::Rng& rng) = 0;

  /// Class probabilities for each row of `features`. Requires a prior Fit.
  virtual linalg::Matrix PredictProba(const linalg::Matrix& features) const = 0;

  /// Short identifier, e.g. "lr", "dnn", "xgb", "conv".
  virtual std::string Name() const = 0;

  /// Number of classes seen at fit time (0 before Fit).
  int num_classes() const { return num_classes_; }

 protected:
  int num_classes_ = 0;
};

/// Argmax labels from PredictProba.
std::vector<int> PredictLabels(const Classifier& classifier,
                               const linalg::Matrix& features);

}  // namespace bbv::ml

#endif  // BBV_ML_CLASSIFIER_H_
