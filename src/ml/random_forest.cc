#include "ml/random_forest.h"

#include <algorithm>

#include "common/parallel.h"
#include "common/telemetry.h"

namespace bbv::ml {

common::Status RandomForestRegressor::Fit(const linalg::Matrix& features,
                                          const std::vector<double>& targets,
                                          common::Rng& rng) {
  const common::telemetry::TraceSpan span("forest.fit");
  if (features.rows() != targets.size()) {
    return common::Status::InvalidArgument(
        "features and targets disagree on the number of rows");
  }
  if (features.rows() == 0) {
    return common::Status::InvalidArgument("cannot fit on an empty matrix");
  }
  if (options_.num_trees <= 0) {
    return common::Status::InvalidArgument("num_trees must be positive");
  }
  const size_t n = features.rows();
  const size_t bootstrap_size = std::max<size_t>(
      1, static_cast<size_t>(options_.bootstrap_fraction *
                             static_cast<double>(n)));
  const size_t num_trees = static_cast<size_t>(options_.num_trees);
  common::telemetry::IncrementCounter("forest.fit.calls");
  common::telemetry::IncrementCounter("forest.trees_fitted", num_trees);
  // Each tree draws its bootstrap sample and split randomness from its own
  // pre-forked stream, so the serialized ensemble is bit-identical at every
  // thread count.
  std::vector<common::Rng> tree_rngs = rng.ForkStreams(num_trees);
  trees_.clear();
  BBV_ASSIGN_OR_RETURN(
      trees_,
      common::ParallelMap<RegressionTree>(
          num_trees, [&](size_t t) -> common::Result<RegressionTree> {
            common::Rng& tree_rng = tree_rngs[t];
            std::vector<size_t> rows(bootstrap_size);
            for (size_t i = 0; i < bootstrap_size; ++i) {
              rows[i] = tree_rng.UniformInt(n);
            }
            RegressionTree tree(options_.tree);
            BBV_RETURN_NOT_OK(tree.Fit(features, targets, rows, tree_rng));
            return tree;
          }));
  return common::Status::OK();
}

double RandomForestRegressor::PredictRow(const double* row) const {
  BBV_CHECK(fitted()) << "Predict before Fit";
  double sum = 0.0;
  for (const RegressionTree& tree : trees_) {
    sum += tree.PredictRow(row);
  }
  return sum / static_cast<double>(trees_.size());
}

std::vector<double> RandomForestRegressor::Predict(
    const linalg::Matrix& features) const {
  // PredictRow stays uninstrumented: it is the per-row hot path (called in a
  // tight loop here and from the predictor); timing it would dominate the
  // work being measured.
  const common::telemetry::TraceSpan span("forest.predict");
  common::telemetry::IncrementCounter("forest.predict.rows", features.rows());
  std::vector<double> result(features.rows());
  const common::Status status = common::ParallelFor(
      features.rows(),
      [&](size_t i) {
        result[i] = PredictRow(features.RowData(i));
        return common::Status::OK();
      },
      {.min_items_per_thread = 512});
  BBV_CHECK(status.ok()) << status.ToString();
  return result;
}

}  // namespace bbv::ml

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

namespace bbv::ml {

namespace {
constexpr char kForestMagic[] = "BBVRF";
constexpr uint32_t kForestVersion = 1;
}  // namespace

common::Status RandomForestRegressor::Save(std::ostream& out) const {
  if (!fitted()) {
    return common::Status::FailedPrecondition("Save before Fit");
  }
  common::BinaryWriter writer(out);
  writer.WriteMagic(kForestMagic, kForestVersion);
  writer.WriteUint64(trees_.size());
  for (const RegressionTree& tree : trees_) {
    tree.Save(writer);
  }
  return writer.status();
}

common::Result<RandomForestRegressor> RandomForestRegressor::Load(
    std::istream& in) {
  common::BinaryReader reader(in);
  BBV_RETURN_NOT_OK(reader.ExpectMagic(kForestMagic, kForestVersion));
  BBV_ASSIGN_OR_RETURN(uint64_t count, reader.ReadUint64());
  if (count == 0 || count > 1'000'000) {
    return common::Status::InvalidArgument("implausible tree count");
  }
  RandomForestRegressor forest;
  forest.trees_.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    BBV_ASSIGN_OR_RETURN(RegressionTree tree, RegressionTree::Load(reader));
    forest.trees_.push_back(std::move(tree));
  }
  return forest;
}

}  // namespace bbv::ml
