#include "ml/random_forest.h"

#include <algorithm>
#include <utility>

#include "common/parallel.h"
#include "common/telemetry.h"
#include "ml/feature_binning.h"

namespace bbv::ml {

common::Status RandomForestRegressor::Fit(const linalg::Matrix& features,
                                          const std::vector<double>& targets,
                                          common::Rng& rng) {
  const common::telemetry::TraceSpan span("forest.fit");
  if (features.rows() != targets.size()) {
    return common::Status::InvalidArgument(
        "features and targets disagree on the number of rows");
  }
  if (features.rows() == 0) {
    return common::Status::InvalidArgument("cannot fit on an empty matrix");
  }
  if (options_.num_trees <= 0) {
    return common::Status::InvalidArgument("num_trees must be positive");
  }
  const size_t n = features.rows();
  const size_t bootstrap_size = std::max<size_t>(
      1, static_cast<size_t>(options_.bootstrap_fraction *
                             static_cast<double>(n)));
  const size_t num_trees = static_cast<size_t>(options_.num_trees);
  common::telemetry::IncrementCounter("forest.fit.calls");
  common::telemetry::IncrementCounter("forest.trees_fitted", num_trees);
  // Each tree draws its bootstrap sample and split randomness from its own
  // pre-forked stream, so the serialized ensemble is bit-identical at every
  // thread count.
  std::vector<common::Rng> tree_rngs = rng.ForkStreams(num_trees);
  // One shared pre-binning per Fit (deterministic, read-only across the
  // tree workers) when the histogram split search is enabled.
  FeatureBinning binning;
  const FeatureBinning* binning_ptr = nullptr;
  if (options_.tree.binned_split_search) {
    binning = FeatureBinning::Build(features);
    binning_ptr = &binning;
  }
  trees_.clear();
  BBV_ASSIGN_OR_RETURN(
      trees_,
      common::ParallelMap<RegressionTree>(
          num_trees, [&](size_t t) -> common::Result<RegressionTree> {
            common::Rng& tree_rng = tree_rngs[t];
            std::vector<size_t> rows(bootstrap_size);
            for (size_t i = 0; i < bootstrap_size; ++i) {
              rows[i] = tree_rng.UniformInt(n);
            }
            RegressionTree tree(options_.tree);
            BBV_RETURN_NOT_OK(
                tree.Fit(features, targets, rows, tree_rng, binning_ptr));
            return tree;
          }));
  kernel_ = ForestKernel::Compile(trees_, options_.kernel);
  return common::Status::OK();
}

double RandomForestRegressor::PredictRow(const double* row) const {
  BBV_CHECK(fitted()) << "Predict before Fit";
  return kernel_.PredictRowMean(row);
}

void RandomForestRegressor::PredictInto(const linalg::Matrix& features,
                                        std::span<double> out) const {
  BBV_CHECK(fitted()) << "Predict before Fit";
  kernel_.PredictMeanInto(features, out);
}

std::vector<double> RandomForestRegressor::Predict(
    const linalg::Matrix& features) const {
  BBV_CHECK(fitted()) << "Predict before Fit";
  std::vector<double> result(features.rows());
  PredictInto(features, result);
  return result;
}

}  // namespace bbv::ml

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

namespace bbv::ml {

namespace {
constexpr char kForestMagic[] = "BBVRF";
constexpr uint32_t kForestVersion = 1;
}  // namespace

common::Status RandomForestRegressor::Save(common::BinaryWriter& writer) const {
  if (!fitted()) {
    return common::Status::FailedPrecondition("Save before Fit");
  }
  writer.WriteMagic(kForestMagic, kForestVersion);
  writer.WriteUint64(trees_.size());
  for (const RegressionTree& tree : trees_) {
    tree.Save(writer);
  }
  return writer.status();
}

common::Result<RandomForestRegressor> RandomForestRegressor::Load(
    common::BinaryReader& reader) {
  BBV_RETURN_NOT_OK(reader.ExpectMagic(kForestMagic, kForestVersion));
  BBV_ASSIGN_OR_RETURN(uint64_t count, reader.ReadUint64());
  if (count == 0 || count > 1'000'000) {
    return common::Status::InvalidArgument("implausible tree count");
  }
  RandomForestRegressor forest;
  forest.trees_.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    BBV_ASSIGN_OR_RETURN(RegressionTree tree, RegressionTree::Load(reader));
    forest.trees_.push_back(std::move(tree));
  }
  forest.kernel_ = ForestKernel::Compile(forest.trees_);
  return forest;
}

common::Status RandomForestRegressor::Save(std::ostream& out) const {
  common::BinaryWriter writer(out);
  return Save(writer);
}

common::Result<RandomForestRegressor> RandomForestRegressor::Load(
    std::istream& in) {
  common::BinaryReader reader(in);
  return Load(reader);
}

}  // namespace bbv::ml
