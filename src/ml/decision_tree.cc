#include "ml/decision_tree.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>

#include "ml/feature_binning.h"

namespace bbv::ml {

namespace {

/// Candidate features for a split: a random subset of size
/// ceil(feature_fraction * d), or all features when the fraction is 1.
std::vector<size_t> CandidateFeatures(size_t num_features, double fraction,
                                      common::Rng& rng) {
  if (fraction >= 1.0) {
    std::vector<size_t> all(num_features);
    std::iota(all.begin(), all.end(), 0);
    return all;
  }
  const size_t k = std::max<size_t>(
      1, static_cast<size_t>(
             std::ceil(fraction * static_cast<double>(num_features))));
  return rng.SampleWithoutReplacement(num_features, k);
}

struct SplitCandidate {
  bool found = false;
  size_t feature = 0;
  double threshold = 0.0;
  double gain = 0.0;
};

/// Shared sorted view for the exact split searches: fills `points` with
/// (feature value, payload) pairs over rows[begin, end), sorted ascending
/// by value (payload order breaks ties, deterministically). Returns false
/// when the feature is constant across the node, i.e. unsplittable — the
/// single guard both the regression and the Gini search used to duplicate.
template <typename Payload>
bool FillSortedFeaturePoints(const linalg::Matrix& features,
                             const std::vector<size_t>& rows, size_t begin,
                             size_t end, size_t feature,
                             const std::vector<Payload>& payload,
                             std::vector<std::pair<double, Payload>>& points) {
  points.clear();
  for (size_t i = begin; i < end; ++i) {
    points.emplace_back(features.At(rows[i], feature), payload[rows[i]]);
  }
  std::sort(points.begin(), points.end());
  return points.front().first < points.back().first;
}

/// Histogram split search for one feature of the node rows[begin, end):
/// accumulates per-bin (count, target sum) in a single unsorted pass over
/// the node's rows and scans the <= 255 candidate cuts. Gain uses the SSE
/// decomposition  node_sse - l_sse - r_sse = S_l^2/n_l + S_r^2/n_r - S^2/n,
/// which needs no per-bin squared sums. The winning threshold is the raw
/// cut value, so the later value-space partition splits rows exactly where
/// the histogram counted them (codes are lower-bound indices:
/// code(v) <= b  <=>  v <= cut[b]).
void BestBinnedSplit(const FeatureBinning& binning,
                     const std::vector<double>& targets,
                     const std::vector<size_t>& rows, size_t begin, size_t end,
                     size_t feature, double sum, size_t min_samples_leaf,
                     SplitCandidate& best) {
  const size_t num_cuts = binning.NumCuts(feature);
  if (num_cuts == 0) return;  // globally constant column
  const uint8_t* codes = binning.Codes(feature);
  std::array<double, FeatureBinning::kMaxCuts + 1> bin_sum;
  std::array<size_t, FeatureBinning::kMaxCuts + 1> bin_count;
  std::fill_n(bin_sum.begin(), num_cuts + 1, 0.0);
  std::fill_n(bin_count.begin(), num_cuts + 1, size_t{0});
  for (size_t i = begin; i < end; ++i) {
    const size_t row = rows[i];
    const size_t code = codes[row];
    bin_count[code] += 1;
    bin_sum[code] += targets[row];
  }
  const size_t count = end - begin;
  const double n = static_cast<double>(count);
  double left_sum = 0.0;
  size_t left_count = 0;
  for (size_t b = 0; b < num_cuts; ++b) {
    left_count += bin_count[b];
    left_sum += bin_sum[b];
    if (left_count == count) break;  // remaining bins are empty on this node
    if (left_count == 0 || left_count < min_samples_leaf ||
        count - left_count < min_samples_leaf) {
      continue;
    }
    const double nl = static_cast<double>(left_count);
    const double nr = static_cast<double>(count - left_count);
    const double right_sum = sum - left_sum;
    const double gain = left_sum * left_sum / nl +
                        right_sum * right_sum / nr - sum * sum / n;
    if (gain > best.gain) {
      best.found = true;
      best.feature = feature;
      best.threshold = binning.CutValue(feature, b);
      best.gain = gain;
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// RegressionTree
// ---------------------------------------------------------------------------

common::Status RegressionTree::Fit(const linalg::Matrix& features,
                                   const std::vector<double>& targets,
                                   const std::vector<size_t>& rows,
                                   common::Rng& rng,
                                   const FeatureBinning* binning) {
  if (features.rows() != targets.size()) {
    return common::Status::InvalidArgument(
        "features and targets disagree on the number of rows");
  }
  if (rows.empty()) {
    return common::Status::InvalidArgument("cannot fit a tree on zero rows");
  }
  FeatureBinning local_binning;
  binning_ = nullptr;
  if (options_.binned_split_search) {
    if (binning == nullptr) {
      local_binning = FeatureBinning::Build(features);
      binning = &local_binning;
    }
    if (binning->num_rows() != features.rows() ||
        binning->num_features() != features.cols()) {
      return common::Status::InvalidArgument(
          "feature binning does not match the training matrix shape");
    }
    binning_ = binning;
  }
  nodes_.clear();
  std::vector<size_t> mutable_rows = rows;
  Grow(features, targets, mutable_rows, 0, mutable_rows.size(), 0, rng);
  binning_ = nullptr;
  return common::Status::OK();
}

common::Status RegressionTree::Fit(const linalg::Matrix& features,
                                   const std::vector<double>& targets,
                                   common::Rng& rng,
                                   const FeatureBinning* binning) {
  std::vector<size_t> rows(features.rows());
  std::iota(rows.begin(), rows.end(), 0);
  return Fit(features, targets, rows, rng, binning);
}

int32_t RegressionTree::Grow(const linalg::Matrix& features,
                             const std::vector<double>& targets,
                             std::vector<size_t>& rows, size_t begin,
                             size_t end, int depth, common::Rng& rng) {
  const size_t count = end - begin;
  double sum = 0.0;
  double sum_squares = 0.0;
  for (size_t i = begin; i < end; ++i) {
    const double t = targets[rows[i]];
    sum += t;
    sum_squares += t * t;
  }
  const double n = static_cast<double>(count);
  const double mean = sum / n;
  const double node_sse = sum_squares - sum * sum / n;

  const int32_t node_id = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_id].value = mean;

  if (depth >= options_.max_depth ||
      count < 2 * options_.min_samples_leaf || node_sse <= 0.0) {
    return node_id;
  }

  SplitCandidate best;
  std::vector<std::pair<double, double>> points;  // (feature value, target)
  points.reserve(count);
  for (size_t feature :
       CandidateFeatures(features.cols(), options_.feature_fraction, rng)) {
    if (binning_ != nullptr) {
      BestBinnedSplit(*binning_, targets, rows, begin, end, feature, sum,
                      options_.min_samples_leaf, best);
      continue;
    }
    if (!FillSortedFeaturePoints(features, rows, begin, end, feature, targets,
                                 points)) {
      continue;
    }
    double left_sum = 0.0;
    double left_sum_squares = 0.0;
    for (size_t i = 0; i + 1 < count; ++i) {
      left_sum += points[i].second;
      left_sum_squares += points[i].second * points[i].second;
      if (points[i].first == points[i + 1].first) continue;
      const size_t left_count = i + 1;
      const size_t right_count = count - left_count;
      if (left_count < options_.min_samples_leaf ||
          right_count < options_.min_samples_leaf) {
        continue;
      }
      const double nl = static_cast<double>(left_count);
      const double nr = static_cast<double>(right_count);
      const double right_sum = sum - left_sum;
      const double right_sum_squares = sum_squares - left_sum_squares;
      const double left_sse = left_sum_squares - left_sum * left_sum / nl;
      const double right_sse =
          right_sum_squares - right_sum * right_sum / nr;
      const double gain = node_sse - left_sse - right_sse;
      if (gain > best.gain) {
        best.found = true;
        best.feature = feature;
        best.threshold = 0.5 * (points[i].first + points[i + 1].first);
        best.gain = gain;
      }
    }
  }

  if (!best.found || best.gain < options_.min_impurity_decrease) {
    return node_id;
  }

  // Partition rows[begin, end) around the chosen threshold.
  auto middle = std::partition(
      rows.begin() + static_cast<ptrdiff_t>(begin),
      rows.begin() + static_cast<ptrdiff_t>(end), [&](size_t row) {
        return features.At(row, best.feature) <= best.threshold;
      });
  const size_t split =
      static_cast<size_t>(middle - rows.begin());
  if (split == begin || split == end) {
    // The midpoint of two adjacent feature values can round onto the larger
    // value, sending every row to one side. Such a split is unusable — the
    // empty child's mean would be NaN — so keep this node as a leaf.
    return node_id;
  }

  nodes_[node_id].feature = static_cast<int32_t>(best.feature);
  nodes_[node_id].threshold = best.threshold;
  const int32_t left =
      Grow(features, targets, rows, begin, split, depth + 1, rng);
  nodes_[node_id].left = left;
  const int32_t right =
      Grow(features, targets, rows, split, end, depth + 1, rng);
  nodes_[node_id].right = right;
  return node_id;
}

double RegressionTree::PredictRow(const double* row) const {
  BBV_CHECK(!nodes_.empty()) << "Predict before Fit";
  int32_t node = 0;
  while (nodes_[static_cast<size_t>(node)].feature >= 0) {
    const Node& n = nodes_[static_cast<size_t>(node)];
    node = row[n.feature] <= n.threshold ? n.left : n.right;
  }
  return nodes_[static_cast<size_t>(node)].value;
}

std::vector<double> RegressionTree::Predict(
    const linalg::Matrix& features) const {
  std::vector<double> result(features.rows());
  PredictInto(features, result);
  return result;
}

void RegressionTree::PredictInto(const linalg::Matrix& features,
                                 std::span<double> out) const {
  BBV_CHECK(!nodes_.empty()) << "Predict before Fit";
  BBV_CHECK_EQ(out.size(), features.rows());
  for (size_t i = 0; i < features.rows(); ++i) {
    // This loop IS the reference scalar walk the batch API falls back to.
    // bbv-lint: allow(batch-api) production batch paths ride ForestKernel
    out[i] = PredictRow(features.RowData(i));
  }
}

// ---------------------------------------------------------------------------
// DecisionTreeClassifier
// ---------------------------------------------------------------------------

common::Status DecisionTreeClassifier::Fit(const linalg::Matrix& features,
                                           const std::vector<int>& labels,
                                           int num_classes, common::Rng& rng) {
  if (features.rows() != labels.size()) {
    return common::Status::InvalidArgument(
        "features and labels disagree on the number of rows");
  }
  if (features.rows() == 0) {
    return common::Status::InvalidArgument("cannot fit on an empty matrix");
  }
  if (num_classes < 2) {
    return common::Status::InvalidArgument("need at least two classes");
  }
  num_classes_ = num_classes;
  nodes_.clear();
  std::vector<size_t> rows(features.rows());
  std::iota(rows.begin(), rows.end(), 0);
  Grow(features, labels, rows, 0, rows.size(), 0, rng);
  return common::Status::OK();
}

int32_t DecisionTreeClassifier::Grow(const linalg::Matrix& features,
                                     const std::vector<int>& labels,
                                     std::vector<size_t>& rows, size_t begin,
                                     size_t end, int depth, common::Rng& rng) {
  const size_t count = end - begin;
  const auto m = static_cast<size_t>(num_classes_);
  std::vector<double> class_counts(m, 0.0);
  for (size_t i = begin; i < end; ++i) {
    ++class_counts[static_cast<size_t>(labels[rows[i]])];
  }
  const double n = static_cast<double>(count);
  const int32_t node_id = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_id].class_probabilities.resize(m);
  for (size_t k = 0; k < m; ++k) {
    nodes_[node_id].class_probabilities[k] = class_counts[k] / n;
  }
  double gini_sum = 0.0;
  for (double c : class_counts) gini_sum += c * c;
  // Weighted Gini impurity: n * (1 - sum p^2) = n - sum(c^2)/n.
  const double node_impurity = n - gini_sum / n;

  if (depth >= options_.max_depth ||
      count < 2 * options_.min_samples_leaf || node_impurity <= 0.0) {
    return node_id;
  }

  SplitCandidate best;
  std::vector<std::pair<double, int>> points;  // (feature value, label)
  points.reserve(count);
  std::vector<double> left_counts(m);
  for (size_t feature :
       CandidateFeatures(features.cols(), options_.feature_fraction, rng)) {
    if (!FillSortedFeaturePoints(features, rows, begin, end, feature, labels,
                                 points)) {
      continue;
    }
    std::fill(left_counts.begin(), left_counts.end(), 0.0);
    double left_gini_sum = 0.0;  // sum of squared left counts
    for (size_t i = 0; i + 1 < count; ++i) {
      double& c = left_counts[static_cast<size_t>(points[i].second)];
      left_gini_sum += 2.0 * c + 1.0;  // (c+1)^2 - c^2
      c += 1.0;
      if (points[i].first == points[i + 1].first) continue;
      const size_t left_count = i + 1;
      const size_t right_count = count - left_count;
      if (left_count < options_.min_samples_leaf ||
          right_count < options_.min_samples_leaf) {
        continue;
      }
      const double nl = static_cast<double>(left_count);
      const double nr = static_cast<double>(right_count);
      double right_gini_sum = 0.0;
      for (size_t k = 0; k < m; ++k) {
        const double right = class_counts[k] - left_counts[k];
        right_gini_sum += right * right;
      }
      const double left_impurity = nl - left_gini_sum / nl;
      const double right_impurity = nr - right_gini_sum / nr;
      const double gain = node_impurity - left_impurity - right_impurity;
      if (gain > best.gain) {
        best.found = true;
        best.feature = feature;
        best.threshold = 0.5 * (points[i].first + points[i + 1].first);
        best.gain = gain;
      }
    }
  }

  if (!best.found || best.gain < options_.min_impurity_decrease) {
    return node_id;
  }

  auto middle = std::partition(
      rows.begin() + static_cast<ptrdiff_t>(begin),
      rows.begin() + static_cast<ptrdiff_t>(end), [&](size_t row) {
        return features.At(row, best.feature) <= best.threshold;
      });
  const size_t split = static_cast<size_t>(middle - rows.begin());
  BBV_DCHECK(split > begin && split < end);

  nodes_[node_id].feature = static_cast<int32_t>(best.feature);
  nodes_[node_id].threshold = best.threshold;
  const int32_t left =
      Grow(features, labels, rows, begin, split, depth + 1, rng);
  nodes_[node_id].left = left;
  const int32_t right =
      Grow(features, labels, rows, split, end, depth + 1, rng);
  nodes_[node_id].right = right;
  return node_id;
}

linalg::Matrix DecisionTreeClassifier::PredictProba(
    const linalg::Matrix& features) const {
  BBV_CHECK(!nodes_.empty()) << "PredictProba before Fit";
  const auto m = static_cast<size_t>(num_classes_);
  linalg::Matrix result(features.rows(), m);
  for (size_t i = 0; i < features.rows(); ++i) {
    const double* row = features.RowData(i);
    int32_t node = 0;
    while (nodes_[static_cast<size_t>(node)].feature >= 0) {
      const Node& n = nodes_[static_cast<size_t>(node)];
      node = row[n.feature] <= n.threshold ? n.left : n.right;
    }
    const auto& probabilities =
        nodes_[static_cast<size_t>(node)].class_probabilities;
    std::copy(probabilities.begin(), probabilities.end(), result.RowData(i));
  }
  return result;
}

}  // namespace bbv::ml

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

namespace bbv::ml {

void RegressionTree::Save(common::BinaryWriter& writer) const {
  std::vector<int32_t> features;
  std::vector<int32_t> lefts;
  std::vector<int32_t> rights;
  std::vector<double> thresholds;
  std::vector<double> values;
  features.reserve(nodes_.size());
  for (const Node& node : nodes_) {
    features.push_back(node.feature);
    lefts.push_back(node.left);
    rights.push_back(node.right);
    thresholds.push_back(node.threshold);
    values.push_back(node.value);
  }
  writer.WriteInt32Vector(features);
  writer.WriteInt32Vector(lefts);
  writer.WriteInt32Vector(rights);
  writer.WriteDoubleVector(thresholds);
  writer.WriteDoubleVector(values);
}

common::Result<RegressionTree> RegressionTree::Load(
    common::BinaryReader& reader) {
  BBV_ASSIGN_OR_RETURN(std::vector<int32_t> features,
                       reader.ReadInt32Vector());
  BBV_ASSIGN_OR_RETURN(std::vector<int32_t> lefts, reader.ReadInt32Vector());
  BBV_ASSIGN_OR_RETURN(std::vector<int32_t> rights, reader.ReadInt32Vector());
  BBV_ASSIGN_OR_RETURN(std::vector<double> thresholds,
                       reader.ReadDoubleVector());
  BBV_ASSIGN_OR_RETURN(std::vector<double> values, reader.ReadDoubleVector());
  const size_t count = features.size();
  if (lefts.size() != count || rights.size() != count ||
      thresholds.size() != count || values.size() != count || count == 0) {
    return common::Status::InvalidArgument("inconsistent tree arrays");
  }
  RegressionTree tree;
  tree.nodes_.resize(count);
  const auto node_count = static_cast<int32_t>(count);
  for (size_t i = 0; i < count; ++i) {
    Node& node = tree.nodes_[i];
    node.feature = features[i];
    node.left = lefts[i];
    node.right = rights[i];
    node.threshold = thresholds[i];
    node.value = values[i];
    // Internal nodes must reference valid children.
    if (node.feature >= 0 &&
        (node.left < 0 || node.left >= node_count || node.right < 0 ||
         node.right >= node_count)) {
      return common::Status::InvalidArgument("corrupt tree child index");
    }
  }
  return tree;
}

}  // namespace bbv::ml

// ---------------------------------------------------------------------------
// DecisionTreeClassifier serialization
// ---------------------------------------------------------------------------

namespace bbv::ml {

namespace {
constexpr char kCartMagic[] = "BBVCT";
constexpr uint32_t kCartVersion = 1;
}  // namespace

common::Status DecisionTreeClassifier::Save(std::ostream& out) const {
  if (nodes_.empty()) {
    return common::Status::FailedPrecondition("Save before Fit");
  }
  common::BinaryWriter writer(out);
  writer.WriteMagic(kCartMagic, kCartVersion);
  writer.WriteInt32(num_classes_);
  writer.WriteUint64(nodes_.size());
  for (const Node& node : nodes_) {
    writer.WriteInt32(node.feature);
    writer.WriteDouble(node.threshold);
    writer.WriteInt32(node.left);
    writer.WriteInt32(node.right);
    writer.WriteDoubleVector(node.class_probabilities);
  }
  return writer.status();
}

common::Result<DecisionTreeClassifier> DecisionTreeClassifier::Load(
    std::istream& in) {
  common::BinaryReader reader(in);
  BBV_RETURN_NOT_OK(reader.ExpectMagic(kCartMagic, kCartVersion));
  DecisionTreeClassifier tree;
  BBV_ASSIGN_OR_RETURN(tree.num_classes_, reader.ReadInt32());
  BBV_ASSIGN_OR_RETURN(uint64_t count, reader.ReadUint64());
  if (tree.num_classes_ < 2 || count == 0 || count > 100'000'000) {
    return common::Status::InvalidArgument("corrupt tree header");
  }
  tree.nodes_.resize(count);
  const auto node_count = static_cast<int32_t>(count);
  for (Node& node : tree.nodes_) {
    BBV_ASSIGN_OR_RETURN(node.feature, reader.ReadInt32());
    BBV_ASSIGN_OR_RETURN(node.threshold, reader.ReadDouble());
    BBV_ASSIGN_OR_RETURN(node.left, reader.ReadInt32());
    BBV_ASSIGN_OR_RETURN(node.right, reader.ReadInt32());
    BBV_ASSIGN_OR_RETURN(node.class_probabilities,
                         reader.ReadDoubleVector());
    if (node.class_probabilities.size() !=
        static_cast<size_t>(tree.num_classes_)) {
      return common::Status::InvalidArgument("corrupt leaf payload");
    }
    if (node.feature >= 0 &&
        (node.left < 0 || node.left >= node_count || node.right < 0 ||
         node.right >= node_count)) {
      return common::Status::InvalidArgument("corrupt tree child index");
    }
  }
  return tree;
}

}  // namespace bbv::ml
