#include "ml/cross_validation.h"

#include <cmath>

#include "common/parallel.h"
#include "ml/metrics.h"

namespace bbv::ml {

std::vector<Fold> KFoldIndices(size_t n, int k, common::Rng& rng) {
  BBV_CHECK_GE(k, 2);
  BBV_CHECK_LE(static_cast<size_t>(k), n);
  const std::vector<size_t> order = rng.Permutation(n);
  std::vector<Fold> folds(static_cast<size_t>(k));
  for (size_t i = 0; i < n; ++i) {
    const size_t fold = i % static_cast<size_t>(k);
    folds[fold].test_rows.push_back(order[i]);
  }
  for (size_t f = 0; f < folds.size(); ++f) {
    for (size_t g = 0; g < folds.size(); ++g) {
      if (f == g) continue;
      folds[f].train_rows.insert(folds[f].train_rows.end(),
                                 folds[g].test_rows.begin(),
                                 folds[g].test_rows.end());
    }
  }
  return folds;
}

common::Result<double> CrossValAccuracy(
    const std::function<std::unique_ptr<Classifier>()>& factory,
    const linalg::Matrix& features, const std::vector<int>& labels,
    int num_classes, int folds, common::Rng& rng) {
  if (features.rows() != labels.size()) {
    return common::Status::InvalidArgument(
        "features and labels disagree on the number of rows");
  }
  const std::vector<Fold> splits = KFoldIndices(labels.size(), folds, rng);
  // One pre-forked stream per fold keeps the mean accuracy identical at
  // every thread count; folds fit concurrently.
  std::vector<common::Rng> fold_rngs = rng.ForkStreams(splits.size());
  std::vector<double> fold_scores(splits.size(), 0.0);
  BBV_RETURN_NOT_OK(common::ParallelFor(
      splits.size(), [&](size_t f) -> common::Status {
        const Fold& fold = splits[f];
        const linalg::Matrix train_x = features.SelectRows(fold.train_rows);
        const linalg::Matrix test_x = features.SelectRows(fold.test_rows);
        std::vector<int> train_y;
        std::vector<int> test_y;
        train_y.reserve(fold.train_rows.size());
        test_y.reserve(fold.test_rows.size());
        for (size_t row : fold.train_rows) train_y.push_back(labels[row]);
        for (size_t row : fold.test_rows) test_y.push_back(labels[row]);
        std::unique_ptr<Classifier> model = factory();
        BBV_RETURN_NOT_OK(model->Fit(train_x, train_y, num_classes,
                                     fold_rngs[f]));
        fold_scores[f] = Accuracy(PredictLabels(*model, test_x), test_y);
        return common::Status::OK();
      }));
  double total = 0.0;
  for (double score : fold_scores) total += score;
  return total / static_cast<double>(splits.size());
}

common::Result<double> CrossValRegressionMae(
    const std::function<RandomForestRegressor()>& factory,
    const linalg::Matrix& features, const std::vector<double>& targets,
    int folds, common::Rng& rng) {
  if (features.rows() != targets.size()) {
    return common::Status::InvalidArgument(
        "features and targets disagree on the number of rows");
  }
  const std::vector<Fold> splits = KFoldIndices(targets.size(), folds, rng);
  std::vector<common::Rng> fold_rngs = rng.ForkStreams(splits.size());
  std::vector<double> fold_errors(splits.size(), 0.0);
  std::vector<size_t> fold_counts(splits.size(), 0);
  BBV_RETURN_NOT_OK(common::ParallelFor(
      splits.size(), [&](size_t f) -> common::Status {
        const Fold& fold = splits[f];
        const linalg::Matrix train_x = features.SelectRows(fold.train_rows);
        const linalg::Matrix test_x = features.SelectRows(fold.test_rows);
        std::vector<double> train_y;
        train_y.reserve(fold.train_rows.size());
        for (size_t row : fold.train_rows) train_y.push_back(targets[row]);
        RandomForestRegressor model = factory();
        BBV_RETURN_NOT_OK(model.Fit(train_x, train_y, fold_rngs[f]));
        const std::vector<double> predictions = model.Predict(test_x);
        double fold_error = 0.0;
        for (size_t i = 0; i < fold.test_rows.size(); ++i) {
          fold_error += std::abs(predictions[i] - targets[fold.test_rows[i]]);
        }
        fold_errors[f] = fold_error;
        fold_counts[f] = fold.test_rows.size();
        return common::Status::OK();
      }));
  double total_error = 0.0;
  size_t total_count = 0;
  for (size_t f = 0; f < splits.size(); ++f) {
    total_error += fold_errors[f];
    total_count += fold_counts[f];
  }
  return total_error / static_cast<double>(total_count);
}

common::Result<size_t> GridSearchClassifier(
    const std::vector<std::function<std::unique_ptr<Classifier>()>>&
        candidates,
    const linalg::Matrix& features, const std::vector<int>& labels,
    int num_classes, int folds, common::Rng& rng) {
  if (candidates.empty()) {
    return common::Status::InvalidArgument("no candidates to search over");
  }
  std::vector<common::Rng> candidate_rngs = rng.ForkStreams(candidates.size());
  std::vector<double> candidate_scores(candidates.size(), 0.0);
  BBV_RETURN_NOT_OK(common::ParallelFor(
      candidates.size(), [&](size_t i) -> common::Status {
        BBV_ASSIGN_OR_RETURN(
            candidate_scores[i],
            CrossValAccuracy(candidates[i], features, labels, num_classes,
                             folds, candidate_rngs[i]));
        return common::Status::OK();
      }));
  // Serial argmax; ties keep the earliest candidate, as before.
  size_t best_index = 0;
  double best_score = -1.0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (candidate_scores[i] > best_score) {
      best_score = candidate_scores[i];
      best_index = i;
    }
  }
  return best_index;
}

}  // namespace bbv::ml
