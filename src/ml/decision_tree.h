#ifndef BBV_ML_DECISION_TREE_H_
#define BBV_ML_DECISION_TREE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/serialize.h"
#include "common/status.h"
#include "linalg/matrix.h"
#include "ml/classifier.h"

namespace bbv::ml {

class FeatureBinning;

/// Shared tree-growing configuration.
struct TreeOptions {
  int max_depth = 6;
  size_t min_samples_leaf = 2;
  /// Fraction of features examined per split (1.0 = all; random forests use
  /// a subsample for decorrelation).
  double feature_fraction = 1.0;
  /// Minimum impurity decrease to accept a split.
  double min_impurity_decrease = 1e-9;
  /// Opt-in histogram split search for RegressionTree: scan the uint8
  /// quantile-bin histograms of a FeatureBinning (built once per ensemble
  /// Fit, or locally when the caller passes none) instead of re-sorting the
  /// node's (value, target) pairs per feature per node. Thresholds are
  /// restricted to the <= 255 per-feature cut values, so binned trees are a
  /// (deterministic, thread-count independent) approximation of the exact
  /// search; exact stays the default. Ignored by DecisionTreeClassifier.
  bool binned_split_search = false;
};

/// CART regression tree (variance-reduction splits, mean leaves). Used as
/// the weak learner inside the random-forest regressor and the
/// gradient-boosted classifier.
class RegressionTree {
 public:
  /// One tree node in the pointer-free index representation the tree is
  /// grown into. Exposed read-only (see nodes()) so ml::ForestKernel can
  /// compile fitted ensembles into its flattened inference layout.
  struct Node {
    int32_t feature = -1;     // -1 marks a leaf
    double threshold = 0.0;   // go left when x[feature] <= threshold
    int32_t left = -1;
    int32_t right = -1;
    double value = 0.0;       // leaf prediction
  };

  explicit RegressionTree(TreeOptions options = {}) : options_(options) {}

  /// Fits the tree on rows `rows` of `features` against `targets` (full
  /// column, indexed by row id). When options.binned_split_search is set,
  /// `binning` is the shared pre-binning of `features` (row-count and
  /// feature-count matched); pass nullptr to have the tree build a local
  /// one. `binning` is ignored by the exact (default) search.
  common::Status Fit(const linalg::Matrix& features,
                     const std::vector<double>& targets,
                     const std::vector<size_t>& rows, common::Rng& rng,
                     const FeatureBinning* binning = nullptr);

  /// Convenience: fit on all rows.
  common::Status Fit(const linalg::Matrix& features,
                     const std::vector<double>& targets, common::Rng& rng,
                     const FeatureBinning* binning = nullptr);

  /// Prediction for one feature row. This is the scalar node-walking path —
  /// the legacy reference the flattened ForestKernel is proven bit-identical
  /// against — and the right call for single rows (e.g. while an ensemble is
  /// still growing); batch prediction over a whole ensemble should go
  /// through the kernel instead.
  double PredictRow(const double* row) const;

  /// Predictions for every row of `features`.
  std::vector<double> Predict(const linalg::Matrix& features) const;

  /// Allocation-free batch surface: writes one prediction per row of
  /// `features` into `out` (whose size must equal features.rows()).
  void PredictInto(const linalg::Matrix& features,
                   std::span<double> out) const;

  size_t NumNodes() const { return nodes_.size(); }

  /// Read-only view of the grown nodes (node 0 is the root); the input
  /// ml::ForestKernel::Compile flattens.
  const std::vector<Node>& nodes() const { return nodes_; }

  /// Persists the fitted tree structure (not the training options).
  void Save(common::BinaryWriter& writer) const;

  /// Restores a tree persisted with Save.
  static common::Result<RegressionTree> Load(common::BinaryReader& reader);

 private:
  int32_t Grow(const linalg::Matrix& features,
               const std::vector<double>& targets, std::vector<size_t>& rows,
               size_t begin, size_t end, int depth, common::Rng& rng);

  TreeOptions options_;
  std::vector<Node> nodes_;
  /// Active only inside Fit when the binned search is enabled.
  const FeatureBinning* binning_ = nullptr;
};

/// CART classification tree (Gini splits, class-frequency leaves). Included
/// as one of the model families the AutoML search explores.
class DecisionTreeClassifier : public Classifier {
 public:
  explicit DecisionTreeClassifier(TreeOptions options = {})
      : options_(options) {}

  common::Status Fit(const linalg::Matrix& features,
                     const std::vector<int>& labels, int num_classes,
                     common::Rng& rng) override;
  linalg::Matrix PredictProba(const linalg::Matrix& features) const override;
  std::string Name() const override { return "cart"; }

  /// Persists the fitted tree; Load restores bit-identical inference.
  common::Status Save(std::ostream& out) const;
  static common::Result<DecisionTreeClassifier> Load(std::istream& in);

 private:
  struct Node {
    int32_t feature = -1;
    double threshold = 0.0;
    int32_t left = -1;
    int32_t right = -1;
    std::vector<double> class_probabilities;  // leaf payload
  };

  int32_t Grow(const linalg::Matrix& features, const std::vector<int>& labels,
               std::vector<size_t>& rows, size_t begin, size_t end, int depth,
               common::Rng& rng);

  TreeOptions options_;
  std::vector<Node> nodes_;
};

}  // namespace bbv::ml

#endif  // BBV_ML_DECISION_TREE_H_
