#include "ml/sgd_logistic_regression.h"

#include <algorithm>
#include <cmath>

#include "linalg/matrix_io.h"

namespace bbv::ml {

common::Status SgdLogisticRegression::Fit(const linalg::Matrix& features,
                                          const std::vector<int>& labels,
                                          int num_classes, common::Rng& rng) {
  if (features.rows() != labels.size()) {
    return common::Status::InvalidArgument(
        "features and labels disagree on the number of rows");
  }
  if (features.rows() == 0) {
    return common::Status::InvalidArgument("cannot fit on an empty matrix");
  }
  if (num_classes < 2) {
    return common::Status::InvalidArgument("need at least two classes");
  }
  const size_t d = features.cols();
  const auto m = static_cast<size_t>(num_classes);
  num_classes_ = num_classes;
  weights_ = linalg::Matrix(d, m);
  bias_.assign(m, 0.0);
  // Small random init breaks symmetry between classes.
  for (double& w : weights_.data()) w = rng.Gaussian(0.0, 0.01);

  std::vector<size_t> order(features.rows());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  size_t step = 0;
  std::vector<double> logits(m);
  std::vector<double> probabilities(m);
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t start = 0; start < order.size();
         start += options_.batch_size) {
      const size_t end =
          std::min(start + options_.batch_size, order.size());
      const double batch = static_cast<double>(end - start);
      ++step;
      const double eta =
          options_.learning_rate /
          std::pow(static_cast<double>(step), options_.decay_power);
      // Accumulate gradients over the batch.
      linalg::Matrix grad_w(d, m);
      std::vector<double> grad_b(m, 0.0);
      for (size_t index = start; index < end; ++index) {
        const size_t row = order[index];
        const double* x = features.RowData(row);
        for (size_t k = 0; k < m; ++k) {
          double z = bias_[k];
          for (size_t j = 0; j < d; ++j) z += x[j] * weights_.At(j, k);
          logits[k] = z;
        }
        const double max_logit =
            *std::max_element(logits.begin(), logits.end());
        double sum = 0.0;
        for (size_t k = 0; k < m; ++k) {
          probabilities[k] = std::exp(logits[k] - max_logit);
          sum += probabilities[k];
        }
        for (size_t k = 0; k < m; ++k) {
          const double error =
              probabilities[k] / sum -
              (static_cast<int>(k) == labels[row] ? 1.0 : 0.0);
          grad_b[k] += error;
          for (size_t j = 0; j < d; ++j) {
            // bbv-lint: allow(float-eq) exact-zero sparsity skip
            if (x[j] != 0.0) grad_w.At(j, k) += error * x[j];
          }
        }
      }
      // Parameter update with regularization.
      for (size_t j = 0; j < d; ++j) {
        for (size_t k = 0; k < m; ++k) {
          double& w = weights_.At(j, k);
          double gradient = grad_w.At(j, k) / batch;
          if (options_.penalty == Penalty::kL2) {
            gradient += options_.regularization * w;
          } else if (options_.penalty == Penalty::kL1) {
            gradient += options_.regularization * (w > 0 ? 1.0 : (w < 0 ? -1.0 : 0.0));
          }
          w -= eta * gradient;
        }
      }
      for (size_t k = 0; k < m; ++k) {
        bias_[k] -= eta * grad_b[k] / batch;
      }
    }
  }
  fitted_ = true;
  return common::Status::OK();
}

linalg::Matrix SgdLogisticRegression::PredictProba(
    const linalg::Matrix& features) const {
  BBV_CHECK(fitted_) << "PredictProba before Fit";
  BBV_CHECK_EQ(features.cols(), weights_.rows());
  linalg::Matrix logits = features.MatMul(weights_);
  for (size_t i = 0; i < logits.rows(); ++i) {
    for (size_t k = 0; k < logits.cols(); ++k) {
      logits.At(i, k) += bias_[k];
    }
  }
  return linalg::Softmax(logits);
}

}  // namespace bbv::ml

namespace bbv::ml {

namespace {
constexpr char kLrMagic[] = "BBVLR";
constexpr uint32_t kLrVersion = 1;
}  // namespace

common::Status SgdLogisticRegression::Save(std::ostream& out) const {
  if (!fitted_) {
    return common::Status::FailedPrecondition("Save before Fit");
  }
  common::BinaryWriter writer(out);
  writer.WriteMagic(kLrMagic, kLrVersion);
  writer.WriteInt32(num_classes_);
  linalg::WriteMatrix(writer, weights_);
  writer.WriteDoubleVector(bias_);
  return writer.status();
}

common::Result<SgdLogisticRegression> SgdLogisticRegression::Load(
    std::istream& in) {
  common::BinaryReader reader(in);
  BBV_RETURN_NOT_OK(reader.ExpectMagic(kLrMagic, kLrVersion));
  SgdLogisticRegression model;
  BBV_ASSIGN_OR_RETURN(model.num_classes_, reader.ReadInt32());
  BBV_ASSIGN_OR_RETURN(model.weights_, linalg::ReadMatrix(reader));
  BBV_ASSIGN_OR_RETURN(model.bias_, reader.ReadDoubleVector());
  if (model.num_classes_ < 2 ||
      model.weights_.cols() != static_cast<size_t>(model.num_classes_) ||
      model.bias_.size() != model.weights_.cols()) {
    return common::Status::InvalidArgument("corrupt logistic regression");
  }
  model.fitted_ = true;
  return model;
}

}  // namespace bbv::ml
