#ifndef BBV_ML_CROSS_VALIDATION_H_
#define BBV_ML_CROSS_VALIDATION_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "linalg/matrix.h"
#include "ml/classifier.h"
#include "ml/random_forest.h"

namespace bbv::ml {

/// Row indices for one cross-validation fold.
struct Fold {
  std::vector<size_t> train_rows;
  std::vector<size_t> test_rows;
};

/// Shuffled k-fold partition of [0, n). Every row appears in exactly one
/// test set. Requires 2 <= k <= n.
std::vector<Fold> KFoldIndices(size_t n, int k, common::Rng& rng);

/// Mean k-fold accuracy of classifiers produced by `factory`.
common::Result<double> CrossValAccuracy(
    const std::function<std::unique_ptr<Classifier>()>& factory,
    const linalg::Matrix& features, const std::vector<int>& labels,
    int num_classes, int folds, common::Rng& rng);

/// Mean k-fold absolute error of regressors produced by `factory` (the
/// objective the paper's performance predictor minimizes).
common::Result<double> CrossValRegressionMae(
    const std::function<RandomForestRegressor()>& factory,
    const linalg::Matrix& features, const std::vector<double>& targets,
    int folds, common::Rng& rng);

/// Picks the candidate classifier factory with the best k-fold accuracy.
/// Returns the winning index. Mirrors the paper's five-fold grid searches.
common::Result<size_t> GridSearchClassifier(
    const std::vector<std::function<std::unique_ptr<Classifier>()>>&
        candidates,
    const linalg::Matrix& features, const std::vector<int>& labels,
    int num_classes, int folds, common::Rng& rng);

}  // namespace bbv::ml

#endif  // BBV_ML_CROSS_VALIDATION_H_
