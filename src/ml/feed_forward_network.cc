#include "ml/feed_forward_network.h"

#include <algorithm>
#include <cmath>

#include "linalg/matrix_io.h"

namespace bbv::ml {

namespace {

constexpr double kAdamBeta1 = 0.9;
constexpr double kAdamBeta2 = 0.999;
constexpr double kAdamEpsilon = 1e-8;

void ReluInPlace(linalg::Matrix& m) {
  for (double& v : m.data()) v = std::max(v, 0.0);
}

}  // namespace

common::Status FeedForwardNetwork::Fit(const linalg::Matrix& features,
                                       const std::vector<int>& labels,
                                       int num_classes, common::Rng& rng) {
  if (features.rows() != labels.size()) {
    return common::Status::InvalidArgument(
        "features and labels disagree on the number of rows");
  }
  if (features.rows() == 0) {
    return common::Status::InvalidArgument("cannot fit on an empty matrix");
  }
  if (num_classes < 2) {
    return common::Status::InvalidArgument("need at least two classes");
  }
  num_classes_ = num_classes;

  // Layer sizes: input -> hidden... -> classes.
  std::vector<size_t> sizes;
  sizes.push_back(features.cols());
  sizes.insert(sizes.end(), options_.hidden_sizes.begin(),
               options_.hidden_sizes.end());
  sizes.push_back(static_cast<size_t>(num_classes));

  layers_.clear();
  for (size_t l = 0; l + 1 < sizes.size(); ++l) {
    Layer layer;
    layer.weights = linalg::Matrix(sizes[l], sizes[l + 1]);
    // He initialization for ReLU layers.
    const double scale = std::sqrt(2.0 / static_cast<double>(sizes[l]));
    for (double& w : layer.weights.data()) w = rng.Gaussian(0.0, scale);
    layer.bias.assign(sizes[l + 1], 0.0);
    layer.m_weights = linalg::Matrix(sizes[l], sizes[l + 1]);
    layer.v_weights = linalg::Matrix(sizes[l], sizes[l + 1]);
    layer.m_bias.assign(sizes[l + 1], 0.0);
    layer.v_bias.assign(sizes[l + 1], 0.0);
    layers_.push_back(std::move(layer));
  }

  std::vector<size_t> order(features.rows());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  size_t step = 0;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t start = 0; start < order.size();
         start += options_.batch_size) {
      const size_t end = std::min(start + options_.batch_size, order.size());
      const std::vector<size_t> batch_rows(order.begin() + start,
                                           order.begin() + end);
      const linalg::Matrix batch = features.SelectRows(batch_rows);
      const double batch_size = static_cast<double>(batch.rows());
      ++step;

      // Forward with optional dropout on hidden activations.
      std::vector<linalg::Matrix> activations;
      activations.reserve(layers_.size() + 1);
      activations.push_back(batch);
      std::vector<std::vector<char>> dropout_masks(layers_.size());
      for (size_t l = 0; l < layers_.size(); ++l) {
        linalg::Matrix z = activations.back().MatMul(layers_[l].weights);
        for (size_t i = 0; i < z.rows(); ++i) {
          for (size_t j = 0; j < z.cols(); ++j) {
            z.At(i, j) += layers_[l].bias[j];
          }
        }
        const bool is_output = l + 1 == layers_.size();
        if (!is_output) {
          ReluInPlace(z);
          if (options_.dropout > 0.0) {
            dropout_masks[l].assign(z.size(), 1);
            const double keep = 1.0 - options_.dropout;
            for (size_t i = 0; i < z.data().size(); ++i) {
              if (rng.Bernoulli(options_.dropout)) {
                z.data()[i] = 0.0;
                dropout_masks[l][i] = 0;
              } else {
                z.data()[i] /= keep;  // inverted dropout
              }
            }
          }
        }
        activations.push_back(std::move(z));
      }
      linalg::Matrix probabilities = linalg::Softmax(activations.back());

      // Backward: delta at output = (p - onehot) / batch.
      linalg::Matrix delta = probabilities;
      for (size_t i = 0; i < batch_rows.size(); ++i) {
        delta.At(i, static_cast<size_t>(labels[batch_rows[i]])) -= 1.0;
      }
      for (double& v : delta.data()) v /= batch_size;

      for (size_t l = layers_.size(); l-- > 0;) {
        Layer& layer = layers_[l];
        const linalg::Matrix grad_w =
            activations[l].Transposed().MatMul(delta);
        std::vector<double> grad_b(layer.bias.size(), 0.0);
        for (size_t i = 0; i < delta.rows(); ++i) {
          for (size_t j = 0; j < delta.cols(); ++j) {
            grad_b[j] += delta.At(i, j);
          }
        }
        // Delta for the previous layer (before updating weights).
        if (l > 0) {
          linalg::Matrix next_delta =
              delta.MatMul(layer.weights.Transposed());
          // Backprop through ReLU (and dropout mask).
          const linalg::Matrix& hidden = activations[l];
          for (size_t i = 0; i < next_delta.data().size(); ++i) {
            if (hidden.data()[i] <= 0.0) next_delta.data()[i] = 0.0;
            if (options_.dropout > 0.0 && !dropout_masks[l - 1].empty() &&
                dropout_masks[l - 1][i] == 0) {
              next_delta.data()[i] = 0.0;
            }
          }
          delta = std::move(next_delta);
        }
        // Adam update.
        const double t = static_cast<double>(step);
        const double correction1 = 1.0 - std::pow(kAdamBeta1, t);
        const double correction2 = 1.0 - std::pow(kAdamBeta2, t);
        for (size_t i = 0; i < layer.weights.data().size(); ++i) {
          const double g =
              grad_w.data()[i] + options_.l2 * layer.weights.data()[i];
          double& m = layer.m_weights.data()[i];
          double& v = layer.v_weights.data()[i];
          m = kAdamBeta1 * m + (1.0 - kAdamBeta1) * g;
          v = kAdamBeta2 * v + (1.0 - kAdamBeta2) * g * g;
          layer.weights.data()[i] -=
              options_.learning_rate * (m / correction1) /
              (std::sqrt(v / correction2) + kAdamEpsilon);
        }
        for (size_t j = 0; j < layer.bias.size(); ++j) {
          double& m = layer.m_bias[j];
          double& v = layer.v_bias[j];
          m = kAdamBeta1 * m + (1.0 - kAdamBeta1) * grad_b[j];
          v = kAdamBeta2 * v + (1.0 - kAdamBeta2) * grad_b[j] * grad_b[j];
          layer.bias[j] -= options_.learning_rate * (m / correction1) /
                           (std::sqrt(v / correction2) + kAdamEpsilon);
        }
      }
    }
  }
  fitted_ = true;
  return common::Status::OK();
}

void FeedForwardNetwork::Forward(
    const linalg::Matrix& input,
    std::vector<linalg::Matrix>& activations) const {
  activations.clear();
  activations.push_back(input);
  for (size_t l = 0; l < layers_.size(); ++l) {
    linalg::Matrix z = activations.back().MatMul(layers_[l].weights);
    for (size_t i = 0; i < z.rows(); ++i) {
      for (size_t j = 0; j < z.cols(); ++j) {
        z.At(i, j) += layers_[l].bias[j];
      }
    }
    if (l + 1 != layers_.size()) ReluInPlace(z);
    activations.push_back(std::move(z));
  }
}

linalg::Matrix FeedForwardNetwork::PredictProba(
    const linalg::Matrix& features) const {
  BBV_CHECK(fitted_) << "PredictProba before Fit";
  std::vector<linalg::Matrix> activations;
  Forward(features, activations);
  return linalg::Softmax(activations.back());
}

}  // namespace bbv::ml

namespace bbv::ml {

namespace {
constexpr char kDnnMagic[] = "BBVNN";
constexpr uint32_t kDnnVersion = 1;
}  // namespace

common::Status FeedForwardNetwork::Save(std::ostream& out) const {
  if (!fitted_) {
    return common::Status::FailedPrecondition("Save before Fit");
  }
  common::BinaryWriter writer(out);
  writer.WriteMagic(kDnnMagic, kDnnVersion);
  writer.WriteInt32(num_classes_);
  writer.WriteUint64(layers_.size());
  for (const Layer& layer : layers_) {
    linalg::WriteMatrix(writer, layer.weights);
    writer.WriteDoubleVector(layer.bias);
  }
  return writer.status();
}

common::Result<FeedForwardNetwork> FeedForwardNetwork::Load(
    std::istream& in) {
  common::BinaryReader reader(in);
  BBV_RETURN_NOT_OK(reader.ExpectMagic(kDnnMagic, kDnnVersion));
  FeedForwardNetwork model;
  BBV_ASSIGN_OR_RETURN(model.num_classes_, reader.ReadInt32());
  BBV_ASSIGN_OR_RETURN(uint64_t layer_count, reader.ReadUint64());
  if (model.num_classes_ < 2 || layer_count == 0 || layer_count > 1000) {
    return common::Status::InvalidArgument("corrupt network header");
  }
  model.layers_.resize(layer_count);
  for (Layer& layer : model.layers_) {
    BBV_ASSIGN_OR_RETURN(layer.weights, linalg::ReadMatrix(reader));
    BBV_ASSIGN_OR_RETURN(layer.bias, reader.ReadDoubleVector());
    if (layer.bias.size() != layer.weights.cols()) {
      return common::Status::InvalidArgument("corrupt layer shapes");
    }
  }
  if (model.layers_.back().weights.cols() !=
      static_cast<size_t>(model.num_classes_)) {
    return common::Status::InvalidArgument("output layer width mismatch");
  }
  model.fitted_ = true;
  return model;
}

}  // namespace bbv::ml
