#include "ml/feature_binning.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/telemetry.h"

namespace bbv::ml {

FeatureBinning FeatureBinning::Build(const linalg::Matrix& features) {
  const common::telemetry::TraceSpan span("feature_binning.build");
  common::telemetry::IncrementCounter("feature_binning.build.calls");
  FeatureBinning binning;
  const size_t rows = features.rows();
  const size_t cols = features.cols();
  binning.num_rows_ = rows;
  binning.cut_offsets_.assign(cols + 1, 0);
  if (rows == 0) return binning;
  binning.codes_.assign(cols * rows, 0);

  std::vector<double> sorted(rows);
  std::vector<double> cuts;
  for (size_t f = 0; f < cols; ++f) {
    for (size_t i = 0; i < rows; ++i) {
      const double value = features.At(i, f);
      // NaN breaks the strict weak ordering the sort and the lower_bound
      // below rely on; binned training shares the repo-wide finiteness
      // contract of the other numeric surfaces.
      BBV_CHECK(std::isfinite(value))
          << "FeatureBinning::Build on non-finite feature value";
      sorted[i] = value;
    }
    std::sort(sorted.begin(), sorted.end());
    // Candidate cuts are actual column values strictly below the maximum
    // (a cut equal to the maximum would send every row left). Few distinct
    // values -> one cut per distinct value; many -> evenly spaced quantile
    // ranks, deduplicated so heavy ties collapse into a single cut.
    cuts.clear();
    const double column_max = sorted[rows - 1];
    for (size_t k = 1; k <= kMaxCuts; ++k) {
      const size_t rank = k * rows / (kMaxCuts + 1);
      const double value = sorted[std::min(rank, rows - 1)];
      if (value < column_max && (cuts.empty() || cuts.back() < value)) {
        cuts.push_back(value);
      }
    }
    // The rank grid can skip sparse distinct values when rows < kMaxCuts;
    // in that regime enumerate the distinct values below the max directly
    // so small nodes bin exactly like they sort.
    if (rows <= kMaxCuts) {
      cuts.clear();
      for (size_t i = 0; i + 1 < rows; ++i) {
        if (sorted[i] < sorted[i + 1]) cuts.push_back(sorted[i]);
      }
    }
    BBV_CHECK(cuts.size() <= kMaxCuts);
    uint8_t* codes = binning.codes_.data() + f * rows;
    for (size_t i = 0; i < rows; ++i) {
      const auto it =
          std::lower_bound(cuts.begin(), cuts.end(), features.At(i, f));
      codes[i] = static_cast<uint8_t>(it - cuts.begin());
    }
    binning.cut_values_.insert(binning.cut_values_.end(), cuts.begin(),
                               cuts.end());
    binning.cut_offsets_[f + 1] = binning.cut_values_.size();
  }
  return binning;
}

}  // namespace bbv::ml
