#ifndef BBV_ML_RANDOM_FOREST_H_
#define BBV_ML_RANDOM_FOREST_H_

#include <vector>

#include "common/rng.h"
#include "common/serialize.h"
#include "common/status.h"
#include "linalg/matrix.h"
#include "ml/decision_tree.h"

namespace bbv::ml {

/// Random-forest regressor: bootstrap-bagged CART regression trees with
/// per-split feature subsampling. This is the regression model behind the
/// paper's performance predictor (scikit-learn RandomForestRegressor,
/// grid-searched over the number of trees).
class RandomForestRegressor {
 public:
  struct Options {
    int num_trees = 100;
    TreeOptions tree;
    /// Bootstrap sample size as a fraction of the training set.
    double bootstrap_fraction = 1.0;

    Options() {
      tree.max_depth = 10;
      tree.min_samples_leaf = 2;
      tree.feature_fraction = 0.33;  // ~ one third of features per split
    }
  };

  RandomForestRegressor() : RandomForestRegressor(Options{}) {}
  explicit RandomForestRegressor(Options options) : options_(options) {}

  /// Trains the ensemble; targets are arbitrary reals (scores in [0,1] for
  /// the performance-prediction task).
  common::Status Fit(const linalg::Matrix& features,
                     const std::vector<double>& targets, common::Rng& rng);

  /// Mean prediction across trees for each row.
  std::vector<double> Predict(const linalg::Matrix& features) const;
  double PredictRow(const double* row) const;

  bool fitted() const { return !trees_.empty(); }
  int num_trees() const { return static_cast<int>(trees_.size()); }

  /// Persists the fitted ensemble to a stream; Load restores it so that
  /// Predict produces bit-identical results without retraining.
  common::Status Save(std::ostream& out) const;
  static common::Result<RandomForestRegressor> Load(std::istream& in);

 private:
  Options options_;
  std::vector<RegressionTree> trees_;
};

}  // namespace bbv::ml

#endif  // BBV_ML_RANDOM_FOREST_H_
