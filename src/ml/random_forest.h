#ifndef BBV_ML_RANDOM_FOREST_H_
#define BBV_ML_RANDOM_FOREST_H_

#include <span>
#include <vector>

#include "common/rng.h"
#include "common/serialize.h"
#include "common/status.h"
#include "linalg/matrix.h"
#include "ml/decision_tree.h"
#include "ml/forest_kernel.h"

namespace bbv::ml {

/// Random-forest regressor: bootstrap-bagged CART regression trees with
/// per-split feature subsampling. This is the regression model behind the
/// paper's performance predictor (scikit-learn RandomForestRegressor,
/// grid-searched over the number of trees).
///
/// Inference rides the flattened ForestKernel compiled at fit/load time:
/// Predict/PredictInto are the batch surfaces (tiled, deterministic,
/// bit-identical to the legacy per-node walk), and PredictRow is the scalar
/// convenience path for single feature vectors.
class RandomForestRegressor {
 public:
  struct Options {
    int num_trees = 100;
    TreeOptions tree;
    /// Bootstrap sample size as a fraction of the training set.
    double bootstrap_fraction = 1.0;
    /// Inference-kernel configuration compiled at Fit time (quantized
    /// width-8 fast path etc.; see ForestKernel). Load always restores the
    /// default bit-exact kernel — the fast path is a runtime choice, not
    /// part of the serialized model.
    ForestKernel::Options kernel;

    Options() {
      tree.max_depth = 10;
      tree.min_samples_leaf = 2;
      tree.feature_fraction = 0.33;  // ~ one third of features per split
    }
  };

  RandomForestRegressor() : RandomForestRegressor(Options{}) {}
  explicit RandomForestRegressor(Options options) : options_(options) {}

  /// Trains the ensemble; targets are arbitrary reals (scores in [0,1] for
  /// the performance-prediction task). Compiles the inference kernel from
  /// the fitted trees before returning.
  common::Status Fit(const linalg::Matrix& features,
                     const std::vector<double>& targets, common::Rng& rng);

  /// Mean prediction across trees for each row; requires fitted().
  std::vector<double> Predict(const linalg::Matrix& features) const;

  /// Allocation-free batch surface: writes the mean prediction per row of
  /// `features` into `out` (whose size must equal features.rows()) through
  /// the flattened kernel. This is THE batch path — new batch call sites
  /// must not loop over PredictRow. Requires fitted().
  void PredictInto(const linalg::Matrix& features,
                   std::span<double> out) const;

  /// Scalar convenience path for a single feature vector (e.g. one
  /// percentile-statistics row at serving time); not the batch path.
  /// Requires fitted().
  double PredictRow(const double* row) const;

  bool fitted() const { return !trees_.empty(); }
  int num_trees() const { return static_cast<int>(trees_.size()); }

  /// Fitted trees (legacy node-walk reference for kernel equivalence
  /// harnesses; empty before Fit).
  const std::vector<RegressionTree>& trees() const { return trees_; }

  /// Compiled inference kernel (empty before Fit/Load).
  const ForestKernel& kernel() const { return kernel_; }

  /// Serialization core: appends the versioned ensemble record (magic,
  /// version, tree count, trees) to an open archive. Byte-identical to what
  /// the stream overload below writes.
  common::Status Save(common::BinaryWriter& writer) const;
  static common::Result<RandomForestRegressor> Load(
      common::BinaryReader& reader);

  /// Thin stream wrappers over the archive core; Load restores the ensemble
  /// and recompiles the kernel so Predict produces bit-identical results
  /// without retraining.
  common::Status Save(std::ostream& out) const;
  static common::Result<RandomForestRegressor> Load(std::istream& in);

 private:
  Options options_;
  std::vector<RegressionTree> trees_;
  ForestKernel kernel_;
};

}  // namespace bbv::ml

#endif  // BBV_ML_RANDOM_FOREST_H_
