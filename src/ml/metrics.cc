#include "ml/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace bbv::ml {

double Accuracy(const std::vector<int>& predicted,
                const std::vector<int>& truth) {
  BBV_CHECK_EQ(predicted.size(), truth.size());
  BBV_CHECK(!truth.empty());
  size_t correct = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (predicted[i] == truth[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(truth.size());
}

double AccuracyFromProba(const linalg::Matrix& probabilities,
                         const std::vector<int>& truth) {
  BBV_CHECK_EQ(probabilities.rows(), truth.size());
  const std::vector<size_t> argmax = probabilities.ArgMaxPerRow();
  std::vector<int> predicted(argmax.size());
  for (size_t i = 0; i < argmax.size(); ++i) {
    predicted[i] = static_cast<int>(argmax[i]);
  }
  return Accuracy(predicted, truth);
}

double AccuracyFromProba(const linalg::Matrix& probabilities,
                         const std::vector<size_t>& rows,
                         const std::vector<int>& truth) {
  BBV_CHECK(!rows.empty());
  BBV_CHECK_EQ(probabilities.rows(), truth.size());
  size_t correct = 0;
  for (size_t row : rows) {
    BBV_DCHECK(row < probabilities.rows());
    const double* values = probabilities.RowData(row);
    size_t argmax = 0;
    for (size_t k = 1; k < probabilities.cols(); ++k) {
      if (values[k] > values[argmax]) argmax = k;
    }
    if (static_cast<int>(argmax) == truth[row]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(rows.size());
}

double RocAuc(const std::vector<double>& scores,
              const std::vector<int>& truth) {
  BBV_CHECK_EQ(scores.size(), truth.size());
  BBV_CHECK(!truth.empty());
  BBV_DCHECK(std::all_of(scores.begin(), scores.end(),
                         [](double s) { return !std::isnan(s); }))
      << "RocAuc scores contain NaN; ranking would be unstable";
  // Rank-based Mann-Whitney statistic with average ranks for ties.
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] < scores[b]; });
  std::vector<double> ranks(scores.size(), 0.0);
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j + 1 < order.size() &&
           scores[order[j + 1]] == scores[order[i]]) {
      ++j;
    }
    const double average_rank =
        (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = average_rank;
    i = j + 1;
  }
  double positive_rank_sum = 0.0;
  size_t num_positive = 0;
  for (size_t k = 0; k < truth.size(); ++k) {
    if (truth[k] == 1) {
      positive_rank_sum += ranks[k];
      ++num_positive;
    }
  }
  const size_t num_negative = truth.size() - num_positive;
  BBV_CHECK(num_positive > 0 && num_negative > 0)
      << "RocAuc requires both classes present";
  const double np = static_cast<double>(num_positive);
  const double nn = static_cast<double>(num_negative);
  const double auc = (positive_rank_sum - np * (np + 1.0) / 2.0) / (np * nn);
  BBV_DCHECK(auc >= 0.0 && auc <= 1.0) << "AUC " << auc << " outside [0, 1]";
  return auc;
}

double RocAucFromProba(const linalg::Matrix& probabilities,
                       const std::vector<int>& truth) {
  BBV_CHECK_GE(probabilities.cols(), 2u);
  return RocAuc(probabilities.Col(1), truth);
}

double RocAucFromProba(const linalg::Matrix& probabilities,
                       const std::vector<size_t>& rows,
                       const std::vector<int>& truth) {
  BBV_CHECK_GE(probabilities.cols(), 2u);
  BBV_CHECK_EQ(probabilities.rows(), truth.size());
  // The rank computation needs its own working vectors anyway, so the view
  // gathers only the positive-class scores and labels it touches.
  std::vector<double> scores;
  std::vector<int> labels;
  scores.reserve(rows.size());
  labels.reserve(rows.size());
  for (size_t row : rows) {
    BBV_DCHECK(row < probabilities.rows());
    scores.push_back(probabilities.At(row, 1));
    labels.push_back(truth[row]);
  }
  return RocAuc(scores, labels);
}

BinaryConfusion ConfusionCounts(const std::vector<int>& predicted,
                                const std::vector<int>& truth,
                                int positive_class) {
  BBV_CHECK_EQ(predicted.size(), truth.size());
  BinaryConfusion confusion;
  for (size_t i = 0; i < truth.size(); ++i) {
    const bool predicted_positive = predicted[i] == positive_class;
    const bool actually_positive = truth[i] == positive_class;
    if (predicted_positive && actually_positive) {
      ++confusion.true_positives;
    } else if (predicted_positive && !actually_positive) {
      ++confusion.false_positives;
    } else if (!predicted_positive && actually_positive) {
      ++confusion.false_negatives;
    } else {
      ++confusion.true_negatives;
    }
  }
  return confusion;
}

double Precision(const BinaryConfusion& confusion) {
  const size_t denominator =
      confusion.true_positives + confusion.false_positives;
  if (denominator == 0) return 0.0;
  return static_cast<double>(confusion.true_positives) /
         static_cast<double>(denominator);
}

double Recall(const BinaryConfusion& confusion) {
  const size_t denominator =
      confusion.true_positives + confusion.false_negatives;
  if (denominator == 0) return 0.0;
  return static_cast<double>(confusion.true_positives) /
         static_cast<double>(denominator);
}

double F1Score(const BinaryConfusion& confusion) {
  const double precision = Precision(confusion);
  const double recall = Recall(confusion);
  // Precision and recall are non-negative by construction, so a non-positive
  // sum means both are exactly zero and F1 is defined as 0.
  if (precision + recall <= 0.0) return 0.0;
  const double f1 = 2.0 * precision * recall / (precision + recall);
  BBV_DCHECK(f1 >= 0.0 && f1 <= 1.0) << "F1 " << f1 << " outside [0, 1]";
  return f1;
}

double F1Score(const std::vector<int>& predicted, const std::vector<int>& truth,
               int positive_class) {
  return F1Score(ConfusionCounts(predicted, truth, positive_class));
}

double LogLoss(const linalg::Matrix& probabilities,
               const std::vector<int>& truth) {
  BBV_CHECK_EQ(probabilities.rows(), truth.size());
  BBV_CHECK(!truth.empty());
  constexpr double kEpsilon = 1e-12;
  double total = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    const int label = truth[i];
    BBV_CHECK(label >= 0 &&
              static_cast<size_t>(label) < probabilities.cols());
    const double p = probabilities.At(i, static_cast<size_t>(label));
    BBV_DCHECK(p >= 0.0 && p <= 1.0 + 1e-9)
        << "probability " << p << " for row " << i << " outside [0, 1]";
    total -= std::log(std::max(p, kEpsilon));
  }
  const double loss = total / static_cast<double>(truth.size());
  BBV_DCHECK(std::isfinite(loss) && loss >= 0.0)
      << "log loss " << loss << " is not a finite non-negative value";
  return loss;
}

}  // namespace bbv::ml
