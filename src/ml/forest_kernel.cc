#include "ml/forest_kernel.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <limits>
#include <utility>

#include "common/check.h"
#include "common/parallel.h"
#include "common/telemetry.h"

namespace bbv::ml {

namespace {

/// Rows per traversal tile: small enough that a tile of rows plus the hot
/// top of every tree stays cache-resident, large enough to amortize the
/// per-tree loop overhead.
constexpr size_t kRowTile = 64;

/// Tiles per thread below which the parallel section shrinks; 8 tiles
/// matches the ~512 rows/thread threshold the legacy per-row path used.
constexpr size_t kMinTilesPerThread = 8;

/// Leaf budget of the bitvector (QuickScorer-style) strategy: one bit per
/// in-order leaf in a uint64 survivor word.
constexpr size_t kBitvectorMaxLeaves = 64;

/// Hint the next tree's node block into cache while the current one runs;
/// a no-op where the intrinsic is unavailable.
inline void PrefetchRead(const void* address) {
#if defined(__GNUC__)
  __builtin_prefetch(address);
#else
  (void)address;
#endif
}

/// Largest float whose double value does not exceed `threshold`, so for
/// every float x:  x <= result  <=>  double(x) <= threshold. Both
/// directions of the equivalence are BBV_CHECK-verified here, per node, at
/// kernel-compile time — this is the invariant the quantized fast path's
/// error contract rests on.
float FloorToFloat(double threshold) {
  BBV_CHECK(std::isfinite(threshold) &&
            std::abs(threshold) <=
                static_cast<double>(std::numeric_limits<float>::max()))
      << "quantized kernel compile requires float-range split thresholds";
  float rounded = static_cast<float>(threshold);
  if (static_cast<double>(rounded) > threshold) {
    rounded =
        std::nextafter(rounded, -std::numeric_limits<float>::infinity());
  }
  BBV_CHECK(static_cast<double>(rounded) <= threshold)
      << "threshold quantization invariant violated (floor direction)";
  BBV_CHECK(static_cast<double>(std::nextafter(
                rounded, std::numeric_limits<float>::infinity())) > threshold)
      << "threshold quantization invariant violated (tightness direction)";
  return rounded;
}

/// Bits [lo, hi) set, for hi - lo <= 64.
uint64_t BitRangeMask(uint32_t lo, uint32_t hi) {
  const uint32_t count = hi - lo;
  const uint64_t ones =
      count >= 64 ? ~uint64_t{0} : (uint64_t{1} << count) - 1;
  return ones << lo;
}

}  // namespace

ForestKernel ForestKernel::Compile(std::span<const RegressionTree> trees,
                                   Options options) {
  const common::telemetry::TraceSpan span("forest_kernel.compile");
  common::telemetry::IncrementCounter("forest_kernel.compile.calls");
  common::telemetry::IncrementCounter("forest_kernel.compile.trees",
                                      trees.size());
  ForestKernel kernel;
  kernel.options_ = options;
  size_t internal_total = 0;
  size_t leaf_total = 0;
  for (const RegressionTree& tree : trees) {
    BBV_CHECK(tree.NumNodes() > 0) << "ForestKernel::Compile on unfitted tree";
    for (const RegressionTree::Node& node : tree.nodes()) {
      if (node.feature >= 0) {
        ++internal_total;
      } else {
        ++leaf_total;
      }
    }
  }
  // Global ids (and their complements) must fit in int32; the quantized
  // stepping arrays additionally index internal + leaf nodes together.
  const auto id_limit =
      static_cast<size_t>(std::numeric_limits<int32_t>::max());
  BBV_CHECK(internal_total < id_limit && leaf_total < id_limit &&
            internal_total + leaf_total < id_limit)
      << "ensemble too large for 32-bit node ids";
  kernel.feature_.reserve(internal_total);
  kernel.threshold_.reserve(internal_total);
  kernel.left_.reserve(internal_total);
  kernel.right_.reserve(internal_total);
  kernel.leaf_value_.reserve(leaf_total);
  kernel.roots_.reserve(trees.size());

  std::vector<int32_t> remap;
  for (const RegressionTree& tree : trees) {
    const std::vector<RegressionTree::Node>& nodes = tree.nodes();
    remap.assign(nodes.size(), 0);
    auto next_internal = static_cast<int32_t>(kernel.feature_.size());
    auto next_leaf = static_cast<int32_t>(kernel.leaf_value_.size());
    for (size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i].feature >= 0) {
        remap[i] = next_internal;
        ++next_internal;
      } else {
        remap[i] = ~next_leaf;
        ++next_leaf;
      }
    }
    for (const RegressionTree::Node& node : nodes) {
      if (node.feature >= 0) {
        kernel.feature_.push_back(node.feature);
        kernel.threshold_.push_back(node.threshold);
        kernel.left_.push_back(remap[static_cast<size_t>(node.left)]);
        kernel.right_.push_back(remap[static_cast<size_t>(node.right)]);
        kernel.max_feature_ = std::max(kernel.max_feature_, node.feature);
      } else {
        kernel.leaf_value_.push_back(node.value);
      }
    }
    kernel.roots_.push_back(remap[0]);
  }
  // feature/left/right (int32) + threshold (double) per internal node,
  // value (double) per leaf.
  const size_t footprint_bytes =
      kernel.feature_.size() * (3 * sizeof(int32_t) + sizeof(double)) +
      kernel.leaf_value_.size() * sizeof(double);
  kernel.compact_ = footprint_bytes <= 32 * 1024;
  if (options.quantized) {
    kernel.CompileQuantized(trees);
  }
  return kernel;
}

void ForestKernel::CompileQuantized(std::span<const RegressionTree> trees) {
  qnode_begin_.reserve(trees.size() + 1);
  qnode_begin_.push_back(0);
  qs_node_begin_.reserve(trees.size() + 1);
  qs_node_begin_.push_back(0);
  qdepth_.reserve(trees.size());
  tree_uses_bitvector_.reserve(trees.size());
  qs_leaf_begin_.reserve(trees.size());
  tree_leaf_range_.reserve(trees.size());
  tree_leaf_absmax_.reserve(trees.size());

  for (const RegressionTree& tree : trees) {
    const std::vector<RegressionTree::Node>& nodes = tree.nodes();
    size_t leaves = 0;
    double leaf_min = std::numeric_limits<double>::infinity();
    double leaf_max = -std::numeric_limits<double>::infinity();
    double leaf_absmax = 0.0;
    for (const RegressionTree::Node& node : nodes) {
      if (node.feature >= 0) continue;
      ++leaves;
      leaf_min = std::min(leaf_min, node.value);
      leaf_max = std::max(leaf_max, node.value);
      leaf_absmax = std::max(leaf_absmax, std::abs(node.value));
    }
    tree_leaf_range_.push_back(leaf_max - leaf_min);
    tree_leaf_absmax_.push_back(leaf_absmax);

    const bool bitvector =
        options_.bitvector_shallow_trees && leaves <= kBitvectorMaxLeaves;
    tree_uses_bitvector_.push_back(bitvector ? 1 : 0);
    qs_leaf_begin_.push_back(qs_leaf_value_.size());
    if (bitvector) {
      ++num_bitvector_trees_;
      // Preorder over internal nodes, in-order leaf numbering: every
      // subtree owns a contiguous leaf-id range, so each internal node's
      // mask clears exactly its left subtree's bits.
      uint32_t next_leaf = 0;
      auto walk = [&](auto&& self,
                      int32_t index) -> std::pair<uint32_t, uint32_t> {
        const RegressionTree::Node& node =
            nodes[static_cast<size_t>(index)];
        if (node.feature < 0) {
          qs_leaf_value_.push_back(node.value);
          const uint32_t id = next_leaf;
          ++next_leaf;
          return {id, id + 1};
        }
        const size_t slot = qs_mask_.size();
        qs_feature_.push_back(node.feature);
        qs_threshold_.push_back(FloorToFloat(node.threshold));
        qs_mask_.push_back(0);
        const auto left_range = self(self, node.left);
        const auto right_range = self(self, node.right);
        qs_mask_[slot] =
            ~BitRangeMask(left_range.first, left_range.second);
        return {left_range.first, right_range.second};
      };
      walk(walk, 0);
      qdepth_.push_back(0);
    } else {
      // Stepping block: all nodes of the tree appended in index order, so
      // the padded id of node j is base + j; leaves become self-loops, so
      // depth() lockstep steps land every lane on its exit leaf.
      const auto base = static_cast<int32_t>(qfeature_.size());
      for (const RegressionTree::Node& node : nodes) {
        if (node.feature >= 0) {
          qfeature_.push_back(node.feature);
          qthreshold_.push_back(FloorToFloat(node.threshold));
          qleft_.push_back(base + node.left);
          qright_.push_back(base + node.right);
          qvalue_.push_back(0.0);
        } else {
          const auto self_id = static_cast<int32_t>(qfeature_.size());
          qfeature_.push_back(0);
          qthreshold_.push_back(std::numeric_limits<float>::infinity());
          qleft_.push_back(self_id);
          qright_.push_back(self_id);
          qvalue_.push_back(node.value);
        }
      }
      int32_t depth = 0;
      std::vector<std::pair<int32_t, int32_t>> stack;
      stack.emplace_back(0, 0);
      while (!stack.empty()) {
        const auto [index, d] = stack.back();
        stack.pop_back();
        const RegressionTree::Node& node =
            nodes[static_cast<size_t>(index)];
        if (node.feature < 0) {
          depth = std::max(depth, d);
        } else {
          stack.emplace_back(node.left, d + 1);
          stack.emplace_back(node.right, d + 1);
        }
      }
      qdepth_.push_back(depth);
    }
    qnode_begin_.push_back(qfeature_.size());
    qs_node_begin_.push_back(qs_mask_.size());
  }
}

float ForestKernel::QuantizeValue(double value) {
  // Saturate instead of casting out-of-float-range doubles (the behavior
  // of such a cast is undefined); NaN passes through and still fails every
  // comparison, exactly like the exact walk sends NaN rows right.
  constexpr double kMaxFloat =
      static_cast<double>(std::numeric_limits<float>::max());
  if (value > kMaxFloat) return std::numeric_limits<float>::infinity();
  if (value < -kMaxFloat) return -std::numeric_limits<float>::infinity();
  return static_cast<float>(value);
}

linalg::Matrix ForestKernel::QuantizeFeatures(const linalg::Matrix& features) {
  linalg::Matrix rounded(features.rows(), features.cols());
  for (size_t i = 0; i < features.rows(); ++i) {
    const double* row = features.RowData(i);
    double* out = rounded.RowData(i);
    for (size_t j = 0; j < features.cols(); ++j) {
      out[j] = static_cast<double>(QuantizeValue(row[j]));
    }
  }
  return rounded;
}

double ForestKernel::QuantizationMeanErrorBound() const {
  BBV_CHECK(options_.quantized)
      << "quantization error bound on a non-quantized kernel";
  BBV_CHECK(!empty()) << "error bound before Compile";
  double range_sum = 0.0;
  double absmax_sum = 0.0;
  for (size_t t = 0; t < roots_.size(); ++t) {
    range_sum += tree_leaf_range_[t];
    absmax_sum += tree_leaf_absmax_[t];
  }
  const auto trees = static_cast<double>(roots_.size());
  // Leaf-range bound for the input rounding plus first-order rounding
  // slack for the two double summations being compared.
  const double slack =
      4.0 * trees * std::numeric_limits<double>::epsilon() * absmax_sum;
  return (range_sum + slack) / trees;
}

double ForestKernel::QuantizationAccumulateErrorBound(double scale,
                                                      size_t stride) const {
  BBV_CHECK(options_.quantized)
      << "quantization error bound on a non-quantized kernel";
  BBV_CHECK(!empty()) << "error bound before Compile";
  BBV_CHECK(stride > 0) << "stride must be positive";
  std::vector<double> range(stride, 0.0);
  std::vector<double> absmax(stride, 0.0);
  std::vector<double> count(stride, 0.0);
  for (size_t t = 0; t < roots_.size(); ++t) {
    const size_t k = t % stride;
    range[k] += tree_leaf_range_[t];
    absmax[k] += tree_leaf_absmax_[t];
    count[k] += 1.0;
  }
  double bound = 0.0;
  for (size_t k = 0; k < stride; ++k) {
    const double slack =
        4.0 * count[k] * std::numeric_limits<double>::epsilon() * absmax[k];
    bound = std::max(bound, std::abs(scale) * (range[k] + slack));
  }
  return bound;
}

void ForestKernel::RunExactTile(const linalg::Matrix& features, size_t begin,
                                size_t end, double scale, size_t stride,
                                std::span<double> out) const {
  const size_t num_trees_total = roots_.size();
  if (compact_) {
    // The flattened ensemble is L1-resident, so there is nothing to
    // amortize by reusing a tree across rows; walk rows outer and
    // keep each row's accumulator slots hot instead.
    for (size_t r = begin; r < end; ++r) {
      const double* row = features.RowData(r);
      double* row_out = out.data() + r * stride;
      size_t column = 0;
      for (size_t t = 0; t < num_trees_total; ++t) {
        row_out[column] += scale * TraverseRow(t, row);
        if (++column == stride) column = 0;
      }
    }
  } else {
    for (size_t t = 0; t < num_trees_total; ++t) {
      const size_t column = t % stride;
      for (size_t r = begin; r < end; ++r) {
        out[r * stride + column] +=
            scale * TraverseRow(t, features.RowData(r));
      }
    }
  }
}

void ForestKernel::RunQuantizedTile(const linalg::Matrix& features,
                                    size_t begin, size_t end, double scale,
                                    size_t stride, std::span<double> out,
                                    float* tile) const {
  const size_t cols = features.cols();
  const size_t num_trees_total = roots_.size();
  for (size_t group = begin; group < end; group += kLanes) {
    const size_t width = std::min(kLanes, end - group);
    // Transpose + quantize the lane group; tail lanes replicate the last
    // row so all kLanes traverse valid data (their results are dropped at
    // accumulation time). Keeps every traversal loop fixed-width.
    for (size_t lane = 0; lane < kLanes; ++lane) {
      const double* row = features.RowData(group + std::min(lane, width - 1));
      for (size_t f = 0; f < cols; ++f) {
        tile[f * kLanes + lane] = QuantizeValue(row[f]);
      }
    }
    for (size_t t = 0; t < num_trees_total; ++t) {
      if (t + 1 < num_trees_total) {
        PrefetchRead(qthreshold_.data() + qnode_begin_[t + 1]);
        PrefetchRead(qs_mask_.data() + qs_node_begin_[t + 1]);
      }
      const size_t column = t % stride;
      std::array<double, kLanes> leaf;
      if (tree_uses_bitvector_[t] != 0) {
        // Bitvector strategy: AND the masks of the false nodes; the lowest
        // surviving bit is the in-order exit leaf. `!(x <= thr)` (rather
        // than `x > thr`) keeps NaN on the all-false all-right path the
        // exact walk takes.
        std::array<uint64_t, kLanes> survivors;
        survivors.fill(~uint64_t{0});
        const size_t node_end = qs_node_begin_[t + 1];
        for (size_t h = qs_node_begin_[t]; h < node_end; ++h) {
          const float* lane_values =
              tile + static_cast<size_t>(qs_feature_[h]) * kLanes;
          const float threshold = qs_threshold_[h];
          const uint64_t mask = qs_mask_[h];
          for (size_t lane = 0; lane < kLanes; ++lane) {
            survivors[lane] &=
                lane_values[lane] <= threshold ? ~uint64_t{0} : mask;
          }
        }
        const size_t leaf_base = qs_leaf_begin_[t];
        for (size_t lane = 0; lane < kLanes; ++lane) {
          leaf[lane] = qs_leaf_value_[leaf_base + static_cast<size_t>(
                                          std::countr_zero(survivors[lane]))];
        }
      } else {
        // Lockstep stepping: leaves self-loop, so depth steps of the
        // branch-free select land every lane on its exit leaf.
        std::array<int32_t, kLanes> node;
        node.fill(static_cast<int32_t>(qnode_begin_[t]));
        const int32_t depth = qdepth_[t];
        for (int32_t d = 0; d < depth; ++d) {
          for (size_t lane = 0; lane < kLanes; ++lane) {
            const auto n = static_cast<size_t>(node[lane]);
            const float x =
                tile[static_cast<size_t>(qfeature_[n]) * kLanes + lane];
            node[lane] = x <= qthreshold_[n] ? qleft_[n] : qright_[n];
          }
        }
        for (size_t lane = 0; lane < kLanes; ++lane) {
          leaf[lane] = qvalue_[static_cast<size_t>(node[lane])];
        }
      }
      for (size_t lane = 0; lane < width; ++lane) {
        out[(group + lane) * stride + column] += scale * leaf[lane];
      }
    }
  }
}

void ForestKernel::Run(const linalg::Matrix& features, double scale,
                       size_t stride, bool mean, std::span<double> out) const {
  BBV_CHECK(!empty()) << "ForestKernel inference before Compile";
  BBV_CHECK(stride > 0) << "stride must be positive";
  BBV_CHECK_EQ(out.size(), features.rows() * stride);
  BBV_CHECK(max_feature_ < 0 ||
            static_cast<size_t>(max_feature_) < features.cols())
      << "ensemble reads feature " << max_feature_ << " but the batch has "
      << features.cols() << " columns";
  const size_t rows = features.rows();
  if (rows == 0) return;
  const common::telemetry::TraceSpan span("forest_kernel.predict");
  common::telemetry::IncrementCounter("forest_kernel.predict.calls");
  common::telemetry::IncrementCounter("forest_kernel.predict.rows", rows);
  const size_t num_trees_total = roots_.size();
  const size_t num_tiles = (rows + kRowTile - 1) / kRowTile;
  const size_t tile_floats = std::max<size_t>(1, features.cols()) * kLanes;
  // Each tile owns out[begin * stride, end * stride) exclusively and
  // accumulates per row in ensemble order, so the floating-point addition
  // sequence per output slot — and hence every bit of the result — is
  // independent of the tile-to-thread schedule. The quantized path keeps
  // the same slot ownership and accumulation order, so it obeys the same
  // determinism contract.
  const common::Status status = common::ParallelFor(
      num_tiles,
      [&](size_t tile) {
        const size_t begin = tile * kRowTile;
        const size_t end = std::min(begin + kRowTile, rows);
        if (options_.quantized) {
          std::vector<float> scratch(tile_floats);
          RunQuantizedTile(features, begin, end, scale, stride, out,
                           scratch.data());
        } else {
          RunExactTile(features, begin, end, scale, stride, out);
        }
        if (mean) {
          // Same division the legacy node walk applied per row
          // (sum / num_trees), done while the tile is still cache-hot.
          for (size_t r = begin; r < end; ++r) {
            out[r] /= static_cast<double>(num_trees_total);
          }
        }
        return common::Status::OK();
      },
      {.min_items_per_thread = kMinTilesPerThread});
  BBV_CHECK(status.ok()) << status.ToString();
}

void ForestKernel::AccumulateInto(const linalg::Matrix& features, double scale,
                                  size_t stride,
                                  std::span<double> out) const {
  Run(features, scale, stride, /*mean=*/false, out);
}

void ForestKernel::PredictMeanInto(const linalg::Matrix& features,
                                   std::span<double> out) const {
  std::fill(out.begin(), out.end(), 0.0);
  Run(features, /*scale=*/1.0, /*stride=*/1, /*mean=*/true, out);
}

double ForestKernel::PredictRowMean(const double* row) const {
  BBV_CHECK(!empty()) << "ForestKernel inference before Compile";
  double sum = 0.0;
  for (size_t t = 0; t < roots_.size(); ++t) {
    sum += TraverseRow(t, row);
  }
  return sum / static_cast<double>(roots_.size());
}

void ForestKernel::PredictRowValuesInto(const double* row,
                                        std::span<double> out) const {
  BBV_CHECK(!empty()) << "ForestKernel inference before Compile";
  BBV_CHECK_EQ(out.size(), roots_.size())
      << "per-tree output span must hold one slot per tree";
  for (size_t t = 0; t < roots_.size(); ++t) {
    out[t] = TraverseRow(t, row);
  }
}

}  // namespace bbv::ml
