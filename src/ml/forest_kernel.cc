#include "ml/forest_kernel.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "common/parallel.h"
#include "common/telemetry.h"

namespace bbv::ml {

namespace {

/// Rows per traversal tile: small enough that a tile of rows plus the hot
/// top of every tree stays cache-resident, large enough to amortize the
/// per-tree loop overhead.
constexpr size_t kRowTile = 64;

/// Tiles per thread below which the parallel section shrinks; 8 tiles
/// matches the ~512 rows/thread threshold the legacy per-row path used.
constexpr size_t kMinTilesPerThread = 8;

}  // namespace

ForestKernel ForestKernel::Compile(std::span<const RegressionTree> trees) {
  const common::telemetry::TraceSpan span("forest_kernel.compile");
  common::telemetry::IncrementCounter("forest_kernel.compile.calls");
  common::telemetry::IncrementCounter("forest_kernel.compile.trees",
                                      trees.size());
  ForestKernel kernel;
  size_t internal_total = 0;
  size_t leaf_total = 0;
  for (const RegressionTree& tree : trees) {
    BBV_CHECK(tree.NumNodes() > 0) << "ForestKernel::Compile on unfitted tree";
    for (const RegressionTree::Node& node : tree.nodes()) {
      if (node.feature >= 0) {
        ++internal_total;
      } else {
        ++leaf_total;
      }
    }
  }
  // Global ids (and their complements) must fit in int32.
  const auto id_limit =
      static_cast<size_t>(std::numeric_limits<int32_t>::max());
  BBV_CHECK(internal_total < id_limit && leaf_total < id_limit)
      << "ensemble too large for 32-bit node ids";
  kernel.feature_.reserve(internal_total);
  kernel.threshold_.reserve(internal_total);
  kernel.left_.reserve(internal_total);
  kernel.right_.reserve(internal_total);
  kernel.leaf_value_.reserve(leaf_total);
  kernel.roots_.reserve(trees.size());

  std::vector<int32_t> remap;
  for (const RegressionTree& tree : trees) {
    const std::vector<RegressionTree::Node>& nodes = tree.nodes();
    remap.assign(nodes.size(), 0);
    auto next_internal = static_cast<int32_t>(kernel.feature_.size());
    auto next_leaf = static_cast<int32_t>(kernel.leaf_value_.size());
    for (size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i].feature >= 0) {
        remap[i] = next_internal;
        ++next_internal;
      } else {
        remap[i] = ~next_leaf;
        ++next_leaf;
      }
    }
    for (const RegressionTree::Node& node : nodes) {
      if (node.feature >= 0) {
        kernel.feature_.push_back(node.feature);
        kernel.threshold_.push_back(node.threshold);
        kernel.left_.push_back(remap[static_cast<size_t>(node.left)]);
        kernel.right_.push_back(remap[static_cast<size_t>(node.right)]);
        kernel.max_feature_ = std::max(kernel.max_feature_, node.feature);
      } else {
        kernel.leaf_value_.push_back(node.value);
      }
    }
    kernel.roots_.push_back(remap[0]);
  }
  // feature/left/right (int32) + threshold (double) per internal node,
  // value (double) per leaf.
  const size_t footprint_bytes =
      kernel.feature_.size() * (3 * sizeof(int32_t) + sizeof(double)) +
      kernel.leaf_value_.size() * sizeof(double);
  kernel.compact_ = footprint_bytes <= 32 * 1024;
  return kernel;
}

void ForestKernel::Run(const linalg::Matrix& features, double scale,
                       size_t stride, bool mean, std::span<double> out) const {
  BBV_CHECK(!empty()) << "ForestKernel inference before Compile";
  BBV_CHECK(stride > 0) << "stride must be positive";
  BBV_CHECK_EQ(out.size(), features.rows() * stride);
  BBV_CHECK(max_feature_ < 0 ||
            static_cast<size_t>(max_feature_) < features.cols())
      << "ensemble reads feature " << max_feature_ << " but the batch has "
      << features.cols() << " columns";
  const size_t rows = features.rows();
  if (rows == 0) return;
  const common::telemetry::TraceSpan span("forest_kernel.predict");
  common::telemetry::IncrementCounter("forest_kernel.predict.calls");
  common::telemetry::IncrementCounter("forest_kernel.predict.rows", rows);
  const size_t num_trees_total = roots_.size();
  const size_t num_tiles = (rows + kRowTile - 1) / kRowTile;
  // Each tile owns out[begin * stride, end * stride) exclusively and
  // accumulates per row in ensemble order, so the floating-point addition
  // sequence per output slot — and hence every bit of the result — is
  // independent of the tile-to-thread schedule.
  const common::Status status = common::ParallelFor(
      num_tiles,
      [&](size_t tile) {
        const size_t begin = tile * kRowTile;
        const size_t end = std::min(begin + kRowTile, rows);
        if (compact_) {
          // The flattened ensemble is L1-resident, so there is nothing to
          // amortize by reusing a tree across rows; walk rows outer and
          // keep each row's accumulator slots hot instead.
          for (size_t r = begin; r < end; ++r) {
            const double* row = features.RowData(r);
            double* row_out = out.data() + r * stride;
            size_t column = 0;
            for (size_t t = 0; t < num_trees_total; ++t) {
              row_out[column] += scale * TraverseRow(t, row);
              if (++column == stride) column = 0;
            }
          }
        } else {
          for (size_t t = 0; t < num_trees_total; ++t) {
            const size_t column = t % stride;
            for (size_t r = begin; r < end; ++r) {
              out[r * stride + column] +=
                  scale * TraverseRow(t, features.RowData(r));
            }
          }
        }
        if (mean) {
          // Same division the legacy node walk applied per row
          // (sum / num_trees), done while the tile is still cache-hot.
          for (size_t r = begin; r < end; ++r) {
            out[r] /= static_cast<double>(num_trees_total);
          }
        }
        return common::Status::OK();
      },
      {.min_items_per_thread = kMinTilesPerThread});
  BBV_CHECK(status.ok()) << status.ToString();
}

void ForestKernel::AccumulateInto(const linalg::Matrix& features, double scale,
                                  size_t stride,
                                  std::span<double> out) const {
  Run(features, scale, stride, /*mean=*/false, out);
}

void ForestKernel::PredictMeanInto(const linalg::Matrix& features,
                                   std::span<double> out) const {
  std::fill(out.begin(), out.end(), 0.0);
  Run(features, /*scale=*/1.0, /*stride=*/1, /*mean=*/true, out);
}

double ForestKernel::PredictRowMean(const double* row) const {
  BBV_CHECK(!empty()) << "ForestKernel inference before Compile";
  double sum = 0.0;
  for (size_t t = 0; t < roots_.size(); ++t) {
    sum += TraverseRow(t, row);
  }
  return sum / static_cast<double>(roots_.size());
}

}  // namespace bbv::ml
