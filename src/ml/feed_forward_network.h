#ifndef BBV_ML_FEED_FORWARD_NETWORK_H_
#define BBV_ML_FEED_FORWARD_NETWORK_H_

#include <string>
#include <vector>

#include "common/serialize.h"
#include "ml/classifier.h"

namespace bbv::ml {

/// Feed-forward neural network with ReLU hidden layers and a softmax output,
/// trained with mini-batch Adam — the paper's `dnn` model ("two layers with
/// ReLU activation and a softmax output").
class FeedForwardNetwork : public Classifier {
 public:
  struct Options {
    std::vector<size_t> hidden_sizes = {32, 32};
    int epochs = 40;
    size_t batch_size = 32;
    double learning_rate = 1e-3;
    double l2 = 1e-5;
    /// Dropout probability on hidden activations during training (0 = off).
    double dropout = 0.0;
  };

  FeedForwardNetwork() : FeedForwardNetwork(Options{}) {}
  explicit FeedForwardNetwork(Options options) : options_(options) {}

  common::Status Fit(const linalg::Matrix& features,
                     const std::vector<int>& labels, int num_classes,
                     common::Rng& rng) override;
  linalg::Matrix PredictProba(const linalg::Matrix& features) const override;
  std::string Name() const override { return "dnn"; }

  /// Persists the fitted layers (weights and biases; optimizer state is not
  /// needed for inference).
  common::Status Save(std::ostream& out) const;
  static common::Result<FeedForwardNetwork> Load(std::istream& in);

 private:
  struct Layer {
    linalg::Matrix weights;       // in x out
    std::vector<double> bias;     // out
    // Adam state.
    linalg::Matrix m_weights;
    linalg::Matrix v_weights;
    std::vector<double> m_bias;
    std::vector<double> v_bias;
  };

  /// Forward pass; fills per-layer activations (activations[0] == input).
  void Forward(const linalg::Matrix& input,
               std::vector<linalg::Matrix>& activations) const;

  Options options_;
  bool fitted_ = false;
  std::vector<Layer> layers_;
};

}  // namespace bbv::ml

#endif  // BBV_ML_FEED_FORWARD_NETWORK_H_
