#ifndef BBV_ML_SGD_LOGISTIC_REGRESSION_H_
#define BBV_ML_SGD_LOGISTIC_REGRESSION_H_

#include <string>
#include <vector>

#include "common/serialize.h"
#include "ml/classifier.h"

namespace bbv::ml {

/// Regularization penalty for linear models.
enum class Penalty { kNone, kL1, kL2 };

/// Multinomial logistic regression trained by mini-batch SGD — the C++
/// analogue of scikit-learn's SGDClassifier(loss="log") the paper uses as
/// its `lr` model. Deliberately does not clip or re-scale inputs, so scaling
/// corruptions drive the logits into saturation just like the paper's
/// footnote about numeric overflows in SGDClassifier.
class SgdLogisticRegression : public Classifier {
 public:
  struct Options {
    int epochs = 50;
    size_t batch_size = 32;
    double learning_rate = 0.1;
    /// Inverse-scaling learning-rate decay exponent (eta_t = eta0 / t^power).
    double decay_power = 0.25;
    Penalty penalty = Penalty::kL2;
    double regularization = 1e-4;
  };

  SgdLogisticRegression() : SgdLogisticRegression(Options{}) {}
  explicit SgdLogisticRegression(Options options) : options_(options) {}

  common::Status Fit(const linalg::Matrix& features,
                     const std::vector<int>& labels, int num_classes,
                     common::Rng& rng) override;
  linalg::Matrix PredictProba(const linalg::Matrix& features) const override;
  std::string Name() const override { return "lr"; }

  const linalg::Matrix& weights() const { return weights_; }
  const std::vector<double>& bias() const { return bias_; }

  /// Persists the fitted weights; Load restores bit-identical inference.
  common::Status Save(std::ostream& out) const;
  static common::Result<SgdLogisticRegression> Load(std::istream& in);

 private:
  Options options_;
  bool fitted_ = false;
  linalg::Matrix weights_;  // d x m
  std::vector<double> bias_;  // m
};

}  // namespace bbv::ml

#endif  // BBV_ML_SGD_LOGISTIC_REGRESSION_H_
