#include "ml/classifier.h"

namespace bbv::ml {

std::vector<int> PredictLabels(const Classifier& classifier,
                               const linalg::Matrix& features) {
  const linalg::Matrix probabilities = classifier.PredictProba(features);
  const std::vector<size_t> argmax = probabilities.ArgMaxPerRow();
  std::vector<int> labels(argmax.size());
  for (size_t i = 0; i < argmax.size(); ++i) {
    labels[i] = static_cast<int>(argmax[i]);
  }
  return labels;
}

}  // namespace bbv::ml
