#ifndef BBV_ML_BLACK_BOX_H_
#define BBV_ML_BLACK_BOX_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "data/dataframe.h"
#include "data/dataset.h"
#include "featurize/pipeline.h"
#include "linalg/matrix.h"
#include "ml/classifier.h"

namespace bbv::ml {

/// The only surface the validation layer may touch: class probabilities for
/// a batch of relational data. Models, feature maps, and hosting (local or
/// simulated-cloud) all hide behind this interface — the `predict_proba`
/// contract from the paper's problem statement.
class BlackBox {
 public:
  virtual ~BlackBox() = default;

  /// Class probabilities (n x num_classes) for the rows of `frame`.
  virtual common::Result<linalg::Matrix> PredictProba(
      const data::DataFrame& frame) const = 0;

  /// Number of classes the model predicts.
  virtual int num_classes() const = 0;

  /// Short identifier for reports, e.g. "lr" or "cloud-automl".
  virtual std::string Name() const = 0;
};

/// A locally trained black box: an internal feature pipeline (unknown to the
/// caller in the paper's setting) plus a classifier.
class BlackBoxModel : public BlackBox {
 public:
  BlackBoxModel(featurize::PipelineOptions pipeline_options,
                std::unique_ptr<Classifier> classifier)
      : pipeline_(pipeline_options), classifier_(std::move(classifier)) {
    BBV_CHECK(classifier_ != nullptr);
  }

  /// Convenience constructor with default featurization.
  explicit BlackBoxModel(std::unique_ptr<Classifier> classifier)
      : BlackBoxModel(featurize::PipelineOptions{}, std::move(classifier)) {}

  /// Fits the feature pipeline and the classifier on `train`.
  common::Status Train(const data::Dataset& train, common::Rng& rng);

  common::Result<linalg::Matrix> PredictProba(
      const data::DataFrame& frame) const override;
  int num_classes() const override { return classifier_->num_classes(); }
  std::string Name() const override { return classifier_->Name(); }

  /// Accuracy of argmax predictions on a labeled dataset.
  common::Result<double> ScoreAccuracy(const data::Dataset& dataset) const;

  /// ROC-AUC on a labeled binary dataset.
  common::Result<double> ScoreAuc(const data::Dataset& dataset) const;

  /// Persists the trained model (feature pipeline + classifier) so it can
  /// be redeployed without retraining.
  common::Status Save(std::ostream& out) const;
  static common::Result<std::unique_ptr<BlackBoxModel>> Load(std::istream& in);

 private:
  featurize::FeaturePipeline pipeline_;
  std::unique_ptr<Classifier> classifier_;
  bool trained_ = false;
};

}  // namespace bbv::ml

#endif  // BBV_ML_BLACK_BOX_H_
