#include "ml/conv_net.h"

#include <algorithm>
#include <cmath>

namespace bbv::ml {

namespace {

constexpr size_t kKernel = 3;
constexpr double kAdamBeta1 = 0.9;
constexpr double kAdamBeta2 = 0.999;
constexpr double kAdamEpsilon = 1e-8;

/// Adam optimizer state for one flat parameter buffer.
struct AdamState {
  std::vector<double> m;
  std::vector<double> v;

  explicit AdamState(size_t size) : m(size, 0.0), v(size, 0.0) {}

  void Update(std::vector<double>& params, const std::vector<double>& grads,
              double learning_rate, double step) {
    const double correction1 = 1.0 - std::pow(kAdamBeta1, step);
    const double correction2 = 1.0 - std::pow(kAdamBeta2, step);
    for (size_t i = 0; i < params.size(); ++i) {
      m[i] = kAdamBeta1 * m[i] + (1.0 - kAdamBeta1) * grads[i];
      v[i] = kAdamBeta2 * v[i] + (1.0 - kAdamBeta2) * grads[i] * grads[i];
      params[i] -= learning_rate * (m[i] / correction1) /
                   (std::sqrt(v[i] / correction2) + kAdamEpsilon);
    }
  }
};

void SoftmaxInPlace(std::vector<double>& logits) {
  const double max = *std::max_element(logits.begin(), logits.end());
  double sum = 0.0;
  for (double& z : logits) {
    z = std::exp(z - max);
    sum += z;
  }
  for (double& z : logits) z /= sum;
}

}  // namespace

/// Per-sample forward buffers (post-activation values plus pooling argmax
/// and dropout mask for the backward pass).
struct ConvNet::Activations {
  std::vector<double> conv1;        // C1 * conv1_out^2 (post-ReLU)
  std::vector<double> conv2;        // C2 * conv2_out^2 (post-ReLU)
  std::vector<double> pool;         // C2 * pool_out^2
  std::vector<size_t> pool_argmax;  // flat index into conv2
  std::vector<double> dense;        // D (post-ReLU, post-dropout)
  std::vector<char> dense_mask;     // dropout keep mask
  std::vector<double> logits;       // m
};

common::Status ConvNet::Fit(const linalg::Matrix& features,
                            const std::vector<int>& labels, int num_classes,
                            common::Rng& rng) {
  if (features.rows() != labels.size()) {
    return common::Status::InvalidArgument(
        "features and labels disagree on the number of rows");
  }
  if (features.rows() == 0) {
    return common::Status::InvalidArgument("cannot fit on an empty matrix");
  }
  if (num_classes < 2) {
    return common::Status::InvalidArgument("need at least two classes");
  }
  side_ = options_.image_side;
  if (side_ == 0) {
    side_ = static_cast<size_t>(std::lround(
        std::sqrt(static_cast<double>(features.cols()))));
  }
  if (side_ * side_ != features.cols()) {
    return common::Status::InvalidArgument(
        "feature width is not a square image size");
  }
  if (side_ < 8) {
    return common::Status::InvalidArgument(
        "images must be at least 8x8 for this architecture");
  }
  num_classes_ = num_classes;
  conv1_out_ = side_ - 2;
  conv2_out_ = side_ - 4;
  pool_out_ = conv2_out_ / 2;

  const size_t c1 = options_.conv1_channels;
  const size_t c2 = options_.conv2_channels;
  const size_t d = options_.dense_units;
  const auto m = static_cast<size_t>(num_classes);
  const size_t flat = c2 * pool_out_ * pool_out_;

  auto he_init = [&](std::vector<double>& buffer, size_t size,
                     size_t fan_in) {
    buffer.resize(size);
    const double scale = std::sqrt(2.0 / static_cast<double>(fan_in));
    for (double& w : buffer) w = rng.Gaussian(0.0, scale);
  };
  he_init(conv1_kernels_, c1 * kKernel * kKernel, kKernel * kKernel);
  conv1_bias_.assign(c1, 0.0);
  he_init(conv2_kernels_, c2 * c1 * kKernel * kKernel,
          c1 * kKernel * kKernel);
  conv2_bias_.assign(c2, 0.0);
  he_init(dense_weights_, flat * d, flat);
  dense_bias_.assign(d, 0.0);
  he_init(out_weights_, d * m, d);
  out_bias_.assign(m, 0.0);

  AdamState adam_k1(conv1_kernels_.size());
  AdamState adam_b1(conv1_bias_.size());
  AdamState adam_k2(conv2_kernels_.size());
  AdamState adam_b2(conv2_bias_.size());
  AdamState adam_wd(dense_weights_.size());
  AdamState adam_bd(dense_bias_.size());
  AdamState adam_wo(out_weights_.size());
  AdamState adam_bo(out_bias_.size());

  std::vector<double> grad_k1(conv1_kernels_.size());
  std::vector<double> grad_b1(conv1_bias_.size());
  std::vector<double> grad_k2(conv2_kernels_.size());
  std::vector<double> grad_b2(conv2_bias_.size());
  std::vector<double> grad_wd(dense_weights_.size());
  std::vector<double> grad_bd(dense_bias_.size());
  std::vector<double> grad_wo(out_weights_.size());
  std::vector<double> grad_bo(out_bias_.size());

  Activations acts;
  std::vector<double> dlogits(m);
  std::vector<double> ddense(d);
  std::vector<double> dflat(flat);
  std::vector<double> dconv2(c2 * conv2_out_ * conv2_out_);
  std::vector<double> dconv1(c1 * conv1_out_ * conv1_out_);

  std::vector<size_t> order(features.rows());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  size_t step = 0;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t start = 0; start < order.size();
         start += options_.batch_size) {
      const size_t end = std::min(start + options_.batch_size, order.size());
      const double batch = static_cast<double>(end - start);
      ++step;
      auto zero = [](std::vector<double>& g) {
        std::fill(g.begin(), g.end(), 0.0);
      };
      zero(grad_k1); zero(grad_b1); zero(grad_k2); zero(grad_b2);
      zero(grad_wd); zero(grad_bd); zero(grad_wo); zero(grad_bo);

      for (size_t index = start; index < end; ++index) {
        const size_t row = order[index];
        const double* image = features.RowData(row);
        Forward(image, acts, &rng);

        // Output gradient.
        for (size_t k = 0; k < m; ++k) {
          dlogits[k] = acts.logits[k] -
                       (labels[row] == static_cast<int>(k) ? 1.0 : 0.0);
        }
        // Dense layer backward.
        std::fill(ddense.begin(), ddense.end(), 0.0);
        for (size_t u = 0; u < d; ++u) {
          for (size_t k = 0; k < m; ++k) {
            grad_wo[u * m + k] += acts.dense[u] * dlogits[k];
            ddense[u] += out_weights_[u * m + k] * dlogits[k];
          }
          if (acts.dense[u] <= 0.0 || acts.dense_mask[u] == 0) {
            ddense[u] = 0.0;
          }
        }
        for (size_t k = 0; k < m; ++k) grad_bo[k] += dlogits[k];
        // Flatten backward.
        std::fill(dflat.begin(), dflat.end(), 0.0);
        for (size_t f = 0; f < flat; ++f) {
          const double pooled = acts.pool[f];
          for (size_t u = 0; u < d; ++u) {
            grad_wd[f * d + u] += pooled * ddense[u];
            dflat[f] += dense_weights_[f * d + u] * ddense[u];
          }
        }
        for (size_t u = 0; u < d; ++u) grad_bd[u] += ddense[u];
        // Unpool.
        std::fill(dconv2.begin(), dconv2.end(), 0.0);
        for (size_t f = 0; f < flat; ++f) {
          dconv2[acts.pool_argmax[f]] += dflat[f];
        }
        // ReLU mask on conv2.
        for (size_t i = 0; i < dconv2.size(); ++i) {
          if (acts.conv2[i] <= 0.0) dconv2[i] = 0.0;
        }
        // Conv2 backward (kernel grads + input grads).
        std::fill(dconv1.begin(), dconv1.end(), 0.0);
        for (size_t b = 0; b < c2; ++b) {
          for (size_t i = 0; i < conv2_out_; ++i) {
            for (size_t j = 0; j < conv2_out_; ++j) {
              const double g =
                  dconv2[(b * conv2_out_ + i) * conv2_out_ + j];
              // bbv-lint: allow(float-eq) exact-zero sparsity skip
              if (g == 0.0) continue;
              grad_b2[b] += g;
              for (size_t a = 0; a < c1; ++a) {
                const size_t kernel_base =
                    ((b * c1 + a) * kKernel) * kKernel;
                const size_t act_base = a * conv1_out_ * conv1_out_;
                for (size_t di = 0; di < kKernel; ++di) {
                  const size_t in_row = (i + di) * conv1_out_ + j;
                  for (size_t dj = 0; dj < kKernel; ++dj) {
                    grad_k2[kernel_base + di * kKernel + dj] +=
                        g * acts.conv1[act_base + in_row + dj];
                    dconv1[act_base + in_row + dj] +=
                        g * conv2_kernels_[kernel_base + di * kKernel + dj];
                  }
                }
              }
            }
          }
        }
        // ReLU mask on conv1 and conv1 backward (kernel grads only).
        for (size_t a = 0; a < c1; ++a) {
          for (size_t i = 0; i < conv1_out_; ++i) {
            for (size_t j = 0; j < conv1_out_; ++j) {
              const size_t idx = (a * conv1_out_ + i) * conv1_out_ + j;
              if (acts.conv1[idx] <= 0.0) continue;
              const double g = dconv1[idx];
              // bbv-lint: allow(float-eq) exact-zero sparsity skip
              if (g == 0.0) continue;
              grad_b1[a] += g;
              for (size_t di = 0; di < kKernel; ++di) {
                for (size_t dj = 0; dj < kKernel; ++dj) {
                  grad_k1[(a * kKernel + di) * kKernel + dj] +=
                      g * image[(i + di) * side_ + (j + dj)];
                }
              }
            }
          }
        }
      }

      auto scale = [&](std::vector<double>& g) {
        for (double& v : g) v /= batch;
      };
      scale(grad_k1); scale(grad_b1); scale(grad_k2); scale(grad_b2);
      scale(grad_wd); scale(grad_bd); scale(grad_wo); scale(grad_bo);
      const double t = static_cast<double>(step);
      adam_k1.Update(conv1_kernels_, grad_k1, options_.learning_rate, t);
      adam_b1.Update(conv1_bias_, grad_b1, options_.learning_rate, t);
      adam_k2.Update(conv2_kernels_, grad_k2, options_.learning_rate, t);
      adam_b2.Update(conv2_bias_, grad_b2, options_.learning_rate, t);
      adam_wd.Update(dense_weights_, grad_wd, options_.learning_rate, t);
      adam_bd.Update(dense_bias_, grad_bd, options_.learning_rate, t);
      adam_wo.Update(out_weights_, grad_wo, options_.learning_rate, t);
      adam_bo.Update(out_bias_, grad_bo, options_.learning_rate, t);
    }
  }
  fitted_ = true;
  return common::Status::OK();
}

void ConvNet::Forward(const double* image, Activations& acts,
                      common::Rng* dropout_rng) const {
  const size_t c1 = options_.conv1_channels;
  const size_t c2 = options_.conv2_channels;
  const size_t d = options_.dense_units;
  const auto m = static_cast<size_t>(num_classes_);
  const size_t flat = c2 * pool_out_ * pool_out_;

  acts.conv1.assign(c1 * conv1_out_ * conv1_out_, 0.0);
  for (size_t a = 0; a < c1; ++a) {
    const double* kernel = &conv1_kernels_[a * kKernel * kKernel];
    for (size_t i = 0; i < conv1_out_; ++i) {
      for (size_t j = 0; j < conv1_out_; ++j) {
        double sum = conv1_bias_[a];
        for (size_t di = 0; di < kKernel; ++di) {
          const double* in_row = image + (i + di) * side_ + j;
          const double* k_row = kernel + di * kKernel;
          sum += k_row[0] * in_row[0] + k_row[1] * in_row[1] +
                 k_row[2] * in_row[2];
        }
        acts.conv1[(a * conv1_out_ + i) * conv1_out_ + j] =
            std::max(sum, 0.0);
      }
    }
  }

  acts.conv2.assign(c2 * conv2_out_ * conv2_out_, 0.0);
  for (size_t b = 0; b < c2; ++b) {
    for (size_t i = 0; i < conv2_out_; ++i) {
      for (size_t j = 0; j < conv2_out_; ++j) {
        double sum = conv2_bias_[b];
        for (size_t a = 0; a < c1; ++a) {
          const double* kernel =
              &conv2_kernels_[((b * c1 + a) * kKernel) * kKernel];
          const double* act = &acts.conv1[a * conv1_out_ * conv1_out_];
          for (size_t di = 0; di < kKernel; ++di) {
            const double* in_row = act + (i + di) * conv1_out_ + j;
            const double* k_row = kernel + di * kKernel;
            sum += k_row[0] * in_row[0] + k_row[1] * in_row[1] +
                   k_row[2] * in_row[2];
          }
        }
        acts.conv2[(b * conv2_out_ + i) * conv2_out_ + j] =
            std::max(sum, 0.0);
      }
    }
  }

  acts.pool.assign(flat, 0.0);
  acts.pool_argmax.assign(flat, 0);
  for (size_t b = 0; b < c2; ++b) {
    for (size_t p = 0; p < pool_out_; ++p) {
      for (size_t q = 0; q < pool_out_; ++q) {
        double best = -1e300;
        size_t best_index = 0;
        for (size_t di = 0; di < 2; ++di) {
          for (size_t dj = 0; dj < 2; ++dj) {
            const size_t idx =
                (b * conv2_out_ + 2 * p + di) * conv2_out_ + 2 * q + dj;
            if (acts.conv2[idx] > best) {
              best = acts.conv2[idx];
              best_index = idx;
            }
          }
        }
        const size_t f = (b * pool_out_ + p) * pool_out_ + q;
        acts.pool[f] = best;
        acts.pool_argmax[f] = best_index;
      }
    }
  }

  acts.dense.assign(d, 0.0);
  acts.dense_mask.assign(d, 1);
  for (size_t u = 0; u < d; ++u) {
    double sum = dense_bias_[u];
    for (size_t f = 0; f < flat; ++f) {
      sum += dense_weights_[f * d + u] * acts.pool[f];
    }
    sum = std::max(sum, 0.0);
    if (dropout_rng != nullptr && options_.dropout > 0.0) {
      if (dropout_rng->Bernoulli(options_.dropout)) {
        sum = 0.0;
        acts.dense_mask[u] = 0;
      } else {
        sum /= 1.0 - options_.dropout;  // inverted dropout
      }
    }
    acts.dense[u] = sum;
  }

  acts.logits.assign(m, 0.0);
  for (size_t k = 0; k < m; ++k) {
    double sum = out_bias_[k];
    for (size_t u = 0; u < d; ++u) {
      sum += out_weights_[u * m + k] * acts.dense[u];
    }
    acts.logits[k] = sum;
  }
  SoftmaxInPlace(acts.logits);
}

linalg::Matrix ConvNet::PredictProba(const linalg::Matrix& features) const {
  BBV_CHECK(fitted_) << "PredictProba before Fit";
  BBV_CHECK_EQ(features.cols(), side_ * side_);
  const auto m = static_cast<size_t>(num_classes_);
  linalg::Matrix result(features.rows(), m);
  Activations acts;
  for (size_t i = 0; i < features.rows(); ++i) {
    Forward(features.RowData(i), acts, nullptr);
    std::copy(acts.logits.begin(), acts.logits.end(), result.RowData(i));
  }
  return result;
}

}  // namespace bbv::ml

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

namespace bbv::ml {

namespace {
constexpr char kConvMagic[] = "BBVCV";
constexpr uint32_t kConvVersion = 1;
}  // namespace

common::Status ConvNet::Save(std::ostream& out) const {
  if (!fitted_) {
    return common::Status::FailedPrecondition("Save before Fit");
  }
  common::BinaryWriter writer(out);
  writer.WriteMagic(kConvMagic, kConvVersion);
  writer.WriteInt32(num_classes_);
  writer.WriteUint64(side_);
  writer.WriteUint64(options_.conv1_channels);
  writer.WriteUint64(options_.conv2_channels);
  writer.WriteUint64(options_.dense_units);
  writer.WriteDoubleVector(conv1_kernels_);
  writer.WriteDoubleVector(conv1_bias_);
  writer.WriteDoubleVector(conv2_kernels_);
  writer.WriteDoubleVector(conv2_bias_);
  writer.WriteDoubleVector(dense_weights_);
  writer.WriteDoubleVector(dense_bias_);
  writer.WriteDoubleVector(out_weights_);
  writer.WriteDoubleVector(out_bias_);
  return writer.status();
}

common::Result<ConvNet> ConvNet::Load(std::istream& in) {
  common::BinaryReader reader(in);
  BBV_RETURN_NOT_OK(reader.ExpectMagic(kConvMagic, kConvVersion));
  int32_t num_classes = 0;
  uint64_t side = 0;
  Options options;
  BBV_ASSIGN_OR_RETURN(num_classes, reader.ReadInt32());
  BBV_ASSIGN_OR_RETURN(side, reader.ReadUint64());
  BBV_ASSIGN_OR_RETURN(options.conv1_channels, reader.ReadUint64());
  BBV_ASSIGN_OR_RETURN(options.conv2_channels, reader.ReadUint64());
  BBV_ASSIGN_OR_RETURN(options.dense_units, reader.ReadUint64());
  if (num_classes < 2 || side < 8 || side > 4096 ||
      options.conv1_channels == 0 || options.conv2_channels == 0 ||
      options.dense_units == 0) {
    return common::Status::InvalidArgument("corrupt conv net header");
  }
  options.image_side = side;
  ConvNet model(options);
  model.num_classes_ = num_classes;
  model.side_ = side;
  model.conv1_out_ = side - 2;
  model.conv2_out_ = side - 4;
  model.pool_out_ = (side - 4) / 2;
  BBV_ASSIGN_OR_RETURN(model.conv1_kernels_, reader.ReadDoubleVector());
  BBV_ASSIGN_OR_RETURN(model.conv1_bias_, reader.ReadDoubleVector());
  BBV_ASSIGN_OR_RETURN(model.conv2_kernels_, reader.ReadDoubleVector());
  BBV_ASSIGN_OR_RETURN(model.conv2_bias_, reader.ReadDoubleVector());
  BBV_ASSIGN_OR_RETURN(model.dense_weights_, reader.ReadDoubleVector());
  BBV_ASSIGN_OR_RETURN(model.dense_bias_, reader.ReadDoubleVector());
  BBV_ASSIGN_OR_RETURN(model.out_weights_, reader.ReadDoubleVector());
  BBV_ASSIGN_OR_RETURN(model.out_bias_, reader.ReadDoubleVector());
  const size_t flat =
      options.conv2_channels * model.pool_out_ * model.pool_out_;
  if (model.conv1_kernels_.size() != options.conv1_channels * 9 ||
      model.conv1_bias_.size() != options.conv1_channels ||
      model.conv2_kernels_.size() !=
          options.conv2_channels * options.conv1_channels * 9 ||
      model.conv2_bias_.size() != options.conv2_channels ||
      model.dense_weights_.size() != flat * options.dense_units ||
      model.dense_bias_.size() != options.dense_units ||
      model.out_weights_.size() !=
          options.dense_units * static_cast<size_t>(num_classes) ||
      model.out_bias_.size() != static_cast<size_t>(num_classes)) {
    return common::Status::InvalidArgument("corrupt conv net parameters");
  }
  model.fitted_ = true;
  return model;
}

}  // namespace bbv::ml
