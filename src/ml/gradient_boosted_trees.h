#ifndef BBV_ML_GRADIENT_BOOSTED_TREES_H_
#define BBV_ML_GRADIENT_BOOSTED_TREES_H_

#include <string>
#include <vector>

#include "common/serialize.h"
#include "ml/classifier.h"
#include "ml/decision_tree.h"

namespace bbv::ml {

/// Gradient-boosted decision-tree classifier (xgboost-style softmax
/// boosting): each round fits one regression tree per class to the negative
/// log-loss gradient, with shrinkage and optional row subsampling. This is
/// the paper's `xgb` black box model and also the prediction model inside
/// the performance validator.
class GradientBoostedTrees : public Classifier {
 public:
  struct Options {
    int num_rounds = 50;
    double learning_rate = 0.2;
    /// Fraction of rows sampled (without replacement) per round.
    double subsample = 0.8;
    TreeOptions tree;

    Options() {
      tree.max_depth = 3;
      tree.min_samples_leaf = 5;
    }
  };

  GradientBoostedTrees() : GradientBoostedTrees(Options{}) {}
  explicit GradientBoostedTrees(Options options) : options_(options) {}

  common::Status Fit(const linalg::Matrix& features,
                     const std::vector<int>& labels, int num_classes,
                     common::Rng& rng) override;
  linalg::Matrix PredictProba(const linalg::Matrix& features) const override;
  std::string Name() const override { return "xgb"; }

  /// Persists the fitted ensemble; Load restores bit-identical inference.
  common::Status Save(std::ostream& out) const;
  static common::Result<GradientBoostedTrees> Load(std::istream& in);

  int num_rounds_fitted() const {
    return num_classes_ == 0
               ? 0
               : static_cast<int>(trees_.size()) / num_classes_;
  }

 private:
  Options options_;
  bool fitted_ = false;
  /// trees_[round * num_classes + k] boosts the score of class k.
  std::vector<RegressionTree> trees_;
  std::vector<double> base_scores_;  // log-prior per class
};

}  // namespace bbv::ml

#endif  // BBV_ML_GRADIENT_BOOSTED_TREES_H_
