#ifndef BBV_ML_GRADIENT_BOOSTED_TREES_H_
#define BBV_ML_GRADIENT_BOOSTED_TREES_H_

#include <span>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "ml/classifier.h"
#include "ml/decision_tree.h"
#include "ml/forest_kernel.h"

namespace bbv::ml {

/// Gradient-boosted decision-tree classifier (xgboost-style softmax
/// boosting): each round fits one regression tree per class to the negative
/// log-loss gradient, with shrinkage and optional row subsampling. This is
/// the paper's `xgb` black box model and also the prediction model inside
/// the performance validator.
///
/// Batch inference rides the flattened ForestKernel compiled at fit/load
/// time: the strided accumulation out[r, t % num_classes] += lr * tree_t(r)
/// reproduces the per-row boosting update bit-for-bit.
class GradientBoostedTrees : public Classifier {
 public:
  struct Options {
    int num_rounds = 50;
    double learning_rate = 0.2;
    /// Fraction of rows sampled (without replacement) per round.
    double subsample = 0.8;
    TreeOptions tree;
    /// Inference-kernel configuration compiled at Fit time (quantized
    /// width-8 / bitvector fast path; see ForestKernel). Load always
    /// restores the default bit-exact kernel.
    ForestKernel::Options kernel;

    Options() {
      tree.max_depth = 3;
      tree.min_samples_leaf = 5;
    }
  };

  GradientBoostedTrees() : GradientBoostedTrees(Options{}) {}
  explicit GradientBoostedTrees(Options options) : options_(options) {}

  common::Status Fit(const linalg::Matrix& features,
                     const std::vector<int>& labels, int num_classes,
                     common::Rng& rng) override;
  linalg::Matrix PredictProba(const linalg::Matrix& features) const override;
  std::string Name() const override { return "xgb"; }

  /// Allocation-free batch surface: writes the row-major (n x num_classes)
  /// probability matrix into `out` (whose size must equal
  /// features.rows() * num_classes()) through the flattened kernel.
  /// Requires a prior Fit or Load.
  void PredictProbaInto(const linalg::Matrix& features,
                        std::span<double> out) const;

  /// Serialization core: appends the versioned ensemble record to an open
  /// archive. Byte-identical to what the stream overload below writes.
  common::Status Save(common::BinaryWriter& writer) const;
  static common::Result<GradientBoostedTrees> Load(
      common::BinaryReader& reader);

  /// Thin stream wrappers over the archive core; Load restores the ensemble
  /// and recompiles the kernel for bit-identical inference.
  common::Status Save(std::ostream& out) const;
  static common::Result<GradientBoostedTrees> Load(std::istream& in);

  int num_rounds_fitted() const {
    return num_classes_ == 0
               ? 0
               : static_cast<int>(trees_.size()) / num_classes_;
  }

  /// Fitted trees in boosting order (legacy node-walk reference for kernel
  /// equivalence harnesses); trees()[round * num_classes + k] boosts class k.
  const std::vector<RegressionTree>& trees() const { return trees_; }
  const std::vector<double>& base_scores() const { return base_scores_; }
  double learning_rate() const { return options_.learning_rate; }

  /// Compiled inference kernel (empty before Fit/Load).
  const ForestKernel& kernel() const { return kernel_; }

 private:
  Options options_;
  bool fitted_ = false;
  /// trees_[round * num_classes + k] boosts the score of class k.
  std::vector<RegressionTree> trees_;
  std::vector<double> base_scores_;  // log-prior per class
  ForestKernel kernel_;
};

}  // namespace bbv::ml

#endif  // BBV_ML_GRADIENT_BOOSTED_TREES_H_
