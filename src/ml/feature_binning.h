#ifndef BBV_ML_FEATURE_BINNING_H_
#define BBV_ML_FEATURE_BINNING_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"

namespace bbv::ml {

/// Histogram pre-binning for tree training (LightGBM-style): every feature
/// column is quantized once, up front, onto a quantile grid of at most 255
/// candidate cut values, and each cell stores the uint8 code of the first
/// cut value >= the cell's feature value. A split search can then
/// accumulate per-bin (count, target-sum) histograms in one linear pass
/// over the node's rows and scan at most 255 candidate thresholds, instead
/// of re-sorting the node's (value, target) pairs for every feature at
/// every node.
///
/// The binning is built once per ensemble Fit and shared read-only across
/// all trees (and across the ParallelMap tree workers), so it adds one
/// O(n d log n) pass to a fit that previously paid O(n log n) per feature
/// per node.
///
/// Correctness contract: cut values are actual feature values from the
/// training column, and `code(v) <= b  <=>  v <= CutValue(f, b)` for every
/// value v of the column (codes are lower-bound indices into the sorted cut
/// array). A tree that picks bin b as its split therefore partitions rows
/// identically whether it compares codes or compares raw values against the
/// stored threshold — the fitted tree is a plain RegressionTree with
/// value-space thresholds, and inference needs no knowledge of the binning.
class FeatureBinning {
 public:
  /// Maximum number of candidate cut values per feature. 255 keeps every
  /// code (0..num_cuts, i.e. at most 255 when a value exceeds every cut)
  /// inside uint8.
  static constexpr size_t kMaxCuts = 255;

  /// Empty binning (no features); Build replaces it wholesale.
  FeatureBinning() = default;

  /// Builds the per-feature quantile grids and codes every cell of
  /// `features`. Deterministic: depends only on the matrix contents.
  static FeatureBinning Build(const linalg::Matrix& features);

  bool empty() const { return num_rows_ == 0; }
  size_t num_rows() const { return num_rows_; }
  size_t num_features() const { return cut_offsets_.empty() ? 0 : cut_offsets_.size() - 1; }

  /// Number of candidate cut values for `feature` (0 for constant columns).
  size_t NumCuts(size_t feature) const {
    return cut_offsets_[feature + 1] - cut_offsets_[feature];
  }

  /// The raw feature value backing cut index `cut` of `feature`; this is
  /// the threshold a binned split stores in the tree ("go left when
  /// x <= cut value").
  double CutValue(size_t feature, size_t cut) const {
    return cut_values_[cut_offsets_[feature] + cut];
  }

  /// Column-major code array for `feature`: num_rows() consecutive uint8
  /// codes, code[row] = index of the first cut >= the cell value (NumCuts
  /// when the value is above every cut).
  const uint8_t* Codes(size_t feature) const {
    return codes_.data() + feature * num_rows_;
  }

 private:
  size_t num_rows_ = 0;
  /// Cut values of all features, concatenated; feature f owns
  /// [cut_offsets_[f], cut_offsets_[f + 1]).
  std::vector<double> cut_values_;
  std::vector<size_t> cut_offsets_;
  /// Column-major codes, feature-major: codes_[f * num_rows_ + row].
  std::vector<uint8_t> codes_;
};

}  // namespace bbv::ml

#endif  // BBV_ML_FEATURE_BINNING_H_
