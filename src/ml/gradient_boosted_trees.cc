#include "ml/gradient_boosted_trees.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "ml/feature_binning.h"

namespace bbv::ml {

common::Status GradientBoostedTrees::Fit(const linalg::Matrix& features,
                                         const std::vector<int>& labels,
                                         int num_classes, common::Rng& rng) {
  if (features.rows() != labels.size()) {
    return common::Status::InvalidArgument(
        "features and labels disagree on the number of rows");
  }
  if (features.rows() == 0) {
    return common::Status::InvalidArgument("cannot fit on an empty matrix");
  }
  if (num_classes < 2) {
    return common::Status::InvalidArgument("need at least two classes");
  }
  num_classes_ = num_classes;
  const size_t n = features.rows();
  const auto m = static_cast<size_t>(num_classes);

  // Base score: log class priors (clipped away from zero counts).
  std::vector<double> prior(m, 0.0);
  for (int label : labels) prior[static_cast<size_t>(label)] += 1.0;
  base_scores_.assign(m, 0.0);
  for (size_t k = 0; k < m; ++k) {
    base_scores_[k] =
        std::log(std::max(prior[k], 1.0) / static_cast<double>(n));
  }

  // Raw scores (n x m) maintained incrementally.
  linalg::Matrix scores(n, m);
  for (size_t i = 0; i < n; ++i) {
    for (size_t k = 0; k < m; ++k) scores.At(i, k) = base_scores_[k];
  }

  trees_.clear();
  trees_.reserve(static_cast<size_t>(options_.num_rounds) * m);
  const size_t sample_size = std::max<size_t>(
      2, static_cast<size_t>(options_.subsample * static_cast<double>(n)));
  // The binning depends only on the (round-invariant) feature matrix, so
  // one build up front serves every boosting round and class.
  FeatureBinning binning;
  const FeatureBinning* binning_ptr = nullptr;
  if (options_.tree.binned_split_search) {
    binning = FeatureBinning::Build(features);
    binning_ptr = &binning;
  }
  std::vector<double> gradients(n, 0.0);
  std::vector<double> round_predictions(n, 0.0);
  for (int round = 0; round < options_.num_rounds; ++round) {
    const linalg::Matrix probabilities = linalg::Softmax(scores);
    const std::vector<size_t> sample =
        options_.subsample >= 1.0
            ? std::vector<size_t>()
            : rng.SampleWithoutReplacement(n, sample_size);
    for (size_t k = 0; k < m; ++k) {
      // Negative gradient of multiclass log-loss wrt score_k.
      for (size_t i = 0; i < n; ++i) {
        const double y =
            labels[i] == static_cast<int>(k) ? 1.0 : 0.0;
        gradients[i] = y - probabilities.At(i, k);
      }
      RegressionTree tree(options_.tree);
      common::Status status =
          sample.empty()
              ? tree.Fit(features, gradients, rng, binning_ptr)
              : tree.Fit(features, gradients, sample, rng, binning_ptr);
      BBV_RETURN_NOT_OK(status);
      tree.PredictInto(features, round_predictions);
      for (size_t i = 0; i < n; ++i) {
        scores.At(i, k) += options_.learning_rate * round_predictions[i];
      }
      trees_.push_back(std::move(tree));
    }
  }
  kernel_ = ForestKernel::Compile(trees_, options_.kernel);
  fitted_ = true;
  return common::Status::OK();
}

void GradientBoostedTrees::PredictProbaInto(const linalg::Matrix& features,
                                            std::span<double> out) const {
  BBV_CHECK(fitted_) << "PredictProba before Fit";
  const auto m = static_cast<size_t>(num_classes_);
  BBV_CHECK_EQ(out.size(), features.rows() * m);
  for (size_t i = 0; i < features.rows(); ++i) {
    double* row = out.data() + i * m;
    for (size_t k = 0; k < m; ++k) row[k] = base_scores_[k];
  }
  // Strided kernel accumulation reproduces the per-row boosting loop
  // out[t % m] += lr * tree_t(row) in ensemble order, bit-for-bit.
  kernel_.AccumulateInto(features, options_.learning_rate, m, out);
  linalg::SoftmaxRowsInPlace(out, m);
}

linalg::Matrix GradientBoostedTrees::PredictProba(
    const linalg::Matrix& features) const {
  BBV_CHECK(fitted_) << "PredictProba before Fit";
  linalg::Matrix probabilities(features.rows(),
                               static_cast<size_t>(num_classes_));
  PredictProbaInto(features, probabilities.data());
  return probabilities;
}

}  // namespace bbv::ml

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

namespace bbv::ml {

namespace {
constexpr char kGbdtMagic[] = "BBVGB";
constexpr uint32_t kGbdtVersion = 1;
}  // namespace

common::Status GradientBoostedTrees::Save(common::BinaryWriter& writer) const {
  if (!fitted_) {
    return common::Status::FailedPrecondition("Save before Fit");
  }
  writer.WriteMagic(kGbdtMagic, kGbdtVersion);
  writer.WriteInt32(num_classes_);
  writer.WriteDouble(options_.learning_rate);
  writer.WriteDoubleVector(base_scores_);
  writer.WriteUint64(trees_.size());
  BBV_RETURN_NOT_OK(writer.status());
  for (const RegressionTree& tree : trees_) {
    tree.Save(writer);
  }
  return writer.status();
}

common::Result<GradientBoostedTrees> GradientBoostedTrees::Load(
    common::BinaryReader& reader) {
  BBV_RETURN_NOT_OK(reader.ExpectMagic(kGbdtMagic, kGbdtVersion));
  BBV_ASSIGN_OR_RETURN(int32_t num_classes, reader.ReadInt32());
  if (num_classes < 2 || num_classes > 10'000) {
    return common::Status::InvalidArgument("implausible class count");
  }
  Options options;
  BBV_ASSIGN_OR_RETURN(options.learning_rate, reader.ReadDouble());
  GradientBoostedTrees model(options);
  model.num_classes_ = num_classes;
  BBV_ASSIGN_OR_RETURN(model.base_scores_, reader.ReadDoubleVector());
  if (model.base_scores_.size() != static_cast<size_t>(num_classes)) {
    return common::Status::InvalidArgument("corrupt base scores");
  }
  BBV_ASSIGN_OR_RETURN(uint64_t count, reader.ReadUint64());
  if (count == 0 || count % static_cast<uint64_t>(num_classes) != 0 ||
      count > 10'000'000) {
    return common::Status::InvalidArgument("implausible tree count");
  }
  model.trees_.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    BBV_ASSIGN_OR_RETURN(RegressionTree tree, RegressionTree::Load(reader));
    model.trees_.push_back(std::move(tree));
  }
  model.kernel_ = ForestKernel::Compile(model.trees_);
  model.fitted_ = true;
  return model;
}

common::Status GradientBoostedTrees::Save(std::ostream& out) const {
  common::BinaryWriter writer(out);
  return Save(writer);
}

common::Result<GradientBoostedTrees> GradientBoostedTrees::Load(
    std::istream& in) {
  common::BinaryReader reader(in);
  return Load(reader);
}

}  // namespace bbv::ml
