#include "ml/model_io.h"

#include <istream>
#include <ostream>

#include "common/serialize.h"
#include "ml/conv_net.h"
#include "ml/decision_tree.h"
#include "ml/feed_forward_network.h"
#include "ml/gradient_boosted_trees.h"
#include "ml/sgd_logistic_regression.h"

namespace bbv::ml {

namespace {
constexpr char kEnvelopeMagic[] = "BBVMD";
constexpr uint32_t kEnvelopeVersion = 1;
}  // namespace

common::Status SaveClassifier(const Classifier& classifier,
                              std::ostream& out) {
  common::BinaryWriter writer(out);
  writer.WriteMagic(kEnvelopeMagic, kEnvelopeVersion);
  const std::string tag = classifier.Name();
  writer.WriteString(tag);
  BBV_RETURN_NOT_OK(writer.status());
  if (tag == "lr") {
    return static_cast<const SgdLogisticRegression&>(classifier).Save(out);
  }
  if (tag == "dnn") {
    return static_cast<const FeedForwardNetwork&>(classifier).Save(out);
  }
  if (tag == "xgb") {
    return static_cast<const GradientBoostedTrees&>(classifier).Save(out);
  }
  if (tag == "cart") {
    return static_cast<const DecisionTreeClassifier&>(classifier).Save(out);
  }
  if (tag == "conv") {
    return static_cast<const ConvNet&>(classifier).Save(out);
  }
  return common::Status::NotImplemented("no serializer for classifier '" +
                                        tag + "'");
}

common::Result<std::unique_ptr<Classifier>> LoadClassifier(std::istream& in) {
  common::BinaryReader reader(in);
  BBV_RETURN_NOT_OK(reader.ExpectMagic(kEnvelopeMagic, kEnvelopeVersion));
  BBV_ASSIGN_OR_RETURN(std::string tag, reader.ReadString());
  if (tag == "lr") {
    BBV_ASSIGN_OR_RETURN(SgdLogisticRegression model,
                         SgdLogisticRegression::Load(in));
    return std::unique_ptr<Classifier>(
        std::make_unique<SgdLogisticRegression>(std::move(model)));
  }
  if (tag == "dnn") {
    BBV_ASSIGN_OR_RETURN(FeedForwardNetwork model,
                         FeedForwardNetwork::Load(in));
    return std::unique_ptr<Classifier>(
        std::make_unique<FeedForwardNetwork>(std::move(model)));
  }
  if (tag == "xgb") {
    BBV_ASSIGN_OR_RETURN(GradientBoostedTrees model,
                         GradientBoostedTrees::Load(in));
    return std::unique_ptr<Classifier>(
        std::make_unique<GradientBoostedTrees>(std::move(model)));
  }
  if (tag == "cart") {
    BBV_ASSIGN_OR_RETURN(DecisionTreeClassifier model,
                         DecisionTreeClassifier::Load(in));
    return std::unique_ptr<Classifier>(
        std::make_unique<DecisionTreeClassifier>(std::move(model)));
  }
  if (tag == "conv") {
    BBV_ASSIGN_OR_RETURN(ConvNet model, ConvNet::Load(in));
    return std::unique_ptr<Classifier>(
        std::make_unique<ConvNet>(std::move(model)));
  }
  return common::Status::InvalidArgument("unknown classifier tag '" + tag +
                                         "'");
}

}  // namespace bbv::ml
