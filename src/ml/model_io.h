#ifndef BBV_ML_MODEL_IO_H_
#define BBV_ML_MODEL_IO_H_

#include <iosfwd>
#include <memory>

#include "common/result.h"
#include "common/status.h"
#include "ml/classifier.h"

namespace bbv::ml {

/// Tagged, polymorphic classifier persistence: writes the classifier's
/// type tag ("lr", "dnn", "xgb", "cart", "conv") followed by its payload,
/// so a stream can be reloaded without knowing the concrete type.
/// Supported for every classifier in the zoo.
common::Status SaveClassifier(const Classifier& classifier,
                              std::ostream& out);

/// Reloads a classifier written by SaveClassifier.
common::Result<std::unique_ptr<Classifier>> LoadClassifier(std::istream& in);

}  // namespace bbv::ml

#endif  // BBV_ML_MODEL_IO_H_
