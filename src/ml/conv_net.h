#ifndef BBV_ML_CONV_NET_H_
#define BBV_ML_CONV_NET_H_

#include <string>
#include <vector>

#include "common/serialize.h"
#include "ml/classifier.h"

namespace bbv::ml {

/// Small convolutional network for square grayscale images, mirroring the
/// paper's `conv` model: two 3x3 convolution layers with ReLU, 2x2 max
/// pooling, a dense ReLU layer with dropout, and a softmax output. Trained
/// with mini-batch Adam. Inputs are flattened images (side * side columns).
class ConvNet : public Classifier {
 public:
  struct Options {
    /// Image side length; inferred from the feature width when 0.
    size_t image_side = 0;
    size_t conv1_channels = 8;
    size_t conv2_channels = 16;
    size_t dense_units = 64;
    int epochs = 8;
    size_t batch_size = 32;
    double learning_rate = 1e-3;
    double dropout = 0.25;

    /// The paper's exact architecture (32/64 conv channels, dense 128).
    static Options PaperScale() {
      Options options;
      options.conv1_channels = 32;
      options.conv2_channels = 64;
      options.dense_units = 128;
      return options;
    }
  };

  ConvNet() : ConvNet(Options{}) {}
  explicit ConvNet(Options options) : options_(options) {}

  common::Status Fit(const linalg::Matrix& features,
                     const std::vector<int>& labels, int num_classes,
                     common::Rng& rng) override;
  linalg::Matrix PredictProba(const linalg::Matrix& features) const override;
  std::string Name() const override { return "conv"; }

  /// Persists the fitted network (architecture + parameters).
  common::Status Save(std::ostream& out) const;
  static common::Result<ConvNet> Load(std::istream& in);

 private:
  struct Activations;

  /// Forward pass for one flattened image. `dropout_rng` enables training-
  /// time dropout when non-null.
  void Forward(const double* image, Activations& acts,
               common::Rng* dropout_rng) const;

  Options options_;
  bool fitted_ = false;
  size_t side_ = 0;       // input side
  size_t conv1_out_ = 0;  // side - 2
  size_t conv2_out_ = 0;  // side - 4
  size_t pool_out_ = 0;   // (side - 4) / 2
  // Parameters (flat buffers).
  std::vector<double> conv1_kernels_;  // C1 x 3 x 3
  std::vector<double> conv1_bias_;     // C1
  std::vector<double> conv2_kernels_;  // C2 x C1 x 3 x 3
  std::vector<double> conv2_bias_;     // C2
  std::vector<double> dense_weights_;  // (C2*P*P) x D
  std::vector<double> dense_bias_;     // D
  std::vector<double> out_weights_;    // D x m
  std::vector<double> out_bias_;       // m
};

}  // namespace bbv::ml

#endif  // BBV_ML_CONV_NET_H_
