#ifndef BBV_ML_METRICS_H_
#define BBV_ML_METRICS_H_

#include <vector>

#include "linalg/matrix.h"

namespace bbv::ml {

/// Fraction of predictions equal to the true labels.
double Accuracy(const std::vector<int>& predicted,
                const std::vector<int>& truth);

/// Accuracy of argmax predictions from class probabilities (n x m).
double AccuracyFromProba(const linalg::Matrix& probabilities,
                         const std::vector<int>& truth);

/// Row-index-view variant: accuracy over the sub-batch `rows` of
/// `probabilities`, with `truth` indexed by full-matrix row id. Equivalent
/// to scoring probabilities.SelectRows(rows) against the gathered labels,
/// without materializing either.
double AccuracyFromProba(const linalg::Matrix& probabilities,
                         const std::vector<size_t>& rows,
                         const std::vector<int>& truth);

/// Area under the ROC curve for binary labels (positive class = 1) from
/// scores for the positive class. Ties receive average rank
/// (Mann-Whitney formulation). Requires both classes present.
double RocAuc(const std::vector<double>& scores, const std::vector<int>& truth);

/// AUC from a probability matrix: uses column 1 (binary tasks).
double RocAucFromProba(const linalg::Matrix& probabilities,
                       const std::vector<int>& truth);

/// Row-index-view variant of RocAucFromProba; `truth` is indexed by
/// full-matrix row id.
double RocAucFromProba(const linalg::Matrix& probabilities,
                       const std::vector<size_t>& rows,
                       const std::vector<int>& truth);

/// Confusion counts for binary decisions.
struct BinaryConfusion {
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t true_negatives = 0;
  size_t false_negatives = 0;
};
BinaryConfusion ConfusionCounts(const std::vector<int>& predicted,
                                const std::vector<int>& truth,
                                int positive_class = 1);

/// Precision / recall / F1 for a binary decision problem; all return 0 when
/// their denominator is 0.
double Precision(const BinaryConfusion& confusion);
double Recall(const BinaryConfusion& confusion);
double F1Score(const BinaryConfusion& confusion);
double F1Score(const std::vector<int>& predicted, const std::vector<int>& truth,
               int positive_class = 1);

/// Multiclass log-loss (cross-entropy) of probabilities against labels,
/// clipped away from 0 for stability.
double LogLoss(const linalg::Matrix& probabilities,
               const std::vector<int>& truth);

}  // namespace bbv::ml

#endif  // BBV_ML_METRICS_H_
