#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace bbv::linalg {

Matrix::Matrix(size_t rows, size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  BBV_CHECK_EQ(data_.size(), rows_ * cols_);
}

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix result(rows.size(), rows[0].size());
  for (size_t i = 0; i < rows.size(); ++i) {
    BBV_CHECK_EQ(rows[i].size(), result.cols_);
    std::copy(rows[i].begin(), rows[i].end(), result.RowData(i));
  }
  return result;
}

Matrix Matrix::ColumnVector(const std::vector<double>& values) {
  Matrix result(values.size(), 1);
  std::copy(values.begin(), values.end(), result.data_.begin());
  return result;
}

Matrix Matrix::Identity(size_t n) {
  Matrix result(n, n);
  for (size_t i = 0; i < n; ++i) result.At(i, i) = 1.0;
  return result;
}

std::vector<double> Matrix::Row(size_t row) const {
  BBV_CHECK_LT(row, rows_);
  const double* begin = RowData(row);
  return std::vector<double>(begin, begin + cols_);
}

std::vector<double> Matrix::Col(size_t col) const {
  BBV_CHECK_LT(col, cols_);
  std::vector<double> result(rows_);
  for (size_t i = 0; i < rows_; ++i) result[i] = At(i, col);
  return result;
}

Matrix Matrix::MatMul(const Matrix& other) const {
  BBV_CHECK_EQ(cols_, other.rows_);
  Matrix result(rows_, other.cols_);
  // i-k-j loop order keeps the inner loop streaming over contiguous rows.
  for (size_t i = 0; i < rows_; ++i) {
    const double* lhs_row = RowData(i);
    double* out_row = result.RowData(i);
    for (size_t k = 0; k < cols_; ++k) {
      const double lhs = lhs_row[k];
      if (lhs == 0.0) continue;
      const double* rhs_row = other.RowData(k);
      for (size_t j = 0; j < other.cols_; ++j) {
        out_row[j] += lhs * rhs_row[j];
      }
    }
  }
  return result;
}

Matrix Matrix::Transposed() const {
  Matrix result(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) {
      result.At(j, i) = At(i, j);
    }
  }
  return result;
}

Matrix Matrix::Add(const Matrix& other) const {
  Matrix result = *this;
  result.AddInPlace(other, 1.0);
  return result;
}

Matrix Matrix::Sub(const Matrix& other) const {
  Matrix result = *this;
  result.AddInPlace(other, -1.0);
  return result;
}

Matrix Matrix::Scaled(double factor) const {
  Matrix result = *this;
  for (double& v : result.data_) v *= factor;
  return result;
}

void Matrix::AddInPlace(const Matrix& other, double factor) {
  BBV_CHECK_EQ(rows_, other.rows_);
  BBV_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += factor * other.data_[i];
  }
}

Matrix Matrix::SelectRows(const std::vector<size_t>& row_indices) const {
  Matrix result(row_indices.size(), cols_);
  for (size_t i = 0; i < row_indices.size(); ++i) {
    BBV_CHECK_LT(row_indices[i], rows_);
    std::copy(RowData(row_indices[i]), RowData(row_indices[i]) + cols_,
              result.RowData(i));
  }
  return result;
}

void Matrix::AppendRows(const Matrix& other) {
  if (empty() && rows_ == 0) {
    *this = other;
    return;
  }
  BBV_CHECK_EQ(cols_, other.cols_);
  data_.insert(data_.end(), other.data_.begin(), other.data_.end());
  rows_ += other.rows_;
}

std::vector<size_t> Matrix::ArgMaxPerRow() const {
  BBV_CHECK(cols_ > 0 || rows_ == 0)
      << "ArgMaxPerRow on a matrix with rows but no columns";
  std::vector<size_t> result(rows_, 0);
  for (size_t i = 0; i < rows_; ++i) {
    const double* row = RowData(i);
    result[i] = static_cast<size_t>(
        std::max_element(row, row + cols_) - row);
  }
  return result;
}

std::vector<double> Matrix::MaxPerRow() const {
  BBV_CHECK(cols_ > 0 || rows_ == 0)
      << "MaxPerRow on a matrix with rows but no columns";
  std::vector<double> result(rows_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double* row = RowData(i);
    result[i] = *std::max_element(row, row + cols_);
  }
  return result;
}

std::string Matrix::ToString() const {
  std::ostringstream os;
  os << "Matrix(" << rows_ << "x" << cols_ << ")";
  if (rows_ <= 8 && cols_ <= 8) {
    os << " [";
    for (size_t i = 0; i < rows_; ++i) {
      os << (i == 0 ? "[" : ", [");
      for (size_t j = 0; j < cols_; ++j) {
        os << (j == 0 ? "" : ", ") << At(i, j);
      }
      os << "]";
    }
    os << "]";
  }
  return os.str();
}

void SoftmaxRowsInPlace(std::span<double> data, size_t cols) {
  BBV_CHECK(cols > 0 || data.empty())
      << "Softmax on a matrix with rows but no columns";
  if (data.empty()) return;
  BBV_CHECK_EQ(data.size() % cols, 0u);
  const size_t rows = data.size() / cols;
  for (size_t i = 0; i < rows; ++i) {
    double* out = data.data() + i * cols;
    const double max = *std::max_element(out, out + cols);
    double sum = 0.0;
    for (size_t j = 0; j < cols; ++j) {
      out[j] = std::exp(out[j] - max);
      sum += out[j];
    }
    BBV_DCHECK(sum > 0.0 && std::isfinite(sum))
        << "softmax row " << i << " normalizer " << sum;
    for (size_t j = 0; j < cols; ++j) out[j] /= sum;
  }
}

Matrix Softmax(const Matrix& logits) {
  BBV_CHECK(logits.cols() > 0 || logits.rows() == 0)
      << "Softmax on a matrix with rows but no columns";
  Matrix result = logits;
  SoftmaxRowsInPlace(result.data(), result.cols());
  return result;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  BBV_CHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double Norm(const std::vector<double>& v) { return std::sqrt(Dot(v, v)); }

}  // namespace bbv::linalg
