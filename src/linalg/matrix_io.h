#ifndef BBV_LINALG_MATRIX_IO_H_
#define BBV_LINALG_MATRIX_IO_H_

#include "common/result.h"
#include "common/serialize.h"
#include "linalg/matrix.h"

namespace bbv::linalg {

/// Writes a matrix (shape + row-major payload) into an open archive.
void WriteMatrix(common::BinaryWriter& writer, const Matrix& matrix);

/// Reads a matrix written by WriteMatrix; validates shape consistency.
common::Result<Matrix> ReadMatrix(common::BinaryReader& reader);

}  // namespace bbv::linalg

#endif  // BBV_LINALG_MATRIX_IO_H_
