#include "linalg/matrix_io.h"

namespace bbv::linalg {

void WriteMatrix(common::BinaryWriter& writer, const Matrix& matrix) {
  writer.WriteUint64(matrix.rows());
  writer.WriteUint64(matrix.cols());
  writer.WriteDoubleVector(matrix.data());
}

common::Result<Matrix> ReadMatrix(common::BinaryReader& reader) {
  BBV_ASSIGN_OR_RETURN(uint64_t rows, reader.ReadUint64());
  BBV_ASSIGN_OR_RETURN(uint64_t cols, reader.ReadUint64());
  BBV_ASSIGN_OR_RETURN(std::vector<double> values,
                       reader.ReadDoubleVector());
  if (values.size() != rows * cols) {
    return common::Status::InvalidArgument("corrupt matrix payload");
  }
  return Matrix(rows, cols, std::move(values));
}

}  // namespace bbv::linalg
