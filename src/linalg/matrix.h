#ifndef BBV_LINALG_MATRIX_H_
#define BBV_LINALG_MATRIX_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"

namespace bbv::linalg {

/// Dense row-major matrix of doubles. This is the numeric workhorse under the
/// feature pipelines and models; it favors simplicity and cache-friendly
/// row-major traversal over BLAS-level tuning.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// Zero-initialized rows x cols matrix.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Matrix wrapping existing row-major data; `data.size()` must equal
  /// rows * cols.
  Matrix(size_t rows, size_t cols, std::vector<double> data);

  /// Builds a matrix from nested initializer-style rows (all equal length).
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  /// Single-column matrix from a vector.
  static Matrix ColumnVector(const std::vector<double>& values);

  /// Identity matrix of the given size.
  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& At(size_t row, size_t col) {
    BBV_DCHECK(row < rows_ && col < cols_);
    return data_[row * cols_ + col];
  }
  double At(size_t row, size_t col) const {
    BBV_DCHECK(row < rows_ && col < cols_);
    return data_[row * cols_ + col];
  }

  /// Pointer to the start of a row (contiguous, cols() doubles).
  double* RowData(size_t row) {
    BBV_DCHECK(row < rows_);
    return data_.data() + row * cols_;
  }
  const double* RowData(size_t row) const {
    BBV_DCHECK(row < rows_);
    return data_.data() + row * cols_;
  }

  /// Copy of row `row` as a vector.
  std::vector<double> Row(size_t row) const;

  /// Copy of column `col` as a vector.
  std::vector<double> Col(size_t col) const;

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  /// this * other; requires cols() == other.rows().
  Matrix MatMul(const Matrix& other) const;

  /// Transposed copy.
  Matrix Transposed() const;

  /// Element-wise sum; shapes must match.
  Matrix Add(const Matrix& other) const;

  /// Element-wise difference; shapes must match.
  Matrix Sub(const Matrix& other) const;

  /// Copy scaled by `factor`.
  Matrix Scaled(double factor) const;

  /// In-place: this += factor * other. Shapes must match.
  void AddInPlace(const Matrix& other, double factor = 1.0);

  /// New matrix containing the given rows of this one, in order.
  Matrix SelectRows(const std::vector<size_t>& row_indices) const;

  /// Appends the rows of `other` below this matrix (column counts must match,
  /// unless this matrix is empty).
  void AppendRows(const Matrix& other);

  /// Index of the maximum entry in each row (first maximum wins).
  std::vector<size_t> ArgMaxPerRow() const;

  /// Maximum entry in each row.
  std::vector<double> MaxPerRow() const;

  /// Debug string with shape and (small matrices only) contents.
  std::string ToString() const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

/// Row-wise softmax; rows of the result sum to 1 and are computed with the
/// max-subtraction trick for numerical stability.
Matrix Softmax(const Matrix& logits);

/// In-place row-wise softmax over row-major `data` holding rows of `cols`
/// logits each (`data.size()` must be a multiple of `cols`). Shares the
/// max-subtraction implementation with Softmax, so results are bit-identical;
/// this is the allocation-free surface batch classifier inference uses.
void SoftmaxRowsInPlace(std::span<double> data, size_t cols);

/// Dot product of equal-length vectors.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean norm.
double Norm(const std::vector<double>& v);

}  // namespace bbv::linalg

#endif  // BBV_LINALG_MATRIX_H_
