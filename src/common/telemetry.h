#ifndef BBV_COMMON_TELEMETRY_H_
#define BBV_COMMON_TELEMETRY_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace bbv::common::telemetry {

/// Process-wide runtime observability: named counters, gauges and log-scale
/// histograms plus RAII TraceSpan scoped timers. Everything here is
/// observation-only — no code path may branch on a telemetry value — so the
/// determinism contract of the parallel subsystem is unaffected by whether
/// telemetry is on or off.
///
/// Enablement is read once from the BBV_TELEMETRY environment variable
/// ("off"/"0"/"false" disables, anything else — including unset — enables)
/// and can be overridden with SetEnabled. When disabled, the convenience
/// helpers and TraceSpan are a single relaxed atomic load: no clock reads,
/// no registry lookups, no allocations.
///
/// This header (with bench/bench_util's WallTimer) is the only sanctioned
/// home for wall-clock timing; the bbv_lint "timing" rule bans ad-hoc
/// std::chrono use everywhere else.

/// True when telemetry collection is active.
bool Enabled();

/// Overrides the BBV_TELEMETRY setting (tests, benchmark harnesses).
void SetEnabled(bool enabled);

/// Monotonically increasing event count. All operations are relaxed atomics;
/// concurrent increments from ThreadPool workers never lose updates.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (thread counts, imbalance ratios).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Lock-free log-scale histogram over positive doubles (latencies in
/// seconds, section sizes). Values land in power-of-two buckets, so
/// percentiles are approximate — exact to within one octave, clamped to the
/// observed [min, max]. Exact count, sum, min and max are tracked alongside.
class Histogram {
 public:
  /// One bucket per binary exponent in [2^-32, 2^32): covers sub-nanosecond
  /// latencies up to billions of items.
  static constexpr size_t kNumBuckets = 64;

  /// Records one observation; non-positive values count into bucket 0.
  void Record(double value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double total() const { return total_.load(std::memory_order_relaxed); }
  /// Smallest / largest recorded value; 0 when the histogram is empty.
  double min() const;
  double max() const;
  /// q-th percentile (q in [0, 100]) estimated as the geometric midpoint of
  /// the bucket holding the q-th observation, clamped to [min, max]. Returns
  /// 0 when empty.
  double ApproxPercentile(double q) const;

  void Reset();

 private:
  static size_t BucketIndex(double value);
  static double BucketMidpoint(size_t bucket);

  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> total_{0.0};
  /// +inf / -inf sentinels until the first Record(); min()/max() report 0
  /// for an empty histogram.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Point-in-time copy of every registered instrument, sorted by name.
struct CounterSnapshot {
  std::string name;
  uint64_t value = 0;
};
struct GaugeSnapshot {
  std::string name;
  double value = 0.0;
};
struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  double total = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
};
struct Snapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;
};

/// Process-wide instrument registry. Lookup is a sharded-mutex map access
/// returning a stable reference (instruments are never deallocated before
/// process exit), so hot paths pay one short critical section per lookup and
/// plain atomics per update.
class Registry {
 public:
  static Registry& Global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  Snapshot TakeSnapshot() const;

  /// Multi-line human-readable dump of every instrument.
  std::string SummaryString() const;

  /// Machine-readable export following the BENCH_*.json conventions of
  /// bench/bench_util: one top-level object, two-space indent, one line per
  /// instrument.
  std::string ToJson() const;

  /// Zeroes every registered instrument in place (references stay valid).
  void ResetForTesting();

 private:
  struct Shard {
    mutable Mutex mutex;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters
        BBV_GUARDED_BY(mutex);
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges
        BBV_GUARDED_BY(mutex);
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms
        BBV_GUARDED_BY(mutex);
  };
  static constexpr size_t kNumShards = 8;

  Shard& ShardFor(std::string_view name);
  const Shard& ShardFor(std::string_view name) const;

  Shard shards_[kNumShards];
};

/// Convenience wrappers: single relaxed load + early return when disabled.
void IncrementCounter(std::string_view name, uint64_t delta = 1);
void SetGauge(std::string_view name, double value);
void RecordValue(std::string_view name, double value);
/// Current value of a counter (0 if it was never incremented).
uint64_t ReadCounter(std::string_view name);

/// RAII scoped timer: on destruction, records the elapsed wall time (in
/// seconds) into the histogram named at construction. When telemetry is
/// disabled at construction time the span never reads the clock and
/// ElapsedSeconds() returns 0.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name)
      : histogram_(Enabled() ? &Registry::Global().histogram(name) : nullptr) {
    if (histogram_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~TraceSpan() {
    if (histogram_ != nullptr) histogram_->Record(ElapsedSeconds());
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Seconds since construction; 0 when telemetry was disabled.
  double ElapsedSeconds() const {
    if (histogram_ == nullptr) return 0.0;
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace bbv::common::telemetry

#endif  // BBV_COMMON_TELEMETRY_H_
