#ifndef BBV_COMMON_CHECK_H_
#define BBV_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace bbv::common::internal {

/// Accumulates a failure message and aborts the process when destroyed.
/// Programming errors (violated invariants, misuse of internal APIs) fail
/// fast through BBV_CHECK; recoverable conditions use Status instead.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* condition, const char* file, int line) {
    stream_ << "Check failed: " << condition << " at " << file << ":" << line
            << " ";
  }

  CheckFailureStream(const CheckFailureStream&) = delete;
  CheckFailureStream& operator=(const CheckFailureStream&) = delete;

  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace bbv::common::internal

#define BBV_CHECK(condition)                                              \
  if (condition) {                                                        \
  } else /* NOLINT */                                                     \
    ::bbv::common::internal::CheckFailureStream(#condition, __FILE__,     \
                                                __LINE__)

#define BBV_CHECK_EQ(a, b) BBV_CHECK((a) == (b))
#define BBV_CHECK_NE(a, b) BBV_CHECK((a) != (b))
#define BBV_CHECK_LT(a, b) BBV_CHECK((a) < (b))
#define BBV_CHECK_LE(a, b) BBV_CHECK((a) <= (b))
#define BBV_CHECK_GT(a, b) BBV_CHECK((a) > (b))
#define BBV_CHECK_GE(a, b) BBV_CHECK((a) >= (b))

#ifndef NDEBUG
#define BBV_DCHECK(condition) BBV_CHECK(condition)
#else
#define BBV_DCHECK(condition) \
  if (true) {                 \
  } else                      \
    ::bbv::common::internal::CheckFailureStream(#condition, __FILE__, __LINE__)
#endif

#endif  // BBV_COMMON_CHECK_H_
