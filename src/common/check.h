#ifndef BBV_COMMON_CHECK_H_
#define BBV_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace bbv::common::internal {

/// Accumulates a failure message and aborts the process when destroyed.
/// Programming errors (violated invariants, misuse of internal APIs) fail
/// fast through BBV_CHECK; recoverable conditions use Status instead.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* condition, const char* file, int line) {
    stream_ << "Check failed: " << condition << " at " << file << ":" << line
            << " ";
  }

  CheckFailureStream(const CheckFailureStream&) = delete;
  CheckFailureStream& operator=(const CheckFailureStream&) = delete;

  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << "\n" << std::flush;
    std::abort();
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Swallows the streamed context of a compiled-out BBV_DCHECK. Every
/// operator<< is a no-op the optimizer deletes entirely.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

/// Lowers a stream expression to void so both arms of the check ternary have
/// type void. operator& binds looser than operator<<, so the streamed message
/// is fully assembled before the voidification applies.
struct Voidifier {
  void operator&(const CheckFailureStream&) const {}
  void operator&(const NullStream&) const {}
};

}  // namespace bbv::common::internal

// BBV_CHECK(cond) << "context";
//
// Aborts with file:line and the streamed context when `cond` is false. The
// ternary-expression shape (rather than a bare if/else) makes the macro a
// single expression, so it composes safely under a dangling `if`:
//
//   if (flag) BBV_CHECK(x > 0);   // no else-capture hazard
//   else DoOther();
#define BBV_CHECK(condition)                                      \
  (condition) ? static_cast<void>(0)                              \
              : ::bbv::common::internal::Voidifier() &            \
                    ::bbv::common::internal::CheckFailureStream(  \
                        #condition, __FILE__, __LINE__)

#define BBV_CHECK_EQ(a, b) BBV_CHECK((a) == (b))
#define BBV_CHECK_NE(a, b) BBV_CHECK((a) != (b))
#define BBV_CHECK_LT(a, b) BBV_CHECK((a) < (b))
#define BBV_CHECK_LE(a, b) BBV_CHECK((a) <= (b))
#define BBV_CHECK_GT(a, b) BBV_CHECK((a) > (b))
#define BBV_CHECK_GE(a, b) BBV_CHECK((a) >= (b))

// BBV_DCHECK(cond) << "context";
//
// Debug-only invariant check for hot paths: identical to BBV_CHECK in debug
// builds; in NDEBUG builds the condition is parsed and odr-used but never
// evaluated (short-circuited behind `true ||`), so captured variables do not
// trigger -Wunused-* warnings and the whole expression folds away to nothing.
#ifndef NDEBUG
#define BBV_DCHECK(condition) BBV_CHECK(condition)
#else
#define BBV_DCHECK(condition)                            \
  (true || static_cast<bool>(condition))                 \
      ? static_cast<void>(0)                             \
      : ::bbv::common::internal::Voidifier() &           \
            ::bbv::common::internal::NullStream()
#endif

#define BBV_DCHECK_EQ(a, b) BBV_DCHECK((a) == (b))
#define BBV_DCHECK_NE(a, b) BBV_DCHECK((a) != (b))
#define BBV_DCHECK_LT(a, b) BBV_DCHECK((a) < (b))
#define BBV_DCHECK_LE(a, b) BBV_DCHECK((a) <= (b))
#define BBV_DCHECK_GT(a, b) BBV_DCHECK((a) > (b))
#define BBV_DCHECK_GE(a, b) BBV_DCHECK((a) >= (b))

#endif  // BBV_COMMON_CHECK_H_
