#include "common/serialize.h"

#include <cstring>
#include <istream>
#include <ostream>

namespace bbv::common {

namespace {

template <typename T>
void WriteRaw(std::ostream& out, T value) {
  // The library targets little-endian hosts; a static assert documents the
  // assumption instead of byte-swapping.
  static_assert(sizeof(T) <= 8);
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadRaw(std::istream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

void BinaryWriter::WriteMagic(const std::string& magic, uint32_t version) {
  out_.write(magic.data(), static_cast<std::streamsize>(magic.size()));
  WriteUint32(version);
}

void BinaryWriter::WriteUint32(uint32_t value) { WriteRaw(out_, value); }
void BinaryWriter::WriteUint64(uint64_t value) { WriteRaw(out_, value); }
void BinaryWriter::WriteInt32(int32_t value) { WriteRaw(out_, value); }
void BinaryWriter::WriteDouble(double value) { WriteRaw(out_, value); }

void BinaryWriter::WriteString(const std::string& value) {
  WriteUint64(value.size());
  out_.write(value.data(), static_cast<std::streamsize>(value.size()));
}

void BinaryWriter::WriteDoubleVector(const std::vector<double>& values) {
  WriteUint64(values.size());
  out_.write(reinterpret_cast<const char*>(values.data()),
             static_cast<std::streamsize>(values.size() * sizeof(double)));
}

void BinaryWriter::WriteInt32Vector(const std::vector<int32_t>& values) {
  WriteUint64(values.size());
  out_.write(reinterpret_cast<const char*>(values.data()),
             static_cast<std::streamsize>(values.size() * sizeof(int32_t)));
}

Status BinaryWriter::status() const {
  if (!out_) return Status::IoError("serialization stream failed");
  return Status::OK();
}

Status BinaryReader::ExpectMagic(const std::string& magic,
                                 uint32_t expected_version) {
  std::string found(magic.size(), '\0');
  in_.read(found.data(), static_cast<std::streamsize>(magic.size()));
  if (!in_ || found != magic) {
    return Status::InvalidArgument("bad magic: expected '" + magic + "'");
  }
  BBV_ASSIGN_OR_RETURN(uint32_t version, ReadUint32());
  if (version != expected_version) {
    return Status::InvalidArgument(
        "unsupported version " + std::to_string(version) + " for '" + magic +
        "', expected " + std::to_string(expected_version));
  }
  return Status::OK();
}

Result<uint32_t> BinaryReader::ReadUint32() {
  uint32_t value = 0;
  if (!ReadRaw(in_, value)) return Status::IoError("truncated stream");
  return value;
}

Result<uint64_t> BinaryReader::ReadUint64() {
  uint64_t value = 0;
  if (!ReadRaw(in_, value)) return Status::IoError("truncated stream");
  return value;
}

Result<int32_t> BinaryReader::ReadInt32() {
  int32_t value = 0;
  if (!ReadRaw(in_, value)) return Status::IoError("truncated stream");
  return value;
}

Result<double> BinaryReader::ReadDouble() {
  double value = 0.0;
  if (!ReadRaw(in_, value)) return Status::IoError("truncated stream");
  return value;
}

Result<std::string> BinaryReader::ReadString() {
  BBV_ASSIGN_OR_RETURN(uint64_t size, ReadUint64());
  if (size > kMaxElementCount) {
    return Status::InvalidArgument("implausible string length");
  }
  std::string value(size, '\0');
  in_.read(value.data(), static_cast<std::streamsize>(size));
  if (!in_) return Status::IoError("truncated stream");
  return value;
}

Result<std::vector<double>> BinaryReader::ReadDoubleVector() {
  BBV_ASSIGN_OR_RETURN(uint64_t size, ReadUint64());
  if (size > kMaxElementCount) {
    return Status::InvalidArgument("implausible vector length");
  }
  std::vector<double> values(size);
  in_.read(reinterpret_cast<char*>(values.data()),
           static_cast<std::streamsize>(size * sizeof(double)));
  if (!in_) return Status::IoError("truncated stream");
  return values;
}

Result<std::vector<int32_t>> BinaryReader::ReadInt32Vector() {
  BBV_ASSIGN_OR_RETURN(uint64_t size, ReadUint64());
  if (size > kMaxElementCount) {
    return Status::InvalidArgument("implausible vector length");
  }
  std::vector<int32_t> values(size);
  in_.read(reinterpret_cast<char*>(values.data()),
           static_cast<std::streamsize>(size * sizeof(int32_t)));
  if (!in_) return Status::IoError("truncated stream");
  return values;
}

}  // namespace bbv::common
