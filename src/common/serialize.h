#ifndef BBV_COMMON_SERIALIZE_H_
#define BBV_COMMON_SERIALIZE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace bbv::common {

/// Minimal little-endian binary archive for persisting trained artifacts
/// (models, performance predictors). The format is: a caller-supplied magic
/// tag, a version, then length-prefixed primitives. No backward
/// compatibility guarantees beyond the version check — this is a deployment
/// format, not an interchange format.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& out) : out_(out) {}

  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

  void WriteMagic(const std::string& magic, uint32_t version);
  void WriteUint32(uint32_t value);
  void WriteUint64(uint64_t value);
  void WriteInt32(int32_t value);
  void WriteDouble(double value);
  void WriteString(const std::string& value);
  void WriteDoubleVector(const std::vector<double>& values);
  void WriteInt32Vector(const std::vector<int32_t>& values);

  /// OK unless the underlying stream failed.
  Status status() const;

 private:
  std::ostream& out_;
};

/// Reader counterpart; every method validates stream state and returns a
/// Status-carrying Result.
class BinaryReader {
 public:
  explicit BinaryReader(std::istream& in) : in_(in) {}

  BinaryReader(const BinaryReader&) = delete;
  BinaryReader& operator=(const BinaryReader&) = delete;

  /// Checks that the stream starts with `magic` and that the stored version
  /// equals `expected_version`.
  [[nodiscard]] Status ExpectMagic(const std::string& magic,
                                   uint32_t expected_version);
  [[nodiscard]] Result<uint32_t> ReadUint32();
  [[nodiscard]] Result<uint64_t> ReadUint64();
  [[nodiscard]] Result<int32_t> ReadInt32();
  [[nodiscard]] Result<double> ReadDouble();
  [[nodiscard]] Result<std::string> ReadString();
  [[nodiscard]] Result<std::vector<double>> ReadDoubleVector();
  [[nodiscard]] Result<std::vector<int32_t>> ReadInt32Vector();

 private:
  /// Guard against adversarial / corrupt length prefixes.
  static constexpr uint64_t kMaxElementCount = 1ull << 32;

  std::istream& in_;
};

}  // namespace bbv::common

#endif  // BBV_COMMON_SERIALIZE_H_
