#ifndef BBV_COMMON_THREAD_ANNOTATIONS_H_
#define BBV_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety analysis annotations (-Wthread-safety). Under clang
/// these attach lock-discipline contracts to members and functions so the
/// compiler proves every guarded access holds the right mutex; under other
/// compilers they expand to nothing. Style follows the abseil/LLVM macros.
///
///   class Counter {
///     common::Mutex mutex_;
///     int value_ BBV_GUARDED_BY(mutex_);
///     void Add(int d) { const common::MutexLock lock(mutex_);
///                       value_ += d; }
///   };
///
/// The standard library's mutex types ship without annotations (libstdc++
/// has none), so guarded members must be locked through the annotated
/// common::Mutex / common::MutexLock wrappers in common/mutex.h for the
/// analysis to see the acquire/release pairs.

#if defined(__clang__) && defined(__has_attribute)
#define BBV_THREAD_ANNOTATION_IMPL(x) __attribute__((x))
#else
#define BBV_THREAD_ANNOTATION_IMPL(x)  // no-op outside clang
#endif

/// Declares a class to be a lockable capability (e.g. common::Mutex).
#define BBV_CAPABILITY(x) BBV_THREAD_ANNOTATION_IMPL(capability(x))

/// Declares an RAII class that acquires a capability in its constructor and
/// releases it in its destructor (e.g. common::MutexLock).
#define BBV_SCOPED_CAPABILITY BBV_THREAD_ANNOTATION_IMPL(scoped_lockable)

/// Data member readable/writable only while `x` is held.
#define BBV_GUARDED_BY(x) BBV_THREAD_ANNOTATION_IMPL(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x`.
#define BBV_PT_GUARDED_BY(x) BBV_THREAD_ANNOTATION_IMPL(pt_guarded_by(x))

/// Function requires `...` to be held on entry (and does not release it).
#define BBV_REQUIRES(...) \
  BBV_THREAD_ANNOTATION_IMPL(requires_capability(__VA_ARGS__))

/// Function acquires `...` and holds it on return.
#define BBV_ACQUIRE(...) \
  BBV_THREAD_ANNOTATION_IMPL(acquire_capability(__VA_ARGS__))

/// Function releases `...`, which must be held on entry.
#define BBV_RELEASE(...) \
  BBV_THREAD_ANNOTATION_IMPL(release_capability(__VA_ARGS__))

/// Escape hatch: the function's locking cannot be expressed to the analysis
/// (e.g. condition_variable wait predicates, which run with the lock held by
/// the wait itself). Use sparingly and document why at the use site.
#define BBV_NO_THREAD_SAFETY_ANALYSIS \
  BBV_THREAD_ANNOTATION_IMPL(no_thread_safety_analysis)

#endif  // BBV_COMMON_THREAD_ANNOTATIONS_H_
